package rpcc_test

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc"
)

// ExampleRun reproduces a (shortened) Table 1 scenario and prints the
// headline metrics. Runs are deterministic: the same seed always yields
// the same numbers.
func ExampleRun() {
	scenario := rpcc.DefaultScenario(rpcc.StrategyRPCCWC, 42)
	scenario.SimTime = 5 * time.Minute

	result, err := rpcc.Run(scenario)
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", result.Strategy)
	fmt.Println("all weak queries answered locally:", result.AnswerRate() == 1)
	fmt.Println("integrity violations:", result.TornAnswers+result.FutureAnswers)
	// Output:
	// strategy: rpcc-wc
	// all weak queries answered locally: true
	// integrity violations: 0
}

// ExampleSimulation scripts a tiny deployment: a cache node observes the
// source's update through a strong-consistency query.
func ExampleSimulation() {
	sim, err := rpcc.NewSimulation(rpcc.DefaultSimOptions(7))
	if err != nil {
		panic(err)
	}
	sim.Warm(3, 0)                    // host 3 caches host 0's item
	sim.Update(0)                     // host 0 commits version 1
	sim.Query(3, 0, rpcc.LevelStrong) // host 3 must observe it
	sim.RunFor(time.Minute)

	v, _ := sim.Version(3, 0)
	fmt.Println("host 3 sees version:", v)
	fmt.Println("stale strong answers:", sim.Metrics().AuditViolations)
	// Output:
	// host 3 sees version: 1
	// stale strong answers: 0
}

// ExampleNewReplicaSimulation shows the §6 future-work replica model:
// any holder may write; replicas converge via last-writer-wins.
func ExampleNewReplicaSimulation() {
	sim, err := rpcc.NewReplicaSimulation(rpcc.DefaultSimOptions(7))
	if err != nil {
		panic(err)
	}
	sim.Register(1, []int{0, 4, 9})
	sim.Write(4, 1, "hello from a non-owner")
	sim.RunFor(2 * time.Minute)

	v, converged := sim.Converged(1)
	fmt.Println("converged:", converged)
	fmt.Println("value:", v.Data)
	// Output:
	// converged: true
	// value: hello from a non-owner
}
