module github.com/manetlab/rpcc

go 1.22
