package main

import (
	"fmt"
	"os"
	"time"

	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// lintTrace validates a causal-trace span JSONL file (rpccsim
// -trace-out, tracecol output):
//
//   - every line parses as a span with a non-zero trace and span id, and
//     a unique span id
//   - every non-root ParentSpanID resolves to a span in the same trace
//   - parent chains are acyclic and terminate at a root
//   - intervals are well-formed (end >= start) and causally nested on
//     the start side: a child starts no earlier than its parent minus
//     the skew allowance (zero for sim traces; wire traces need the
//     collector's clock-skew slack). End-side containment is deliberately
//     NOT required — transit and serve spans legitimately outlive a poll
//     stage that escalated past them.
//   - the file is in canonical (StartNs, Region, Seq) order, the order
//     every producer must emit for byte-identical same-seed output
//
// Returns span/trace/root counts for the ok line.
func lintTrace(path string, skew time.Duration) (spans, traces, roots int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	all, err := ctrace.ReadJSONL(f)
	f.Close()
	if err != nil {
		return 0, 0, 0, err
	}
	if len(all) == 0 {
		return 0, 0, 0, fmt.Errorf("%s: empty trace", path)
	}

	byID := make(map[uint64]int, len(all))
	traceSet := make(map[uint64]bool)
	for i, s := range all {
		if s.ID == 0 || s.Trace == 0 {
			return 0, 0, 0, fmt.Errorf("%s: span %d has zero id (id=%x trace=%x)", path, i+1, s.ID, s.Trace)
		}
		if prev, dup := byID[s.ID]; dup {
			return 0, 0, 0, fmt.Errorf("%s: span id %x duplicated (spans %d and %d)", path, s.ID, prev+1, i+1)
		}
		byID[s.ID] = i
		traceSet[s.Trace] = true
		if s.EndNs < s.StartNs {
			return 0, 0, 0, fmt.Errorf("%s: span %x ends before it starts [%d..%d]", path, s.ID, s.StartNs, s.EndNs)
		}
		if s.Parent == 0 {
			roots++
		}
		if i > 0 {
			p := all[i-1]
			if s.StartNs < p.StartNs ||
				(s.StartNs == p.StartNs && (s.Region < p.Region ||
					(s.Region == p.Region && s.Seq < p.Seq))) {
				return 0, 0, 0, fmt.Errorf("%s: spans %d,%d out of canonical (start,region,seq) order", path, i, i+1)
			}
		}
	}

	for i, s := range all {
		if s.Parent == 0 {
			continue
		}
		pi, ok := byID[s.Parent]
		if !ok {
			return 0, 0, 0, fmt.Errorf("%s: span %x has unresolved parent %x", path, s.ID, s.Parent)
		}
		p := all[pi]
		if p.Trace != s.Trace {
			return 0, 0, 0, fmt.Errorf("%s: span %x (trace %x) parented across traces to %x (trace %x)", path, s.ID, s.Trace, p.ID, p.Trace)
		}
		if s.StartNs < p.StartNs-skew.Nanoseconds() {
			return 0, 0, 0, fmt.Errorf("%s: span %x starts %dns before its parent %x (skew allowance %v)",
				path, s.ID, p.StartNs-s.StartNs, p.ID, skew)
		}
		// Walk the parent chain; a cycle revisits i before reaching a root.
		seen := map[int]bool{i: true}
		for j := pi; ; {
			if seen[j] {
				return 0, 0, 0, fmt.Errorf("%s: span %x is on a parent cycle", path, s.ID)
			}
			seen[j] = true
			if all[j].Parent == 0 {
				break
			}
			nj, ok := byID[all[j].Parent]
			if !ok {
				break // reported above for that span
			}
			j = nj
		}
	}
	return len(all), len(traceSet), roots, nil
}
