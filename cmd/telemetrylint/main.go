// Command telemetrylint validates telemetry exports without any
// third-party scrape stack: a Prometheus text file (-prom) is checked
// for exposition-format discipline and histogram invariants, and a span
// JSONL file (-jsonl) is checked line by line for well-formed envelopes.
// It is the assertion half of `make telemetry-smoke` — a seeded run
// produces the files, this command proves they parse.
//
//	telemetrylint -prom metrics.prom -require rpcc_delivery_latency_seconds,rpcc_queries_total
//	telemetrylint -jsonl spans.jsonl
//	telemetrylint -trace trace.jsonl -skew 5ms
//
// -trace validates a causal trace (rpccsim -trace-out / tracecol output):
// parent resolution, acyclicity, causal interval nesting within the -skew
// allowance, and canonical span order.
//
// Exit status is non-zero on the first violated invariant, with a
// message naming the metric/line at fault.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "telemetrylint:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		promPath  = flag.String("prom", "", "Prometheus text file to validate")
		jsonlPath = flag.String("jsonl", "", "span JSONL file to validate")
		tracePath = flag.String("trace", "", "causal-trace span JSONL file to validate")
		skew      = flag.Duration("skew", 0, "clock-skew allowance for -trace parent/child nesting")
		require   = flag.String("require", "", "comma-separated metric families that must be present in -prom")
	)
	flag.Parse()
	if *promPath == "" && *jsonlPath == "" && *tracePath == "" {
		return fmt.Errorf("nothing to do: pass -prom, -jsonl and/or -trace")
	}

	if *promPath != "" {
		families, samples, err := lintProm(*promPath)
		if err != nil {
			return err
		}
		for _, want := range strings.Split(*require, ",") {
			if want = strings.TrimSpace(want); want != "" && !families[want] {
				return fmt.Errorf("%s: required family %q is absent", *promPath, want)
			}
		}
		fmt.Printf("%s: ok (%d families, %d samples)\n", *promPath, len(families), samples)
	}
	if *jsonlPath != "" {
		lines, counts, err := lintJSONL(*jsonlPath)
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
		fmt.Printf("%s: ok (%d lines: %s)\n", *jsonlPath, lines, strings.Join(parts, " "))
	}
	if *tracePath != "" {
		spans, traces, roots, err := lintTrace(*tracePath, *skew)
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok (%d spans, %d traces, %d roots)\n", *tracePath, spans, traces, roots)
	}
	return nil
}

// series is one histogram's accumulated state, keyed by its full label
// set minus the le label.
type series struct {
	buckets []bucket // in file order
	count   float64
	hasCnt  bool
	sum     float64
	hasSum  bool
}

type bucket struct {
	le  float64
	cum float64
}

// lintProm parses path as Prometheus text exposition format and checks:
// every sample line parses, every sample's family has a preceding TYPE,
// histogram buckets are cumulative and non-decreasing, every histogram
// has a +Inf bucket equal to its _count, and no two TYPE lines redefine
// a family. It returns the set of family names and the sample count.
func lintProm(path string) (map[string]bool, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	families := map[string]bool{}
	types := map[string]string{}
	hists := map[string]*series{}
	samples := 0

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, 0, fmt.Errorf("%s:%d: malformed TYPE line", path, lineNo)
			}
			name, typ := fields[2], fields[3]
			if prev, ok := types[name]; ok && prev != typ {
				return nil, 0, fmt.Errorf("%s:%d: family %s redefined as %s (was %s)", path, lineNo, name, typ, prev)
			}
			types[name] = typ
			families[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, 0, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		samples++
		// The fault plane's accounting families carry mandatory labels:
		// every drop is attributed to a cause, every fault event to a kind.
		if name == "rpcc_dropped_total" {
			if !hasLabel(labels, "cause") {
				return nil, 0, fmt.Errorf("%s:%d: rpcc_dropped_total sample without cause label", path, lineNo)
			}
			// Label discipline extends to the value set: the sim and wire
			// layers share one cause vocabulary, so an unknown cause is a
			// typo or an unregistered accounting path, not a new category.
			if c := labelValue(labels, "cause"); !validDropCauses[c] {
				return nil, 0, fmt.Errorf("%s:%d: rpcc_dropped_total cause %q not in the shared vocabulary", path, lineNo, c)
			}
		}
		if name == "rpcc_fault_events_total" && !hasLabel(labels, "kind") {
			return nil, 0, fmt.Errorf("%s:%d: rpcc_fault_events_total sample without kind label", path, lineNo)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_count"), "_sum")
		if types[name] == "" && types[base] == "" {
			return nil, 0, fmt.Errorf("%s:%d: sample %s has no TYPE declaration", path, lineNo, name)
		}
		if types[base] != "histogram" {
			continue
		}
		le, rest := splitLE(labels)
		key := base + "{" + rest + "}"
		h := hists[key]
		if h == nil {
			h = &series{}
			hists[key] = h
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				return nil, 0, fmt.Errorf("%s:%d: histogram bucket without le label", path, lineNo)
			}
			leV := math.Inf(1)
			if le != "+Inf" {
				if leV, err = strconv.ParseFloat(le, 64); err != nil {
					return nil, 0, fmt.Errorf("%s:%d: bad le %q: %v", path, lineNo, le, err)
				}
			}
			h.buckets = append(h.buckets, bucket{le: leV, cum: value})
		case strings.HasSuffix(name, "_count"):
			h.count, h.hasCnt = value, true
		case strings.HasSuffix(name, "_sum"):
			h.sum, h.hasSum = value, true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}

	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hists[k]
		if len(h.buckets) == 0 {
			return nil, 0, fmt.Errorf("%s: histogram %s has no buckets", path, k)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i].le <= h.buckets[i-1].le {
				return nil, 0, fmt.Errorf("%s: histogram %s: le bounds not increasing at index %d", path, k, i)
			}
			if h.buckets[i].cum < h.buckets[i-1].cum {
				return nil, 0, fmt.Errorf("%s: histogram %s: cumulative bucket counts decrease at le=%g", path, k, h.buckets[i].le)
			}
		}
		last := h.buckets[len(h.buckets)-1]
		if !math.IsInf(last.le, 1) {
			return nil, 0, fmt.Errorf("%s: histogram %s: missing +Inf bucket", path, k)
		}
		if !h.hasCnt {
			return nil, 0, fmt.Errorf("%s: histogram %s: missing _count", path, k)
		}
		if last.cum != h.count {
			return nil, 0, fmt.Errorf("%s: histogram %s: +Inf bucket %g != _count %g", path, k, last.cum, h.count)
		}
		if !h.hasSum {
			return nil, 0, fmt.Errorf("%s: histogram %s: missing _sum", path, k)
		}
	}
	return families, samples, nil
}

// parseSample splits `name{labels} value` (labels optional) into parts.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces")
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("want `name value`, got %d fields", len(fields))
		}
		name, rest = fields[0], fields[1]
	}
	v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", rest, perr)
	}
	return name, labels, v, nil
}

// validDropCauses is the shared drop-cause vocabulary: the sim fault
// plane's causes plus the wire transport's (stats.DropCause.String()).
var validDropCauses = map[string]bool{
	"loss": true, "partition": true, "disconnected": true,
	"no-route": true, "peer-down": true, "decode": true,
}

// labelValue returns the value of key="..." in the label string.
func labelValue(labels, key string) string {
	for _, part := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(part, key+`="`); ok {
			return strings.TrimSuffix(v, `"`)
		}
	}
	return ""
}

// hasLabel reports whether the label string contains key="...".
func hasLabel(labels, key string) bool {
	for _, part := range splitLabels(labels) {
		if strings.HasPrefix(part, key+`="`) {
			return true
		}
	}
	return false
}

// splitLE removes the le="..." pair from a label string, returning its
// value and the remaining labels (which identify the histogram series).
func splitLE(labels string) (le, rest string) {
	var kept []string
	for _, part := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(part, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ",")
}

// splitLabels splits k="v" pairs on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if p := strings.TrimSpace(s[start:i]); p != "" {
					out = append(out, p)
				}
				start = i + 1
			}
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

// lintJSONL checks every line of path is a JSON object whose "type" is
// one of the telemetry envelope kinds and whose payload field matches.
// Returns the line total and a per-type tally.
func lintJSONL(path string) (int, map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()

	counts := map[string]int{}
	lines := 0
	lastFaultAt := int64(-1)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		lines++
		var env map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			return 0, nil, fmt.Errorf("%s:%d: %v", path, lines, err)
		}
		var typ string
		if err := json.Unmarshal(env["type"], &typ); err != nil {
			return 0, nil, fmt.Errorf("%s:%d: bad or missing type: %v", path, lines, err)
		}
		switch typ {
		case "query", "role", "wave", "fault", "snapshot":
		default:
			return 0, nil, fmt.Errorf("%s:%d: unknown envelope type %q", path, lines, typ)
		}
		if _, ok := env[typ]; !ok {
			return 0, nil, fmt.Errorf("%s:%d: type %q without matching payload field", path, lines, typ)
		}
		if typ == "fault" {
			// Fault spans export in injection order, so their timestamps
			// must be non-decreasing and their kind named.
			var fs struct {
				AtNs int64  `json:"at_ns"`
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal(env["fault"], &fs); err != nil {
				return 0, nil, fmt.Errorf("%s:%d: bad fault payload: %v", path, lines, err)
			}
			if fs.Kind == "" {
				return 0, nil, fmt.Errorf("%s:%d: fault span without kind", path, lines)
			}
			if fs.AtNs < lastFaultAt {
				return 0, nil, fmt.Errorf("%s:%d: fault spans out of order (at_ns %d after %d)", path, lines, fs.AtNs, lastFaultAt)
			}
			lastFaultAt = fs.AtNs
		}
		counts[typ]++
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if lines == 0 {
		return 0, nil, fmt.Errorf("%s: empty JSONL file", path)
	}
	if counts["snapshot"] != 1 {
		return 0, nil, fmt.Errorf("%s: want exactly one snapshot line, got %d", path, counts["snapshot"])
	}
	return lines, counts, nil
}
