// Command rpccsim runs one cache-consistency simulation scenario and
// prints its metrics. Every Table 1 parameter of the paper is exposed as
// a flag; the defaults reproduce the paper's setup.
//
// With -replicas N the scenario runs N times with seeds seed..seed+N-1
// (concurrently, through the fleet orchestrator) and the report adds
// across-seed means with standard deviations and 95% confidence
// intervals.
//
// Examples:
//
//	rpccsim -strategy rpcc-sc
//	rpccsim -strategy pull -simtime 1h -seed 3
//	rpccsim -strategy rpcc-sc -invttl 7 -single
//	rpccsim -strategy rpcc-sc -simtime 1h -replicas 8 -parallel 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
	"github.com/manetlab/rpcc/internal/fleet"
	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
	"github.com/manetlab/rpcc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rpccsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		strategy   = flag.String("strategy", "rpcc-sc", "pull | push | rpcc-sc | rpcc-dc | rpcc-wc | rpcc-hy | adaptive-pull")
		seed       = flag.Int64("seed", 1, "root random seed")
		peers      = flag.Int("peers", 50, "number of mobile peers (N_Peers)")
		area       = flag.Float64("area", 1500, "square terrain side in metres (T_Area)")
		cacheNum   = flag.Int("cachenum", 10, "cache entries per host (C_Num)")
		rng        = flag.Float64("range", 250, "radio range in metres (C_Range)")
		simTime    = flag.Duration("simtime", 5*time.Hour, "simulated duration (T_Sim)")
		update     = flag.Duration("update", 2*time.Minute, "mean update interval (I_Update)")
		query      = flag.Duration("query", 20*time.Second, "mean query interval (I_Query)")
		brTTL      = flag.Int("brttl", 8, "broadcast TTL for push/pull and fallbacks (TTL_BR)")
		invTTL     = flag.Int("invttl", 3, "RPCC invalidation TTL")
		ttn        = flag.Duration("ttn", 2*time.Minute, "source broadcast interval (TTN_OP)")
		ttr        = flag.Duration("ttr", 90*time.Second, "relay freshness window (TTR_RP)")
		ttp        = flag.Duration("ttp", 4*time.Minute, "cache Δ window (TTP_CP)")
		swi        = flag.Duration("switch", 5*time.Minute, "mean connected dwell (I_Switch)")
		noChurn    = flag.Bool("nochurn", false, "disable disconnection/reconnection churn")
		single     = flag.Bool("single", false, "Fig 9 scenario: one source, its item cached by all peers")
		detail     = flag.Bool("detail", true, "print the per-kind traffic breakdown")
		useDSR     = flag.Bool("dsr", false, "route unicasts with DSR-style discovery instead of the oracle")
		loss       = flag.Float64("loss", 0, "per-reception link loss probability [0,1)")
		adaptTTN   = flag.Bool("adaptivettn", false, "enable RPCC's adaptive invalidation interval (§6)")
		replicas   = flag.Int("replicas", 1, "independent seeds (seed..seed+N-1), run concurrently and aggregated")
		parallel   = flag.Int("parallel", 0, "concurrent replica runs (0 = all cores)")
		metricsOut = flag.String("metrics-out", "", "write Prometheus text metrics to this file (merged across replicas)")
		telemOut   = flag.String("telemetry", "", "write span-level telemetry JSONL to this file (requires -replicas 1)")
		traceOut   = flag.String("trace-out", "", "write the causal trace (span JSONL) to this file (requires -replicas 1)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := telemetry.ServePprof(*pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rpccsim: pprof on http://%s/debug/pprof/\n", addr)
		defer telemetry.StartRuntimeStats(os.Stderr, 10*time.Second)()
	}

	cfg := experiment.DefaultConfig(experiment.StrategyKind(*strategy), *seed)
	cfg.NPeers = *peers
	cfg.AreaWidth, cfg.AreaHeight = *area, *area
	cfg.CacheNum = *cacheNum
	cfg.CommRange = *rng
	cfg.SimTime = *simTime
	cfg.UpdateInterval = *update
	cfg.QueryInterval = *query
	cfg.BroadcastTTL = *brTTL
	cfg.InvalidationTTL = *invTTL
	cfg.TTN, cfg.TTR, cfg.TTP = *ttn, *ttr, *ttp
	cfg.SwitchInterval = *swi
	cfg.ChurnDisabled = *noChurn
	if *single {
		cfg.Popularity = workload.PopularitySingle
	}
	cfg.UseDSRRouting = *useDSR
	cfg.LossRate = *loss
	cfg.AdaptiveTTN = *adaptTTN

	if *replicas > 1 {
		if *telemOut != "" {
			return fmt.Errorf("-telemetry records one run's span log; use -replicas 1")
		}
		if *traceOut != "" {
			return fmt.Errorf("-trace-out records one run's causal trace; use -replicas 1")
		}
		return runReplicated(cfg, *replicas, *parallel, *metricsOut)
	}

	level := telemetry.LevelMetrics
	if *telemOut != "" {
		level = telemetry.LevelSpans
	}
	hub := telemetry.NewHub(level)

	start := time.Now()
	var res experiment.Result
	var err error
	if *traceOut != "" {
		var spans []ctrace.Span
		res, spans, err = experiment.RunWithTrace(cfg, hub)
		if err != nil {
			return err
		}
		if werr := writeTraceFile(*traceOut, spans); werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "rpccsim: %d spans -> %s\n", len(spans), *traceOut)
	} else {
		res, err = experiment.RunWithTelemetry(cfg, hub)
		if err != nil {
			return err
		}
	}
	fmt.Printf("simulated %v of %d peers in %v wall time\n\n", cfg.SimTime, cfg.NPeers, time.Since(start).Round(time.Millisecond))
	if *detail {
		fmt.Print(experiment.RenderDetail(res))
	} else {
		fmt.Println(res)
	}
	if *metricsOut != "" {
		if err := writeMetricsFile(*metricsOut, res.Telemetry); err != nil {
			return err
		}
	}
	if *telemOut != "" {
		f, err := os.Create(*telemOut)
		if err != nil {
			return err
		}
		if err := hub.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeTraceFile writes the causal trace as span JSONL at path.
func writeTraceFile(path string, spans []ctrace.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ctrace.WriteJSONL(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetricsFile renders a snapshot in Prometheus text format at path.
func writeMetricsFile(path string, s *telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheus(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runReplicated runs the scenario once per seed on the fleet and prints
// per-seed one-liners plus the across-seed aggregate with spread. When
// metricsOut is set the per-run telemetry snapshots are merged and
// written in Prometheus text format.
func runReplicated(base experiment.Config, replicas, parallel int, metricsOut string) error {
	jobs := make([]fleet.Job, replicas)
	for i := range jobs {
		cfg := base
		cfg.Seed = base.Seed + int64(i)
		jobs[i] = fleet.Job{Key: cfg.Key(), Config: cfg}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := fleet.Run(ctx, jobs, fleet.Options{Parallel: parallel, Progress: os.Stderr})
	if err != nil {
		return err
	}

	results := make([]experiment.Result, 0, replicas)
	var merged *telemetry.Snapshot
	for _, rec := range rep.Records {
		if rec.Status != fleet.StatusOK {
			fmt.Fprintf(os.Stderr, "rpccsim: seed %d %s: %s\n", rec.Seed, rec.Status, rec.Error)
			continue
		}
		res, _ := rep.Result(rec.Key)
		fmt.Printf("seed %-3d %v\n", rec.Seed, res)
		results = append(results, res)
		if metricsOut != "" && res.Telemetry != nil {
			if merged == nil {
				merged = res.Telemetry
			} else if err := merged.Merge(res.Telemetry); err != nil {
				return fmt.Errorf("merge telemetry for seed %d: %w", rec.Seed, err)
			}
		}
	}
	if len(results) == 0 {
		return fmt.Errorf("all %d replicas failed", replicas)
	}
	if metricsOut != "" {
		if err := writeMetricsFile(metricsOut, merged); err != nil {
			return err
		}
	}

	s := experiment.Aggregate(results)
	fmt.Printf("\nsimulated %v of %d peers × %d seeds on %d workers in %v wall time (%.2f runs/s)\n\n",
		base.SimTime, base.NPeers, len(results), rep.Workers, rep.Wall.Round(time.Millisecond), rep.RunsPerSec())
	fmt.Printf("across seeds (mean ± stddev, ±95%% CI):\n")
	printDist := func(name, unit string, d experiment.Dist) {
		fmt.Printf("  %-16s %12.1f ± %-10.1f (±%.1f) %s\n", name, d.Mean, d.Stddev, d.CI95, unit)
	}
	printDist("traffic", "msgs", s.TotalTx)
	printDist("bytes", "B", s.TotalBytes)
	printDist("latency", "ms", s.MeanLatencyMs)
	printDist("answer rate", "", s.AnswerRate)
	printDist("violations", "", s.Violations)
	printDist("relay peers", "", s.RelayCount)
	printDist("energy drain", "units", s.EnergyDrained)
	printDist("hit ratio", "", s.MeanHitRatio)
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d replicas failed", rep.Failed, replicas)
	}
	return nil
}
