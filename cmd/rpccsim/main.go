// Command rpccsim runs one cache-consistency simulation scenario and
// prints its metrics. Every Table 1 parameter of the paper is exposed as
// a flag; the defaults reproduce the paper's setup.
//
// Examples:
//
//	rpccsim -strategy rpcc-sc
//	rpccsim -strategy pull -simtime 1h -seed 3
//	rpccsim -strategy rpcc-sc -invttl 7 -single
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
	"github.com/manetlab/rpcc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rpccsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		strategy = flag.String("strategy", "rpcc-sc", "pull | push | rpcc-sc | rpcc-dc | rpcc-wc | rpcc-hy | adaptive-pull")
		seed     = flag.Int64("seed", 1, "root random seed")
		peers    = flag.Int("peers", 50, "number of mobile peers (N_Peers)")
		area     = flag.Float64("area", 1500, "square terrain side in metres (T_Area)")
		cacheNum = flag.Int("cachenum", 10, "cache entries per host (C_Num)")
		rng      = flag.Float64("range", 250, "radio range in metres (C_Range)")
		simTime  = flag.Duration("simtime", 5*time.Hour, "simulated duration (T_Sim)")
		update   = flag.Duration("update", 2*time.Minute, "mean update interval (I_Update)")
		query    = flag.Duration("query", 20*time.Second, "mean query interval (I_Query)")
		brTTL    = flag.Int("brttl", 8, "broadcast TTL for push/pull and fallbacks (TTL_BR)")
		invTTL   = flag.Int("invttl", 3, "RPCC invalidation TTL")
		ttn      = flag.Duration("ttn", 2*time.Minute, "source broadcast interval (TTN_OP)")
		ttr      = flag.Duration("ttr", 90*time.Second, "relay freshness window (TTR_RP)")
		ttp      = flag.Duration("ttp", 4*time.Minute, "cache Δ window (TTP_CP)")
		swi      = flag.Duration("switch", 5*time.Minute, "mean connected dwell (I_Switch)")
		noChurn  = flag.Bool("nochurn", false, "disable disconnection/reconnection churn")
		single   = flag.Bool("single", false, "Fig 9 scenario: one source, its item cached by all peers")
		detail   = flag.Bool("detail", true, "print the per-kind traffic breakdown")
		useDSR   = flag.Bool("dsr", false, "route unicasts with DSR-style discovery instead of the oracle")
		loss     = flag.Float64("loss", 0, "per-reception link loss probability [0,1)")
		adaptTTN = flag.Bool("adaptivettn", false, "enable RPCC's adaptive invalidation interval (§6)")
	)
	flag.Parse()

	cfg := experiment.DefaultConfig(experiment.StrategyKind(*strategy), *seed)
	cfg.NPeers = *peers
	cfg.AreaWidth, cfg.AreaHeight = *area, *area
	cfg.CacheNum = *cacheNum
	cfg.CommRange = *rng
	cfg.SimTime = *simTime
	cfg.UpdateInterval = *update
	cfg.QueryInterval = *query
	cfg.BroadcastTTL = *brTTL
	cfg.InvalidationTTL = *invTTL
	cfg.TTN, cfg.TTR, cfg.TTP = *ttn, *ttr, *ttp
	cfg.SwitchInterval = *swi
	cfg.ChurnDisabled = *noChurn
	if *single {
		cfg.Popularity = workload.PopularitySingle
	}
	cfg.UseDSRRouting = *useDSR
	cfg.LossRate = *loss
	cfg.AdaptiveTTN = *adaptTTN

	start := time.Now()
	res, err := experiment.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %v of %d peers in %v wall time\n\n", cfg.SimTime, cfg.NPeers, time.Since(start).Round(time.Millisecond))
	if *detail {
		fmt.Print(experiment.RenderDetail(res))
	} else {
		fmt.Println(res)
	}
	return nil
}
