// Command conform is the differential conformance gate. It runs three
// checks against the in-tree protocol implementations and exits non-zero
// if any fails:
//
//  1. Mutant gate — every known protocol mutant (stale-push replay,
//     ignored TTR, ACK off-by-one, flood-TTL drift, doubled TTP, store
//     regression) is injected in turn and must be caught by the oracle,
//     while the matching unmutated control run must stay silent. The
//     gate repeats across -seeds kernel seeds.
//  2. Clean sweep — every strategy runs an unmutated, unperturbed mixed
//     workload per seed; any divergence is a false positive.
//  3. Fuzz — -fuzz rounds of randomly perturbed schedules (delays,
//     duplicates, drops, crashes) against the unmutated tree; any
//     divergence that survives shrinking is printed as a replayable
//     JSONL trace stub.
//
// Output is deterministic for a given flag set: no wall-clock times, no
// map-order dependence, so two invocations can be compared byte for
// byte (see `make conform-smoke`).
//
//	conform -seeds 5 -fuzz 25
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/manetlab/rpcc/internal/oracle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seeds    = flag.Int64("seeds", 5, "kernel seeds to repeat the mutant gate and clean sweep over (1..N)")
		fuzz     = flag.Int("fuzz", 25, "random perturbation rounds against the unmutated tree (0 disables)")
		fuzzSeed = flag.Int64("fuzz-seed", 7, "root seed for the fuzz campaign")
	)
	flag.Parse()
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1")
	}

	// Conform writes plain stdout, not telemetry sinks; graceful shutdown
	// here means stopping at a phase/seed boundary so the partial verdict
	// printed so far is complete and parseable, never cut mid-line.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	interrupted := func() bool { return ctx.Err() != nil }

	failures := 0

	fmt.Printf("== mutant gate: %d mutants x %d seeds ==\n", len(oracle.Gates(1)), *seeds)
	for seed := int64(1); seed <= *seeds && !interrupted(); seed++ {
		for _, r := range oracle.RunGates(seed) {
			switch {
			case r.Err != nil:
				failures++
				fmt.Printf("FAIL seed=%d %-22s error: %v\n", seed, r.Mutant, r.Err)
			case !r.Caught:
				failures++
				fmt.Printf("FAIL seed=%d %-22s escaped (divergences=%d first=%q falsePositives=%d)\n",
					seed, r.Mutant, r.Detected, r.FirstKind, r.FalsePositives)
			default:
				fmt.Printf("ok   seed=%d %-22s caught=%d kind=%s clean=0\n",
					seed, r.Mutant, r.Detected, r.FirstKind)
			}
		}
	}

	fmt.Printf("== clean sweep: %d strategies x %d seeds ==\n", len(oracle.CleanSweep(1)), *seeds)
	for seed := int64(1); seed <= *seeds && !interrupted(); seed++ {
		for _, sc := range oracle.CleanSweep(seed) {
			rep, err := oracle.Run(sc)
			switch {
			case err != nil:
				failures++
				fmt.Printf("FAIL seed=%d %-16s error: %v\n", seed, sc.Name, err)
			case len(rep.Divergences) > 0:
				failures++
				fmt.Printf("FAIL seed=%d %-16s %d false positives, first: %s\n",
					seed, sc.Name, len(rep.Divergences), rep.Divergences[0])
			case rep.Answered == 0:
				failures++
				fmt.Printf("FAIL seed=%d %-16s vacuous: zero answers\n", seed, sc.Name)
			default:
				fmt.Printf("ok   seed=%d %-16s answered=%d divergences=0\n", seed, sc.Name, rep.Answered)
			}
		}
	}

	fmt.Printf("== policy sweep: %d scenarios x %d seeds ==\n", len(oracle.PolicySweep(1)), *seeds)
	for seed := int64(1); seed <= *seeds && !interrupted(); seed++ {
		for _, sc := range oracle.PolicySweep(seed) {
			rep, err := oracle.Run(sc)
			switch {
			case err != nil:
				failures++
				fmt.Printf("FAIL seed=%d %-24s error: %v\n", seed, sc.Name, err)
			case len(rep.Divergences) > 0:
				failures++
				fmt.Printf("FAIL seed=%d %-24s %d false positives, first: %s\n",
					seed, sc.Name, len(rep.Divergences), rep.Divergences[0])
			case rep.Answered == 0:
				failures++
				fmt.Printf("FAIL seed=%d %-24s vacuous: zero answers\n", seed, sc.Name)
			default:
				fmt.Printf("ok   seed=%d %-24s answered=%d divergences=0\n", seed, sc.Name, rep.Answered)
			}
		}
	}

	if *fuzz > 0 && !interrupted() {
		fmt.Printf("== fuzz: %d rounds, seed %d ==\n", *fuzz, *fuzzSeed)
		findings, err := oracle.Fuzz(oracle.FuzzConfig{Seed: *fuzzSeed, Rounds: *fuzz})
		if err != nil {
			return err
		}
		if len(findings) == 0 {
			fmt.Printf("ok   fuzz: %d rounds, 0 findings\n", *fuzz)
		}
		for _, f := range findings {
			failures++
			fmt.Printf("FAIL fuzz round=%d strategy=%s divergences=%d\n",
				f.Round, f.Shrunk.Strategy, len(f.Divergences))
			fmt.Printf("     first: %s\n", f.Divergences[0])
			fmt.Printf("     shrunk repro: %d nodes, %d rules, horizon %dms (write with oracle.WriteTrace)\n",
				f.Shrunk.Nodes, len(f.Shrunk.Rules), f.Shrunk.HorizonMS)
		}
	}

	if interrupted() {
		return fmt.Errorf("interrupted with %d failure(s) so far; verdict incomplete", failures)
	}
	if failures > 0 {
		return fmt.Errorf("%d check(s) failed", failures)
	}
	fmt.Println("== conform: all checks passed ==")
	return nil
}
