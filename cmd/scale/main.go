// Command scale runs one large-population scenario through the sharded
// kinetic stack and reports, deterministically, what the fleet did.
//
//	scale -nodes 10000 -simtime 60s
//	scale -nodes 100000 -simtime 30s -bench /tmp/scale_new.txt
//	scale -nodes 10000 -simtime 60s -kinetic=false -shards 1   # baseline leg
//
// The stdout report is a pure function of the flags (sim-derived metrics
// only), so `make scale-smoke` byte-compares two runs for determinism.
// Wall-clock throughput (nodes simulated per wall-second) and peak RSS go
// to stderr, and -bench appends a `go test -bench`-format line so
// cmd/benchdiff can diff a kinetic+sharded run against the full-rebuild
// baseline into BENCH_scale.json.
//
// Above -scale-threshold nodes the per-host workload intervals stretch
// proportionally, holding the fleet-wide query/update rate at the Table 1
// scenario's: population scaling probes topology and cache maintenance,
// not an ever-growing query storm.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// workloadScaleThreshold is the population above which per-host workload
// intervals stretch with n.
const workloadScaleThreshold = 1000

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes    = flag.Int("nodes", 10_000, "total peer population")
		simtime  = flag.Duration("simtime", time.Minute, "simulated horizon")
		shards   = flag.Int("shards", 0, "region count (0 = auto)")
		parallel = flag.Bool("parallel", false, "one goroutine per region window")
		kinetic  = flag.Bool("kinetic", true, "kinetic topology maintenance (false = full rebuilds)")
		seed     = flag.Int64("seed", 1, "root RNG seed")
		strategy = flag.String("strategy", "rpcc-sc", "consistency strategy")
		benchOut = flag.String("bench", "", "append a go-bench-format wall-time line to this file")
		baseline = flag.Bool("baseline", false, "pre-scale-work configuration: serial, full rebuilds, per-flip churn resampling, unbounded route tables")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		traceOut = flag.String("trace-out", "", "write the merged causal trace (span JSONL) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiment.ScaleConfig{
		Config:   experiment.DefaultConfig(experiment.StrategyKind(*strategy), *seed),
		Shards:   *shards,
		Parallel: *parallel,
		Trace:    *traceOut != "",
	}
	cfg.NPeers = *nodes
	cfg.SimTime = *simtime
	cfg.DisableKinetic = !*kinetic
	// Scale-run resource bounds: per-destination route tables capped, and
	// churn folded into topology at epoch granularity (forwarding still
	// checks liveness per hop) — at 100k nodes per-flip resampling would
	// dwarf the simulation itself.
	cfg.RouteTableCap = 256
	cfg.LazyChurnRefresh = true
	if *baseline {
		// What every run looked like before the scale work: one serial
		// kernel, a full topology rebuild whenever the epoch rolls or any
		// node's churn state flips, a wholesale route reset at each
		// rebuild, and unbounded route tables.
		cfg.Shards = 1
		cfg.DisableKinetic = true
		cfg.RouteTableCap = 0
		cfg.LazyChurnRefresh = false
		*kinetic = false
	}
	// Hold terrain density at the Table 1 scenario's by growing the area
	// with the population (the per-region split keeps it; the total must
	// too).
	side := 1500 * math.Sqrt(float64(*nodes)/50.0)
	cfg.AreaWidth = side
	cfg.AreaHeight = side
	if *nodes > workloadScaleThreshold {
		f := time.Duration(*nodes / workloadScaleThreshold)
		cfg.QueryInterval *= f
		cfg.UpdateInterval *= f
	}

	start := time.Now()
	res, err := experiment.RunScale(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	// Deterministic report: everything here derives from the seed.
	fmt.Printf("nodes=%d shards=%d simtime=%v strategy=%s kinetic=%v baseline=%v seed=%d\n",
		*nodes, res.Shards, *simtime, *strategy, *kinetic, *baseline, *seed)
	fmt.Printf("queries: issued=%d answered=%d failed=%d\n", res.Issued, res.Answered, res.Failed)
	fmt.Printf("traffic: tx=%d bytes=%d\n", res.TotalTx, res.TotalBytes)
	fmt.Printf("consistency: violations=%d torn=%d future=%d\n",
		res.Violations, res.TornAnswers, res.FutureAnswers)
	fmt.Printf("sync: barriers=%d mail=%d gossip_violations=%d\n",
		res.Barriers, res.MailDelivered, res.GossipViolations)
	t := res.Topology
	fmt.Printf("topology: full_rebuilds=%d kinetic_samples=%d makes=%d breaks=%d rebins=%d cert_checks=%d\n",
		t.FullRebuilds, t.KineticSamples, t.LinkMakes, t.LinkBreaks, t.Rebins, t.CertChecks)
	fmt.Printf("routes: repaired=%d dropped=%d full_resets=%d\n",
		t.RoutesRepaired, t.RoutesDropped, t.RouteFullResets)
	// Per-shard introspection, deterministic half: event and mail counts
	// plus the event-imbalance gauge derive from the seed alone.
	ks := res.KernelStats
	fmt.Printf("shards: event_imbalance=%.3f\n", ks.EventImbalance)
	for _, sh := range ks.Shards {
		fmt.Printf("  shard=%d events=%d mail_sent=%d mail_recv=%d\n",
			sh.Shard, sh.EventsFired, sh.MailSent, sh.MailRecv)
	}

	// Non-deterministic performance report, kept off stdout.
	nodesPerSec := float64(*nodes) / wall.Seconds()
	fmt.Fprintf(os.Stderr, "wall=%.2fs nodes_per_wall_sec=%.1f peak_rss_kb=%d\n",
		wall.Seconds(), nodesPerSec, peakRSSKB())
	// Wall-clock half of the shard introspection: busy/stall split and
	// the lockstep-barrier stall histogram (log2 ns buckets).
	fmt.Fprintf(os.Stderr, "shards: wall_imbalance=%.3f\n", ks.WallImbalance)
	for _, sh := range ks.Shards {
		fmt.Fprintf(os.Stderr, "  shard=%d busy=%v stall=%v stall_hist=%s\n",
			sh.Shard, time.Duration(sh.BusyNs), time.Duration(sh.StallNs), histString(sh.StallHist))
	}

	if *benchOut != "" {
		f, err := os.OpenFile(*benchOut, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "BenchmarkScaleRun/nodes=%d \t1\t%d ns/op\n", *nodes, wall.Nanoseconds())
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := ctrace.WriteJSONL(f, res.Spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans -> %s\n", len(res.Spans), *traceOut)
	}

	// Invariant gate: a scale run that answers nothing, tears an answer,
	// or regresses a watermark is a failure regardless of throughput.
	if res.Answered == 0 {
		return fmt.Errorf("no queries answered")
	}
	if res.TornAnswers != 0 || res.FutureAnswers != 0 {
		return fmt.Errorf("consistency violations: torn=%d future=%d", res.TornAnswers, res.FutureAnswers)
	}
	if res.GossipViolations != 0 {
		return fmt.Errorf("%d cross-region watermark regressions", res.GossipViolations)
	}
	return nil
}

// histString renders the non-empty buckets of a stall histogram as
// "bucket:count" pairs, where bucket b covers [2^(b-1), 2^b) ns.
func histString(h [32]uint64) string {
	var b strings.Builder
	for i, n := range h {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", i, n)
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// peakRSSKB returns the process's peak resident set size in KiB
// (ru_maxrss is KiB on Linux).
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss)
}
