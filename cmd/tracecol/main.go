// Command tracecol aggregates causal traces from a live cluster: it
// listens on TCP, accepts one span-JSONL stream per connection (what
// rpccd -trace-to ships at shutdown), and once the expected number of
// streams has arrived merges them into one canonically ordered trace
// file — the same format rpccsim -trace-out writes, consumable by
// traceview and telemetrylint -trace.
//
//	tracecol -listen 127.0.0.1:9900 -n 5 -out trace.jsonl
//
// Streams are merged in (StartNs, Region, Seq) order, so the output is
// independent of daemon shutdown order. -timeout bounds the total wait;
// on timeout the streams received so far are merged and written, and the
// exit status is non-zero.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracecol:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen  = flag.String("listen", "127.0.0.1:9900", "TCP listen address")
		n       = flag.Int("n", 1, "number of span streams to expect")
		out     = flag.String("out", "trace.jsonl", "merged trace output file")
		timeout = flag.Duration("timeout", time.Minute, "total wait for all streams")
	)
	flag.Parse()
	if *n < 1 {
		return fmt.Errorf("-n %d must be >= 1", *n)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "tracecol: listening on %s for %d streams\n", ln.Addr(), *n)

	deadline := time.Now().Add(*timeout)
	sets := make([][]ctrace.Span, 0, *n)
	var timedOut bool
	for len(sets) < *n {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				timedOut = true
				break
			}
			return err
		}
		conn.SetReadDeadline(deadline.Add(10 * time.Second))
		spans, err := ctrace.ReadJSONL(conn)
		conn.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecol: dropping malformed stream from %s: %v\n", conn.RemoteAddr(), err)
			continue
		}
		sets = append(sets, spans)
		fmt.Fprintf(os.Stderr, "tracecol: stream %d/%d: %d spans\n", len(sets), *n, len(spans))
	}

	merged := ctrace.Merge(sets...)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := ctrace.WriteJSONL(f, merged); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracecol: %d spans from %d streams -> %s\n", len(merged), len(sets), *out)
	if timedOut {
		return fmt.Errorf("timed out with %d of %d streams", len(sets), *n)
	}
	return nil
}
