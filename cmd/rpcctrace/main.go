// Command rpcctrace runs a small, fully deterministic RPCC scenario and
// prints every protocol message as it is delivered — a teaching tool for
// following the relay-peer lifecycle (INVALIDATION → APPLY → APPLY_ACK),
// the push path (UPDATE / GET_NEW / SEND_NEW) and the pull path
// (POLL / POLL_ACK_A / POLL_ACK_B) end to end.
//
//	rpcctrace               # 10 peers, 10 simulated minutes
//	rpcctrace -peers 20 -simtime 5m -kinds POLL,POLL_ACK_A,POLL_ACK_B
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/mobility"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
	"github.com/manetlab/rpcc/internal/trace"
	"github.com/manetlab/rpcc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rpcctrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		peers   = flag.Int("peers", 10, "number of mobile peers")
		simTime = flag.Duration("simtime", 10*time.Minute, "simulated duration")
		seed    = flag.Int64("seed", 1, "root random seed")
		kinds   = flag.String("kinds", "", "comma-separated message kinds to show (default: all)")
		maxMsgs = flag.Int("max", 200, "stop printing after this many messages (0 = unlimited)")
	)
	flag.Parse()

	wanted := map[string]bool{}
	for _, k := range strings.Split(*kinds, ",") {
		if k = strings.TrimSpace(k); k != "" {
			wanted[strings.ToUpper(k)] = true
		}
	}

	k := sim.NewKernel(sim.WithSeed(*seed), sim.WithHorizon(*simTime))
	terrain, err := geo.NewTerrain(800, 800) // compact field: mostly connected
	if err != nil {
		return err
	}
	field, err := mobility.NewField(mobility.Config{
		Terrain:  terrain,
		MinSpeed: 0.5, MaxSpeed: 3,
		Pause:      time.Minute,
		SubnetCell: 400,
	}, *peers, func(i int) *rand.Rand { return k.Stream(fmt.Sprintf("mob.%d", i)) })
	if err != nil {
		return err
	}
	network, err := netsim.New(netsim.DefaultConfig(), k, field, nil, nil, stats.NewTraffic())
	if err != nil {
		return err
	}
	reg, err := data.NewRegistry(*peers)
	if err != nil {
		return err
	}
	stores := make([]*cache.Store, *peers)
	for i := range stores {
		if stores[i], err = cache.NewStore(5); err != nil {
			return err
		}
	}
	aud, err := consistency.NewAuditor(reg, 4*time.Minute, 5*time.Second)
	if err != nil {
		return err
	}
	chassis, err := node.NewChassis(node.DefaultConfig(), network, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		return err
	}
	eng, err := core.New(core.DefaultConfig(), chassis, core.Telemetry{})
	if err != nil {
		return err
	}

	// Record everything matching the filter into a bounded ring and print
	// live; the ring's per-kind tally feeds the summary.
	capacity := *maxMsgs
	if capacity <= 0 {
		capacity = 1 << 16
	}
	rec, err := trace.NewRecorder(capacity)
	if err != nil {
		return err
	}
	if len(wanted) > 0 {
		rec.SetFilter(func(e trace.Event) bool { return wanted[e.Kind.String()] })
	}
	printed := 0
	recTracer := rec.Tracer()
	network.SetTracer(func(at time.Duration, nd int, msg protocol.Message, meta netsim.Meta) {
		recTracer(at, nd, msg, meta)
		if len(wanted) > 0 && !wanted[msg.Kind.String()] {
			return
		}
		if *maxMsgs > 0 && printed >= *maxMsgs {
			return
		}
		printed++
		fmt.Println(trace.Event{
			At: at, Node: nd, Origin: msg.Origin, Kind: msg.Kind,
			Item: msg.Item, Version: msg.Version, Hops: meta.Hops, Flood: meta.Flood,
			FloodID: meta.FloodID,
		})
	})

	// Warm placement: each host caches three neighbours' items.
	for host := 0; host < *peers; host++ {
		for j := 1; j <= 3; j++ {
			item := data.ItemID((host + j) % *peers)
			m, err := reg.Master(item)
			if err != nil {
				return err
			}
			eng.Warm(k, host, m.Current())
		}
	}
	if err := eng.Start(k); err != nil {
		return err
	}
	gen, err := workload.NewGenerator(workload.Config{
		Hosts:           *peers,
		MeanQueryEvery:  15 * time.Second,
		MeanUpdateEvery: time.Minute,
		Popularity:      workload.PopularityUniform,
	},
		func(kk *sim.Kernel, host int, item data.ItemID) {
			levels := []consistency.Level{consistency.LevelStrong, consistency.LevelDelta, consistency.LevelWeak}
			eng.OnQuery(kk, host, item, levels[int(item)%3])
		},
		func(kk *sim.Kernel, host int) { eng.OnUpdate(kk, host) },
	)
	if err != nil {
		return err
	}
	gen.Start(k)
	k.Run()

	fmt.Printf("\n--- summary after %v ---\n", *simTime)
	fmt.Printf("queries: %d issued, %d answered, %d failed\n",
		chassis.Issued(), chassis.Answered(), chassis.Failed())
	fmt.Printf("relay registrations: %d\n", eng.RelayCount())
	cacheN, candN, relayN := eng.RoleCounts()
	fmt.Printf("roles: %d cache / %d candidate / %d relay\n", cacheN, candN, relayN)
	fmt.Printf("traffic: %s\n", network.Traffic())
	fmt.Printf("audit: %s\n", aud)
	sum := rec.Summary()
	fmt.Printf("recorded: %d deliveries (%d retained in the ring, %d overwritten, %d filtered out)\n",
		sum.Total, sum.Retained, sum.Overwritten, sum.Filtered)
	for kind, n := range sum.PerKind {
		if n > 0 {
			fmt.Printf("  %-12s %d\n", protocol.Kind(kind), n)
		}
	}
	return nil
}
