// Command traceview renders a causal trace (span JSONL, as written by
// rpccsim -trace-out, cmd/scale -trace-out, or cmd/tracecol) as a
// deterministic text report: the top-k critical paths with per-segment
// self-time attribution, the per-phase latency decomposition across all
// completed queries, and per-region span accounting.
//
//	traceview -in trace.jsonl
//	traceview -in trace.jsonl -topk 10 -paths=false
//
// The report is a pure function of the file contents — `make trace-smoke`
// byte-compares the output of two same-seed runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "span JSONL file (required)")
		topk      = flag.Int("topk", 5, "critical paths to print in full")
		showPaths = flag.Bool("paths", true, "print the top-k critical paths")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	spans, err := ctrace.ReadJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	spans = ctrace.Merge(spans) // canonical order regardless of producer

	paths := ctrace.ExtractCriticalPaths(spans)
	fmt.Printf("trace: %d spans, %d roots\n", len(spans), len(paths))
	regionReport(spans)
	phaseReport(paths)
	if *showPaths {
		pathReport(ctrace.TopK(paths, *topk))
	}
	return nil
}

// regionReport prints per-region span accounting: how much causal
// activity each shard / daemon contributed.
func regionReport(spans []ctrace.Span) {
	idx := map[int]int{}
	var regions []int
	type acc struct {
		spans int
		roots int
		self  int64
	}
	var accs []acc
	for _, s := range spans {
		i, ok := idx[s.Region]
		if !ok {
			i = len(accs)
			idx[s.Region] = i
			regions = append(regions, s.Region)
			accs = append(accs, acc{})
		}
		accs[i].spans++
		if s.Parent == 0 {
			accs[i].roots++
		}
		accs[i].self += s.Duration()
	}
	sort.Ints(regions)
	fmt.Printf("\nper-region activity:\n")
	fmt.Printf("  %-8s %8s %8s %14s\n", "region", "spans", "roots", "span-time")
	for _, r := range regions {
		a := accs[idx[r]]
		fmt.Printf("  %-8d %8d %8d %14s\n", r, a.spans, a.roots, dur(a.self))
	}
}

// phaseReport prints the latency decomposition: where, across every
// completed operation's critical path, the time actually went.
func phaseReport(paths []ctrace.CriticalPath) {
	phases, totals, counts := ctrace.PhaseTotals(paths)
	var grand int64
	for _, ph := range phases {
		grand += totals[ph]
	}
	fmt.Printf("\nper-phase latency (critical-path self time):\n")
	fmt.Printf("  %-12s %8s %14s %7s\n", "phase", "segs", "total", "share")
	for _, ph := range phases {
		share := 0.0
		if grand > 0 {
			share = 100 * float64(totals[ph]) / float64(grand)
		}
		fmt.Printf("  %-12s %8d %14s %6.1f%%\n", ph, counts[ph], dur(totals[ph]), share)
	}
	fmt.Printf("  %-12s %8s %14s\n", "(all)", "", dur(grand))
}

// pathReport prints the slowest operations segment by segment.
func pathReport(top []ctrace.CriticalPath) {
	fmt.Printf("\ntop %d critical paths:\n", len(top))
	for i, p := range top {
		fmt.Printf("  #%d  %s  total=%s  node=%d region=%d trace=%x\n",
			i+1, p.Root.Name, dur(p.TotalNs), p.Root.Node, p.Root.Region, p.Root.Trace)
		for _, seg := range p.Segments {
			fmt.Printf("      %-12s %-14s self=%-12s node=%d [%d..%d]\n",
				seg.Span.Phase, seg.Span.Name, dur(seg.SelfNs), seg.Span.Node,
				seg.Span.StartNs, seg.Span.EndNs)
		}
	}
}

// dur renders nanoseconds via time.Duration's canonical formatting.
func dur(ns int64) string { return time.Duration(ns).String() }
