// Command chaos runs one RPCC scenario under a deterministic fault
// campaign — network partitions, bursty Gilbert–Elliott loss, node
// crashes, relay assassination, duplication and reordering — while the
// consistency invariants are audited throughout (see internal/faults).
//
// Everything is a pure function of the seed: two runs with identical
// flags produce byte-identical stdout, metrics and span logs, which is
// what `make chaos-smoke` asserts. The exit status is non-zero when any
// invariant is violated, so the command doubles as a CI soak gate.
//
// Examples:
//
//	chaos                         # demonstration campaign, 25 simulated minutes
//	chaos -seed 7 -gilbert 0.05,0.2,0,0.9
//	chaos -crash "" -assassinate ""   # partitions and loss only
//	chaos -sweep 8 -parallel 8        # same campaign across 8 seeds on the fleet
//	chaos -policy lfu -cache 4 -zipf -hotspot 6m,8m,1,0.8
//	                                  # flash crowd on item 1 under replacement churn
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/experiment"
	"github.com/manetlab/rpcc/internal/faults"
	"github.com/manetlab/rpcc/internal/fleet"
	"github.com/manetlab/rpcc/internal/telemetry"
	"github.com/manetlab/rpcc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		strategy = flag.String("strategy", "rpcc-sc", "rpcc-sc | rpcc-dc | rpcc-wc | rpcc-hy")
		seed     = flag.Int64("seed", 11, "root random seed")
		peers    = flag.Int("peers", 50, "number of mobile peers")
		simTime  = flag.Duration("simtime", 25*time.Minute, "simulated duration")
		update   = flag.Duration("update", 2*time.Minute, "mean update interval")
		query    = flag.Duration("query", 20*time.Second, "mean query interval")

		policy   = flag.String("policy", "", "cache replacement policy: lru | lfu | ttl | utility (empty = lru)")
		cacheNum = flag.Int("cache", 0, "cache capacity per peer (0 = strategy default)")
		zipf     = flag.Bool("zipf", false, "Zipf-skewed item popularity instead of the default cached-domain mix")
		hotspot  = flag.String("hotspot", "", "flash-crowd hotspot start,duration,item,weight (empty disables)")
		diurnal  = flag.String("diurnal", "", "diurnal load modulation period,min-level (empty disables)")

		split      = flag.Duration("split", 5*time.Minute, "partition start (0 disables the partition)")
		healAt     = flag.Duration("heal-at", 10*time.Minute, "partition heal time")
		islandFrac = flag.Float64("island-frac", 0.5, "fraction of highest-id peers cut into the island")
		gilbert    = flag.String("gilbert", "0.02,0.3,0,0.8", "bursty loss p_g2b,p_b2g,loss_good,loss_bad (empty disables)")
		crash      = flag.String("crash", "18m,7,1m", "crash at,node,restart-after (empty disables; restart 0 = permanent)")
		assassin   = flag.String("assassinate", "15m,3,1,2m", "relay assassination at,item,count,restart-after (empty disables)")
		dup        = flag.Float64("dup", 0.01, "per-delivery duplication probability [0,1)")
		reorder    = flag.Duration("reorder", 5*time.Millisecond, "max extra delivery jitter for reordering")

		repairWin = flag.Duration("repair-window", 6*time.Minute, "heal-convergence audit window (0 disables invariant 3)")
		budget    = flag.Float64("strong-budget", 0.5, "tolerated stale-SC answer fraction [0,1]")

		sweep      = flag.Int("sweep", 1, "run the campaign across this many seeds (seed..seed+N-1) on the fleet")
		parallel   = flag.Int("parallel", 0, "concurrent sweep runs (0 = all cores)")
		detail     = flag.Bool("detail", false, "print the per-kind traffic breakdown")
		metricsOut = flag.String("metrics-out", "", "write Prometheus text metrics to this file (merged across a sweep)")
		telemOut   = flag.String("telemetry", "", "write span-level telemetry JSONL to this file (requires -sweep 1)")
	)
	flag.Parse()

	cfg := experiment.DefaultConfig(experiment.StrategyKind(*strategy), *seed)
	cfg.NPeers = *peers
	cfg.SimTime = *simTime
	cfg.UpdateInterval = *update
	cfg.QueryInterval = *query
	cfg.CachePolicy = cache.PolicyKind(*policy)
	if *cacheNum > 0 {
		cfg.CacheNum = *cacheNum
	}
	if *zipf {
		cfg.Popularity = workload.PopularityZipf
	}
	if *hotspot != "" {
		hs, err := parseHotspot(*hotspot)
		if err != nil {
			return err
		}
		cfg.Hotspots = []workload.Hotspot{hs}
	}
	if *diurnal != "" {
		period, min, err := parseDiurnal(*diurnal)
		if err != nil {
			return err
		}
		cfg.DiurnalPeriod = period
		cfg.DiurnalMin = min
	}

	campaign, err := buildCampaign(*peers, *split, *healAt, *islandFrac, *gilbert, *crash, *assassin,
		*dup, *reorder, *repairWin, *budget)
	if err != nil {
		return err
	}

	if *sweep > 1 {
		if *telemOut != "" {
			return fmt.Errorf("-telemetry records one run's span log; use -sweep 1")
		}
		return runSweep(cfg, campaign, *sweep, *parallel, *metricsOut)
	}

	level := telemetry.LevelMetrics
	if *telemOut != "" {
		level = telemetry.LevelSpans
	}
	hub := telemetry.NewHub(level)

	// A deterministic simulation cannot stop midway, so the first
	// interrupt defers: the run finishes and every sink flushes. A second
	// interrupt gets the default fatal behaviour back.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Fprintln(os.Stderr, "chaos: interrupt — finishing the run so metrics/telemetry flush (interrupt again to abort)")
			signal.Stop(sigc)
		}
	}()

	start := time.Now()
	res, rep, err := experiment.RunChaos(cfg, hub, campaign)
	if err != nil {
		return err
	}
	// Wall time goes to stderr: stdout must be a pure function of the
	// seed so chaos-smoke can byte-compare two runs.
	fmt.Fprintf(os.Stderr, "chaos: simulated %v of %d peers in %v wall time\n",
		cfg.SimTime, cfg.NPeers, time.Since(start).Round(time.Millisecond))
	if *detail {
		fmt.Print(experiment.RenderDetail(res))
	} else {
		fmt.Println(res)
	}
	fmt.Println(rep)

	if *metricsOut != "" {
		if err := writeMetricsFile(*metricsOut, res.Telemetry); err != nil {
			return err
		}
	}
	if *telemOut != "" {
		f, err := os.Create(*telemOut)
		if err != nil {
			return err
		}
		if err := hub.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if !rep.Passed() {
		return fmt.Errorf("invariant audit failed")
	}
	return nil
}

// runSweep runs the same campaign across consecutive seeds on the fleet
// pool, printing one verdict line per seed. Any violated invariant (or
// failed run) fails the sweep.
func runSweep(base experiment.Config, campaign faults.Config, sweep, parallel int, metricsOut string) error {
	jobs := make([]fleet.Job, sweep)
	for i := range jobs {
		cfg := base
		cfg.Seed = base.Seed + int64(i)
		jobs[i] = fleet.Job{Key: cfg.Key(), Config: cfg}
	}

	// The fleet executor runs jobs on parallel workers; reports are
	// collected per seed under a lock and joined with records afterwards.
	var mu sync.Mutex
	reports := make(map[int64]faults.Report, sweep)
	execute := func(cfg experiment.Config) (experiment.Result, error) {
		res, rep, err := experiment.RunChaos(cfg, telemetry.NewHub(telemetry.LevelMetrics), campaign)
		if err != nil {
			return res, err
		}
		mu.Lock()
		reports[cfg.Seed] = *rep
		mu.Unlock()
		return res, nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	frep, runErr := fleet.Run(ctx, jobs, fleet.Options{Parallel: parallel, Progress: os.Stderr, Execute: execute})

	failed := 0
	var merged *telemetry.Snapshot
	for _, rec := range frep.Records {
		if rec.Status != fleet.StatusOK {
			fmt.Printf("seed %-3d %s: %s\n", rec.Seed, rec.Status, rec.Error)
			failed++
			continue
		}
		rep := reports[rec.Seed]
		fmt.Printf("seed %-3d %s\n", rec.Seed, rep)
		if !rep.Passed() {
			failed++
		}
		if metricsOut != "" {
			if res, ok := frep.Result(rec.Key); ok && res.Telemetry != nil {
				if merged == nil {
					merged = res.Telemetry
				} else if err := merged.Merge(res.Telemetry); err != nil {
					return fmt.Errorf("merge telemetry for seed %d: %w", rec.Seed, err)
				}
			}
		}
	}
	// Flush the merged metrics of every completed run even when the sweep
	// was interrupted — partial telemetry beats none.
	if metricsOut != "" && merged != nil {
		if err := writeMetricsFile(metricsOut, merged); err != nil {
			return err
		}
	}
	if runErr != nil {
		return fmt.Errorf("sweep interrupted (%d/%d runs completed): %w",
			frep.Executed, len(frep.Records), runErr)
	}
	fmt.Printf("\nsweep: %d seeds, %d failed, %v wall (%.2f runs/s)\n",
		sweep, failed, frep.Wall.Round(time.Millisecond), frep.RunsPerSec())
	if failed > 0 {
		return fmt.Errorf("%d of %d campaign runs violated invariants or failed", failed, sweep)
	}
	return nil
}

// buildCampaign assembles the faults.Config from the flag values. Empty
// string flags disable their fault class; validation is delegated to
// faults.Config.Validate via the run entry point.
func buildCampaign(peers int, split, healAt time.Duration, islandFrac float64,
	gilbert, crash, assassin string, dup float64, reorder, repairWin time.Duration,
	budget float64) (faults.Config, error) {
	fc := faults.Config{
		DupProb:           dup,
		ReorderMax:        reorder,
		RepairWindow:      repairWin,
		StrongStaleBudget: budget,
	}

	if split > 0 {
		if islandFrac <= 0 || islandFrac >= 1 {
			return fc, fmt.Errorf("island fraction %g outside (0,1)", islandFrac)
		}
		n := int(float64(peers) * islandFrac)
		if n < 1 {
			n = 1
		}
		island := make([]int, n)
		for i := range island {
			island[i] = peers - n + i
		}
		fc.Partitions = []faults.Partition{{Start: split, End: healAt, Islands: [][]int{island}}}
	}

	if gilbert != "" {
		p, err := parseFloats(gilbert, 4)
		if err != nil {
			return fc, fmt.Errorf("-gilbert: %v", err)
		}
		fc.Loss = &faults.GilbertParams{PGoodToBad: p[0], PBadToGood: p[1], LossGood: p[2], LossBad: p[3]}
	}

	if crash != "" {
		parts := strings.Split(crash, ",")
		if len(parts) != 3 {
			return fc, fmt.Errorf("-crash: want at,node,restart-after, got %q", crash)
		}
		at, err := time.ParseDuration(strings.TrimSpace(parts[0]))
		if err != nil {
			return fc, fmt.Errorf("-crash: %v", err)
		}
		node, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return fc, fmt.Errorf("-crash: %v", err)
		}
		restart, err := time.ParseDuration(strings.TrimSpace(parts[2]))
		if err != nil {
			return fc, fmt.Errorf("-crash: %v", err)
		}
		fc.Crashes = []faults.Crash{{At: at, Node: node, RestartAfter: restart}}
	}

	if assassin != "" {
		parts := strings.Split(assassin, ",")
		if len(parts) != 4 {
			return fc, fmt.Errorf("-assassinate: want at,item,count,restart-after, got %q", assassin)
		}
		at, err := time.ParseDuration(strings.TrimSpace(parts[0]))
		if err != nil {
			return fc, fmt.Errorf("-assassinate: %v", err)
		}
		item, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return fc, fmt.Errorf("-assassinate: %v", err)
		}
		count, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return fc, fmt.Errorf("-assassinate: %v", err)
		}
		restart, err := time.ParseDuration(strings.TrimSpace(parts[3]))
		if err != nil {
			return fc, fmt.Errorf("-assassinate: %v", err)
		}
		fc.Assassinations = []faults.Assassination{{At: at, Item: data.ItemID(item), Count: count, RestartAfter: restart}}
	}
	return fc, nil
}

// parseFloats splits a comma-separated list into exactly n floats.
func parseFloats(s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d comma-separated values, got %d", n, len(parts))
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// parseHotspot reads a "start,duration,item,weight" flash-crowd window.
func parseHotspot(s string) (workload.Hotspot, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return workload.Hotspot{}, fmt.Errorf("-hotspot: want start,duration,item,weight, got %q", s)
	}
	start, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return workload.Hotspot{}, fmt.Errorf("-hotspot: %v", err)
	}
	dur, err := time.ParseDuration(strings.TrimSpace(parts[1]))
	if err != nil {
		return workload.Hotspot{}, fmt.Errorf("-hotspot: %v", err)
	}
	item, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return workload.Hotspot{}, fmt.Errorf("-hotspot: %v", err)
	}
	weight, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
	if err != nil {
		return workload.Hotspot{}, fmt.Errorf("-hotspot: %v", err)
	}
	return workload.Hotspot{Start: start, Duration: dur, Item: data.ItemID(item), Weight: weight}, nil
}

// parseDiurnal reads a "period,min-level" load modulation pair.
func parseDiurnal(s string) (time.Duration, float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-diurnal: want period,min-level, got %q", s)
	}
	period, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("-diurnal: %v", err)
	}
	min, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-diurnal: %v", err)
	}
	return period, min, nil
}

// writeMetricsFile renders a snapshot in Prometheus text format at path.
func writeMetricsFile(path string, s *telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheus(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
