// Command rpccd is the live RPCC node daemon: the full protocol engine
// (internal/core) bound to a real UDP socket (internal/wire), with
// source duties gated to this node's id. N daemons with the same peer
// table compose into exactly the simulated N-node system.
//
// Examples:
//
//	rpccd -id 0 -n 3 -listen 127.0.0.1:9000 \
//	      -peers "0=127.0.0.1:9000,1=127.0.0.1:9001,2=127.0.0.1:9002"
//	rpccd -id 1 -n 3 -listen 127.0.0.1:9001 -peers-file peers.txt \
//	      -strategy rpcc-dc -metrics-out node1.prom
//	rpccd -compose -n 8 -compose-out deploy/   # emit docker-compose + churn
//
// The daemon runs until -duration elapses (zero = forever) or SIGTERM/
// SIGINT arrives; either way it drains the engine within -drain, closes
// the socket, flushes telemetry sinks, and prints a one-line summary.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
	"github.com/manetlab/rpcc/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rpccd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 0, "this node's id (0..n-1)")
		n        = flag.Int("n", 0, "cluster width (number of nodes)")
		listen   = flag.String("listen", "", "UDP listen address (host:port; defaults to this id's peer entry)")
		peers    = flag.String("peers", "", "static peer table: \"0=host:port,1=host:port,...\"")
		peerFile = flag.String("peers-file", "", "peer table file: one \"id=host:port\" per line, # comments")
		strategy = flag.String("strategy", wire.StrategyRPCCSC, "rpcc-sc | rpcc-dc | rpcc-wc | rpcc-hy")
		seed     = flag.Int64("seed", 1, "workload seed for this daemon")
		cacheNum = flag.Int("cachenum", 4, "foreign items cached (cyclic placement), ignored with -items")
		items    = flag.String("items", "", "explicit placement: comma-separated item ids (overrides -cachenum)")
		query    = flag.Duration("query", 250*time.Millisecond, "mean query interval (0 disables the workload)")
		update   = flag.Duration("update", time.Second, "mean update interval for this node's item")
		ttn      = flag.Duration("ttn", 0, "invalidation announcement interval (0 = protocol default)")
		ttr      = flag.Duration("ttr", 0, "relay freshness window (0 = protocol default)")
		ttp      = flag.Duration("ttp", 0, "delta-consistency window (0 = protocol default)")
		coeff    = flag.Duration("coeff", 0, "coefficient recomputation period (0 = protocol default)")
		duration = flag.Duration("duration", 0, "run length (0 = run until SIGTERM/SIGINT)")
		drain    = flag.Duration("drain", 5*time.Second, "shutdown drain deadline")

		faults     = flag.String("faults", "", "JSON wire fault script; every daemon of a campaign loads the same file")
		faultsOff  = flag.Duration("faults-offset", 0, "campaign time already elapsed at this daemon's start (restarted daemons)")
		ownVersion = flag.Uint64("own-version", 0, "resume this daemon's own item at this version (restarted daemons)")
		crashAfter = flag.Duration("crash-after", 0, "abruptly exit(3) after this long — no drain, no flush (chaos harnesses)")

		metricsOut = flag.String("metrics-out", "", "write Prometheus text metrics to this file at shutdown")
		teleOut    = flag.String("telemetry", "", "write JSONL telemetry events to this file at shutdown")
		traceOut   = flag.String("trace-out", "", "write this daemon's causal-trace span JSONL to this file at shutdown")
		traceTo    = flag.String("trace-to", "", "ship the span stream to a tracecol aggregator (host:port) at shutdown")
		pprofAddr  = flag.String("pprof", "", "serve pprof and runtime stats on this address (e.g. 127.0.0.1:6060)")

		compose    = flag.Bool("compose", false, "emit a docker-compose deployment instead of running")
		composeOut = flag.String("compose-out", ".", "directory for docker-compose.yml and churn.sh")
		image      = flag.String("image", "rpcc:latest", "container image for -compose")
		prefix     = flag.String("prefix", "rpcc-node-", "service/container name prefix for -compose")
		port       = flag.Int("port", 9000, "in-container UDP port for -compose")
	)
	flag.Parse()

	if *compose {
		return emitCompose(composeConfig(*n, *strategy, *image, *prefix, *port, *seed, *cacheNum,
			*query, *update, *ttn, *ttr, *ttp, *coeff, *duration), *composeOut)
	}

	table, err := peerTable(*peers, *peerFile)
	if err != nil {
		return err
	}
	if *n == 0 {
		*n = len(table)
	}
	if len(table) != *n {
		return fmt.Errorf("peer table has %d entries, want n=%d", len(table), *n)
	}
	if *id < 0 || *id >= *n {
		return fmt.Errorf("id %d out of range [0,%d)", *id, *n)
	}
	addr := *listen
	if addr == "" {
		addr = table[*id]
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("listen address %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}

	placement, err := parsePlacement(*items, *id, *n, *cacheNum)
	if err != nil {
		conn.Close()
		return err
	}

	cc := core.DefaultConfig()
	if *ttn > 0 {
		cc.TTN = *ttn
	}
	if *ttr > 0 {
		cc.TTR = *ttr
	}
	if *ttp > 0 {
		cc.TTP = *ttp
	}
	if *coeff > 0 {
		cc.CoeffPeriod = *coeff
	}

	level := telemetry.LevelOff
	if *metricsOut != "" {
		level = telemetry.LevelMetrics
	}
	if *teleOut != "" {
		level = telemetry.LevelSpans
	}
	var hub *telemetry.Hub
	if level != telemetry.LevelOff {
		hub = telemetry.NewHub(level)
	}
	if *pprofAddr != "" {
		got, err := telemetry.ServePprof(*pprofAddr)
		if err != nil {
			conn.Close()
			return err
		}
		fmt.Fprintln(os.Stderr, "rpccd: pprof on", got)
	}

	var tracer *ctrace.Collector
	if *traceOut != "" || *traceTo != "" {
		tracer = ctrace.NewCollector(*id)
	}
	var script *wire.Script
	if *faults != "" {
		script, err = wire.LoadScript(*faults)
		if err != nil {
			conn.Close()
			return err
		}
	}
	nd, err := wire.NewNode(wire.NodeConfig{
		Self: *id, Nodes: *n, Peers: table, Conn: conn,
		Seed: *seed, Strategy: *strategy, Core: cc,
		Placement: placement, QueryInterval: *query, UpdateInterval: *update,
		Hub: hub, Trace: tracer,
		Chaos: script, ChaosOffset: *faultsOff,
		ResumeOwnVersion: data.Version(*ownVersion),
	})
	if err != nil {
		conn.Close()
		return err
	}
	if err := nd.Start(); err != nil {
		nd.Stop(*drain)
		return err
	}
	fmt.Fprintf(os.Stderr, "rpccd: node %d/%d (%s) listening on %s\n",
		*id, *n, *strategy, nd.LocalAddr())

	// Run until the duration elapses or a signal arrives; both paths go
	// through the same deadline-bounded drain. -crash-after bypasses them
	// entirely: a scheduled chaos crash is abrupt by definition.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	var timeout <-chan time.Time
	if *duration > 0 {
		t := time.NewTimer(*duration)
		defer t.Stop()
		timeout = t.C
	}
	var crash <-chan time.Time
	if *crashAfter > 0 {
		t := time.NewTimer(*crashAfter)
		defer t.Stop()
		crash = t.C
	}
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "rpccd: %v, draining (deadline %v)\n", sig, *drain)
	case <-timeout:
		fmt.Fprintf(os.Stderr, "rpccd: %v elapsed, draining (deadline %v)\n", *duration, *drain)
	case <-crash:
		fmt.Fprintf(os.Stderr, "rpccd: scheduled crash after %v\n", *crashAfter)
		os.Exit(3)
	}
	stopErr := nd.Stop(*drain)

	// Flush sinks even on an unclean drain — partial telemetry beats none.
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, hub.Snapshot()); err != nil {
			return err
		}
	}
	if *teleOut != "" {
		if err := writeJSONL(*teleOut, hub); err != nil {
			return err
		}
	}
	if tracer != nil {
		spans := nd.TraceSpans()
		if *traceOut != "" {
			if err := writeTrace(*traceOut, spans); err != nil {
				return err
			}
		}
		if *traceTo != "" {
			if err := shipTrace(*traceTo, spans); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "rpccd: shipped %d spans to %s\n", len(spans), *traceTo)
		}
	}
	fmt.Println(nd.Summary())
	return stopErr
}

// writeTrace writes the daemon's span set as JSONL at path.
func writeTrace(path string, spans []ctrace.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ctrace.WriteJSONL(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// shipTrace streams the span set to a tracecol aggregator over TCP: one
// JSONL stream per connection, terminated by closing the write side.
func shipTrace(addr string, spans []ctrace.Span) error {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("trace-to %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	return ctrace.WriteJSONL(conn, spans)
}

// peerTable parses the -peers list or -peers-file into id -> address.
func peerTable(inline, file string) (map[int]string, error) {
	if (inline == "") == (file == "") {
		return nil, fmt.Errorf("exactly one of -peers or -peers-file is required")
	}
	var entries []string
	if inline != "" {
		entries = strings.Split(inline, ",")
	} else {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			entries = append(entries, line)
		}
	}
	table := make(map[int]string, len(entries))
	for _, e := range entries {
		idStr, addr, ok := strings.Cut(strings.TrimSpace(e), "=")
		if !ok {
			return nil, fmt.Errorf("peer entry %q: want id=host:port", e)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil {
			return nil, fmt.Errorf("peer entry %q: bad id: %w", e, err)
		}
		if _, dup := table[id]; dup {
			return nil, fmt.Errorf("peer entry %q: duplicate id %d", e, id)
		}
		table[id] = strings.TrimSpace(addr)
	}
	return table, nil
}

// parsePlacement resolves -items or falls back to cyclic placement.
func parsePlacement(items string, self, n, cacheNum int) ([]data.ItemID, error) {
	if items == "" {
		return wire.CyclicPlacement(self, n, cacheNum), nil
	}
	var out []data.ItemID
	for _, f := range strings.Split(items, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("placement item %q: %w", f, err)
		}
		out = append(out, data.ItemID(v))
	}
	return out, nil
}

func composeConfig(n int, strategy, image, prefix string, port int, seed int64, cacheNum int,
	query, update, ttn, ttr, ttp, coeff, duration time.Duration) wire.ComposeConfig {
	cfg := wire.DefaultComposeConfig()
	if n > 0 {
		cfg.N = n
	}
	cfg.Strategy = strategy
	cfg.Image = image
	cfg.Prefix = prefix
	cfg.Port = port
	cfg.Seed = seed
	cfg.CacheNum = cacheNum
	cfg.QueryInterval = query
	cfg.UpdateInterval = update
	cfg.TTN, cfg.TTR, cfg.TTP, cfg.CoeffPeriod = ttn, ttr, ttp, coeff
	cfg.Duration = duration
	return cfg
}

// emitCompose writes docker-compose.yml and churn.sh into dir.
func emitCompose(cfg wire.ComposeConfig, dir string) error {
	composeYML, err := cfg.GenerateCompose()
	if err != nil {
		return err
	}
	churnSH, err := cfg.GenerateChurn()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ymlPath := filepath.Join(dir, "docker-compose.yml")
	if err := os.WriteFile(ymlPath, []byte(composeYML), 0o644); err != nil {
		return err
	}
	churnPath := filepath.Join(dir, "churn.sh")
	if err := os.WriteFile(churnPath, []byte(churnSH), 0o755); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s (%d-node %s cluster)\n", ymlPath, churnPath, cfg.N, cfg.Strategy)
	return nil
}

func writeMetrics(path string, s *telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheus(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSONL(path string, hub *telemetry.Hub) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := hub.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
