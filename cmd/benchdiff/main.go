// Command benchdiff compares two `go test -bench` output files by
// benchmark name and renders a benchstat-style delta table. It exists so
// `make bench-compare` works in environments without the benchstat tool;
// with -json it additionally exports the comparison (plus the fleet
// sweep's runs_per_sec) as a machine-readable artefact (BENCH_hotpath.json).
//
// Usage:
//
//	benchdiff old.txt new.txt
//	benchdiff -json BENCH_hotpath.json -fleet BENCH_fleet.json \
//	          -fleet-baseline 59.105 old.txt new.txt
//
// Repeated runs of the same benchmark (go test -count=N) are averaged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's averaged measurements.
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	runs        int
}

// comparison pairs one benchmark's old and new measurements.
type comparison struct {
	Name    string   `json:"name"`
	Old     *metrics `json:"old,omitempty"`
	New     *metrics `json:"new,omitempty"`
	Speedup float64  `json:"speedup,omitempty"`     // old ns / new ns
	AllocDx float64  `json:"alloc_ratio,omitempty"` // old allocs / new allocs
}

// fleetBench mirrors the fields of internal/fleet's bench export that the
// hot-path artefact repeats.
type fleetBench struct {
	Jobs        int     `json:"jobs"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	RunsPerSec  float64 `json:"runs_per_sec"`
}

// artefact is the BENCH_hotpath.json schema.
type artefact struct {
	Name       string       `json:"name"`
	Benchmarks []comparison `json:"benchmarks"`
	Fleet      *struct {
		fleetBench
		BaselineRunsPerSec float64 `json:"baseline_runs_per_sec"`
		SpeedupVsBaseline  float64 `json:"speedup_vs_baseline"`
	} `json:"fleet,omitempty"`
}

func main() {
	jsonOut := flag.String("json", "", "also write the comparison as JSON to this file")
	name := flag.String("name", "hotpath", "artefact name recorded in the JSON export")
	fleetFile := flag.String("fleet", "", "fleet bench export (BENCH_fleet.json) to embed in the JSON artefact")
	fleetBase := flag.Float64("fleet-baseline", 0, "baseline runs_per_sec to compare the fleet export against")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-json out.json] [-fleet BENCH_fleet.json] old.txt new.txt")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *jsonOut, *name, *fleetFile, *fleetBase); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath, jsonOut, name, fleetFile string, fleetBase float64) error {
	oldM, err := parseFile(oldPath)
	if err != nil {
		return err
	}
	newM, err := parseFile(newPath)
	if err != nil {
		return err
	}
	comps := merge(oldM, newM)
	if len(comps) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	printTable(comps)
	if jsonOut == "" {
		return nil
	}
	art := artefact{Name: name, Benchmarks: comps}
	if fleetFile != "" {
		fb, err := readFleet(fleetFile)
		if err != nil {
			return err
		}
		art.Fleet = &struct {
			fleetBench
			BaselineRunsPerSec float64 `json:"baseline_runs_per_sec"`
			SpeedupVsBaseline  float64 `json:"speedup_vs_baseline"`
		}{fleetBench: fb, BaselineRunsPerSec: fleetBase}
		if fleetBase > 0 {
			art.Fleet.SpeedupVsBaseline = fb.RunsPerSec / fleetBase
		}
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonOut, append(buf, '\n'), 0o644)
}

// parseFile extracts benchmark lines of the form
//
//	BenchmarkName-8  1234  56.7 ns/op  8 B/op  1 allocs/op
//
// averaging repeated occurrences of the same name.
func parseFile(path string) (map[string]*metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]*metrics{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix so runs on different machines line up.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		if m == nil {
			m = &metrics{}
			out[name] = m
		}
		m.runs++
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp += v
			case "B/op":
				m.BytesPerOp += v
			case "allocs/op":
				m.AllocsPerOp += v
			}
		}
	}
	for _, m := range out {
		m.NsPerOp /= float64(m.runs)
		m.BytesPerOp /= float64(m.runs)
		m.AllocsPerOp /= float64(m.runs)
	}
	return out, sc.Err()
}

// merge pairs benchmarks present in both files, sorted by name.
func merge(oldM, newM map[string]*metrics) []comparison {
	var names []string
	for name := range oldM {
		if _, ok := newM[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]comparison, 0, len(names))
	for _, name := range names {
		c := comparison{Name: name, Old: oldM[name], New: newM[name]}
		if c.New.NsPerOp > 0 {
			c.Speedup = c.Old.NsPerOp / c.New.NsPerOp
		}
		if c.New.AllocsPerOp > 0 {
			c.AllocDx = c.Old.AllocsPerOp / c.New.AllocsPerOp
		}
		out = append(out, c)
	}
	return out
}

func printTable(comps []comparison) {
	fmt.Printf("%-28s %14s %14s %9s %14s %14s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs/op", "new allocs/op")
	for _, c := range comps {
		delta := "~"
		if c.Old.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(c.New.NsPerOp-c.Old.NsPerOp)/c.Old.NsPerOp)
		}
		fmt.Printf("%-28s %14.1f %14.1f %9s %14.1f %14.1f\n",
			c.Name, c.Old.NsPerOp, c.New.NsPerOp, delta, c.Old.AllocsPerOp, c.New.AllocsPerOp)
	}
}

func readFleet(path string) (fleetBench, error) {
	var fb fleetBench
	buf, err := os.ReadFile(path)
	if err != nil {
		return fb, err
	}
	if err := json.Unmarshal(buf, &fb); err != nil {
		return fb, fmt.Errorf("%s: %w", path, err)
	}
	return fb, nil
}
