// Command figures regenerates every figure of the paper's evaluation
// section (Fig 7a–c, 8a–c, 9a–b, plus the §5.3 relay-count series) as
// aligned text tables. Simulations are dispatched through the fleet
// orchestrator: all (strategy, sweep-point, replica) scenarios across
// the selected figures are deduplicated (fig7a/fig8a share one
// simulation matrix) and run concurrently, one worker per core by
// default. Results are identical to a serial run for the same seed.
//
// A full 5-hour Table 1 reproduction on all cores, journaled so it can
// be interrupted and resumed:
//
//	figures -simtime 5h -parallel 8 -journal runs.jsonl
//	figures -simtime 5h -parallel 8 -journal runs.jsonl -resume
//
// A quick pass (seconds of wall time):
//
//	figures -simtime 30m
//
// Single figure, serial reference mode:
//
//	figures -only fig9a -parallel 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
	"github.com/manetlab/rpcc/internal/fleet"
	"github.com/manetlab/rpcc/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		simTime    = flag.Duration("simtime", time.Hour, "simulated duration per run (paper: 5h)")
		seed       = flag.Int64("seed", 1, "root random seed")
		only       = flag.String("only", "", "run a single figure (fig7a..fig9b, relay-count, policy-hit, policy-lat, rw-ratio, diurnal-load)")
		extra      = flag.Bool("extra", false, "append the non-paper sweeps (replacement-policy comparison, read/write ratio, diurnal load)")
		format     = flag.String("format", "table", "output format: table | csv")
		replicas   = flag.Int("replicas", 1, "independent seeds per point, averaged")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = all cores); results are identical for any value")
		journal    = flag.String("journal", "", "append-only JSONL run journal (one record per completed/failed run)")
		resume     = flag.Bool("resume", false, "reuse successful runs already in -journal; retry failures")
		timeout    = flag.Duration("timeout", 0, "per-run wall-clock timeout (0 = none)")
		bench      = flag.String("bench", "", "write a machine-readable wall-time/throughput record (e.g. BENCH_fleet.json)")
		metricsOut = flag.String("metrics-out", "", "write Prometheus text metrics merged across every run to this file")
		telemDir   = flag.String("telemetry", "", "write one span-level JSONL file per executed run into this directory")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := telemetry.ServePprof(*pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "figures: pprof on http://%s/debug/pprof/\n", addr)
		defer telemetry.StartRuntimeStats(os.Stderr, 10*time.Second)()
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *resume && *journal == "" {
		return fmt.Errorf("-resume requires -journal")
	}

	specs := experiment.AllFigureSpecs()
	if *extra {
		specs = append(specs, experiment.ExtraFigureSpecs()...)
	}
	if *only != "" {
		// -only searches the full catalogue, paper and extra alike, so
		// `figures -only policy-hit` works without -extra.
		var filtered []experiment.SweepSpec
		for _, s := range append(experiment.AllFigureSpecs(), experiment.ExtraFigureSpecs()...) {
			if s.ID == *only {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("unknown figure %q", *only)
		}
		specs = filtered
	}

	base := experiment.DefaultConfig(experiment.StrategyRPCCSC, *seed)
	base.SimTime = *simTime

	// One job list across every selected figure; the fleet runs each
	// distinct scenario once even when figures share a sweep matrix.
	var jobs []fleet.Job
	for _, spec := range specs {
		sweep, err := experiment.SweepJobs(spec, base, *replicas)
		if err != nil {
			return err
		}
		for _, j := range sweep {
			jobs = append(jobs, fleet.Job{Key: j.Key, Config: j.Config})
		}
	}

	opts := fleet.Options{
		Parallel: *parallel,
		Timeout:  *timeout,
		Progress: os.Stderr,
	}
	if *telemDir != "" {
		if err := os.MkdirAll(*telemDir, 0o755); err != nil {
			return err
		}
		// Span-level runs: each worker records its run's full span log
		// and drops it next to the others, one file per scenario key.
		opts.Execute = func(cfg experiment.Config) (experiment.Result, error) {
			hub := telemetry.NewHub(telemetry.LevelSpans)
			res, err := experiment.RunWithTelemetry(cfg, hub)
			if err != nil {
				return res, err
			}
			path := filepath.Join(*telemDir, sanitizeKey(cfg.Key())+".jsonl")
			f, ferr := os.Create(path)
			if ferr != nil {
				return res, ferr
			}
			if werr := hub.WriteJSONL(f); werr != nil {
				f.Close()
				return res, werr
			}
			return res, f.Close()
		}
	}
	if *journal != "" {
		jl, err := fleet.OpenJournal(*journal, *resume)
		if err != nil {
			return err
		}
		defer jl.Close()
		opts.Journal = jl
	}

	// Ctrl-C cancels the context; the fleet drains in-flight runs into
	// the journal and we exit with the partial report recorded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, runErr := fleet.Run(ctx, jobs, opts)

	if *bench != "" {
		if err := fleet.WriteBench(*bench, rep.Bench()); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := writeMergedMetrics(*metricsOut, rep.Records); err != nil {
			return err
		}
	}
	if runErr != nil {
		return fmt.Errorf("sweep interrupted (%d/%d runs journaled): %w", rep.Executed+rep.Resumed, len(rep.Records), runErr)
	}

	var failedFigures []string
	for _, spec := range specs {
		fig, err := experiment.AssembleFigure(spec, base, *replicas, rep.Result)
		if err != nil {
			failedFigures = append(failedFigures, spec.ID)
			fmt.Fprintf(os.Stderr, "figures: %s incomplete: %v\n", spec.ID, err)
			continue
		}
		if *format == "csv" {
			fmt.Print(renderCSV(fig, spec))
		} else {
			fmt.Print(experiment.RenderTable(fig, spec.Metric))
		}
		fmt.Println()
	}

	fmt.Fprintf(os.Stderr, "%d runs (%d resumed, %d failed) on %d workers in %v (%.2f runs/s)\n",
		len(rep.Records), rep.Resumed, rep.Failed, rep.Workers, rep.Wall.Round(time.Millisecond), rep.RunsPerSec())

	if len(failedFigures) > 0 {
		return fmt.Errorf("%d run(s) failed; incomplete figures: %s (see the journal for stacks)",
			rep.Failed, strings.Join(failedFigures, ", "))
	}
	return nil
}

// writeMergedMetrics folds the telemetry snapshots of every successful
// run (freshly executed or resumed from the journal) into one Prometheus
// text file — the sweep's aggregate protocol picture.
func writeMergedMetrics(path string, records []fleet.Record) error {
	var merged *telemetry.Snapshot
	for _, rec := range records {
		if rec.Status != fleet.StatusOK || rec.Result == nil || rec.Result.Telemetry == nil {
			continue
		}
		if merged == nil {
			merged = rec.Result.Telemetry
			continue
		}
		if err := merged.Merge(rec.Result.Telemetry); err != nil {
			return fmt.Errorf("merge telemetry for %s: %w", rec.Key, err)
		}
	}
	if merged == nil {
		return fmt.Errorf("no successful runs carried telemetry; nothing to write to %s", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheus(f, merged); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sanitizeKey maps a scenario key to a safe file stem.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
}

// renderCSV emits one figure as CSV: figure,x,strategy,y — the layout
// plotting scripts want.
func renderCSV(fig experiment.Figure, spec experiment.SweepSpec) string {
	var b strings.Builder
	b.WriteString("figure,x,strategy,y\n")
	for _, series := range fig.Series {
		for _, pt := range series.Points {
			fmt.Fprintf(&b, "%s,%g,%s,%g\n", fig.ID, pt.X, series.Strategy, spec.Metric(pt.Result))
		}
	}
	return b.String()
}
