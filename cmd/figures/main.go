// Command figures regenerates every figure of the paper's evaluation
// section (Fig 7a–c, 8a–c, 9a–b, plus the §5.3 relay-count series) as
// aligned text tables: one simulation per (strategy, sweep-point) pair.
//
// A full 5-hour Table 1 reproduction:
//
//	figures -simtime 5h
//
// A quick pass (about a minute of wall time):
//
//	figures -simtime 30m
//
// Single figure:
//
//	figures -only fig9a
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		simTime  = flag.Duration("simtime", time.Hour, "simulated duration per run (paper: 5h)")
		seed     = flag.Int64("seed", 1, "root random seed")
		only     = flag.String("only", "", "run a single figure (fig7a..fig9b, relay-count)")
		format   = flag.String("format", "table", "output format: table | csv")
		replicas = flag.Int("replicas", 1, "independent seeds per point, averaged")
	)
	flag.Parse()
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}

	specs := experiment.AllFigureSpecs()
	if *only != "" {
		var filtered []experiment.SweepSpec
		for _, s := range specs {
			if s.ID == *only {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("unknown figure %q", *only)
		}
		specs = filtered
	}

	for _, spec := range specs {
		base := experiment.DefaultConfig(experiment.StrategyRPCCSC, *seed)
		base.SimTime = *simTime
		start := time.Now()
		fig, err := experiment.RunSweepReplicated(spec, base, *replicas)
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Print(renderCSV(fig, spec))
		} else {
			fmt.Print(experiment.RenderTable(fig, spec.Metric))
			fmt.Printf("(%d runs, %v wall time)\n", len(spec.Strategies)*len(spec.Xs)**replicas, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}
	return nil
}

// renderCSV emits one figure as CSV: figure,x,strategy,y — the layout
// plotting scripts want.
func renderCSV(fig experiment.Figure, spec experiment.SweepSpec) string {
	var b strings.Builder
	b.WriteString("figure,x,strategy,y\n")
	for _, series := range fig.Series {
		for _, pt := range series.Points {
			fmt.Fprintf(&b, "%s,%g,%s,%g\n", fig.ID, pt.X, series.Strategy, spec.Metric(pt.Result))
		}
	}
	return b.String()
}
