// Command figures regenerates every figure of the paper's evaluation
// section (Fig 7a–c, 8a–c, 9a–b, plus the §5.3 relay-count series) as
// aligned text tables. Simulations are dispatched through the fleet
// orchestrator: all (strategy, sweep-point, replica) scenarios across
// the selected figures are deduplicated (fig7a/fig8a share one
// simulation matrix) and run concurrently, one worker per core by
// default. Results are identical to a serial run for the same seed.
//
// A full 5-hour Table 1 reproduction on all cores, journaled so it can
// be interrupted and resumed:
//
//	figures -simtime 5h -parallel 8 -journal runs.jsonl
//	figures -simtime 5h -parallel 8 -journal runs.jsonl -resume
//
// A quick pass (seconds of wall time):
//
//	figures -simtime 30m
//
// Single figure, serial reference mode:
//
//	figures -only fig9a -parallel 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
	"github.com/manetlab/rpcc/internal/fleet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		simTime  = flag.Duration("simtime", time.Hour, "simulated duration per run (paper: 5h)")
		seed     = flag.Int64("seed", 1, "root random seed")
		only     = flag.String("only", "", "run a single figure (fig7a..fig9b, relay-count)")
		format   = flag.String("format", "table", "output format: table | csv")
		replicas = flag.Int("replicas", 1, "independent seeds per point, averaged")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = all cores); results are identical for any value")
		journal  = flag.String("journal", "", "append-only JSONL run journal (one record per completed/failed run)")
		resume   = flag.Bool("resume", false, "reuse successful runs already in -journal; retry failures")
		timeout  = flag.Duration("timeout", 0, "per-run wall-clock timeout (0 = none)")
		bench    = flag.String("bench", "", "write a machine-readable wall-time/throughput record (e.g. BENCH_fleet.json)")
	)
	flag.Parse()
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *resume && *journal == "" {
		return fmt.Errorf("-resume requires -journal")
	}

	specs := experiment.AllFigureSpecs()
	if *only != "" {
		var filtered []experiment.SweepSpec
		for _, s := range specs {
			if s.ID == *only {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("unknown figure %q", *only)
		}
		specs = filtered
	}

	base := experiment.DefaultConfig(experiment.StrategyRPCCSC, *seed)
	base.SimTime = *simTime

	// One job list across every selected figure; the fleet runs each
	// distinct scenario once even when figures share a sweep matrix.
	var jobs []fleet.Job
	for _, spec := range specs {
		sweep, err := experiment.SweepJobs(spec, base, *replicas)
		if err != nil {
			return err
		}
		for _, j := range sweep {
			jobs = append(jobs, fleet.Job{Key: j.Key, Config: j.Config})
		}
	}

	opts := fleet.Options{
		Parallel: *parallel,
		Timeout:  *timeout,
		Progress: os.Stderr,
	}
	if *journal != "" {
		jl, err := fleet.OpenJournal(*journal, *resume)
		if err != nil {
			return err
		}
		defer jl.Close()
		opts.Journal = jl
	}

	// Ctrl-C cancels the context; the fleet drains in-flight runs into
	// the journal and we exit with the partial report recorded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, runErr := fleet.Run(ctx, jobs, opts)

	if *bench != "" {
		if err := fleet.WriteBench(*bench, rep.Bench()); err != nil {
			return err
		}
	}
	if runErr != nil {
		return fmt.Errorf("sweep interrupted (%d/%d runs journaled): %w", rep.Executed+rep.Resumed, len(rep.Records), runErr)
	}

	var failedFigures []string
	for _, spec := range specs {
		fig, err := experiment.AssembleFigure(spec, base, *replicas, rep.Result)
		if err != nil {
			failedFigures = append(failedFigures, spec.ID)
			fmt.Fprintf(os.Stderr, "figures: %s incomplete: %v\n", spec.ID, err)
			continue
		}
		if *format == "csv" {
			fmt.Print(renderCSV(fig, spec))
		} else {
			fmt.Print(experiment.RenderTable(fig, spec.Metric))
		}
		fmt.Println()
	}

	fmt.Fprintf(os.Stderr, "%d runs (%d resumed, %d failed) on %d workers in %v (%.2f runs/s)\n",
		len(rep.Records), rep.Resumed, rep.Failed, rep.Workers, rep.Wall.Round(time.Millisecond), rep.RunsPerSec())

	if len(failedFigures) > 0 {
		return fmt.Errorf("%d run(s) failed; incomplete figures: %s (see the journal for stacks)",
			rep.Failed, strings.Join(failedFigures, ", "))
	}
	return nil
}

// renderCSV emits one figure as CSV: figure,x,strategy,y — the layout
// plotting scripts want.
func renderCSV(fig experiment.Figure, spec experiment.SweepSpec) string {
	var b strings.Builder
	b.WriteString("figure,x,strategy,y\n")
	for _, series := range fig.Series {
		for _, pt := range series.Points {
			fmt.Fprintf(&b, "%s,%g,%s,%g\n", fig.ID, pt.X, series.Strategy, spec.Metric(pt.Result))
		}
	}
	return b.String()
}
