// Command wiretest boots an N-node loopback UDP cluster of live rpcc
// daemons (internal/wire/cluster), drives each node's workload for a
// wall-clock duration, and judges every served answer against the
// differential oracle's staleness envelopes. Exit status is non-zero
// when any divergence is found, when shutdown is unclean, or when the
// cluster served nothing (a vacuously "clean" run) — so the command
// doubles as the `make wire-smoke` CI gate.
//
// Chaos campaign mode (-chaos, or -faults script.json) runs the same
// cluster under the wire chaos plane: scripted Gilbert–Elliott loss,
// delay/jitter/duplication, partition windows, and daemon crash/restart
// churn, judged by the fault-aware live oracle. In chaos mode stdout
// carries only the deterministic verdict block (the `make
// wire-chaos-smoke` gate byte-compares it across same-seed runs) and the
// nondeterministic per-run counts go to stderr; -schedule-out writes the
// expanded fault schedule, which is byte-identical across runs by
// construction. -broken inflation judges the run blind to the fault
// schedule — the deliberately broken variant the gate requires the judge
// to catch.
//
// Examples:
//
//	wiretest                      # 5 nodes, 10 s, rpcc-sc
//	wiretest -n 10 -duration 10s  # the acceptance shape
//	wiretest -strategy rpcc-hy -v # mixed levels, per-node detail
//	wiretest -n 10 -duration 20s -strategy rpcc-dc -chaos \
//	         -schedule-out sched.log   # the wire-chaos-smoke shape
package main

import (
	"flag"
	"fmt"
	"os"

	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
	"github.com/manetlab/rpcc/internal/wire"
	"github.com/manetlab/rpcc/internal/wire/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wiretest:", err)
		os.Exit(1)
	}
}

func run() error {
	def := cluster.DefaultConfig()
	var (
		n        = flag.Int("n", def.N, "number of daemons")
		duration = flag.Duration("duration", def.Duration, "wall-clock run length")
		strategy = flag.String("strategy", def.Strategy, "rpcc-sc | rpcc-dc | rpcc-wc | rpcc-hy")
		seed     = flag.Int64("seed", def.Seed, "workload seed base")
		cacheNum = flag.Int("cachenum", def.CacheNum, "foreign items cached per node")
		query    = flag.Duration("query", def.QueryInterval, "mean query interval per node")
		update   = flag.Duration("update", def.UpdateInterval, "mean update interval per node")
		ttn      = flag.Duration("ttn", def.TTN, "invalidation announcement interval")
		ttr      = flag.Duration("ttr", def.TTR, "relay freshness window")
		ttp      = flag.Duration("ttp", def.TTP, "delta-consistency window")
		coeff    = flag.Duration("coeff", def.CoeffPeriod, "coefficient recomputation period")
		slack    = flag.Duration("slack", def.Slack, "oracle in-flight forgiveness")
		inflate  = flag.Duration("inflate", def.Inflate, "oracle envelope inflation for real-network delay")
		drain    = flag.Duration("drain", def.Drain, "per-daemon shutdown drain deadline")
		traceOut = flag.String("trace-out", "", "enable causal tracing and write the merged span JSONL here")
		verbose  = flag.Bool("v", false, "print per-node summaries and every divergence")

		chaos    = flag.Bool("chaos", false, "run the canonical chaos campaign (loss + partitions + crash/restart churn)")
		faults   = flag.String("faults", "", "run under this JSON fault script (overrides -chaos)")
		schedOut = flag.String("schedule-out", "", "write the expanded, deterministic fault schedule here")
		broken   = flag.String("broken", "", "deliberately broken judge variant: \"inflation\" judges blind to the fault schedule")
	)
	flag.Parse()

	var script *wire.Script
	switch {
	case *faults != "":
		s, err := wire.LoadScript(*faults)
		if err != nil {
			return err
		}
		script = s
	case *chaos:
		script = wire.DemoScript(*n, *duration, *seed)
	}
	switch *broken {
	case "", "inflation":
	default:
		return fmt.Errorf("unknown -broken variant %q (want \"inflation\")", *broken)
	}
	if *broken != "" && script == nil {
		return fmt.Errorf("-broken needs -chaos or -faults")
	}
	if *schedOut != "" {
		if script == nil {
			return fmt.Errorf("-schedule-out needs -chaos or -faults")
		}
		if err := os.WriteFile(*schedOut, []byte(script.ScheduleLog(*n)), 0o644); err != nil {
			return err
		}
	}

	cfg := cluster.Config{
		N: *n, Strategy: *strategy, Seed: *seed, Duration: *duration, Drain: *drain,
		CacheNum: *cacheNum, QueryInterval: *query, UpdateInterval: *update,
		TTN: *ttn, TTR: *ttr, TTP: *ttp, CoeffPeriod: *coeff,
		Slack: *slack, Inflate: *inflate,
		Trace:          *traceOut != "",
		Chaos:          script,
		BreakInflation: *broken == "inflation",
	}
	rep, err := cluster.Run(cfg)
	if err != nil {
		return err
	}
	// In chaos mode stdout is the deterministic verdict block; everything
	// whose value varies run to run (counts, timings, drop totals) goes
	// to stderr so the CI gate can byte-compare stdout across runs.
	detail := os.Stdout
	if script != nil {
		detail = os.Stderr
	}
	fmt.Fprintln(detail, rep)
	if *verbose {
		for _, s := range rep.NodeSummaries {
			fmt.Fprintln(detail, " ", s)
		}
	}
	for _, d := range rep.Divergences {
		fmt.Fprintln(detail, "  divergence:", d)
	}
	for _, e := range rep.StopErrors {
		fmt.Fprintln(detail, "  stop error:", e)
	}
	for _, e := range rep.TraceErrors {
		fmt.Fprintln(detail, "  trace error:", e)
	}
	if script != nil {
		for cause, v := range rep.Drops {
			fmt.Fprintf(detail, "  dropped[%s]=%d\n", cause, v)
		}
		verdict := "CONFORMANT"
		if !rep.Clean() || rep.Answered == 0 {
			verdict = "DIVERGENT"
		}
		fmt.Printf("wire-chaos: n=%d strategy=%s seed=%d duration=%v partitions=%d crashes=%d\n",
			*n, *strategy, *seed, *duration, len(script.Partitions), len(script.Crashes))
		fmt.Printf("verdict: %s restarts=%d\n", verdict, rep.Restarts)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := ctrace.WriteJSONL(f, rep.TraceSpans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans -> %s\n", len(rep.TraceSpans), *traceOut)
	}
	if rep.Answered == 0 {
		return fmt.Errorf("no query was answered in %v — the cluster never exchanged useful traffic", *duration)
	}
	if !rep.Clean() {
		return fmt.Errorf("%d divergences, %d stop errors, %d trace errors",
			len(rep.Divergences), len(rep.StopErrors), len(rep.TraceErrors))
	}
	fmt.Fprintf(detail, "clean: %d answers judged against the %s envelopes (slack=%v inflate=%v), zero divergences\n",
		rep.Judged, rep.Strategy, *slack, *inflate)
	return nil
}
