// Command wiretest boots an N-node loopback UDP cluster of live rpcc
// daemons (internal/wire/cluster), drives each node's workload for a
// wall-clock duration, and judges every served answer against the
// differential oracle's staleness envelopes. Exit status is non-zero
// when any divergence is found, when shutdown is unclean, or when the
// cluster served nothing (a vacuously "clean" run) — so the command
// doubles as the `make wire-smoke` CI gate.
//
// Examples:
//
//	wiretest                      # 5 nodes, 10 s, rpcc-sc
//	wiretest -n 10 -duration 10s  # the acceptance shape
//	wiretest -strategy rpcc-hy -v # mixed levels, per-node detail
package main

import (
	"flag"
	"fmt"
	"os"

	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
	"github.com/manetlab/rpcc/internal/wire/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wiretest:", err)
		os.Exit(1)
	}
}

func run() error {
	def := cluster.DefaultConfig()
	var (
		n        = flag.Int("n", def.N, "number of daemons")
		duration = flag.Duration("duration", def.Duration, "wall-clock run length")
		strategy = flag.String("strategy", def.Strategy, "rpcc-sc | rpcc-dc | rpcc-wc | rpcc-hy")
		seed     = flag.Int64("seed", def.Seed, "workload seed base")
		cacheNum = flag.Int("cachenum", def.CacheNum, "foreign items cached per node")
		query    = flag.Duration("query", def.QueryInterval, "mean query interval per node")
		update   = flag.Duration("update", def.UpdateInterval, "mean update interval per node")
		ttn      = flag.Duration("ttn", def.TTN, "invalidation announcement interval")
		ttr      = flag.Duration("ttr", def.TTR, "relay freshness window")
		ttp      = flag.Duration("ttp", def.TTP, "delta-consistency window")
		coeff    = flag.Duration("coeff", def.CoeffPeriod, "coefficient recomputation period")
		slack    = flag.Duration("slack", def.Slack, "oracle in-flight forgiveness")
		inflate  = flag.Duration("inflate", def.Inflate, "oracle envelope inflation for real-network delay")
		drain    = flag.Duration("drain", def.Drain, "per-daemon shutdown drain deadline")
		traceOut = flag.String("trace-out", "", "enable causal tracing and write the merged span JSONL here")
		verbose  = flag.Bool("v", false, "print per-node summaries and every divergence")
	)
	flag.Parse()

	cfg := cluster.Config{
		N: *n, Strategy: *strategy, Seed: *seed, Duration: *duration, Drain: *drain,
		CacheNum: *cacheNum, QueryInterval: *query, UpdateInterval: *update,
		TTN: *ttn, TTR: *ttr, TTP: *ttp, CoeffPeriod: *coeff,
		Slack: *slack, Inflate: *inflate,
		Trace: *traceOut != "",
	}
	rep, err := cluster.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if *verbose {
		for _, s := range rep.NodeSummaries {
			fmt.Println(" ", s)
		}
	}
	for _, d := range rep.Divergences {
		fmt.Println("  divergence:", d)
	}
	for _, e := range rep.StopErrors {
		fmt.Println("  stop error:", e)
	}
	for _, e := range rep.TraceErrors {
		fmt.Println("  trace error:", e)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := ctrace.WriteJSONL(f, rep.TraceSpans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans -> %s\n", len(rep.TraceSpans), *traceOut)
	}
	if rep.Answered == 0 {
		return fmt.Errorf("no query was answered in %v — the cluster never exchanged useful traffic", *duration)
	}
	if !rep.Clean() {
		return fmt.Errorf("%d divergences, %d stop errors, %d trace errors",
			len(rep.Divergences), len(rep.StopErrors), len(rep.TraceErrors))
	}
	fmt.Printf("clean: %d answers judged against the %s envelopes (slack=%v inflate=%v), zero divergences\n",
		rep.Judged, rep.Strategy, *slack, *inflate)
	return nil
}
