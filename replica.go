package rpcc

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/mobility"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/replica"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// ReplicaValue is one replica's state: the payload and its ordering tag
// (Lamport clock + writer id, which totally order all writes).
type ReplicaValue = replica.Value

// ReplicaSimulation runs the paper's §6 future-work replica model over
// the MANET substrate: unlike the cache model, where only an item's
// source host may write, ANY peer holding a replica may modify it.
// Writes propagate eagerly by flooding and are repaired by periodic
// anti-entropy; replicas merge by last-writer-wins over the
// (clock, writer) order and converge once writers go quiet.
type ReplicaSimulation struct {
	k       *sim.Kernel
	net     *netsim.Network
	mgr     *replica.Manager
	proc    *churn.Process
	started bool
}

// NewReplicaSimulation builds a replica deployment over the same mobile
// field geometry as NewSimulation. The Protocol and cache knobs of
// SimOptions are ignored — the replica tier has its own protocol.
func NewReplicaSimulation(opts SimOptions) (*ReplicaSimulation, error) {
	if opts.Peers <= 1 {
		return nil, fmt.Errorf("rpcc: need at least 2 peers, got %d", opts.Peers)
	}
	k := sim.NewKernel(sim.WithSeed(opts.Seed))
	terrain, err := geo.NewTerrain(opts.AreaMeters, opts.AreaMeters)
	if err != nil {
		return nil, err
	}
	field, err := mobility.NewField(mobility.Config{
		Terrain:    terrain,
		MinSpeed:   opts.MinSpeed,
		MaxSpeed:   opts.MaxSpeed,
		Pause:      opts.Pause,
		SubnetCell: opts.AreaMeters / 2,
	}, opts.Peers, func(i int) *rand.Rand { return k.Stream(fmt.Sprintf("mobility.%d", i)) })
	if err != nil {
		return nil, err
	}
	proc, err := churn.NewProcess(churn.Config{
		MeanUp:   opts.MeanUp,
		MeanDown: opts.MeanDown,
		Disabled: !opts.EnableChurn,
	}, opts.Peers, k)
	if err != nil {
		return nil, err
	}
	netCfg := netsim.DefaultConfig()
	netCfg.CommRange = opts.RadioRange
	network, err := netsim.New(netCfg, k, field, proc, nil, stats.NewTraffic())
	if err != nil {
		return nil, err
	}
	mgr, err := replica.NewManager(replica.DefaultConfig(), network)
	if err != nil {
		return nil, err
	}
	return &ReplicaSimulation{k: k, net: network, mgr: mgr, proc: proc}, nil
}

// Register creates replica id on the given holder nodes. Call before the
// first Write or RunFor.
func (s *ReplicaSimulation) Register(id int, holders []int) error {
	return s.mgr.Register(id, holders)
}

// start lazily begins the protocol on first use.
func (s *ReplicaSimulation) start() error {
	if s.started {
		return nil
	}
	if err := s.mgr.Start(s.k); err != nil {
		return err
	}
	s.started = true
	return nil
}

// Write applies a write at node (any holder may write) and propagates it.
func (s *ReplicaSimulation) Write(node, id int, payload string) error {
	if err := s.start(); err != nil {
		return err
	}
	return s.mgr.Write(s.k, node, id, payload)
}

// Read returns node's current view of replica id.
func (s *ReplicaSimulation) Read(node, id int) (ReplicaValue, error) {
	return s.mgr.Read(node, id)
}

// Disconnect forces node off the network until Reconnect.
func (s *ReplicaSimulation) Disconnect(node int) error {
	if err := s.start(); err != nil {
		return err
	}
	return s.proc.ForceState(s.k, node, churn.StateDisconnected)
}

// Reconnect brings a disconnected node back.
func (s *ReplicaSimulation) Reconnect(node int) error {
	return s.proc.ForceState(s.k, node, churn.StateConnected)
}

// RunFor advances the simulation clock by d.
func (s *ReplicaSimulation) RunFor(d time.Duration) error {
	if err := s.start(); err != nil {
		return err
	}
	s.k.RunUntil(s.k.Now() + d)
	return nil
}

// Converged reports whether every holder of id sees the same value.
func (s *ReplicaSimulation) Converged(id int) (ReplicaValue, bool) {
	return s.mgr.Converged(id)
}

// Transmissions returns the total link-level transmissions so far.
func (s *ReplicaSimulation) Transmissions() uint64 {
	return s.net.Traffic().TotalTx()
}
