// Package rpcc is a library implementation and simulation testbed for
// RPCC — Relay Peer-based Cache Consistency — the cooperative-caching
// consistency protocol for mobile peer-to-peer systems over MANETs from
// Cao, Zhang, Xie and Cao (ICDCS 2005), together with the simple push and
// simple pull baselines the paper evaluates against.
//
// The package offers two entry points:
//
//   - Scenario / Run: declarative reproduction of the paper's
//     experiments. A Scenario carries every Table 1 parameter; Run
//     simulates it end to end on the bundled MANET simulator
//     (random-waypoint mobility, unit-disk radio, TTL-scoped flooding,
//     hop-by-hop routing, churn and battery models) and returns the
//     metrics the paper plots: network traffic and query latency, plus a
//     consistency audit of every served answer.
//
//   - Simulation: an imperative, scriptable handle for custom scenarios —
//     schedule queries, updates and disconnections at chosen virtual
//     times and inspect protocol state (roles, relay tables) as the run
//     progresses. The runnable programs under examples/ are built on it.
//
// All simulations are deterministic: the same seed reproduces the same
// run, byte for byte.
package rpcc

import (
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/experiment"
)

// Strategy selects a consistency engine and (for RPCC) the consistency
// level its queries request.
type Strategy = experiment.StrategyKind

// The available strategies.
const (
	// StrategyPull is the simple pull baseline: every query floods a poll
	// toward the item's source host (TTL_BR hops).
	StrategyPull = experiment.StrategyPull
	// StrategyPush is the simple push baseline: every source host floods
	// a periodic invalidation report; queries wait for the next report.
	StrategyPush = experiment.StrategyPush
	// StrategyRPCCSC is RPCC serving strong-consistency queries.
	StrategyRPCCSC = experiment.StrategyRPCCSC
	// StrategyRPCCDC is RPCC serving Δ-consistency queries (Δ = TTP).
	StrategyRPCCDC = experiment.StrategyRPCCDC
	// StrategyRPCCWC is RPCC serving weak-consistency queries.
	StrategyRPCCWC = experiment.StrategyRPCCWC
	// StrategyRPCCHY is RPCC under the paper's hybrid workload: strong,
	// Δ and weak requests arrive with equal probability.
	StrategyRPCCHY = experiment.StrategyRPCCHY
	// StrategyAdaptive is push-with-adaptive-pull (after Lan et al.), the
	// paper's future-work direction: per-item poll windows that double on
	// unchanged validations and halve on changed ones.
	StrategyAdaptive = experiment.StrategyAdaptive
	// StrategyGPSCE is the location-aided comparator from the paper's
	// related work (GPSCE, Lim et al.): per-cache-node state plus GPS
	// positions let the source geo-unicast invalidations eagerly, with
	// no flooding — cheap and fast, but leaky under mobility, and it
	// needs positioning hardware the paper deems too expensive.
	StrategyGPSCE = experiment.StrategyGPSCE
)

// Level is a query's consistency requirement (§3 of the paper).
type Level = consistency.Level

// The three consistency levels.
const (
	// LevelStrong: the answer is the source's current version (Eq 3.2.1).
	LevelStrong = consistency.LevelStrong
	// LevelDelta: the answer lags the source by at most Δ (Eq 3.2.2).
	LevelDelta = consistency.LevelDelta
	// LevelWeak: the answer is some previously committed value (Eq 3.2.3).
	LevelWeak = consistency.LevelWeak
)

// Scenario is a complete experiment description: the paper's Table 1
// parameters plus the knobs Table 1 leaves implicit (mobility speeds,
// churn split, warm placement). Construct with DefaultScenario and
// override fields as needed.
type Scenario = experiment.Config

// Result carries one run's metrics: traffic (total and per message kind),
// latency distribution, query accounting, the consistency audit, and
// RPCC's relay statistics.
type Result = experiment.Result

// DefaultScenario returns the paper's Table 1 scenario for one strategy:
// 50 peers on a 1.5 km × 1.5 km field, 250 m radio range, 10-entry
// caches, 5 h simulated time, 2 min mean update interval, 20 s mean query
// interval.
func DefaultScenario(s Strategy, seed int64) Scenario {
	return experiment.DefaultConfig(s, seed)
}

// Run simulates a scenario to completion and returns its metrics.
func Run(s Scenario) (Result, error) {
	return experiment.Run(s)
}

// FigureSpec describes one of the paper's figure sweeps; see Figures.
type FigureSpec = experiment.SweepSpec

// Figure is an evaluated sweep: one series per strategy.
type Figure = experiment.Figure

// Figures returns a sweep specification for every figure in the paper's
// evaluation (Fig 7a–c, 8a–c, 9a–b, plus the §5.3 relay-count series).
// Evaluate one with RunFigure.
func Figures() []FigureSpec {
	return experiment.AllFigureSpecs()
}

// RunFigure evaluates a figure sweep against a base scenario (the swept
// parameter and strategy are overridden per point).
func RunFigure(spec FigureSpec, base Scenario) (Figure, error) {
	return experiment.RunSweep(spec, base)
}

// RenderFigure lays an evaluated figure out as an aligned text table.
func RenderFigure(fig Figure, spec FigureSpec) string {
	return experiment.RenderTable(fig, spec.Metric)
}

// RenderResult renders one run's metrics with its per-kind traffic
// breakdown.
func RenderResult(r Result) string {
	return experiment.RenderDetail(r)
}
