# Build/test entry points. `make check` is the tier-1 gate; `make race`
# is the concurrency-safety audit behind the fleet orchestrator.

GO ?= go

.PHONY: all build test race vet check bench figures clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that exercise concurrency: the
# fleet orchestrator (real simulations on parallel workers), the kernel
# isolation audit, and the stats merge.
race:
	$(GO) test -race ./internal/fleet/ ./internal/sim/ ./internal/stats/ ./internal/experiment/

vet:
	$(GO) vet ./...

check: build vet test

# Regenerate the committed orchestrator benchmark (BENCH_fleet.json):
# the full 9-figure suite at 5 simulated minutes per run, all cores.
bench:
	$(GO) run ./cmd/figures -simtime 5m -format csv -bench BENCH_fleet.json > /dev/null

# Full paper reproduction (5 simulated hours per run), journaled so an
# interrupted sweep resumes with `make figures` again.
figures:
	$(GO) run ./cmd/figures -simtime 5h -journal runs.jsonl -resume -bench BENCH_fleet.json

clean:
	rm -f runs.jsonl
