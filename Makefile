# Build/test entry points. `make check` is the tier-1 gate; `make race`
# is the concurrency-safety audit behind the fleet orchestrator.

GO ?= go

.PHONY: all build test race vet check bench bench-hotpath bench-compare bench-wire bench-scale figures telemetry-smoke chaos-smoke conform-smoke policy-smoke wire-smoke wire-chaos-smoke scale-smoke trace-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that exercise concurrency or
# carry the hot-path buffer reuse: the fleet orchestrator (real
# simulations on parallel workers), the kernel with its event freelist,
# the pooled network layer, the reused radio snapshot builder, and the
# stats merge.
race:
	$(GO) test -race ./internal/fleet/ ./internal/sim/ ./internal/stats/ ./internal/experiment/ ./internal/netsim/ ./internal/radio/ ./internal/wire/ ./internal/wire/cluster/ ./internal/oracle/

vet:
	$(GO) vet ./...

check: build vet test race

# Regenerate the committed orchestrator benchmark (BENCH_fleet.json):
# the full 9-figure suite at 5 simulated minutes per run, all cores.
bench:
	$(GO) run ./cmd/figures -simtime 5m -format csv -bench BENCH_fleet.json > /dev/null

# Hot-path micro-benchmarks: topology rebuild, route queries, and
# message-level unicast/flood cost, with allocation counts.
HOTPATH_BENCH = BenchmarkRadioGraphBuild|BenchmarkRadioBFS|BenchmarkUnicastRouting|BenchmarkFloodStorm
bench-hotpath:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)|BenchmarkSimKernelEvents' -benchtime 1s -count 5 .

# Compare the optimised hot paths against the legacy ones
# (RPCC_LEGACY_HOTPATH=1 selects per-call BFS, no route cache, and fresh
# O(n^2) pairwise rebuilds) under identical benchmark names. Uses
# benchstat when installed, the bundled cmd/benchdiff otherwise, and
# refreshes the BENCH_hotpath.json artefact (including the fleet sweep's
# runs_per_sec against the PR-1 baseline).
bench-compare:
	RPCC_LEGACY_HOTPATH=1 $(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchtime 1s -count 5 . > /tmp/bench_legacy.txt
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchtime 1s -count 5 . > /tmp/bench_new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat /tmp/bench_legacy.txt /tmp/bench_new.txt; \
	else \
		$(GO) run ./cmd/benchdiff /tmp/bench_legacy.txt /tmp/bench_new.txt; \
	fi
	$(GO) run ./cmd/benchdiff -json BENCH_hotpath.json -fleet BENCH_fleet.json -fleet-baseline 59.105 /tmp/bench_legacy.txt /tmp/bench_new.txt > /dev/null

# End-to-end telemetry check: a 1-simulated-minute seeded run exports
# Prometheus text and span JSONL, and telemetrylint proves both parse
# and satisfy the histogram invariants plus family presence.
TELEMETRY_TMP ?= /tmp/rpcc-telemetry-smoke
telemetry-smoke:
	mkdir -p $(TELEMETRY_TMP)
	$(GO) run ./cmd/rpccsim -strategy rpcc-sc -simtime 1m -seed 1 \
		-telemetry $(TELEMETRY_TMP)/spans.jsonl \
		-metrics-out $(TELEMETRY_TMP)/metrics.prom > /dev/null
	$(GO) run ./cmd/telemetrylint \
		-prom $(TELEMETRY_TMP)/metrics.prom \
		-jsonl $(TELEMETRY_TMP)/spans.jsonl \
		-require rpcc_delivery_latency_seconds,rpcc_delivery_hops,rpcc_queries_issued_total,rpcc_staleness_seconds,rpcc_tx_total,rpcc_topology_snapshots_total

# Chaos soak gate: the seeded demonstration campaign (partition + bursty
# loss + crash + relay assassination over 25 simulated minutes, sub-second
# wall) runs twice with the same seed; the runs must pass every
# consistency invariant (non-zero exit otherwise), produce byte-identical
# stdout/metrics/span logs, and the exports must lint — including the
# fault-event envelopes and the cause-labelled drop accounting.
CHAOS_TMP ?= /tmp/rpcc-chaos-smoke
chaos-smoke:
	mkdir -p $(CHAOS_TMP)
	$(GO) run ./cmd/chaos -seed 11 \
		-telemetry $(CHAOS_TMP)/a.jsonl -metrics-out $(CHAOS_TMP)/a.prom \
		> $(CHAOS_TMP)/a.txt
	$(GO) run ./cmd/chaos -seed 11 \
		-telemetry $(CHAOS_TMP)/b.jsonl -metrics-out $(CHAOS_TMP)/b.prom \
		> $(CHAOS_TMP)/b.txt
	cmp $(CHAOS_TMP)/a.txt $(CHAOS_TMP)/b.txt
	cmp $(CHAOS_TMP)/a.prom $(CHAOS_TMP)/b.prom
	cmp $(CHAOS_TMP)/a.jsonl $(CHAOS_TMP)/b.jsonl
	$(GO) run ./cmd/telemetrylint \
		-prom $(CHAOS_TMP)/a.prom \
		-jsonl $(CHAOS_TMP)/a.jsonl \
		-require rpcc_fault_events_total,rpcc_dropped_total,rpcc_repair_attempts_total
	@cat $(CHAOS_TMP)/a.txt

# Conformance gate: the oracle's unit/replay tests, then the conform CLI
# (mutant gate across 5 seeds + per-strategy clean sweep + a short fuzz
# budget) run twice with identical flags; the two outputs must be byte
# identical — the determinism contract behind trace replay and shrinking.
CONFORM_TMP ?= /tmp/rpcc-conform-smoke
conform-smoke:
	mkdir -p $(CONFORM_TMP)
	$(GO) test ./internal/oracle/
	$(GO) run ./cmd/conform -seeds 5 -fuzz 25 > $(CONFORM_TMP)/a.txt
	$(GO) run ./cmd/conform -seeds 5 -fuzz 25 > $(CONFORM_TMP)/b.txt
	cmp $(CONFORM_TMP)/a.txt $(CONFORM_TMP)/b.txt
	@tail -3 $(CONFORM_TMP)/a.txt

# Replacement-policy gate: the four-policy comparison figure (policy-hit:
# LRU/LFU/TTL/utility under Zipf demand, a flash-crowd hotspot and a
# cache-size sweep) runs twice with the same seed; the rendered figure
# and the merged metrics must be byte-identical, and the export must
# lint — including the suppressed-query counter the workload fix
# introduced (the hotspot lands on its own host for one peer, so the
# counter is exercised, not merely registered).
POLICY_TMP ?= /tmp/rpcc-policy-smoke
policy-smoke:
	mkdir -p $(POLICY_TMP)
	$(GO) run ./cmd/figures -only policy-hit -simtime 10m -seed 1 \
		-metrics-out $(POLICY_TMP)/a.prom > $(POLICY_TMP)/a.txt
	$(GO) run ./cmd/figures -only policy-hit -simtime 10m -seed 1 \
		-metrics-out $(POLICY_TMP)/b.prom > $(POLICY_TMP)/b.txt
	cmp $(POLICY_TMP)/a.txt $(POLICY_TMP)/b.txt
	cmp $(POLICY_TMP)/a.prom $(POLICY_TMP)/b.prom
	$(GO) run ./cmd/telemetrylint -prom $(POLICY_TMP)/a.prom \
		-require rpcc_workload_suppressed_total,rpcc_queries_issued_total,rpcc_tx_total
	@cat $(POLICY_TMP)/a.txt

# Sim-to-wire gate: build everything, then boot a 5-node loopback UDP
# cluster of live daemons for ~10 s of wall time. Every served answer is
# judged against the live oracle's staleness envelopes; any divergence,
# unclean shutdown, or vacuous (zero-answer) run exits non-zero.
wire-smoke: build
	$(GO) run ./cmd/wiretest -n 5 -duration 10s -v

# Wire chaos gate: the canonical scripted fault campaign (Gilbert–Elliott
# loss, delay/jitter/duplication, two partition windows, two crash/restart
# cycles) against a 10-node loopback cluster of live daemons, judged by
# the fault-aware live oracle. Four legs:
#   1–2. the rpcc-dc campaign runs twice with the same seed; both must be
#        CONFORMANT and the expanded fault schedule AND the verdict block
#        on stdout must be byte-identical across the runs;
#   3.   the same campaign under rpcc-wc (weak reads are the monotonicity
#        probe: a cold-restarted daemon re-serves its warm copies) must be
#        CONFORMANT under the fault-aware judge;
#   4.   the deliberately broken judge (-broken inflation: blind to the
#        fault schedule) over the same rpcc-wc campaign MUST fail — the
#        restarted daemon's warm re-serves regress the monotone watermark
#        unless the judge honours the restart epoch. A passing broken
#        variant means the gate has lost its teeth.
WIRE_CHAOS_TMP ?= /tmp/rpcc-wire-chaos-smoke
wire-chaos-smoke: build
	mkdir -p $(WIRE_CHAOS_TMP)
	$(GO) run ./cmd/wiretest -n 10 -duration 20s -strategy rpcc-dc -seed 7 \
		-chaos -schedule-out $(WIRE_CHAOS_TMP)/sched-a.log > $(WIRE_CHAOS_TMP)/verdict-a.txt
	$(GO) run ./cmd/wiretest -n 10 -duration 20s -strategy rpcc-dc -seed 7 \
		-chaos -schedule-out $(WIRE_CHAOS_TMP)/sched-b.log > $(WIRE_CHAOS_TMP)/verdict-b.txt
	cmp $(WIRE_CHAOS_TMP)/sched-a.log $(WIRE_CHAOS_TMP)/sched-b.log
	cmp $(WIRE_CHAOS_TMP)/verdict-a.txt $(WIRE_CHAOS_TMP)/verdict-b.txt
	$(GO) run ./cmd/wiretest -n 10 -duration 20s -strategy rpcc-wc -query 100ms \
		-seed 7 -chaos > $(WIRE_CHAOS_TMP)/verdict-wc.txt
	@if $(GO) run ./cmd/wiretest -n 10 -duration 20s -strategy rpcc-wc -query 100ms \
		-seed 7 -chaos -broken inflation > /dev/null 2>$(WIRE_CHAOS_TMP)/broken.err; then \
		echo "BUG: broken judge variant passed — the chaos gate has no teeth"; exit 1; \
	else \
		echo "broken judge variant caught ($$(grep -c 'divergence:' $(WIRE_CHAOS_TMP)/broken.err) divergences)"; \
	fi
	@cat $(WIRE_CHAOS_TMP)/verdict-a.txt $(WIRE_CHAOS_TMP)/verdict-wc.txt

# Regenerate the committed wire benchmark artefact (BENCH_wire.json):
# frame codec encode/decode ns/op plus the end-to-end loopback SC query
# RTT over real UDP. benchdiff's delta table needs two inputs; feeding
# the same run twice makes the JSON a plain export of the measurements.
WIRE_BENCH_TMP ?= /tmp/rpcc-bench-wire.txt
bench-wire:
	$(GO) test -run '^$$' -bench 'BenchmarkFrameMarshal|BenchmarkFrameUnmarshal' -benchtime 1s -count 3 ./internal/protocol/ > $(WIRE_BENCH_TMP)
	$(GO) test -run '^$$' -bench BenchmarkLoopbackQueryRTT -benchtime 2s ./internal/wire/cluster/ >> $(WIRE_BENCH_TMP)
	$(GO) run ./cmd/benchdiff -json BENCH_wire.json -name wire $(WIRE_BENCH_TMP) $(WIRE_BENCH_TMP) > /dev/null

# Scale gate: a 10k-node kinetic+sharded run (auto region count) runs
# twice with the same seed; both runs must pass cmd/scale's invariant
# gate (answers exist, no torn/future answers, no watermark regressions
# — non-zero exit otherwise) and produce byte-identical stdout.
SCALE_TMP ?= /tmp/rpcc-scale-smoke
scale-smoke:
	mkdir -p $(SCALE_TMP)
	$(GO) run ./cmd/scale -nodes 10000 -simtime 60s -seed 1 > $(SCALE_TMP)/a.txt
	$(GO) run ./cmd/scale -nodes 10000 -simtime 60s -seed 1 > $(SCALE_TMP)/b.txt
	cmp $(SCALE_TMP)/a.txt $(SCALE_TMP)/b.txt
	@cat $(SCALE_TMP)/a.txt

# Causal-trace gate: a seeded 30-peer run exports its span JSONL twice;
# the trace files, and the traceview reports rendered from them, must be
# byte-identical — the tracing determinism contract. telemetrylint then
# proves the trace is structurally sound (parents resolve, DAG acyclic,
# intervals nested, canonical order).
TRACE_TMP ?= /tmp/rpcc-trace-smoke
trace-smoke:
	mkdir -p $(TRACE_TMP)
	$(GO) run ./cmd/rpccsim -peers 30 -simtime 10m -seed 1 -trace-out $(TRACE_TMP)/a.jsonl > /dev/null
	$(GO) run ./cmd/rpccsim -peers 30 -simtime 10m -seed 1 -trace-out $(TRACE_TMP)/b.jsonl > /dev/null
	cmp $(TRACE_TMP)/a.jsonl $(TRACE_TMP)/b.jsonl
	$(GO) run ./cmd/traceview -in $(TRACE_TMP)/a.jsonl > $(TRACE_TMP)/a.txt
	$(GO) run ./cmd/traceview -in $(TRACE_TMP)/b.jsonl > $(TRACE_TMP)/b.txt
	cmp $(TRACE_TMP)/a.txt $(TRACE_TMP)/b.txt
	$(GO) run ./cmd/telemetrylint -trace $(TRACE_TMP)/a.jsonl
	@head -12 $(TRACE_TMP)/a.txt

# Regenerate the committed scale benchmark artefact (BENCH_scale.json):
# kinetic+sharded runs at 1k/10k/100k against the pre-scale-work
# baseline (serial kernel, full rebuilds, per-flip churn resampling,
# unbounded route tables) at 1k/10k. The baseline is intractable at
# 100k, so that row feeds the kinetic measurement to both sides
# (delta 1.0, bench-wire style) and stands as a plain absolute export.
# Gated on the trace-disabled allocation contract: the kernel scheduling
# hot path stays allocation-free and a disabled trace hook adds nothing
# to delivery, so the committed numbers never absorb tracing overhead.
SCALE_BENCH_NEW ?= /tmp/rpcc-bench-scale-new.txt
SCALE_BENCH_BASE ?= /tmp/rpcc-bench-scale-base.txt
bench-scale:
	$(GO) test -run 'TestSteadyStateSchedulingDoesNotAllocate' ./internal/sim/
	$(GO) test -run 'TestTraceDisabledDeliveryAllocFree' ./internal/netsim/
	$(GO) build -o /tmp/rpcc-scale-bin ./cmd/scale
	rm -f $(SCALE_BENCH_NEW) $(SCALE_BENCH_BASE)
	/tmp/rpcc-scale-bin -nodes 1000 -simtime 60s -seed 1 -bench $(SCALE_BENCH_NEW) > /dev/null
	/tmp/rpcc-scale-bin -nodes 10000 -simtime 60s -seed 1 -bench $(SCALE_BENCH_NEW) > /dev/null
	/tmp/rpcc-scale-bin -nodes 100000 -simtime 30s -seed 1 -bench $(SCALE_BENCH_NEW) > /dev/null
	/tmp/rpcc-scale-bin -nodes 1000 -simtime 60s -seed 1 -baseline -bench $(SCALE_BENCH_BASE) > /dev/null
	/tmp/rpcc-scale-bin -nodes 10000 -simtime 60s -seed 1 -baseline -bench $(SCALE_BENCH_BASE) > /dev/null
	grep 'nodes=100000' $(SCALE_BENCH_NEW) >> $(SCALE_BENCH_BASE)
	$(GO) run ./cmd/benchdiff -json BENCH_scale.json -name scale $(SCALE_BENCH_BASE) $(SCALE_BENCH_NEW)

# Full paper reproduction (5 simulated hours per run), journaled so an
# interrupted sweep resumes with `make figures` again.
figures:
	$(GO) run ./cmd/figures -simtime 5h -journal runs.jsonl -resume -bench BENCH_fleet.json

clean:
	rm -f runs.jsonl
