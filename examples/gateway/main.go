// Internet gateway: the paper's third motivating scenario (§1) and the
// topology of its §5.3 study (Fig 9). One well-known node — the mobile
// host nearest the wireless access point — relays a popular piece of
// Internet content into the ad hoc network; every other peer caches it.
// The example sweeps the TTL of the source's INVALIDATION flood and shows
// the paper's headline trade-off: a small TTL yields few relay peers and
// pull-like flooding; a large TTL yields many relays, push-like traffic
// and near-immediate answers.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/manetlab/rpcc"
)

func main() {
	fmt.Println("internet gateway: one hot item cached by all 50 peers (Fig 9 topology)")
	fmt.Println()
	fmt.Printf("%-18s %14s %14s %8s\n", "configuration", "transmissions", "mean latency", "relays")

	base := rpcc.DefaultScenario(rpcc.StrategyRPCCSC, 5)
	base.SimTime = 30 * time.Minute

	// Baseline reference lines first.
	for _, strategy := range []rpcc.Strategy{rpcc.StrategyPull, rpcc.StrategyPush} {
		scenario := base
		scenario.Strategy = strategy
		applySingleSource(&scenario)
		res, err := rpcc.Run(scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %14d %14v %8s\n", strategy, res.TotalTx,
			res.MeanLatency.Round(time.Millisecond), "-")
	}

	for ttl := 1; ttl <= 7; ttl++ {
		scenario := base
		applySingleSource(&scenario)
		scenario.InvalidationTTL = ttl
		res, err := rpcc.Run(scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rpcc-sc (TTL=%d)    %14d %14v %8d\n",
			ttl, res.TotalTx, res.MeanLatency.Round(time.Millisecond), res.RelayCount)
	}

	fmt.Println()
	fmt.Println("Small TTLs behave like simple pull (few relays, per-query floods);")
	fmt.Println("large TTLs behave like simple push (many relays, cheap validation).")
}

// applySingleSource switches a scenario to the Fig 9 setup using the
// figure-spec helper shipped with the library.
func applySingleSource(s *rpcc.Scenario) {
	for _, spec := range rpcc.Figures() {
		if spec.ID == "fig9a" {
			spec.Apply(s, float64(s.InvalidationTTL))
			return
		}
	}
}
