// Mobile store: the paper's second motivating scenario (§1). Mobile
// booths carry commodity records (price, stock) and cache each other's
// records so a customer at any booth can browse the whole catalogue.
// Different reads need different guarantees — browsing a price tolerates
// weak consistency, committing a sale needs strong consistency, and stock
// displays accept Δ-bounded staleness — which is exactly the mixed
// workload RPCC serves adaptively (§4.4). The example runs the same booth
// fleet under RPCC's hybrid mode and under both baselines, and prints the
// trade-off the paper's Figures 7 and 8 describe.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/manetlab/rpcc"
)

func main() {
	fmt.Println("mobile store fleet: 30 booths, mixed consistency workload")
	fmt.Println("(weak = price browse, delta = stock display, strong = sale commit)")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %12s %10s\n", "strategy", "transmissions", "mean latency", "answered", "stale")

	for _, strategy := range []rpcc.Strategy{
		rpcc.StrategyRPCCHY, // RPCC serving the mixed workload adaptively
		rpcc.StrategyPush,
		rpcc.StrategyPull,
	} {
		scenario := rpcc.DefaultScenario(strategy, 7)
		scenario.NPeers = 30
		scenario.AreaWidth, scenario.AreaHeight = 1200, 1200
		scenario.SimTime = 30 * time.Minute
		scenario.QueryInterval = 10 * time.Second // busy market
		scenario.UpdateInterval = time.Minute     // prices move quickly

		res, err := rpcc.Run(scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14d %14v %11.0f%% %10d\n",
			strategy, res.TotalTx, res.MeanLatency.Round(time.Millisecond),
			100*res.AnswerRate(), res.Violations)
	}

	fmt.Println()
	fmt.Println("RPCC's hybrid mode keeps latency at the pull level while sending")
	fmt.Println("a fraction of pull's messages; push is cheap but a sale commit")
	fmt.Println("would wait minutes for the next invalidation report.")
}
