// Quickstart: run the paper's default Table 1 scenario under RPCC with
// strong consistency and print the metrics the paper's figures plot —
// network traffic (Fig 7) and query latency (Fig 8) — together with the
// consistency audit that checks every served answer against ground truth.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/manetlab/rpcc"
)

func main() {
	scenario := rpcc.DefaultScenario(rpcc.StrategyRPCCSC, 42)
	scenario.SimTime = 30 * time.Minute // the paper runs 5h; keep the demo quick

	fmt.Printf("simulating %d peers for %v (RPCC, strong consistency)...\n\n",
		scenario.NPeers, scenario.SimTime)

	result, err := rpcc.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rpcc.RenderResult(result))

	fmt.Println("\nFor comparison, the same workload under the simple pull baseline:")
	scenario.Strategy = rpcc.StrategyPull
	pull, err := rpcc.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  pull transmissions: %d\n  rpcc transmissions: %d (%.0f%% of pull)\n",
		pull.TotalTx, result.TotalTx, 100*float64(result.TotalTx)/float64(pull.TotalTx))
}
