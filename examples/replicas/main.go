// Replicas: the paper's third future-work direction (§6). In the cache
// model only a data item's source host may write; here a shared document
// — a patrol log kept by four squad members — is a replica ANY holder can
// modify. Writes carry Lamport clocks and merge last-writer-wins; eager
// flooding propagates them and periodic anti-entropy repairs whatever a
// disconnection hid. The example partitions one holder, lets both sides
// write concurrently, and shows the replicas converging after the
// partition heals.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/manetlab/rpcc"
)

func main() {
	opts := rpcc.DefaultSimOptions(77)
	opts.Peers = 10
	sim, err := rpcc.NewReplicaSimulation(opts)
	if err != nil {
		log.Fatal(err)
	}

	const patrolLog = 1
	holders := []int{0, 2, 5, 8}
	if err := sim.Register(patrolLog, holders); err != nil {
		log.Fatal(err)
	}

	// Normal operation: holder 0 writes, everyone sees it.
	if err := sim.Write(0, patrolLog, "08:00 patrol departs"); err != nil {
		log.Fatal(err)
	}
	sim.RunFor(10 * time.Second)
	show(sim, patrolLog, holders, "after the first write")

	// Holder 8 is cut off; both sides keep writing concurrently.
	if err := sim.Disconnect(8); err != nil {
		log.Fatal(err)
	}
	sim.Write(2, patrolLog, "08:30 checkpoint alpha clear")
	sim.RunFor(time.Minute)
	show(sim, patrolLog, holders, "during the partition (holder 8 is stale)")

	// Partition heals; anti-entropy reconciles within a few periods.
	if err := sim.Reconnect(8); err != nil {
		log.Fatal(err)
	}
	sim.RunFor(3 * time.Minute)
	show(sim, patrolLog, holders, "after the partition heals")

	if v, ok := sim.Converged(patrolLog); ok {
		fmt.Printf("\nconverged: %q (clock %d, writer %d) — %d transmissions total\n",
			v.Data, v.Clock, v.Writer, sim.Transmissions())
	} else {
		fmt.Println("\nreplicas did NOT converge")
	}
}

func show(sim *rpcc.ReplicaSimulation, id int, holders []int, when string) {
	fmt.Printf("%s:\n", when)
	for _, h := range holders {
		v, err := sim.Read(h, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  holder %d: %q\n", h, v.Data)
	}
}
