// Battlefield: the paper's first motivating scenario (§1). A squad of
// soldiers forms a MANET; each soldier's micro-data-center owns one data
// item (their sector report) and caches squadmates' reports. Sector
// reports change often; before acting on one, a soldier issues a
// strong-consistency query so a stale report is never used. Mid-exercise
// the squad's comms are jammed for two minutes (scripted disconnection),
// and the example shows RPCC's reconnection repair bringing the rejoined
// soldiers back to the current versions.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/manetlab/rpcc"
)

func main() {
	const soldiers = 16
	opts := rpcc.DefaultSimOptions(2026)
	opts.Peers = soldiers
	opts.AreaMeters = 600 // tight patrol area: mostly in radio contact
	opts.MinSpeed, opts.MaxSpeed = 1, 4

	sim, err := rpcc.NewSimulation(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Every soldier caches the three reports of the fire team ahead.
	for s := 0; s < soldiers; s++ {
		for j := 1; j <= 3; j++ {
			if err := sim.Warm(s, (s+j)%soldiers); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Scouts 0 and 1 refresh their sector reports every 30 simulated
	// seconds; everyone reads the report ahead of them once a minute.
	for minute := 1; minute <= 20; minute++ {
		at := time.Duration(minute) * time.Minute
		if err := sim.At(at, func() {
			sim.Update(0)
			sim.Update(1)
			for s := 0; s < soldiers; s++ {
				sim.Query(s, (s+1)%soldiers, rpcc.LevelStrong)
			}
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Jamming: soldiers 13–15 (who cache scout 0's report) drop off the
	// net between minutes 8 and 10.
	jammed := []int{13, 14, 15}
	sim.At(8*time.Minute, func() {
		for _, s := range jammed {
			sim.Disconnect(s)
		}
	})
	sim.At(10*time.Minute, func() {
		for _, s := range jammed {
			sim.Reconnect(s)
		}
	})

	if err := sim.RunFor(21 * time.Minute); err != nil {
		log.Fatal(err)
	}

	m := sim.Metrics()
	fmt.Println("battlefield exercise complete (21 simulated minutes)")
	fmt.Printf("  strong queries:   %d issued, %d answered, %d failed\n", m.Issued, m.Answered, m.Failed)
	fmt.Printf("  stale answers:    %d (audited against ground truth)\n", m.AuditViolations)
	fmt.Printf("  mean latency:     %v\n", m.MeanLatency.Round(time.Millisecond))
	fmt.Printf("  radio traffic:    %d transmissions, %d bytes\n", m.TotalTransmissions, m.TotalBytes)
	fmt.Printf("  relay peers:      %d registrations\n", m.RelayRegistrations)

	// Verify the jammed soldiers recovered the scouts' current versions.
	want, _ := sim.Version(0, 0)
	fmt.Printf("\n  scout 0's report is at version %d; rejoined soldiers see:\n", want)
	for _, s := range jammed {
		if v, ok := sim.Version(s, 0); ok {
			fmt.Printf("    soldier %d: version %d\n", s, v)
		} else {
			fmt.Printf("    soldier %d: (does not cache scout 0)\n", s)
		}
	}
}
