package pushpull

import (
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// GPSCEConfig parameterises the location-aided comparator.
type GPSCEConfig struct {
	// ReRegisterEvery is how often a cache node refreshes its position
	// with the source host.
	ReRegisterEvery time.Duration
	// FetchTimeout bounds one geo-routed refetch round.
	FetchTimeout time.Duration
}

// DefaultGPSCEConfig returns 2-minute position refreshes.
func DefaultGPSCEConfig() GPSCEConfig {
	return GPSCEConfig{
		ReRegisterEvery: 2 * time.Minute,
		FetchTimeout:    2 * time.Second,
	}
}

// Validate reports configuration errors.
func (c GPSCEConfig) Validate() error {
	if c.ReRegisterEvery <= 0 {
		return fmt.Errorf("pushpull: non-positive re-register period %v", c.ReRegisterEvery)
	}
	if c.FetchTimeout <= 0 {
		return fmt.Errorf("pushpull: non-positive fetch timeout %v", c.FetchTimeout)
	}
	return nil
}

// gpsceItem is one cache node's state for one cached item.
type gpsceItem struct {
	valid     bool
	sourcePos geo.Point
	posKnown  bool
}

// GPSCE is a reconstruction of the location-aided cache-invalidation
// family the paper's related work cites (Lim et al.'s GPSCE [Lim04],
// built on the stateful AS scheme of Kahol et al. [Kah01]): the source
// host keeps per-cache-node state — here, each cache node's last GPS
// position — and on every update sends an invalidation directly to each
// registered cache node via greedy geographic forwarding, with no
// flooding anywhere in the control plane. Queries on a still-valid copy
// answer immediately; invalidated copies refetch from the source, again
// geo-routed.
//
// The scheme is cheap (unicasts only) and fast (eager invalidation), and
// its weakness is exactly what the paper says keeps it niche: it needs
// GPS hardware, and stale positions or greedy-forwarding voids silently
// lose invalidations — measured here as strong-consistency violations
// the auditor charges against it.
type GPSCE struct {
	cfg GPSCEConfig
	ch  *node.Chassis
	// net is the chassis transport narrowed to its geo-aware interface;
	// GPSCE is the one strategy that cannot run over a position-blind
	// transport (it geo-routes invalidations), so the narrowing happens
	// once at construction and fails loudly.
	net node.GeoTransport
	// registry is the source-side state: per source node, the last known
	// position of every registered cache node of its item.
	registry []map[int]geo.Point
	// items is the cache-side state per (node, item).
	items     []map[data.ItemID]*gpsceItem
	rounds    map[uint64]*node.Query
	started   bool
	invs      *telemetry.Counter
	refetches *telemetry.Counter
}

// NewGPSCE builds the engine on the shared chassis.
func NewGPSCE(cfg GPSCEConfig, ch *node.Chassis) (*GPSCE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ch == nil {
		return nil, fmt.Errorf("pushpull: nil chassis")
	}
	gnet, ok := ch.Net.(node.GeoTransport)
	if !ok {
		return nil, fmt.Errorf("pushpull: gpsce requires a position-aware transport (got %T)", ch.Net)
	}
	g := &GPSCE{
		cfg:      cfg,
		ch:       ch,
		net:      gnet,
		registry: make([]map[int]geo.Point, ch.Net.Len()),
		items:    make([]map[data.ItemID]*gpsceItem, ch.Net.Len()),
		rounds:   make(map[uint64]*node.Query),
	}
	for i := range g.registry {
		g.registry[i] = make(map[int]geo.Point)
		g.items[i] = make(map[data.ItemID]*gpsceItem)
	}
	return g, nil
}

// Name identifies the strategy.
func (g *GPSCE) Name() string { return "gpsce" }

// Chassis exposes shared metrics.
func (g *GPSCE) Chassis() *node.Chassis { return g.ch }

// Warm pre-places a copy and performs the placement-time rendezvous: the
// cache node learns the source's position and the source registers the
// cache node's — both sides are co-informed when placement happens.
func (g *GPSCE) Warm(k *sim.Kernel, host int, c data.Copy) {
	if err := g.ch.Stores[host].Put(c, k.Now()); err != nil {
		return
	}
	owner := g.ch.Reg.Owner(c.ID)
	g.items[host][c.ID] = &gpsceItem{
		valid:     true,
		sourcePos: g.net.Position(owner),
		posKnown:  true,
	}
	g.registry[owner][host] = g.net.Position(host)
}

// Start installs receivers and schedules the staggered position refresh.
func (g *GPSCE) Start(k *sim.Kernel) error {
	if g.started {
		return fmt.Errorf("pushpull: gpsce already started")
	}
	g.started = true
	g.invs = strategyEvent(g.ch.Hub, "gpsce", "geo-inv")
	g.refetches = strategyEvent(g.ch.Hub, "gpsce", "geo-refetch")
	for nd := 0; nd < g.ch.Net.Len(); nd++ {
		if err := g.ch.Net.SetReceiver(nd, func(kk *sim.Kernel, n int, msg protocol.Message, meta netsim.Meta) {
			g.dispatch(kk, n, msg)
		}); err != nil {
			return err
		}
	}
	stagger := k.Stream("gpsce.stagger")
	for nd := 0; nd < g.ch.Net.Len(); nd++ {
		nd := nd
		k.After(time.Duration(stagger.Int63n(int64(g.cfg.ReRegisterEvery))), "gpsce.register", func(kk *sim.Kernel) {
			g.registerTick(kk, nd)
		})
	}
	return nil
}

// registerTick refreshes this node's position with every source whose
// item it caches.
func (g *GPSCE) registerTick(k *sim.Kernel, nd int) {
	defer k.After(g.cfg.ReRegisterEvery, "gpsce.register", func(kk *sim.Kernel) {
		g.registerTick(kk, nd)
	})
	myPos := g.net.Position(nd)
	items := make([]data.ItemID, 0, len(g.items[nd]))
	for item := range g.items[nd] {
		items = append(items, item)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, item := range items {
		st := g.items[nd][item]
		if !st.posKnown {
			continue
		}
		owner := g.ch.Reg.Owner(item)
		reg := protocol.Message{
			Kind:   protocol.KindRegister,
			Item:   item,
			Origin: nd,
			Pos:    myPos,
			HasPos: true,
		}
		_ = g.net.GeoUnicast(nd, owner, st.sourcePos, reg)
	}
}

// OnUpdate commits a new version and eagerly geo-unicasts GEO_INV to
// every registered cache node — the stateful AS push.
func (g *GPSCE) OnUpdate(k *sim.Kernel, host int) {
	item := g.ch.Reg.OwnedBy(host)
	m, err := g.ch.Reg.Master(item)
	if err != nil {
		return
	}
	cur, err := m.Update(k.Now())
	if err != nil {
		panic(fmt.Sprintf("pushpull: master update failed: %v", err))
	}
	srcPos := g.net.Position(host)
	cacheNodes := make([]int, 0, len(g.registry[host]))
	for cacheNode := range g.registry[host] {
		cacheNodes = append(cacheNodes, cacheNode)
	}
	sort.Ints(cacheNodes)
	for _, cacheNode := range cacheNodes {
		lastPos := g.registry[host][cacheNode]
		inv := protocol.Message{
			Kind:    protocol.KindGeoInv,
			Item:    item,
			Origin:  host,
			Version: cur.Version,
			Pos:     srcPos,
			HasPos:  true,
		}
		g.invs.Inc()
		_ = g.net.GeoUnicast(host, cacheNode, lastPos, inv)
	}
}

// OnQuery serves one query: valid copies answer immediately (the source
// would have invalidated them), invalid ones refetch geo-routed.
func (g *GPSCE) OnQuery(k *sim.Kernel, host int, item data.ItemID, level consistency.Level) {
	q := g.ch.Begin(k, host, item, level)
	if g.ch.Reg.Owner(item) == host {
		m, err := g.ch.Reg.Master(item)
		if err != nil {
			g.ch.Fail(q, "unknown-item")
			return
		}
		q.Route = "owner"
		q.Source = host
		g.ch.Answer(k, q, m.Current())
		return
	}
	cp, ok := g.ch.Stores[host].Get(item)
	if !ok {
		q.Route = "fetch"
		// Cache miss: locate any copy; the fetched copy starts valid and
		// registration catches up at the next placement rendezvous.
		g.ch.FetchRing(k, host, item, q.TC, func(kk *sim.Kernel, c data.Copy, from int, fok bool) {
			if !fok {
				g.ch.Fail(q, "fetch-timeout")
				return
			}
			_ = g.ch.Stores[host].Put(c, kk.Now())
			st := &gpsceItem{valid: true}
			if from == g.ch.Reg.Owner(item) {
				st.sourcePos = g.net.Position(from)
				st.posKnown = true
				g.registry[from][host] = g.net.Position(host)
			}
			g.items[host][item] = st
			q.Source = from
			g.ch.Answer(kk, q, c)
		})
		return
	}
	st, have := g.items[host][item]
	if !have {
		st = &gpsceItem{valid: true}
		g.items[host][item] = st
	}
	if st.valid {
		q.Route = "local"
		q.Source = host
		g.ch.Answer(k, q, cp)
		return
	}
	// Invalidated: geo-routed refetch from the source.
	q.Route = "geo-refetch"
	g.refetches.Inc()
	g.rounds[q.Seq] = q
	req := protocol.Message{
		Kind:   protocol.KindDataRequest,
		Item:   item,
		Origin: host,
		Seq:    q.Seq,
		Pos:    g.net.Position(host),
		HasPos: true,
	}
	owner := g.ch.Reg.Owner(item)
	target := st.sourcePos
	if !st.posKnown {
		target = g.net.Position(owner) // degraded: no better belief
	}
	if err := g.net.GeoUnicast(host, owner, target, req); err != nil {
		delete(g.rounds, q.Seq)
		g.ch.Fail(q, "fetch-send")
		return
	}
	k.After(g.cfg.FetchTimeout, "gpsce.fetch.timeout", func(*sim.Kernel) {
		if _, open := g.rounds[q.Seq]; open {
			delete(g.rounds, q.Seq)
			g.ch.Fail(q, "fetch-timeout")
		}
	})
}

func (g *GPSCE) dispatch(k *sim.Kernel, nd int, msg protocol.Message) {
	switch msg.Kind {
	case protocol.KindRegister:
		g.onRegister(k, nd, msg)
	case protocol.KindGeoInv:
		g.onGeoInv(k, nd, msg)
	case protocol.KindDataRequest:
		g.onDataRequest(k, nd, msg)
	case protocol.KindDataReply:
		g.onDataReply(k, nd, msg)
	}
}

// onRegister records the cache node's fresh position and confirms with a
// GEO_INV carrying the current version — doubling as a validation.
func (g *GPSCE) onRegister(k *sim.Kernel, nd int, msg protocol.Message) {
	if g.ch.Reg.Owner(msg.Item) != nd || !msg.HasPos {
		return
	}
	g.registry[nd][msg.Origin] = msg.Pos
	m, err := g.ch.Reg.Master(msg.Item)
	if err != nil {
		return
	}
	ack := protocol.Message{
		Kind:    protocol.KindGeoInv,
		Item:    msg.Item,
		Origin:  nd,
		Version: m.Current().Version,
		Pos:     g.net.Position(nd),
		HasPos:  true,
	}
	_ = g.net.GeoUnicast(nd, msg.Origin, msg.Pos, ack)
}

// onGeoInv updates the cache node's view: stale versions invalidate the
// copy, matching versions re-validate it; either way the source's
// position is refreshed.
func (g *GPSCE) onGeoInv(k *sim.Kernel, nd int, msg protocol.Message) {
	st, ok := g.items[nd][msg.Item]
	if !ok {
		return
	}
	if msg.HasPos {
		st.sourcePos = msg.Pos
		st.posKnown = true
	}
	cp, have := g.ch.Stores[nd].Peek(msg.Item)
	if !have {
		return
	}
	st.valid = cp.Version >= msg.Version
}

// onDataRequest serves a geo-routed refetch at the source, replying along
// the requester's advertised position.
func (g *GPSCE) onDataRequest(k *sim.Kernel, nd int, msg protocol.Message) {
	if g.ch.Reg.Owner(msg.Item) != nd {
		// Non-owners may still hear ring-fetch floods; the shared
		// chassis path answers those.
		g.ch.HandleDataRequest(k, nd, msg)
		return
	}
	m, err := g.ch.Reg.Master(msg.Item)
	if err != nil {
		return
	}
	cur := m.Current()
	if msg.HasPos {
		g.registry[nd][msg.Origin] = msg.Pos
	}
	reply := protocol.Message{
		Kind:    protocol.KindDataReply,
		Item:    msg.Item,
		Origin:  nd,
		Version: cur.Version,
		Copy:    cur,
		Seq:     msg.Seq,
		Pos:     g.net.Position(nd),
		HasPos:  true,
	}
	if msg.HasPos {
		_ = g.net.GeoUnicast(nd, msg.Origin, msg.Pos, reply)
		return
	}
	_ = g.ch.Net.Unicast(nd, msg.Origin, reply)
}

// onDataReply resolves a geo refetch round (or hands ring-fetch replies
// to the chassis).
func (g *GPSCE) onDataReply(k *sim.Kernel, nd int, msg protocol.Message) {
	q, open := g.rounds[msg.Seq]
	if !open || q.Host != nd {
		g.ch.HandleDataReply(k, nd, msg)
		return
	}
	delete(g.rounds, msg.Seq)
	_ = g.ch.Stores[nd].Put(msg.Copy, k.Now())
	if st, ok := g.items[nd][msg.Item]; ok {
		st.valid = true
		if msg.HasPos {
			st.sourcePos = msg.Pos
			st.posKnown = true
		}
	}
	q.Source = msg.Origin
	g.ch.Answer(k, q, msg.Copy)
}
