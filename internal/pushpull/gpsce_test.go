package pushpull

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/protocol"
)

// warmGPSCE places the current master copy with the placement rendezvous.
func warmGPSCE(t *testing.T, e *env, g *GPSCE, host int, item data.ItemID) {
	t.Helper()
	m, err := e.reg.Master(item)
	if err != nil {
		t.Fatal(err)
	}
	g.Warm(e.k, host, m.Current())
}

func TestGPSCEConfigValidate(t *testing.T) {
	if err := DefaultGPSCEConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultGPSCEConfig()
	bad.ReRegisterEvery = 0
	if bad.Validate() == nil {
		t.Error("zero re-register period accepted")
	}
	bad = DefaultGPSCEConfig()
	bad.FetchTimeout = 0
	if bad.Validate() == nil {
		t.Error("zero fetch timeout accepted")
	}
}

func TestGPSCEValidCopyAnswersImmediately(t *testing.T) {
	e := newEnv(t, 4)
	g, err := NewGPSCE(DefaultGPSCEConfig(), e.ch)
	if err != nil {
		t.Fatal(err)
	}
	warmGPSCE(t, e, g, 0, 2)
	if err := g.Start(e.k); err != nil {
		t.Fatal(err)
	}
	before := e.net.Traffic().TotalTx()
	g.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	if e.ch.Answered() != 1 {
		t.Fatal("valid copy not answered synchronously")
	}
	if e.net.Traffic().TotalTx() != before {
		t.Error("valid-copy answer generated traffic")
	}
}

func TestGPSCEEagerInvalidationThenRefetch(t *testing.T) {
	e := newEnv(t, 4)
	g, _ := NewGPSCE(DefaultGPSCEConfig(), e.ch)
	warmGPSCE(t, e, g, 0, 2)
	g.Start(e.k)
	// The source updates: a GEO_INV reaches the registered cache node.
	g.OnUpdate(e.k, 2)
	e.k.RunUntil(5 * time.Second)
	if e.net.Traffic().Delivered(protocol.KindGeoInv) == 0 {
		t.Fatal("no GEO_INV delivered after update")
	}
	// The copy is now invalid: the next strong query refetches.
	g.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	e.k.RunUntil(e.k.Now() + 10*time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("refetch query unanswered; reasons=%v", e.ch.FailReasons())
	}
	cp, _ := e.stores[0].Peek(2)
	if cp.Version != 1 {
		t.Errorf("copy after refetch = v%d, want v1", cp.Version)
	}
	if e.ch.AuditViolations() != 0 {
		t.Error("refetched strong answer flagged stale")
	}
}

func TestGPSCEOwnerAnswersLocally(t *testing.T) {
	e := newEnv(t, 3)
	g, _ := NewGPSCE(DefaultGPSCEConfig(), e.ch)
	g.Start(e.k)
	g.OnQuery(e.k, 1, 1, consistency.LevelStrong)
	if e.ch.Answered() != 1 {
		t.Fatal("owner query not local")
	}
}

func TestGPSCEMissFetchesAndRegisters(t *testing.T) {
	e := newEnv(t, 4)
	g, _ := NewGPSCE(DefaultGPSCEConfig(), e.ch)
	g.Start(e.k)
	g.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("miss unanswered; reasons=%v", e.ch.FailReasons())
	}
	if !e.stores[0].Contains(2) {
		t.Error("miss not cached")
	}
	// The owner answered the ring fetch, so the node registered.
	if _, registered := g.registry[2][0]; !registered {
		t.Error("owner-served miss did not register the cache node")
	}
}

func TestGPSCEReRegistrationRefreshesPositions(t *testing.T) {
	e := newEnv(t, 4)
	g, _ := NewGPSCE(DefaultGPSCEConfig(), e.ch)
	warmGPSCE(t, e, g, 0, 2)
	g.Start(e.k)
	e.k.RunUntil(10 * time.Minute)
	if e.net.Traffic().Delivered(protocol.KindRegister) == 0 {
		t.Fatal("no REGISTER messages delivered over 10 minutes")
	}
	// Registration acks double as validations: GEO_INV flows even with
	// no updates.
	if e.net.Traffic().Delivered(protocol.KindGeoInv) == 0 {
		t.Error("no GEO_INV acks for registrations")
	}
}

func TestGPSCEControlPlaneNeverFloods(t *testing.T) {
	e := newEnv(t, 4)
	g, _ := NewGPSCE(DefaultGPSCEConfig(), e.ch)
	for host := 1; host < 4; host++ {
		warmGPSCE(t, e, g, host, 0)
	}
	g.Start(e.k)
	for i := 0; i < 5; i++ {
		g.OnUpdate(e.k, 0)
		e.k.RunUntil(e.k.Now() + 2*time.Minute)
	}
	tr := e.net.Traffic()
	for _, kind := range []protocol.Kind{protocol.KindIR, protocol.KindInvalidation, protocol.KindPullPoll} {
		if tr.Tx(kind) != 0 {
			t.Errorf("location-aided control plane used flooding kind %v", kind)
		}
	}
	if tr.Delivered(protocol.KindGeoInv) == 0 {
		t.Error("no geo invalidations flowed")
	}
}

func TestGPSCEDoubleStartRejected(t *testing.T) {
	e := newEnv(t, 3)
	g, _ := NewGPSCE(DefaultGPSCEConfig(), e.ch)
	g.Start(e.k)
	if g.Start(e.k) == nil {
		t.Error("double start accepted")
	}
}
