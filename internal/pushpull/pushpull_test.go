package pushpull

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

type staticSource struct{ pts []geo.Point }

func (s *staticSource) Len() int { return len(s.pts) }
func (s *staticSource) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(s.pts) {
		dst = make([]geo.Point, len(s.pts))
	}
	dst = dst[:len(s.pts)]
	copy(dst, s.pts)
	return dst
}

type env struct {
	k      *sim.Kernel
	net    *netsim.Network
	reg    *data.Registry
	stores []*cache.Store
	ch     *node.Chassis
}

func newEnv(t *testing.T, n int) *env {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(21))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200}
	}
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := data.NewRegistry(n)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*cache.Store, n)
	for i := range stores {
		stores[i], err = cache.NewStore(10)
		if err != nil {
			t.Fatal(err)
		}
	}
	aud, err := consistency.NewAuditor(reg, 4*time.Minute, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := node.NewChassis(node.DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		t.Fatal(err)
	}
	return &env{k: k, net: net, reg: reg, stores: stores, ch: ch}
}

func (e *env) seed(t *testing.T, host int, item data.ItemID) {
	t.Helper()
	m, err := e.reg.Master(item)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.stores[host].Put(m.Current(), e.k.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestPushConfigValidate(t *testing.T) {
	if err := DefaultPushConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultPushConfig()
	bad.TTN = 0
	if bad.Validate() == nil {
		t.Error("zero TTN accepted")
	}
	bad = DefaultPushConfig()
	bad.QueryPatience = time.Second
	if bad.Validate() == nil {
		t.Error("patience below TTN accepted")
	}
	bad = DefaultPushConfig()
	bad.BroadcastTTL = 0
	if bad.Validate() == nil {
		t.Error("zero TTL accepted")
	}
}

func TestPullConfigValidate(t *testing.T) {
	if err := DefaultPullConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultPullConfig()
	bad.PollTimeout = 0
	if bad.Validate() == nil {
		t.Error("zero timeout accepted")
	}
}

func TestAdaptiveConfigValidate(t *testing.T) {
	if err := DefaultAdaptiveConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultAdaptiveConfig()
	bad.InitialWindow = time.Hour
	if bad.Validate() == nil {
		t.Error("initial window above max accepted")
	}
	bad = DefaultAdaptiveConfig()
	bad.MinWindow = 0
	if bad.Validate() == nil {
		t.Error("zero min window accepted")
	}
}

func TestPushQueryWaitsForIR(t *testing.T) {
	e := newEnv(t, 4)
	p, err := NewPush(DefaultPushConfig(), e.ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(e.k); err != nil {
		t.Fatal(err)
	}
	e.seed(t, 0, 2)
	p.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	// Not answered synchronously: the baseline waits for an IR.
	if e.ch.Answered() != 0 {
		t.Fatal("push answered before any IR")
	}
	e.k.RunUntil(5 * time.Minute) // at least one IR interval passes
	if e.ch.Answered() != 1 {
		t.Fatalf("push query unanswered after IR; reasons=%v", e.ch.FailReasons())
	}
	// Latency reflects the IR wait: a decent fraction of TTN.
	if got := e.ch.Latency.Max(); got < 500*time.Millisecond {
		t.Errorf("push latency %v suspiciously low for IR-wait semantics", got)
	}
}

func TestPushStaleCopyRefetchedOnIR(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPush(DefaultPushConfig(), e.ch)
	p.Start(e.k)
	e.seed(t, 0, 2)
	p.OnUpdate(e.k, 2) // master at v1; cached copy v0
	p.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	e.k.RunUntil(5 * time.Minute)
	if e.ch.Answered() != 1 {
		t.Fatalf("query unanswered; reasons=%v", e.ch.FailReasons())
	}
	cp, ok := e.stores[0].Peek(2)
	if !ok || cp.Version != 1 {
		t.Errorf("copy after IR-triggered refetch = v%d, want v1", cp.Version)
	}
	if e.ch.AuditViolations() != 0 {
		t.Errorf("push strong answer stale: %v", e.ch.Auditor.Worst())
	}
}

func TestPushOwnerAnswersLocally(t *testing.T) {
	e := newEnv(t, 3)
	p, _ := NewPush(DefaultPushConfig(), e.ch)
	p.Start(e.k)
	p.OnQuery(e.k, 1, 1, consistency.LevelStrong)
	if e.ch.Answered() != 1 {
		t.Fatal("owner query not local")
	}
}

func TestPushMissFetchesThenWaits(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPush(DefaultPushConfig(), e.ch)
	p.Start(e.k)
	p.OnQuery(e.k, 0, 3, consistency.LevelStrong)
	e.k.RunUntil(5 * time.Minute)
	if e.ch.Answered() != 1 {
		t.Fatalf("push miss unanswered; reasons=%v", e.ch.FailReasons())
	}
	if !e.stores[0].Contains(3) {
		t.Error("push miss did not cache the fetched copy")
	}
}

func TestPushIRTrafficFlowsEveryInterval(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPush(DefaultPushConfig(), e.ch)
	p.Start(e.k)
	e.k.RunUntil(10 * time.Minute)
	// 4 sources x ~5 intervals: IR floods must be plentiful.
	if got := e.net.Traffic().Originated(protocol.KindIR); got < 12 {
		t.Errorf("IR originations = %d in 10min, want >= 12", got)
	}
}

func TestPullFreshCopyGetsAck(t *testing.T) {
	e := newEnv(t, 4)
	p, err := NewPull(DefaultPullConfig(), e.ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(e.k); err != nil {
		t.Fatal(err)
	}
	e.seed(t, 0, 2)
	p.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("pull query unanswered; reasons=%v", e.ch.FailReasons())
	}
	if e.net.Traffic().Delivered(protocol.KindPullAck) == 0 {
		t.Error("fresh copy did not draw PULL_ACK")
	}
	if e.ch.AuditViolations() != 0 {
		t.Error("pull answer flagged")
	}
}

func TestPullStaleCopyGetsReply(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPull(DefaultPullConfig(), e.ch)
	p.Start(e.k)
	e.seed(t, 0, 2)
	p.OnUpdate(e.k, 2)
	p.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatal("pull query unanswered")
	}
	cp, _ := e.stores[0].Peek(2)
	if cp.Version != 1 {
		t.Errorf("copy after PULL_REPLY = v%d, want v1", cp.Version)
	}
}

func TestPullMissGetsContent(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPull(DefaultPullConfig(), e.ch)
	p.Start(e.k)
	p.OnQuery(e.k, 0, 2, consistency.LevelWeak)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("pull miss unanswered; reasons=%v", e.ch.FailReasons())
	}
	if !e.stores[0].Contains(2) {
		t.Error("pull miss did not cache")
	}
}

func TestPullFailsAcrossPartition(t *testing.T) {
	e := newEnv(t, 11) // owner of item 10 is 10 hops away (> TTL 8)
	p, _ := NewPull(DefaultPullConfig(), e.ch)
	p.Start(e.k)
	e.seed(t, 0, 10)
	p.OnQuery(e.k, 0, 10, consistency.LevelStrong)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Failed() != 1 {
		t.Fatal("poll beyond TTL did not fail")
	}
}

func TestPullFloodsPerQuery(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPull(DefaultPullConfig(), e.ch)
	p.Start(e.k)
	e.seed(t, 0, 2)
	for i := 0; i < 5; i++ {
		p.OnQuery(e.k, 0, 2, consistency.LevelStrong)
		e.k.RunUntil(e.k.Now() + 5*time.Second)
	}
	if got := e.net.Traffic().Originated(protocol.KindPullPoll); got != 5 {
		t.Errorf("pull poll originations = %d, want 5 (one per query)", got)
	}
	// Each flood traverses the network: per-query transmissions are the
	// cost that dominates Fig 7's pull curve.
	if got := e.net.Traffic().Tx(protocol.KindPullPoll); got < 15 {
		t.Errorf("pull poll transmissions = %d, want >= 15 across 5 floods", got)
	}
}

func TestAdaptiveWindowWidensOnUnchanged(t *testing.T) {
	e := newEnv(t, 4)
	a, err := NewAdaptive(DefaultAdaptiveConfig(), e.ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(e.k); err != nil {
		t.Fatal(err)
	}
	e.seed(t, 0, 2)
	w0 := a.Window(0, 2)
	a.OnQuery(e.k, 0, 2, consistency.LevelDelta)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("adaptive query unanswered; reasons=%v", e.ch.FailReasons())
	}
	if got := a.Window(0, 2); got != 2*w0 {
		t.Errorf("window after unchanged validation = %v, want %v", got, 2*w0)
	}
}

func TestAdaptiveWindowTightensOnChange(t *testing.T) {
	e := newEnv(t, 4)
	a, _ := NewAdaptive(DefaultAdaptiveConfig(), e.ch)
	a.Start(e.k)
	e.seed(t, 0, 2)
	a.OnUpdate(e.k, 2)
	w0 := a.Window(0, 2)
	a.OnQuery(e.k, 0, 2, consistency.LevelDelta)
	e.k.RunUntil(10 * time.Second)
	if got := a.Window(0, 2); got != w0/2 {
		t.Errorf("window after changed validation = %v, want %v", got, w0/2)
	}
}

func TestAdaptiveAnswersLocallyInsideWindow(t *testing.T) {
	e := newEnv(t, 4)
	a, _ := NewAdaptive(DefaultAdaptiveConfig(), e.ch)
	a.Start(e.k)
	e.seed(t, 0, 2)
	a.OnQuery(e.k, 0, 2, consistency.LevelDelta) // validates, opens window
	e.k.RunUntil(10 * time.Second)
	before := e.net.Traffic().Originated(protocol.KindPullPoll)
	a.OnQuery(e.k, 0, 2, consistency.LevelDelta) // inside window: local
	if e.ch.Answered() != 2 {
		t.Fatal("in-window query not answered synchronously")
	}
	if got := e.net.Traffic().Originated(protocol.KindPullPoll); got != before {
		t.Error("in-window query polled anyway")
	}
}

func TestAdaptiveWindowBounds(t *testing.T) {
	e := newEnv(t, 4)
	cfg := DefaultAdaptiveConfig()
	a, _ := NewAdaptive(cfg, e.ch)
	a.Start(e.k)
	e.seed(t, 0, 2)
	// Repeated changes push the window to its floor, never below.
	for i := 0; i < 10; i++ {
		a.OnUpdate(e.k, 2)
		a.OnQuery(e.k, 0, 2, consistency.LevelWeak)
		e.k.RunUntil(e.k.Now() + cfg.MaxWindow) // ensure next query re-polls
	}
	if got := a.Window(0, 2); got != cfg.MinWindow {
		t.Errorf("window floor = %v, want %v", got, cfg.MinWindow)
	}
}

func TestStrategiesRejectDoubleStart(t *testing.T) {
	e := newEnv(t, 3)
	p, _ := NewPush(DefaultPushConfig(), e.ch)
	p.Start(e.k)
	if p.Start(e.k) == nil {
		t.Error("push double start accepted")
	}
	e2 := newEnv(t, 3)
	pl, _ := NewPull(DefaultPullConfig(), e2.ch)
	pl.Start(e2.k)
	if pl.Start(e2.k) == nil {
		t.Error("pull double start accepted")
	}
	e3 := newEnv(t, 3)
	ad, _ := NewAdaptive(DefaultAdaptiveConfig(), e3.ch)
	ad.Start(e3.k)
	if ad.Start(e3.k) == nil {
		t.Error("adaptive double start accepted")
	}
}

func TestPushIRRefreshesEvictedCopyForParkedQueries(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPush(DefaultPushConfig(), e.ch)
	p.Start(e.k)
	e.seed(t, 0, 2)
	p.OnQuery(e.k, 0, 2, consistency.LevelStrong) // parks until next IR
	// The copy vanishes while the query is parked (LRU pressure).
	e.stores[0].Remove(2)
	e.k.RunUntil(5 * time.Minute)
	if e.ch.Answered() != 1 {
		t.Fatalf("parked query over evicted copy unanswered; reasons=%v", e.ch.FailReasons())
	}
	if e.ch.AuditViolations() != 0 {
		t.Error("refetched answer flagged")
	}
}

func TestPushIgnoresIRForUncachedItemWithoutQueries(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPush(DefaultPushConfig(), e.ch)
	p.Start(e.k)
	// No cached copy, no parked queries: the IR must not trigger fetches.
	p.onIR(e.k, 0, protocol.Message{Kind: protocol.KindIR, Item: 2, Origin: 2, Version: 3})
	e.k.RunUntil(10 * time.Second)
	if got := e.net.Traffic().Originated(protocol.KindDataRequest); got != 0 {
		t.Errorf("IR for uncached item triggered %d fetches", got)
	}
}

func TestPushActiveSourceGatesIR(t *testing.T) {
	e := newEnv(t, 4)
	cfg := DefaultPushConfig()
	cfg.ActiveSource = func(host int) bool { return host == 0 }
	p, _ := NewPush(cfg, e.ch)
	p.Start(e.k)
	e.k.RunUntil(10 * time.Minute)
	// Only source 0 broadcasts: roughly 5 IR originations, not 20.
	got := e.net.Traffic().Originated(protocol.KindIR)
	if got == 0 || got > 8 {
		t.Errorf("IR originations = %d with one active source over 10min", got)
	}
}

func TestPullLateReplyIgnored(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPull(DefaultPullConfig(), e.ch)
	p.Start(e.k)
	e.seed(t, 0, 2)
	p.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	e.k.RunUntil(10 * time.Second) // answered; round closed
	if e.ch.Answered() != 1 {
		t.Fatal("setup failed")
	}
	// A duplicate/late ack for the same seq must not double-answer.
	p.onAck(e.k, 0, protocol.Message{Kind: protocol.KindPullAck, Item: 2, Origin: 2, Seq: 1})
	if e.ch.Answered() != 1 {
		t.Error("late ack double-answered")
	}
}

func TestPullAckForLostCopyFails(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPull(DefaultPullConfig(), e.ch)
	p.Start(e.k)
	e.seed(t, 0, 2)
	p.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	// The copy vanishes while the poll is in flight; the ACK then has
	// nothing to validate.
	e.stores[0].Remove(2)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Failed() != 1 {
		t.Fatalf("ack over lost copy did not fail cleanly; answered=%d reasons=%v",
			e.ch.Answered(), e.ch.FailReasons())
	}
}

func TestPullNonOwnerIgnoresPoll(t *testing.T) {
	e := newEnv(t, 4)
	p, _ := NewPull(DefaultPullConfig(), e.ch)
	p.Start(e.k)
	e.seed(t, 1, 2) // node 1 caches item 2 but is NOT its owner
	before := e.net.Traffic().Originated(protocol.KindPullReply) +
		e.net.Traffic().Originated(protocol.KindPullAck)
	p.onPoll(e.k, 1, protocol.Message{Kind: protocol.KindPullPoll, Item: 2, Origin: 0, Seq: 9})
	after := e.net.Traffic().Originated(protocol.KindPullReply) +
		e.net.Traffic().Originated(protocol.KindPullAck)
	if after != before {
		t.Error("non-owner answered a pull poll")
	}
}

func TestAdaptiveLateReplyIgnored(t *testing.T) {
	e := newEnv(t, 4)
	a, _ := NewAdaptive(DefaultAdaptiveConfig(), e.ch)
	a.Start(e.k)
	e.seed(t, 0, 2)
	a.OnQuery(e.k, 0, 2, consistency.LevelDelta)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatal("setup failed")
	}
	a.onReply(e.k, 0, protocol.Message{
		Kind: protocol.KindPullReply, Item: 2, Origin: 2, Seq: 1,
		Copy: data.Copy{ID: 2, Version: 0, Value: data.ValueFor(2, 0)},
	})
	if e.ch.Answered() != 1 {
		t.Error("late reply double-answered")
	}
}

func TestAdaptivePollTimeoutFails(t *testing.T) {
	// Adaptive polls are unicast, so only a genuine partition (not hop
	// count) makes the owner unreachable: put it on an island.
	k := sim.NewKernel(sim.WithSeed(21))
	pts := []geo.Point{{X: 0}, {X: 200}, {X: 9000}}
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := data.NewRegistry(3)
	stores := make([]*cache.Store, 3)
	for i := range stores {
		stores[i], _ = cache.NewStore(10)
	}
	aud, _ := consistency.NewAuditor(reg, 4*time.Minute, 5*time.Second)
	ch, err := node.NewChassis(node.DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewAdaptive(DefaultAdaptiveConfig(), ch)
	a.Start(k)
	m, _ := reg.Master(2)
	if err := stores[0].Put(m.Current(), 0); err != nil {
		t.Fatal(err)
	}
	a.OnQuery(k, 0, 2, consistency.LevelDelta)
	k.RunUntil(30 * time.Second)
	if ch.Failed() != 1 {
		t.Fatalf("unreachable adaptive poll did not fail (answered=%d)", ch.Answered())
	}
}

func TestAdaptiveMissFetchesContent(t *testing.T) {
	e := newEnv(t, 4)
	a, _ := NewAdaptive(DefaultAdaptiveConfig(), e.ch)
	a.Start(e.k)
	a.OnQuery(e.k, 0, 2, consistency.LevelDelta) // no local copy
	e.k.RunUntil(10 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("adaptive miss unanswered; reasons=%v", e.ch.FailReasons())
	}
	if !e.stores[0].Contains(2) {
		t.Error("adaptive miss did not cache the reply")
	}
}

func TestAdaptiveWindowCapAtMax(t *testing.T) {
	e := newEnv(t, 4)
	cfg := DefaultAdaptiveConfig()
	a, _ := NewAdaptive(cfg, e.ch)
	a.Start(e.k)
	e.seed(t, 0, 2)
	// Repeated unchanged validations: the window must stop at MaxWindow.
	for i := 0; i < 12; i++ {
		a.OnQuery(e.k, 0, 2, consistency.LevelDelta)
		e.k.RunUntil(e.k.Now() + cfg.MaxWindow + time.Second)
	}
	if got := a.Window(0, 2); got != cfg.MaxWindow {
		t.Errorf("window = %v, want capped at %v", got, cfg.MaxWindow)
	}
}
