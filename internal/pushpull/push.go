// Package pushpull implements the two baseline strategies the paper
// compares RPCC against (§5): the simple push strategy — every source
// host periodically floods an invalidation report (IR) network-wide, and
// queries wait for the next IR to validate the local copy — and the
// simple pull strategy — every query floods a poll toward the source
// host. A third engine, push-with-adaptive-pull (after Lan et al.
// [Lan03], the paper's §6 future-work direction), adapts its per-item
// poll interval multiplicatively.
package pushpull

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// PushConfig parameterises the simple push baseline.
type PushConfig struct {
	// TTN is the IR broadcast interval (Table 1: 2 minutes).
	TTN time.Duration
	// BroadcastTTL is the IR flood scope (Table 1 TTL_BR: 8 hops).
	BroadcastTTL int
	// QueryPatience is how long a query waits for an IR before failing;
	// it must comfortably exceed one broadcast interval.
	QueryPatience time.Duration
	// ActiveSource, when non-nil, restricts IR broadcasting to hosts for
	// which it returns true (the Fig 9 single-source scenario).
	ActiveSource func(host int) bool
}

// DefaultPushConfig follows Table 1.
func DefaultPushConfig() PushConfig {
	return PushConfig{
		TTN:           2 * time.Minute,
		BroadcastTTL:  8,
		QueryPatience: 5 * time.Minute,
	}
}

// Validate reports configuration errors.
func (c PushConfig) Validate() error {
	if c.TTN <= 0 {
		return fmt.Errorf("pushpull: non-positive TTN %v", c.TTN)
	}
	if c.BroadcastTTL <= 0 {
		return fmt.Errorf("pushpull: non-positive broadcast TTL %d", c.BroadcastTTL)
	}
	if c.QueryPatience < c.TTN {
		return fmt.Errorf("pushpull: query patience %v below one IR interval %v", c.QueryPatience, c.TTN)
	}
	return nil
}

// waiting is one query parked until the item's next IR arrives.
type waiting struct {
	q *node.Query
}

// Push is the simple push baseline engine.
type Push struct {
	cfg     PushConfig
	ch      *node.Chassis
	waiting []map[data.ItemID][]*waiting // per node
	started bool
	irs     *telemetry.Counter
	parks   *telemetry.Counter
}

// NewPush builds the baseline on the shared chassis.
func NewPush(cfg PushConfig, ch *node.Chassis) (*Push, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ch == nil {
		return nil, fmt.Errorf("pushpull: nil chassis")
	}
	p := &Push{cfg: cfg, ch: ch, waiting: make([]map[data.ItemID][]*waiting, ch.Net.Len())}
	for i := range p.waiting {
		p.waiting[i] = make(map[data.ItemID][]*waiting)
	}
	return p, nil
}

// Name identifies the strategy.
func (p *Push) Name() string { return "push" }

// Chassis exposes shared metrics.
func (p *Push) Chassis() *node.Chassis { return p.ch }

// Start installs receivers and schedules the staggered IR broadcasts.
func (p *Push) Start(k *sim.Kernel) error {
	if p.started {
		return fmt.Errorf("pushpull: push already started")
	}
	p.started = true
	p.irs = strategyEvent(p.ch.Hub, "push", "ir-flood")
	p.parks = strategyEvent(p.ch.Hub, "push", "query-parked")
	stagger := k.Stream("push.stagger")
	for nd := 0; nd < p.ch.Net.Len(); nd++ {
		nd := nd
		if err := p.ch.Net.SetReceiver(nd, func(kk *sim.Kernel, n int, msg protocol.Message, meta netsim.Meta) {
			p.dispatch(kk, n, msg)
		}); err != nil {
			return err
		}
		k.After(time.Duration(stagger.Int63n(int64(p.cfg.TTN))), "push.ir", func(kk *sim.Kernel) {
			p.irTick(kk, nd)
		})
	}
	return nil
}

// OnUpdate commits a new version at host's master; cache nodes learn of it
// from the next IR.
func (p *Push) OnUpdate(k *sim.Kernel, host int) {
	m, err := p.ch.Reg.Master(p.ch.Reg.OwnedBy(host))
	if err != nil {
		return
	}
	if _, err := m.Update(k.Now()); err != nil {
		panic(fmt.Sprintf("pushpull: master update failed: %v", err))
	}
}

// OnQuery serves one query. The consistency level is recorded for the
// audit but does not change the baseline's behaviour: simple push always
// validates against the next IR ([Bar94]-family semantics, which is what
// makes its latency exceed half the broadcast interval).
func (p *Push) OnQuery(k *sim.Kernel, host int, item data.ItemID, level consistency.Level) {
	q := p.ch.Begin(k, host, item, level)
	if p.ch.Reg.Owner(item) == host {
		m, err := p.ch.Reg.Master(item)
		if err != nil {
			p.ch.Fail(q, "unknown-item")
			return
		}
		q.Route = "owner"
		q.Source = host
		p.ch.Answer(k, q, m.Current())
		return
	}
	if !p.ch.Stores[host].Contains(item) {
		// Cache miss: locate a copy first; it still answers only after
		// the next IR validates it, like any other copy.
		p.ch.FetchRing(k, host, item, q.TC, func(kk *sim.Kernel, c data.Copy, _ int, ok bool) {
			if !ok {
				p.ch.Fail(q, "fetch-timeout")
				return
			}
			if err := p.ch.Stores[host].Put(c, kk.Now()); err == nil {
				p.parkQuery(kk, host, item, q)
			} else if cp, have := p.ch.Stores[host].Peek(item); have {
				// A newer copy raced in; park against that one.
				_ = cp
				p.parkQuery(kk, host, item, q)
			} else {
				p.ch.Fail(q, "store-reject")
			}
		})
		return
	}
	// Touch the store so push's accesses are accounted like RPCC's.
	p.ch.Stores[host].Get(item)
	p.parkQuery(k, host, item, q)
}

// parkQuery holds q until item's next IR reaches host.
func (p *Push) parkQuery(k *sim.Kernel, host int, item data.ItemID, q *node.Query) {
	q.Route = "ir-wait"
	p.parks.Inc()
	w := &waiting{q: q}
	p.waiting[host][item] = append(p.waiting[host][item], w)
	k.After(p.cfg.QueryPatience, "push.patience", func(*sim.Kernel) {
		p.ch.Fail(q, "no-ir") // no-op if already answered
	})
}

// irTick is the source host's periodic duty: flood the invalidation
// report network-wide.
func (p *Push) irTick(k *sim.Kernel, nd int) {
	defer k.After(p.cfg.TTN, "push.ir", func(kk *sim.Kernel) { p.irTick(kk, nd) })
	if p.cfg.ActiveSource != nil && !p.cfg.ActiveSource(nd) {
		return
	}
	item := p.ch.Reg.OwnedBy(nd)
	m, err := p.ch.Reg.Master(item)
	if err != nil {
		return
	}
	ir := protocol.Message{
		Kind:    protocol.KindIR,
		Item:    item,
		Origin:  nd,
		Version: m.Current().Version,
	}
	p.irs.Inc()
	_ = p.ch.Net.Flood(nd, p.cfg.BroadcastTTL, ir)
}

func (p *Push) dispatch(k *sim.Kernel, nd int, msg protocol.Message) {
	switch msg.Kind {
	case protocol.KindIR:
		p.onIR(k, nd, msg)
	case protocol.KindDataRequest:
		p.ch.HandleDataRequest(k, nd, msg)
	case protocol.KindDataReply:
		p.ch.HandleDataReply(k, nd, msg)
	}
}

// onIR validates or refreshes the local copy and releases parked queries.
func (p *Push) onIR(k *sim.Kernel, nd int, msg protocol.Message) {
	cp, have := p.ch.Stores[nd].Peek(msg.Item)
	if have && cp.Version < msg.Version {
		// Stale: refetch from the source, then answer the parked queries
		// with the fresh copy.
		parked := p.takeParked(nd, msg.Item)
		p.ch.FetchDirect(k, nd, msg.Item, msg.Trace, func(kk *sim.Kernel, c data.Copy, from int, ok bool) {
			if !ok {
				for _, w := range parked {
					p.ch.Fail(w.q, "refetch-timeout")
				}
				return
			}
			_ = p.ch.Stores[nd].Put(c, kk.Now())
			for _, w := range parked {
				w.q.Source = from
				p.ch.Answer(kk, w.q, c)
			}
		})
		return
	}
	if !have {
		// Copy evicted while queries were parked: refetch for them.
		parked := p.takeParked(nd, msg.Item)
		if len(parked) == 0 {
			return
		}
		p.ch.FetchDirect(k, nd, msg.Item, msg.Trace, func(kk *sim.Kernel, c data.Copy, from int, ok bool) {
			for _, w := range parked {
				if ok {
					w.q.Source = from
					p.ch.Answer(kk, w.q, c)
				} else {
					p.ch.Fail(w.q, "refetch-timeout")
				}
			}
		})
		return
	}
	// Copy is current as of this IR: the IR's origin is the authority
	// vouching for the local copy.
	for _, w := range p.takeParked(nd, msg.Item) {
		w.q.Source = msg.Origin
		p.ch.Answer(k, w.q, cp)
	}
}

func (p *Push) takeParked(nd int, item data.ItemID) []*waiting {
	parked := p.waiting[nd][item]
	delete(p.waiting[nd], item)
	return parked
}
