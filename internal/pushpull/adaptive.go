package pushpull

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// AdaptiveConfig parameterises the push-with-adaptive-pull engine, after
// the adaptive scheme of Lan et al. [Lan03] that the paper's related work
// cites and its §6 future work ("change the push/pull frequency
// adaptively") points toward. Each (node, item) pair keeps a poll-validity
// window that doubles when a validation finds the copy unchanged and
// halves when it finds an update — TCP-style multiplicative adaptation.
type AdaptiveConfig struct {
	InitialWindow time.Duration
	MinWindow     time.Duration
	MaxWindow     time.Duration
	// PollTimeout bounds one unicast validation round.
	PollTimeout time.Duration
}

// DefaultAdaptiveConfig returns the ablation's defaults.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		InitialWindow: 30 * time.Second,
		MinWindow:     5 * time.Second,
		MaxWindow:     10 * time.Minute,
		PollTimeout:   2 * time.Second,
	}
}

// Validate reports configuration errors.
func (c AdaptiveConfig) Validate() error {
	if c.MinWindow <= 0 || c.MaxWindow < c.MinWindow {
		return fmt.Errorf("pushpull: bad adaptive window bounds [%v, %v]", c.MinWindow, c.MaxWindow)
	}
	if c.InitialWindow < c.MinWindow || c.InitialWindow > c.MaxWindow {
		return fmt.Errorf("pushpull: initial window %v outside [%v, %v]", c.InitialWindow, c.MinWindow, c.MaxWindow)
	}
	if c.PollTimeout <= 0 {
		return fmt.Errorf("pushpull: non-positive poll timeout %v", c.PollTimeout)
	}
	return nil
}

// adaptiveItem is one (node, item) validity window.
type adaptiveItem struct {
	window        time.Duration
	lastValidated time.Duration
	validatedOnce bool
}

// Adaptive is the push-with-adaptive-pull engine. Unlike simple pull it
// unicasts its polls straight to the source host (the requester knows the
// owner, as in the Gnutella-style systems of [Lan03]) and answers from
// the local copy while the adaptive window is open.
type Adaptive struct {
	cfg     AdaptiveConfig
	ch      *node.Chassis
	items   []map[data.ItemID]*adaptiveItem
	rounds  map[uint64]*node.Query
	started bool
	hits    *telemetry.Counter
	polls   *telemetry.Counter
}

// NewAdaptive builds the engine on the shared chassis.
func NewAdaptive(cfg AdaptiveConfig, ch *node.Chassis) (*Adaptive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ch == nil {
		return nil, fmt.Errorf("pushpull: nil chassis")
	}
	a := &Adaptive{
		cfg:    cfg,
		ch:     ch,
		items:  make([]map[data.ItemID]*adaptiveItem, ch.Net.Len()),
		rounds: make(map[uint64]*node.Query),
	}
	for i := range a.items {
		a.items[i] = make(map[data.ItemID]*adaptiveItem)
	}
	return a, nil
}

// Name identifies the strategy.
func (a *Adaptive) Name() string { return "adaptive-pull" }

// Chassis exposes shared metrics.
func (a *Adaptive) Chassis() *node.Chassis { return a.ch }

// Start installs receivers.
func (a *Adaptive) Start(k *sim.Kernel) error {
	if a.started {
		return fmt.Errorf("pushpull: adaptive already started")
	}
	a.started = true
	a.hits = strategyEvent(a.ch.Hub, "adaptive-pull", "window-hit")
	a.polls = strategyEvent(a.ch.Hub, "adaptive-pull", "poll-unicast")
	for nd := 0; nd < a.ch.Net.Len(); nd++ {
		if err := a.ch.Net.SetReceiver(nd, func(kk *sim.Kernel, n int, msg protocol.Message, meta netsim.Meta) {
			a.dispatch(kk, n, msg)
		}); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate commits a new version at host's master.
func (a *Adaptive) OnUpdate(k *sim.Kernel, host int) {
	m, err := a.ch.Reg.Master(a.ch.Reg.OwnedBy(host))
	if err != nil {
		return
	}
	if _, err := m.Update(k.Now()); err != nil {
		panic(fmt.Sprintf("pushpull: master update failed: %v", err))
	}
}

// OnQuery answers from the local copy while its adaptive window is open,
// polling the source otherwise.
func (a *Adaptive) OnQuery(k *sim.Kernel, host int, item data.ItemID, level consistency.Level) {
	q := a.ch.Begin(k, host, item, level)
	if a.ch.Reg.Owner(item) == host {
		m, err := a.ch.Reg.Master(item)
		if err != nil {
			a.ch.Fail(q, "unknown-item")
			return
		}
		q.Route = "owner"
		q.Source = host
		a.ch.Answer(k, q, m.Current())
		return
	}
	cp, ok := a.ch.Stores[host].Get(item)
	if ok {
		it := a.item(host, item)
		if it.validatedOnce && k.Now()-it.lastValidated < it.window {
			q.Route = "window"
			q.Source = host
			a.hits.Inc()
			a.ch.Answer(k, q, cp)
			return
		}
		a.poll(k, q, cp.Version, false)
		return
	}
	a.poll(k, q, 0, true)
}

func (a *Adaptive) item(host int, item data.ItemID) *adaptiveItem {
	it, ok := a.items[host][item]
	if !ok {
		it = &adaptiveItem{window: a.cfg.InitialWindow}
		a.items[host][item] = it
	}
	return it
}

func (a *Adaptive) poll(k *sim.Kernel, q *node.Query, have data.Version, miss bool) {
	q.Route = "poll-unicast"
	a.polls.Inc()
	a.rounds[q.Seq] = q
	msg := protocol.Message{
		Kind:    protocol.KindPullPoll,
		Item:    q.Item,
		Origin:  q.Host,
		Version: have,
		Seq:     q.Seq,
		Miss:    miss,
	}
	if err := a.ch.Net.Unicast(q.Host, a.ch.Reg.Owner(q.Item), msg); err != nil {
		delete(a.rounds, q.Seq)
		a.ch.Fail(q, "poll-send")
		return
	}
	k.After(a.cfg.PollTimeout, "adaptive.timeout", func(*sim.Kernel) {
		if _, open := a.rounds[q.Seq]; open {
			delete(a.rounds, q.Seq)
			a.ch.Fail(q, "poll-timeout")
		}
	})
}

func (a *Adaptive) dispatch(k *sim.Kernel, nd int, msg protocol.Message) {
	switch msg.Kind {
	case protocol.KindPullPoll:
		a.onPoll(k, nd, msg)
	case protocol.KindPullAck:
		a.onAck(k, nd, msg)
	case protocol.KindPullReply:
		a.onReply(k, nd, msg)
	case protocol.KindDataRequest:
		a.ch.HandleDataRequest(k, nd, msg)
	case protocol.KindDataReply:
		a.ch.HandleDataReply(k, nd, msg)
	}
}

// onPoll answers at the source host, exactly like simple pull.
func (a *Adaptive) onPoll(k *sim.Kernel, nd int, msg protocol.Message) {
	if a.ch.Reg.Owner(msg.Item) != nd {
		return
	}
	m, err := a.ch.Reg.Master(msg.Item)
	if err != nil {
		return
	}
	cur := m.Current()
	if !msg.Miss && msg.Version >= cur.Version {
		_ = a.ch.Net.Unicast(nd, msg.Origin, protocol.Message{
			Kind: protocol.KindPullAck, Item: msg.Item, Origin: nd,
			Version: cur.Version, Seq: msg.Seq,
		})
		return
	}
	_ = a.ch.Net.Unicast(nd, msg.Origin, protocol.Message{
		Kind: protocol.KindPullReply, Item: msg.Item, Origin: nd,
		Version: cur.Version, Copy: cur, Seq: msg.Seq,
	})
}

// onAck: copy unchanged — widen the window (back off polling).
func (a *Adaptive) onAck(k *sim.Kernel, nd int, msg protocol.Message) {
	q, open := a.rounds[msg.Seq]
	if !open || q.Host != nd {
		return
	}
	delete(a.rounds, msg.Seq)
	it := a.item(nd, msg.Item)
	it.window *= 2
	if it.window > a.cfg.MaxWindow {
		it.window = a.cfg.MaxWindow
	}
	it.lastValidated = k.Now()
	it.validatedOnce = true
	cp, have := a.ch.Stores[nd].Peek(msg.Item)
	if !have {
		a.ch.Fail(q, "copy-lost")
		return
	}
	q.Source = msg.Origin
	a.ch.Answer(k, q, cp)
}

// onReply: copy changed — tighten the window (poll more often).
func (a *Adaptive) onReply(k *sim.Kernel, nd int, msg protocol.Message) {
	q, open := a.rounds[msg.Seq]
	if !open || q.Host != nd {
		return
	}
	delete(a.rounds, msg.Seq)
	it := a.item(nd, msg.Item)
	it.window /= 2
	if it.window < a.cfg.MinWindow {
		it.window = a.cfg.MinWindow
	}
	it.lastValidated = k.Now()
	it.validatedOnce = true
	_ = a.ch.Stores[nd].Put(msg.Copy, k.Now())
	q.Source = msg.Origin
	a.ch.Answer(k, q, msg.Copy)
}

// Window reports host's current adaptive window for item (diagnostics).
func (a *Adaptive) Window(host int, item data.ItemID) time.Duration {
	if it, ok := a.items[host][item]; ok {
		return it.window
	}
	return a.cfg.InitialWindow
}
