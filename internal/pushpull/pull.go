package pushpull

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// strategyEvent returns a cached counter handle in the shared
// rpcc_strategy_events_total family. A nil hub yields a nil handle whose
// Inc is a no-op, so strategies instrument unconditionally.
func strategyEvent(h *telemetry.Hub, strategy, event string) *telemetry.Counter {
	return h.Counter("rpcc_strategy_events_total",
		"Strategy-specific protocol events (per strategy and event).",
		telemetry.Label{Key: "strategy", Value: strategy},
		telemetry.Label{Key: "event", Value: event})
}

// PullConfig parameterises the simple pull baseline.
type PullConfig struct {
	// BroadcastTTL is the poll flood scope (Table 1 TTL_BR: 8 hops).
	BroadcastTTL int
	// PollTimeout bounds one poll round before the query fails.
	PollTimeout time.Duration
}

// DefaultPullConfig follows Table 1.
func DefaultPullConfig() PullConfig {
	return PullConfig{
		BroadcastTTL: 8,
		PollTimeout:  2 * time.Second,
	}
}

// Validate reports configuration errors.
func (c PullConfig) Validate() error {
	if c.BroadcastTTL <= 0 {
		return fmt.Errorf("pushpull: non-positive broadcast TTL %d", c.BroadcastTTL)
	}
	if c.PollTimeout <= 0 {
		return fmt.Errorf("pushpull: non-positive poll timeout %v", c.PollTimeout)
	}
	return nil
}

// Pull is the simple pull baseline: every query floods a poll that only
// the item's source host answers. Heavy on traffic, light on latency —
// exactly the trade-off Fig 7/8 show.
type Pull struct {
	cfg     PullConfig
	ch      *node.Chassis
	rounds  map[uint64]*node.Query
	started bool
	polls   *telemetry.Counter
}

// NewPull builds the baseline on the shared chassis.
func NewPull(cfg PullConfig, ch *node.Chassis) (*Pull, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ch == nil {
		return nil, fmt.Errorf("pushpull: nil chassis")
	}
	return &Pull{cfg: cfg, ch: ch, rounds: make(map[uint64]*node.Query)}, nil
}

// Name identifies the strategy.
func (p *Pull) Name() string { return "pull" }

// Chassis exposes shared metrics.
func (p *Pull) Chassis() *node.Chassis { return p.ch }

// Start installs receivers. Pull has no periodic duties.
func (p *Pull) Start(k *sim.Kernel) error {
	if p.started {
		return fmt.Errorf("pushpull: pull already started")
	}
	p.started = true
	p.polls = strategyEvent(p.ch.Hub, "pull", "poll-flood")
	for nd := 0; nd < p.ch.Net.Len(); nd++ {
		if err := p.ch.Net.SetReceiver(nd, func(kk *sim.Kernel, n int, msg protocol.Message, meta netsim.Meta) {
			p.dispatch(kk, n, msg)
		}); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate commits a new version at host's master. Pull sources never
// push anything; cache nodes discover updates by polling.
func (p *Pull) OnUpdate(k *sim.Kernel, host int) {
	m, err := p.ch.Reg.Master(p.ch.Reg.OwnedBy(host))
	if err != nil {
		return
	}
	if _, err := m.Update(k.Now()); err != nil {
		panic(fmt.Sprintf("pushpull: master update failed: %v", err))
	}
}

// OnQuery serves one query by polling the source host, whatever the
// requested level — simple pull validates every request.
func (p *Pull) OnQuery(k *sim.Kernel, host int, item data.ItemID, level consistency.Level) {
	q := p.ch.Begin(k, host, item, level)
	if p.ch.Reg.Owner(item) == host {
		m, err := p.ch.Reg.Master(item)
		if err != nil {
			p.ch.Fail(q, "unknown-item")
			return
		}
		q.Route = "owner"
		q.Source = host
		p.ch.Answer(k, q, m.Current())
		return
	}
	var have data.Version
	miss := true
	if cp, ok := p.ch.Stores[host].Get(item); ok {
		have = cp.Version
		miss = false
	}
	q.Route = "poll-flood"
	p.polls.Inc()
	p.rounds[q.Seq] = q
	poll := protocol.Message{
		Kind:    protocol.KindPullPoll,
		Item:    item,
		Origin:  host,
		Version: have,
		Seq:     q.Seq,
		Miss:    miss,
	}
	if err := p.ch.Net.Flood(host, p.cfg.BroadcastTTL, poll); err != nil {
		delete(p.rounds, q.Seq)
		p.ch.Fail(q, "poll-send")
		return
	}
	k.After(p.cfg.PollTimeout, "pull.timeout", func(*sim.Kernel) {
		if _, open := p.rounds[q.Seq]; open {
			delete(p.rounds, q.Seq)
			p.ch.Fail(q, "poll-timeout")
		}
	})
}

func (p *Pull) dispatch(k *sim.Kernel, nd int, msg protocol.Message) {
	switch msg.Kind {
	case protocol.KindPullPoll:
		p.onPoll(k, nd, msg)
	case protocol.KindPullAck:
		p.onAck(k, nd, msg)
	case protocol.KindPullReply:
		p.onReply(k, nd, msg)
	case protocol.KindDataRequest:
		p.ch.HandleDataRequest(k, nd, msg)
	case protocol.KindDataReply:
		p.ch.HandleDataReply(k, nd, msg)
	}
}

// onPoll answers at the source host only.
func (p *Pull) onPoll(k *sim.Kernel, nd int, msg protocol.Message) {
	if p.ch.Reg.Owner(msg.Item) != nd {
		return
	}
	m, err := p.ch.Reg.Master(msg.Item)
	if err != nil {
		return
	}
	cur := m.Current()
	if !msg.Miss && msg.Version >= cur.Version {
		ack := protocol.Message{
			Kind:    protocol.KindPullAck,
			Item:    msg.Item,
			Origin:  nd,
			Version: cur.Version,
			Seq:     msg.Seq,
		}
		_ = p.ch.Net.Unicast(nd, msg.Origin, ack)
		return
	}
	reply := protocol.Message{
		Kind:    protocol.KindPullReply,
		Item:    msg.Item,
		Origin:  nd,
		Version: cur.Version,
		Copy:    cur,
		Seq:     msg.Seq,
	}
	_ = p.ch.Net.Unicast(nd, msg.Origin, reply)
}

func (p *Pull) onAck(k *sim.Kernel, nd int, msg protocol.Message) {
	q, open := p.rounds[msg.Seq]
	if !open || q.Host != nd {
		return
	}
	delete(p.rounds, msg.Seq)
	cp, have := p.ch.Stores[nd].Peek(msg.Item)
	if !have {
		p.ch.Fail(q, "copy-lost")
		return
	}
	q.Source = msg.Origin
	p.ch.Answer(k, q, cp)
}

func (p *Pull) onReply(k *sim.Kernel, nd int, msg protocol.Message) {
	q, open := p.rounds[msg.Seq]
	if !open || q.Host != nd {
		return
	}
	delete(p.rounds, msg.Seq)
	_ = p.ch.Stores[nd].Put(msg.Copy, k.Now())
	q.Source = msg.Origin
	p.ch.Answer(k, q, msg.Copy)
}
