package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// ServePprof starts an HTTP server exposing net/http/pprof on addr
// (e.g. "localhost:6060") and returns the bound address. This is the one
// opt-in wall-clock facility in the package: profiling a live simulation
// is inherently about real time and never feeds back into exported
// simulation values. The server runs until the process exits.
func ServePprof(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: pprof listen %s: %w", addr, err)
	}
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// StartRuntimeStats writes one line of Go runtime statistics (heap in
// use, total allocations, GC cycles, goroutines) to w every period, and
// returns a stop function. Companion to ServePprof for long sweeps:
// coarse memory trends without attaching a profiler. Wall-clock driven
// and write-only — it never touches simulation state.
func StartRuntimeStats(w io.Writer, period time.Duration) (stop func()) {
	if period <= 0 {
		period = 10 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(period)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				fmt.Fprintf(w, "runtime: heap=%.1fMiB allocs=%d gc=%d goroutines=%d\n",
					float64(ms.HeapInuse)/(1<<20), ms.Mallocs, ms.NumGC, runtime.NumGoroutine())
			}
		}
	}()
	return func() { close(done) }
}
