package telemetry

import "sort"

// defaultSpanCap bounds the span log. Spans past the cap are counted in
// rpcc_spans_dropped_total rather than silently lost; LevelSpans is meant
// for bounded diagnostic runs, not 5-hour sweeps.
const defaultSpanCap = 1 << 18

// QuerySpan is one query's lifecycle: issue → answer or failure. All
// times are simulated-clock nanoseconds so exports are deterministic.
type QuerySpan struct {
	Seq     uint64 `json:"seq"`
	Host    int    `json:"host"`
	Item    int    `json:"item"`
	Level   string `json:"level"`
	Route   string `json:"route,omitempty"` // how the answer was obtained (local, relay, poll, fetch, ...)
	Outcome string `json:"outcome"`         // "answered" | "failed"
	Reason  string `json:"reason,omitempty"`
	// Served is the delivered copy's version (answered spans).
	Served uint64 `json:"served,omitempty"`
	// StaleNs is the served copy's staleness at delivery.
	StaleNs    int64  `json:"stale_ns"`
	Violation  string `json:"violation,omitempty"`
	IssuedNs   int64  `json:"issued_ns"`
	ResolvedNs int64  `json:"resolved_ns"`
}

// RoleSpan is one Fig 5 role transition with the election coefficient
// inputs at the moment it happened.
type RoleSpan struct {
	AtNs   int64   `json:"at_ns"`
	Node   int     `json:"node"`
	Item   int     `json:"item"`
	From   string  `json:"from"`
	To     string  `json:"to"`
	Reason string  `json:"reason"`
	CAR    float64 `json:"car"`
	CS     float64 `json:"cs"`
	CE     float64 `json:"ce"`
}

// WaveSpan aggregates one flood's fan-out, keyed by the network layer's
// Meta.FloodID: every delivery of one broadcast shares the id, so the
// span captures how far and how fast the wave spread.
type WaveSpan struct {
	FloodID    uint64 `json:"flood_id"`
	Kind       string `json:"kind"`
	Item       int    `json:"item"`
	Origin     int    `json:"origin"`
	Version    uint64 `json:"version"`
	FirstNs    int64  `json:"first_ns"`
	LastNs     int64  `json:"last_ns"`
	Deliveries int    `json:"deliveries"`
	MaxHops    int    `json:"max_hops"`
}

// FaultSpan is one injected fault-plane event: a partition splitting or
// healing, a crash/restart, or a relay assassination. Nodes lists the
// affected node ids (sorted); Item is -1 unless the fault targets one
// item's relay tier.
type FaultSpan struct {
	AtNs  int64  `json:"at_ns"`
	Kind  string `json:"kind"`
	Nodes []int  `json:"nodes,omitempty"`
	Item  int    `json:"item"`
	Note  string `json:"note,omitempty"`
}

// SpanLog retains query, role and fault spans up to a shared cap,
// counting overflow instead of growing without bound.
type SpanLog struct {
	cap     int
	queries []QuerySpan
	roles   []RoleSpan
	faults  []FaultSpan
	dropped uint64
}

// NewSpanLog builds a span log holding at most capacity spans in total.
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = defaultSpanCap
	}
	return &SpanLog{cap: capacity}
}

func (l *SpanLog) size() int { return len(l.queries) + len(l.roles) + len(l.faults) }

// AddQuery appends a query span (or counts a drop at capacity).
func (l *SpanLog) AddQuery(s QuerySpan) {
	if l.size() >= l.cap {
		l.dropped++
		return
	}
	l.queries = append(l.queries, s)
}

// AddRole appends a role span (or counts a drop at capacity).
func (l *SpanLog) AddRole(s RoleSpan) {
	if l.size() >= l.cap {
		l.dropped++
		return
	}
	l.roles = append(l.roles, s)
}

// AddFault appends a fault span (or counts a drop at capacity).
func (l *SpanLog) AddFault(s FaultSpan) {
	if l.size() >= l.cap {
		l.dropped++
		return
	}
	l.faults = append(l.faults, s)
}

// Queries returns the retained query spans in record (simulation event)
// order.
func (l *SpanLog) Queries() []QuerySpan { return l.queries }

// Roles returns the retained role spans in record order.
func (l *SpanLog) Roles() []RoleSpan { return l.roles }

// Faults returns the retained fault spans in record order — injection
// order, so timestamps are monotone.
func (l *SpanLog) Faults() []FaultSpan { return l.faults }

// Dropped returns how many spans the cap discarded.
func (l *SpanLog) Dropped() uint64 { return l.dropped }

// sortedWaves returns the wave spans ordered by flood id — origination
// order, since the network numbers floods sequentially.
func (h *Hub) sortedWaves() []*WaveSpan {
	if h == nil || len(h.waves) == 0 {
		return nil
	}
	out := make([]*WaveSpan, 0, len(h.waves))
	for _, w := range h.waves {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FloodID < out[j].FloodID })
	return out
}
