package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Label is one metric dimension. Labels are sorted by key at registration
// so a metric's identity — and every export — is independent of the order
// the caller wrote them in.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// metricType enumerates the three instrument families.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing count. The zero/nil counter is
// inert: every method is safe on a nil receiver, so call sites do not
// branch on whether telemetry is enabled.
type Counter struct {
	labels []Label
	n      uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n += n
	}
}

// Value returns the current count (zero on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a value that can go up and down (final role counts, pending
// work). Like Counter it is nil-safe.
type Gauge struct {
	labels []Label
	v      float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add shifts the gauge value.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution: cumulative-on-export counts
// over static upper bounds plus an exact sum and count. Buckets are fixed
// at registration, so Observe is allocation-free — the hot-path
// discipline the delivery plane requires. Nil-safe like Counter.
type Histogram struct {
	labels []Label
	uppers []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(uppers)+1, non-cumulative per bucket
	count  uint64
	sum    float64
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search over the static bounds: first bucket with upper >= v.
	lo, hi := 0, len(h.uppers)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.uppers[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	h.count++
	h.sum += v
}

// ObserveDuration adds one sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples (zero on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sample sum (zero on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Standard bucket schemes. Time buckets follow stats.Latency's
// logarithmic convention (powers of two from 1 ms), because both query
// latency and staleness span milliseconds to minutes.
var (
	timeBuckets  = powerOfTwoSeconds(18) // 1ms .. ~131s, then +Inf
	hopBuckets   = linear(1, 1, 16)      // 1 .. 16 hops, then +Inf
	ratioBuckets = linear(0.05, 0.05, 20)
)

// powerOfTwoSeconds returns n bounds: 0.001·2^i seconds for i in [0, n).
func powerOfTwoSeconds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.001 * float64(uint64(1)<<uint(i))
	}
	return out
}

// linear returns n bounds start, start+step, …
func linear(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// family is all metrics sharing one name (and therefore one type/help).
type family struct {
	name    string
	help    string
	typ     metricType
	uppers  []float64 // histogram families only
	order   []string  // label signatures in registration order
	byLabel map[string]any
}

// Registry holds a run's instruments. Registration (Counter / Gauge /
// Histogram) deduplicates by name + label set and may allocate; the
// returned handles are what hot paths use. A Registry is confined to one
// simulation run (like everything below experiment.Run) and is not safe
// for concurrent use.
type Registry struct {
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature renders a sorted label set into a stable identity string.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a sorted copy of the label set.
func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (r *Registry) familyFor(name, help string, typ metricType, uppers []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, uppers: uppers, byLabel: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as both %v and %v", name, f.typ, typ))
	}
	return f
}

// Counter returns (registering on first use) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, typeCounter, nil)
	ls := sortLabels(labels)
	sig := signature(ls)
	if m, ok := f.byLabel[sig]; ok {
		return m.(*Counter)
	}
	c := &Counter{labels: ls}
	f.byLabel[sig] = c
	f.order = append(f.order, sig)
	return c
}

// Gauge returns (registering on first use) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, typeGauge, nil)
	ls := sortLabels(labels)
	sig := signature(ls)
	if m, ok := f.byLabel[sig]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{labels: ls}
	f.byLabel[sig] = g
	f.order = append(f.order, sig)
	return g
}

// Histogram returns (registering on first use) the histogram name{labels}
// with the given ascending upper bounds (+Inf is implicit). Every
// histogram of one family must share the family's bounds.
func (r *Registry) Histogram(name, help string, uppers []float64, labels ...Label) *Histogram {
	f := r.familyFor(name, help, typeHistogram, uppers)
	ls := sortLabels(labels)
	sig := signature(ls)
	if m, ok := f.byLabel[sig]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{labels: ls, uppers: f.uppers, counts: make([]uint64, len(f.uppers)+1)}
	f.byLabel[sig] = h
	f.order = append(f.order, sig)
	return h
}
