package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonlLine is the envelope of one JSONL export line. Exactly one of the
// payload fields is set, per Type.
type jsonlLine struct {
	Type     string     `json:"type"` // "query" | "role" | "wave" | "fault" | "snapshot"
	Query    *QuerySpan `json:"query,omitempty"`
	Role     *RoleSpan  `json:"role,omitempty"`
	Wave     *WaveSpan  `json:"wave,omitempty"`
	Fault    *FaultSpan `json:"fault,omitempty"`
	Snapshot *Snapshot  `json:"snapshot,omitempty"`
}

// WriteJSONL exports the hub's span plane as JSON Lines: wave spans
// sorted by flood id, then fault events in injection order (monotone
// timestamps), then role transitions and query lifecycles in simulation
// event order, then one final snapshot line. The order, like every
// value, is a pure function of the run's seed.
func (h *Hub) WriteJSONL(w io.Writer) error {
	if h == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, wave := range h.sortedWaves() {
		if err := enc.Encode(jsonlLine{Type: "wave", Wave: wave}); err != nil {
			return err
		}
	}
	if h.spans != nil {
		for i := range h.spans.faults {
			if err := enc.Encode(jsonlLine{Type: "fault", Fault: &h.spans.faults[i]}); err != nil {
				return err
			}
		}
		for i := range h.spans.roles {
			if err := enc.Encode(jsonlLine{Type: "role", Role: &h.spans.roles[i]}); err != nil {
				return err
			}
		}
		for i := range h.spans.queries {
			if err := enc.Encode(jsonlLine{Type: "query", Query: &h.spans.queries[i]}); err != nil {
				return err
			}
		}
	}
	if err := enc.Encode(jsonlLine{Type: "snapshot", Snapshot: h.Snapshot()}); err != nil {
		return err
	}
	return bw.Flush()
}
