// Package telemetry is the observability plane of the simulator: a
// zero-dependency, simulated-time-aware metrics registry (counters,
// gauges, fixed-bucket histograms) plus an opt-in span model for query
// lifecycles, relay-membership transitions, and invalidation waves.
//
// Two levels exist. LevelMetrics (the default in experiment runs) keeps
// only aggregate instruments — the hot-path recording methods are
// allocation-free, every handle is pre-registered in NewHub, and nothing
// observable about a simulation changes (no RNG draws, no events), so
// seeded runs stay byte-identical with telemetry on. LevelSpans
// additionally retains per-query, per-transition and per-flood-wave
// records for the JSONL export.
//
// Determinism invariants: exported values contain simulated time only
// (never wall-clock), every iteration over registered metrics is sorted,
// and spans are appended in simulation event order — so two runs with
// the same seed export identical bytes.
package telemetry

import (
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/stats"
	"github.com/manetlab/rpcc/internal/trace"
)

// Level selects how much the hub records.
type Level int

const (
	// LevelOff records nothing; every hub method is a no-op.
	LevelOff Level = iota
	// LevelMetrics (the default) keeps aggregate counters/histograms only.
	LevelMetrics
	// LevelSpans additionally retains per-query/-transition/-wave records.
	LevelSpans
)

// String names the level for flags and reports.
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelMetrics:
		return "metrics"
	case LevelSpans:
		return "spans"
	default:
		return "Level(?)"
	}
}

// Relay-membership events, as seen by the source host's relay table.
const (
	MembershipApply      = "apply"       // APPLY registered a candidate
	MembershipApplyAck   = "apply-ack"   // APPLY_ACK granted promotion
	MembershipCancel     = "cancel"      // CANCEL deregistered a relay
	MembershipPrune      = "prune"       // MAC-layer discovery dropped an unreachable relay
	MembershipReRegister = "re-register" // GET_NEW re-registered a pruned relay
)

// Poll stages (mirroring core.Engine's escalation ladder).
const (
	PollDirect   = "direct"
	PollRing     = "ring"
	PollFallback = "fallback"
)

// Repair kinds (the §4.5 retry machinery being counted).
const (
	RepairGetNew = "get-new"
	RepairApply  = "apply"
)

// Fault-event kinds emitted by the fault plane.
const (
	FaultPartitionSplit = "partition-split"
	FaultPartitionHeal  = "partition-heal"
	FaultCrash          = "crash"
	FaultRestart        = "restart"
	FaultAssassination  = "assassination"
)

// nLevels sizes the per-consistency-level instrument arrays; levels are
// 1-based (consistency.LevelStrong..LevelWeak), slot 0 stays nil.
const nLevels = int(consistency.LevelWeak) + 1

// Hub is one simulation run's telemetry: the registry plus pre-built
// handles for every hot-path instrument. Like the rest of the per-run
// state it is confined to the single-threaded simulation loop. A nil
// *Hub is valid and inert — every method no-ops — so call sites do not
// branch on whether telemetry is wired.
type Hub struct {
	level Level
	reg   *Registry

	// Delivery plane (fed by the netsim Tracer hook).
	delivLatency [protocol.NumKinds]*Histogram
	delivHops    [protocol.NumKinds]*Histogram

	// Query lifecycle, per consistency level.
	issued       [nLevels]*Counter
	answered     [nLevels]*Counter
	failed       [nLevels]*Counter
	queryLatency [nLevels]*Histogram
	staleness    [nLevels]*Histogram

	// RPCC protocol decisions.
	pollStage  map[string]*Counter
	forgets    *Counter
	membership map[string]*Counter
	coeff      [3]*Histogram // CAR, CS, CE

	// §4.5 repair retries and fault-plane events.
	repairAttempts map[string]*Counter
	repairGiveUps  map[string]*Counter

	simSeconds *Gauge

	// Span plane (LevelSpans only).
	spans *SpanLog
	waves map[uint64]*WaveSpan

	// Sources folded into the snapshot at Finish.
	traffic  *stats.Traffic
	traceRec *trace.Recorder
}

// NewHub builds a hub at the given level (nil for LevelOff: callers can
// treat "off" as "no hub at all").
func NewHub(level Level) *Hub {
	if level == LevelOff {
		return nil
	}
	h := &Hub{
		level:          level,
		reg:            NewRegistry(),
		pollStage:      make(map[string]*Counter, 3),
		membership:     make(map[string]*Counter, 5),
		repairAttempts: make(map[string]*Counter, 2),
		repairGiveUps:  make(map[string]*Counter, 2),
	}
	for k := 1; k < protocol.NumKinds; k++ {
		kind := Label{"kind", protocol.Kind(k).String()}
		h.delivLatency[k] = h.reg.Histogram("rpcc_delivery_latency_seconds",
			"Origination-to-delivery latency per message kind.", timeBuckets, kind)
		h.delivHops[k] = h.reg.Histogram("rpcc_delivery_hops",
			"Link-level hops traversed per delivered message.", hopBuckets, kind)
	}
	for l := consistency.LevelStrong; l <= consistency.LevelWeak; l++ {
		lv := Label{"level", l.String()}
		h.issued[l] = h.reg.Counter("rpcc_queries_issued_total", "Queries issued.", lv)
		h.answered[l] = h.reg.Counter("rpcc_queries_resolved_total", "Queries resolved by outcome.",
			lv, Label{"outcome", "answered"})
		h.failed[l] = h.reg.Counter("rpcc_queries_resolved_total", "Queries resolved by outcome.",
			lv, Label{"outcome", "failed"})
		h.queryLatency[l] = h.reg.Histogram("rpcc_query_latency_seconds",
			"Issue-to-answer latency per consistency level.", timeBuckets, lv)
		h.staleness[l] = h.reg.Histogram("rpcc_staleness_seconds",
			"Staleness of the served copy at delivery, per consistency level.", timeBuckets, lv)
	}
	for _, s := range []string{PollDirect, PollRing, PollFallback} {
		h.pollStage[s] = h.reg.Counter("rpcc_polls_total", "Validation polls sent per stage.",
			Label{"stage", s})
	}
	h.forgets = h.reg.Counter("rpcc_relay_forgets_total",
		"Learned relays forgotten after going quiet.")
	for _, r := range []string{RepairGetNew, RepairApply} {
		h.repairAttempts[r] = h.reg.Counter("rpcc_repair_attempts_total",
			"GET_NEW/APPLY repair sends, including backoff retries.", Label{"kind", r})
		h.repairGiveUps[r] = h.reg.Counter("rpcc_repair_giveups_total",
			"Repairs abandoned after MaxRepairAttempts unanswered sends.", Label{"kind", r})
	}
	for _, ev := range []string{MembershipApply, MembershipApplyAck, MembershipCancel, MembershipPrune, MembershipReRegister} {
		h.membership[ev] = h.reg.Counter("rpcc_relay_membership_total",
			"Relay-table membership events at source hosts.", Label{"event", ev})
	}
	for i, c := range []string{"car", "cs", "ce"} {
		h.coeff[i] = h.reg.Histogram("rpcc_coeff_value",
			"Election coefficient values observed at coefficient ticks.", ratioBuckets,
			Label{"coeff", c})
	}
	h.simSeconds = h.reg.Gauge("rpcc_sim_seconds", "Simulated time covered by this snapshot.")
	if level >= LevelSpans {
		h.spans = NewSpanLog(defaultSpanCap)
		h.waves = make(map[uint64]*WaveSpan)
	}
	return h
}

// Level returns the hub's recording level (LevelOff on nil).
func (h *Hub) Level() Level {
	if h == nil {
		return LevelOff
	}
	return h.level
}

// Registry exposes the underlying registry so strategies can register
// their own instruments (cache the returned handles; registration is not
// hot-path-free). Nil on a nil hub — Counter/Gauge/Histogram handles from
// a nil registry cannot be obtained, so callers guard with Level().
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Counter returns a nil-safe counter handle: on a nil hub it returns nil,
// which every Counter method tolerates. The intended pattern is one call
// per instrument at strategy Start, not per event.
func (h *Hub) Counter(name, help string, labels ...Label) *Counter {
	if h == nil {
		return nil
	}
	return h.reg.Counter(name, help, labels...)
}

// Tracer adapts the hub to the network layer's delivery hook, recording
// per-kind delivery latency and hop histograms (and, at LevelSpans,
// folding flood deliveries into per-FloodID wave spans). Returns nil on a
// nil hub so netsim keeps its zero-cost no-tracer path.
func (h *Hub) Tracer() netsim.Tracer {
	if h == nil {
		return nil
	}
	return func(at time.Duration, node int, msg protocol.Message, meta netsim.Meta) {
		k := msg.Kind
		if !k.Valid() {
			return
		}
		h.delivLatency[k].ObserveDuration(meta.At - meta.SentAt)
		h.delivHops[k].Observe(float64(meta.Hops))
		if h.waves != nil && meta.Flood && meta.FloodID != 0 {
			w, ok := h.waves[meta.FloodID]
			if !ok {
				w = &WaveSpan{
					FloodID: meta.FloodID,
					Kind:    k.String(),
					Item:    int(msg.Item),
					Origin:  msg.Origin,
					Version: uint64(msg.Version),
					FirstNs: int64(at),
				}
				h.waves[meta.FloodID] = w
			}
			w.LastNs = int64(at)
			w.Deliveries++
			if meta.Hops > w.MaxHops {
				w.MaxHops = meta.Hops
			}
		}
	}
}

// QueryIssued counts one issued query.
func (h *Hub) QueryIssued(level consistency.Level) {
	if h == nil || !level.Valid() {
		return
	}
	h.issued[level].Inc()
}

// QueryAnswered records an answered query's latency, the served copy's
// staleness at delivery, and the audit outcome.
func (h *Hub) QueryAnswered(level consistency.Level, latency, stale time.Duration, violation string) {
	if h == nil || !level.Valid() {
		return
	}
	h.answered[level].Inc()
	h.queryLatency[level].ObserveDuration(latency)
	h.staleness[level].ObserveDuration(stale)
	if violation != "" && violation != "none" {
		h.reg.Counter("rpcc_audit_violations_total", "Answers violating their consistency level.",
			Label{"class", violation}).Inc()
	}
}

// QueryFailed records a failed query and its reason.
func (h *Hub) QueryFailed(level consistency.Level, reason string) {
	if h == nil || !level.Valid() {
		return
	}
	h.failed[level].Inc()
	h.reg.Counter("rpcc_query_failures_total", "Failed queries by reason.",
		Label{"reason", reason}).Inc()
}

// QuerySpanRecord retains one query's lifecycle record (LevelSpans only).
func (h *Hub) QuerySpanRecord(s QuerySpan) {
	if h == nil || h.spans == nil {
		return
	}
	h.spans.AddQuery(s)
}

// RoleTransition counts one Fig 5 role transition and, at LevelSpans,
// retains the transition with the election coefficient inputs that drove
// it.
func (h *Hub) RoleTransition(at time.Duration, node, item int, from, to, reason string, car, cs, ce float64) {
	if h == nil {
		return
	}
	h.reg.Counter("rpcc_role_transitions_total", "Fig 5 role transitions.",
		Label{"from", from}, Label{"to", to}, Label{"reason", reason}).Inc()
	if h.spans != nil {
		h.spans.AddRole(RoleSpan{
			AtNs: int64(at), Node: node, Item: item,
			From: from, To: to, Reason: reason,
			CAR: car, CS: cs, CE: ce,
		})
	}
}

// RelayMembership counts one relay-table event at a source host.
func (h *Hub) RelayMembership(event string) {
	if h == nil {
		return
	}
	if c, ok := h.membership[event]; ok {
		c.Inc()
		return
	}
	h.reg.Counter("rpcc_relay_membership_total",
		"Relay-table membership events at source hosts.", Label{"event", event}).Inc()
}

// PollStage counts one poll send at the given escalation stage.
func (h *Hub) PollStage(stage string) {
	if h == nil {
		return
	}
	if c, ok := h.pollStage[stage]; ok {
		c.Inc()
	}
}

// RelayForget counts one learned-relay forget.
func (h *Hub) RelayForget() {
	if h != nil {
		h.forgets.Inc()
	}
}

// RepairAttempt counts one GET_NEW or APPLY send (first send or retry).
func (h *Hub) RepairAttempt(kind string) {
	if h == nil {
		return
	}
	if c, ok := h.repairAttempts[kind]; ok {
		c.Inc()
	}
}

// RepairGiveUp counts one repair abandoned at the attempt bound.
func (h *Hub) RepairGiveUp(kind string) {
	if h == nil {
		return
	}
	if c, ok := h.repairGiveUps[kind]; ok {
		c.Inc()
	}
}

// FaultEvent counts one injected fault and, at LevelSpans, retains it as
// a fault span. nodes is retained as given (callers pass sorted slices);
// item is -1 when the fault is not item-scoped.
func (h *Hub) FaultEvent(at time.Duration, kind string, nodes []int, item int, note string) {
	if h == nil {
		return
	}
	h.reg.Counter("rpcc_fault_events_total", "Injected fault-plane events.",
		Label{"kind", kind}).Inc()
	if h.spans != nil {
		h.spans.AddFault(FaultSpan{
			AtNs: int64(at), Kind: kind, Nodes: append([]int(nil), nodes...),
			Item: item, Note: note,
		})
	}
}

// Coeff observes one node's election coefficients at a coefficient tick.
func (h *Hub) Coeff(car, cs, ce float64) {
	if h == nil {
		return
	}
	h.coeff[0].Observe(car)
	h.coeff[1].Observe(cs)
	h.coeff[2].Observe(ce)
}

// AttachTraffic registers the run's traffic ledger to be folded into the
// snapshot at Finish.
func (h *Hub) AttachTraffic(t *stats.Traffic) {
	if h != nil {
		h.traffic = t
	}
}

// AttachTrace registers a trace recorder whose Summary is folded into the
// snapshot at Finish.
func (h *Hub) AttachTrace(r *trace.Recorder) {
	if h != nil {
		h.traceRec = r
	}
}

// Finish stamps the simulated end time and folds the attached traffic
// ledger, trace summary, wave aggregates and span-drop accounting into
// the registry. Call once, after the kernel stops.
func (h *Hub) Finish(at time.Duration) {
	if h == nil {
		return
	}
	h.simSeconds.Set(at.Seconds())
	if h.traffic != nil {
		for k := 1; k < protocol.NumKinds; k++ {
			kind := protocol.Kind(k)
			lb := Label{"kind", kind.String()}
			if v := h.traffic.Tx(kind); v > 0 {
				h.reg.Counter("rpcc_tx_total", "Link-level transmissions.", lb).Add(v)
			}
			if v := h.traffic.Originated(kind); v > 0 {
				h.reg.Counter("rpcc_originated_total", "Messages entering the network.", lb).Add(v)
			}
			if v := h.traffic.Delivered(kind); v > 0 {
				h.reg.Counter("rpcc_delivered_total", "Messages reaching a handler.", lb).Add(v)
			}
			for c := stats.DropCause(0); c < stats.NumDropCauses; c++ {
				if v := h.traffic.DroppedByCause(kind, c); v > 0 {
					h.reg.Counter("rpcc_dropped_total", "Messages abandoned in flight, by cause.",
						lb, Label{"cause", c.String()}).Add(v)
				}
			}
		}
		// Kindless drops (undecodable datagrams on a wire transport) get
		// their own kind value: "unknown" is honest where any real kind
		// would be a guess.
		for c := stats.DropCause(0); c < stats.NumDropCauses; c++ {
			if v := h.traffic.DroppedUnknown(c); v > 0 {
				h.reg.Counter("rpcc_dropped_total", "Messages abandoned in flight, by cause.",
					Label{"kind", "unknown"}, Label{"cause", c.String()}).Add(v)
			}
		}
		h.reg.Counter("rpcc_tx_bytes_total", "Bytes transmitted.").Add(h.traffic.TotalBytes())
		// Invalid-kind records are surfaced explicitly (they indicate an
		// accounting bug upstream), never silently folded into a real kind.
		h.reg.Counter("rpcc_invalid_kind_total",
			"Traffic records carrying an out-of-range protocol kind.").Add(h.traffic.Invalid())
	}
	if h.traceRec != nil {
		sum := h.traceRec.Summary()
		for k := 1; k < protocol.NumKinds; k++ {
			if v := sum.PerKind[k]; v > 0 {
				h.reg.Counter("rpcc_trace_events_total", "Trace events recorded per kind.",
					Label{"kind", protocol.Kind(k).String()}).Add(v)
			}
		}
		h.reg.Counter("rpcc_trace_overwritten_total",
			"Trace events lost to ring overwrite.").Add(sum.Overwritten)
		h.reg.Counter("rpcc_trace_filtered_total",
			"Trace events rejected by the filter.").Add(sum.Filtered)
	}
	for _, w := range h.sortedWaves() {
		h.reg.Counter("rpcc_waves_total", "Flood waves observed, per kind.",
			Label{"kind", w.Kind}).Inc()
	}
	if h.spans != nil {
		h.reg.Counter("rpcc_spans_dropped_total",
			"Spans discarded after the span log filled.").Add(h.spans.Dropped())
	}
}
