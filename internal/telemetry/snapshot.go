package telemetry

import (
	"fmt"
	"sort"
)

// Snapshot is the serializable end-of-run state of a registry: every
// family sorted by name, every metric sorted by label signature, zero
// metrics skipped. Snapshots are what fleet journals embed and what the
// Prometheus/JSONL writers render; Merge folds snapshots from independent
// runs (replica seeds, sweep points) into one aggregate.
type Snapshot struct {
	// SimSeconds is the simulated time covered (summed across merges).
	SimSeconds float64      `json:"sim_seconds"`
	Families   []FamilySnap `json:"families"`
}

// FamilySnap is one metric family in a snapshot.
type FamilySnap struct {
	Name string `json:"name"`
	Help string `json:"help"`
	Type string `json:"type"` // counter | gauge | histogram
	// Uppers are the histogram bucket upper bounds (+Inf implicit).
	Uppers  []float64    `json:"uppers,omitempty"`
	Metrics []MetricSnap `json:"metrics"`
}

// MetricSnap is one labelled metric.
type MetricSnap struct {
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter or gauge value.
	Value float64 `json:"value,omitempty"`
	// Histogram fields: per-bucket (non-cumulative) counts, total count,
	// sample sum.
	Buckets []uint64 `json:"buckets,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
}

// Snapshot captures the hub's registry (nil hub → nil snapshot).
func (h *Hub) Snapshot() *Snapshot {
	if h == nil {
		return nil
	}
	return h.reg.Snapshot(h.simSeconds.Value())
}

// Snapshot renders the registry into its exportable form. Families with
// no non-zero metric are dropped, so snapshots carry only what the run
// actually observed.
func (r *Registry) Snapshot(simSeconds float64) *Snapshot {
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	snap := &Snapshot{SimSeconds: simSeconds}
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnap{Name: f.name, Help: f.help, Type: f.typ.String()}
		if f.typ == typeHistogram {
			fs.Uppers = f.uppers
		}
		sigs := make([]string, len(f.order))
		copy(sigs, f.order)
		sort.Strings(sigs)
		for _, sig := range sigs {
			switch m := f.byLabel[sig].(type) {
			case *Counter:
				if m.n == 0 {
					continue
				}
				fs.Metrics = append(fs.Metrics, MetricSnap{Labels: m.labels, Value: float64(m.n)})
			case *Gauge:
				if m.v == 0 {
					continue
				}
				fs.Metrics = append(fs.Metrics, MetricSnap{Labels: m.labels, Value: m.v})
			case *Histogram:
				if m.count == 0 {
					continue
				}
				buckets := make([]uint64, len(m.counts))
				copy(buckets, m.counts)
				fs.Metrics = append(fs.Metrics, MetricSnap{
					Labels: m.labels, Buckets: buckets, Count: m.count, Sum: m.sum,
				})
			}
		}
		if len(fs.Metrics) > 0 {
			snap.Families = append(snap.Families, fs)
		}
	}
	return snap
}

// Merge folds other into s: counters, gauges, histogram buckets and
// SimSeconds add; metrics absent on one side are copied. Families whose
// type or bucket scheme disagree are rejected — merging snapshots from
// different schema versions would silently corrupt the aggregate.
// Merging nil is a no-op.
func (s *Snapshot) Merge(other *Snapshot) error {
	if other == nil {
		return nil
	}
	s.SimSeconds += other.SimSeconds
	byName := make(map[string]int, len(s.Families))
	for i, f := range s.Families {
		byName[f.Name] = i
	}
	for _, of := range other.Families {
		i, ok := byName[of.Name]
		if !ok {
			copied := of
			copied.Metrics = append([]MetricSnap(nil), of.Metrics...)
			for j := range copied.Metrics {
				copied.Metrics[j].Buckets = append([]uint64(nil), of.Metrics[j].Buckets...)
			}
			s.Families = append(s.Families, copied)
			continue
		}
		f := &s.Families[i]
		if f.Type != of.Type || !sameUppers(f.Uppers, of.Uppers) {
			return fmt.Errorf("telemetry: merge schema mismatch for %s", f.Name)
		}
		bySig := make(map[string]int, len(f.Metrics))
		for j, m := range f.Metrics {
			bySig[signature(m.Labels)] = j
		}
		for _, om := range of.Metrics {
			j, ok := bySig[signature(om.Labels)]
			if !ok {
				copied := om
				copied.Buckets = append([]uint64(nil), om.Buckets...)
				f.Metrics = append(f.Metrics, copied)
				continue
			}
			m := &f.Metrics[j]
			m.Value += om.Value
			m.Count += om.Count
			m.Sum += om.Sum
			if len(om.Buckets) != len(m.Buckets) {
				return fmt.Errorf("telemetry: merge bucket mismatch for %s", f.Name)
			}
			for b := range m.Buckets {
				m.Buckets[b] += om.Buckets[b]
			}
		}
	}
	// Restore deterministic order after appends.
	sort.Slice(s.Families, func(i, j int) bool { return s.Families[i].Name < s.Families[j].Name })
	for i := range s.Families {
		ms := s.Families[i].Metrics
		sort.Slice(ms, func(a, b int) bool { return signature(ms[a].Labels) < signature(ms[b].Labels) })
	}
	return nil
}

func sameUppers(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Family returns the named family snapshot, if present.
func (s *Snapshot) Family(name string) (FamilySnap, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnap{}, false
}

// CounterValue returns the summed value of the named counter family
// across metrics matching all the given labels (empty labels match all).
func (s *Snapshot) CounterValue(name string, labels ...Label) float64 {
	f, ok := s.Family(name)
	if !ok {
		return 0
	}
	var sum float64
	for _, m := range f.Metrics {
		if labelsMatch(m.Labels, labels) {
			sum += m.Value
		}
	}
	return sum
}

func labelsMatch(have, want []Label) bool {
	for _, w := range want {
		found := false
		for _, l := range have {
			if l.Key == w.Key && l.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
