// Package trace is the causal tracing plane: it turns each end-to-end
// protocol operation (a query, an update push, an invalidation wave, a
// repair) into a DAG of spans that crosses nodes, kernel shards and — on
// the wire — processes. The (TraceID, SpanID, ParentSpanID) triple rides
// protocol.Message.Trace through every send, so a span recorded at the
// receiver can name the sender-side span that caused it.
//
// The plane is built to be invisible when off: every method is nil-safe
// (a nil *Collector no-ops), instrumentation sites guard with a single
// pointer/zero check, and the context contributes zero bytes to
// Message.Size(), so a traced run's simulated timing is identical to an
// untraced one.
//
// Determinism contract: span and trace ids are counters (the region id
// in the high bits keeps them unique across regions and daemons), spans
// are recorded in call order, and Export/Merge order by
// (StartNs, Region, Seq) — so a same-seed run reproduces the trace file
// byte for byte.
//
// A Collector is confined to its kernel's goroutine, exactly like the
// simulation state it observes; per-region collectors are merged after
// their kernels stop.
package trace

import (
	"sort"

	"github.com/manetlab/rpcc/internal/protocol"
)

// Span phases: where critical-path time is attributed.
const (
	// PhaseQuery is the root span of a query lifecycle (Begin→Answer/Fail);
	// its name records the answer route.
	PhaseQuery = "query"
	// PhaseTransit is one network delivery: [sent, delivered] of a single
	// unicast, forwarded hop chain, or flood arm.
	PhaseTransit = "transit"
	// PhasePoll is one stage of the poll escalation ladder
	// (direct → ring → fallback).
	PhasePoll = "poll"
	// PhaseRelayQueue is the time a poll waited in a relay's pending
	// queue for fresh content.
	PhaseRelayQueue = "relay-queue"
	// PhaseServe is authority-side answer construction (poll ack, data
	// reply).
	PhaseServe = "serve"
	// PhaseFetch is the cooperative-caching miss path (expanding-ring
	// search or direct owner fetch).
	PhaseFetch = "fetch"
	// PhaseRepair is a GET_NEW/SEND_NEW round including its backoff.
	PhaseRepair = "repair"
	// PhaseInvalidate is an invalidation wave rooted at the source host.
	PhaseInvalidate = "invalidate"
	// PhaseUpdate is an eager UPDATE push rooted at the source host.
	PhaseUpdate = "update"
)

// regionShift positions the region id in the high bits of every span id,
// keeping ids from different regions (sim shards, live daemons) disjoint
// without coordination. 2^40 spans per region, 2^23 regions.
const regionShift = 40

// Span is one node-local interval attributed to a trace. EndNs < StartNs
// never happens; EndNs == StartNs marks an instantaneous event (e.g. a
// local cache hit). Seq is the region-local emission index, the final
// determinism tiebreak.
type Span struct {
	Trace   uint64 `json:"trace"`
	ID      uint64 `json:"span"`
	Parent  uint64 `json:"parent"`
	Region  int    `json:"region"`
	Node    int    `json:"node"`
	Phase   string `json:"phase"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	Seq     uint64 `json:"seq"`
}

// Duration is the span's interval length in nanoseconds.
func (s Span) Duration() int64 { return s.EndNs - s.StartNs }

// Collector records the spans of one region (a sim kernel, a sharded-run
// region, or a live daemon). The zero value is not useful; a nil
// *Collector is — every method no-ops, which is how tracing is disabled.
type Collector struct {
	region int
	next   uint64
	spans  []Span
	open   map[uint64]int // span id -> index of spans still missing EndNs
}

// NewCollector returns a collector whose span ids carry the given region
// id in their high bits. Region ids must be unique across the collectors
// whose spans will be merged.
func NewCollector(region int) *Collector {
	return &Collector{region: region, open: make(map[uint64]int)}
}

// Enabled reports whether the collector records anything.
func (c *Collector) Enabled() bool { return c != nil }

// Region returns the collector's region id (0 for nil).
func (c *Collector) Region() int {
	if c == nil {
		return 0
	}
	return c.region
}

func (c *Collector) newID() uint64 {
	c.next++
	return uint64(c.region)<<regionShift | c.next
}

func (c *Collector) push(s Span) int {
	s.Seq = c.next
	c.spans = append(c.spans, s)
	return len(c.spans) - 1
}

// StartTrace opens a new trace whose root span starts now; the root span
// id doubles as the trace id. Returns the context to thread into child
// spans and outbound messages. Nil collector: zero context.
func (c *Collector) StartTrace(now int64, node int, phase, name string) protocol.TraceContext {
	if c == nil {
		return protocol.TraceContext{}
	}
	id := c.newID()
	c.open[id] = c.push(Span{
		Trace: id, ID: id, Region: c.region, Node: node,
		Phase: phase, Name: name, StartNs: now, EndNs: now,
	})
	return protocol.TraceContext{TraceID: id, SpanID: id}
}

// StartChild opens a span under parent, starting now. A zero parent (the
// operation is untraced) or nil collector returns a zero context, so an
// untraced operation stays untraced all the way down.
func (c *Collector) StartChild(now int64, parent protocol.TraceContext, node int, phase, name string) protocol.TraceContext {
	if c == nil || parent.TraceID == 0 {
		return protocol.TraceContext{}
	}
	id := c.newID()
	c.open[id] = c.push(Span{
		Trace: parent.TraceID, ID: id, Parent: parent.SpanID, Region: c.region,
		Node: node, Phase: phase, Name: name, StartNs: now, EndNs: now,
	})
	return protocol.TraceContext{TraceID: parent.TraceID, SpanID: id, ParentID: parent.SpanID}
}

// Finish closes the span identified by ctx at now. Unknown or zero
// contexts (including every context on a nil collector) are ignored.
func (c *Collector) Finish(ctx protocol.TraceContext, now int64) {
	c.FinishAs(ctx, now, "")
}

// FinishAs closes the span and, when name is non-empty, renames it — the
// query root span learns its answer route only at Answer time.
func (c *Collector) FinishAs(ctx protocol.TraceContext, now int64, name string) {
	if c == nil || ctx.SpanID == 0 {
		return
	}
	i, ok := c.open[ctx.SpanID]
	if !ok {
		return
	}
	delete(c.open, ctx.SpanID)
	c.spans[i].EndNs = now
	if name != "" {
		c.spans[i].Name = name
	}
}

// Emit records a complete span under parent in one call — for intervals
// whose start and end are both known at the recording site, like a
// network delivery [sent, delivered] or a relay-queue wait.
func (c *Collector) Emit(parent protocol.TraceContext, node int, phase, name string, startNs, endNs int64) protocol.TraceContext {
	if c == nil || parent.TraceID == 0 {
		return protocol.TraceContext{}
	}
	id := c.newID()
	c.push(Span{
		Trace: parent.TraceID, ID: id, Parent: parent.SpanID, Region: c.region,
		Node: node, Phase: phase, Name: name, StartNs: startNs, EndNs: endNs,
	})
	return protocol.TraceContext{TraceID: parent.TraceID, SpanID: id, ParentID: parent.SpanID}
}

// Len returns the number of recorded spans (0 for nil).
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.spans)
}

// Export returns the collector's spans ordered by (StartNs, Region, Seq)
// — the canonical trace order. Still-open spans are exported with
// EndNs == StartNs. The collector keeps ownership of nothing: the result
// is a copy safe to merge and mutate.
func (c *Collector) Export() []Span {
	if c == nil {
		return nil
	}
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	sortSpans(out)
	return out
}

// Merge combines span sets from several regions into one canonical
// (StartNs, Region, Seq) order. This is the determinism fix for
// multi-region runs: region goroutines finish in wall-clock order, so
// concatenation order is not reproducible — the sort key is.
func Merge(sets ...[]Span) []Span {
	n := 0
	for _, s := range sets {
		n += len(s)
	}
	out := make([]Span, 0, n)
	for _, s := range sets {
		out = append(out, s...)
	}
	sortSpans(out)
	return out
}

func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.StartNs != b.StartNs {
			return a.StartNs < b.StartNs
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Seq < b.Seq
	})
}
