package trace

import (
	"bytes"
	"testing"

	"github.com/manetlab/rpcc/internal/protocol"
)

// TestNilCollectorNoOps pins the disabled contract: every method on a nil
// collector is a no-op returning zero values, so instrumentation sites
// need no feature flag beyond the pointer itself.
func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	if c.Enabled() || c.Len() != 0 || c.Region() != 0 || c.Export() != nil {
		t.Fatal("nil collector not inert")
	}
	ctx := c.StartTrace(5, 1, PhaseQuery, "query")
	if !ctx.Zero() {
		t.Fatalf("nil StartTrace returned %+v", ctx)
	}
	if child := c.StartChild(6, protocol.TraceContext{TraceID: 9, SpanID: 9}, 1, PhasePoll, "p"); !child.Zero() {
		t.Fatalf("nil StartChild returned %+v", child)
	}
	c.Finish(protocol.TraceContext{TraceID: 9, SpanID: 9}, 7) // must not panic
	if e := c.Emit(protocol.TraceContext{TraceID: 9, SpanID: 9}, 1, PhaseTransit, "t", 1, 2); !e.Zero() {
		t.Fatalf("nil Emit returned %+v", e)
	}
}

// TestUntracedParentStaysUntraced: children of a zero context are zero —
// an untraced operation never sprouts spans halfway down.
func TestUntracedParentStaysUntraced(t *testing.T) {
	c := NewCollector(0)
	if child := c.StartChild(5, protocol.TraceContext{}, 1, PhasePoll, "p"); !child.Zero() {
		t.Fatalf("child of zero context: %+v", child)
	}
	if e := c.Emit(protocol.TraceContext{}, 1, PhaseTransit, "t", 1, 2); !e.Zero() {
		t.Fatalf("emit under zero context: %+v", e)
	}
	if c.Len() != 0 {
		t.Fatalf("untraced ops recorded %d spans", c.Len())
	}
}

func buildQueryTrace(c *Collector) protocol.TraceContext {
	// A miniature SC query: root → poll stage → (transit out, serve,
	// transit back), answered at 100.
	root := c.StartTrace(0, 1, PhaseQuery, "query")
	stage := c.StartChild(0, root, 1, PhasePoll, "poll-direct")
	out := c.Emit(stage, 2, PhaseTransit, "POLL", 0, 20)
	serve := c.Emit(out, 2, PhaseServe, "POLL_ACK_A", 20, 30)
	c.Emit(serve, 1, PhaseTransit, "POLL_ACK_A", 30, 90)
	c.Finish(stage, 90)
	c.FinishAs(root, 100, "poll-direct")
	return root
}

// TestIDRegionDisjoint: two regions' ids never collide, and region ids
// survive the round trip into span records.
func TestIDRegionDisjoint(t *testing.T) {
	a, b := NewCollector(0), NewCollector(3)
	ca := a.StartTrace(0, 1, PhaseQuery, "q")
	cb := b.StartTrace(0, 1, PhaseQuery, "q")
	if ca.TraceID == cb.TraceID {
		t.Fatalf("regions share trace id %d", ca.TraceID)
	}
	if got := b.Export()[0].Region; got != 3 {
		t.Fatalf("region = %d, want 3", got)
	}
	if cb.TraceID>>regionShift != 3 {
		t.Fatalf("trace id %x missing region in high bits", cb.TraceID)
	}
}

// TestCriticalPathTelescopes pins the decomposition identity: the sum of
// per-segment self times equals the root duration exactly.
func TestCriticalPathTelescopes(t *testing.T) {
	c := NewCollector(0)
	buildQueryTrace(c)
	paths := ExtractCriticalPaths(c.Export())
	if len(paths) != 1 {
		t.Fatalf("%d paths, want 1", len(paths))
	}
	p := paths[0]
	if p.TotalNs != 100 {
		t.Fatalf("TotalNs = %d, want 100", p.TotalNs)
	}
	var sum int64
	for _, seg := range p.Segments {
		sum += seg.SelfNs
		if seg.SelfNs < 0 {
			t.Fatalf("negative self time %d in %s", seg.SelfNs, seg.Span.Phase)
		}
	}
	if sum != p.TotalNs {
		t.Fatalf("self times sum to %d, root duration %d", sum, p.TotalNs)
	}
	// The waited-on chain: query → poll → return transit is the last
	// thing to finish inside the stage.
	wantPhases := []string{PhaseQuery, PhasePoll, PhaseTransit}
	if len(p.Segments) != len(wantPhases) {
		t.Fatalf("path has %d segments, want %d: %+v", len(p.Segments), len(wantPhases), p.Segments)
	}
	for i, ph := range wantPhases {
		if p.Segments[i].Span.Phase != ph {
			t.Fatalf("segment %d phase %s, want %s", i, p.Segments[i].Span.Phase, ph)
		}
	}
}

// TestCriticalPathSkipsOverrunningChildren: a child that outlives its
// parent (a flood arm still in flight after the poll stage escalated) is
// not on the waited-on path.
func TestCriticalPathSkipsOverrunningChildren(t *testing.T) {
	c := NewCollector(0)
	root := c.StartTrace(0, 1, PhaseQuery, "query")
	stage := c.StartChild(0, root, 1, PhasePoll, "poll-ring")
	c.Emit(stage, 5, PhaseTransit, "POLL", 0, 500) // arm outliving everything
	c.Emit(stage, 2, PhaseTransit, "POLL", 0, 40)
	c.Finish(stage, 50)
	c.FinishAs(root, 60, "poll-ring")
	paths := ExtractCriticalPaths(c.Export())
	p := paths[0]
	var sum int64
	for _, seg := range p.Segments {
		sum += seg.SelfNs
		if seg.Span.EndNs > 60 {
			t.Fatalf("overrunning child on critical path: %+v", seg.Span)
		}
	}
	if sum != 60 {
		t.Fatalf("self times sum to %d, want 60", sum)
	}
}

// TestMergeCanonicalOrder: merging per-region span sets in any
// concatenation order yields the same canonical sequence.
func TestMergeCanonicalOrder(t *testing.T) {
	a, b := NewCollector(0), NewCollector(1)
	buildQueryTrace(a)
	buildQueryTrace(b)
	ab := Merge(a.Export(), b.Export())
	ba := Merge(b.Export(), a.Export())
	var bufAB, bufBA bytes.Buffer
	if err := WriteJSONL(&bufAB, ab); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&bufBA, ba); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufAB.Bytes(), bufBA.Bytes()) {
		t.Fatal("merge order leaked into canonical output")
	}
}

// TestJSONLRoundTrip: Write→Read reproduces the spans and a second Write
// is byte-identical.
func TestJSONLRoundTrip(t *testing.T) {
	c := NewCollector(2)
	buildQueryTrace(c)
	spans := c.Export()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("read %d spans, wrote %d", len(got), len(spans))
	}
	for i := range got {
		if got[i] != spans[i] {
			t.Fatalf("span %d drifted: %+v vs %+v", i, got[i], spans[i])
		}
	}
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encode not byte-identical")
	}
}

// TestPhaseTotalsAndTopK sanity: totals cover every segment and TopK
// sorts by total descending without mutating the input.
func TestPhaseTotalsAndTopK(t *testing.T) {
	c := NewCollector(0)
	buildQueryTrace(c)
	root2 := c.StartTrace(200, 4, PhaseQuery, "query")
	c.FinishAs(root2, 205, "local")
	paths := ExtractCriticalPaths(c.Export())
	if len(paths) != 2 {
		t.Fatalf("%d paths, want 2", len(paths))
	}
	phases, totals, counts := PhaseTotals(paths)
	var sum int64
	for _, ph := range phases {
		sum += totals[ph]
		if counts[ph] == 0 {
			t.Fatalf("phase %s has zero count", ph)
		}
	}
	if sum != paths[0].TotalNs+paths[1].TotalNs {
		t.Fatalf("phase totals %d != path totals %d", sum, paths[0].TotalNs+paths[1].TotalNs)
	}
	top := TopK(paths, 1)
	if len(top) != 1 || top[0].TotalNs != 100 {
		t.Fatalf("TopK(1) = %+v", top)
	}
	if paths[0].Root.StartNs > paths[1].Root.StartNs {
		t.Fatal("TopK disturbed canonical input order")
	}
}
