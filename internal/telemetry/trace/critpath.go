package trace

import "sort"

// Segment is one step of a critical path: the span the path passes
// through and the self time attributed to it — the part of its interval
// not explained by the child the path descends into.
type Segment struct {
	Span   Span
	SelfNs int64
}

// CriticalPath is the latency decomposition of one trace: the chain of
// spans from the root to a leaf chosen so that each step descends into
// the child that finished last (the one the parent was waiting on).
//
// Self times telescope: root duration = Σ segment SelfNs exactly, because
// each segment contributes (own duration − chosen child duration) and the
// leaf contributes its full duration. That identity is what makes the
// wire acceptance check ("critical-path sum equals measured end-to-end
// latency") structural rather than approximate.
type CriticalPath struct {
	Root     Span
	Segments []Segment
	TotalNs  int64
}

// ExtractCriticalPaths computes one critical path per root span (a span
// with Parent 0), in canonical (StartNs, Region, Seq) root order. The
// walk is deterministic: at each span it descends into the child with the
// greatest EndNs not exceeding the parent's (a child that outlives its
// parent — a transit arm of an escalated-past poll stage — is off the
// waited-on path by definition), breaking ties toward the later StartNs,
// then the lower (Region, Seq).
func ExtractCriticalPaths(spans []Span) []CriticalPath {
	children := make(map[uint64][]Span)
	var roots []Span
	for _, s := range spans {
		if s.Parent == 0 {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	sortSpans(roots)
	for _, kids := range children {
		sortSpans(kids)
	}
	paths := make([]CriticalPath, 0, len(roots))
	for _, root := range roots {
		cp := CriticalPath{Root: root, TotalNs: root.Duration()}
		visited := map[uint64]bool{}
		cur := root
		for {
			visited[cur.ID] = true
			next, ok := pickChild(children[cur.ID], cur, visited)
			if !ok {
				cp.Segments = append(cp.Segments, Segment{Span: cur, SelfNs: cur.Duration()})
				break
			}
			cp.Segments = append(cp.Segments, Segment{Span: cur, SelfNs: cur.Duration() - next.Duration()})
			cur = next
		}
		paths = append(paths, cp)
	}
	return paths
}

// pickChild selects the waited-on child: max EndNs among children ending
// within the parent's interval, ties broken by later StartNs then lower
// (Region, Seq). The visited set guards against malformed (cyclic)
// input; well-formed traces never trip it.
func pickChild(kids []Span, parent Span, visited map[uint64]bool) (Span, bool) {
	var best Span
	found := false
	for _, k := range kids {
		if visited[k.ID] || k.EndNs > parent.EndNs {
			continue
		}
		if !found || laterChild(k, best) {
			best, found = k, true
		}
	}
	return best, found
}

func laterChild(a, b Span) bool {
	if a.EndNs != b.EndNs {
		return a.EndNs > b.EndNs
	}
	if a.StartNs != b.StartNs {
		return a.StartNs > b.StartNs
	}
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Seq < b.Seq
}

// PhaseTotals aggregates critical-path self time by phase across paths.
// The keys slice is the phases in first-appearance order along the
// canonical path order, so rendering is deterministic.
func PhaseTotals(paths []CriticalPath) (phases []string, totals map[string]int64, counts map[string]int64) {
	totals = make(map[string]int64)
	counts = make(map[string]int64)
	for _, p := range paths {
		for _, seg := range p.Segments {
			if _, seen := totals[seg.Span.Phase]; !seen {
				phases = append(phases, seg.Span.Phase)
			}
			totals[seg.Span.Phase] += seg.SelfNs
			counts[seg.Span.Phase]++
		}
	}
	return phases, totals, counts
}

// TopK returns the k longest paths (by TotalNs, ties toward the earlier
// canonical root) without disturbing the input order.
func TopK(paths []CriticalPath, k int) []CriticalPath {
	out := make([]CriticalPath, len(paths))
	copy(out, paths)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	if k < len(out) {
		out = out[:k]
	}
	return out
}
