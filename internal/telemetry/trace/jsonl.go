package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes one span per line in canonical field order. Spans are
// written in the order given — callers pass Export/Merge output so the
// file is in (StartNs, Region, Seq) order and byte-reproducible for a
// same-seed run.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	for _, s := range spans {
		line, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a span-per-line trace file, in file order. Blank lines
// are ignored; a malformed line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var spans []Span
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}
