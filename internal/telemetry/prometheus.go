package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, cumulative le buckets
// with +Inf, _sum and _count series for histograms. Output is fully
// deterministic: families and metrics arrive sorted from the snapshot and
// floats render with strconv's shortest representation.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	if s == nil {
		return nil
	}
	for _, f := range s.Families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, escapeHelp(f.Help), f.Name, f.Type); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if f.Type != "histogram" {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(m.Labels), formatFloat(m.Value)); err != nil {
					return err
				}
				continue
			}
			var cum uint64
			for i, upper := range f.Uppers {
				cum += bucketAt(m.Buckets, i)
				if err := writeBucket(w, f.Name, m.Labels, formatFloat(upper), cum); err != nil {
					return err
				}
			}
			cum += bucketAt(m.Buckets, len(f.Uppers))
			if err := writeBucket(w, f.Name, m.Labels, "+Inf", cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, renderLabels(m.Labels), formatFloat(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, renderLabels(m.Labels), m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

func bucketAt(buckets []uint64, i int) uint64 {
	if i < len(buckets) {
		return buckets[i]
	}
	return 0
}

func writeBucket(w io.Writer, name string, labels []Label, le string, cum uint64) error {
	withLE := make([]Label, 0, len(labels)+1)
	withLE = append(withLE, labels...)
	withLE = append(withLE, Label{"le", le})
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(withLE), cum)
	return err
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
