package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/stats"
	"github.com/manetlab/rpcc/internal/trace"
)

func TestRegistryDedupAndLabelOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h", Label{"x", "1"}, Label{"y", "2"})
	b := r.Counter("c_total", "h", Label{"y", "2"}, Label{"x", "1"})
	if a != b {
		t.Fatal("label order created two instruments for one identity")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("Value = %d through the other handle, want 1", b.Value())
	}
	if r.Counter("c_total", "h", Label{"x", "other"}) == a {
		t.Fatal("different label set deduplicated onto the same counter")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_test", "h", []float64{1, 2, 4})
	// A sample exactly on an upper bound belongs to that bucket
	// (le is inclusive); above the last bound it lands in +Inf.
	for _, v := range []float64{0, 1, 1.5, 2, 4, 4.0001, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // le=1: {0,1}; le=2: {1.5,2}; le=4: {4}; +Inf: rest
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
	if got := h.Sum(); got != 0+1+1.5+2+4+4.0001+100 {
		t.Errorf("Sum = %g", got)
	}
}

func TestSnapshotDeterministicAcrossRegistrationOrder(t *testing.T) {
	build := func(reverse bool) *Snapshot {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("b_total", "h", Label{"k", "x"}).Add(3) },
			func() { r.Counter("a_total", "h").Inc() },
			func() { r.Histogram("c_seconds", "h", []float64{1, 2}).Observe(1.5) },
		}
		if reverse {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		return r.Snapshot(60)
	}
	var w1, w2 bytes.Buffer
	if err := WritePrometheus(&w1, build(false)); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&w2, build(true)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatalf("registration order leaked into the export:\n%s\nvs\n%s", w1.String(), w2.String())
	}
}

func TestSnapshotSkipsZeroMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("zero_total", "h")
	r.Counter("live_total", "h").Inc()
	snap := r.Snapshot(0)
	if _, ok := snap.Family("zero_total"); ok {
		t.Error("zero-valued family exported")
	}
	if _, ok := snap.Family("live_total"); !ok {
		t.Error("live family missing")
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(n uint64, hv float64) *Snapshot {
		r := NewRegistry()
		r.Counter("m_total", "h", Label{"k", "a"}).Add(n)
		r.Histogram("m_seconds", "h", []float64{1, 2}).Observe(hv)
		return r.Snapshot(10)
	}
	a, b := mk(2, 0.5), mk(3, 1.5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.CounterValue("m_total"); got != 5 {
		t.Errorf("merged counter = %g, want 5", got)
	}
	if a.SimSeconds != 20 {
		t.Errorf("SimSeconds = %g, want 20", a.SimSeconds)
	}
	f, _ := a.Family("m_seconds")
	if f.Metrics[0].Count != 2 || f.Metrics[0].Buckets[0] != 1 || f.Metrics[0].Buckets[1] != 1 {
		t.Errorf("merged histogram wrong: %+v", f.Metrics[0])
	}

	// A family only the other side has is copied, not aliased.
	r := NewRegistry()
	r.Counter("extra_total", "h").Inc()
	extra := r.Snapshot(0)
	if err := a.Merge(extra); err != nil {
		t.Fatal(err)
	}
	if got := a.CounterValue("extra_total"); got != 1 {
		t.Errorf("copied family value = %g, want 1", got)
	}
	extra.Families[0].Metrics[0].Value = 99
	if got := a.CounterValue("extra_total"); got != 1 {
		t.Error("merge aliased the source snapshot's metrics")
	}

	// Bucket-scheme mismatch must be rejected, not silently mangled.
	r2 := NewRegistry()
	r2.Histogram("m_seconds", "h", []float64{5, 6}).Observe(5.5)
	if err := a.Merge(r2.Snapshot(0)); err == nil {
		t.Error("merge accepted mismatched bucket schemes")
	}

	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestWritePrometheusHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(3)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(1)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_count 3`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestNilHubIsInert(t *testing.T) {
	var h *Hub
	if h.Level() != LevelOff {
		t.Error("nil hub level")
	}
	if h.Tracer() != nil {
		t.Error("nil hub returned a tracer")
	}
	h.QueryIssued(consistency.LevelStrong)
	h.QueryAnswered(consistency.LevelDelta, time.Second, 0, "none")
	h.QueryFailed(consistency.LevelWeak, "no-route")
	h.QuerySpanRecord(QuerySpan{})
	h.RoleTransition(0, 0, 0, "cache", "relay", "r", 0, 0, 0)
	h.RelayMembership(MembershipApply)
	h.PollStage(PollDirect)
	h.RelayForget()
	h.Coeff(0.1, 0.2, 0.3)
	h.AttachTraffic(nil)
	h.AttachTrace(nil)
	h.Finish(time.Hour)
	h.Counter("x_total", "h").Inc() // nil handle, nil-safe Inc
	if h.Snapshot() != nil {
		t.Error("nil hub produced a snapshot")
	}
	if err := h.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil hub WriteJSONL: %v", err)
	}
	if NewHub(LevelOff) != nil {
		t.Error("NewHub(LevelOff) should return the nil hub")
	}
}

func TestSpanLogCapAndDrop(t *testing.T) {
	l := NewSpanLog(2)
	l.AddQuery(QuerySpan{Seq: 1})
	l.AddRole(RoleSpan{Node: 1})
	l.AddQuery(QuerySpan{Seq: 2}) // over cap
	l.AddRole(RoleSpan{Node: 2})  // over cap
	if len(l.Queries()) != 1 || len(l.Roles()) != 1 {
		t.Fatalf("retained %d queries / %d roles, want 1/1", len(l.Queries()), len(l.Roles()))
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
}

func TestHubTracerFeedsHistogramsAndWaves(t *testing.T) {
	h := NewHub(LevelSpans)
	tr := h.Tracer()
	msg := protocol.Message{Kind: protocol.KindPoll, Origin: 1, Item: 2}
	meta := netsim.Meta{Hops: 2, At: 3 * time.Second, SentAt: time.Second}
	tr(3*time.Second, 5, msg, meta)
	flood := netsim.Meta{Hops: 1, At: 4 * time.Second, SentAt: 4 * time.Second, Flood: true, FloodID: 7}
	inv := protocol.Message{Kind: protocol.KindInvalidation, Origin: 0, Item: 1, Version: 3}
	tr(4*time.Second, 6, inv, flood)
	tr(5*time.Second, 7, inv, netsim.Meta{Hops: 3, At: 5 * time.Second, SentAt: 4 * time.Second, Flood: true, FloodID: 7})
	// Invalid kinds must not panic or index out of range.
	tr(0, 0, protocol.Message{Kind: protocol.KindInvalid}, netsim.Meta{})

	if got := h.delivLatency[protocol.KindPoll].Count(); got != 1 {
		t.Errorf("poll latency samples = %d, want 1", got)
	}
	waves := h.sortedWaves()
	if len(waves) != 1 {
		t.Fatalf("waves = %d, want 1", len(waves))
	}
	w := waves[0]
	if w.Deliveries != 2 || w.MaxHops != 3 || w.FirstNs != int64(4*time.Second) || w.LastNs != int64(5*time.Second) {
		t.Errorf("wave aggregate wrong: %+v", w)
	}

	h.Finish(10 * time.Second)
	snap := h.Snapshot()
	if got := snap.CounterValue("rpcc_waves_total", Label{"kind", "INVALIDATION"}); got != 1 {
		t.Errorf("rpcc_waves_total = %g, want 1", got)
	}
}

func TestFinishExportsAttachedSources(t *testing.T) {
	h := NewHub(LevelMetrics)
	tf := stats.NewTraffic()
	tf.RecordTx(protocol.KindPoll, 32)
	tf.RecordTx(protocol.KindInvalid, 8) // out-of-range kind stays visible
	h.AttachTraffic(tf)

	rec, err := trace.NewRecorder(1)
	if err != nil {
		t.Fatal(err)
	}
	rec.Record(trace.Event{Kind: protocol.KindPoll})
	rec.Record(trace.Event{Kind: protocol.KindPoll}) // overwrites the first
	h.AttachTrace(rec)

	h.Finish(time.Minute)
	snap := h.Snapshot()
	if got := snap.CounterValue("rpcc_tx_total", Label{"kind", "POLL"}); got != 1 {
		t.Errorf("rpcc_tx_total{POLL} = %g, want 1", got)
	}
	if got := snap.CounterValue("rpcc_invalid_kind_total"); got != 1 {
		t.Errorf("rpcc_invalid_kind_total = %g, want 1", got)
	}
	if got := snap.CounterValue("rpcc_trace_overwritten_total"); got != 1 {
		t.Errorf("rpcc_trace_overwritten_total = %g, want 1", got)
	}
	if got := snap.CounterValue("rpcc_sim_seconds"); got != 60 {
		t.Errorf("rpcc_sim_seconds = %g, want 60", got)
	}
}

func TestWriteJSONLShape(t *testing.T) {
	h := NewHub(LevelSpans)
	h.QuerySpanRecord(QuerySpan{Seq: 1, Level: "SC", Outcome: "answered"})
	h.RoleTransition(time.Second, 3, 0, "candidate", "relay", "apply-ack", 0.5, 0.4, 0.3)
	h.Finish(time.Minute)
	var buf bytes.Buffer
	if err := h.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (role, query, snapshot)", len(lines))
	}
	if !strings.Contains(lines[len(lines)-1], `"type":"snapshot"`) {
		t.Errorf("last line is not the snapshot: %s", lines[len(lines)-1])
	}
}
