package sim

import (
	"sync"
	"testing"
	"time"
)

// TestKernelsIsolatedAcrossGoroutines is the concurrency-safety audit
// for the fleet orchestrator: one Kernel is single-threaded and owned by
// one goroutine, but two kernels share nothing — no globals, no shared
// streams, no shared queues — so independent simulations may run on
// parallel workers. The test drives several kernels concurrently under
// -race (the `race` Makefile target) and checks each against the serial
// baseline; any hidden shared state would show up as a race report or a
// diverging trace.
func TestKernelsIsolatedAcrossGoroutines(t *testing.T) {
	type trace struct {
		fired  uint64
		now    time.Duration
		sample int64
	}
	drive := func(seed int64) trace {
		k := NewKernel(WithSeed(seed), WithHorizon(time.Second))
		rng := k.Stream("test")
		var tr trace
		stop, err := k.Every(time.Millisecond, "tick", func(kk *Kernel) {
			tr.sample += int64(rng.Intn(1000))
		})
		if err != nil {
			t.Error(err)
			return tr
		}
		defer stop()
		tr.now = k.Run()
		tr.fired = k.EventsFired()
		return tr
	}

	seeds := []int64{1, 2, 3, 4}
	baseline := make([]trace, len(seeds))
	for i, s := range seeds {
		baseline[i] = drive(s)
	}
	if baseline[0].sample == baseline[1].sample {
		t.Fatal("distinct seeds should produce distinct streams")
	}

	concurrent := make([]trace, len(seeds))
	var wg sync.WaitGroup
	for i, s := range seeds {
		wg.Add(1)
		go func(i int, s int64) {
			defer wg.Done()
			concurrent[i] = drive(s)
		}(i, s)
	}
	wg.Wait()

	for i := range seeds {
		if concurrent[i] != baseline[i] {
			t.Fatalf("seed %d: concurrent trace %+v != serial %+v — kernels share state",
				seeds[i], concurrent[i], baseline[i])
		}
	}
}
