package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(3*time.Second, "c", func(*Kernel) { order = append(order, 3) })
	k.After(1*time.Second, "a", func(*Kernel) { order = append(order, 1) })
	k.After(2*time.Second, "b", func(*Kernel) { order = append(order, 2) })
	end := k.Run()
	if end != 3*time.Second {
		t.Errorf("Run() = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		k.After(time.Second, name, func(*Kernel) { order = append(order, name) })
	}
	k.Run()
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("order = %v, want FIFO at same instant", order)
	}
}

func TestAtRejectsPast(t *testing.T) {
	k := NewKernel()
	k.After(5*time.Second, "advance", func(kk *Kernel) {
		if _, err := kk.At(time.Second, "past", func(*Kernel) {}); err == nil {
			t.Error("At(past) succeeded, want error")
		}
	})
	k.Run()
}

func TestAtRejectsNilHandler(t *testing.T) {
	k := NewKernel()
	if _, err := k.At(time.Second, "nil", nil); err == nil {
		t.Fatal("At(nil handler) succeeded, want error")
	}
}

func TestAfterClampsNegative(t *testing.T) {
	k := NewKernel()
	fired := false
	k.After(-time.Second, "neg", func(*Kernel) { fired = true })
	k.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0 after clamped event", k.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.After(time.Second, "x", func(*Kernel) { fired = true })
	if !k.Cancel(e) {
		t.Fatal("Cancel returned false on pending event")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	k := NewKernel()
	e := k.After(time.Second, "x", func(*Kernel) {})
	k.Run()
	if k.Cancel(e) {
		t.Fatal("Cancel returned true on fired event")
	}
}

func TestCancelNil(t *testing.T) {
	k := NewKernel()
	if k.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestHorizonStopsRun(t *testing.T) {
	k := NewKernel(WithHorizon(10 * time.Second))
	count := 0
	stop, err := k.Every(3*time.Second, "tick", func(*Kernel) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	end := k.Run()
	if end != 10*time.Second {
		t.Errorf("Run() = %v, want horizon 10s", end)
	}
	if count != 3 { // ticks at 3, 6, 9
		t.Errorf("ticks = %d, want 3", count)
	}
}

func TestHorizonAdvancesClockWhenQueueDrains(t *testing.T) {
	k := NewKernel(WithHorizon(time.Minute))
	k.After(time.Second, "only", func(*Kernel) {})
	end := k.Run()
	if end != time.Minute {
		t.Errorf("Run() = %v, want clock advanced to horizon", end)
	}
}

func TestEveryStop(t *testing.T) {
	k := NewKernel(WithHorizon(time.Minute))
	count := 0
	var stop func()
	var err error
	stop, err = k.Every(time.Second, "tick", func(*Kernel) {
		count++
		if count == 5 {
			stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if count != 5 {
		t.Errorf("ticks = %d, want 5 after stop", count)
	}
}

func TestEveryRejectsNonPositivePeriod(t *testing.T) {
	k := NewKernel()
	if _, err := k.Every(0, "bad", func(*Kernel) {}); err == nil {
		t.Fatal("Every(0) succeeded, want error")
	}
	if _, err := k.Every(-time.Second, "bad", func(*Kernel) {}); err == nil {
		t.Fatal("Every(-1s) succeeded, want error")
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	k.After(time.Second, "a", func(kk *Kernel) { kk.Stop() })
	fired := false
	k.After(2*time.Second, "b", func(*Kernel) { fired = true })
	k.Run()
	if fired {
		t.Fatal("event after Stop fired")
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
}

func TestRunUntilSteps(t *testing.T) {
	k := NewKernel()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		k.After(d, "e", func(kk *Kernel) { fired = append(fired, kk.Now()) })
	}
	k.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if k.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", k.Now())
	}
	k.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if k.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want clock advanced to 10s", k.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse Handler
	recurse = func(kk *Kernel) {
		depth++
		if depth < 10 {
			kk.After(time.Second, "r", recurse)
		}
	}
	k.After(time.Second, "r", recurse)
	end := k.Run()
	if depth != 10 {
		t.Errorf("depth = %d, want 10", depth)
	}
	if end != 10*time.Second {
		t.Errorf("Run() = %v, want 10s", end)
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	a := NewKernel(WithSeed(42))
	b := NewKernel(WithSeed(42))
	for i := 0; i < 100; i++ {
		if a.Stream("mobility").Int63() != b.Stream("mobility").Int63() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestStreamsAreIndependentByName(t *testing.T) {
	k := NewKernel(WithSeed(42))
	a := k.Stream("alpha")
	b := k.Stream("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams alpha/beta produced %d identical values of 64", same)
	}
}

func TestStreamIsStableAcrossCreationOrder(t *testing.T) {
	a := NewKernel(WithSeed(7))
	b := NewKernel(WithSeed(7))
	// Create in different orders; named streams must not depend on order.
	a.Stream("x")
	av := a.Stream("y").Int63()
	b.Stream("y") // created first on b
	b.Stream("x")
	bv := b.streams["y"]
	_ = bv
	b2 := NewKernel(WithSeed(7))
	bv2 := b2.Stream("y").Int63()
	if av != bv2 {
		t.Fatal("stream value depends on creation order")
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	names := []string{"a", "b", "ab", "ba", "mobility", "churn", "workload"}
	seen := make(map[int64]string, len(names))
	for _, n := range names {
		s := deriveSeed(42, n)
		if prev, ok := seen[s]; ok {
			t.Fatalf("deriveSeed collision: %q and %q", prev, n)
		}
		seen[s] = n
	}
}

func TestDeriveSeedNonNegativeProperty(t *testing.T) {
	f := func(root int64, name string) bool {
		return deriveSeed(root, name) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventQueueOrderingProperty(t *testing.T) {
	// Property: regardless of the (bounded) delays scheduled, handlers
	// observe a non-decreasing clock.
	f := func(delays []uint16) bool {
		k := NewKernel()
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			k.After(time.Duration(d)*time.Millisecond, "p", func(kk *Kernel) {
				if kk.Now() < last {
					ok = false
				}
				last = kk.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsFiredCounter(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.After(time.Duration(i)*time.Second, "e", func(*Kernel) {})
	}
	e := k.After(time.Minute, "cancelled", func(*Kernel) {})
	k.Cancel(e)
	k.Run()
	if k.EventsFired() != 7 {
		t.Fatalf("EventsFired() = %d, want 7", k.EventsFired())
	}
}

func TestFreelistRecyclesFiredEvents(t *testing.T) {
	k := NewKernel()
	e1 := k.After(time.Second, "first", func(*Kernel) {})
	k.Run()
	if len(k.free) != 1 {
		t.Fatalf("freelist size = %d after fire, want 1", len(k.free))
	}
	if k.free[0].fn != nil {
		t.Fatal("recycled event retains its handler closure")
	}
	e2 := k.After(time.Second, "second", func(*Kernel) {})
	if e1 != e2 {
		t.Fatal("second scheduling did not reuse the fired event")
	}
	if e2.Fired() || e2.Cancelled() || e2.Label() != "second" {
		t.Fatalf("reused event not reset: fired=%v cancelled=%v label=%q",
			e2.Fired(), e2.Cancelled(), e2.Label())
	}
	k.Run()
	if k.EventsFired() != 2 {
		t.Fatalf("EventsFired() = %d, want 2", k.EventsFired())
	}
}

func TestFreelistCollectsCancelledEvents(t *testing.T) {
	k := NewKernel()
	e := k.After(time.Second, "doomed", func(*Kernel) { t.Fatal("cancelled event fired") })
	k.Cancel(e)
	k.Run()
	if len(k.free) != 1 {
		t.Fatalf("freelist size = %d after cancelled collection, want 1", len(k.free))
	}
	if !e.Cancelled() {
		t.Fatal("handle lost cancelled state before reuse")
	}
}

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	k := NewKernel()
	// Warm up: one fired event seeds the freelist.
	k.After(0, "warm", func(*Kernel) {})
	k.Run()
	fn := func(*Kernel) {}
	if avg := testing.AllocsPerRun(200, func() {
		k.After(0, "hot", fn)
		k.Run()
	}); avg != 0 {
		t.Errorf("steady-state schedule+fire allocates %.2f/op, want 0", avg)
	}
}

func TestNextEventAt(t *testing.T) {
	k := NewKernel()
	if _, ok := k.NextEventAt(); ok {
		t.Fatal("empty queue reported a next event")
	}
	k.After(5*time.Second, "b", func(*Kernel) {})
	k.After(2*time.Second, "a", func(*Kernel) {})
	if when, ok := k.NextEventAt(); !ok || when != 2*time.Second {
		t.Fatalf("next = (%v, %v), want (2s, true)", when, ok)
	}
	k.RunUntil(3 * time.Second)
	if when, ok := k.NextEventAt(); !ok || when != 5*time.Second {
		t.Fatalf("after draining: next = (%v, %v), want (5s, true)", when, ok)
	}
	k.RunUntil(10 * time.Second)
	if _, ok := k.NextEventAt(); ok {
		t.Fatal("drained queue reported a next event")
	}
}
