package sim

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// ShardedKernel runs S independent sub-kernels in conservative
// lookahead-bounded lockstep — the classic conservative parallel
// discrete-event scheme: virtual time advances in windows [T, T+L) where
// L is the lookahead (the minimum cross-shard propagation delay; for the
// MANET stack that is the per-hop forwarding base, since no message can
// cross a region boundary in less than one hop). Within a window each
// shard processes its own events with no synchronization at all; at the
// window barrier, cross-shard messages posted during the window are
// merged in the deterministic order (arrival time, sender shard, sender
// sequence) and scheduled onto their target kernels. Because every
// cross-shard send must carry at least the lookahead of delay, no
// message can arrive inside the window that produced it, so each shard's
// intra-window execution is causally closed — the merged execution is
// identical whether shards run serially or on parallel workers, and
// identical to a single serial kernel processing the union of events in
// timestamp order (given distinct timestamps; ties within one shard keep
// that shard's deterministic seq order).
//
// Mailbox entries are pooled per sender shard, extending the kernel's
// event freelist discipline: a steady cross-shard message flow reaches a
// fixed working set and stops allocating.
type ShardedKernel struct {
	shards    []*Kernel
	lookahead time.Duration
	horizon   time.Duration

	// outbox[s] is written only by shard s (inside its window, on its
	// worker goroutine under parallel execution); the barrier drains all
	// outboxes serially.
	outbox [][]*shardMsg
	pool   [][]*shardMsg
	seq    []uint64

	onBarrier []func(t time.Duration)
	parallel  bool

	delivered uint64
	barriers  uint64

	// Introspection. mailRecv is a function of the event stream and so
	// deterministic; busy/stall/hist are wall-clock measurements taken
	// around each shard's window and vary run to run. winDur is per-window
	// scratch, reused so steady-state windows do not allocate.
	mailRecv []uint64
	busy     []int64
	stall    []int64
	hist     [][shardStallBuckets]uint64
	winDur   []time.Duration
}

// shardMsg is one cross-shard message awaiting barrier delivery.
type shardMsg struct {
	when        time.Duration
	to          int
	label       string
	fn          Handler
	senderShard int
	senderSeq   uint64
}

// NewShardedKernel creates s sub-kernels with the given lookahead and
// horizon. Shard i is seeded with root+i·goldenGamma, so shard 0 of a
// one-shard kernel is seeded exactly like a serial kernel with the same
// root — the degenerate S=1 configuration reproduces serial runs
// byte-for-byte.
func NewShardedKernel(s int, lookahead, horizon time.Duration, seed int64) (*ShardedKernel, error) {
	if s <= 0 {
		return nil, fmt.Errorf("sim: need at least one shard, got %d", s)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: non-positive lookahead %v", lookahead)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("sim: non-positive horizon %v", horizon)
	}
	sk := &ShardedKernel{
		shards:    make([]*Kernel, s),
		lookahead: lookahead,
		horizon:   horizon,
		outbox:    make([][]*shardMsg, s),
		pool:      make([][]*shardMsg, s),
		seq:       make([]uint64, s),
		mailRecv:  make([]uint64, s),
		busy:      make([]int64, s),
		stall:     make([]int64, s),
		hist:      make([][shardStallBuckets]uint64, s),
		winDur:    make([]time.Duration, s),
	}
	const goldenGamma = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64
	for i := range sk.shards {
		sk.shards[i] = NewKernel(WithSeed(seed+int64(i)*goldenGamma), WithHorizon(horizon))
	}
	return sk, nil
}

// Shards returns the number of sub-kernels.
func (sk *ShardedKernel) Shards() int { return len(sk.shards) }

// Shard returns sub-kernel i. Schedule a shard's own events directly on
// it; only cross-shard communication must go through Send.
func (sk *ShardedKernel) Shard(i int) *Kernel { return sk.shards[i] }

// Lookahead returns the window length L.
func (sk *ShardedKernel) Lookahead() time.Duration { return sk.lookahead }

// SetParallel switches window execution onto one goroutine per shard.
// The merged execution is identical either way (the equivalence tests
// pin it); parallel mode exists for multi-core hosts.
func (sk *ShardedKernel) SetParallel(on bool) { sk.parallel = on }

// OnBarrier registers a hook called serially at every window barrier,
// after mail delivery, with the barrier time. Hooks run on the caller's
// goroutine in registration order.
func (sk *ShardedKernel) OnBarrier(fn func(t time.Duration)) {
	sk.onBarrier = append(sk.onBarrier, fn)
}

// Barriers returns how many window barriers have executed.
func (sk *ShardedKernel) Barriers() uint64 { return sk.barriers }

// Delivered returns how many cross-shard messages have been handed off.
func (sk *ShardedKernel) Delivered() uint64 { return sk.delivered }

// Send posts a cross-shard message from shard `from`'s current time plus
// delay. The delay must be at least the lookahead — that is the
// conservative-synchronization contract that makes windows causally
// closed. Safe to call from shard `from`'s event handlers under parallel
// execution (each sender owns its outbox and pool).
func (sk *ShardedKernel) Send(from, to int, delay time.Duration, label string, fn Handler) error {
	if from < 0 || from >= len(sk.shards) || to < 0 || to >= len(sk.shards) {
		return fmt.Errorf("sim: shard send %d->%d out of range", from, to)
	}
	if delay < sk.lookahead {
		return fmt.Errorf("sim: cross-shard delay %v below lookahead %v", delay, sk.lookahead)
	}
	var m *shardMsg
	if p := sk.pool[from]; len(p) > 0 {
		m = p[len(p)-1]
		sk.pool[from] = p[:len(p)-1]
	} else {
		m = &shardMsg{}
	}
	sk.seq[from]++
	*m = shardMsg{
		when:        sk.shards[from].Now() + delay,
		to:          to,
		label:       label,
		fn:          fn,
		senderShard: from,
		senderSeq:   sk.seq[from],
	}
	sk.outbox[from] = append(sk.outbox[from], m)
	return nil
}

// Run executes windows until the horizon, then returns the final time.
// When every shard is drained and no mail is in flight the remaining
// windows are skipped (sub-kernel clocks still land on the horizon).
func (sk *ShardedKernel) Run() time.Duration {
	for t := time.Duration(0); t < sk.horizon; {
		end := t + sk.lookahead
		if end > sk.horizon {
			end = sk.horizon
		}
		sk.step(end)
		t = end
		if sk.idle() {
			break
		}
	}
	for _, k := range sk.shards {
		k.RunUntil(sk.horizon)
	}
	return sk.horizon
}

// step advances every shard to the window end and runs the barrier.
func (sk *ShardedKernel) step(end time.Duration) {
	if sk.parallel && len(sk.shards) > 1 {
		var wg sync.WaitGroup
		for i, k := range sk.shards {
			wg.Add(1)
			go func(i int, k *Kernel) {
				defer wg.Done()
				t0 := time.Now()
				k.RunUntil(end)
				sk.winDur[i] = time.Since(t0)
			}(i, k)
		}
		wg.Wait()
	} else {
		for i, k := range sk.shards {
			t0 := time.Now()
			k.RunUntil(end)
			sk.winDur[i] = time.Since(t0)
		}
	}
	sk.recordWindow()
	sk.barrier(end)
}

// recordWindow folds one window's wall measurements into the per-shard
// accounting. A shard's stall is its gap to the window's slowest shard —
// the time it spends (under parallel execution: actually spends) waiting
// at the lockstep barrier. Under serial execution the same gap reads as
// the load imbalance the window would expose to parallel workers.
func (sk *ShardedKernel) recordWindow() {
	var slowest time.Duration
	for _, d := range sk.winDur {
		if d > slowest {
			slowest = d
		}
	}
	for i, d := range sk.winDur {
		sk.busy[i] += int64(d)
		st := int64(slowest - d)
		sk.stall[i] += st
		sk.hist[i][stallBucket(st)]++
	}
}

// stallBucket maps a stall to its log2 histogram bucket: bucket 0 holds
// zero-stall windows, bucket i>0 holds stalls in [2^(i-1), 2^i) ns, and
// the last bucket absorbs everything from ~1s up.
func stallBucket(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b >= shardStallBuckets {
		b = shardStallBuckets - 1
	}
	return b
}

// barrier merges the window's cross-shard mail in deterministic order
// (arrival time, sender shard, sender sequence), schedules it onto the
// target kernels, recycles the entries, and fires the barrier hooks.
func (sk *ShardedKernel) barrier(end time.Duration) {
	var mail []*shardMsg
	for s := range sk.outbox {
		mail = append(mail, sk.outbox[s]...)
		sk.outbox[s] = sk.outbox[s][:0]
	}
	if len(mail) > 0 {
		sort.Slice(mail, func(i, j int) bool {
			a, b := mail[i], mail[j]
			if a.when != b.when {
				return a.when < b.when
			}
			if a.senderShard != b.senderShard {
				return a.senderShard < b.senderShard
			}
			return a.senderSeq < b.senderSeq
		})
		for _, m := range mail {
			// Arrival is at or after the barrier (delay >= lookahead), so
			// the target has not passed it. At assigns the target kernel's
			// next seq in merge order, which is what makes the handoff
			// deterministic under any worker scheduling.
			if _, err := sk.shards[m.to].At(m.when, m.label, m.fn); err != nil {
				panic(fmt.Sprintf("sim: barrier delivery at %v to shard %d: %v", m.when, m.to, err))
			}
			sk.delivered++
			sk.mailRecv[m.to]++
			sender := m.senderShard
			*m = shardMsg{}
			sk.pool[sender] = append(sk.pool[sender], m)
		}
	}
	sk.barriers++
	for _, fn := range sk.onBarrier {
		fn(end)
	}
}

// idle reports whether every shard's queue is empty and no mail is
// buffered — nothing can create further work.
func (sk *ShardedKernel) idle() bool {
	for _, k := range sk.shards {
		if k.Pending() > 0 {
			return false
		}
	}
	for _, ob := range sk.outbox {
		if len(ob) > 0 {
			return false
		}
	}
	return true
}

// shardStallBuckets is the length of a shard's barrier-stall histogram
// (log2 buckets up to ~1s; see stallBucket).
const shardStallBuckets = 32

// ShardStats is one shard's run-introspection snapshot. EventsFired,
// MailSent, and MailRecv are functions of the event stream — identical
// across same-seed runs and safe for deterministic output. BusyNs,
// StallNs, and StallHist are wall-clock measurements that vary run to
// run: report them to stderr or bench files, never into byte-compared
// output.
type ShardStats struct {
	Shard       int
	EventsFired uint64
	MailSent    uint64
	MailRecv    uint64
	BusyNs      int64
	StallNs     int64
	StallHist   [shardStallBuckets]uint64
}

// ShardedStats aggregates per-shard snapshots with two imbalance gauges:
// max-over-mean ratios (1.0 = perfectly balanced). EventImbalance is
// deterministic (event counts); WallImbalance is wall-clock.
type ShardedStats struct {
	Shards         []ShardStats
	Barriers       uint64
	Delivered      uint64
	EventImbalance float64
	WallImbalance  float64
}

// Stats snapshots the kernel's run introspection. Call it after Run
// returns (or between windows); it must not race a parallel window.
func (sk *ShardedKernel) Stats() ShardedStats {
	st := ShardedStats{
		Shards:    make([]ShardStats, len(sk.shards)),
		Barriers:  sk.barriers,
		Delivered: sk.delivered,
	}
	var evMax, evSum, wallMax, wallSum float64
	for i, k := range sk.shards {
		s := ShardStats{
			Shard:       i,
			EventsFired: k.EventsFired(),
			MailSent:    sk.seq[i],
			MailRecv:    sk.mailRecv[i],
			BusyNs:      sk.busy[i],
			StallNs:     sk.stall[i],
			StallHist:   sk.hist[i],
		}
		st.Shards[i] = s
		evSum += float64(s.EventsFired)
		evMax = maxf(evMax, float64(s.EventsFired))
		wallSum += float64(s.BusyNs)
		wallMax = maxf(wallMax, float64(s.BusyNs))
	}
	st.EventImbalance = imbalance(evMax, evSum, len(sk.shards))
	st.WallImbalance = imbalance(wallMax, wallSum, len(sk.shards))
	return st
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// imbalance is max/mean, defined as 1 (balanced) when nothing happened.
func imbalance(max, sum float64, n int) float64 {
	if sum == 0 {
		return 1
	}
	return max * float64(n) / sum
}
