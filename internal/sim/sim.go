// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate every other simulation package builds on. It
// owns a virtual clock, a priority queue of pending events, and a family of
// deterministic random number streams derived from a single root seed.
// Nothing in this package (or in any package built on it) reads wall-clock
// time: two runs constructed with the same seed and the same schedule of
// events produce byte-identical results.
//
// Time is represented as time.Duration measured from the start of the
// simulation (t = 0). Events scheduled for the same instant fire in the
// order they were scheduled (FIFO tie-breaking via a monotonic sequence
// number), which keeps protocol traces stable across runs.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Handler is the callback invoked when an event fires. It receives the
// kernel so it can schedule follow-up events and read the current time.
type Handler func(k *Kernel)

// Event is a scheduled callback. The zero value is inert; events are
// created via Kernel.At / Kernel.After.
//
// Fired events are recycled through the kernel's freelist: a handle is
// valid for Cancel and state queries until its event fires (or, if
// cancelled, until the cancellation is collected from the queue). A
// handle retained past that point keeps reporting its final state only
// until the kernel reuses the event for a new scheduling — retaining
// handles across fire time is unsupported.
type Event struct {
	when   time.Duration
	seq    uint64
	fn     Handler
	label  string
	index  int // heap index, -1 once popped or cancelled
	fired  bool
	cancel bool
}

// When returns the virtual time at which the event is (or was) due.
func (e *Event) When() time.Duration { return e.when }

// Label returns the diagnostic label supplied at scheduling time.
func (e *Event) Label() string { return e.label }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's handler has run.
func (e *Event) Fired() bool { return e.fired }

// eventQueue implements heap.Interface ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated components run inside event handlers on the
// kernel's goroutine, which is the standard structure for deterministic
// network simulation (GloMoSim, ns-2 and friends are organised the same
// way).
type Kernel struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	root    int64
	streams map[string]*rand.Rand
	stopped bool
	horizon time.Duration
	events  uint64 // total events fired

	// free recycles fired (or collected-cancelled) events so steady-state
	// scheduling allocates nothing: the heap pops an event, its handler
	// runs, and the next At/After reuses the same struct.
	free []*Event
}

// Option configures a Kernel.
type Option func(*Kernel)

// WithSeed sets the root seed from which all named random streams derive.
// The default seed is 1.
func WithSeed(seed int64) Option {
	return func(k *Kernel) { k.root = seed }
}

// WithHorizon caps the virtual time of the run; events scheduled beyond the
// horizon are accepted but never fire. A zero horizon (the default) means
// "no cap": Run executes until the queue drains or Stop is called.
func WithHorizon(h time.Duration) Option {
	return func(k *Kernel) { k.horizon = h }
}

// NewKernel constructs an empty kernel at t = 0.
func NewKernel(opts ...Option) *Kernel {
	k := &Kernel{
		root:    1,
		streams: make(map[string]*rand.Rand),
	}
	for _, opt := range opts {
		opt(k)
	}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Horizon returns the configured run horizon (zero when uncapped).
func (k *Kernel) Horizon() time.Duration { return k.horizon }

// EventsFired returns the number of events whose handlers have executed.
func (k *Kernel) EventsFired() uint64 { return k.events }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// NextEventAt returns the due time of the earliest queued event, or false
// when the queue is empty. A real-time executive (internal/wire) uses it
// to sleep exactly until the next event instead of busy-polling; a
// cancelled head event may cause one early wake-up, which is harmless.
func (k *Kernel) NextEventAt() (time.Duration, bool) {
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].when, true
}

// ErrPastEvent is returned when an event is scheduled before Now.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at absolute virtual time t. The label appears in
// diagnostics only. Scheduling strictly in the past is rejected; scheduling
// at exactly Now is allowed and runs after the current handler returns.
func (k *Kernel) At(t time.Duration, label string, fn Handler) (*Event, error) {
	if t < k.now {
		return nil, fmt.Errorf("%w: at=%v now=%v label=%q", ErrPastEvent, t, k.now, label)
	}
	if fn == nil {
		return nil, fmt.Errorf("sim: nil handler for event %q", label)
	}
	e := k.acquire()
	e.when, e.seq, e.fn, e.label = t, k.seq, fn, label
	k.seq++
	heap.Push(&k.queue, e)
	return e, nil
}

// acquire returns a recycled event or a fresh one. State is reset here,
// at acquisition time — not at recycle time — so a stale handle keeps
// reporting its final fired/cancelled state until the struct is reused.
func (k *Kernel) acquire() *Event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		*e = Event{index: -1}
		return e
	}
	return &Event{index: -1}
}

// recycle returns a popped event to the freelist. The handler reference
// is dropped immediately so a parked event does not pin its closure (and
// everything the closure captures) until reuse.
func (k *Kernel) recycle(e *Event) {
	e.fn = nil
	k.free = append(k.free, e)
}

// After schedules fn to run d from now. Negative d is clamped to zero so
// callers can pass small jittered offsets without pre-checking the sign.
func (k *Kernel) After(d time.Duration, label string, fn Handler) *Event {
	if d < 0 {
		d = 0
	}
	e, err := k.At(k.now+d, label, fn)
	if err != nil {
		// Unreachable: now+d >= now and fn nil-ness is the only other
		// failure; guard it loudly anyway.
		panic(fmt.Sprintf("sim: After failed: %v", err))
	}
	return e
}

// Every schedules fn to run every period, starting one period from now,
// until the returned stop function is called or the run ends. Period must
// be positive.
func (k *Kernel) Every(period time.Duration, label string, fn Handler) (stop func(), err error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: non-positive period %v for %q", period, label)
	}
	stopped := false
	var tick Handler
	tick = func(kk *Kernel) {
		if stopped {
			return
		}
		fn(kk)
		if !stopped {
			kk.After(period, label, tick)
		}
	}
	k.After(period, label, tick)
	return func() { stopped = true }, nil
}

// Cancel marks the event so its handler will not run. Cancelling an event
// that already fired is a no-op and returns false.
func (k *Kernel) Cancel(e *Event) bool {
	if e == nil || e.fired || e.cancel {
		return false
	}
	e.cancel = true
	return true
}

// Stop halts Run after the current handler returns. Pending events remain
// queued (useful for inspecting what was outstanding).
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in order until the queue is empty, Stop is called, or
// the horizon is exceeded. It returns the final virtual time.
func (k *Kernel) Run() time.Duration {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancel {
			k.recycle(e)
			continue
		}
		if k.horizon > 0 && e.when > k.horizon {
			// Past the horizon: the run is over. Advance the clock to the
			// horizon so metrics normalised by elapsed time are exact. The
			// popped event is dropped un-fired and deliberately not
			// recycled: its handle must keep reporting Fired() == false.
			k.now = k.horizon
			return k.now
		}
		k.now = e.when
		e.fired = true
		k.events++
		e.fn(k)
		k.recycle(e)
	}
	if k.horizon > 0 && k.now < k.horizon && len(k.queue) == 0 {
		k.now = k.horizon
	}
	return k.now
}

// RunUntil executes events with due time <= t, then returns. It is the
// stepping primitive used by tests that interleave assertions with
// simulated time.
func (k *Kernel) RunUntil(t time.Duration) {
	for len(k.queue) > 0 && !k.stopped {
		e := k.queue[0]
		if e.when > t {
			break
		}
		heap.Pop(&k.queue)
		if e.cancel {
			k.recycle(e)
			continue
		}
		k.now = e.when
		e.fired = true
		k.events++
		e.fn(k)
		k.recycle(e)
	}
	if k.now < t {
		k.now = t
	}
}

// Stream returns the named deterministic random stream, creating it on
// first use. Streams are derived from the root seed and the name, so adding
// a new consumer of randomness does not perturb existing streams — a
// property that keeps A/B comparisons between strategies honest.
func (k *Kernel) Stream(name string) *rand.Rand {
	if r, ok := k.streams[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(deriveSeed(k.root, name)))
	k.streams[name] = r
	return r
}

// deriveSeed mixes the root seed with a name using FNV-1a so distinct names
// yield decorrelated streams.
func deriveSeed(root int64, name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(root>>(8*i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	if h == 0 {
		h = offset64
	}
	return int64(h & 0x7fffffffffffffff)
}
