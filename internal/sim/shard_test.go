package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

// shardTraceEntry is one observable side effect of the trace workload.
type shardTraceEntry struct {
	When  time.Duration
	Label string
}

// shardWorkload drives the same event pattern on either a ShardedKernel
// or a single reference Kernel: per-shard ticker chains with distinct
// offsets and periods, every third tick mailing the next shard, and each
// mail arrival mailing one hop further (bounded depth). All effects are
// logged per logical shard; traces[i] is only ever appended from shard
// i's handlers, so parallel window execution needs no locking.
const (
	shardWlShards    = 4
	shardWlLookahead = 2 * time.Millisecond
	shardWlHorizon   = 400 * time.Millisecond
)

func shardWlTickPeriod(i int) time.Duration {
	return 9973*time.Microsecond + time.Duration(i)*131*time.Microsecond
}

func shardWlMailDelay(i, n int) time.Duration {
	return shardWlLookahead + time.Duration(i+1)*time.Microsecond + time.Duration(n%5)*11*time.Microsecond
}

// runShardedTrace runs the workload on a ShardedKernel and returns the
// per-shard traces plus the kernel (for counter assertions).
func runShardedTrace(t *testing.T, parallel bool) ([][]shardTraceEntry, *ShardedKernel) {
	t.Helper()
	sk, err := NewShardedKernel(shardWlShards, shardWlLookahead, shardWlHorizon, 42)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	sk.SetParallel(parallel)
	traces := make([][]shardTraceEntry, shardWlShards)

	var mailFn func(at, depth int, tag string) Handler
	mailFn = func(at, depth int, tag string) Handler {
		return func(k *Kernel) {
			traces[at] = append(traces[at], shardTraceEntry{k.Now(), tag})
			if depth > 0 {
				next := (at + 1) % shardWlShards
				if err := sk.Send(at, next, shardWlMailDelay(at, depth), tag+">", mailFn(next, depth-1, tag+">")); err != nil {
					t.Errorf("relay send: %v", err)
				}
			}
		}
	}

	for i := 0; i < shardWlShards; i++ {
		i := i
		var tick func(n int) Handler
		tick = func(n int) Handler {
			return func(k *Kernel) {
				traces[i] = append(traces[i], shardTraceEntry{k.Now(), fmt.Sprintf("tick.%d.%d", i, n)})
				if n%3 == 0 {
					next := (i + 1) % shardWlShards
					tag := fmt.Sprintf("mail.%d.%d", i, n)
					if err := sk.Send(i, next, shardWlMailDelay(i, n), tag, mailFn(next, 2, tag)); err != nil {
						t.Errorf("tick send: %v", err)
					}
				}
				k.After(shardWlTickPeriod(i), "tick", tick(n+1))
			}
		}
		start := time.Duration(i+1) * 13 * time.Microsecond
		if _, err := sk.Shard(i).At(start, "tick", tick(0)); err != nil {
			t.Fatalf("seed shard %d: %v", i, err)
		}
	}
	if got := sk.Run(); got != shardWlHorizon {
		t.Fatalf("Run returned %v, want %v", got, shardWlHorizon)
	}
	return traces, sk
}

// runSingleTrace runs the identical workload on one serial kernel; Send
// becomes a plain At(now+delay) on the same kernel.
func runSingleTrace(t *testing.T) [][]shardTraceEntry {
	t.Helper()
	k := NewKernel(WithSeed(42), WithHorizon(shardWlHorizon))
	traces := make([][]shardTraceEntry, shardWlShards)

	var mailFn func(at, depth int, tag string) Handler
	mailFn = func(at, depth int, tag string) Handler {
		return func(k *Kernel) {
			traces[at] = append(traces[at], shardTraceEntry{k.Now(), tag})
			if depth > 0 {
				next := (at + 1) % shardWlShards
				k.After(shardWlMailDelay(at, depth), tag+">", mailFn(next, depth-1, tag+">"))
			}
		}
	}

	for i := 0; i < shardWlShards; i++ {
		i := i
		var tick func(n int) Handler
		tick = func(n int) Handler {
			return func(k *Kernel) {
				traces[i] = append(traces[i], shardTraceEntry{k.Now(), fmt.Sprintf("tick.%d.%d", i, n)})
				if n%3 == 0 {
					next := (i + 1) % shardWlShards
					tag := fmt.Sprintf("mail.%d.%d", i, n)
					k.After(shardWlMailDelay(i, n), tag, mailFn(next, 2, tag))
				}
				k.After(shardWlTickPeriod(i), "tick", tick(n+1))
			}
		}
		start := time.Duration(i+1) * 13 * time.Microsecond
		if _, err := k.At(start, "tick", tick(0)); err != nil {
			t.Fatalf("seed shard %d: %v", i, err)
		}
	}
	k.Run()
	return traces
}

// mergeShardTraces flattens per-shard traces into one (when, label)
// ordered sequence. The workload's offsets and per-shard periods keep
// timestamps distinct, so this order is total and scheduler-independent.
func mergeShardTraces(traces [][]shardTraceEntry) []shardTraceEntry {
	var all []shardTraceEntry
	for _, tr := range traces {
		all = append(all, tr...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].When != all[j].When {
			return all[i].When < all[j].When
		}
		return all[i].Label < all[j].Label
	})
	return all
}

// TestShardedMatchesSerialKernel is the sharded-kernel correctness gate:
// the merged execution trace of the sharded kernel (serial workers and
// parallel workers) is identical to a single serial kernel running the
// union of events.
func TestShardedMatchesSerialKernel(t *testing.T) {
	serialTr, sk := runShardedTrace(t, false)
	parallelTr, _ := runShardedTrace(t, true)
	singleTr := runSingleTrace(t)

	if sk.Delivered() == 0 {
		t.Fatal("workload delivered no cross-shard mail; test is vacuous")
	}
	if sk.Barriers() == 0 {
		t.Fatal("no barriers executed")
	}

	ref := mergeShardTraces(singleTr)
	if len(ref) == 0 {
		t.Fatal("reference trace empty")
	}
	for i := 1; i < len(ref); i++ {
		if ref[i].When == ref[i-1].When {
			t.Fatalf("workload produced duplicate timestamp %v (%q / %q); trace order not total",
				ref[i].When, ref[i-1].Label, ref[i].Label)
		}
	}
	if got := mergeShardTraces(serialTr); !reflect.DeepEqual(got, ref) {
		t.Fatalf("sharded(serial) trace diverges from single kernel: %d vs %d entries", len(got), len(ref))
	}
	if got := mergeShardTraces(parallelTr); !reflect.DeepEqual(got, ref) {
		t.Fatalf("sharded(parallel) trace diverges from single kernel: %d vs %d entries", len(got), len(ref))
	}
}

// TestShardedRunTwiceIdentical pins run-to-run determinism including
// per-shard event order (not just the merged view).
func TestShardedRunTwiceIdentical(t *testing.T) {
	a, _ := runShardedTrace(t, false)
	b, _ := runShardedTrace(t, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("per-shard traces differ between serial and parallel runs")
	}
}

// TestShardedSendValidation covers the conservative-synchronization
// contract: sub-lookahead delays and bad shard indices are rejected.
func TestShardedSendValidation(t *testing.T) {
	sk, err := NewShardedKernel(2, shardWlLookahead, time.Second, 1)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	nop := func(*Kernel) {}
	if err := sk.Send(0, 1, shardWlLookahead-time.Nanosecond, "x", nop); err == nil {
		t.Error("sub-lookahead delay accepted")
	}
	if err := sk.Send(0, 2, shardWlLookahead, "x", nop); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := sk.Send(-1, 0, shardWlLookahead, "x", nop); err == nil {
		t.Error("out-of-range sender accepted")
	}
	if err := sk.Send(0, 1, shardWlLookahead, "x", nop); err != nil {
		t.Errorf("legal send rejected: %v", err)
	}
	if _, err := NewShardedKernel(0, shardWlLookahead, time.Second, 1); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewShardedKernel(2, 0, time.Second, 1); err == nil {
		t.Error("zero lookahead accepted")
	}
	if _, err := NewShardedKernel(2, shardWlLookahead, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestShardedMailboxPooling asserts delivered messages are recycled: the
// pool holds entries after a run, and their count matches deliveries
// minus what is still checked out (nothing, post-run).
func TestShardedMailboxPooling(t *testing.T) {
	traces, sk := runShardedTrace(t, false)
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	pooled := 0
	for _, p := range sk.pool {
		pooled += len(p)
	}
	if pooled == 0 {
		t.Fatal("no mailbox entries recycled")
	}
	if uint64(pooled) > sk.Delivered() {
		t.Fatalf("pool holds %d entries but only %d were ever delivered", pooled, sk.Delivered())
	}
}

// TestShardedIdleEarlyExit: with no work queued the run must not grind
// through horizon/lookahead empty windows.
func TestShardedIdleEarlyExit(t *testing.T) {
	sk, err := NewShardedKernel(3, time.Millisecond, time.Hour, 9)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	if got := sk.Run(); got != time.Hour {
		t.Fatalf("Run returned %v", got)
	}
	if sk.Barriers() > 2 {
		t.Fatalf("idle run executed %d barriers; early exit broken", sk.Barriers())
	}
	for i := 0; i < sk.Shards(); i++ {
		if now := sk.Shard(i).Now(); now != time.Hour {
			t.Fatalf("shard %d clock %v, want horizon", i, now)
		}
	}
}

// TestShardedSingleShardDegenerate: S=1 must behave exactly like a plain
// kernel with the same seed (same stream values, same event times).
func TestShardedSingleShardDegenerate(t *testing.T) {
	sk, err := NewShardedKernel(1, time.Millisecond, 50*time.Millisecond, 77)
	if err != nil {
		t.Fatalf("NewShardedKernel: %v", err)
	}
	ref := NewKernel(WithSeed(77), WithHorizon(50*time.Millisecond))

	if a, b := sk.Shard(0).Stream("x").Uint64(), ref.Stream("x").Uint64(); a != b {
		t.Fatalf("shard 0 stream diverges from serial kernel: %d vs %d", a, b)
	}

	var got, want []shardTraceEntry
	chain := func(out *[]shardTraceEntry) Handler {
		var f func(n int) Handler
		f = func(n int) Handler {
			return func(k *Kernel) {
				*out = append(*out, shardTraceEntry{k.Now(), fmt.Sprintf("e%d", n)})
				if n < 20 {
					k.After(7*time.Millisecond, "e", f(n+1))
				}
			}
		}
		return f(0)
	}
	if _, err := sk.Shard(0).At(time.Millisecond, "e", chain(&got)); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.At(time.Millisecond, "e", chain(&want)); err != nil {
		t.Fatal(err)
	}
	sk.Run()
	ref.Run()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-shard trace diverges: %v vs %v", got, want)
	}
}
