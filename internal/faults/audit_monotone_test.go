package faults

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/sim"
)

func copyOf(id data.ItemID, v data.Version) data.Copy {
	return data.Copy{ID: id, Version: v, Value: data.ValueFor(id, v)}
}

// sweepAuditor builds the minimal auditor state the monotone sweep
// touches: one store, empty watermarks, no engine.
func sweepAuditor(s *cache.Store) *Auditor {
	return &Auditor{
		stores:     []*cache.Store{s},
		watermarks: []map[data.ItemID]watermark{make(map[data.ItemID]watermark)},
	}
}

// Replacement churn may legitimately regress the version a node holds:
// evicting v1 and later re-admitting v0 from a stale peer starts a new
// residency (fresh StoredAt) and must NOT trip the monotone invariant.
func TestMonotoneAllowsRegressionAcrossResidencies(t *testing.T) {
	s, err := cache.NewStore(2)
	if err != nil {
		t.Fatal(err)
	}
	a := sweepAuditor(s)
	k := sim.NewKernel()

	if err := s.Put(copyOf(1, 1), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	a.sweep(k)

	// Evict (here: explicit remove) and re-learn an older copy later.
	s.Remove(1)
	if err := s.Put(copyOf(1, 0), 400*time.Second); err != nil {
		t.Fatal(err)
	}
	a.sweep(k)

	if a.rep.MonotoneViolations != 0 {
		t.Fatalf("cross-residency rediscovery flagged as violation: %s", &a.rep)
	}
	// And a same-version refresh (which keeps StoredAt) stays silent too.
	if _, _, err := s.PutEvict(copyOf(1, 0), 500*time.Second); err != nil {
		t.Fatal(err)
	}
	a.sweep(k)
	if a.rep.MonotoneViolations != 0 {
		t.Fatalf("same-version refresh flagged as violation: %s", &a.rep)
	}
}

// An in-place overwrite — version drops while the residency (StoredAt)
// is unchanged — can only be a store bug and must still be caught. The
// healthy store rejects regressions itself, so the test re-admits the
// older copy at the original admission instant to forge an identical
// StoredAt.
func TestMonotoneCatchesInPlaceRegression(t *testing.T) {
	s, err := cache.NewStore(2)
	if err != nil {
		t.Fatal(err)
	}
	a := sweepAuditor(s)
	k := sim.NewKernel()

	if err := s.Put(copyOf(1, 2), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	a.sweep(k)

	s.Remove(1)
	if err := s.Put(copyOf(1, 1), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	a.sweep(k)

	if a.rep.MonotoneViolations != 1 {
		t.Fatalf("in-place regression not caught: %s", &a.rep)
	}
}
