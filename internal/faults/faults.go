// Package faults is the deterministic fault-injection plane: it scripts
// failure campaigns — network partitions, bursty Gilbert–Elliott loss,
// node crash/restart with state loss, targeted relay assassination, and
// message duplication/reordering — against a running simulation, and
// audits the consistency invariants the protocol claims to preserve
// through them (§4.5's reconnect repair, §4.3's re-election).
//
// Everything is seed-reproducible: fault schedules are fixed timestamps,
// the loss model draws from its own named kernel stream, and a campaign
// with no faults configured leaves the simulation byte-identical to one
// without the plane installed (no extra RNG draws, no extra events).
package faults

import (
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

// Partition splits the field into islands for [Start, End): links whose
// endpoints sit in different islands drop every frame (cause
// "partition"), while intra-island traffic flows normally. At End the
// partition heals and the repair clock starts.
type Partition struct {
	Start time.Duration
	End   time.Duration
	// Islands lists the node groups. Nodes appearing in no group belong
	// to island 0 (the first group's side). A single listed group
	// therefore models "this set is cut off from everyone else".
	Islands [][]int
}

// GilbertParams parameterise the two-state Gilbert–Elliott loss model:
// a Markov chain alternating between a Good and a Bad state, with a
// per-reception transition draw and a state-dependent loss probability.
// Mean burst length is 1/PBadToGood receptions; stationary loss is
// (πG·LossGood + πB·LossBad) with πB = PGoodToBad/(PGoodToBad+PBadToGood).
type GilbertParams struct {
	PGoodToBad float64 // per-reception transition probability Good → Bad
	PBadToGood float64 // per-reception transition probability Bad → Good
	LossGood   float64 // loss probability while Good (often near 0)
	LossBad    float64 // loss probability while Bad (often near 1)
}

// Validate reports parameter errors.
func (g GilbertParams) Validate() error {
	for name, p := range map[string]float64{
		"PGoodToBad": g.PGoodToBad, "PBadToGood": g.PBadToGood,
		"LossGood": g.LossGood, "LossBad": g.LossBad,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: gilbert %s=%g outside [0,1]", name, p)
		}
	}
	return nil
}

// Crash schedules one node crash. Unlike a churn disconnection — which
// preserves cache contents, relay registrations and coefficient history
// across the gap — a crash wipes all of it: the node restarts cold.
type Crash struct {
	At   time.Duration
	Node int
	// RestartAfter is how long the node stays down; zero means it never
	// comes back.
	RestartAfter time.Duration
}

// Assassination kills the relay peers currently registered for Item at
// the scheduled instant — the targeted §4.3 re-election stress: the
// relay tier must rebuild from the surviving candidate pool.
type Assassination struct {
	At   time.Duration
	Item data.ItemID
	// Count bounds how many of the item's current relays die (ascending
	// node id); zero means all of them.
	Count int
	// RestartAfter is how long the victims stay down; zero means forever.
	RestartAfter time.Duration
}

// Config is one fault campaign. The zero value injects nothing and costs
// nothing: installing it changes neither the event schedule nor any RNG
// stream.
type Config struct {
	Partitions     []Partition
	Loss           *GilbertParams // nil: keep the uniform netsim LossRate
	Crashes        []Crash
	Assassinations []Assassination
	// DupProb duplicates a delivered unicast with this probability;
	// ReorderMax delays each final-hop delivery by a uniform random
	// amount in [0, ReorderMax), letting later sends overtake it.
	DupProb    float64
	ReorderMax time.Duration
	// RepairWindow bounds the heal-convergence invariant: after every
	// partition heal, registered relays must hold the master's
	// heal-time version within this window. Zero disables the check.
	RepairWindow time.Duration
	// StrongStaleBudget is the tolerated fraction of answers that were
	// stale at strong level. RPCC's SC guarantee is TTR-window
	// approximate even fault-free, so the invariant audited is "the
	// stale-SC rate stays within budget", not strictly zero; torn and
	// future answers are always strictly zero. Zero means strict.
	StrongStaleBudget float64
}

// Enabled reports whether the campaign injects anything at all.
func (c Config) Enabled() bool {
	return len(c.Partitions) > 0 || c.Loss != nil || len(c.Crashes) > 0 ||
		len(c.Assassinations) > 0 || c.DupProb > 0 || c.ReorderMax > 0
}

// Validate reports configuration errors. n is the node count.
func (c Config) Validate(n int) error {
	if n <= 0 {
		return fmt.Errorf("faults: need at least one node, got %d", n)
	}
	parts := append([]Partition(nil), c.Partitions...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Start < parts[j].Start })
	for i, p := range parts {
		if p.Start < 0 || p.End <= p.Start {
			return fmt.Errorf("faults: partition %d window [%v, %v) is empty or negative", i, p.Start, p.End)
		}
		if i > 0 && parts[i-1].End > p.Start {
			// Overlapping partitions would need island composition; the
			// plane keeps one island map, so reject them outright.
			return fmt.Errorf("faults: partitions overlap at %v", p.Start)
		}
		if len(p.Islands) == 0 {
			return fmt.Errorf("faults: partition %d lists no islands", i)
		}
		seen := make(map[int]bool)
		for _, g := range p.Islands {
			for _, nd := range g {
				if nd < 0 || nd >= n {
					return fmt.Errorf("faults: partition %d node %d out of range", i, nd)
				}
				if seen[nd] {
					return fmt.Errorf("faults: partition %d lists node %d twice", i, nd)
				}
				seen[nd] = true
			}
		}
	}
	if c.Loss != nil {
		if err := c.Loss.Validate(); err != nil {
			return err
		}
	}
	for i, cr := range c.Crashes {
		if cr.Node < 0 || cr.Node >= n {
			return fmt.Errorf("faults: crash %d node %d out of range", i, cr.Node)
		}
		if cr.At < 0 || cr.RestartAfter < 0 {
			return fmt.Errorf("faults: crash %d has negative timing", i)
		}
	}
	for i, a := range c.Assassinations {
		if a.At < 0 || a.RestartAfter < 0 {
			return fmt.Errorf("faults: assassination %d has negative timing", i)
		}
		if a.Count < 0 {
			return fmt.Errorf("faults: assassination %d negative count", i)
		}
		if a.Item < 0 || int(a.Item) >= n {
			return fmt.Errorf("faults: assassination %d item %v out of range", i, a.Item)
		}
	}
	if c.DupProb < 0 || c.DupProb >= 1 {
		return fmt.Errorf("faults: duplication probability %g outside [0,1)", c.DupProb)
	}
	if c.ReorderMax < 0 {
		return fmt.Errorf("faults: negative reorder delay %v", c.ReorderMax)
	}
	if c.RepairWindow < 0 {
		return fmt.Errorf("faults: negative repair window %v", c.RepairWindow)
	}
	if c.StrongStaleBudget < 0 || c.StrongStaleBudget > 1 {
		return fmt.Errorf("faults: strong-stale budget %g outside [0,1]", c.StrongStaleBudget)
	}
	return nil
}
