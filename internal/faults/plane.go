package faults

import (
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// Env is the running simulation the plane injects into. Engine may be
// nil for non-RPCC strategies; crash then wipes only the cache store,
// and assassinations (which need the relay table) are rejected.
type Env struct {
	Net    *netsim.Network
	Churn  *churn.Process
	Stores []*cache.Store
	Engine *core.Engine
	Hub    *telemetry.Hub
}

// Plane schedules and enforces one fault campaign. Build with NewPlane,
// wire with Install before the kernel runs.
type Plane struct {
	cfg Config
	env Env
	// island holds each node's current island id; all-zero (or inactive)
	// means no partition is in force. The netsim link filter reads it on
	// every in-flight frame, so membership checks must be O(1).
	island  []int32
	active  bool
	crashed []bool
	onHeal  []func(k *sim.Kernel, p Partition)
	onCrash []func(node int)
}

// NewPlane validates the campaign against the environment.
func NewPlane(cfg Config, env Env) (*Plane, error) {
	if env.Net == nil || env.Churn == nil {
		return nil, fmt.Errorf("faults: plane needs a network and a churn process")
	}
	n := env.Net.Len()
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	if len(cfg.Assassinations) > 0 && env.Engine == nil {
		return nil, fmt.Errorf("faults: relay assassination requires the RPCC engine")
	}
	if len(env.Stores) != 0 && len(env.Stores) != n {
		return nil, fmt.Errorf("faults: %d stores for %d nodes", len(env.Stores), n)
	}
	return &Plane{
		cfg:     cfg,
		env:     env,
		island:  make([]int32, n),
		crashed: make([]bool, n),
	}, nil
}

// OnHeal registers a callback fired at every partition heal (the
// invariant auditor hangs its convergence check here). Call before
// Install.
func (p *Plane) OnHeal(f func(k *sim.Kernel, part Partition)) {
	if f != nil {
		p.onHeal = append(p.onHeal, f)
	}
}

// OnCrash registers a callback fired at every crash (the auditor resets
// its per-node version watermarks there). Call before Install.
func (p *Plane) OnCrash(f func(node int)) {
	if f != nil {
		p.onCrash = append(p.onCrash, f)
	}
}

// Install wires the loss model and delivery-fault knobs into the network
// and schedules every partition, crash and assassination on the kernel.
// A zero-value campaign installs nothing at all.
func (p *Plane) Install(k *sim.Kernel) error {
	if p.cfg.Loss != nil {
		ge, err := NewGilbertElliott(*p.cfg.Loss, k.Stream("faults.gilbert"))
		if err != nil {
			return err
		}
		p.env.Net.SetLossModel(ge)
	}
	if p.cfg.DupProb > 0 || p.cfg.ReorderMax > 0 {
		if err := p.env.Net.SetDeliveryFaults(p.cfg.DupProb, p.cfg.ReorderMax); err != nil {
			return err
		}
	}
	if len(p.cfg.Partitions) > 0 {
		p.env.Net.SetLinkFilter(p.linkCut)
		for _, part := range p.cfg.Partitions {
			part := part
			if _, err := k.At(part.Start, "faults.partition.split", func(kk *sim.Kernel) {
				p.split(kk, part)
			}); err != nil {
				return err
			}
			if _, err := k.At(part.End, "faults.partition.heal", func(kk *sim.Kernel) {
				p.heal(kk, part)
			}); err != nil {
				return err
			}
		}
	}
	for _, c := range p.cfg.Crashes {
		c := c
		if _, err := k.At(c.At, "faults.crash", func(kk *sim.Kernel) {
			p.crash(kk, c.Node, c.RestartAfter)
		}); err != nil {
			return err
		}
	}
	for _, a := range p.cfg.Assassinations {
		a := a
		if _, err := k.At(a.At, "faults.assassinate", func(kk *sim.Kernel) {
			p.assassinate(kk, a)
		}); err != nil {
			return err
		}
	}
	return nil
}

// linkCut is the netsim.LinkFilter: a frame in flight between islands is
// severed. It runs on every hop while a partition is active, so it is a
// pair of array reads.
func (p *Plane) linkCut(from, to int) bool {
	return p.active && p.island[from] != p.island[to]
}

func (p *Plane) split(k *sim.Kernel, part Partition) {
	for i := range p.island {
		p.island[i] = 0
	}
	var affected []int
	for gi, group := range part.Islands {
		for _, nd := range group {
			// Island ids start at 1: id 0 is the mainland (every node not
			// named in any group), so a single listed island really is cut
			// off from the rest.
			p.island[nd] = int32(gi + 1)
			affected = append(affected, nd)
		}
	}
	p.active = true
	sort.Ints(affected)
	p.env.Hub.FaultEvent(k.Now(), telemetry.FaultPartitionSplit, affected, -1,
		fmt.Sprintf("islands=%d", len(part.Islands)))
}

func (p *Plane) heal(k *sim.Kernel, part Partition) {
	for i := range p.island {
		p.island[i] = 0
	}
	p.active = false
	var affected []int
	for _, group := range part.Islands {
		affected = append(affected, group...)
	}
	sort.Ints(affected)
	p.env.Hub.FaultEvent(k.Now(), telemetry.FaultPartitionHeal, affected, -1, "")
	for _, f := range p.onHeal {
		f(k, part)
	}
}

// crash takes the node down (frozen against churn so nothing flips it
// back), wipes its volatile state, and optionally schedules the restart.
func (p *Plane) crash(k *sim.Kernel, node int, restartAfter time.Duration) {
	if p.crashed[node] {
		return // already down: a second crash changes nothing
	}
	p.crashed[node] = true
	// Disconnect first so listeners (netsim teardown) observe the node
	// going dark, then wipe: the order a real power loss has.
	_ = p.env.Churn.SetFrozen(node, true)
	_ = p.env.Churn.ForceState(k, node, churn.StateDisconnected)
	if p.env.Engine != nil {
		if err := p.env.Engine.Crash(k, node); err != nil {
			panic(fmt.Sprintf("faults: crash wipe failed: %v", err))
		}
	} else if len(p.env.Stores) > 0 {
		p.env.Stores[node].Clear()
	}
	for _, f := range p.onCrash {
		f(node)
	}
	p.env.Hub.FaultEvent(k.Now(), telemetry.FaultCrash, []int{node}, -1, "")
	if restartAfter > 0 {
		k.After(restartAfter, "faults.restart", func(kk *sim.Kernel) {
			p.restart(kk, node)
		})
	}
}

func (p *Plane) restart(k *sim.Kernel, node int) {
	if !p.crashed[node] {
		return
	}
	p.crashed[node] = false
	_ = p.env.Churn.SetFrozen(node, false)
	_ = p.env.Churn.ForceState(k, node, churn.StateConnected)
	p.env.Hub.FaultEvent(k.Now(), telemetry.FaultRestart, []int{node}, -1, "")
}

// assassinate kills the item's currently registered relay peers — the
// lowest Count node ids, or all of them when Count is zero.
func (p *Plane) assassinate(k *sim.Kernel, a Assassination) {
	targets := p.env.Engine.RelaysFor(a.Item)
	if a.Count > 0 && len(targets) > a.Count {
		targets = targets[:a.Count]
	}
	p.env.Hub.FaultEvent(k.Now(), telemetry.FaultAssassination, targets, int(a.Item),
		fmt.Sprintf("relays=%d", len(targets)))
	for _, nd := range targets {
		p.crash(k, nd, a.RestartAfter)
	}
}

// Crashed reports whether node is currently down due to a fault.
func (p *Plane) Crashed(node int) bool {
	return node >= 0 && node < len(p.crashed) && p.crashed[node]
}
