package faults

import (
	"strings"
	"testing"
	"time"
)

func validCampaign() Config {
	return Config{
		Partitions: []Partition{
			{Start: 5 * time.Minute, End: 10 * time.Minute, Islands: [][]int{{0, 1}, {2, 3}}},
		},
		Loss:           &GilbertParams{PGoodToBad: 0.05, PBadToGood: 0.3, LossGood: 0.01, LossBad: 0.9},
		Crashes:        []Crash{{At: 2 * time.Minute, Node: 4, RestartAfter: time.Minute}},
		Assassinations: []Assassination{{At: 20 * time.Minute, Item: 0, Count: 1}},
		DupProb:        0.01,
		ReorderMax:     20 * time.Millisecond,
		RepairWindow:   3 * time.Minute,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (validCampaign()).Validate(8); err != nil {
		t.Fatalf("valid campaign rejected: %v", err)
	}
	if err := (Config{}).Validate(8); err != nil {
		t.Fatalf("zero campaign rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"empty window", func(c *Config) { c.Partitions[0].End = c.Partitions[0].Start }, "empty"},
		{"negative start", func(c *Config) { c.Partitions[0].Start = -time.Second }, "negative"},
		{"no islands", func(c *Config) { c.Partitions[0].Islands = nil }, "no islands"},
		{"node out of range", func(c *Config) { c.Partitions[0].Islands[0][0] = 8 }, "out of range"},
		{"node twice", func(c *Config) { c.Partitions[0].Islands[1][0] = 0 }, "twice"},
		{"overlap", func(c *Config) {
			c.Partitions = append(c.Partitions, Partition{
				Start: 7 * time.Minute, End: 12 * time.Minute, Islands: [][]int{{5}},
			})
		}, "overlap"},
		{"gilbert out of range", func(c *Config) { c.Loss.LossBad = 1.5 }, "outside [0,1]"},
		{"crash node", func(c *Config) { c.Crashes[0].Node = -1 }, "out of range"},
		{"crash timing", func(c *Config) { c.Crashes[0].RestartAfter = -time.Second }, "negative timing"},
		{"assassination item", func(c *Config) { c.Assassinations[0].Item = 99 }, "out of range"},
		{"assassination count", func(c *Config) { c.Assassinations[0].Count = -1 }, "negative count"},
		{"dup prob", func(c *Config) { c.DupProb = 1 }, "outside [0,1)"},
		{"reorder", func(c *Config) { c.ReorderMax = -time.Second }, "negative reorder"},
		{"repair window", func(c *Config) { c.RepairWindow = -time.Second }, "negative repair"},
	}
	for _, tc := range cases {
		cfg := validCampaign()
		tc.mut(&cfg)
		err := cfg.Validate(8)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero campaign claims to be enabled")
	}
	if (Config{RepairWindow: time.Minute}).Enabled() {
		t.Fatal("a bare audit window is not an injection")
	}
	for name, c := range map[string]Config{
		"partition":     {Partitions: []Partition{{End: time.Second, Islands: [][]int{{0}}}}},
		"loss":          {Loss: &GilbertParams{}},
		"crash":         {Crashes: []Crash{{}}},
		"assassination": {Assassinations: []Assassination{{}}},
		"dup":           {DupProb: 0.1},
		"reorder":       {ReorderMax: time.Millisecond},
	} {
		if !c.Enabled() {
			t.Errorf("%s campaign claims to be disabled", name)
		}
	}
}

func TestAuditorConfigValidate(t *testing.T) {
	good := AuditorConfig{SweepEvery: 5 * time.Second, RepairWindow: 3 * time.Minute, TTN: 2 * time.Minute, MaxRepairAttempts: 6}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid auditor config rejected: %v", err)
	}
	bad := []AuditorConfig{
		{SweepEvery: 0},
		{SweepEvery: time.Second, RepairWindow: -1},
		{SweepEvery: time.Second, RepairWindow: time.Minute, TTN: 0},
		{SweepEvery: time.Second, MaxRepairAttempts: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, c)
		}
	}
}

func TestReportVerdict(t *testing.T) {
	var r Report
	if !r.Passed() || !strings.HasPrefix(r.String(), "PASS") {
		t.Fatalf("clean report should pass: %s", r)
	}
	for name, mut := range map[string]func(*Report){
		"strong":   func(r *Report) { r.StrongViolations = 1 },
		"torn":     func(r *Report) { r.TornAnswers = 1 },
		"future":   func(r *Report) { r.FutureAnswers = 1 },
		"monotone": func(r *Report) { r.MonotoneViolations = 1 },
		"heal":     func(r *Report) { r.HealViolations = 1 },
		"retry":    func(r *Report) { r.RetryViolations = 1 },
	} {
		var r Report
		mut(&r)
		if r.Passed() || !strings.HasPrefix(r.String(), "FAIL") {
			t.Errorf("%s violation should fail the report: %s", name, r)
		}
	}
	r = Report{HealsSkipped: 2, HealsChecked: 1, Sweeps: 10}
	if !r.Passed() {
		t.Fatal("skipped heals are not violations")
	}
}
