package faults

import (
	"math/rand"
	"testing"
)

func TestGilbertElliottValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGilbertElliott(GilbertParams{PGoodToBad: 2}, rng); err == nil {
		t.Fatal("out-of-range transition probability accepted")
	}
	if _, err := NewGilbertElliott(GilbertParams{}, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

// Same seed, same parameters: identical loss sequences — the property the
// whole plane's reproducibility rests on.
func TestGilbertElliottDeterminism(t *testing.T) {
	p := GilbertParams{PGoodToBad: 0.1, PBadToGood: 0.4, LossGood: 0.02, LossBad: 0.8}
	a, err := NewGilbertElliott(p, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGilbertElliott(p, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if a.Lost() != b.Lost() {
			t.Fatalf("sequences diverge at reception %d", i)
		}
	}
}

// With LossGood=0 and LossBad=1, losses happen exactly while the chain is
// Bad, so loss-run statistics are burst statistics: the mean run length
// must sit near 1/PBadToGood, and the long-run loss rate near the
// stationary Bad occupancy.
func TestGilbertElliottBurstiness(t *testing.T) {
	p := GilbertParams{PGoodToBad: 0.02, PBadToGood: 0.25, LossGood: 0, LossBad: 1}
	g, err := NewGilbertElliott(p, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	losses, bursts, run := 0, 0, 0
	for i := 0; i < n; i++ {
		if g.Lost() {
			losses++
			run++
		} else if run > 0 {
			bursts++
			run = 0
		}
	}
	if run > 0 {
		bursts++
	}
	meanBurst := float64(losses) / float64(bursts)
	wantBurst := 1 / p.PBadToGood // 4 receptions
	if meanBurst < 0.7*wantBurst || meanBurst > 1.3*wantBurst {
		t.Errorf("mean burst length %.2f, want ~%.2f", meanBurst, wantBurst)
	}
	lossRate := float64(losses) / n
	wantRate := p.PGoodToBad / (p.PGoodToBad + p.PBadToGood) // stationary πB ≈ 0.074
	if lossRate < 0.7*wantRate || lossRate > 1.3*wantRate {
		t.Errorf("loss rate %.4f, want ~%.4f", lossRate, wantRate)
	}
}

// Every Lost call draws exactly twice, so two chains fed from the same
// stream but with different parameters stay in lockstep on the stream —
// parameter choice never perturbs later draws.
func TestGilbertElliottFixedDrawCount(t *testing.T) {
	mk := func(p GilbertParams) *rand.Rand {
		rng := rand.New(rand.NewSource(99))
		g, err := NewGilbertElliott(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			g.Lost()
		}
		return rng
	}
	a := mk(GilbertParams{PGoodToBad: 0.01, PBadToGood: 0.9, LossGood: 0, LossBad: 1})
	b := mk(GilbertParams{PGoodToBad: 0.5, PBadToGood: 0.1, LossGood: 0.3, LossBad: 0.6})
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("stream positions diverged after 1000 receptions (draw %d)", i)
		}
	}
}
