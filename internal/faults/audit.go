package faults

import (
	"fmt"
	"strings"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/sim"
)

// maxDetails bounds the retained violation messages; the counts keep
// growing past it.
const maxDetails = 32

// AuditorConfig parameterises the invariant checks.
type AuditorConfig struct {
	// SweepEvery is the period of the monotonicity and bounded-retry
	// sweeps (invariants 2 and 4).
	SweepEvery time.Duration
	// RepairWindow is how long after a partition heal the relay tier has
	// to converge (invariant 3). Zero disables heal checks.
	RepairWindow time.Duration
	// TTN is the protocol's invalidation interval. A RepairWindow
	// shorter than TTN cannot guarantee any INVALIDATION fell inside it,
	// so such heal checks are recorded as skipped, not violated.
	TTN time.Duration
	// RepairGrace is how old a relay's repair debt must be before the
	// heal check counts it as unserviced. Repair is trigger-driven —
	// one GET_NEW shot per INVALIDATION flood — so the grace must cover
	// at least two trigger cycles for a loss-eaten first round trip to
	// get its retry; zero means NewAuditor picks 2·TTN plus slack.
	RepairGrace time.Duration
	// MaxRepairAttempts is the engine's retry bound (invariant 4).
	MaxRepairAttempts int
	// StrongStaleBudget is the tolerated stale-SC answer fraction for
	// invariant 1 (see Config.StrongStaleBudget). Zero means strict.
	StrongStaleBudget float64
}

// Validate reports configuration errors.
func (c AuditorConfig) Validate() error {
	if c.SweepEvery <= 0 {
		return fmt.Errorf("faults: non-positive audit sweep period %v", c.SweepEvery)
	}
	if c.RepairWindow < 0 {
		return fmt.Errorf("faults: negative repair window %v", c.RepairWindow)
	}
	if c.RepairWindow > 0 && c.TTN <= 0 {
		return fmt.Errorf("faults: heal checks need the protocol TTN")
	}
	if c.MaxRepairAttempts < 0 {
		return fmt.Errorf("faults: negative repair attempt bound %d", c.MaxRepairAttempts)
	}
	if c.StrongStaleBudget < 0 || c.StrongStaleBudget > 1 {
		return fmt.Errorf("faults: strong-stale budget %g outside [0,1]", c.StrongStaleBudget)
	}
	return nil
}

// Auditor continuously asserts the consistency invariants during a chaos
// soak:
//
//  1. The stale-SC answer rate stays within StrongStaleBudget, and no
//     answer is ever torn or from the future — read from the consistency
//     auditor at Finish. (RPCC's strong level is TTR-window approximate
//     even fault-free, hence a budget rather than strictly zero.)
//  2. The versions any node observes for an item are monotone within a
//     cache residency — swept periodically against per-node watermarks
//     keyed to the copy's admission time. Replacement churn legitimately
//     breaks cross-residency monotonicity (a node that evicted v1 may
//     re-learn v0 from a stale peer), so a changed StoredAt resets the
//     baseline, exactly like the crash reset (cold restart may re-learn
//     an older copy before catching up). A regression with an unchanged
//     StoredAt can only be an in-place overwrite — a store bug.
//  3. Every partition heal is followed by relay-state convergence within
//     RepairWindow: at the deadline, no relay sits on unserviced repair
//     debt — version evidence it heard longer than RepairGrace ago while
//     still holding an older copy. (The §4.5 guarantee is conditional on
//     hearing an INVALIDATION, so relays the flood never reached carry
//     no debt and are not flagged.)
//  4. Repair retries are bounded: no item state ever exceeds the
//     engine's MaxRepairAttempts consecutive unanswered sends.
type Auditor struct {
	cfg    AuditorConfig
	reg    *data.Registry
	stores []*cache.Store
	chn    *churn.Process
	engine *core.Engine
	cons   *consistency.Auditor

	watermarks []map[data.ItemID]watermark
	rep        Report
}

// watermark is one node's last swept observation of an item. storedAt
// identifies the residency epoch: the store advances it only on
// admission and on strict version advance, never on a same-version
// refresh, so an unchanged storedAt pins the comparison to one
// continuously-held copy.
type watermark struct {
	version  data.Version
	storedAt time.Duration
}

// NewAuditor wires the invariant checks. cons may be nil (invariant 1
// then reports zero); engine may be nil (invariants 3 and 4 are skipped,
// for non-RPCC strategies).
func NewAuditor(cfg AuditorConfig, reg *data.Registry, stores []*cache.Store, chn *churn.Process, engine *core.Engine, cons *consistency.Auditor) (*Auditor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg == nil || chn == nil || len(stores) == 0 {
		return nil, fmt.Errorf("faults: auditor needs registry, churn and stores")
	}
	if cfg.RepairGrace <= 0 {
		cfg.RepairGrace = 2*cfg.TTN + 30*time.Second
	}
	wm := make([]map[data.ItemID]watermark, len(stores))
	for i := range wm {
		wm[i] = make(map[data.ItemID]watermark)
	}
	return &Auditor{
		cfg: cfg, reg: reg, stores: stores, chn: chn,
		engine: engine, cons: cons, watermarks: wm,
	}, nil
}

// Install schedules the periodic sweep and subscribes to the plane's
// heal and crash events. Call before the kernel runs.
func (a *Auditor) Install(k *sim.Kernel, p *Plane) error {
	if _, err := k.Every(a.cfg.SweepEvery, "faults.audit.sweep", func(kk *sim.Kernel) {
		a.sweep(kk)
	}); err != nil {
		return err
	}
	if p != nil {
		p.OnCrash(a.resetNode)
		if a.cfg.RepairWindow > 0 && a.engine != nil {
			p.OnHeal(a.scheduleHealCheck)
		}
	}
	return nil
}

// resetNode clears a crashed node's watermarks: its post-restart cold
// rediscovery may legitimately observe older versions than it held.
func (a *Auditor) resetNode(node int) {
	if node >= 0 && node < len(a.watermarks) {
		a.watermarks[node] = make(map[data.ItemID]watermark)
	}
}

// sweep runs invariants 2 and 4 over the current state.
func (a *Auditor) sweep(k *sim.Kernel) {
	a.rep.Sweeps++
	for nd, s := range a.stores {
		for _, item := range s.Items() {
			cp, ok := s.Peek(item)
			if !ok {
				continue
			}
			storedAt, _ := s.StoredAt(item)
			if prev, seen := a.watermarks[nd][item]; seen &&
				cp.Version < prev.version && storedAt == prev.storedAt {
				a.rep.MonotoneViolations++
				a.detail("monotone: node %d item %v regressed %d -> %d in place at %v",
					nd, item, prev.version, cp.Version, k.Now())
				continue
			}
			a.watermarks[nd][item] = watermark{version: cp.Version, storedAt: storedAt}
		}
	}
	if a.engine != nil && a.cfg.MaxRepairAttempts > 0 {
		maxGetNew, maxApply := a.engine.RepairScan()
		if maxGetNew > a.cfg.MaxRepairAttempts || maxApply > a.cfg.MaxRepairAttempts {
			a.rep.RetryViolations++
			a.detail("retry-bound: outstanding attempts get-new=%d apply=%d exceed %d at %v",
				maxGetNew, maxApply, a.cfg.MaxRepairAttempts, k.Now())
		}
	}
}

// scheduleHealCheck verifies relay convergence RepairWindow after the
// heal (invariant 3).
func (a *Auditor) scheduleHealCheck(k *sim.Kernel, _ Partition) {
	if a.cfg.RepairWindow < a.cfg.TTN || a.cfg.RepairWindow < a.cfg.RepairGrace {
		// The window is too short for any INVALIDATION trigger (or for a
		// debt to outlive the grace), so the check would be vacuous or a
		// false positive; record the heal as unchecked instead.
		a.rep.HealsSkipped++
		return
	}
	healAt := k.Now()
	k.After(a.cfg.RepairWindow, "faults.audit.heal", func(kk *sim.Kernel) {
		a.checkHeal(kk, healAt)
	})
}

// checkHeal flags every relay still sitting on old repair debt: it first
// heard a version newer than its copy at least RepairGrace ago (at least
// two trigger cycles) and neither repaired nor (legitimately, invariant
// 4) gave up.
func (a *Auditor) checkHeal(k *sim.Kernel, healAt time.Duration) {
	a.rep.HealsChecked++
	for i := 0; i < a.reg.Len(); i++ {
		item := data.ItemID(i)
		for _, d := range a.engine.RepairDebts(item) {
			if d.Held >= d.Heard || d.GaveUp {
				continue
			}
			if d.Node < len(a.stores) && !a.chn.Connected(d.Node) {
				continue // down again: cannot be expected to repair
			}
			if k.Now()-d.Since < a.cfg.RepairGrace {
				continue // debt young enough that retries are still due
			}
			a.rep.HealViolations++
			a.detail("heal-convergence: relay %d item %v in debt since %v (heard v%d, holds v%d) %v after heal at %v",
				d.Node, item, d.Since, d.Heard, d.Held, a.cfg.RepairWindow, healAt)
		}
	}
}

func (a *Auditor) detail(format string, args ...any) {
	if len(a.rep.Details) < maxDetails {
		a.rep.Details = append(a.rep.Details, fmt.Sprintf(format, args...))
	}
}

// Finish folds the consistency auditor's strong-violation count in and
// returns the final report. Call after the kernel stops.
func (a *Auditor) Finish() Report {
	a.rep.StrongBudget = a.cfg.StrongStaleBudget
	if a.cons != nil {
		a.rep.StrongViolations = a.cons.Violations(consistency.ViolationStrong)
		a.rep.TornAnswers = a.cons.Violations(consistency.ViolationTorn)
		a.rep.FutureAnswers = a.cons.Violations(consistency.ViolationFuture)
		a.rep.Answers = a.cons.Answers()
	}
	return a.rep
}

// Report is the outcome of one campaign's invariant auditing.
type Report struct {
	// Invariant 1: stale SC answers against the budget, plus the
	// torn/future classes that indicate outright protocol bugs and are
	// never tolerated.
	StrongViolations uint64
	Answers          uint64
	StrongBudget     float64
	TornAnswers      uint64
	FutureAnswers    uint64
	// Invariant 2: per-node per-item version regressions.
	MonotoneViolations int
	// Invariant 3: relays not converged RepairWindow after a heal.
	HealViolations int
	HealsChecked   int
	HealsSkipped   int
	// Invariant 4: repair attempt counts beyond the bound.
	RetryViolations int
	// Sweeps is how many invariant-2/4 sweeps ran (coverage evidence).
	Sweeps int
	// Details holds up to maxDetails human-readable violation messages.
	Details []string
}

// StrongRate is the fraction of answers stale at strong level.
func (r Report) StrongRate() float64 {
	if r.Answers == 0 {
		return 0
	}
	return float64(r.StrongViolations) / float64(r.Answers)
}

// Passed reports whether every invariant held.
func (r Report) Passed() bool {
	strongOK := r.StrongRate() <= r.StrongBudget &&
		(r.StrongBudget > 0 || r.StrongViolations == 0)
	return strongOK && r.TornAnswers == 0 && r.FutureAnswers == 0 &&
		r.MonotoneViolations == 0 && r.HealViolations == 0 && r.RetryViolations == 0
}

// String renders a one-line verdict plus any details.
func (r Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%s: sc=%d/%d (%.1f%% of budget %.1f%%) torn=%d future=%d monotone=%d heal=%d/%d (skipped %d) retry=%d sweeps=%d",
		verdict, r.StrongViolations, r.Answers, 100*r.StrongRate(), 100*r.StrongBudget,
		r.TornAnswers, r.FutureAnswers,
		r.MonotoneViolations, r.HealViolations, r.HealsChecked, r.HealsSkipped,
		r.RetryViolations, r.Sweeps)
	for _, d := range r.Details {
		b.WriteString("\n  ")
		b.WriteString(d)
	}
	return b.String()
}
