package faults

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

type staticSource struct{ pts []geo.Point }

func (s *staticSource) Len() int { return len(s.pts) }
func (s *staticSource) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(s.pts) {
		dst = make([]geo.Point, len(s.pts))
	}
	dst = dst[:len(s.pts)]
	copy(dst, s.pts)
	return dst
}

// planeNet is a 4-node chain (0-1-2-3 at 200 m spacing, 250 m range)
// with a fault plane installed over it.
func planeNet(t *testing.T, fc Config) (*sim.Kernel, *netsim.Network, *Plane) {
	t.Helper()
	pts := []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}, {X: 600, Y: 0}}
	k := sim.NewKernel(sim.WithSeed(5))
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	chn, err := churn.NewProcess(churn.Config{Disabled: true}, len(pts), k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlane(fc, Env{Net: net, Churn: chn})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Install(k); err != nil {
		t.Fatal(err)
	}
	return k, net, p
}

// A partition with a single listed island must actually sever that
// island from the unlisted mainland: frames crossing the boundary drop
// with the partition cause, and delivery resumes after the heal.
// (Regression: island group ids must not collide with the mainland's
// implicit id.)
func TestPartitionSeversSingleIsland(t *testing.T) {
	fc := Config{Partitions: []Partition{
		{Start: 1 * time.Second, End: 10 * time.Second, Islands: [][]int{{2, 3}}},
	}}
	k, net, _ := planeNet(t, fc)

	delivered := make(map[int]int)
	for nd := 0; nd < net.Len(); nd++ {
		nd := nd
		if err := net.SetReceiver(nd, func(_ *sim.Kernel, node int, _ protocol.Message, _ netsim.Meta) {
			delivered[node]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	send := func(label string, seq uint64) {
		msg := protocol.Message{Kind: protocol.KindPoll, Item: 1, Version: 1, Origin: 0, Seq: seq}
		if err := net.Unicast(0, 3, msg); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}
	k.At(2*time.Second, "send.during", func(*sim.Kernel) { send("during partition", 1) })
	k.At(12*time.Second, "send.after", func(*sim.Kernel) { send("after heal", 2) })
	k.RunUntil(15 * time.Second)

	if got := net.Traffic().DroppedByCause(protocol.KindPoll, stats.DropPartition); got != 1 {
		t.Errorf("partition drops = %d, want 1", got)
	}
	if delivered[3] != 1 {
		t.Errorf("node 3 received %d messages, want exactly the post-heal one", delivered[3])
	}
}

// Two listed islands must also be severed from each other, not only
// from the mainland.
func TestPartitionSeversIslandsFromEachOther(t *testing.T) {
	fc := Config{Partitions: []Partition{
		{Start: 1 * time.Second, End: 10 * time.Second, Islands: [][]int{{0, 1}, {2, 3}}},
	}}
	k, net, _ := planeNet(t, fc)

	k.At(2*time.Second, "send", func(*sim.Kernel) {
		msg := protocol.Message{Kind: protocol.KindPoll, Item: 1, Version: 1, Origin: 1, Seq: 1}
		if err := net.Unicast(1, 2, msg); err != nil {
			t.Fatal(err)
		}
	})
	k.RunUntil(5 * time.Second)
	if got := net.Traffic().DroppedByCause(protocol.KindPoll, stats.DropPartition); got != 1 {
		t.Errorf("partition drops = %d, want 1", got)
	}
}
