package faults

import (
	"fmt"
	"math/rand"
)

// GilbertElliott is the two-state correlated loss model, implementing
// netsim.LossModel. Real MANET links lose packets in bursts — fades,
// collisions, interference episodes — not as independent coin flips; the
// model captures that with a hidden Good/Bad Markov state.
type GilbertElliott struct {
	p   GilbertParams
	rng *rand.Rand
	bad bool
}

// NewGilbertElliott builds the model drawing from rng — give it a
// dedicated kernel stream (the plane uses "faults.gilbert") so enabling
// it perturbs no other stream.
func NewGilbertElliott(p GilbertParams, rng *rand.Rand) (*GilbertElliott, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("faults: gilbert model needs an RNG")
	}
	return &GilbertElliott{p: p, rng: rng}, nil
}

// Lost advances the chain one reception and reports whether the frame
// drops. Exactly two draws happen per call regardless of state, so runs
// differing only in parameters consume the stream identically.
func (g *GilbertElliott) Lost() bool {
	u := g.rng.Float64()
	if g.bad {
		if u < g.p.PBadToGood {
			g.bad = false
		}
	} else {
		if u < g.p.PGoodToBad {
			g.bad = true
		}
	}
	loss := g.p.LossGood
	if g.bad {
		loss = g.p.LossBad
	}
	return g.rng.Float64() < loss
}

// Bad exposes the current chain state (tests and diagnostics).
func (g *GilbertElliott) Bad() bool { return g.bad }
