//go:build linux

package fleet

const darwinMaxrssBytes = false
