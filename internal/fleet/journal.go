package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal is an append-only JSONL run log: one self-contained Record per
// line, flushed after every append, so a sweep killed at any point
// leaves a journal whose intact prefix is fully reusable. Opened with
// resume, prior successful records satisfy their jobs without
// re-running; prior failures are remembered but retried.
//
// Record keys fingerprint the full scenario config (experiment:
// Config.Key), so a journal written by one binary is only resumable
// against the same sweep definition — a config-schema change changes
// every key and the sweep simply runs afresh.
//
// Append is safe for concurrent use by fleet workers; everything else
// happens before or after the worker pool runs.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	prior map[string]Record
}

// OpenJournal opens (creating if needed) the journal at path. With
// resume, existing records are loaded first and the file is appended to;
// without, the file is truncated and the sweep starts clean.
func OpenJournal(path string, resume bool) (*Journal, error) {
	prior := make(map[string]Record)
	if resume {
		if existing, err := os.Open(path); err == nil {
			recs, err := ReadRecords(existing)
			existing.Close()
			if err != nil {
				return nil, fmt.Errorf("fleet: reading journal %s: %w", path, err)
			}
			for _, r := range recs {
				// Last record for a key wins: a retry after a journaled
				// failure appends a fresh record for the same key.
				prior[r.Key] = r
			}
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("fleet: opening journal %s: %w", path, err)
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: opening journal %s: %w", path, err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), prior: prior}, nil
}

// Prior returns the most recent journaled record for key, if one was
// loaded at open time (resume mode only).
func (j *Journal) Prior(key string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.prior[key]
	return r, ok
}

// PriorCount returns how many distinct keys the resume pass loaded.
func (j *Journal) PriorCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.prior)
}

// Append writes one record as a JSON line and flushes it to the OS, so
// a crash loses at most the record being written.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: marshal record %s: %w", rec.Key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(line); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	return j.w.Flush()
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReadRecords decodes a JSONL journal stream. A truncated or corrupt
// trailing line (the signature of a run killed mid-write) is tolerated:
// decoding stops there and the records parsed so far are returned. A
// corrupt line with further valid records after it is reported as an
// error, since that means the file is damaged, not merely truncated.
func ReadRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // records carry full Results
	lineNo := 0
	badLine := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if badLine == 0 {
				badLine = lineNo
				continue
			}
			return recs, fmt.Errorf("fleet: journal corrupt at line %d", badLine)
		}
		if badLine != 0 {
			return recs, fmt.Errorf("fleet: journal corrupt at line %d (valid records follow it)", badLine)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, err
	}
	return recs, nil
}
