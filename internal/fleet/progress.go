package fleet

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// progress tracks fleet completion with atomic counters and, when given
// a writer, ticks a one-line status (counts, runs/sec, ETA) on it. The
// counters are the only mutable state the workers share with the ticker
// goroutine, and they are only ever read for display — never fed back
// into a simulation, which is what keeps parallel runs deterministic.
type progress struct {
	w       io.Writer
	total   int
	resumed int
	start   time.Time

	completed atomic.Int64 // runs finished this invocation (ok + failed)
	failed    atomic.Int64

	stopCh chan struct{}
	doneCh chan struct{}
}

func newProgress(w io.Writer, total, resumed int, start time.Time) *progress {
	return &progress{w: w, total: total, resumed: resumed, start: start}
}

// done records one finished run.
func (p *progress) done(failed bool) {
	p.completed.Add(1)
	if failed {
		p.failed.Add(1)
	}
}

// launch starts the ticker goroutine when a writer is configured.
func (p *progress) launch(every time.Duration) {
	if p.w == nil {
		return
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	p.stopCh = make(chan struct{})
	p.doneCh = make(chan struct{})
	go func() {
		defer close(p.doneCh)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(p.w, p.line())
			case <-p.stopCh:
				return
			}
		}
	}()
}

// stop halts the ticker and prints one final line.
func (p *progress) stop() {
	if p.w == nil {
		return
	}
	close(p.stopCh)
	<-p.doneCh
	fmt.Fprintln(p.w, p.line())
}

// line renders the current status.
func (p *progress) line() string {
	completed := int(p.completed.Load())
	failed := int(p.failed.Load())
	elapsed := time.Since(p.start)
	covered := p.resumed + completed
	s := fmt.Sprintf("fleet: %d/%d runs", covered, p.total)
	if p.resumed > 0 {
		s += fmt.Sprintf(" (%d resumed)", p.resumed)
	}
	if failed > 0 {
		s += fmt.Sprintf(", %d FAILED", failed)
	}
	if completed > 0 && elapsed > 0 {
		rate := float64(completed) / elapsed.Seconds()
		s += fmt.Sprintf(", %.2f runs/s", rate)
		if remaining := p.total - covered; remaining > 0 && rate > 0 {
			eta := time.Duration(float64(remaining)/rate) * time.Second
			s += fmt.Sprintf(", eta %v", eta.Round(time.Second))
		}
	}
	return s + fmt.Sprintf(", elapsed %v", elapsed.Round(time.Second))
}
