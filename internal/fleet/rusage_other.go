//go:build !linux && !darwin

package fleet

// peakRSSKB is unavailable on this platform; records carry 0.
func peakRSSKB() int64 { return 0 }
