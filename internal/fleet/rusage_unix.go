//go:build linux || darwin

package fleet

import "syscall"

// peakRSSKB returns the process's peak resident set size in KiB, as
// reported by getrusage(2). On Linux ru_maxrss is already KiB; on Darwin
// it is bytes, so it is scaled. The value is process-wide — with several
// workers it reflects the high-water mark up to the moment of the call,
// not one run's private footprint — which is exactly what a sweep needs
// to budget machine memory.
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	kb := int64(ru.Maxrss)
	if darwinMaxrssBytes {
		kb /= 1024
	}
	return kb
}
