// Package fleet runs sets of simulation scenarios concurrently: a
// worker-pool orchestrator over experiment.Run with determinism,
// fault tolerance, and observability.
//
// # Determinism
//
// A fleet executes jobs, not goroutines-with-opinions: every Job carries
// a fully specified experiment.Config whose Seed is a pure function of
// the job's identity (sweep jobs share replica seeds by design — see
// experiment.SweepJobs; ad-hoc jobs can use experiment.DeriveSeed).
// Workers never feed anything into a simulation — no worker IDs, no
// wall-clock, no completion order — so running a job list with
// Parallel=1 and Parallel=N yields byte-identical Results. Duplicate
// keys (e.g. fig7a and fig8a sharing one simulation matrix) are
// detected and each distinct scenario runs exactly once.
//
// # Isolation (the concurrency-safety contract)
//
// Everything below experiment.Run is strictly per-run state:
// sim.Kernel is a single-threaded event loop owned by one worker for
// the duration of one run; mobility fields, node chassis, cache stores,
// trace.Recorder rings and the stats ledgers are all constructed inside
// Run and never escape it. The only cross-worker state in a fleet is
// this package's own: atomic progress counters, the journal (guarded by
// its mutex), and the per-job record slots (each written by exactly one
// worker). TestFleetParallelRealRuns and sim's parallel kernel test
// enforce this under -race.
//
// # Fault tolerance
//
// A panicking simulation is converted by a per-run recover() into a
// failed Record carrying the panic value and stack; the rest of the
// fleet keeps running. A per-run wall-clock timeout abandons runaway
// simulations the same way. Cancelling the context (Ctrl-C) stops
// dispatching new jobs, lets in-flight runs finish being recorded, and
// returns the partial report with ctx's error.
//
// # Observability
//
// Completed and failed runs are appended to an optional JSONL journal
// (one self-contained Record per line) that supports resuming an
// interrupted sweep: journaled successes are reused, journaled failures
// are retried. Progress (done/failed counts, runs/sec, ETA) ticks on an
// optional writer, and a Report exports wall-time and throughput as a
// BENCH_fleet.json for the perf trajectory.
package fleet

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
)

// Job is one simulation to run: a stable key naming the scenario and the
// fully specified config. Key must fingerprint Config (use
// experiment.Config.Key or experiment.SweepJobs); two jobs sharing a key
// are the same scenario and run once.
type Job struct {
	Key    string
	Config experiment.Config
}

// Status classifies how a job ended.
type Status string

// Job outcomes. Cancelled jobs (context expired before or during the
// run) are reported but never journaled, so a resumed sweep retries
// them.
const (
	StatusOK        Status = "ok"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Record is one job's outcome — the unit of the journal and of the
// report. Failed records carry the error (and the panic stack when the
// simulation panicked) instead of a Result.
type Record struct {
	Key      string `json:"key"`
	Status   Status `json:"status"`
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	WallMS   int64  `json:"wall_ms"`
	// MaxRSSKB is the process-wide peak resident set size (KiB) observed
	// when the record was written — a high-water mark for budgeting sweep
	// memory, not this run's private footprint. 0 where getrusage is
	// unavailable.
	MaxRSSKB int64              `json:"max_rss_kb,omitempty"`
	Error    string             `json:"error,omitempty"`
	Stack    string             `json:"stack,omitempty"`
	Result   *experiment.Result `json:"result,omitempty"`
}

// Options configures a fleet run. The zero value is usable: all cores,
// no timeout, no journal, no progress output.
type Options struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Timeout bounds one run's wall-clock time; 0 means none. A timed-out
	// simulation is abandoned (its goroutine is leaked — the kernel has
	// no preemption point) and recorded as failed.
	Timeout time.Duration
	// Journal, when non-nil, receives one Record per completed or failed
	// run and supplies prior results for resumption.
	Journal *Journal
	// Progress, when non-nil, receives periodic one-line status updates
	// (counts, runs/sec, ETA).
	Progress io.Writer
	// ProgressEvery is the progress period; 0 means 5s.
	ProgressEvery time.Duration
	// Execute overrides the job executor. Nil means experiment.Run; tests
	// inject failures and panics through it.
	Execute func(experiment.Config) (experiment.Result, error)
}

// Report is the outcome of a fleet run.
type Report struct {
	// Records holds one entry per distinct job key, in first-appearance
	// job order — independent of completion order, so reports are
	// deterministic. Cancelled-before-start jobs appear with
	// StatusCancelled.
	Records []Record
	// Wall is the fleet's total wall-clock time.
	Wall time.Duration
	// Workers is the resolved worker count.
	Workers int
	// Executed counts runs performed by this invocation; Resumed counts
	// jobs satisfied from the journal; Failed counts failed records
	// (including timeouts); Cancelled counts jobs the context cut off.
	Executed, Resumed, Failed, Cancelled int
	// ExecBusy is the summed per-worker time spent inside simulations and
	// JournalTime the summed time spent appending records — together they
	// locate the orchestration overhead: Workers×Wall − ExecBusy −
	// JournalTime is idle/dispatch time.
	ExecBusy    time.Duration
	JournalTime time.Duration

	results map[string]experiment.Result
}

// Result returns the result recorded for a job key, if that job
// succeeded (either in this run or resumed from the journal).
func (r Report) Result(key string) (experiment.Result, bool) {
	res, ok := r.results[key]
	return res, ok
}

// RunsPerSec is the executed-run throughput of this invocation.
func (r Report) RunsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Executed) / r.Wall.Seconds()
}

// Run executes the job list and returns the report. It returns ctx's
// error (with the partial report) when cancelled, and otherwise reports
// per-job failures inside the Report rather than as an error — one
// panicking simulation must not abort a 5-hour sweep.
func Run(ctx context.Context, jobs []Job, opts Options) (Report, error) {
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	execute := opts.Execute
	if execute == nil {
		execute = experiment.Run
	}

	// Deduplicate by key, preserving first-appearance order; reject jobs
	// that reuse a key for a different scenario (a keying bug upstream).
	order := make([]Job, 0, len(jobs))
	seen := make(map[string]experiment.Config, len(jobs))
	for _, j := range jobs {
		if prev, dup := seen[j.Key]; dup {
			// Config holds slices (workload hotspots) so it is not
			// comparable with ==; DeepEqual is fine off the hot path.
			if !reflect.DeepEqual(prev, j.Config) {
				return Report{}, fmt.Errorf("fleet: key %q maps to two different configs", j.Key)
			}
			continue
		}
		seen[j.Key] = j.Config
		order = append(order, j)
	}

	rep := Report{
		Records: make([]Record, len(order)),
		Workers: workers,
		results: make(map[string]experiment.Result, len(order)),
	}
	start := time.Now()

	// Resume pass: satisfy jobs from the journal before dispatching.
	// Only successful prior records are reused — failures retry.
	pending := make([]int, 0, len(order))
	var resMu sync.Mutex // guards rep.results (records are per-slot)
	for i, j := range order {
		if opts.Journal != nil {
			if prior, ok := opts.Journal.Prior(j.Key); ok && prior.Status == StatusOK && prior.Result != nil {
				rep.Records[i] = prior
				rep.results[j.Key] = *prior.Result
				rep.Resumed++
				continue
			}
		}
		pending = append(pending, i)
	}

	prog := newProgress(opts.Progress, len(order), rep.Resumed, start)
	prog.launch(opts.ProgressEvery)
	defer prog.stop()

	idxCh := make(chan int)
	var wg sync.WaitGroup
	var busyNS, journalNS atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				j := order[i]
				var rec Record
				if ctx.Err() != nil {
					rec = Record{Key: j.Key, Status: StatusCancelled,
						Strategy: string(j.Config.Strategy), Seed: j.Config.Seed,
						Error: ctx.Err().Error()}
				} else {
					t0 := time.Now()
					rec = runOne(ctx, j, execute, opts.Timeout)
					busyNS.Add(int64(time.Since(t0)))
				}
				rep.Records[i] = rec
				switch rec.Status {
				case StatusOK:
					resMu.Lock()
					rep.results[j.Key] = *rec.Result
					resMu.Unlock()
					prog.done(false)
				case StatusFailed:
					prog.done(true)
				}
				if opts.Journal != nil && rec.Status != StatusCancelled {
					t0 := time.Now()
					err := opts.Journal.Append(rec)
					journalNS.Add(int64(time.Since(t0)))
					if err != nil {
						// Journal trouble must not kill the sweep; surface it
						// on the progress writer if there is one.
						if opts.Progress != nil {
							fmt.Fprintf(opts.Progress, "fleet: journal append failed: %v\n", err)
						}
					}
				}
			}
		}()
	}

dispatch:
	for n, i := range pending {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			// Drain: everything not yet dispatched is marked cancelled
			// here (no worker will ever touch those slots), and in-flight
			// runs finish being recorded before wg.Wait returns.
			for _, rest := range pending[n:] {
				j := order[rest]
				rep.Records[rest] = Record{Key: j.Key, Status: StatusCancelled,
					Strategy: string(j.Config.Strategy), Seed: j.Config.Seed,
					Error: ctx.Err().Error()}
			}
			break dispatch
		}
	}
	close(idxCh)
	wg.Wait()

	rep.Wall = time.Since(start)
	rep.ExecBusy = time.Duration(busyNS.Load())
	rep.JournalTime = time.Duration(journalNS.Load())
	terminal := 0
	for _, rec := range rep.Records {
		switch rec.Status {
		case StatusOK:
			terminal++
		case StatusFailed:
			terminal++
			rep.Failed++
		case StatusCancelled:
			rep.Cancelled++
		}
	}
	// Resumed records are terminal but were not run by this invocation.
	rep.Executed = terminal - rep.Resumed
	return rep, ctx.Err()
}

// runOne executes one job with panic containment and an optional
// wall-clock timeout. The simulation runs on its own goroutine so a
// timeout can abandon it; the kernel offers no preemption point, so the
// abandoned goroutine runs to completion in the background and its
// result is discarded.
func runOne(ctx context.Context, j Job, execute func(experiment.Config) (experiment.Result, error), timeout time.Duration) Record {
	rec := Record{
		Key:      j.Key,
		Strategy: string(j.Config.Strategy),
		Seed:     j.Config.Seed,
	}
	type outcome struct {
		res   experiment.Result
		err   error
		stack string
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{err: fmt.Errorf("panic: %v", p), stack: string(debug.Stack())}
			}
		}()
		res, err := execute(j.Config)
		done <- outcome{res: res, err: err}
	}()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case o := <-done:
		rec.WallMS = time.Since(start).Milliseconds()
		rec.MaxRSSKB = peakRSSKB()
		if o.err != nil {
			rec.Status = StatusFailed
			rec.Error = o.err.Error()
			rec.Stack = o.stack
			return rec
		}
		rec.Status = StatusOK
		res := o.res
		rec.Result = &res
		return rec
	case <-timer:
		rec.WallMS = time.Since(start).Milliseconds()
		rec.MaxRSSKB = peakRSSKB()
		rec.Status = StatusFailed
		rec.Error = fmt.Sprintf("timeout after %v", timeout)
		return rec
	case <-ctx.Done():
		rec.WallMS = time.Since(start).Milliseconds()
		rec.Status = StatusCancelled
		rec.Error = ctx.Err().Error()
		return rec
	}
}
