package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalAppendAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: "a", Status: StatusOK, Strategy: "rpcc-wc", Seed: 1, WallMS: 10},
		{Key: "b", Status: StatusFailed, Error: "boom", Stack: "goroutine 1 [running]"},
		{Key: "a", Status: StatusOK, Seed: 1, WallMS: 12}, // retry of a: last wins
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.PriorCount() != 2 {
		t.Fatalf("prior count = %d, want 2", j2.PriorCount())
	}
	a, ok := j2.Prior("a")
	if !ok || a.WallMS != 12 {
		t.Fatalf("Prior(a) = %+v, %v; want the later record", a, ok)
	}
	b, ok := j2.Prior("b")
	if !ok || b.Status != StatusFailed || b.Error != "boom" {
		t.Fatalf("Prior(b) = %+v, %v", b, ok)
	}
}

func TestJournalWithoutResumeTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Key: "old", Status: StatusOK})
	j.Close()

	j2, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.PriorCount() != 0 {
		t.Fatal("non-resume open must not load prior records")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("non-resume open must truncate, file holds %q", data)
	}
}

func TestReadRecordsToleratesTruncatedTail(t *testing.T) {
	in := `{"key":"a","status":"ok"}
{"key":"b","status":"failed","error":"x"}
{"key":"c","st`
	recs, err := ReadRecords(strings.NewReader(in))
	if err != nil {
		t.Fatalf("truncated tail must be tolerated, got %v", err)
	}
	if len(recs) != 2 || recs[0].Key != "a" || recs[1].Key != "b" {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestReadRecordsRejectsMidFileCorruption(t *testing.T) {
	in := `{"key":"a","status":"ok"}
not json at all
{"key":"c","status":"ok"}`
	if _, err := ReadRecords(strings.NewReader(in)); err == nil {
		t.Fatal("mid-file corruption must be an error")
	}
}

func TestOpenJournalResumeOnMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	j, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("resume on a missing journal must start fresh: %v", err)
	}
	defer j.Close()
	if j.PriorCount() != 0 {
		t.Fatal("fresh journal must have no prior records")
	}
}
