package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/experiment"
)

// testJobs builds n distinct fast scenarios keyed and seeded like real
// sweeps: the seed is a pure function of the job, never of scheduling.
func testJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := experiment.DefaultConfig(experiment.StrategyRPCCWC, 1)
		cfg.SimTime = 2 * time.Minute
		cfg.NPeers = 10
		cfg.Seed = experiment.DeriveSeed(1, fmt.Sprintf("job%d", i))
		jobs[i] = Job{Key: cfg.Key(), Config: cfg}
	}
	return jobs
}

// fakeExecute returns a deterministic synthetic result without running a
// simulation; tests that exercise orchestration (not simulation) use it.
func fakeExecute(cfg experiment.Config) (experiment.Result, error) {
	return experiment.Result{
		Strategy: cfg.Strategy,
		Config:   cfg,
		TotalTx:  uint64(cfg.Seed) * 10,
		Issued:   uint64(cfg.Seed),
	}, nil
}

// TestFleetParallelMatchesSerialRealRuns is the determinism acceptance
// test: real simulations at Parallel=1 and Parallel=8 must produce
// byte-identical Results for every job. It doubles as the -race audit
// that nothing below experiment.Run is shared across workers.
func TestFleetParallelMatchesSerialRealRuns(t *testing.T) {
	jobs := testJobs(6)
	serial, err := Run(context.Background(), jobs, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), jobs, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Executed != len(jobs) || parallel.Executed != len(jobs) {
		t.Fatalf("executed %d/%d, want %d", serial.Executed, parallel.Executed, len(jobs))
	}
	for _, j := range jobs {
		a, okA := serial.Result(j.Key)
		b, okB := parallel.Result(j.Key)
		if !okA || !okB {
			t.Fatalf("job %s missing from a report (serial %v, parallel %v)", j.Key, okA, okB)
		}
		ja, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Fatalf("job %s: parallel result differs from serial\nserial:   %s\nparallel: %s", j.Key, ja, jb)
		}
	}
	// Record order is job order, independent of completion order.
	for i, j := range jobs {
		if serial.Records[i].Key != j.Key || parallel.Records[i].Key != j.Key {
			t.Fatalf("record %d out of job order", i)
		}
	}
}

// TestFleetPanicIsJournaledNotFatal: a panicking simulation becomes a
// failed record (with the stack) in the report and the journal, and
// every other job still completes.
func TestFleetPanicIsJournaledNotFatal(t *testing.T) {
	jobs := testJobs(5)
	bad := jobs[2].Key
	journalPath := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(journalPath, false)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), jobs, Options{
		Parallel: 4,
		Journal:  j,
		Execute: func(cfg experiment.Config) (experiment.Result, error) {
			if cfg.Key() == bad {
				panic("simulated kernel blow-up")
			}
			return fakeExecute(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	if rep.Executed != 5 {
		t.Fatalf("executed = %d, want 5", rep.Executed)
	}
	var failedRec Record
	for _, rec := range rep.Records {
		if rec.Key == bad {
			failedRec = rec
		} else if rec.Status != StatusOK {
			t.Fatalf("innocent job %s ended %s", rec.Key, rec.Status)
		}
	}
	if failedRec.Status != StatusFailed {
		t.Fatalf("panicking job status = %s, want failed", failedRec.Status)
	}
	if !strings.Contains(failedRec.Error, "simulated kernel blow-up") {
		t.Fatalf("error %q lacks panic value", failedRec.Error)
	}
	if !strings.Contains(failedRec.Stack, "goroutine") {
		t.Fatalf("failed record lacks a stack: %q", failedRec.Stack)
	}

	// The journal carries the failure too.
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("journal has %d records, want 5", len(recs))
	}
	found := false
	for _, rec := range recs {
		if rec.Key == bad && rec.Status == StatusFailed {
			found = true
		}
	}
	if !found {
		t.Fatal("journal lacks the failed record")
	}
}

// TestFleetResume: successful journaled jobs are reused without
// re-running; journaled failures are retried.
func TestFleetResume(t *testing.T) {
	jobs := testJobs(4)
	failing := jobs[1].Key
	journalPath := filepath.Join(t.TempDir(), "runs.jsonl")

	j1, err := OpenJournal(journalPath, false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), jobs, Options{
		Parallel: 2,
		Journal:  j1,
		Execute: func(cfg experiment.Config) (experiment.Result, error) {
			if cfg.Key() == failing {
				return experiment.Result{}, fmt.Errorf("transient failure")
			}
			return fakeExecute(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j1.Close()
	if first.Failed != 1 || first.Executed != 4 {
		t.Fatalf("first pass: failed=%d executed=%d", first.Failed, first.Executed)
	}

	j2, err := OpenJournal(journalPath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.PriorCount() != 4 {
		t.Fatalf("resume loaded %d keys, want 4", j2.PriorCount())
	}
	var execMu sync.Mutex
	executed := make(map[string]bool)
	second, err := Run(context.Background(), jobs, Options{
		Parallel: 2,
		Journal:  j2,
		Execute: func(cfg experiment.Config) (experiment.Result, error) {
			execMu.Lock()
			executed[cfg.Key()] = true
			execMu.Unlock()
			return fakeExecute(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 3 {
		t.Fatalf("resumed = %d, want 3", second.Resumed)
	}
	if second.Executed != 1 {
		t.Fatalf("executed = %d, want 1 (only the prior failure)", second.Executed)
	}
	if len(executed) != 1 || !executed[failing] {
		t.Fatalf("re-ran %v, want only %s", executed, failing)
	}
	if second.Failed != 0 {
		t.Fatalf("second pass failed = %d, want 0", second.Failed)
	}
	// Every job has a result after resume.
	for _, job := range jobs {
		if _, ok := second.Result(job.Key); !ok {
			t.Fatalf("job %s has no result after resume", job.Key)
		}
	}
	// Resumed results survive the journal round-trip intact.
	want, _ := fakeExecute(jobs[0].Config)
	got, _ := second.Result(jobs[0].Key)
	if !reflect.DeepEqual(gotComparable(got), gotComparable(want)) {
		t.Fatalf("resumed result drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

// gotComparable strips nothing today but funnels both sides through one
// JSON round-trip so future non-comparable Result fields keep this test
// honest.
func gotComparable(r experiment.Result) string {
	b, _ := json.Marshal(r)
	return string(b)
}

// TestFleetTimeout: a run exceeding Options.Timeout is recorded as
// failed and the sweep continues.
func TestFleetTimeout(t *testing.T) {
	jobs := testJobs(3)
	slow := jobs[0].Key
	rep, err := Run(context.Background(), jobs, Options{
		Parallel: 3,
		Timeout:  30 * time.Millisecond,
		Execute: func(cfg experiment.Config) (experiment.Result, error) {
			if cfg.Key() == slow {
				time.Sleep(500 * time.Millisecond)
			}
			return fakeExecute(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	if rep.Records[0].Status != StatusFailed || !strings.Contains(rep.Records[0].Error, "timeout") {
		t.Fatalf("slow record = %+v, want timeout failure", rep.Records[0])
	}
	for _, rec := range rep.Records[1:] {
		if rec.Status != StatusOK {
			t.Fatalf("fast job %s ended %s", rec.Key, rec.Status)
		}
	}
}

// TestFleetCancellationDrains: cancelling mid-sweep stops dispatch,
// reports partial results, and never journals cancelled jobs.
func TestFleetCancellationDrains(t *testing.T) {
	jobs := testJobs(8)
	journalPath := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(journalPath, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	rep, err := Run(ctx, jobs, Options{
		Parallel: 1,
		Journal:  j,
		Execute: func(cfg experiment.Config) (experiment.Result, error) {
			ran++
			if ran == 2 {
				cancel()
			}
			return fakeExecute(cfg)
		},
	})
	j.Close()
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Cancelled == 0 {
		t.Fatal("no jobs reported cancelled")
	}
	if rep.Executed+rep.Cancelled != len(jobs) {
		t.Fatalf("executed %d + cancelled %d != %d jobs", rep.Executed, rep.Cancelled, len(jobs))
	}
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Status == StatusCancelled {
			t.Fatal("cancelled job leaked into the journal")
		}
	}
	if len(recs) != rep.Executed {
		t.Fatalf("journal has %d records, want %d (the executed runs)", len(recs), rep.Executed)
	}
}

// TestFleetDeduplicatesSharedKeys: jobs sharing a key (fig7a/fig8a twin
// sweeps) run once, and conflicting configs under one key are rejected.
func TestFleetDeduplicatesSharedKeys(t *testing.T) {
	jobs := testJobs(2)
	jobs = append(jobs, jobs[0]) // duplicate scenario
	var calls atomic.Int64
	rep, err := Run(context.Background(), jobs, Options{
		Parallel: 2,
		Execute: func(cfg experiment.Config) (experiment.Result, error) {
			calls.Add(1)
			return fakeExecute(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || rep.Executed != 2 {
		t.Fatalf("calls=%d executed=%d, want 2 each", calls.Load(), rep.Executed)
	}
	if len(rep.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(rep.Records))
	}

	conflicting := testJobs(2)
	conflicting[1].Key = conflicting[0].Key // same key, different config
	if _, err := Run(context.Background(), conflicting, Options{Execute: fakeExecute}); err == nil {
		t.Fatal("conflicting configs under one key must be rejected")
	}
}

// TestFleetBenchExport: the report's bench record reflects the run and
// round-trips through WriteBench as JSON.
func TestFleetBenchExport(t *testing.T) {
	jobs := testJobs(4)
	rep, err := Run(context.Background(), jobs, Options{Parallel: 2, Execute: fakeExecute})
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Bench()
	if b.Name != "fleet" || b.Jobs != 4 || b.Executed != 4 || b.Workers != 2 {
		t.Fatalf("bench = %+v", b)
	}
	if b.SimHours == 0 {
		t.Fatal("bench lost the simulated-time total")
	}
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := WriteBench(path, b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Bench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != b {
		t.Fatalf("bench round-trip drifted: %+v != %+v", back, b)
	}
}

// TestFleetProgressTicker: the progress line lands on the writer with
// the final counts.
func TestFleetProgressTicker(t *testing.T) {
	var buf strings.Builder
	jobs := testJobs(3)
	_, err := Run(context.Background(), jobs, Options{
		Parallel:      2,
		Progress:      &buf,
		ProgressEvery: time.Millisecond,
		Execute: func(cfg experiment.Config) (experiment.Result, error) {
			time.Sleep(5 * time.Millisecond)
			return fakeExecute(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fleet: 3/3 runs") {
		t.Fatalf("progress output lacks final line: %q", out)
	}
}
