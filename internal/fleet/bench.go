package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Bench is the machine-readable performance export of one fleet
// invocation — the BENCH_fleet.json record future perf PRs track. All
// times are wall-clock; SimHours is the total simulated time covered by
// executed runs, so SimHoursPerWallHour is the orchestrator's headline
// throughput multiple (≈ single-run speed × effective parallelism).
type Bench struct {
	Name             string  `json:"name"`
	Workers          int     `json:"workers"`
	Jobs             int     `json:"jobs"`
	Executed         int     `json:"executed"`
	Resumed          int     `json:"resumed"`
	Failed           int     `json:"failed"`
	Cancelled        int     `json:"cancelled"`
	WallSeconds      float64 `json:"wall_seconds"`
	RunsPerSec       float64 `json:"runs_per_sec"`
	SimHours         float64 `json:"sim_hours"`
	SimHoursPerWallH float64 `json:"sim_hours_per_wall_hour"`
	// ExecSeconds / JournalSeconds split where worker time went;
	// Utilization = ExecSeconds / (Workers × WallSeconds), so values well
	// below 1.0 point at dispatch overhead or journal contention rather
	// than slow simulations. MaxRSSKB is the process peak RSS after the
	// sweep (0 where getrusage is unavailable).
	ExecSeconds    float64 `json:"exec_seconds"`
	JournalSeconds float64 `json:"journal_seconds"`
	Utilization    float64 `json:"utilization"`
	MaxRSSKB       int64   `json:"max_rss_kb"`
}

// Bench summarises the report for export.
func (r Report) Bench() Bench {
	b := Bench{
		Name:        "fleet",
		Workers:     r.Workers,
		Jobs:        len(r.Records),
		Executed:    r.Executed,
		Resumed:     r.Resumed,
		Failed:      r.Failed,
		Cancelled:   r.Cancelled,
		WallSeconds: r.Wall.Seconds(),
		RunsPerSec:  r.RunsPerSec(),
	}
	b.ExecSeconds = r.ExecBusy.Seconds()
	b.JournalSeconds = r.JournalTime.Seconds()
	if denom := float64(r.Workers) * r.Wall.Seconds(); denom > 0 {
		b.Utilization = b.ExecSeconds / denom
	}
	b.MaxRSSKB = peakRSSKB()
	var sim time.Duration
	for _, rec := range r.Records {
		if rec.Status == StatusOK && rec.Result != nil {
			sim += rec.Result.Config.SimTime
		}
	}
	b.SimHours = sim.Hours()
	if wallH := r.Wall.Hours(); wallH > 0 {
		b.SimHoursPerWallH = b.SimHours / wallH
	}
	return b
}

// WriteBench writes the bench record as indented JSON at path.
func WriteBench(path string, b Bench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: marshal bench: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
