//go:build darwin

package fleet

const darwinMaxrssBytes = true
