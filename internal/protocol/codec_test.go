package protocol

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
)

func TestMarshalRoundTripAllKinds(t *testing.T) {
	for k := Kind(1); int(k) < NumKinds; k++ {
		m := Message{
			Kind:    k,
			Item:    7,
			Origin:  13,
			Version: 42,
			Seq:     99,
		}
		if k.carriesContent() {
			m.Copy = data.Copy{ID: 7, Version: 42, Value: data.ValueFor(7, 42), WrittenAt: 3 * time.Minute}
		}
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got.Kind != m.Kind || got.Item != m.Item || got.Origin != m.Origin ||
			got.Version != m.Version || got.Seq != m.Seq || got.Copy != m.Copy {
			t.Fatalf("%v round trip: %+v != %+v", k, got, m)
		}
	}
}

func TestMarshalRoundTripFullFields(t *testing.T) {
	m := Message{
		Kind:    KindGeoInv,
		Item:    3,
		Origin:  21,
		Version: 5,
		Seq:     77,
		Miss:    true,
		Path:    []int{0, 4, 9, 21},
		Pos:     geo.Point{X: 123.25, Y: -9.5},
		HasPos:  true,
		Copy:    data.Copy{ID: 3, Version: 5, Value: data.ValueFor(3, 5), WrittenAt: time.Hour},
	}
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Miss != m.Miss || got.HasPos != m.HasPos || got.Pos != m.Pos {
		t.Errorf("flags/pos: %+v", got)
	}
	if len(got.Path) != len(m.Path) {
		t.Fatalf("path: %v", got.Path)
	}
	for i := range m.Path {
		if got.Path[i] != m.Path[i] {
			t.Fatalf("path[%d] = %d", i, got.Path[i])
		}
	}
	if got.Copy != m.Copy {
		t.Errorf("copy: %+v != %+v", got.Copy, m.Copy)
	}
}

func TestMarshalRejectsInvalidKind(t *testing.T) {
	if _, err := Marshal(Message{}); err == nil {
		t.Fatal("zero-kind message marshalled")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},                                   // wrong magic
		{wireMagic, 99},                          // wrong version
		{wireMagic},                              // truncated
		{wireMagic, wireVersion, byte(KindPoll)}, // truncated after kind
	}
	for i, buf := range cases {
		if _, err := Unmarshal(buf); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	buf, err := Marshal(Message{Kind: KindPoll, Item: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(buf, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestUnmarshalCapsHostileLengths(t *testing.T) {
	// A legitimate prefix with an absurd path length must not allocate.
	m := Message{Kind: KindRREQ, Item: 1, Origin: 0}
	buf, _ := Marshal(m)
	// Rebuild with a forged path length: simplest is to marshal a valid
	// long path and check the cap directly instead.
	long := Message{Kind: KindRREQ, Item: 1, Path: make([]int, maxWirePath+1)}
	lbuf, err := Marshal(long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(lbuf); err == nil {
		t.Fatal("over-cap path accepted")
	}
	_ = buf
}

func TestRoundTripProperty(t *testing.T) {
	f := func(kind uint8, item uint8, origin uint8, version uint16, seq uint32, miss bool, x, y float64, hops []uint8) bool {
		k := Kind(int(kind)%(NumKinds-1)) + 1
		m := Message{
			Kind:    k,
			Item:    data.ItemID(item),
			Origin:  int(origin),
			Version: data.Version(version),
			Seq:     uint64(seq),
			Miss:    miss,
			HasPos:  true,
			Pos:     geo.Point{X: x, Y: y},
		}
		if len(hops) > maxWirePath {
			hops = hops[:maxWirePath]
		}
		for _, h := range hops {
			m.Path = append(m.Path, int(h))
		}
		if k.carriesContent() {
			m.Copy = data.Copy{ID: m.Item, Version: m.Version, Value: data.ValueFor(m.Item, m.Version)}
		}
		buf, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		if got.Kind != m.Kind || got.Item != m.Item || got.Origin != m.Origin ||
			got.Version != m.Version || got.Seq != m.Seq || got.Miss != m.Miss ||
			got.Copy != m.Copy || len(got.Path) != len(m.Path) {
			return false
		}
		// NaN positions cannot compare equal; accept bit-level identity
		// via the encoded buffer instead.
		buf2, err := Marshal(got)
		if err != nil {
			return false
		}
		if len(buf2) != len(buf) {
			return false
		}
		for i := range buf {
			if buf[i] != buf2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
