package protocol

import (
	"encoding/binary"
	"fmt"
)

// Frame is the transport envelope that wraps a Message when it crosses a
// real network. The simulator needs no envelope (addressing lives in the
// event, not the bytes), but a UDP datagram must carry its own routing
// header: who sent it, who it is for, and — for floods — how many hops
// of life it has left so a multi-segment deployment can re-propagate.
//
// Wire layout, integers varint/uvarint-encoded unless noted:
//
//	magic byte 0xAF | version byte | flags byte |
//	from | to | ttl | seq | payload = Marshal(Msg) (rest of datagram)
//
// Flags: bit 0 = flood (To is meaningless; every receiver delivers).
type Frame struct {
	// From is the sending node id.
	From int
	// To is the destination node id for unicast frames; ignored when
	// Flood is set.
	To int
	// TTL is the remaining hop budget of a flood (0 for unicasts).
	TTL int
	// Flood marks a broadcast frame: every node on the segment delivers
	// it except the origin.
	Flood bool
	// Seq is a sender-local sequence number used for flood suppression
	// and tracing; it is independent of Msg.Seq.
	Seq uint64
	// Msg is the protocol message being carried.
	Msg Message
}

const (
	frameMagic   = 0xAF
	frameVersion = 1

	frameFlagFlood = 1 << 0

	// maxFrameTTL bounds decoded hop budgets; no MANET flood is deeper,
	// and the cap keeps a hostile TTL from looking like a sane one.
	maxFrameTTL = 1024
)

// MarshalFrame encodes f, including its embedded message, into a single
// datagram-sized buffer.
func MarshalFrame(f Frame) ([]byte, error) {
	if f.From < 0 {
		return nil, fmt.Errorf("protocol: frame from %d must be >= 0", f.From)
	}
	if !f.Flood && f.To < 0 {
		return nil, fmt.Errorf("protocol: unicast frame to %d must be >= 0", f.To)
	}
	if f.TTL < 0 || f.TTL > maxFrameTTL {
		return nil, fmt.Errorf("protocol: frame ttl %d out of range [0,%d]", f.TTL, maxFrameTTL)
	}
	payload, err := Marshal(f.Msg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(payload)+24)
	buf = append(buf, frameMagic, frameVersion)
	var flags byte
	if f.Flood {
		flags |= frameFlagFlood
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, int64(f.From))
	buf = binary.AppendVarint(buf, int64(f.To))
	buf = binary.AppendVarint(buf, int64(f.TTL))
	buf = binary.AppendUvarint(buf, f.Seq)
	return append(buf, payload...), nil
}

// UnmarshalFrame decodes a datagram back into a Frame. Like Unmarshal it
// is bounded and total: arbitrary input returns an error, never panics,
// and never allocates more than the datagram itself justifies.
func UnmarshalFrame(buf []byte) (Frame, error) {
	d := &decoder{buf: buf}
	if d.byte() != frameMagic {
		return Frame{}, fmt.Errorf("protocol: bad frame magic")
	}
	if v := d.byte(); v != frameVersion && d.err == nil {
		return Frame{}, fmt.Errorf("protocol: unsupported frame version %d", v)
	}
	flags := d.byte()
	if flags&^byte(frameFlagFlood) != 0 && d.err == nil {
		return Frame{}, fmt.Errorf("protocol: unknown frame flag bits %#x", flags)
	}
	var f Frame
	f.Flood = flags&frameFlagFlood != 0
	f.From = int(d.varint())
	f.To = int(d.varint())
	f.TTL = int(d.varint())
	f.Seq = d.uvarint()
	if d.err != nil {
		return Frame{}, d.err
	}
	if f.From < 0 {
		return Frame{}, fmt.Errorf("protocol: frame from %d must be >= 0", f.From)
	}
	if !f.Flood && f.To < 0 {
		return Frame{}, fmt.Errorf("protocol: unicast frame to %d must be >= 0", f.To)
	}
	if f.TTL < 0 || f.TTL > maxFrameTTL {
		return Frame{}, fmt.Errorf("protocol: frame ttl %d out of range [0,%d]", f.TTL, maxFrameTTL)
	}
	msg, err := Unmarshal(buf[d.off:])
	if err != nil {
		return Frame{}, err
	}
	f.Msg = msg
	return f, nil
}
