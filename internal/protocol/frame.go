package protocol

import (
	"encoding/binary"
	"fmt"
)

// Frame is the transport envelope that wraps a Message when it crosses a
// real network. The simulator needs no envelope (addressing lives in the
// event, not the bytes), but a UDP datagram must carry its own routing
// header: who sent it, who it is for, and — for floods — how many hops
// of life it has left so a multi-segment deployment can re-propagate.
//
// Wire layout, integers varint/uvarint-encoded unless noted:
//
//	magic byte 0xAF | version byte | flags byte |
//	from | to | ttl | seq | [trace ext] | payload = Marshal(Msg)
//
// Flags: bit 0 = flood (To is meaningless; every receiver delivers),
// bit 1 = trace extension present (version 2 only).
//
// Version 1 is the original header with no extension. Version 2 adds an
// optional causal-tracing extension — three uvarints (TraceID, SpanID,
// ParentSpanID) after seq, announced by the trace flag — and is emitted
// only when the carried message actually has a trace context, so
// untraced traffic stays byte-identical to version 1. Decoders accept
// both versions; a version-1 frame carrying the trace flag is malformed.
type Frame struct {
	// From is the sending node id.
	From int
	// To is the destination node id for unicast frames; ignored when
	// Flood is set.
	To int
	// TTL is the remaining hop budget of a flood (0 for unicasts).
	TTL int
	// Flood marks a broadcast frame: every node on the segment delivers
	// it except the origin.
	Flood bool
	// Seq is a sender-local sequence number used for flood suppression
	// and tracing; it is independent of Msg.Seq.
	Seq uint64
	// Msg is the protocol message being carried.
	Msg Message
}

const (
	frameMagic    = 0xAF
	frameVersion  = 1 // plain header, no extensions
	frameVersion2 = 2 // adds the optional trace extension

	frameFlagFlood = 1 << 0
	frameFlagTrace = 1 << 1 // version 2 only: trace triple follows seq

	// maxFrameTTL bounds decoded hop budgets; no MANET flood is deeper,
	// and the cap keeps a hostile TTL from looking like a sane one.
	maxFrameTTL = 1024
)

// MarshalFrame encodes f, including its embedded message, into a single
// datagram-sized buffer.
func MarshalFrame(f Frame) ([]byte, error) {
	if f.From < 0 {
		return nil, fmt.Errorf("protocol: frame from %d must be >= 0", f.From)
	}
	if !f.Flood && f.To < 0 {
		return nil, fmt.Errorf("protocol: unicast frame to %d must be >= 0", f.To)
	}
	if f.TTL < 0 || f.TTL > maxFrameTTL {
		return nil, fmt.Errorf("protocol: frame ttl %d out of range [0,%d]", f.TTL, maxFrameTTL)
	}
	payload, err := Marshal(f.Msg)
	if err != nil {
		return nil, err
	}
	traced := !f.Msg.Trace.Zero()
	buf := make([]byte, 0, len(payload)+54)
	version := byte(frameVersion)
	if traced {
		version = frameVersion2
	}
	buf = append(buf, frameMagic, version)
	var flags byte
	if f.Flood {
		flags |= frameFlagFlood
	}
	if traced {
		flags |= frameFlagTrace
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, int64(f.From))
	buf = binary.AppendVarint(buf, int64(f.To))
	buf = binary.AppendVarint(buf, int64(f.TTL))
	buf = binary.AppendUvarint(buf, f.Seq)
	if traced {
		buf = binary.AppendUvarint(buf, f.Msg.Trace.TraceID)
		buf = binary.AppendUvarint(buf, f.Msg.Trace.SpanID)
		buf = binary.AppendUvarint(buf, f.Msg.Trace.ParentID)
	}
	return append(buf, payload...), nil
}

// UnmarshalFrame decodes a datagram back into a Frame. Like Unmarshal it
// is bounded and total: arbitrary input returns an error, never panics,
// and never allocates more than the datagram itself justifies.
func UnmarshalFrame(buf []byte) (Frame, error) {
	d := &decoder{buf: buf}
	if d.byte() != frameMagic {
		return Frame{}, fmt.Errorf("protocol: bad frame magic")
	}
	version := d.byte()
	if version != frameVersion && version != frameVersion2 && d.err == nil {
		return Frame{}, fmt.Errorf("protocol: unsupported frame version %d", version)
	}
	known := byte(frameFlagFlood)
	if version == frameVersion2 {
		known |= frameFlagTrace
	}
	flags := d.byte()
	if flags&^known != 0 && d.err == nil {
		return Frame{}, fmt.Errorf("protocol: unknown frame flag bits %#x for version %d", flags, version)
	}
	var f Frame
	f.Flood = flags&frameFlagFlood != 0
	f.From = int(d.varint())
	f.To = int(d.varint())
	f.TTL = int(d.varint())
	f.Seq = d.uvarint()
	var tc TraceContext
	if flags&frameFlagTrace != 0 {
		tc.TraceID = d.uvarint()
		tc.SpanID = d.uvarint()
		tc.ParentID = d.uvarint()
		if tc.TraceID == 0 && d.err == nil {
			return Frame{}, fmt.Errorf("protocol: frame trace extension with reserved trace id 0")
		}
	}
	if d.err != nil {
		return Frame{}, d.err
	}
	if f.From < 0 {
		return Frame{}, fmt.Errorf("protocol: frame from %d must be >= 0", f.From)
	}
	if !f.Flood && f.To < 0 {
		return Frame{}, fmt.Errorf("protocol: unicast frame to %d must be >= 0", f.To)
	}
	if f.TTL < 0 || f.TTL > maxFrameTTL {
		return Frame{}, fmt.Errorf("protocol: frame ttl %d out of range [0,%d]", f.TTL, maxFrameTTL)
	}
	msg, err := Unmarshal(buf[d.off:])
	if err != nil {
		return Frame{}, err
	}
	f.Msg = msg
	f.Msg.Trace = tc
	return f, nil
}
