package protocol

import (
	"strings"
	"testing"

	"github.com/manetlab/rpcc/internal/data"
)

// TestEveryKindOnTheWire is the exhaustiveness guard for the codec side:
// adding a Kind without wiring it through naming, sizing, the message
// codec, and the frame envelope must fail here, not silently fall off
// the wire. (The stats.Traffic accounting side of the guard lives in
// internal/stats, which owns the per-kind arrays.)
func TestEveryKindOnTheWire(t *testing.T) {
	if NumKinds != len(kindNames) {
		t.Fatalf("NumKinds=%d but kindNames has %d entries — name the new kind", NumKinds, len(kindNames))
	}
	for k := Kind(1); int(k) < NumKinds; k++ {
		if !k.Valid() {
			t.Fatalf("kind %d invalid inside the declared range", k)
		}
		if name := k.String(); name == "" || strings.HasPrefix(name, "Kind(") {
			t.Errorf("kind %d has no wire name", k)
		}

		msg := Message{Kind: k, Item: 2, Origin: 5, Version: 6, Seq: 8}
		if k.carriesContent() {
			msg.Copy = data.Copy{ID: 2, Version: 6, Value: data.ValueFor(2, 6), WrittenAt: 1}
		}
		if msg.Size() <= 0 {
			t.Errorf("%v: non-positive nominal size", k)
		}
		if err := msg.Validate(); err != nil {
			t.Errorf("%v: canonical message invalid: %v", k, err)
		}

		// Message codec entry.
		buf, err := Marshal(msg)
		if err != nil {
			t.Errorf("%v: no codec encode entry: %v", k, err)
			continue
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Errorf("%v: no codec decode entry: %v", k, err)
			continue
		}
		if got.Kind != k {
			t.Errorf("%v: decoded as %v", k, got.Kind)
		}

		// Frame envelope entry (the real-transport path).
		fbuf, err := MarshalFrame(Frame{From: 5, To: 2, Seq: 1, Msg: msg})
		if err != nil {
			t.Errorf("%v: no frame encode entry: %v", k, err)
			continue
		}
		if fr, err := UnmarshalFrame(fbuf); err != nil {
			t.Errorf("%v: no frame decode entry: %v", k, err)
		} else if fr.Msg.Kind != k {
			t.Errorf("%v: frame decoded payload as %v", k, fr.Msg.Kind)
		}
	}

	// The sentinel itself must stay outside the wire.
	if kindMax.Valid() {
		t.Error("sentinel kindMax reports valid")
	}
	if _, err := Marshal(Message{Kind: kindMax}); err == nil {
		t.Error("sentinel kindMax marshalled")
	}
}
