package protocol

import (
	"bytes"
	"testing"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
)

// TestFrameRoundTripAllKinds wraps one message of every kind in both a
// unicast and a flood frame and asserts the round trip is exact — the
// encode→decode→encode path must also be byte-identical, since frames
// (unlike bare varint fuzz inputs) are always canonically produced.
func TestFrameRoundTripAllKinds(t *testing.T) {
	for k := Kind(1); int(k) < NumKinds; k++ {
		msg := Message{Kind: k, Item: 3, Origin: 7, Version: 9, Seq: 11}
		if k.carriesContent() {
			msg.Copy = data.Copy{ID: 3, Version: 9, Value: data.ValueFor(3, 9), WrittenAt: 42}
		}
		for _, f := range []Frame{
			{From: 7, To: 3, Seq: 100, Msg: msg},
			{From: 7, TTL: 8, Flood: true, Seq: 101, Msg: msg},
		} {
			buf, err := MarshalFrame(f)
			if err != nil {
				t.Fatalf("%v: marshal frame: %v", k, err)
			}
			got, err := UnmarshalFrame(buf)
			if err != nil {
				t.Fatalf("%v: unmarshal frame: %v", k, err)
			}
			if got.From != f.From || got.To != f.To || got.TTL != f.TTL ||
				got.Flood != f.Flood || got.Seq != f.Seq {
				t.Fatalf("%v: header drifted: sent %+v got %+v", k, f, got)
			}
			if got.Msg.Kind != msg.Kind || got.Msg.Item != msg.Item ||
				got.Msg.Copy != msg.Copy || got.Msg.Seq != msg.Seq {
				t.Fatalf("%v: payload drifted: sent %+v got %+v", k, msg, got.Msg)
			}
			re, err := MarshalFrame(got)
			if err != nil {
				t.Fatalf("%v: re-marshal: %v", k, err)
			}
			if !bytes.Equal(buf, re) {
				t.Fatalf("%v: re-encode not byte-identical:\n first: %x\nsecond: %x", k, buf, re)
			}
		}
	}
}

func TestFrameRoundTripFullFields(t *testing.T) {
	f := Frame{
		From: 12, To: 0, Seq: 1 << 40,
		Msg: Message{
			Kind: KindGeoInv, Item: 5, Origin: 12, Version: 77, Seq: 9, Miss: true,
			Path: []int{4, 9, 2}, HasPos: true, Pos: geo.Point{X: 120.5, Y: -3.25},
		},
	}
	buf, err := MarshalFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Msg.Pos != f.Msg.Pos || !got.Msg.HasPos || !got.Msg.Miss ||
		len(got.Msg.Path) != 3 || got.Msg.Path[1] != 9 {
		t.Fatalf("full-field frame drifted: %+v", got)
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	good, err := MarshalFrame(Frame{From: 1, To: 2, Msg: Message{Kind: KindPoll, Item: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte{0x00}, good[1:]...),
		"bad version":     append([]byte{frameMagic, 99}, good[2:]...),
		"unknown flags":   append([]byte{frameMagic, frameVersion, 0xF0}, good[3:]...),
		"truncated":       good[:4],
		"empty payload":   good[:7],
		"message garbage": append(append([]byte{}, good[:7]...), 0xDE, 0xAD),
	}
	for name, buf := range cases {
		if _, err := UnmarshalFrame(buf); err == nil {
			t.Errorf("%s: malformed frame accepted", name)
		}
	}
}

func TestFrameRejectsBadHeaderValues(t *testing.T) {
	msg := Message{Kind: KindPoll, Item: 1}
	if _, err := MarshalFrame(Frame{From: -1, To: 2, Msg: msg}); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := MarshalFrame(Frame{From: 1, To: -2, Msg: msg}); err == nil {
		t.Error("negative unicast to accepted")
	}
	if _, err := MarshalFrame(Frame{From: 1, Flood: true, TTL: maxFrameTTL + 1, Msg: msg}); err == nil {
		t.Error("oversized ttl accepted")
	}
	if _, err := MarshalFrame(Frame{From: 1, To: 2, Msg: Message{}}); err == nil {
		t.Error("invalid inner message accepted")
	}

	// A hand-built frame with a hostile TTL must be rejected at decode.
	hostile := Frame{From: 1, Flood: true, TTL: 5, Msg: msg}
	buf, err := MarshalFrame(hostile)
	if err != nil {
		t.Fatal(err)
	}
	// The TTL varint is one byte here (5); corrupt it to a two-byte
	// varint by rebuilding the frame from parts is overkill — instead
	// assert the decoder's cap directly with a valid-at-cap frame.
	atCap := Frame{From: 1, Flood: true, TTL: maxFrameTTL, Msg: msg}
	if capBuf, err := MarshalFrame(atCap); err != nil {
		t.Fatal(err)
	} else if _, err := UnmarshalFrame(capBuf); err != nil {
		t.Errorf("ttl at cap rejected: %v", err)
	}
	if _, err := UnmarshalFrame(buf); err != nil {
		t.Errorf("valid flood frame rejected: %v", err)
	}
}

func BenchmarkFrameMarshal(b *testing.B) {
	f := Frame{From: 1, To: 2, Seq: 7, Msg: Message{
		Kind: KindUpdate, Item: 3, Origin: 1, Version: 9,
		Copy: data.Copy{ID: 3, Version: 9, Value: data.ValueFor(3, 9)},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalFrame(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameUnmarshal(b *testing.B) {
	buf, err := MarshalFrame(Frame{From: 1, To: 2, Seq: 7, Msg: Message{
		Kind: KindUpdate, Item: 3, Origin: 1, Version: 9,
		Copy: data.Copy{ID: 3, Version: 9, Value: data.ValueFor(3, 9)},
	}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}
