package protocol

import (
	"bytes"
	"testing"

	"github.com/manetlab/rpcc/internal/data"
)

// TestFrameTraceRoundTrip injects a trace context into every message kind
// and asserts the version-2 extension carries it exactly, that re-encoding
// is byte-identical, and that stripping the context drops the frame back
// to a byte-identical version-1 encoding.
func TestFrameTraceRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 1 << 33, SpanID: 42, ParentID: 7}
	for k := Kind(1); int(k) < NumKinds; k++ {
		msg := Message{Kind: k, Item: 3, Origin: 7, Version: 9, Seq: 11, Trace: tc}
		if k.carriesContent() {
			msg.Copy = data.Copy{ID: 3, Version: 9, Value: data.ValueFor(3, 9)}
		}
		for _, f := range []Frame{
			{From: 7, To: 3, Seq: 100, Msg: msg},
			{From: 7, TTL: 8, Flood: true, Seq: 101, Msg: msg},
		} {
			buf, err := MarshalFrame(f)
			if err != nil {
				t.Fatalf("%v: marshal traced frame: %v", k, err)
			}
			if buf[1] != frameVersion2 {
				t.Fatalf("%v: traced frame emitted version %d, want %d", k, buf[1], frameVersion2)
			}
			if buf[2]&frameFlagTrace == 0 {
				t.Fatalf("%v: traced frame missing trace flag (flags %#x)", k, buf[2])
			}
			got, err := UnmarshalFrame(buf)
			if err != nil {
				t.Fatalf("%v: unmarshal traced frame: %v", k, err)
			}
			if got.Msg.Trace != tc {
				t.Fatalf("%v: trace context drifted: sent %+v got %+v", k, tc, got.Msg.Trace)
			}
			re, err := MarshalFrame(got)
			if err != nil {
				t.Fatalf("%v: re-marshal: %v", k, err)
			}
			if !bytes.Equal(buf, re) {
				t.Fatalf("%v: traced re-encode not byte-identical", k)
			}

			// The same frame without a context must be the version-1
			// encoding, byte for byte: tracing off is wire-invisible.
			plain := f
			plain.Msg.Trace = TraceContext{}
			pbuf, err := MarshalFrame(plain)
			if err != nil {
				t.Fatalf("%v: marshal untraced frame: %v", k, err)
			}
			if pbuf[1] != frameVersion {
				t.Fatalf("%v: untraced frame emitted version %d, want %d", k, pbuf[1], frameVersion)
			}
			pgot, err := UnmarshalFrame(pbuf)
			if err != nil {
				t.Fatalf("%v: unmarshal untraced frame: %v", k, err)
			}
			if !pgot.Msg.Trace.Zero() {
				t.Fatalf("%v: untraced frame decoded a context: %+v", k, pgot.Msg.Trace)
			}
		}
	}
}

// TestFrameOldVersionCompat pins the compatibility contract: version-1
// frames (what every pre-trace daemon emits) decode cleanly and come back
// with a zero trace context, and a version-1 frame claiming the trace
// flag is rejected — the flag only exists in version 2.
func TestFrameOldVersionCompat(t *testing.T) {
	f := Frame{From: 1, To: 2, Seq: 5, Msg: Message{Kind: KindPoll, Item: 1, Origin: 1}}
	buf, err := MarshalFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if buf[1] != frameVersion {
		t.Fatalf("untraced frame should be version 1, got %d", buf[1])
	}
	got, err := UnmarshalFrame(buf)
	if err != nil {
		t.Fatalf("version-1 frame rejected: %v", err)
	}
	if !got.Msg.Trace.Zero() {
		t.Fatalf("version-1 frame decoded a trace context: %+v", got.Msg.Trace)
	}

	// Flip the trace flag on without upgrading the version: malformed.
	bad := append([]byte{}, buf...)
	bad[2] |= frameFlagTrace
	if _, err := UnmarshalFrame(bad); err == nil {
		t.Error("version-1 frame with trace flag accepted")
	}

	// A version-2 frame without the trace flag is a legal (if
	// non-canonical) encoding of an untraced frame.
	v2 := append([]byte{}, buf...)
	v2[1] = frameVersion2
	got2, err := UnmarshalFrame(v2)
	if err != nil {
		t.Fatalf("version-2 frame without trace flag rejected: %v", err)
	}
	if !got2.Msg.Trace.Zero() || got2.Msg.Kind != f.Msg.Kind {
		t.Fatalf("version-2 plain frame drifted: %+v", got2)
	}
}

// TestFrameTraceRejectsMalformed covers the extension's decode bounds: a
// truncated extension, and the reserved trace id 0.
func TestFrameTraceRejectsMalformed(t *testing.T) {
	tc := TraceContext{TraceID: 9, SpanID: 4, ParentID: 2}
	buf, err := MarshalFrame(Frame{From: 1, To: 2, Msg: Message{Kind: KindPoll, Item: 1, Trace: tc}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere inside the frame must error, never panic: the
	// decoder reads a fixed field sequence, so every strict prefix cuts a
	// field (or leaves an empty payload) and must be rejected.
	for n := 0; n < len(buf); n++ {
		if _, err := UnmarshalFrame(buf[:n]); err == nil {
			t.Fatalf("truncated traced frame of %d/%d bytes accepted", n, len(buf))
		}
	}
	// Reserved trace id 0: hand-encode the extension with TraceID 0.
	zero := Frame{From: 1, To: 2, Msg: Message{Kind: KindPoll, Item: 1, Trace: TraceContext{TraceID: 1, SpanID: 4, ParentID: 2}}}
	zbuf, err := MarshalFrame(zero)
	if err != nil {
		t.Fatal(err)
	}
	// TraceID 1 encodes as the single byte 0x01 right after seq; find it
	// by re-encoding with TraceID 0 manually: the extension starts at the
	// byte where the two encodings diverge.
	i := len(zbuf) - 1
	for j := range zbuf {
		if j < len(buf) && zbuf[j] != buf[j] {
			i = j
			break
		}
	}
	zbuf[i] = 0x00
	if _, err := UnmarshalFrame(zbuf); err == nil {
		t.Error("trace extension with reserved trace id 0 accepted")
	}
}
