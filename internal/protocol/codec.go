package protocol

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
)

// timeDuration converts the wire integer back to the virtual timestamp.
func timeDuration(v int64) time.Duration { return time.Duration(v) }

// Wire format. The simulator itself passes Message values in memory; this
// codec exists so the protocol can cross a real transport (UDP broadcast,
// Bluetooth L2CAP) unchanged, and so tests can assert that every field
// survives a round trip. Layout, all integers varint-encoded unless
// noted:
//
//	magic byte 0xRC | version byte | kind | flags | item | origin |
//	version | seq | path(len + entries) |
//	[pos: 2 × float64 LE, if flagPos] |
//	[copy: id, version, writtenAt, value(len + bytes), if flagCopy]
const (
	wireMagic   = 0xAC
	wireVersion = 1

	flagPos  = 1 << 0
	flagMiss = 1 << 1
	flagCopy = 1 << 2
)

// Marshal encodes m into the binary wire format.
func Marshal(m Message) ([]byte, error) {
	if !m.Kind.Valid() {
		return nil, fmt.Errorf("protocol: marshal of invalid kind %v", m.Kind)
	}
	buf := make([]byte, 0, m.Size()+16)
	buf = append(buf, wireMagic, wireVersion, byte(m.Kind))

	var flags byte
	if m.HasPos {
		flags |= flagPos
	}
	if m.Miss {
		flags |= flagMiss
	}
	hasCopy := m.Copy != (data.Copy{})
	if hasCopy {
		flags |= flagCopy
	}
	buf = append(buf, flags)

	buf = binary.AppendVarint(buf, int64(m.Item))
	buf = binary.AppendVarint(buf, int64(m.Origin))
	buf = binary.AppendUvarint(buf, uint64(m.Version))
	buf = binary.AppendUvarint(buf, m.Seq)

	buf = binary.AppendUvarint(buf, uint64(len(m.Path)))
	for _, hop := range m.Path {
		buf = binary.AppendVarint(buf, int64(hop))
	}
	if m.HasPos {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Pos.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Pos.Y))
	}
	if hasCopy {
		buf = binary.AppendVarint(buf, int64(m.Copy.ID))
		buf = binary.AppendUvarint(buf, uint64(m.Copy.Version))
		buf = binary.AppendVarint(buf, int64(m.Copy.WrittenAt))
		buf = binary.AppendUvarint(buf, uint64(len(m.Copy.Value)))
		buf = append(buf, m.Copy.Value...)
	}
	return buf, nil
}

// decoder walks a wire buffer with error-latching reads.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("protocol: truncated message at byte %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("protocol: bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("protocol: bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = fmt.Errorf("protocol: truncated float at byte %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(d.off)+n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("protocol: truncated bytes at byte %d", d.off)
		return nil
	}
	out := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// maxWirePath bounds decoded path lengths; no MANET source route is
// longer, and the cap stops a hostile length prefix from allocating
// gigabytes.
const maxWirePath = 256

// maxWireValue bounds decoded payload lengths (1 MiB).
const maxWireValue = 1 << 20

// Unmarshal decodes a wire buffer back into a Message.
func Unmarshal(buf []byte) (Message, error) {
	d := &decoder{buf: buf}
	if d.byte() != wireMagic {
		return Message{}, fmt.Errorf("protocol: bad magic")
	}
	if v := d.byte(); v != wireVersion && d.err == nil {
		return Message{}, fmt.Errorf("protocol: unsupported wire version %d", v)
	}
	var m Message
	m.Kind = Kind(d.byte())
	flags := d.byte()
	if flags&^(byte(flagPos|flagMiss|flagCopy)) != 0 && d.err == nil {
		return Message{}, fmt.Errorf("protocol: unknown flag bits %#x", flags)
	}
	m.Item = data.ItemID(d.varint())
	m.Origin = int(d.varint())
	m.Version = data.Version(d.uvarint())
	m.Seq = d.uvarint()

	pathLen := d.uvarint()
	if d.err == nil && pathLen > maxWirePath {
		return Message{}, fmt.Errorf("protocol: path length %d exceeds cap", pathLen)
	}
	if pathLen > 0 && d.err == nil {
		m.Path = make([]int, pathLen)
		for i := range m.Path {
			m.Path[i] = int(d.varint())
		}
	}
	if flags&flagPos != 0 {
		m.HasPos = true
		m.Pos = geo.Point{X: d.float64(), Y: d.float64()}
	}
	m.Miss = flags&flagMiss != 0
	if flags&flagCopy != 0 {
		m.Copy.ID = data.ItemID(d.varint())
		m.Copy.Version = data.Version(d.uvarint())
		m.Copy.WrittenAt = timeDuration(d.varint())
		n := d.uvarint()
		if d.err == nil && n > maxWireValue {
			return Message{}, fmt.Errorf("protocol: value length %d exceeds cap", n)
		}
		m.Copy.Value = string(d.bytes(n))
	}
	if d.err != nil {
		return Message{}, d.err
	}
	if d.off != len(buf) {
		return Message{}, fmt.Errorf("protocol: %d trailing bytes", len(buf)-d.off)
	}
	if !m.Kind.Valid() {
		return Message{}, fmt.Errorf("protocol: decoded invalid kind %d", m.Kind)
	}
	return m, nil
}
