// Package protocol defines the wire messages of the cache-consistency
// protocols: the ten RPCC message types of Fig 6(a) plus the generic data
// query/fetch messages the cooperative-caching substrate needs and the
// invalidation-report message used by the simple push baseline.
//
// Each message reports a nominal wire size so the simulator can account
// traffic in bytes as well as transmissions. Sizes follow the usual
// mobile-caching simulation convention: small fixed-size control headers
// and a larger payload for messages that carry data item content.
package protocol

import (
	"fmt"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
)

// Kind enumerates every message type in the system.
type Kind int

// Message kinds. Values start at 1 so the zero Kind is detectably unset.
const (
	KindInvalid Kind = iota
	// RPCC messages (Fig 6a).
	KindInvalidation // source host -> flood: periodic version announcement
	KindUpdate       // source host -> relay peers: eager new content push
	KindGetNew       // relay peer -> source host: fetch missed update
	KindSendNew      // source host -> relay peer: reply to GET_NEW
	KindApply        // candidate -> source host: request relay promotion
	KindApplyAck     // source host -> candidate: grant promotion
	KindCancel       // relay peer -> source host: resign relay role
	KindPoll         // cache node -> flood: find a relay peer / validate
	KindPollAckA     // relay peer -> cache node: your copy is up-to-date
	KindPollAckB     // relay peer -> cache node: stale; here is new content
	// Cooperative-caching substrate messages.
	KindDataRequest // cache miss: flood searching for any copy
	KindDataReply   // copy holder -> requester: content
	// Baseline messages.
	KindIR        // simple push: periodic invalidation report flood
	KindPullPoll  // simple pull: per-query poll flooded toward source
	KindPullReply // simple pull: source's answer carrying new content
	KindPullAck   // simple pull: source's answer when the copy is current
	// Routing-layer messages (DSR-style on-demand source routing).
	KindRREQ // route request flood
	KindRREP // route reply carrying the discovered path
	KindRERR // route error: a source-routed hop found its link broken
	// Replica-consistency messages (§6 future work: multi-writer
	// replicas with last-writer-wins merge).
	KindReplicaWrite  // eager write propagation flood
	KindReplicaDigest // anti-entropy digest: (clock, writer) of newest write
	KindReplicaSync   // anti-entropy repair carrying the newer value
	// Location-aided (GPSCE-style) messages.
	KindRegister // cache node -> source: position registration
	KindGeoInv   // source -> cache node: geo-routed invalidation
	kindMax      // sentinel for validation and dense counters
)

// NumKinds is the number of valid message kinds; stats arrays index by
// Kind directly.
const NumKinds = int(kindMax)

// kindNames is indexed by Kind.
var kindNames = [...]string{
	KindInvalid:       "INVALID",
	KindInvalidation:  "INVALIDATION",
	KindUpdate:        "UPDATE",
	KindGetNew:        "GET_NEW",
	KindSendNew:       "SEND_NEW",
	KindApply:         "APPLY",
	KindApplyAck:      "APPLY_ACK",
	KindCancel:        "CANCEL",
	KindPoll:          "POLL",
	KindPollAckA:      "POLL_ACK_A",
	KindPollAckB:      "POLL_ACK_B",
	KindDataRequest:   "DATA_REQUEST",
	KindDataReply:     "DATA_REPLY",
	KindIR:            "IR",
	KindPullPoll:      "PULL_POLL",
	KindPullReply:     "PULL_REPLY",
	KindPullAck:       "PULL_ACK",
	KindRREQ:          "RREQ",
	KindRREP:          "RREP",
	KindRERR:          "RERR",
	KindReplicaWrite:  "REPLICA_WRITE",
	KindReplicaDigest: "REPLICA_DIGEST",
	KindReplicaSync:   "REPLICA_SYNC",
	KindRegister:      "REGISTER",
	KindGeoInv:        "GEO_INV",
}

// String renders the kind in the paper's message-name style.
func (k Kind) String() string {
	if k <= KindInvalid || k >= kindMax {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Valid reports whether k is one of the defined message kinds.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindMax }

// Nominal wire sizes in bytes. Control messages carry identifiers and
// version numbers; data-bearing messages add the item payload.
const (
	headerBytes  = 32   // ids, versions, TTL, addressing
	payloadBytes = 1024 // one data item's content
)

// TraceContext is the causal-tracing triple threaded through protocol
// messages: the trace (one end-to-end operation: a query, an update
// round, an invalidation wave), the span that caused this message to be
// sent, and that span's parent. A zero TraceContext means "untraced";
// TraceID 0 is reserved for that meaning and never assigned to a live
// trace.
//
// The context is observability metadata, not protocol state: no handler
// may branch on it, it contributes zero bytes to Message.Size() (so the
// simulated transmission timing of a traced run is identical to an
// untraced one), and on the wire it rides an optional version-gated
// frame extension that old decoders never see.
type TraceContext struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
}

// Zero reports whether the context is unset (the message is untraced).
func (t TraceContext) Zero() bool { return t == TraceContext{} }

// Message is a protocol message. A single struct covers all kinds; unused
// fields stay zero. Keeping one concrete type (rather than an interface
// per kind) keeps the simulator's hot path allocation-free and the
// per-kind traffic accounting trivial.
type Message struct {
	Kind Kind
	Item data.ItemID
	// Origin is the host that created the message (the paper's OP/RP/CP
	// field depending on kind).
	Origin int
	// Version is the version the message announces or acknowledges.
	Version data.Version
	// Copy is the data content for content-bearing kinds (UPDATE,
	// SEND_NEW, POLL_ACK_B, DATA_REPLY, PULL_REPLY).
	Copy data.Copy
	// Seq disambiguates poll/request rounds so late replies to an
	// abandoned round are ignored.
	Seq uint64
	// Miss marks a poll from a requester holding no copy at all: the
	// authority must reply with content, not a bare acknowledgement.
	Miss bool
	// Path is the source route for DSR-routed messages (and the
	// discovered route inside RREP); empty under oracle routing.
	Path []int
	// Pos carries the sender's GPS position for location-aided kinds
	// (REGISTER, GEO_INV and the geo-routed fetch pair); HasPos marks it
	// meaningful.
	Pos    geo.Point
	HasPos bool
	// Trace is the causal-tracing context of the send that produced this
	// message; zero when tracing is off. It is invisible to Size(),
	// Validate() and every protocol handler.
	Trace TraceContext
}

// carriesContent reports whether the kind includes a full data payload.
func (k Kind) carriesContent() bool {
	switch k {
	case KindUpdate, KindSendNew, KindPollAckB, KindDataReply, KindPullReply:
		return true
	default:
		return false
	}
}

// Size returns the nominal wire size of the message in bytes. Source
// routes add four bytes per hop, as in DSR's source-route header; replica
// payloads are counted at their actual length.
func (m Message) Size() int {
	size := headerBytes + 4*len(m.Path)
	if m.Kind.carriesContent() {
		size += payloadBytes
	}
	if m.Kind == KindReplicaWrite || m.Kind == KindReplicaSync {
		size += len(m.Copy.Value)
	}
	if m.HasPos {
		size += 8 // two float32 coordinates, GPS precision
	}
	return size
}

// Validate reports structural problems in a message: unset kind, missing
// payload on content-bearing kinds, or a payload inconsistent with the
// claimed version.
func (m Message) Validate() error {
	if !m.Kind.Valid() {
		return fmt.Errorf("protocol: invalid kind %v", m.Kind)
	}
	if m.Kind.carriesContent() {
		if m.Copy.ID != m.Item {
			return fmt.Errorf("protocol: %v carries copy of %v, item field says %v", m.Kind, m.Copy.ID, m.Item)
		}
		if !m.Copy.Consistent() {
			return fmt.Errorf("protocol: %v carries torn copy %v v%d", m.Kind, m.Copy.ID, m.Copy.Version)
		}
	}
	return nil
}

// String renders a compact trace line, e.g. "UPDATE(D3 v7 from M2)".
func (m Message) String() string {
	return fmt.Sprintf("%v(%v v%d from M%d)", m.Kind, m.Item, m.Version, m.Origin)
}
