package protocol

import (
	"strings"
	"testing"

	"github.com/manetlab/rpcc/internal/data"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindInvalidation, "INVALIDATION"},
		{KindUpdate, "UPDATE"},
		{KindGetNew, "GET_NEW"},
		{KindSendNew, "SEND_NEW"},
		{KindApply, "APPLY"},
		{KindApplyAck, "APPLY_ACK"},
		{KindCancel, "CANCEL"},
		{KindPoll, "POLL"},
		{KindPollAckA, "POLL_ACK_A"},
		{KindPollAckB, "POLL_ACK_B"},
		{KindDataRequest, "DATA_REQUEST"},
		{KindDataReply, "DATA_REPLY"},
		{KindIR, "IR"},
		{KindPullPoll, "PULL_POLL"},
		{KindPullReply, "PULL_REPLY"},
		{KindPullAck, "PULL_ACK"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind %d String = %q, want %q", tt.k, got, tt.want)
		}
		if !tt.k.Valid() {
			t.Errorf("Kind %v reported invalid", tt.k)
		}
	}
}

func TestInvalidKind(t *testing.T) {
	if KindInvalid.Valid() {
		t.Error("KindInvalid reported valid")
	}
	if Kind(999).Valid() {
		t.Error("Kind(999) reported valid")
	}
	if s := Kind(999).String(); !strings.Contains(s, "999") {
		t.Errorf("unknown kind String = %q", s)
	}
}

func TestNumKindsCoversAllNames(t *testing.T) {
	for k := Kind(1); int(k) < NumKinds; k++ {
		if kindNames[k] == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestSize(t *testing.T) {
	control := Message{Kind: KindPoll, Item: 1}
	content := Message{Kind: KindUpdate, Item: 1, Copy: data.Copy{ID: 1, Version: 2, Value: data.ValueFor(1, 2)}}
	if control.Size() >= content.Size() {
		t.Errorf("control %d >= content %d bytes", control.Size(), content.Size())
	}
	if control.Size() != headerBytes {
		t.Errorf("control size = %d, want %d", control.Size(), headerBytes)
	}
	if content.Size() != headerBytes+payloadBytes {
		t.Errorf("content size = %d", content.Size())
	}
}

func TestValidate(t *testing.T) {
	good := data.Copy{ID: 3, Version: 5, Value: data.ValueFor(3, 5)}
	tests := []struct {
		name string
		m    Message
		ok   bool
	}{
		{"control ok", Message{Kind: KindInvalidation, Item: 3, Version: 5}, true},
		{"content ok", Message{Kind: KindUpdate, Item: 3, Version: 5, Copy: good}, true},
		{"zero kind", Message{Item: 3}, false},
		{"wrong item in copy", Message{Kind: KindUpdate, Item: 4, Copy: good}, false},
		{"torn copy", Message{Kind: KindSendNew, Item: 3, Copy: data.Copy{ID: 3, Version: 5, Value: "garbage"}}, false},
		{"poll ack B needs payload", Message{Kind: KindPollAckB, Item: 3, Copy: data.Copy{ID: 3}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestMessageString(t *testing.T) {
	m := Message{Kind: KindUpdate, Item: 3, Version: 7, Origin: 2}
	got := m.String()
	for _, want := range []string{"UPDATE", "D3", "v7", "M2"} {
		if !strings.Contains(got, want) {
			t.Errorf("String = %q, missing %q", got, want)
		}
	}
}
