package protocol

import (
	"testing"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
)

// FuzzUnmarshal throws arbitrary bytes at the wire decoder: it must never
// panic, and every message it accepts must survive a re-encode/re-decode
// round trip unchanged (value stability; byte canonicality is not
// required because varints admit redundant encodings).
func FuzzUnmarshal(f *testing.F) {
	seed := []Message{
		{Kind: KindPoll, Item: 1, Origin: 2, Version: 3, Seq: 4},
		{Kind: KindUpdate, Item: 5, Origin: 6, Version: 7,
			Copy: data.Copy{ID: 5, Version: 7, Value: data.ValueFor(5, 7)}},
		{Kind: KindGeoInv, Item: 1, HasPos: true, Pos: geo.Point{X: 1, Y: 2}},
		{Kind: KindRREQ, Item: 0, Path: []int{0, 1, 2}},
	}
	for _, m := range seed {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		m, err := Unmarshal(buf)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if m2.Kind != m.Kind || m2.Item != m.Item || m2.Origin != m.Origin ||
			m2.Version != m.Version || m2.Seq != m.Seq || m2.Miss != m.Miss ||
			m2.HasPos != m.HasPos || m2.Copy != m.Copy || len(m2.Path) != len(m.Path) {
			t.Fatalf("round trip drifted:\n first: %+v\nsecond: %+v", m, m2)
		}
	})
}

// FuzzUnmarshalFrame throws arbitrary datagrams at the transport frame
// decoder: never a panic, and every accepted frame must survive a
// re-encode/re-decode round trip with a stable header and payload.
func FuzzUnmarshalFrame(f *testing.F) {
	seeds := []Frame{
		{From: 0, To: 1, Seq: 7, Msg: Message{Kind: KindPoll, Item: 1, Origin: 0, Seq: 3}},
		{From: 2, TTL: 8, Flood: true, Seq: 9, Msg: Message{Kind: KindInvalidation, Item: 2, Origin: 2, Version: 4}},
		{From: 1, To: 0, Msg: Message{Kind: KindDataReply, Item: 3, Origin: 1, Version: 5,
			Copy: data.Copy{ID: 3, Version: 5, Value: data.ValueFor(3, 5)}}},
		// Version-2 frames with the trace extension, so the fuzzer mutates
		// extension bytes too: a small triple, multi-byte uvarint ids, and
		// a traced flood.
		{From: 0, To: 1, Seq: 7, Msg: Message{Kind: KindPoll, Item: 1, Origin: 0, Seq: 3,
			Trace: TraceContext{TraceID: 1, SpanID: 2, ParentID: 1}}},
		{From: 3, To: 4, Seq: 8, Msg: Message{Kind: KindPollAckA, Item: 1, Origin: 3, Version: 6,
			Trace: TraceContext{TraceID: 1 << 41, SpanID: 1<<41 | 9, ParentID: 1 << 13}}},
		{From: 2, TTL: 8, Flood: true, Seq: 9, Msg: Message{Kind: KindInvalidation, Item: 2, Origin: 2, Version: 4,
			Trace: TraceContext{TraceID: 500, SpanID: 501, ParentID: 500}}},
	}
	for _, fr := range seeds {
		buf, err := MarshalFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		fr, err := UnmarshalFrame(buf)
		if err != nil {
			return
		}
		re, err := MarshalFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		fr2, err := UnmarshalFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if fr2.From != fr.From || fr2.To != fr.To || fr2.TTL != fr.TTL ||
			fr2.Flood != fr.Flood || fr2.Seq != fr.Seq || fr2.Msg.Kind != fr.Msg.Kind ||
			fr2.Msg.Copy != fr.Msg.Copy || fr2.Msg.Trace != fr.Msg.Trace {
			t.Fatalf("frame round trip drifted:\n first: %+v\nsecond: %+v", fr, fr2)
		}
	})
}
