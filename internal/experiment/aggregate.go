package experiment

import (
	"math"
	"time"
)

// Dist summarises one metric's distribution across replica runs: the
// across-seed mean, the sample standard deviation, and the half-width of
// the 95% confidence interval on the mean (normal approximation,
// 1.96·s/√n; zero when n < 2). The paper's own figures carry single-run
// noise — replication plus these intervals is how the reproduction
// tightens them.
type Dist struct {
	Mean   float64
	Stddev float64
	CI95   float64
}

// distOf folds one metric's per-run samples into a Dist.
func distOf(xs []float64) Dist {
	n := float64(len(xs))
	if n == 0 {
		return Dist{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	d := Dist{Mean: sum / n}
	if len(xs) < 2 {
		return d
	}
	var ss float64
	for _, x := range xs {
		ss += (x - d.Mean) * (x - d.Mean)
	}
	d.Stddev = math.Sqrt(ss / (n - 1))
	d.CI95 = 1.96 * d.Stddev / math.Sqrt(n)
	return d
}

// Summary is the cross-replica aggregate of several same-scenario runs:
// a representative mean Result (the figures plot it) plus per-metric
// distributions (mean/stddev/CI) for reports that want error bars.
type Summary struct {
	N int

	// Mean is the first run with every aggregate numeric field replaced
	// by the across-seed mean — exactly what the figure tables plot.
	// Non-additive fields (ByKind breakdown, Config) come from the first
	// run.
	Mean Result

	TotalTx       Dist
	TotalBytes    Dist
	MeanLatencyMs Dist
	AnswerRate    Dist
	Violations    Dist
	RelayCount    Dist
	EnergyDrained Dist
	MeanHitRatio  Dist
}

// Aggregate folds several same-scenario runs (one per replica seed) into
// one Summary. It is the single replica-averaging implementation shared
// by the serial sweep driver (RunSweepReplicated), the fleet
// orchestrator, and the multi-replica CLI mode. Aggregate is pure: it
// reads its inputs and touches no global state, so it is safe to call
// from concurrent fleet workers. An empty input yields a zero Summary.
func Aggregate(results []Result) Summary {
	s := Summary{N: len(results)}
	if len(results) == 0 {
		return s
	}
	s.Mean = meanResult(results)

	samples := func(f func(Result) float64) Dist {
		xs := make([]float64, len(results))
		for i, r := range results {
			xs[i] = f(r)
		}
		return distOf(xs)
	}
	s.TotalTx = samples(func(r Result) float64 { return float64(r.TotalTx) })
	s.TotalBytes = samples(func(r Result) float64 { return float64(r.TotalBytes) })
	s.MeanLatencyMs = samples(MetricMeanLatencyMs)
	s.AnswerRate = samples(Result.AnswerRate)
	s.Violations = samples(func(r Result) float64 { return float64(r.Violations) })
	s.RelayCount = samples(MetricRelayCount)
	s.EnergyDrained = samples(func(r Result) float64 { return r.EnergyDrained })
	s.MeanHitRatio = samples(func(r Result) float64 { return r.MeanHitRatio })
	return s
}

// meanResult folds several same-scenario runs into one Result whose
// aggregate numeric fields are the across-seed means. Non-additive fields
// (ByKind breakdown, Config) come from the first run.
func meanResult(runs []Result) Result {
	if len(runs) == 1 {
		return runs[0]
	}
	out := runs[0]
	n := float64(len(runs))
	var tx, bytes, issued, answered, failed, viol uint64
	var lat, stale time.Duration
	var relays int
	var drained, hit float64
	for _, r := range runs {
		tx += r.TotalTx
		bytes += r.TotalBytes
		issued += r.Issued
		answered += r.Answered
		failed += r.Failed
		viol += r.Violations
		lat += r.MeanLatency
		stale += r.MeanStaleness
		relays += r.RelayCount
		drained += r.EnergyDrained
		hit += r.MeanHitRatio
	}
	out.TotalTx = uint64(float64(tx) / n)
	out.TotalBytes = uint64(float64(bytes) / n)
	out.Issued = uint64(float64(issued) / n)
	out.Answered = uint64(float64(answered) / n)
	out.Failed = uint64(float64(failed) / n)
	out.Violations = uint64(float64(viol) / n)
	out.MeanLatency = lat / time.Duration(len(runs))
	out.MeanStaleness = stale / time.Duration(len(runs))
	out.RelayCount = int(float64(relays) / n)
	out.EnergyDrained = drained / n
	out.MeanHitRatio = hit / n
	if hours := out.Config.SimTime.Hours(); hours > 0 {
		out.TxPerHour = float64(out.TotalTx) / hours
	}
	return out
}
