package experiment

import (
	"math"
	"testing"
	"time"
)

// syntheticResult builds a Result with distinctive aggregate fields so
// averaging is checkable without running a simulation.
func syntheticResult(scale uint64) Result {
	cfg := DefaultConfig(StrategyRPCCSC, 1)
	cfg.SimTime = time.Hour
	return Result{
		Strategy:      StrategyRPCCSC,
		Config:        cfg,
		TotalTx:       100 * scale,
		TotalBytes:    1000 * scale,
		Issued:        10 * scale,
		Answered:      8 * scale,
		Failed:        2 * scale,
		Violations:    scale,
		MeanLatency:   time.Duration(scale) * 10 * time.Millisecond,
		MeanStaleness: time.Duration(scale) * time.Second,
		RelayCount:    int(scale),
		EnergyDrained: float64(scale),
		MeanHitRatio:  0.1 * float64(scale),
	}
}

func TestAggregateEmptyAndSingle(t *testing.T) {
	if s := Aggregate(nil); s.N != 0 {
		t.Fatalf("empty aggregate: N = %d, want 0", s.N)
	}
	r := syntheticResult(3)
	s := Aggregate([]Result{r})
	if s.N != 1 {
		t.Fatalf("N = %d, want 1", s.N)
	}
	if s.Mean.TotalTx != r.TotalTx || s.Mean.MeanLatency != r.MeanLatency {
		t.Fatalf("single-run mean mutated the result: %+v", s.Mean)
	}
	if s.TotalTx.Stddev != 0 || s.TotalTx.CI95 != 0 {
		t.Fatalf("single run must have zero spread, got %+v", s.TotalTx)
	}
	if s.TotalTx.Mean != float64(r.TotalTx) {
		t.Fatalf("TotalTx mean = %g, want %d", s.TotalTx.Mean, r.TotalTx)
	}
}

func TestAggregateMeansAndSpread(t *testing.T) {
	runs := []Result{syntheticResult(1), syntheticResult(3)}
	s := Aggregate(runs)
	if s.N != 2 {
		t.Fatalf("N = %d, want 2", s.N)
	}
	if s.Mean.TotalTx != 200 { // (100+300)/2
		t.Fatalf("mean TotalTx = %d, want 200", s.Mean.TotalTx)
	}
	if s.Mean.MeanLatency != 20*time.Millisecond {
		t.Fatalf("mean latency = %v, want 20ms", s.Mean.MeanLatency)
	}
	if s.Mean.RelayCount != 2 {
		t.Fatalf("mean relay count = %d, want 2", s.Mean.RelayCount)
	}
	// TxPerHour renormalised from the averaged total over the 1 h run.
	if s.Mean.TxPerHour != 200 {
		t.Fatalf("TxPerHour = %g, want 200", s.Mean.TxPerHour)
	}
	// Sample stddev of {100, 300} is sqrt(2*100^2/1) = ~141.42.
	wantSD := math.Sqrt(2 * 100 * 100)
	if math.Abs(s.TotalTx.Stddev-wantSD) > 1e-9 {
		t.Fatalf("TotalTx stddev = %g, want %g", s.TotalTx.Stddev, wantSD)
	}
	wantCI := 1.96 * wantSD / math.Sqrt(2)
	if math.Abs(s.TotalTx.CI95-wantCI) > 1e-9 {
		t.Fatalf("TotalTx CI95 = %g, want %g", s.TotalTx.CI95, wantCI)
	}
	if s.MeanLatencyMs.Mean != 20 {
		t.Fatalf("latency-ms mean = %g, want 20", s.MeanLatencyMs.Mean)
	}
}

func TestAggregateAnswerRate(t *testing.T) {
	a := syntheticResult(1) // 8/10 answered
	b := syntheticResult(1)
	b.Answered, b.Issued = 4, 10 // 0.4
	s := Aggregate([]Result{a, b})
	if math.Abs(s.AnswerRate.Mean-0.6) > 1e-9 {
		t.Fatalf("answer-rate mean = %g, want 0.6", s.AnswerRate.Mean)
	}
}
