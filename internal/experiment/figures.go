package experiment

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/workload"
)

// Point is one (x, result) pair of a sweep series.
type Point struct {
	X      float64
	Result Result
}

// Series is one strategy's curve in a figure.
type Series struct {
	Strategy StrategyKind
	Points   []Point
}

// Figure is a fully evaluated figure: one curve per strategy.
type Figure struct {
	ID     string // e.g. "fig7a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Metric extracts a figure's y-value from a run result.
type Metric func(Result) float64

// MetricTotalTx is the network-traffic metric of Fig 7 and Fig 9(a).
func MetricTotalTx(r Result) float64 { return float64(r.TotalTx) }

// MetricMeanLatencyMs is the query-latency metric of Fig 8 and Fig 9(b),
// in milliseconds (the paper plots it in log scale).
func MetricMeanLatencyMs(r Result) float64 {
	return float64(r.MeanLatency) / float64(time.Millisecond)
}

// MetricRelayCount is the relay-population metric of the §5.3 discussion.
func MetricRelayCount(r Result) float64 { return float64(r.RelayCount) }

// SeriesDef is one curve of a figure: a label and a config mutation
// selecting what the curve varies (a strategy, a cache policy, ...).
type SeriesDef struct {
	Label string
	Apply func(cfg *Config)
}

// SweepSpec describes one figure's parameter sweep.
type SweepSpec struct {
	ID         string
	Title      string
	XLabel     string
	YLabel     string
	Strategies []StrategyKind
	// Series, when non-empty, overrides the strategy axis: one curve per
	// SeriesDef instead of one per strategy (the policy-comparison
	// figures use this to plot replacement policies against each other
	// under a single strategy). Figure labels come from SeriesDef.Label.
	Series []SeriesDef
	Xs     []float64
	// Apply sets the swept parameter (value x) on a scenario config.
	Apply func(cfg *Config, x float64)
	// Metric picks the y value.
	Metric Metric
}

// seriesDefs resolves the figure's curves: explicit Series if given,
// else one per strategy — the construction every paper figure uses, and
// byte-identical to the pre-SeriesDef job enumeration.
func (s SweepSpec) seriesDefs() []SeriesDef {
	if len(s.Series) > 0 {
		return s.Series
	}
	defs := make([]SeriesDef, 0, len(s.Strategies))
	for _, strat := range s.Strategies {
		strat := strat
		defs = append(defs, SeriesDef{
			Label: string(strat),
			Apply: func(cfg *Config) { cfg.Strategy = strat },
		})
	}
	return defs
}

// RunSweep evaluates the spec: one simulation per (strategy, x) pair.
// base supplies everything the sweep does not vary (seed, sim time, ...).
func RunSweep(spec SweepSpec, base Config) (Figure, error) {
	return RunSweepReplicated(spec, base, 1)
}

// RunSweepReplicated evaluates the spec with `replicas` independent seeds
// per point (base.Seed, base.Seed+1, …) and averages every numeric metric
// across them (see Aggregate), tightening the single-run noise the
// paper's own figures carry. It is the serial reference executor: it
// enumerates the same job list the fleet orchestrator does (SweepJobs),
// runs each distinct scenario once in order, and assembles the figure
// through the same AssembleFigure path, so parallel and serial sweeps
// agree bit for bit.
func RunSweepReplicated(spec SweepSpec, base Config, replicas int) (Figure, error) {
	jobs, err := SweepJobs(spec, base, replicas)
	if err != nil {
		return Figure{}, err
	}
	results := make(map[string]Result, len(jobs))
	for _, j := range jobs {
		if _, done := results[j.Key]; done {
			continue
		}
		res, err := Run(j.Config)
		if err != nil {
			return Figure{}, fmt.Errorf("experiment: %s %s x=%g seed=%d: %w", spec.ID, j.Strategy, j.X, j.Config.Seed, err)
		}
		results[j.Key] = res
	}
	return AssembleFigure(spec, base, replicas, func(key string) (Result, bool) {
		r, ok := results[key]
		return r, ok
	})
}

// The sweeps behind each of the paper's figures. X units: minutes for
// update intervals, seconds for query intervals, items for cache number,
// hops for TTL.

// Fig7aSpec: network traffic vs. data update interval.
func Fig7aSpec() SweepSpec {
	return SweepSpec{
		ID:         "fig7a",
		Title:      "Network traffic vs. update interval",
		XLabel:     "update interval (min)",
		YLabel:     "messages",
		Strategies: AllPaperStrategies(),
		Xs:         []float64{0.5, 1, 2, 4, 8},
		Apply: func(cfg *Config, x float64) {
			cfg.UpdateInterval = time.Duration(x * float64(time.Minute))
		},
		Metric: MetricTotalTx,
	}
}

// Fig7bSpec: network traffic vs. query request interval.
func Fig7bSpec() SweepSpec {
	return SweepSpec{
		ID:         "fig7b",
		Title:      "Network traffic vs. request interval",
		XLabel:     "request interval (s)",
		YLabel:     "messages",
		Strategies: AllPaperStrategies(),
		Xs:         []float64{5, 10, 20, 40, 80},
		Apply: func(cfg *Config, x float64) {
			cfg.QueryInterval = time.Duration(x * float64(time.Second))
		},
		Metric: MetricTotalTx,
	}
}

// Fig7cSpec: network traffic vs. cache number.
func Fig7cSpec() SweepSpec {
	return SweepSpec{
		ID:         "fig7c",
		Title:      "Network traffic vs. cache number",
		XLabel:     "cache number (items)",
		YLabel:     "messages",
		Strategies: AllPaperStrategies(),
		Xs:         []float64{5, 10, 15, 20, 25},
		Apply: func(cfg *Config, x float64) {
			cfg.CacheNum = int(x)
		},
		Metric: MetricTotalTx,
	}
}

// Fig8aSpec: query latency vs. update interval (log-scale y in the paper).
func Fig8aSpec() SweepSpec {
	s := Fig7aSpec()
	s.ID = "fig8a"
	s.Title = "Query latency vs. update interval"
	s.YLabel = "mean latency (ms)"
	s.Metric = MetricMeanLatencyMs
	return s
}

// Fig8bSpec: query latency vs. request interval.
func Fig8bSpec() SweepSpec {
	s := Fig7bSpec()
	s.ID = "fig8b"
	s.Title = "Query latency vs. request interval"
	s.YLabel = "mean latency (ms)"
	s.Metric = MetricMeanLatencyMs
	return s
}

// Fig8cSpec: query latency vs. cache number.
func Fig8cSpec() SweepSpec {
	s := Fig7cSpec()
	s.ID = "fig8c"
	s.Title = "Query latency vs. cache number"
	s.YLabel = "mean latency (ms)"
	s.Metric = MetricMeanLatencyMs
	return s
}

// fig9Strategies: the §5.3 comparison runs RPCC(SC) against the two
// baselines on the single-hot-item scenario.
func fig9Strategies() []StrategyKind {
	return []StrategyKind{StrategyRPCCSC, StrategyPush, StrategyPull}
}

// applyFig9 configures the single-source scenario of §5.3 ("one peer is
// randomly selected as the source host and its data item is cached by all
// other peers") and sets RPCC's invalidation TTL to x. The baselines
// ignore the invalidation TTL, giving the flat reference lines of Fig 9.
func applyFig9(cfg *Config, x float64) {
	cfg.Popularity = workload.PopularitySingle
	cfg.InvalidationTTL = int(x)
}

// Fig9aSpec: network traffic vs. invalidation-message TTL.
func Fig9aSpec() SweepSpec {
	return SweepSpec{
		ID:         "fig9a",
		Title:      "Network traffic vs. invalidation TTL (single hot item)",
		XLabel:     "invalidation TTL (hops)",
		YLabel:     "messages",
		Strategies: fig9Strategies(),
		Xs:         []float64{1, 2, 3, 4, 5, 6, 7},
		Apply:      applyFig9,
		Metric:     MetricTotalTx,
	}
}

// Fig9bSpec: query latency vs. invalidation-message TTL.
func Fig9bSpec() SweepSpec {
	s := Fig9aSpec()
	s.ID = "fig9b"
	s.Title = "Query latency vs. invalidation TTL (single hot item)"
	s.YLabel = "mean latency (ms)"
	s.Metric = MetricMeanLatencyMs
	return s
}

// RelayCountSpec: relay population vs. invalidation TTL (the §5.3
// discussion's explanatory variable; ablation A3 in DESIGN.md).
func RelayCountSpec() SweepSpec {
	return SweepSpec{
		ID:         "relay-count",
		Title:      "Relay peers vs. invalidation TTL (single hot item)",
		XLabel:     "invalidation TTL (hops)",
		YLabel:     "relay peers",
		Strategies: []StrategyKind{StrategyRPCCSC},
		Xs:         []float64{1, 2, 3, 4, 5, 6, 7},
		Apply:      applyFig9,
		Metric:     MetricRelayCount,
	}
}

// AllFigureSpecs returns every figure sweep of the paper's evaluation in
// presentation order.
func AllFigureSpecs() []SweepSpec {
	return []SweepSpec{
		Fig7aSpec(), Fig7bSpec(), Fig7cSpec(),
		Fig8aSpec(), Fig8bSpec(), Fig8cSpec(),
		Fig9aSpec(), Fig9bSpec(),
		RelayCountSpec(),
	}
}
