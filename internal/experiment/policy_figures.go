package experiment

import (
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/workload"
)

// The extra (non-paper) figure sweeps: replacement-policy comparisons
// under skewed flash-crowd demand, and the read/write-ratio and
// diurnal-load workload sweeps. They live outside AllFigureSpecs so the
// default `figures` output — and the figures_1h.txt regression baseline —
// stays exactly the paper's set; cmd/figures selects them with -extra or
// -only.

// MetricMeanHitRatio is the cache-effectiveness metric of the
// policy-comparison figures.
func MetricMeanHitRatio(r Result) float64 { return r.MeanHitRatio }

// policySeries builds one curve per built-in replacement policy, all
// under the base strategy.
func policySeries() []SeriesDef {
	kinds := cache.AllPolicyKinds()
	defs := make([]SeriesDef, 0, len(kinds))
	for _, kind := range kinds {
		kind := kind
		defs = append(defs, SeriesDef{
			Label: string(kind),
			Apply: func(cfg *Config) { cfg.CachePolicy = kind },
		})
	}
	return defs
}

// applyPolicyPressure configures the demand mix that separates the
// policies: Zipf-skewed cross-item queries (the default cached-domain mix
// never misses, so every policy looks identical) with a flash crowd on
// item 1 through the middle half of the run, and x items of cache per
// node. Warm placement still seeds the stores so eviction pressure is
// immediate.
func applyPolicyPressure(cfg *Config, x float64) {
	cfg.CacheNum = int(x)
	cfg.Popularity = workload.PopularityZipf
	cfg.Hotspots = []workload.Hotspot{{
		Start:    cfg.SimTime / 4,
		Duration: cfg.SimTime / 2,
		Item:     1,
		Weight:   0.8,
	}}
}

// PolicyHitSpec: mean cache hit ratio vs. cache capacity, one curve per
// replacement policy.
func PolicyHitSpec() SweepSpec {
	return SweepSpec{
		ID:     "policy-hit",
		Title:  "Cache hit ratio vs. cache number by replacement policy (flash crowd)",
		XLabel: "cache number (items)",
		YLabel: "mean hit ratio",
		Series: policySeries(),
		Xs:     []float64{3, 5, 8, 10},
		Apply:  applyPolicyPressure,
		Metric: MetricMeanHitRatio,
	}
}

// PolicyLatSpec: query latency vs. cache capacity by replacement policy.
// Shares PolicyHitSpec's simulation matrix (same keys, runs once).
func PolicyLatSpec() SweepSpec {
	s := PolicyHitSpec()
	s.ID = "policy-lat"
	s.Title = "Query latency vs. cache number by replacement policy (flash crowd)"
	s.YLabel = "mean latency (ms)"
	s.Metric = MetricMeanLatencyMs
	return s
}

// RWRatioSpec: network traffic vs. the read/write ratio — x reads per
// write, holding the paper's query interval and stretching the update
// interval to match.
func RWRatioSpec() SweepSpec {
	return SweepSpec{
		ID:         "rw-ratio",
		Title:      "Network traffic vs. read/write ratio",
		XLabel:     "reads per write",
		YLabel:     "messages",
		Strategies: []StrategyKind{StrategyPull, StrategyPush, StrategyRPCCSC},
		Xs:         []float64{1, 3, 9, 27, 81},
		Apply: func(cfg *Config, x float64) {
			cfg.UpdateInterval = time.Duration(x * float64(cfg.QueryInterval))
		},
		Metric: MetricTotalTx,
	}
}

// DiurnalLoadSpec: network traffic vs. the diurnal trough depth. x is
// the trough's query-acceptance probability (1 = flat load, 0 = demand
// dies out overnight); four "days" fit in the run.
func DiurnalLoadSpec() SweepSpec {
	return SweepSpec{
		ID:         "diurnal-load",
		Title:      "Network traffic vs. diurnal trough depth",
		XLabel:     "trough load fraction",
		YLabel:     "messages",
		Strategies: []StrategyKind{StrategyPull, StrategyPush, StrategyRPCCSC},
		Xs:         []float64{1, 0.75, 0.5, 0.25, 0},
		Apply: func(cfg *Config, x float64) {
			cfg.DiurnalPeriod = cfg.SimTime / 4
			cfg.DiurnalMin = x
		},
		Metric: MetricTotalTx,
	}
}

// ExtraFigureSpecs returns the non-paper sweeps in presentation order.
func ExtraFigureSpecs() []SweepSpec {
	return []SweepSpec{
		PolicyHitSpec(), PolicyLatSpec(),
		RWRatioSpec(), DiurnalLoadSpec(),
	}
}
