package experiment

import (
	"testing"
	"time"
)

func TestSweepJobsEnumeration(t *testing.T) {
	spec := Fig7aSpec()
	base := DefaultConfig(StrategyRPCCSC, 7)
	base.SimTime = time.Hour

	jobs, err := SweepJobs(spec, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Strategies) * len(spec.Xs) * 3
	if len(jobs) != want {
		t.Fatalf("got %d jobs, want %d", len(jobs), want)
	}
	// Replica r carries seed base.Seed+r regardless of strategy or x, so
	// every strategy faces the same topology process (fair A/B).
	for _, j := range jobs {
		if j.Config.Seed != base.Seed+int64(j.Replica) {
			t.Fatalf("job %s: seed %d, want %d", j.Key, j.Config.Seed, base.Seed+int64(j.Replica))
		}
		if j.Config.Strategy != j.Strategy {
			t.Fatalf("job %s: config strategy %s != job strategy %s", j.Key, j.Config.Strategy, j.Strategy)
		}
	}

	if _, err := SweepJobs(spec, base, 0); err == nil {
		t.Fatal("replicas=0 must error")
	}
}

func TestConfigKeyStableAndDiscriminating(t *testing.T) {
	a := DefaultConfig(StrategyRPCCSC, 1)
	b := DefaultConfig(StrategyRPCCSC, 1)
	if a.Key() != b.Key() {
		t.Fatalf("identical configs must share a key: %s vs %s", a.Key(), b.Key())
	}
	b.CacheNum++
	if a.Key() == b.Key() {
		t.Fatal("configs differing in CacheNum must not share a key")
	}
	c := DefaultConfig(StrategyRPCCSC, 2)
	if a.Key() == c.Key() {
		t.Fatal("configs differing in seed must not share a key")
	}
}

// Fig 7a and Fig 8a sweep the same simulation matrix (they differ only
// in the plotted metric), so their job keys must coincide — that overlap
// is what lets the fleet run the shared scenarios once.
func TestSweepJobsSharedAcrossMetricTwins(t *testing.T) {
	base := DefaultConfig(StrategyRPCCSC, 1)
	j7, err := SweepJobs(Fig7aSpec(), base, 2)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := SweepJobs(Fig8aSpec(), base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(j7) != len(j8) {
		t.Fatalf("twin sweeps sized %d vs %d", len(j7), len(j8))
	}
	for i := range j7 {
		if j7[i].Key != j8[i].Key {
			t.Fatalf("job %d: fig7a key %s != fig8a key %s", i, j7[i].Key, j8[i].Key)
		}
	}
}

func TestDeriveSeedDeterministicAndKeyed(t *testing.T) {
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Fatal("DeriveSeed must be deterministic")
	}
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Fatal("different keys must yield different seeds")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Fatal("different roots must yield different seeds")
	}
	if s := DeriveSeed(0, ""); s < 0 {
		t.Fatalf("seed must be non-negative, got %d", s)
	}
}

// AssembleFigure must reproduce what the serial driver computes from the
// same results, and fail loudly when a job's result is missing.
func TestAssembleFigureRoundTrip(t *testing.T) {
	spec := Fig7aSpec()
	spec.Strategies = []StrategyKind{StrategyRPCCWC} // cheapest strategy
	spec.Xs = []float64{2, 4}
	base := DefaultConfig(StrategyRPCCWC, 5)
	base.SimTime = 5 * time.Minute
	base.NPeers = 20

	jobs, err := SweepJobs(spec, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[string]Result, len(jobs))
	for _, j := range jobs {
		if _, ok := results[j.Key]; ok {
			continue
		}
		res, err := Run(j.Config)
		if err != nil {
			t.Fatal(err)
		}
		results[j.Key] = res
	}
	lookup := func(k string) (Result, bool) { r, ok := results[k]; return r, ok }
	fig, err := AssembleFigure(spec, base, 2, lookup)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunSweepReplicated(spec, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	for si := range serial.Series {
		for pi := range serial.Series[si].Points {
			got := fig.Series[si].Points[pi].Result
			want := serial.Series[si].Points[pi].Result
			if got.TotalTx != want.TotalTx || got.MeanLatency != want.MeanLatency {
				t.Fatalf("series %d point %d: assembled %v != serial %v", si, pi, got, want)
			}
		}
	}

	if _, err := AssembleFigure(spec, base, 2, func(string) (Result, bool) { return Result{}, false }); err == nil {
		t.Fatal("missing results must make AssembleFigure fail")
	}
}
