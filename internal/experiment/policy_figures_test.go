package experiment

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
)

// TestPolicyComparisonDistinctAndDeterministic: the policy-comparison
// matrix must (a) reproduce bit-for-bit for a seed and (b) actually
// separate the policies — if every policy yields an identical Result the
// comparison figure is vacuous (the pressure config failed to cause
// evictions).
func TestPolicyComparisonDistinctAndDeterministic(t *testing.T) {
	spec := PolicyHitSpec()
	spec.Xs = []float64{3} // one column is enough pressure to compare
	base := DefaultConfig(StrategyRPCCSC, 1)
	base.NPeers = 30
	base.SimTime = 12 * time.Minute

	run := func() Figure {
		fig, err := RunSweep(spec, base)
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	a := run()
	if len(a.Series) != len(cache.AllPolicyKinds()) {
		t.Fatalf("got %d series, want one per policy", len(a.Series))
	}
	seen := map[float64][]string{}
	for _, s := range a.Series {
		y := s.Points[0].Result.MeanHitRatio
		tx := float64(s.Points[0].Result.TotalTx)
		seen[y*1e9+tx] = append(seen[y*1e9+tx], string(s.Strategy))
	}
	if len(seen) < len(a.Series) {
		t.Fatalf("policies indistinguishable under pressure: %v", seen)
	}

	b := run()
	for i := range a.Series {
		if a.Series[i].Strategy != b.Series[i].Strategy {
			t.Fatalf("series order nondeterministic")
		}
		ra, rb := a.Series[i].Points[0].Result, b.Series[i].Points[0].Result
		if ra.MeanHitRatio != rb.MeanHitRatio || ra.TotalTx != rb.TotalTx || ra.MeanLatency != rb.MeanLatency {
			t.Fatalf("policy %s nondeterministic: %+v vs %+v", a.Series[i].Strategy,
				ra.MeanHitRatio, rb.MeanHitRatio)
		}
	}
}

// TestPolicyConfigValidation: unknown policy kinds are rejected before a
// run assembles.
func TestPolicyConfigValidation(t *testing.T) {
	cfg := DefaultConfig(StrategyRPCCSC, 1)
	cfg.CachePolicy = "random"
	if cfg.Validate() == nil {
		t.Fatal("unknown cache policy accepted")
	}
	for _, kind := range cache.AllPolicyKinds() {
		cfg.CachePolicy = kind
		if err := cfg.Validate(); err != nil {
			t.Fatalf("policy %q rejected: %v", kind, err)
		}
	}
}
