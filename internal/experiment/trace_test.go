package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// TestRunWithTraceInvisible: enabling tracing must not perturb the run —
// the Result is identical to an untraced same-seed run, and the trace
// itself is non-trivial (roots, transit hops, self-consistent parents).
func TestRunWithTraceInvisible(t *testing.T) {
	cfg := scaleTestConfig(24, 7)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	traced, spans, err := RunWithTrace(cfg, telemetry.NewHub(telemetry.LevelMetrics))
	if err != nil {
		t.Fatalf("RunWithTrace: %v", err)
	}
	if got, want := stripVolatile(traced), stripVolatile(plain); !reflect.DeepEqual(got, want) {
		t.Fatalf("tracing perturbed the run:\n got %+v\nwant %+v", got, want)
	}
	if len(spans) == 0 {
		t.Fatal("traced run produced no spans")
	}
	ids := make(map[uint64]bool, len(spans))
	var roots, transit int
	for _, s := range spans {
		ids[s.ID] = true
		if s.Parent == 0 {
			roots++
		}
		if s.Phase == ctrace.PhaseTransit {
			transit++
		}
	}
	if roots == 0 {
		t.Fatal("no root spans (queries never start traces)")
	}
	if transit == 0 {
		t.Fatal("no transit spans (netsim hook not wired)")
	}
	for _, s := range spans {
		if s.Parent != 0 && !ids[s.Parent] {
			t.Fatalf("span %x has dangling parent %x", s.ID, s.Parent)
		}
		if s.EndNs < s.StartNs {
			t.Fatalf("span %x ends before it starts: [%d, %d]", s.ID, s.StartNs, s.EndNs)
		}
	}
}

// TestScaleTraceMergeDeterministic pins the span-merge contract: a
// four-region sharded run produces the same trace bytes on every run —
// region collectors merge in canonical (StartNs, Region, Seq) order, a
// pure function of the spans themselves.
func TestScaleTraceMergeDeterministic(t *testing.T) {
	run := func() []byte {
		cfg := ScaleConfig{Config: scaleTestConfig(96, 13), Shards: 4, Trace: true}
		res, err := RunScale(cfg)
		if err != nil {
			t.Fatalf("RunScale: %v", err)
		}
		if len(res.Spans) == 0 {
			t.Fatal("traced scale run produced no spans")
		}
		regions := map[int]bool{}
		for _, s := range res.Spans {
			regions[s.Region] = true
		}
		if len(regions) != 4 {
			t.Fatalf("spans from %d regions, want 4", len(regions))
		}
		var buf bytes.Buffer
		if err := ctrace.WriteJSONL(&buf, res.Spans); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed sharded trace output is not byte-identical")
	}
}

// TestScaleKernelStats: the sharded run exposes per-shard introspection —
// deterministic event/mail counts populated, imbalance gauges sane.
func TestScaleKernelStats(t *testing.T) {
	cfg := ScaleConfig{Config: scaleTestConfig(90, 11), Shards: 3}
	res, err := RunScale(cfg)
	if err != nil {
		t.Fatalf("RunScale: %v", err)
	}
	ks := res.KernelStats
	if len(ks.Shards) != 3 {
		t.Fatalf("stats for %d shards, want 3", len(ks.Shards))
	}
	if ks.Barriers != res.Barriers || ks.Delivered != res.MailDelivered {
		t.Fatal("kernel stats disagree with the scale result counters")
	}
	var mailSent, mailRecv uint64
	for i, s := range ks.Shards {
		if s.Shard != i {
			t.Fatalf("shard %d labelled %d", i, s.Shard)
		}
		if s.EventsFired == 0 {
			t.Fatalf("shard %d fired no events", i)
		}
		mailSent += s.MailSent
		mailRecv += s.MailRecv
		var windows uint64
		for _, n := range s.StallHist {
			windows += n
		}
		if windows == 0 {
			t.Fatalf("shard %d stall histogram is empty", i)
		}
	}
	if mailRecv != res.MailDelivered {
		t.Fatalf("mail received %d != delivered %d", mailRecv, res.MailDelivered)
	}
	if mailSent < mailRecv {
		t.Fatalf("mail sent %d < received %d", mailSent, mailRecv)
	}
	if ks.EventImbalance < 1 || ks.WallImbalance < 1 {
		t.Fatalf("imbalance gauges below 1: event=%v wall=%v", ks.EventImbalance, ks.WallImbalance)
	}
}
