package experiment

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/faults"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// chaosSweepEvery is the invariant-audit period during chaos campaigns:
// fine enough to catch transient version regressions, coarse enough that
// the sweep itself stays invisible in the profile.
const chaosSweepEvery = 5 * time.Second

// RunChaos executes one scenario with a fault campaign injected and the
// consistency invariants audited throughout. It is a separate entry point
// rather than extra Config fields on purpose: Config.Key() hashes the
// struct for fleet journal identity, and chaos campaigns must not shift
// the keys of plain experiments.
//
// Only RPCC strategies are supported — the crash wipe, relay
// assassination and heal-convergence checks all reach into the engine's
// relay table.
func RunChaos(cfg Config, hub *telemetry.Hub, fc faults.Config) (Result, *faults.Report, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	switch cfg.Strategy {
	case StrategyRPCCSC, StrategyRPCCDC, StrategyRPCCWC, StrategyRPCCHY:
	default:
		return Result{}, nil, fmt.Errorf("experiment: chaos campaigns require an RPCC strategy, got %q", cfg.Strategy)
	}
	coreCfg := coreConfigFrom(cfg)

	var auditor *faults.Auditor
	res, err := runScenario(cfg, hub, func(env runEnv) error {
		engine, ok := env.strat.(*core.Engine)
		if !ok {
			return fmt.Errorf("experiment: chaos strategy %q did not build a core engine", cfg.Strategy)
		}
		plane, err := faults.NewPlane(fc, faults.Env{
			Net: env.net, Churn: env.churn, Stores: env.stores,
			Engine: engine, Hub: hub,
		})
		if err != nil {
			return err
		}
		a, err := faults.NewAuditor(faults.AuditorConfig{
			SweepEvery:        chaosSweepEvery,
			RepairWindow:      fc.RepairWindow,
			TTN:               coreCfg.TTN,
			MaxRepairAttempts: coreCfg.MaxRepairAttempts,
			StrongStaleBudget: fc.StrongStaleBudget,
		}, env.reg, env.stores, env.churn, engine, env.aud)
		if err != nil {
			return err
		}
		// Auditor first: its heal/crash callbacks must be registered
		// before the plane schedules anything against them.
		if err := a.Install(env.k, plane); err != nil {
			return err
		}
		if err := plane.Install(env.k); err != nil {
			return err
		}
		auditor = a
		return nil
	})
	if err != nil {
		return res, nil, err
	}
	rep := auditor.Finish()
	return res, &rep, nil
}
