package experiment

import (
	"strings"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/workload"
)

// shortConfig returns a Table 1 scenario shrunk to a test-friendly
// duration. Seeds are fixed so assertions on relative metrics are stable.
func shortConfig(s StrategyKind) Config {
	cfg := DefaultConfig(s, 7)
	cfg.SimTime = 10 * time.Minute
	return cfg
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"unknown strategy", func(c *Config) { c.Strategy = "nope" }, false},
		{"one peer", func(c *Config) { c.NPeers = 1 }, false},
		{"bad area", func(c *Config) { c.AreaWidth = 0 }, false},
		{"zero cache", func(c *Config) { c.CacheNum = 0 }, false},
		{"zero range", func(c *Config) { c.CommRange = 0 }, false},
		{"zero sim time", func(c *Config) { c.SimTime = 0 }, false},
		{"zero ttl", func(c *Config) { c.BroadcastTTL = 0 }, false},
		{"bad speeds", func(c *Config) { c.MaxSpeed = 0.1 }, false},
		{"bad churn", func(c *Config) { c.MeanDown = 0 }, false},
		{"churn disabled skips churn check", func(c *Config) { c.MeanDown = 0; c.ChurnDisabled = true }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := shortConfig(StrategyPull)
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestStrategyKindValid(t *testing.T) {
	for _, s := range AllPaperStrategies() {
		if !s.Valid() {
			t.Errorf("%s invalid", s)
		}
	}
	if !StrategyAdaptive.Valid() {
		t.Error("adaptive invalid")
	}
	if StrategyKind("bogus").Valid() {
		t.Error("bogus valid")
	}
}

// runShort caches one run per strategy for the assertion tests below.
var runCache = map[StrategyKind]Result{}

func runShort(t *testing.T, s StrategyKind) Result {
	t.Helper()
	if r, ok := runCache[s]; ok {
		return r
	}
	r, err := Run(shortConfig(s))
	if err != nil {
		t.Fatalf("Run(%s): %v", s, err)
	}
	runCache[s] = r
	return r
}

func TestRunProducesAnswersForEveryStrategy(t *testing.T) {
	for _, s := range append(AllPaperStrategies(), StrategyAdaptive) {
		s := s
		t.Run(string(s), func(t *testing.T) {
			r := runShort(t, s)
			if r.Issued == 0 {
				t.Fatal("no queries issued")
			}
			if r.AnswerRate() < 0.3 {
				t.Errorf("answer rate %.2f suspiciously low", r.AnswerRate())
			}
			if r.TotalTx == 0 {
				t.Error("no traffic recorded")
			}
			if r.TornAnswers != 0 || r.FutureAnswers != 0 {
				t.Errorf("integrity violations: torn=%d future=%d", r.TornAnswers, r.FutureAnswers)
			}
		})
	}
}

func TestPullIsTrafficHeaviest(t *testing.T) {
	pull := runShort(t, StrategyPull)
	for _, s := range []StrategyKind{StrategyPush, StrategyRPCCSC, StrategyRPCCDC, StrategyRPCCWC, StrategyRPCCHY} {
		r := runShort(t, s)
		if r.TotalTx >= pull.TotalTx {
			t.Errorf("%s traffic %d >= pull %d; Fig 7 ordering broken", s, r.TotalTx, pull.TotalTx)
		}
	}
}

func TestWeakConsistencyIsCheapest(t *testing.T) {
	wc := runShort(t, StrategyRPCCWC)
	for _, s := range []StrategyKind{StrategyPull, StrategyPush, StrategyRPCCSC, StrategyRPCCHY} {
		r := runShort(t, s)
		if wc.TotalTx >= r.TotalTx {
			t.Errorf("rpcc-wc traffic %d >= %s %d", wc.TotalTx, s, r.TotalTx)
		}
	}
	if wc.AnswerRate() < 0.99 {
		t.Errorf("weak answers should be local; answer rate %.2f", wc.AnswerRate())
	}
}

func TestPushLatencyDominates(t *testing.T) {
	push := runShort(t, StrategyPush)
	pull := runShort(t, StrategyPull)
	sc := runShort(t, StrategyRPCCSC)
	// Fig 8: push latency is governed by the IR interval — orders of
	// magnitude above the polling strategies.
	if push.MeanLatency < 10*pull.MeanLatency {
		t.Errorf("push latency %v not ≫ pull %v", push.MeanLatency, pull.MeanLatency)
	}
	if push.MeanLatency < 10*sc.MeanLatency {
		t.Errorf("push latency %v not ≫ rpcc-sc %v", push.MeanLatency, sc.MeanLatency)
	}
	// RPCC(SC) stays at the pull level (same order of magnitude).
	if sc.MeanLatency > 20*pull.MeanLatency {
		t.Errorf("rpcc-sc latency %v far above pull %v", sc.MeanLatency, pull.MeanLatency)
	}
}

func TestRPCCFormsRelays(t *testing.T) {
	sc := runShort(t, StrategyRPCCSC)
	if sc.RelayCount == 0 {
		t.Fatal("no relay peers formed in the default scenario")
	}
	if sc.RoleRelay == 0 {
		t.Fatal("no node holds the relay role")
	}
	pull := runShort(t, StrategyPull)
	if pull.RelayCount != 0 {
		t.Error("pull reported relay peers")
	}
}

func TestFig9TrafficFallsWithTTL(t *testing.T) {
	run := func(ttl int) Result {
		cfg := shortConfig(StrategyRPCCSC)
		cfg.SimTime = 20 * time.Minute
		cfg.Popularity = workload.PopularitySingle
		cfg.InvalidationTTL = ttl
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	low := run(1)
	high := run(7)
	if high.TotalTx >= low.TotalTx {
		t.Errorf("traffic at TTL7 (%d) not below TTL1 (%d); Fig 9a shape broken",
			high.TotalTx, low.TotalTx)
	}
	if high.RelayCount <= low.RelayCount {
		t.Errorf("relay count at TTL7 (%d) not above TTL1 (%d)",
			high.RelayCount, low.RelayCount)
	}
	if high.MeanLatency >= low.MeanLatency {
		t.Errorf("latency at TTL7 (%v) not below TTL1 (%v); Fig 9b shape broken",
			high.MeanLatency, low.MeanLatency)
	}
}

func TestRunSweepShapesFigure(t *testing.T) {
	spec := SweepSpec{
		ID:         "mini",
		Title:      "mini sweep",
		XLabel:     "x",
		YLabel:     "y",
		Strategies: []StrategyKind{StrategyRPCCWC},
		Xs:         []float64{1, 2},
		Apply:      func(cfg *Config, x float64) { cfg.CacheNum = int(x) * 5 },
		Metric:     MetricTotalTx,
	}
	base := shortConfig(StrategyRPCCWC)
	base.SimTime = 5 * time.Minute
	fig, err := RunSweep(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != 2 {
		t.Fatalf("figure shape wrong: %+v", fig)
	}
	if fig.Series[0].Points[0].X != 1 || fig.Series[0].Points[1].X != 2 {
		t.Error("x values not preserved")
	}
	table := RenderTable(fig, spec.Metric)
	for _, want := range []string{"MINI", "rpcc-wc", "y:"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestAllFigureSpecsWellFormed(t *testing.T) {
	ids := map[string]bool{}
	for _, spec := range AllFigureSpecs() {
		if spec.ID == "" || spec.Title == "" || spec.Metric == nil || spec.Apply == nil {
			t.Errorf("spec %q incomplete", spec.ID)
		}
		if ids[spec.ID] {
			t.Errorf("duplicate spec id %q", spec.ID)
		}
		ids[spec.ID] = true
		if len(spec.Xs) < 2 {
			t.Errorf("spec %q has fewer than 2 sweep points", spec.ID)
		}
		if len(spec.Strategies) == 0 {
			t.Errorf("spec %q has no strategies", spec.ID)
		}
	}
	// Every paper figure must be covered.
	for _, id := range []string{"fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c", "fig9a", "fig9b"} {
		if !ids[id] {
			t.Errorf("missing figure spec %q", id)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := shortConfig(StrategyRPCCSC)
	cfg.SimTime = 5 * time.Minute
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTx != b.TotalTx || a.Issued != b.Issued || a.MeanLatency != b.MeanLatency {
		t.Errorf("same-seed runs diverged: %+v vs %+v", a, b)
	}
}

func TestRenderDetailContainsSections(t *testing.T) {
	r := runShort(t, StrategyRPCCSC)
	out := RenderDetail(r)
	for _, want := range []string{"strategy", "transmissions", "latency", "queries", "audit", "relay peers", "traffic by kind"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderDetail missing %q", want)
		}
	}
}

func TestSingleSourceScenarioSilencesOtherSources(t *testing.T) {
	cfg := shortConfig(StrategyPush)
	cfg.Popularity = workload.PopularitySingle
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only host 0 broadcasts IRs: traffic must be far below the
	// all-sources default scenario.
	full := runShort(t, StrategyPush)
	if r.TotalTx*3 > full.TotalTx {
		t.Errorf("single-source push traffic %d not well below default %d", r.TotalTx, full.TotalTx)
	}
}

func TestFig7cShapePushGrowsPullFlat(t *testing.T) {
	// Fig 7(c)'s two headline claims: cache size barely moves pull's
	// traffic, and grows push's.
	run := func(s StrategyKind, cacheNum int) Result {
		cfg := shortConfig(s)
		cfg.CacheNum = cacheNum
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	pullSmall, pullBig := run(StrategyPull, 5), run(StrategyPull, 25)
	ratio := float64(pullBig.TotalTx) / float64(pullSmall.TotalTx)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("pull traffic moved %.2fx across cache sizes; paper says flat", ratio)
	}
	pushSmall, pushBig := run(StrategyPush, 5), run(StrategyPush, 25)
	if pushBig.TotalTx <= pushSmall.TotalTx {
		t.Errorf("push traffic did not grow with cache size: %d -> %d",
			pushSmall.TotalTx, pushBig.TotalTx)
	}
}

func TestFig7bShapePullFallsWithQueryInterval(t *testing.T) {
	run := func(interval time.Duration) Result {
		cfg := shortConfig(StrategyPull)
		cfg.QueryInterval = interval
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	busy, quiet := run(5*time.Second), run(80*time.Second)
	if float64(busy.TotalTx) < 5*float64(quiet.TotalTx) {
		t.Errorf("pull traffic fell only %d -> %d across a 16x query-rate change",
			busy.TotalTx, quiet.TotalTx)
	}
}

func TestDSRRoutingAddsVisibleOverhead(t *testing.T) {
	cfg := shortConfig(StrategyRPCCSC)
	cfg.SimTime = 5 * time.Minute
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UseDSRRouting = true
	dsr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rreq uint64
	for _, kc := range dsr.ByKind {
		if kc.Kind.String() == "RREQ" {
			rreq = kc.Tx
		}
	}
	if rreq == 0 {
		t.Fatal("DSR mode recorded no RREQ traffic")
	}
	// Queries must still flow under real routing.
	if dsr.AnswerRate() < oracle.AnswerRate()/2 {
		t.Errorf("DSR answer rate %.2f collapsed vs oracle %.2f",
			dsr.AnswerRate(), oracle.AnswerRate())
	}
}

func TestLossyChannelDegradesGracefully(t *testing.T) {
	cfg := shortConfig(StrategyRPCCWC)
	cfg.SimTime = 5 * time.Minute
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LossRate = 0.2
	lossy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Weak consistency answers locally: even a lossy channel must not
	// break query serving, and no integrity violations may appear.
	if lossy.AnswerRate() < 0.95 {
		t.Errorf("weak answer rate %.2f under loss", lossy.AnswerRate())
	}
	if lossy.TornAnswers != 0 || lossy.FutureAnswers != 0 {
		t.Error("loss produced integrity violations")
	}
	_ = clean
}

func TestEnergyAccounting(t *testing.T) {
	r := runShort(t, StrategyPull)
	if r.EnergyDrained <= 0 {
		t.Error("no energy drained in a traffic-heavy run")
	}
	if r.MinBatteryCE <= 0 || r.MinBatteryCE > 1 {
		t.Errorf("MinBatteryCE = %g outside (0,1]", r.MinBatteryCE)
	}
	// Pull's flooding drains more energy than weak-consistency RPCC.
	wc := runShort(t, StrategyRPCCWC)
	if wc.EnergyDrained >= r.EnergyDrained {
		t.Errorf("rpcc-wc drained %g >= pull %g; message savings must show up as energy savings",
			wc.EnergyDrained, r.EnergyDrained)
	}
}

func TestRunSweepReplicatedAverages(t *testing.T) {
	spec := SweepSpec{
		ID: "avg", Title: "avg", XLabel: "x", YLabel: "y",
		Strategies: []StrategyKind{StrategyRPCCWC},
		Xs:         []float64{1},
		Apply:      func(*Config, float64) {},
		Metric:     MetricTotalTx,
	}
	base := shortConfig(StrategyRPCCWC)
	base.SimTime = 5 * time.Minute
	if _, err := RunSweepReplicated(spec, base, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
	one, err := RunSweepReplicated(spec, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunSweepReplicated(spec, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := one.Series[0].Points[0].Result.TotalTx
	b := three.Series[0].Points[0].Result.TotalTx
	if b == 0 {
		t.Fatal("averaged result empty")
	}
	// The 3-seed mean should be near (but normally not identical to) the
	// single-seed value.
	ratio := float64(b) / float64(a)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("averaged tx %d wildly off single-seed %d", b, a)
	}
}

func TestMobilityModelSwapStillFunctions(t *testing.T) {
	// Random direction pushes nodes to the terrain edges, so the network
	// is markedly sparser than under random waypoint (whose density
	// piles up in the centre). Absolute traffic comparisons flip with
	// connectivity — the informative invariants are that both strategies
	// keep serving queries correctly. The per-answer cost ordering must
	// still favour the relay tier.
	run := func(s StrategyKind) Result {
		cfg := shortConfig(s)
		cfg.RandomDirection = true
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	pull := run(StrategyPull)
	sc := run(StrategyRPCCSC)
	for _, r := range []Result{pull, sc} {
		if r.Answered == 0 {
			t.Fatalf("%s answered nothing under random direction", r.Strategy)
		}
		if r.TornAnswers != 0 || r.FutureAnswers != 0 {
			t.Fatalf("%s integrity violations under random direction", r.Strategy)
		}
	}
	// No cost-ordering assertion here: with the field this fragmented,
	// RPCC's fixed periodic tier amortises over very few answerable
	// queries and its advantage evaporates — a real boundary condition
	// of the paper's design, recorded in EXPERIMENTS.md (A9).
	t.Logf("random direction: pull tx=%d answered=%d; rpcc-sc tx=%d answered=%d",
		pull.TotalTx, pull.Answered, sc.TotalTx, sc.Answered)
}

func TestGPSCEEndToEnd(t *testing.T) {
	r := runShort(t, StrategyGPSCE)
	if r.AnswerRate() < 0.5 {
		t.Errorf("gpsce answer rate %.2f", r.AnswerRate())
	}
	// The location-aided control plane is unicast-only: traffic must sit
	// clearly below the pull baseline.
	pull := runShort(t, StrategyPull)
	if r.TotalTx*2 > pull.TotalTx {
		t.Errorf("gpsce traffic %d not clearly below pull %d", r.TotalTx, pull.TotalTx)
	}
	if r.TornAnswers != 0 || r.FutureAnswers != 0 {
		t.Error("gpsce integrity violations")
	}
	// Its known weakness: some stale strong answers leak.
	if r.Violations == 0 {
		t.Log("note: no staleness leaked this seed (usually some does)")
	}
}

func TestEnergyFairnessAndTimeline(t *testing.T) {
	r := runShort(t, StrategyRPCCSC)
	if r.EnergyFairness <= 0 || r.EnergyFairness > 1 {
		t.Errorf("EnergyFairness = %g outside (0,1]", r.EnergyFairness)
	}
	// 50 hosts all idle-drain at the same rate plus traffic: fairness
	// should be reasonably high, not one-node-carries-all.
	if r.EnergyFairness < 0.5 {
		t.Errorf("EnergyFairness = %g suspiciously unfair", r.EnergyFairness)
	}
	if len(r.TrafficTimeline) < 50 {
		t.Errorf("timeline has %d windows, want ~60", len(r.TrafficTimeline))
	}
	var total uint64
	for _, w := range r.TrafficTimeline {
		total += w
	}
	if total == 0 {
		t.Error("timeline recorded no traffic")
	}
	if total > r.TotalTx {
		t.Errorf("timeline total %d exceeds TotalTx %d", total, r.TotalTx)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all zero", []float64{0, 0}, 1},
		{"perfectly even", []float64{5, 5, 5, 5}, 1},
		{"one carries all", []float64{10, 0, 0, 0}, 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := jainIndex(tt.xs); got < tt.want-1e-9 || got > tt.want+1e-9 {
				t.Errorf("jainIndex = %g, want %g", got, tt.want)
			}
		})
	}
}
