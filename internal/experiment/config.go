// Package experiment wires the full simulation stack — kernel, terrain,
// mobility, churn, energy, network, caches, workload, auditor and a
// consistency strategy — into the scenarios of the paper's §5, and runs
// the parameter sweeps behind every figure (Fig 7a–c, 8a–c, 9a–b).
package experiment

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/workload"
)

// StrategyKind names a strategy+consistency-level combination as the
// figures label them.
type StrategyKind string

// The strategy kinds of §5.
const (
	StrategyPull     StrategyKind = "pull"
	StrategyPush     StrategyKind = "push"
	StrategyRPCCSC   StrategyKind = "rpcc-sc"
	StrategyRPCCDC   StrategyKind = "rpcc-dc"
	StrategyRPCCWC   StrategyKind = "rpcc-wc"
	StrategyRPCCHY   StrategyKind = "rpcc-hy"
	StrategyAdaptive StrategyKind = "adaptive-pull"
	StrategyGPSCE    StrategyKind = "gpsce"
)

// AllPaperStrategies returns the six combinations Fig 7/8 plot.
func AllPaperStrategies() []StrategyKind {
	return []StrategyKind{
		StrategyPull, StrategyPush,
		StrategyRPCCSC, StrategyRPCCDC, StrategyRPCCWC, StrategyRPCCHY,
	}
}

// Valid reports whether k names a known strategy.
func (k StrategyKind) Valid() bool {
	switch k {
	case StrategyPull, StrategyPush, StrategyRPCCSC, StrategyRPCCDC,
		StrategyRPCCWC, StrategyRPCCHY, StrategyAdaptive, StrategyGPSCE:
		return true
	default:
		return false
	}
}

// Strategy is what every consistency engine (RPCC and baselines)
// implements; the harness drives it from the workload generator.
type Strategy interface {
	Name() string
	Start(k *sim.Kernel) error
	OnQuery(k *sim.Kernel, host int, item data.ItemID, level consistency.Level)
	OnUpdate(k *sim.Kernel, host int)
	Chassis() *node.Chassis
}

// RelayCounter is implemented by strategies with a relay tier (RPCC); the
// harness samples it for the Fig 9 relay-population metric.
type RelayCounter interface {
	RelayCount() int
}

// Config is one scenario: Table 1 plus the handful of knobs Table 1 leaves
// implicit (mobility speeds, churn split, warm placement).
type Config struct {
	// Table 1 rows.
	NPeers          int           // N_Peers: 50
	AreaWidth       float64       // T_Area: 1500 m
	AreaHeight      float64       // T_Area: 1500 m
	CacheNum        int           // C_Num: 10
	CommRange       float64       // C_Range: 250 m
	SimTime         time.Duration // T_Sim: 5 h
	UpdateInterval  time.Duration // I_Update: 2 min
	QueryInterval   time.Duration // I_Query: 20 s
	BroadcastTTL    int           // TTL_BR: 8 (simple push/pull)
	InvalidationTTL int           // TTL of RPCC INVALIDATION: 3
	TTN             time.Duration // TTN_OP: 2 min
	TTR             time.Duration // TTR_RP: 1.5 min
	TTP             time.Duration // TTP_CP: 4 min
	SwitchInterval  time.Duration // I_Switch: 5 min
	MuCAR           float64       // 0.15
	MuCS            float64       // 0.6
	MuCE            float64       // 0.6
	Omega           float64       // ω: 0.2

	// Implicit knobs.
	Strategy      StrategyKind
	Seed          int64
	Popularity    workload.Popularity
	MinSpeed      float64       // m/s
	MaxSpeed      float64       // m/s
	Pause         time.Duration // random-waypoint dwell
	SubnetCell    float64       // metres; N_m crossing grid
	MeanDown      time.Duration // disconnected dwell (fraction of I_Switch)
	ChurnDisabled bool
	// WarmCaches pre-populates every node's cache (the paper's assumed
	// placement substrate) instead of starting cold.
	WarmCaches bool
	// DisableEagerRefresh turns off the eager relay-refresh extension so
	// a stale relay waits for the next INVALIDATION exactly as Fig 6(c)
	// prescribes (the A4 ablation).
	DisableEagerRefresh bool
	// UseDSRRouting replaces the idealised oracle routing layer with
	// DSR-style on-demand source routing, charging RREQ/RREP/RERR
	// control traffic to the ledger (the A5 ablation; the paper's
	// GloMoSim testbed ran over DSR).
	UseDSRRouting bool
	// AdaptiveTTN enables RPCC's adaptive invalidation-interval
	// extension (§6 future work; the A6 ablation).
	AdaptiveTTN bool
	// LossRate is the per-reception link loss probability (0 = clean
	// channel, the default; the A7 robustness sweep uses 0–0.3).
	LossRate float64
	// RandomDirection switches mobility from the paper's random-waypoint
	// model to random direction (boundary-to-boundary legs), probing
	// whether conclusions depend on the mobility model (the A9 ablation).
	RandomDirection bool
	// SerializeTx gives each node a single radio with MAC-style queueing
	// instead of the idealised parallel radio (the A10 ablation).
	SerializeTx bool
	// DisableKinetic reverts topology maintenance to per-snapshot full
	// rebuilds. Kinetic maintenance (the default) is byte-identical in
	// behaviour — netsim's equivalence gates pin that — so this switch
	// exists for A/B cost measurement and as the baseline leg of the
	// scale benchmark, not for correctness.
	DisableKinetic bool
	// RouteTableCap bounds the live per-destination route tables kept by
	// each topology snapshot (0 = unlimited). Scale runs set a cap so
	// persistent route state stays linear in the cap rather than
	// quadratic in peers.
	RouteTableCap int
	// LazyChurnRefresh folds churn flips into the topology only at
	// refresh epochs instead of invalidating the snapshot per flip.
	// Forwarding still checks per-hop liveness, so downed nodes never
	// relay; only route choice sees churn at epoch granularity. Scale
	// runs enable it — at 100k peers per-flip resampling costs more than
	// the rest of the simulation.
	LazyChurnRefresh bool
	// CachePolicy selects the replacement policy for every node's store
	// ("" or "lru" = the default LRU; "lfu", "ttl", "utility"). The TTL
	// policy's freshness horizon is the scenario's TTP.
	CachePolicy cache.PolicyKind
	// Hotspots are flash-crowd popularity spikes layered over the
	// workload's base popularity model (empty = none; see
	// workload.Hotspot).
	Hotspots []workload.Hotspot
	// DiurnalPeriod/DiurnalMin modulate query demand sinusoidally (the
	// diurnal-load sweep); zero period disables.
	DiurnalPeriod time.Duration
	DiurnalMin    float64
}

// DefaultConfig returns the Table 1 scenario for one strategy.
func DefaultConfig(strategy StrategyKind, seed int64) Config {
	return Config{
		NPeers:          50,
		AreaWidth:       1500,
		AreaHeight:      1500,
		CacheNum:        10,
		CommRange:       250,
		SimTime:         5 * time.Hour,
		UpdateInterval:  2 * time.Minute,
		QueryInterval:   20 * time.Second,
		BroadcastTTL:    8,
		InvalidationTTL: 3,
		TTN:             2 * time.Minute,
		TTR:             90 * time.Second,
		TTP:             4 * time.Minute,
		SwitchInterval:  5 * time.Minute,
		MuCAR:           0.15,
		MuCS:            0.6,
		MuCE:            0.6,
		Omega:           0.2,

		Strategy:   strategy,
		Seed:       seed,
		Popularity: workload.PopularityCached,
		MinSpeed:   0.5,
		MaxSpeed:   5,
		Pause:      time.Minute,
		SubnetCell: 1000,
		MeanDown:   30 * time.Second,
		WarmCaches: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if !c.Strategy.Valid() {
		return fmt.Errorf("experiment: unknown strategy %q", c.Strategy)
	}
	if c.NPeers <= 1 {
		return fmt.Errorf("experiment: need at least 2 peers, got %d", c.NPeers)
	}
	if c.AreaWidth <= 0 || c.AreaHeight <= 0 {
		return fmt.Errorf("experiment: bad area %gx%g", c.AreaWidth, c.AreaHeight)
	}
	if c.CacheNum <= 0 {
		return fmt.Errorf("experiment: non-positive cache number %d", c.CacheNum)
	}
	if c.CommRange <= 0 {
		return fmt.Errorf("experiment: non-positive range %g", c.CommRange)
	}
	if c.SimTime <= 0 {
		return fmt.Errorf("experiment: non-positive sim time %v", c.SimTime)
	}
	if c.UpdateInterval <= 0 || c.QueryInterval <= 0 {
		return fmt.Errorf("experiment: non-positive workload intervals")
	}
	if c.BroadcastTTL <= 0 || c.InvalidationTTL <= 0 {
		return fmt.Errorf("experiment: non-positive TTLs")
	}
	if c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("experiment: bad speeds [%g, %g]", c.MinSpeed, c.MaxSpeed)
	}
	if !c.ChurnDisabled && (c.SwitchInterval <= 0 || c.MeanDown <= 0) {
		return fmt.Errorf("experiment: bad churn intervals")
	}
	if !c.CachePolicy.Valid() {
		return fmt.Errorf("experiment: unknown cache policy %q", c.CachePolicy)
	}
	return nil
}
