package experiment

import (
	"reflect"
	"testing"
	"time"
)

// scaleTestConfig is a short Table-1-shaped scenario sized for unit
// tests.
func scaleTestConfig(n int, seed int64) Config {
	cfg := DefaultConfig(StrategyRPCCSC, seed)
	cfg.NPeers = n
	cfg.SimTime = 2 * time.Minute
	return cfg
}

// stripVolatile clears the fields that legitimately differ between the
// plain and sharded paths (snapshot pointers, the embedded Config) so
// the rest can be compared wholesale.
func stripVolatile(r Result) Result {
	r.Telemetry = nil
	r.Config = Config{}
	return r
}

// TestRunScaleSerialMatchesRun: below the auto-shard floor RunScale is
// one region on one sub-kernel, and the sharded kernel's degenerate
// single-shard case is event-identical to a plain kernel — so the whole
// Result must match Run exactly.
func TestRunScaleSerialMatchesRun(t *testing.T) {
	cfg := scaleTestConfig(24, 7)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	scaled, err := RunScale(ScaleConfig{Config: cfg})
	if err != nil {
		t.Fatalf("RunScale: %v", err)
	}
	if scaled.Shards != 1 {
		t.Fatalf("auto-sharding picked %d shards for %d peers", scaled.Shards, cfg.NPeers)
	}
	if got, want := stripVolatile(scaled.Result), stripVolatile(plain); !reflect.DeepEqual(got, want) {
		t.Fatalf("single-shard RunScale diverges from Run:\n got %+v\nwant %+v", got, want)
	}
	if scaled.GossipViolations != 0 {
		t.Fatalf("gossip violations on a single shard: %d", scaled.GossipViolations)
	}
}

// TestRunScaleSharded runs three regions in lockstep (serial and
// parallel workers), checks the run is deterministic across worker
// modes, and that the consistency invariants and watermark monotonicity
// hold in every region.
func TestRunScaleSharded(t *testing.T) {
	cfg := ScaleConfig{Config: scaleTestConfig(90, 11), Shards: 3}
	serial, err := RunScale(cfg)
	if err != nil {
		t.Fatalf("RunScale(serial): %v", err)
	}
	cfg.Parallel = true
	parallel, err := RunScale(cfg)
	if err != nil {
		t.Fatalf("RunScale(parallel): %v", err)
	}

	if serial.Shards != 3 || len(serial.PerShard) != 3 {
		t.Fatalf("expected 3 shards, got %d (%d results)", serial.Shards, len(serial.PerShard))
	}
	if serial.Answered == 0 {
		t.Fatal("no queries answered across the fleet")
	}
	for i, r := range serial.PerShard {
		if r.Answered == 0 {
			t.Errorf("region %d answered nothing", i)
		}
		if r.TornAnswers != 0 || r.FutureAnswers != 0 {
			t.Errorf("region %d consistency violations: torn=%d future=%d", i, r.TornAnswers, r.FutureAnswers)
		}
	}
	if serial.GossipViolations != 0 {
		t.Fatalf("watermark regressions: %d", serial.GossipViolations)
	}
	if serial.MailDelivered == 0 {
		t.Fatal("no cross-region mail delivered; gossip is not running")
	}
	if serial.Barriers == 0 {
		t.Fatal("no lockstep barriers executed")
	}
	if serial.Topology.KineticSamples == 0 {
		t.Fatal("kinetic plane produced no incremental samples")
	}

	if got, want := stripVolatile(parallel.Result), stripVolatile(serial.Result); !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel workers diverge from serial:\n got %+v\nwant %+v", got, want)
	}
	if parallel.GossipViolations != serial.GossipViolations ||
		parallel.MailDelivered != serial.MailDelivered {
		t.Fatal("synchronization counters diverge between worker modes")
	}
}

// TestRunScaleValidation covers shard-count edge cases.
func TestRunScaleValidation(t *testing.T) {
	cfg := ScaleConfig{Config: scaleTestConfig(10, 1), Shards: 8}
	if _, err := RunScale(cfg); err == nil {
		t.Error("8 shards over 10 peers accepted (leaves <2 per region)")
	}
	cfg.Shards = -1
	if _, err := RunScale(cfg); err == nil {
		t.Error("negative shard count accepted")
	}
	if got := autoShards(100_000); got != 16 {
		t.Errorf("autoShards(100k) = %d, want 16", got)
	}
	if got := autoShards(50); got != 1 {
		t.Errorf("autoShards(50) = %d, want 1", got)
	}
}
