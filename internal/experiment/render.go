package experiment

import (
	"fmt"
	"strings"
)

// RenderTable lays a figure out as an aligned text table: one row per x
// value, one column per strategy, using the spec's metric.
func RenderTable(fig Figure, metric Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(fig.ID), fig.Title)
	fmt.Fprintf(&b, "y: %s\n", fig.YLabel)

	header := make([]string, 0, len(fig.Series)+1)
	header = append(header, fig.XLabel)
	for _, s := range fig.Series {
		header = append(header, string(s.Strategy))
	}

	rows := [][]string{header}
	if len(fig.Series) > 0 {
		for i, pt := range fig.Series[0].Points {
			row := make([]string, 0, len(fig.Series)+1)
			row = append(row, trimFloat(pt.X))
			for _, s := range fig.Series {
				if i < len(s.Points) {
					row = append(row, trimFloat(metric(s.Points[i].Result)))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
	}
	writeAligned(&b, rows)
	return b.String()
}

// RenderDetail renders one result with its per-kind traffic breakdown.
func RenderDetail(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy        %s\n", r.Strategy)
	fmt.Fprintf(&b, "transmissions   %d (%.0f/hour, %d bytes)\n", r.TotalTx, r.TxPerHour, r.TotalBytes)
	fmt.Fprintf(&b, "latency         mean=%v p50<=%v p99<=%v max=%v\n",
		r.MeanLatency, r.P50Latency, r.P99Latency, r.MaxLatency)
	fmt.Fprintf(&b, "queries         issued=%d answered=%d failed=%d (answer rate %.1f%%)\n",
		r.Issued, r.Answered, r.Failed, 100*r.AnswerRate())
	fmt.Fprintf(&b, "audit           violations=%d torn=%d future=%d staleness(mean=%v max=%v)\n",
		r.Violations, r.TornAnswers, r.FutureAnswers, r.MeanStaleness, r.MaxStaleness)
	fmt.Fprintf(&b, "cache           mean hit ratio %.2f\n", r.MeanHitRatio)
	fmt.Fprintf(&b, "energy          drained %.0f units, weakest battery at %.1f%%, fairness %.3f\n",
		r.EnergyDrained, 100*r.MinBatteryCE, r.EnergyFairness)
	if len(r.TrafficTimeline) > 0 {
		fmt.Fprintf(&b, "traffic/time    %s\n", sparkline(r.TrafficTimeline))
	}
	if r.RelayCount > 0 {
		fmt.Fprintf(&b, "relay peers     %d\n", r.RelayCount)
	}
	if len(r.ByKind) > 0 {
		fmt.Fprintf(&b, "traffic by kind\n")
		rows := [][]string{{"  message", "tx", "bytes"}}
		for _, kc := range r.ByKind {
			rows = append(rows, []string{
				"  " + kc.Kind.String(),
				fmt.Sprintf("%d", kc.Tx),
				fmt.Sprintf("%d", kc.Bytes),
			})
		}
		writeAligned(&b, rows)
	}
	return b.String()
}

// sparkline renders counts as a compact eight-level bar strip.
func sparkline(xs []uint64) string {
	if len(xs) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var max uint64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(xs))
	}
	out := make([]rune, len(xs))
	for i, x := range xs {
		idx := int(x * uint64(len(levels)-1) / max)
		out[i] = levels[idx]
	}
	return string(out)
}

// trimFloat renders a float without trailing zero noise.
func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// writeAligned writes rows with space-padded, right-aligned columns
// (except the first, which is left-aligned).
func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i == 0 {
				fmt.Fprintf(b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(b, "  %*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
}
