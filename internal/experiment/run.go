package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/energy"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/mobility"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
	"github.com/manetlab/rpcc/internal/workload"
)

// Result is everything one simulation run reports.
type Result struct {
	Strategy StrategyKind
	Config   Config

	// Traffic (the y-axis of Fig 7 and 9a).
	TotalTx    uint64
	TotalBytes uint64
	TxPerHour  float64
	ByKind     []stats.KindCount

	// Latency (the y-axis of Fig 8 and 9b).
	MeanLatency time.Duration
	P50Latency  time.Duration
	P99Latency  time.Duration
	MaxLatency  time.Duration

	// Query accounting.
	Issued   uint64
	Answered uint64
	Failed   uint64

	// Consistency audit.
	Violations    uint64
	TornAnswers   uint64
	FutureAnswers uint64
	MeanStaleness time.Duration
	MaxStaleness  time.Duration

	// RPCC extras.
	RelayCount   int
	RoleCache    int
	RoleCand     int
	RoleRelay    int
	PollDirect   uint64
	PollRing     uint64
	PollFallback uint64
	RelayForgets uint64

	// Cache behaviour.
	MeanHitRatio float64

	// Energy (the paper's §1 motivates message savings with battery
	// life): total abstract energy units drained across all hosts, the
	// lowest remaining battery fraction at the end of the run, and
	// Jain's fairness index over per-host drain — the load-balance
	// question RPCC's CE criterion exists to manage (1 = perfectly even,
	// 1/n = one host carries everything).
	EnergyDrained  float64
	MinBatteryCE   float64
	EnergyFairness float64

	// TrafficTimeline is the total transmission count sampled in 60
	// equal windows across the run — warm-up versus steady state at a
	// glance.
	TrafficTimeline []uint64

	// Telemetry is the run's metrics snapshot (nil when the run executed
	// with telemetry off). Snapshots from replica runs merge with
	// (*telemetry.Snapshot).Merge.
	Telemetry *telemetry.Snapshot `json:"Telemetry,omitempty"`
}

// Run executes one scenario to completion and returns its metrics. It
// records aggregate telemetry (LevelMetrics) internally; use
// RunWithTelemetry to control the level or to keep the hub for span/JSONL
// export.
func Run(cfg Config) (Result, error) {
	return RunWithTelemetry(cfg, telemetry.NewHub(telemetry.LevelMetrics))
}

// RunWithTelemetry executes one scenario with the caller's telemetry hub
// installed across the stack (netsim tracer, chassis, strategy counters).
// A nil hub disables telemetry entirely. The hub is finalized (traffic and
// sim-clock folded in) before the function returns, so the caller may
// export it immediately.
func RunWithTelemetry(cfg Config, hub *telemetry.Hub) (Result, error) {
	return runScenario(cfg, hub, nil)
}

// RunWithTrace executes one scenario with causal tracing enabled and
// returns, alongside the result, the run's span set in canonical
// (StartNs, Region, Seq) order — ready for trace.WriteJSONL or
// trace.ExtractCriticalPaths. Tracing observes the run without touching
// it: the result is byte-identical to an untraced same-seed run, and the
// span set itself is deterministic for a given config.
func RunWithTrace(cfg Config, hub *telemetry.Hub) (Result, []ctrace.Span, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	k := sim.NewKernel(sim.WithSeed(cfg.Seed), sim.WithHorizon(cfg.SimTime))
	tracer := ctrace.NewCollector(0)
	a, err := assembleScenario(cfg, hub, k, tracer)
	if err != nil {
		return Result{}, nil, err
	}
	k.Run()
	return a.finalize(), tracer.Export(), nil
}

// runEnv exposes the assembled simulation to a pre-run hook (the chaos
// harness wires the fault plane and invariant auditor through it).
type runEnv struct {
	k       *sim.Kernel
	net     *netsim.Network
	churn   *churn.Process
	reg     *data.Registry
	stores  []*cache.Store
	chassis *node.Chassis
	strat   Strategy
	traffic *stats.Traffic
	aud     *consistency.Auditor
}

// assembled is one fully wired scenario stack bound to a kernel. The
// serial path assembles one and runs its kernel to the horizon; the
// sharded scale path (scale.go) assembles one per region on the
// sub-kernels of a ShardedKernel and lets the lockstep windows drive
// them all.
type assembled struct {
	cfg       Config
	hub       *telemetry.Hub
	k         *sim.Kernel
	field     *mobility.Field
	churn     *churn.Process
	batteries []*energy.Battery
	net       *netsim.Network
	reg       *data.Registry
	stores    []*cache.Store
	aud       *consistency.Auditor
	lat       *stats.Latency
	traffic   *stats.Traffic
	chassis   *node.Chassis
	strat     Strategy
	tracer    *ctrace.Collector
	timeline  []uint64
}

// runScenario builds and runs one scenario. preRun, if non-nil, fires
// after the stack is assembled and started but before the kernel runs —
// anything it schedules lands on the same event queue. A nil preRun is
// exactly the plain run.
func runScenario(cfg Config, hub *telemetry.Hub, preRun func(env runEnv) error) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	k := sim.NewKernel(sim.WithSeed(cfg.Seed), sim.WithHorizon(cfg.SimTime))
	a, err := assembleScenario(cfg, hub, k, nil)
	if err != nil {
		return Result{}, err
	}
	if preRun != nil {
		if err := preRun(runEnv{
			k: k, net: a.net, churn: a.churn, reg: a.reg, stores: a.stores,
			chassis: a.chassis, strat: a.strat, traffic: a.traffic, aud: a.aud,
		}); err != nil {
			return Result{}, err
		}
	}
	k.Run()
	return a.finalize(), nil
}

// assembleScenario wires the full stack — terrain, mobility, churn,
// energy, network, data, caches, auditor, chassis, strategy, workload
// and the traffic timeline — onto the caller's kernel, leaving the
// kernel unrun.
// A non-nil tracer threads causal trace contexts through every query and
// protocol message (chassis roots, netsim transit spans).
func assembleScenario(cfg Config, hub *telemetry.Hub, k *sim.Kernel, tracer *ctrace.Collector) (*assembled, error) {
	terrain, err := geo.NewTerrain(cfg.AreaWidth, cfg.AreaHeight)
	if err != nil {
		return nil, err
	}
	mobCfg := mobility.Config{
		Terrain:    terrain,
		MinSpeed:   cfg.MinSpeed,
		MaxSpeed:   cfg.MaxSpeed,
		Pause:      cfg.Pause,
		SubnetCell: cfg.SubnetCell,
	}
	if cfg.RandomDirection {
		mobCfg.Model = mobility.ModelRandomDirection
	}
	field, err := mobility.NewField(mobCfg, cfg.NPeers, func(i int) *rand.Rand {
		return k.Stream(fmt.Sprintf("mobility.%d", i))
	})
	if err != nil {
		return nil, err
	}

	churnCfg := churn.Config{
		MeanUp:   cfg.SwitchInterval,
		MeanDown: cfg.MeanDown,
		Disabled: cfg.ChurnDisabled,
	}
	churnProc, err := churn.NewProcess(churnCfg, cfg.NPeers, k)
	if err != nil {
		return nil, err
	}

	batteries := make([]*energy.Battery, cfg.NPeers)
	for i := range batteries {
		b, err := energy.NewBattery(energy.DefaultConfig())
		if err != nil {
			return nil, err
		}
		batteries[i] = b
	}

	netCfg := netsim.DefaultConfig()
	netCfg.CommRange = cfg.CommRange
	if cfg.UseDSRRouting {
		netCfg.Routing = netsim.RoutingDSR
	}
	netCfg.LossRate = cfg.LossRate
	netCfg.SerializeTx = cfg.SerializeTx
	netCfg.Kinetic = !cfg.DisableKinetic
	netCfg.RouteTableCap = cfg.RouteTableCap
	netCfg.LazyChurnRefresh = cfg.LazyChurnRefresh
	traffic := stats.NewTraffic()
	network, err := netsim.New(netCfg, k, field, churnProc, batteries, traffic)
	if err != nil {
		return nil, err
	}

	reg, err := data.NewRegistry(cfg.NPeers)
	if err != nil {
		return nil, err
	}
	stores := make([]*cache.Store, cfg.NPeers)
	for i := range stores {
		// One policy instance per store: policies are stateful. The TTL
		// policy ranks freshness against the scenario's TTP horizon.
		pol, perr := cache.NewPolicy(cfg.CachePolicy, cache.PolicyParams{TTL: cfg.TTP})
		if perr != nil {
			return nil, perr
		}
		stores[i], err = cache.NewStoreWithPolicy(cfg.CacheNum, pol)
		if err != nil {
			return nil, err
		}
		if cfg.CachePolicy == cache.PolicyUtility {
			// Estimate the re-fetch distance to an item's source host
			// geometrically (current positions, one hop per CommRange).
			// Pure function of sim state, so runs stay deterministic.
			node := i
			stores[i].SetHopsHint(func(item data.ItemID) int {
				owner := reg.Owner(item)
				if owner < 0 || owner >= cfg.NPeers || owner == node {
					return 0
				}
				d := field.PeekPosition(node, k.Now()).Dist(field.PeekPosition(owner, k.Now()))
				return int(math.Ceil(d / cfg.CommRange))
			})
		}
	}

	// Slack: in-flight forgiveness covering flood propagation plus the
	// poll round trip at the default hop latency.
	aud, err := consistency.NewAuditor(reg, cfg.TTP, 5*time.Second)
	if err != nil {
		return nil, err
	}
	lat := stats.NewLatency()
	chassis, err := node.NewChassis(node.DefaultConfig(), network, reg, stores, lat, aud)
	if err != nil {
		return nil, err
	}
	chassis.Hub = hub
	if tr := hub.Tracer(); tr != nil {
		network.SetTracer(tr)
	}
	if tracer != nil {
		chassis.Tracer = tracer
		network.SetTraceCollector(tracer)
	}

	strat, levelFor, err := buildStrategy(cfg, k, chassis, churnProc, field, batteries)
	if err != nil {
		return nil, err
	}

	var domains [][]data.ItemID
	if cfg.WarmCaches {
		domains = warmCaches(k, cfg, reg, stores, strat)
	}
	if err := strat.Start(k); err != nil {
		return nil, err
	}

	wlCfg := workload.Config{
		Hosts:           cfg.NPeers,
		MeanQueryEvery:  cfg.QueryInterval,
		MeanUpdateEvery: cfg.UpdateInterval,
		Popularity:      cfg.Popularity,
		Hotspots:        cfg.Hotspots,
		DiurnalPeriod:   cfg.DiurnalPeriod,
		DiurnalMin:      cfg.DiurnalMin,
	}
	if cfg.Popularity == workload.PopularityCached {
		if domains == nil {
			return nil, fmt.Errorf("experiment: cached-domain workload requires WarmCaches")
		}
		wlCfg.Domain = func(host int) []data.ItemID { return domains[host] }
	}
	wl, err := workload.NewGenerator(wlCfg,
		func(kk *sim.Kernel, host int, item data.ItemID) {
			strat.OnQuery(kk, host, item, levelFor(host, item))
		},
		func(kk *sim.Kernel, host int) {
			strat.OnUpdate(kk, host)
		},
	)
	if err != nil {
		return nil, err
	}
	wl.AttachTelemetry(hub)
	wl.Start(k)

	a := &assembled{
		cfg: cfg, hub: hub, k: k, field: field, churn: churnProc,
		batteries: batteries, net: network, reg: reg, stores: stores,
		aud: aud, lat: lat, traffic: traffic, chassis: chassis, strat: strat,
		tracer: tracer,
	}

	// Sample the traffic total in 60 windows for the timeline.
	a.timeline = make([]uint64, 0, 60)
	var lastTx uint64
	_, _ = k.Every(cfg.SimTime/60, "experiment.timeline", func(*sim.Kernel) {
		cur := traffic.TotalTx()
		a.timeline = append(a.timeline, cur-lastTx)
		lastTx = cur
	})
	return a, nil
}

// finalize folds traffic, the topology-maintenance counters and the sim
// clock into the hub, then collects the run's Result. Call exactly once,
// after the kernel has run to its horizon.
func (a *assembled) finalize() Result {
	a.hub.AttachTraffic(a.traffic)
	publishTopologyStats(a.hub, a.net.TopologyStats())
	a.hub.Finish(a.k.Now())

	res := collect(a.cfg, a.strat, a.traffic, a.lat, a.chassis, a.stores)
	res.Telemetry = a.hub.Snapshot()
	res.TrafficTimeline = a.timeline
	res.MinBatteryCE = 1
	capacity := energy.DefaultConfig().Capacity
	drains := make([]float64, 0, len(a.batteries))
	for _, b := range a.batteries {
		ce := b.CE(a.k.Now())
		drain := capacity * (1 - ce)
		drains = append(drains, drain)
		res.EnergyDrained += drain
		if ce < res.MinBatteryCE {
			res.MinBatteryCE = ce
		}
	}
	res.EnergyFairness = jainIndex(drains)
	return res
}

// publishTopologyStats exposes netsim's topology-maintenance counters as
// telemetry: how snapshots were produced (full rebuild vs kinetic
// sample), the kinetic machinery behind them (certificate checks, cell
// rebins, link make/break events) and what happened to route state at
// each sample. Counter handles are nil-safe, so a nil hub is a no-op.
func publishTopologyStats(hub *telemetry.Hub, s netsim.TopologyStats) {
	snapshots := func(mode string) *telemetry.Counter {
		return hub.Counter("rpcc_topology_snapshots_total",
			"Topology snapshots by production mode.", telemetry.Label{Key: "mode", Value: mode})
	}
	snapshots("full_rebuild").Add(s.FullRebuilds)
	snapshots("kinetic_sample").Add(s.KineticSamples)

	links := func(dir string) *telemetry.Counter {
		return hub.Counter("rpcc_topology_link_events_total",
			"Kinetic link make/break events.", telemetry.Label{Key: "dir", Value: dir})
	}
	links("make").Add(s.LinkMakes)
	links("break").Add(s.LinkBreaks)

	kinetic := func(event string) *telemetry.Counter {
		return hub.Counter("rpcc_topology_kinetic_work_total",
			"Kinetic maintenance events processed.", telemetry.Label{Key: "event", Value: event})
	}
	kinetic("cert_check").Add(s.CertChecks)
	kinetic("rebin").Add(s.Rebins)

	routes := func(outcome string) *telemetry.Counter {
		return hub.Counter("rpcc_topology_route_maintenance_total",
			"Route-table outcomes at topology samples.", telemetry.Label{Key: "outcome", Value: outcome})
	}
	routes("repaired").Add(s.RoutesRepaired)
	routes("dropped").Add(s.RoutesDropped)
	routes("full_reset").Add(s.RouteFullResets)
}

// jainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over xs,
// returning 1 for an empty or all-zero load.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// buildStrategy instantiates the configured engine and the per-query
// consistency-level selector.
func buildStrategy(cfg Config, k *sim.Kernel, chassis *node.Chassis, churnProc *churn.Process, field *mobility.Field, batteries []*energy.Battery) (Strategy, func(host int, item data.ItemID) consistency.Level, error) {
	fixed := func(l consistency.Level) func(int, data.ItemID) consistency.Level {
		return func(int, data.ItemID) consistency.Level { return l }
	}
	switch cfg.Strategy {
	case StrategyPull:
		pullCfg := pullConfigFrom(cfg)
		s, err := newPull(pullCfg, chassis)
		return s, fixed(consistency.LevelStrong), err
	case StrategyPush:
		pushCfg := pushConfigFrom(cfg)
		s, err := newPush(pushCfg, chassis)
		return s, fixed(consistency.LevelStrong), err
	case StrategyAdaptive:
		s, err := newAdaptive(chassis)
		return s, fixed(consistency.LevelDelta), err
	case StrategyGPSCE:
		// Audited at strong: the scheme CLAIMS validity via eager
		// invalidation; violations measure what stale GPS positions and
		// greedy-forwarding voids silently lose.
		s, err := newGPSCE(chassis)
		return s, fixed(consistency.LevelStrong), err
	case StrategyRPCCSC, StrategyRPCCDC, StrategyRPCCWC, StrategyRPCCHY:
		coreCfg := coreConfigFrom(cfg)
		tel := core.Telemetry{
			Switches: churnProc.Switches,
			Moves:    func(nd int) uint64 { return field.Node(nd).Moves() },
			CE:       func(nd int) float64 { return batteries[nd].CE(k.Now()) },
		}
		eng, err := core.New(coreCfg, chassis, tel)
		if err != nil {
			return nil, nil, err
		}
		switch cfg.Strategy {
		case StrategyRPCCSC:
			return eng, fixed(consistency.LevelStrong), nil
		case StrategyRPCCDC:
			return eng, fixed(consistency.LevelDelta), nil
		case StrategyRPCCWC:
			return eng, fixed(consistency.LevelWeak), nil
		default: // hybrid: the three levels arrive with equal probability
			rng := k.Stream("experiment.levels")
			levels := []consistency.Level{
				consistency.LevelStrong, consistency.LevelDelta, consistency.LevelWeak,
			}
			return eng, func(int, data.ItemID) consistency.Level {
				return levels[rng.Intn(len(levels))]
			}, nil
		}
	default:
		return nil, nil, fmt.Errorf("experiment: unknown strategy %q", cfg.Strategy)
	}
}

// testCoreMutator, when set (tests only), rewrites the derived core
// config — the broken-invariant chaos regression flips DisableRepair
// through it, since deliberately broken protocol knobs must never be
// reachable from an experiment Config.
var testCoreMutator func(*core.Config)

func coreConfigFrom(cfg Config) core.Config {
	c := core.DefaultConfig()
	if cfg.Popularity == workload.PopularitySingle {
		c.ActiveSource = func(host int) bool { return host == 0 }
	}
	c.InvalidationTTL = cfg.InvalidationTTL
	c.TTN = cfg.TTN
	c.TTR = cfg.TTR
	c.TTP = cfg.TTP
	c.PollFallbackTTL = cfg.BroadcastTTL
	c.Omega = cfg.Omega
	c.MuCAR = cfg.MuCAR
	c.MuCS = cfg.MuCS
	c.MuCE = cfg.MuCE
	c.EagerRelayRefresh = !cfg.DisableEagerRefresh
	if cfg.AdaptiveTTN {
		c.AdaptiveTTN = true
		c.AdaptiveTTNMax = 4 * c.TTN
	}
	if testCoreMutator != nil {
		testCoreMutator(&c)
	}
	return c
}

// warmCaches pre-populates the placement the paper's model assumes — in
// single-item mode every peer caches item 0; otherwise each node caches
// CacheNum items drawn uniformly from the others' — and returns each
// host's placed item set, which doubles as its query domain under
// PopularityCached.
func warmCaches(k *sim.Kernel, cfg Config, reg *data.Registry, stores []*cache.Store, strat Strategy) [][]data.ItemID {
	rng := k.Stream("experiment.warm")
	domains := make([][]data.ItemID, cfg.NPeers)
	warm := func(host int, item data.ItemID) {
		m, err := reg.Master(item)
		if err != nil {
			return
		}
		if w, ok := strat.(interface {
			Warm(*sim.Kernel, int, data.Copy)
		}); ok {
			w.Warm(k, host, m.Current())
		} else if err := stores[host].Put(m.Current(), 0); err != nil {
			return
		}
		domains[host] = append(domains[host], item)
	}
	if cfg.Popularity == workload.PopularitySingle {
		for host := 1; host < cfg.NPeers; host++ {
			warm(host, 0)
		}
		return domains
	}
	for host := 0; host < cfg.NPeers; host++ {
		seen := map[int]bool{host: true}
		for len(seen) <= cfg.CacheNum && len(seen) < cfg.NPeers {
			item := rng.Intn(cfg.NPeers)
			if seen[item] {
				continue
			}
			seen[item] = true
			warm(host, data.ItemID(item))
		}
	}
	return domains
}

func collect(cfg Config, strat Strategy, traffic *stats.Traffic, lat *stats.Latency, chassis *node.Chassis, stores []*cache.Store) Result {
	r := Result{
		Strategy:    cfg.Strategy,
		Config:      cfg,
		TotalTx:     traffic.TotalTx(),
		TotalBytes:  traffic.TotalBytes(),
		ByKind:      traffic.Snapshot(),
		MeanLatency: lat.Mean(),
		P50Latency:  lat.Quantile(0.5),
		P99Latency:  lat.Quantile(0.99),
		MaxLatency:  lat.Max(),
		Issued:      chassis.Issued(),
		Answered:    chassis.Answered(),
		Failed:      chassis.Failed(),
	}
	if hours := cfg.SimTime.Hours(); hours > 0 {
		r.TxPerHour = float64(r.TotalTx) / hours
	}
	aud := chassis.Auditor
	r.Violations = aud.TotalViolations()
	r.TornAnswers = aud.Violations(consistency.ViolationTorn)
	r.FutureAnswers = aud.Violations(consistency.ViolationFuture)
	r.MeanStaleness = aud.MeanStaleness()
	r.MaxStaleness = aud.MaxStaleness()
	if rc, ok := strat.(RelayCounter); ok {
		r.RelayCount = rc.RelayCount()
	}
	if ps, ok := strat.(interface {
		PollStats() (uint64, uint64, uint64, uint64)
	}); ok {
		r.PollDirect, r.PollRing, r.PollFallback, r.RelayForgets = ps.PollStats()
	}
	if rc, ok := strat.(interface{ RoleCounts() (int, int, int) }); ok {
		r.RoleCache, r.RoleCand, r.RoleRelay = rc.RoleCounts()
	}
	var hit float64
	for _, s := range stores {
		hit += s.HitRatio()
	}
	r.MeanHitRatio = hit / float64(len(stores))
	return r
}

// AnswerRate returns the fraction of issued queries answered.
func (r Result) AnswerRate() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Answered) / float64(r.Issued)
}

// String summarises the result in one line.
func (r Result) String() string {
	return fmt.Sprintf("%s: tx=%d (%.0f/h) lat(mean=%v p99=%v) answered=%d/%d viol=%d",
		r.Strategy, r.TotalTx, r.TxPerHour, r.MeanLatency, r.P99Latency,
		r.Answered, r.Issued, r.Violations)
}
