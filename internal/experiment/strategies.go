package experiment

import (
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/pushpull"
	"github.com/manetlab/rpcc/internal/workload"
)

// pushConfigFrom maps a scenario onto the simple push baseline's knobs.
func pushConfigFrom(cfg Config) pushpull.PushConfig {
	c := pushpull.DefaultPushConfig()
	c.TTN = cfg.TTN
	c.BroadcastTTL = cfg.BroadcastTTL
	if cfg.Popularity == workload.PopularitySingle {
		c.ActiveSource = func(host int) bool { return host == 0 }
	}
	if c.QueryPatience < 3*cfg.TTN {
		c.QueryPatience = 3 * cfg.TTN
	}
	return c
}

// pullConfigFrom maps a scenario onto the simple pull baseline's knobs.
func pullConfigFrom(cfg Config) pushpull.PullConfig {
	c := pushpull.DefaultPullConfig()
	c.BroadcastTTL = cfg.BroadcastTTL
	return c
}

func newPush(cfg pushpull.PushConfig, ch *node.Chassis) (Strategy, error) {
	return pushpull.NewPush(cfg, ch)
}

func newPull(cfg pushpull.PullConfig, ch *node.Chassis) (Strategy, error) {
	return pushpull.NewPull(cfg, ch)
}

func newAdaptive(ch *node.Chassis) (Strategy, error) {
	return pushpull.NewAdaptive(pushpull.DefaultAdaptiveConfig(), ch)
}

func newGPSCE(ch *node.Chassis) (Strategy, error) {
	return pushpull.NewGPSCE(pushpull.DefaultGPSCEConfig(), ch)
}
