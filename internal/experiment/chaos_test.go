package experiment

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/faults"
	"github.com/manetlab/rpcc/internal/telemetry"
	"github.com/manetlab/rpcc/internal/workload"
)

// chaosConfig is the demonstration scenario: Table 1 shrunk to 25
// simulated minutes so a partition, its heal, a relay assassination and a
// crash/restart all fit.
func chaosConfig() Config {
	cfg := DefaultConfig(StrategyRPCCSC, 11)
	cfg.SimTime = 25 * time.Minute
	return cfg
}

// chaosCampaign exercises every fault class at once: a five-minute
// two-island partition, bursty Gilbert–Elliott loss, one crash/restart,
// one relay assassination, and mild duplication/reordering.
func chaosCampaign() faults.Config {
	island := make([]int, 25)
	for i := range island {
		island[i] = 25 + i
	}
	return faults.Config{
		Partitions: []faults.Partition{
			{Start: 5 * time.Minute, End: 10 * time.Minute, Islands: [][]int{island}},
		},
		Loss:           &faults.GilbertParams{PGoodToBad: 0.02, PBadToGood: 0.3, LossGood: 0, LossBad: 0.8},
		Crashes:        []faults.Crash{{At: 18 * time.Minute, Node: 7, RestartAfter: time.Minute}},
		Assassinations: []faults.Assassination{{At: 15 * time.Minute, Item: 3, Count: 1, RestartAfter: 2 * time.Minute}},
		DupProb:        0.01,
		ReorderMax:     5 * time.Millisecond,
		// Repair is trigger-driven (an INVALIDATION flood every TTN=2m),
		// so the window must exceed the auditor's debt grace (2·TTN+30s)
		// for the check to be non-vacuous.
		RepairWindow: 6 * time.Minute,
		// RPCC-SC's strong level is TTR-window approximate even
		// fault-free (~11% stale answers in this scenario); the budget
		// tolerates that plus fault-induced degradation.
		StrongStaleBudget: 0.5,
	}
}

func TestRunChaosRequiresRPCC(t *testing.T) {
	cfg := chaosConfig()
	cfg.Strategy = StrategyPull
	if _, _, err := RunChaos(cfg, nil, faults.Config{}); err == nil {
		t.Fatal("non-RPCC strategy accepted")
	}
}

// A zero campaign must be invisible: the chaos entry point with nothing
// to inject produces the byte-identical result of a plain run — no extra
// RNG draws, no behavioural drift from the plane or the auditor sweeps.
func TestRunChaosZeroCampaignMatchesPlainRun(t *testing.T) {
	cfg := chaosConfig()
	plain, err := RunWithTelemetry(cfg, telemetry.NewHub(telemetry.LevelMetrics))
	if err != nil {
		t.Fatal(err)
	}
	chaos, rep, err := RunChaos(cfg, telemetry.NewHub(telemetry.LevelMetrics), faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sweeps == 0 {
		t.Error("auditor never swept")
	}
	if rep.MonotoneViolations != 0 || rep.RetryViolations != 0 {
		t.Errorf("fault-free run violated invariants: %s", rep)
	}
	if !reflect.DeepEqual(plain, chaos) {
		t.Errorf("zero campaign perturbed the run:\nplain %s\nchaos %s", plain, chaos)
	}
}

func TestRunChaosSameSeedDeterminism(t *testing.T) {
	cfg := chaosConfig()
	camp := chaosCampaign()
	r1, rep1, err := RunChaos(cfg, telemetry.NewHub(telemetry.LevelMetrics), camp)
	if err != nil {
		t.Fatal(err)
	}
	r2, rep2, err := RunChaos(cfg, telemetry.NewHub(telemetry.LevelMetrics), camp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same-seed campaigns diverged:\n%s\n%s", r1, r2)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("same-seed reports diverged:\n%s\n%s", rep1, rep2)
	}
}

// The demonstration campaign — partition, assassination, crash, bursty
// loss, duplication, reordering — must leave every invariant standing.
func TestChaosDemonstrationCampaignPassesInvariants(t *testing.T) {
	res, rep, err := RunChaos(chaosConfig(), telemetry.NewHub(telemetry.LevelMetrics), chaosCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HealsChecked != 1 {
		t.Errorf("heal checks = %d, want 1", rep.HealsChecked)
	}
	if !rep.Passed() {
		t.Errorf("invariants violated under demonstration campaign: %s", rep)
	}
	if res.Issued == 0 || res.Answered == 0 {
		t.Errorf("campaign starved the workload: %s", res)
	}
	// The faults must really have fired: the partition severed traffic
	// and every fault class was counted.
	var partitionDrops float64
	if fam, ok := res.Telemetry.Family("rpcc_dropped_total"); ok {
		for _, s := range fam.Metrics {
			for _, lb := range s.Labels {
				if lb.Key == "cause" && lb.Value == "partition" {
					partitionDrops += s.Value
				}
			}
		}
	}
	if partitionDrops == 0 {
		t.Error("partition window severed no traffic")
	}
	for _, kind := range []string{"partition-split", "partition-heal", "crash", "restart", "assassination"} {
		if res.Telemetry.CounterValue("rpcc_fault_events_total", telemetry.Label{Key: "kind", Value: kind}) == 0 {
			t.Errorf("fault kind %q never fired", kind)
		}
	}
}

// Deliberately breaking §4.5 — a relay that never issues GET_NEW after
// hearing newer version evidence — must be caught by the heal-convergence
// invariant.
func TestChaosBrokenRepairCaught(t *testing.T) {
	testCoreMutator = func(c *core.Config) { c.DisableRepair = true }
	defer func() { testCoreMutator = nil }()
	_, rep, err := RunChaos(chaosConfig(), telemetry.NewHub(telemetry.LevelMetrics), chaosCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HealViolations == 0 {
		t.Fatalf("auditor missed the disabled repair path: %s", rep)
	}
	if rep.Passed() {
		t.Fatalf("report passed with repair disabled: %s", rep)
	}
}

// flashCrowdChaosConfig squeezes every cache to four slots under
// Zipf-skewed demand with an 80%-weight hotspot on item 1 spanning the
// partition window, so replacement churn and the fault campaign overlap.
func flashCrowdChaosConfig(policy cache.PolicyKind) Config {
	cfg := chaosConfig()
	cfg.CachePolicy = policy
	cfg.CacheNum = 4
	cfg.Popularity = workload.PopularityZipf
	cfg.Hotspots = []workload.Hotspot{
		{Start: 6 * time.Minute, Duration: 8 * time.Minute, Item: 1, Weight: 0.8},
	}
	return cfg
}

// The flash-crowd campaign: a popularity spike rides through the full
// fault demonstration (partition, bursty loss, assassination, crash)
// while caches churn under every replacement policy. The consistency
// invariants are policy-independent and must hold throughout; the
// policies must also actually behave differently under this pressure —
// identical results across all four would mean the churn is vacuous.
func TestChaosFlashCrowdUnderFaultsPerPolicy(t *testing.T) {
	camp := chaosCampaign()
	distinct := map[string][]string{}
	for _, kind := range cache.AllPolicyKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			res, rep, err := RunChaos(flashCrowdChaosConfig(kind), telemetry.NewHub(telemetry.LevelMetrics), camp)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Passed() {
				t.Errorf("invariants violated under %s flash crowd: %s", kind, rep)
			}
			if res.Issued == 0 || res.Answered == 0 {
				t.Errorf("flash crowd starved the workload: %s", res)
			}
			for _, fault := range []string{"partition-split", "partition-heal", "crash", "assassination"} {
				if res.Telemetry.CounterValue("rpcc_fault_events_total", telemetry.Label{Key: "kind", Value: fault}) == 0 {
					t.Errorf("fault kind %q never fired under %s", fault, kind)
				}
			}
			key := fmt.Sprintf("%d/%d/%d", res.Answered, res.Failed, res.TotalTx)
			distinct[key] = append(distinct[key], string(kind))
		})
	}
	if len(distinct) < 2 {
		t.Errorf("all policies produced identical chaos results — no replacement pressure: %v", distinct)
	}
}
