package experiment

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// scaleAutoShardFloor is the peer count below which auto-sharding stays
// serial: one region, one kernel — exactly the path every figure runs.
const scaleAutoShardFloor = 2000

// scaleGossipInterval paces the cross-region watermark gossip.
const scaleGossipInterval = time.Second

// ScaleConfig parameterises one large-scale run: the base scenario
// (NPeers is the TOTAL across all regions) plus the sharding controls.
type ScaleConfig struct {
	Config

	// Shards is the region count; 0 picks automatically (1 below 2000
	// peers, then one region per ~2500 peers, at most 16). Each region is
	// an independent protocol stack on its own sub-kernel — peers query
	// within their region, and regions exchange progress watermarks
	// through the sharded kernel's bounded-lookahead mail.
	Shards int
	// Parallel runs each region's window on its own goroutine. The
	// result is identical either way (the sharded-kernel equivalence
	// tests pin it); on a single-core host this is pure overhead.
	Parallel bool
	// Trace enables causal tracing: each region gets its own collector
	// (region id = shard index, so span ids never collide) and the merged
	// span set lands in ScaleResult.Spans in canonical order.
	Trace bool
}

// ScaleResult is a merged large-scale run report.
type ScaleResult struct {
	Result

	// Shards is the region count actually used.
	Shards int
	// PerShard holds each region's own Result (nil when Shards == 1 —
	// the merged Result IS the single region's).
	PerShard []Result
	// Barriers / MailDelivered count sharded-kernel synchronization
	// work (zero when Shards == 1).
	Barriers      uint64
	MailDelivered uint64
	// GossipViolations counts cross-region watermark regressions — a
	// receiver observing a sender's answered-query counter move
	// backwards, which a correct lockstep schedule makes impossible.
	GossipViolations uint64
	// Topology aggregates the per-region networks' topology-maintenance
	// counters.
	Topology netsim.TopologyStats
	// Spans is the merged causal trace in canonical (StartNs, Region,
	// Seq) order — nil unless ScaleConfig.Trace was set. The merge order
	// is a pure function of the spans, so same-seed runs produce
	// byte-identical JSONL regardless of region count or scheduling.
	Spans []ctrace.Span
	// KernelStats is the sharded kernel's per-shard introspection
	// snapshot (events, mail, barrier stalls).
	KernelStats sim.ShardedStats
}

// autoShards picks the region count for n peers.
func autoShards(n int) int {
	if n < scaleAutoShardFloor {
		return 1
	}
	s := n / 2500
	if s < 2 {
		s = 2
	}
	if s > 16 {
		s = 16
	}
	return s
}

// RunScale executes one scenario at scale: the peers split into S
// equal-density regions, each assembled as an independent stack on a
// sub-kernel of a ShardedKernel (lookahead = the per-hop forwarding
// delay, the minimum time anything could cross a region boundary), run
// in lockstep, and merged into one report. Regions gossip monotone
// answered-query watermarks through the barrier mail; any regression is
// reported as a GossipViolation. S = 1 is the degenerate case — one
// region on one sub-kernel, which the sharded-kernel tests prove
// event-identical to a plain serial kernel — so small runs behave
// exactly like Run.
func RunScale(cfg ScaleConfig) (ScaleResult, error) {
	if err := cfg.Validate(); err != nil {
		return ScaleResult{}, err
	}
	s := cfg.Shards
	if s == 0 {
		s = autoShards(cfg.NPeers)
	}
	if s < 1 {
		return ScaleResult{}, fmt.Errorf("experiment: bad shard count %d", s)
	}
	if cfg.NPeers/s < 2 {
		return ScaleResult{}, fmt.Errorf("experiment: %d peers across %d shards leaves <2 per region", cfg.NPeers, s)
	}
	lookahead := netsim.DefaultConfig().HopBase
	sk, err := sim.NewShardedKernel(s, lookahead, cfg.SimTime, cfg.Seed)
	if err != nil {
		return ScaleResult{}, err
	}
	sk.SetParallel(cfg.Parallel)

	// Split peers evenly (remainder to the low regions) and scale each
	// region's area by its peer share so node density matches the base
	// scenario.
	stacks := make([]*assembled, s)
	base, rem := cfg.NPeers/s, cfg.NPeers%s
	for i := 0; i < s; i++ {
		sub := cfg.Config
		sub.NPeers = base
		if i < rem {
			sub.NPeers++
		}
		// Width stays; the height carries the region's peer share, so each
		// region is a horizontal strip of the base terrain at unchanged
		// node density.
		share := float64(sub.NPeers) / float64(cfg.NPeers)
		sub.AreaWidth = cfg.AreaWidth
		sub.AreaHeight = cfg.AreaHeight * share
		sub.Seed = cfg.Seed // sub-kernel seeds already differ per shard
		if err := sub.Validate(); err != nil {
			return ScaleResult{}, fmt.Errorf("experiment: shard %d config: %w", i, err)
		}
		hub := telemetry.NewHub(telemetry.LevelMetrics)
		var tracer *ctrace.Collector
		if cfg.Trace {
			tracer = ctrace.NewCollector(i)
		}
		a, err := assembleScenario(sub, hub, sk.Shard(i), tracer)
		if err != nil {
			return ScaleResult{}, fmt.Errorf("experiment: shard %d assemble: %w", i, err)
		}
		stacks[i] = a
	}

	// Watermark gossip: every region periodically mails its answered
	// counter to the next region; receivers assert per-sender
	// monotonicity. lastSeen[j] and gossipViol[j] are touched only by
	// shard j's handlers, so parallel windows need no locking.
	lastSeen := make([][]uint64, s)
	gossipViol := make([]uint64, s)
	for i := range lastSeen {
		lastSeen[i] = make([]uint64, s)
	}
	for i := 0; s > 1 && i < s; i++ {
		i := i
		next := (i + 1) % s
		if _, err := sk.Shard(i).Every(scaleGossipInterval, "scale.gossip", func(k *sim.Kernel) {
			w := stacks[i].chassis.Answered()
			if err := sk.Send(i, next, lookahead, "scale.watermark", func(*sim.Kernel) {
				if w < lastSeen[next][i] {
					gossipViol[next]++
				} else {
					lastSeen[next][i] = w
				}
			}); err != nil {
				panic(fmt.Sprintf("experiment: watermark send %d->%d: %v", i, next, err))
			}
		}); err != nil {
			return ScaleResult{}, err
		}
	}

	sk.Run()

	out := ScaleResult{
		Shards:        s,
		PerShard:      make([]Result, s),
		Barriers:      sk.Barriers(),
		MailDelivered: sk.Delivered(),
		KernelStats:   sk.Stats(),
	}
	sets := make([][]ctrace.Span, 0, s)
	for i, a := range stacks {
		out.PerShard[i] = a.finalize()
		out.Topology.Add(a.net.TopologyStats())
		if a.tracer != nil {
			sets = append(sets, a.tracer.Export())
		}
	}
	if len(sets) > 0 {
		out.Spans = ctrace.Merge(sets...)
	}
	for _, v := range gossipViol {
		out.GossipViolations += v
	}
	out.Result = mergeResults(cfg.Config, out.PerShard)
	return out, nil
}

// mergeResults folds per-region results into one report for the whole
// population. Counters sum; means weight by the contributing population
// (answered queries for latency/staleness, peers for hit ratio);
// quantiles take the per-region maximum, a conservative upper bound —
// exact cross-region quantiles would need the raw samples, which the
// regions do not retain.
func mergeResults(total Config, rs []Result) Result {
	if len(rs) == 1 {
		// One region IS the population; copying keeps the weighted means
		// bit-exact (a multiply/divide round trip is not).
		m := rs[0]
		m.Strategy = total.Strategy
		m.Config = total
		return m
	}
	m := Result{Strategy: total.Strategy, Config: total, MinBatteryCE: 1}
	var latWeight, staleWeight uint64
	var hitWeight float64
	var fairWeight float64
	for _, r := range rs {
		m.TotalTx += r.TotalTx
		m.TotalBytes += r.TotalBytes
		m.Issued += r.Issued
		m.Answered += r.Answered
		m.Failed += r.Failed
		m.Violations += r.Violations
		m.TornAnswers += r.TornAnswers
		m.FutureAnswers += r.FutureAnswers
		m.RelayCount += r.RelayCount
		m.RoleCache += r.RoleCache
		m.RoleCand += r.RoleCand
		m.RoleRelay += r.RoleRelay
		m.PollDirect += r.PollDirect
		m.PollRing += r.PollRing
		m.PollFallback += r.PollFallback
		m.RelayForgets += r.RelayForgets
		m.EnergyDrained += r.EnergyDrained

		m.MeanLatency += time.Duration(float64(r.MeanLatency) * float64(r.Answered))
		m.MeanStaleness += time.Duration(float64(r.MeanStaleness) * float64(r.Answered))
		latWeight += r.Answered
		staleWeight += r.Answered
		if r.P50Latency > m.P50Latency {
			m.P50Latency = r.P50Latency
		}
		if r.P99Latency > m.P99Latency {
			m.P99Latency = r.P99Latency
		}
		if r.MaxLatency > m.MaxLatency {
			m.MaxLatency = r.MaxLatency
		}
		if r.MaxStaleness > m.MaxStaleness {
			m.MaxStaleness = r.MaxStaleness
		}
		if r.MinBatteryCE < m.MinBatteryCE {
			m.MinBatteryCE = r.MinBatteryCE
		}

		peers := float64(r.Config.NPeers)
		m.MeanHitRatio += r.MeanHitRatio * peers
		hitWeight += peers
		m.EnergyFairness += r.EnergyFairness * peers
		fairWeight += peers

		for w, v := range r.TrafficTimeline {
			for len(m.TrafficTimeline) <= w {
				m.TrafficTimeline = append(m.TrafficTimeline, 0)
			}
			m.TrafficTimeline[w] += v
		}
		if r.Telemetry != nil {
			if m.Telemetry == nil {
				m.Telemetry = r.Telemetry
			} else if err := m.Telemetry.Merge(r.Telemetry); err != nil {
				// Snapshots from identically configured regions always
				// merge; a failure means a schema bug, not run data.
				panic(fmt.Sprintf("experiment: telemetry merge: %v", err))
			}
		}
	}
	if latWeight > 0 {
		m.MeanLatency = time.Duration(float64(m.MeanLatency) / float64(latWeight))
	}
	if staleWeight > 0 {
		m.MeanStaleness = time.Duration(float64(m.MeanStaleness) / float64(staleWeight))
	}
	if hitWeight > 0 {
		m.MeanHitRatio /= hitWeight
	}
	if fairWeight > 0 {
		m.EnergyFairness /= fairWeight
	}
	if hours := total.SimTime.Hours(); hours > 0 {
		m.TxPerHour = float64(m.TotalTx) / hours
	}
	return m
}
