package experiment

import (
	"testing"
	"time"
)

// TestLargeScaleRun pushes the simulator well past the paper's 50 peers
// to check that nothing degrades structurally at 4x scale (the paper's
// GloMoSim was built for "large-scale wireless networks"; our substrate
// should not be the bottleneck of any follow-up study).
func TestLargeScaleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run skipped in -short mode")
	}
	cfg := DefaultConfig(StrategyRPCCHY, 3)
	cfg.NPeers = 200
	cfg.AreaWidth, cfg.AreaHeight = 3000, 3000 // same density as Table 1
	cfg.SimTime = 10 * time.Minute
	start := time.Now()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("200 peers x 10min simulated in %v wall: %s", time.Since(start).Round(time.Millisecond), r)
	if r.Answered == 0 {
		t.Fatal("no queries answered at scale")
	}
	if r.TornAnswers != 0 || r.FutureAnswers != 0 {
		t.Fatal("integrity violations at scale")
	}
	if r.RelayCount == 0 {
		t.Error("no relays formed at scale")
	}
}
