package experiment

import (
	"testing"

	"github.com/manetlab/rpcc/internal/core"
)

// TestExperimentCannotReachMutants pins the containment property the
// conformance mutants rely on: no experiment Config field maps onto
// core.Config.Mutant, so every experiment-driven engine runs the clean
// protocol. Only the oracle's gate (which builds core.Config directly)
// may inject a mutant.
func TestExperimentCannotReachMutants(t *testing.T) {
	for _, s := range []StrategyKind{StrategyRPCCSC, StrategyRPCCDC, StrategyRPCCWC, StrategyRPCCHY} {
		cfg := DefaultConfig(s, 1)
		// Exercise every knob an experiment config can turn, to show none
		// of them reaches the mutant field.
		cfg.AdaptiveTTN = true
		cfg.DisableEagerRefresh = true
		cc := coreConfigFrom(cfg)
		if cc.Mutant != core.MutantNone {
			t.Fatalf("strategy %s: experiment config produced mutant %v", s, cc.Mutant)
		}
	}
}
