package experiment

import (
	"fmt"
	"hash/fnv"
)

// This file holds the pure helpers the fleet orchestrator builds on:
// enumerating a sweep as an explicit job list, fingerprinting a scenario
// config into a stable job key, deriving per-job seeds, and assembling a
// Figure back out of a key→Result lookup. Everything here is
// deterministic and side-effect free, so callers may evaluate jobs in
// any order, on any number of workers, and still reproduce the serial
// result bit for bit.

// SweepJob is one (strategy, sweep point, replica) simulation of a spec.
type SweepJob struct {
	SpecID   string
	Strategy StrategyKind
	X        float64
	Replica  int
	// Key fingerprints the fully applied Config. Two specs that sweep
	// the same underlying parameter (e.g. fig7a and fig8a, which share
	// one simulation matrix and differ only in the plotted metric)
	// produce identical keys, so an executor that caches by key runs
	// each distinct scenario once.
	Key    string
	Config Config
}

// Key returns a stable fingerprint of the scenario: the strategy and
// seed in the clear (for humans grepping a journal) plus an FNV-1a hash
// of every config field. Keys are stable across runs of the same binary;
// they change when Config gains fields, which is exactly when journaled
// results stop being comparable anyway.
func (c Config) Key() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", c)
	return fmt.Sprintf("%s/seed%d/%016x", c.Strategy, c.Seed, h.Sum64())
}

// DeriveSeed mixes a root seed with a job key using FNV-1a (the same
// construction the sim kernel uses for its named random streams) so
// ad-hoc fleet jobs get decorrelated seeds that depend only on the job's
// identity — never on worker assignment or completion order. Sweep jobs
// do NOT use it: see SweepJobs for why replicas share seeds across
// strategies.
func DeriveSeed(root int64, key string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(root>>(8*i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	if h == 0 {
		h = offset64
	}
	return int64(h & 0x7fffffffffffffff)
}

// SweepJobs enumerates the spec as an explicit job list: one job per
// (strategy, x, replica) triple, in the deterministic order the serial
// driver would run them. Replica r runs with seed base.Seed+r for every
// strategy and sweep point — deliberately shared, so all strategies face
// the same topology and workload process and A/B comparisons stay fair
// (the property EXPERIMENTS.md relies on). The seed is a pure function
// of the job, so any execution order reproduces the serial sweep.
func SweepJobs(spec SweepSpec, base Config, replicas int) ([]SweepJob, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("experiment: replicas %d must be > 0", replicas)
	}
	if spec.Apply == nil {
		return nil, fmt.Errorf("experiment: spec %q has no Apply", spec.ID)
	}
	defs := spec.seriesDefs()
	jobs := make([]SweepJob, 0, len(defs)*len(spec.Xs)*replicas)
	for _, def := range defs {
		for _, x := range spec.Xs {
			for r := 0; r < replicas; r++ {
				cfg := base
				cfg.Seed = base.Seed + int64(r)
				def.Apply(&cfg)
				spec.Apply(&cfg, x)
				jobs = append(jobs, SweepJob{
					SpecID:   spec.ID,
					Strategy: StrategyKind(def.Label),
					X:        x,
					Replica:  r,
					Key:      cfg.Key(),
					Config:   cfg,
				})
			}
		}
	}
	return jobs, nil
}

// AssembleFigure rebuilds the spec's Figure from a key→Result lookup
// (typically a fleet report, or the journal of a previous run). Replica
// results for each point are folded through Aggregate, exactly as the
// serial driver does. A missing key — a job that failed or never ran —
// is an error naming the job, so partial sweeps fail loudly per figure
// rather than plotting holes.
func AssembleFigure(spec SweepSpec, base Config, replicas int, lookup func(key string) (Result, bool)) (Figure, error) {
	jobs, err := SweepJobs(spec, base, replicas)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     spec.ID,
		Title:  spec.Title,
		XLabel: spec.XLabel,
		YLabel: spec.YLabel,
	}
	i := 0
	for _, def := range spec.seriesDefs() {
		s := Series{Strategy: StrategyKind(def.Label), Points: make([]Point, 0, len(spec.Xs))}
		for _, x := range spec.Xs {
			runs := make([]Result, 0, replicas)
			for r := 0; r < replicas; r++ {
				j := jobs[i]
				i++
				res, ok := lookup(j.Key)
				if !ok {
					return Figure{}, fmt.Errorf("experiment: %s %s x=%g replica=%d (job %s): no result (failed or not run)",
						spec.ID, def.Label, x, r, j.Key)
				}
				runs = append(runs, res)
			}
			s.Points = append(s.Points, Point{X: x, Result: Aggregate(runs).Mean})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
