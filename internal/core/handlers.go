package core

import (
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// dispatch routes a delivered message to the appropriate side of the
// protocol (Fig 6b–d). Every delivery also counts toward the node's
// accessibility evidence (N_a).
func (e *Engine) dispatch(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
	e.deliveries[nd]++
	switch msg.Kind {
	case protocol.KindInvalidation:
		e.onInvalidation(k, nd, msg)
	case protocol.KindUpdate:
		e.onUpdate(k, nd, msg)
	case protocol.KindGetNew:
		e.onGetNew(k, nd, msg)
	case protocol.KindSendNew:
		e.onSendNew(k, nd, msg)
	case protocol.KindApply:
		e.onApply(k, nd, msg)
	case protocol.KindApplyAck:
		e.onApplyAck(k, nd, msg)
	case protocol.KindCancel:
		e.onCancel(nd, msg)
	case protocol.KindPoll:
		e.onPoll(k, nd, msg)
	case protocol.KindPollAckA:
		e.onPollAckA(k, nd, msg)
	case protocol.KindPollAckB:
		e.onPollAckB(k, nd, msg)
	case protocol.KindDataRequest:
		e.ch.HandleDataRequest(k, nd, msg)
	case protocol.KindDataReply:
		e.ch.HandleDataReply(k, nd, msg)
	}
}

// onInvalidation implements the relay-peer reaction of Fig 6(c) lines 1–13
// and the candidate APPLY trigger of §4.3: hearing an INVALIDATION proves
// the node is within TTL hops of the source host.
func (e *Engine) onInvalidation(k *sim.Kernel, nd int, msg protocol.Message) {
	st, ok := e.peers[nd].items[msg.Item]
	if !ok {
		return // not caching this item
	}
	if msg.Version > st.invVersion {
		// Strictly newer version evidence reopens an exhausted repair
		// budget: the world has moved on, so the give-up no longer holds.
		if st.getNewGaveUp {
			st.getNewGaveUp = false
			st.getNewAttempts = 0
		}
		if st.applyGaveUp {
			st.applyGaveUp = false
			st.applyAttempts = 0
		}
		// The watermark only advances: a duplicated or reordered stale
		// announcement must not roll back what this node knows exists.
		st.invVersion = msg.Version
	}
	st.invAt = k.Now()
	st.invHeard = true
	if st.knownRelay < 0 {
		// Hearing the INVALIDATION proves the source is within TTL hops:
		// until a closer relay answers a poll, validate against the
		// source directly rather than flooding.
		st.knownRelay = msg.Origin
	}

	switch st.role {
	case RoleRelay:
		cp, have := e.ch.Stores[nd].Peek(msg.Item)
		if !have {
			return
		}
		if cp.Version < st.invVersion {
			// Missed one or more updates (e.g. while disconnected, §4.5):
			// repair with GET_NEW. The debt clock starts at the first
			// missed announcement and runs until a refresh lands. The
			// comparison is against the watermark, not msg.Version, so a
			// reordered stale announcement cannot mask a known gap.
			if !st.debtOpen {
				st.debtOpen = true
				st.debtSince = k.Now()
			}
			e.sendGetNew(k, nd, msg.Item, st, msg.Trace)
			return
		}
		if msg.Version < st.invVersion {
			// The copy covers the watermark, but this announcement is a
			// stale replay: it is evidence from before the newest known
			// version existed and cannot renew the relay's authority.
			return
		}
		// Copy confirmed current: renew TTR (and the copy is trivially
		// valid for TTP purposes too), then serve any queued polls.
		st.debtOpen = false
		st.lastRefreshed = k.Now()
		st.refreshedOnce = true
		st.lastValidated = k.Now()
		st.validatedOnce = true
		e.flushPendingPolls(k, nd, msg.Item, st)
	case RoleCandidate:
		// Re-apply when the last APPLY has gone unanswered longer than
		// the current backoff gate — it (or its ACK) must have been lost.
		// The gate doubles with every unanswered send and the candidate
		// gives up at MaxRepairAttempts.
		if st.applyPending {
			if e.cfg.DisableRepair {
				return
			}
			if st.applyAttempts >= e.cfg.MaxRepairAttempts {
				if !st.applyGaveUp {
					st.applyGaveUp = true
					e.applyGiveUps++
					e.ch.Hub.RepairGiveUp(telemetry.RepairApply)
				}
				return
			}
			if k.Now()-st.applySentAt < e.repairGate(st.applyAttempts) {
				return
			}
		}
		st.applyPending = true
		st.applySentAt = k.Now()
		st.applyAttempts++
		e.applySends++
		e.ch.Hub.RepairAttempt(telemetry.RepairApply)
		ap := protocol.Message{
			Kind:   protocol.KindApply,
			Item:   msg.Item,
			Origin: nd,
		}
		_ = e.ch.Net.Unicast(nd, e.ch.Reg.Owner(msg.Item), ap)
	}
}

// repairGate returns the resend gate after the given number of unanswered
// sends: RepairTimeout doubling per attempt, capped at RepairBackoffMax.
func (e *Engine) repairGate(attempts int) time.Duration {
	gate := e.cfg.RepairTimeout
	for i := 1; i < attempts; i++ {
		gate *= 2
		if gate >= e.cfg.RepairBackoffMax {
			return e.cfg.RepairBackoffMax
		}
	}
	return gate
}

// sendGetNew issues the GET_NEW repair unless one is already outstanding
// and inside its backoff gate; a lost SEND_NEW therefore delays repair by
// at most the current gate rather than wedging the relay forever, and a
// relay that cannot reach its source (permanent partition) stops asking
// after MaxRepairAttempts until newer version evidence arrives. parent is
// the trace context of whatever evidence triggered the repair (an
// INVALIDATION or stale UPDATE delivery); the repair round — including
// every backoff resend until SEND_NEW lands — is one repair span under it.
func (e *Engine) sendGetNew(k *sim.Kernel, nd int, item data.ItemID, st *itemState, parent protocol.TraceContext) {
	if e.cfg.DisableRepair {
		return
	}
	if st.getNewPending {
		if st.getNewAttempts >= e.cfg.MaxRepairAttempts {
			if !st.getNewGaveUp {
				st.getNewGaveUp = true
				e.getNewGiveUps++
				e.ch.Hub.RepairGiveUp(telemetry.RepairGetNew)
				e.ch.Tracer.FinishAs(st.repairTC, k.Now().Nanoseconds(), "GET_NEW-gave-up")
				st.repairTC = protocol.TraceContext{}
			}
			return
		}
		if k.Now()-st.getNewSentAt < e.repairGate(st.getNewAttempts) {
			return
		}
	}
	st.getNewPending = true
	st.getNewSentAt = k.Now()
	st.getNewAttempts++
	e.getNewSends++
	e.ch.Hub.RepairAttempt(telemetry.RepairGetNew)
	if st.repairTC.TraceID == 0 {
		st.repairTC = e.ch.Tracer.StartChild(k.Now().Nanoseconds(), parent, nd, ctrace.PhaseRepair, "GET_NEW")
	}
	gn := protocol.Message{Kind: protocol.KindGetNew, Item: item, Origin: nd, Trace: st.repairTC}
	_ = e.ch.Net.Unicast(nd, e.ch.Reg.Owner(item), gn)
}

// onUpdate implements Fig 6(c) lines 23–25 for relays and Fig 6(d) lines
// 27–37 for candidates (missed APPLY_ACK) and demoted cache nodes (owner
// missed our CANCEL).
func (e *Engine) onUpdate(k *sim.Kernel, nd int, msg protocol.Message) {
	st, ok := e.peers[nd].items[msg.Item]
	if !ok {
		// The copy was evicted; the owner evidently still lists us as a
		// relay — repeat the CANCEL it missed.
		e.sendCancel(k, nd, msg.Item)
		return
	}
	if e.cfg.Mutant != MutantStaleUpdate && e.cfg.Mutant != MutantStoreRegression {
		if held, have := e.ch.Stores[nd].Peek(msg.Item); have && msg.Copy.Version < held.Version {
			// A strictly newer copy is already held: this push is a
			// reordered or duplicated leftover and carries no evidence at
			// all. Rejecting it outright keeps application strictly
			// version-monotone.
			e.stalePushRejects++
			return
		}
	}
	// A push only proves the copy current when it is at least as new as
	// every version announced to this node. A duplicated old push (equal
	// to the held copy but behind the INVALIDATION watermark) must not
	// renew TTR, revalidate TTP or settle repair debt — that would extend
	// stale service by up to a full TTR on dead evidence.
	fresh := msg.Copy.Version >= st.invVersion || e.cfg.Mutant == MutantStaleUpdate
	e.storeRefresh(k, nd, msg.Copy, st, fresh)
	switch st.role {
	case RoleRelay:
		if fresh {
			st.lastRefreshed = k.Now()
			st.refreshedOnce = true
			e.resetGetNew(k, st)
			e.flushPendingPolls(k, nd, msg.Item, st)
		} else {
			e.sendGetNew(k, nd, msg.Item, st, msg.Trace)
		}
	case RoleCandidate:
		// The APPLY_ACK was lost but the owner is pushing to us: we are a
		// relay in its table (Fig 6d line 28–31).
		st.role = RoleRelay
		e.resetApply(st)
		e.roleChanged(k, nd, msg.Item, RoleCandidate, RoleRelay, "update-push")
		if fresh {
			st.lastRefreshed = k.Now()
			st.refreshedOnce = true
			e.flushPendingPolls(k, nd, msg.Item, st)
		} else {
			e.sendGetNew(k, nd, msg.Item, st, msg.Trace)
		}
	default:
		// Plain cache node receiving UPDATE: the owner missed our CANCEL.
		// Keep the fresh data, repeat the CANCEL (Fig 6d lines 32–35).
		e.sendCancel(k, nd, msg.Item)
	}
}

// resetGetNew clears the GET_NEW retry state after a successful repair
// (or a role teardown), closing the open repair span at the current time.
func (e *Engine) resetGetNew(k *sim.Kernel, st *itemState) {
	st.getNewPending = false
	st.getNewAttempts = 0
	st.getNewGaveUp = false
	st.debtOpen = false
	if st.repairTC.TraceID != 0 {
		e.ch.Tracer.Finish(st.repairTC, k.Now().Nanoseconds())
		st.repairTC = protocol.TraceContext{}
	}
}

// resetApply clears the APPLY retry state after the handshake completes.
func (e *Engine) resetApply(st *itemState) {
	st.applyPending = false
	st.applyAttempts = 0
	st.applyGaveUp = false
}

// storeRefresh puts an authoritative copy; validate marks it as a TTP
// validation point. Callers pass false for copies that are not fresh
// evidence (older than the newest version announced to this node): the
// content is still worth keeping if the store accepts it, but it proves
// nothing about currency.
func (e *Engine) storeRefresh(k *sim.Kernel, nd int, c data.Copy, st *itemState, validate bool) {
	evicted, has, err := e.ch.Stores[nd].PutEvict(c, k.Now())
	if has {
		// A refresh that had to insert (items-map/store desync after a
		// mid-flight eviction) can itself evict: the victim's relay
		// role, if any, must still CANCEL with its source — for every
		// replacement policy, not just LRU.
		e.dropItemState(k, nd, evicted)
	}
	if err != nil && e.cfg.Mutant == MutantStoreRegression {
		// Conformance mutant: bypass the cache's version-monotone guard
		// and install the older copy anyway.
		e.ch.Stores[nd].Remove(c.ID)
		err = e.ch.Stores[nd].Put(c, k.Now())
	}
	if err == nil && validate {
		st.lastValidated = k.Now()
		st.validatedOnce = true
	}
}

// onGetNew serves a relay's repair request at the source host (Fig 6b
// lines 9–11).
func (e *Engine) onGetNew(k *sim.Kernel, nd int, msg protocol.Message) {
	if e.ch.Reg.Owner(msg.Item) != nd {
		return
	}
	// A GET_NEW proves the sender still acts as a relay peer; if a
	// transient partition got it pruned from the table (§4.5 MAC-layer
	// discovery), re-register it so it receives future UPDATE pushes.
	if _, known := e.peers[nd].relays[msg.Origin]; !known {
		e.ch.Hub.RelayMembership(telemetry.MembershipReRegister)
	}
	e.peers[nd].relays[msg.Origin] = struct{}{}
	m, err := e.ch.Reg.Master(msg.Item)
	if err != nil {
		return
	}
	cur := m.Current()
	sn := protocol.Message{
		Kind:    protocol.KindSendNew,
		Item:    msg.Item,
		Origin:  nd,
		Version: cur.Version,
		Copy:    cur,
	}
	if e.ch.Tracer != nil && msg.Trace.TraceID != 0 {
		now := k.Now().Nanoseconds()
		sn.Trace = e.ch.Tracer.Emit(msg.Trace, nd, ctrace.PhaseServe, "SEND_NEW", now, now)
	}
	_ = e.ch.Net.Unicast(nd, msg.Origin, sn)
}

// onSendNew completes the relay's repair (Fig 6c lines 19–22).
func (e *Engine) onSendNew(k *sim.Kernel, nd int, msg protocol.Message) {
	st, ok := e.peers[nd].items[msg.Item]
	if !ok {
		return
	}
	if e.cfg.Mutant != MutantStaleUpdate && e.cfg.Mutant != MutantStoreRegression {
		if held, have := e.ch.Stores[nd].Peek(msg.Item); have && msg.Copy.Version < held.Version {
			// Same monotone guard as onUpdate: a delayed repair reply that
			// lost the race to a newer copy is a dead letter.
			e.stalePushRejects++
			return
		}
	}
	fresh := msg.Copy.Version >= st.invVersion || e.cfg.Mutant == MutantStaleUpdate
	e.storeRefresh(k, nd, msg.Copy, st, fresh)
	if !fresh {
		// The reply repairs less than what is known to exist (a reordered
		// leftover from an earlier round): the repair is still owed.
		return
	}
	e.resetGetNew(k, st)
	if st.role == RoleRelay {
		st.lastRefreshed = k.Now()
		st.refreshedOnce = true
		e.flushPendingPolls(k, nd, msg.Item, st)
	}
}

// onApply registers a relay candidate at the source host (Fig 6b lines
// 12–15).
func (e *Engine) onApply(k *sim.Kernel, nd int, msg protocol.Message) {
	if e.ch.Reg.Owner(msg.Item) != nd {
		return
	}
	if _, known := e.peers[nd].relays[msg.Origin]; !known {
		e.ch.Hub.RelayMembership(telemetry.MembershipApply)
	}
	e.peers[nd].relays[msg.Origin] = struct{}{}
	ack := protocol.Message{
		Kind:   protocol.KindApplyAck,
		Item:   msg.Item,
		Origin: nd,
	}
	_ = e.ch.Net.Unicast(nd, msg.Origin, ack)
}

// onApplyAck promotes the candidate (Fig 6d lines 24–26). If the copy was
// already confirmed current by the INVALIDATION that triggered the APPLY,
// the new relay is immediately authoritative; otherwise it repairs first.
func (e *Engine) onApplyAck(k *sim.Kernel, nd int, msg protocol.Message) {
	st, ok := e.peers[nd].items[msg.Item]
	if !ok || st.role != RoleCandidate {
		return
	}
	st.role = RoleRelay
	e.resetApply(st)
	e.ch.Hub.RelayMembership(telemetry.MembershipApplyAck)
	e.roleChanged(k, nd, msg.Item, RoleCandidate, RoleRelay, "apply-ack")
	cp, have := e.ch.Stores[nd].Peek(msg.Item)
	if have && st.invHeard && cp.Version == st.invVersion && k.Now()-st.invAt < e.cfg.TTR {
		st.lastRefreshed = st.invAt
		st.refreshedOnce = true
		return
	}
	if have && st.invHeard && cp.Version < st.invVersion {
		e.sendGetNew(k, nd, msg.Item, st, msg.Trace)
	}
}

// onCancel removes a resigning relay at the source host (Fig 6b 16–18).
func (e *Engine) onCancel(nd int, msg protocol.Message) {
	if e.ch.Reg.Owner(msg.Item) != nd {
		return
	}
	if _, known := e.peers[nd].relays[msg.Origin]; known {
		e.ch.Hub.RelayMembership(telemetry.MembershipCancel)
	}
	delete(e.peers[nd].relays, msg.Origin)
}

// onPoll answers a cache node's validation request (Fig 6c lines 8–18).
// The source host itself also answers, authoritatively — it is the
// degenerate relay the fallback ring always reaches.
func (e *Engine) onPoll(k *sim.Kernel, nd int, msg protocol.Message) {
	if e.ch.Reg.Owner(msg.Item) == nd {
		m, err := e.ch.Reg.Master(msg.Item)
		if err != nil {
			return
		}
		e.answerPoll(k, nd, msg, m.Current())
		return
	}
	st, ok := e.peers[nd].items[msg.Item]
	if !ok || st.role != RoleRelay {
		return
	}
	if !e.ttrValid(k, st) {
		// Stale relay: hold the poll until the next refresh (Fig 6c line
		// 16). The poller's own timeout escalates in parallel, so this
		// never stalls the query indefinitely. With eager refresh the
		// relay repairs right away instead of waiting out the TTR gap.
		// The queue is bounded: beyond it, older entries (whose pollers
		// have long since escalated) are discarded first.
		if len(st.pending) >= 64 {
			st.pending = st.pending[1:]
		}
		st.pending = append(st.pending, pendingPoll{
			from: msg.Origin, seq: msg.Seq, version: msg.Version, at: k.Now(),
			tc: msg.Trace,
		})
		if e.cfg.EagerRelayRefresh {
			e.sendGetNew(k, nd, msg.Item, st, msg.Trace)
		}
		return
	}
	cp, have := e.ch.Stores[nd].Peek(msg.Item)
	if !have {
		return
	}
	e.answerPoll(k, nd, msg, cp)
}

// answerPoll sends POLL_ACK_A when the poller's copy matches (or exceeds)
// the authority's, POLL_ACK_B carrying fresh content otherwise.
func (e *Engine) answerPoll(k *sim.Kernel, nd int, msg protocol.Message, authority data.Copy) {
	current := msg.Version >= authority.Version
	if e.cfg.Mutant == MutantAckAOffByOne {
		// Conformance mutant: vouch for pollers one version behind, so
		// they keep serving the superseded copy and never hear the fresh
		// content a POLL_ACK_B would carry.
		current = msg.Version+1 >= authority.Version
	}
	kind, name := protocol.KindPollAckA, "POLL_ACK_A"
	if !current {
		kind, name = protocol.KindPollAckB, "POLL_ACK_B"
	}
	ack := protocol.Message{
		Kind:    kind,
		Item:    msg.Item,
		Origin:  nd,
		Version: authority.Version,
		Seq:     msg.Seq,
	}
	if !current {
		ack.Copy = authority
	}
	if e.ch.Tracer != nil && msg.Trace.TraceID != 0 {
		now := k.Now().Nanoseconds()
		ack.Trace = e.ch.Tracer.Emit(msg.Trace, nd, ctrace.PhaseServe, name, now, now)
	}
	_ = e.ch.Net.Unicast(nd, msg.Origin, ack)
}

// flushPendingPolls answers the polls a relay queued while its TTR was
// expired. Entries older than TTN are dropped: their pollers have long
// since escalated.
func (e *Engine) flushPendingPolls(k *sim.Kernel, nd int, item data.ItemID, st *itemState) {
	if len(st.pending) == 0 {
		return
	}
	cp, have := e.ch.Stores[nd].Peek(item)
	if !have {
		st.pending = nil
		return
	}
	for _, p := range st.pending {
		if k.Now()-p.at > e.cfg.TTN {
			continue
		}
		pm := protocol.Message{
			Kind: protocol.KindPoll, Item: item, Origin: p.from,
			Version: p.version, Seq: p.seq,
		}
		if e.ch.Tracer != nil && p.tc.TraceID != 0 {
			// The queue wait is a phase of its own on the poller's critical
			// path: the span covers enqueue → refresh, and the ack chains
			// under it.
			pm.Trace = e.ch.Tracer.Emit(p.tc, nd, ctrace.PhaseRelayQueue, "pending-poll",
				p.at.Nanoseconds(), k.Now().Nanoseconds())
		}
		e.answerPoll(k, nd, pm, cp)
	}
	st.pending = nil
}

// learnRelay remembers the answering relay as the poll target for next
// time. Answers from the source host itself are only learned while the
// node holds recent INVALIDATION evidence — i.e. it is within the
// invalidation TTL of the source. Nodes beyond the TTL therefore keep
// flooding their polls, exactly like the simple pull baseline, which is
// what ties RPCC's traffic to the TTL in the Fig 9 sweep.
func (e *Engine) learnRelay(k *sim.Kernel, st *itemState, msg protocol.Message) {
	if msg.Origin != e.ch.Reg.Owner(msg.Item) {
		st.knownRelay = msg.Origin
		return
	}
	if st.invHeard && k.Now()-st.invAt < 2*e.cfg.TTN {
		st.knownRelay = msg.Origin
	}
}

// onPollAckA validates the poller's copy (Fig 6d lines 12–15). Late or
// duplicate acks for a settled poll fall through the e.polls lookup: the
// first answer wins and everything after it is a dead letter.
func (e *Engine) onPollAckA(k *sim.Kernel, nd int, msg protocol.Message) {
	r, ok := e.polls[msg.Seq]
	if !ok || r.host != nd || r.item != msg.Item {
		return
	}
	delete(e.polls, msg.Seq)
	e.ch.Tracer.Finish(r.tc, k.Now().Nanoseconds())
	st := e.itemState(nd, msg.Item)
	cp, have := e.ch.Stores[nd].Peek(msg.Item)
	if !have {
		e.ch.Fail(r.q, "copy-lost")
		return
	}
	if msg.Version >= cp.Version {
		// The ack vouches for at least the version we hold: genuine
		// validation. When two authorities raced and the slower one was
		// behind (its ack vouches for less than we now hold), it renews
		// nothing and is not worth learning as a poll target.
		st.lastValidated = k.Now()
		st.validatedOnce = true
		e.learnRelay(k, st, msg)
	} else {
		e.staleAckRejects++
	}
	r.q.Source = msg.Origin
	e.ch.Answer(k, r.q, cp)
}

// onPollAckB replaces the poller's stale copy and answers (Fig 6d lines
// 16–20).
func (e *Engine) onPollAckB(k *sim.Kernel, nd int, msg protocol.Message) {
	r, ok := e.polls[msg.Seq]
	if !ok || r.host != nd || r.item != msg.Item {
		return
	}
	delete(e.polls, msg.Seq)
	e.ch.Tracer.Finish(r.tc, k.Now().Nanoseconds())
	st := e.itemState(nd, msg.Item)
	if held, have := e.ch.Stores[nd].Peek(msg.Item); have && msg.Copy.Version < held.Version &&
		e.cfg.Mutant != MutantStoreRegression {
		// Conflicting answers raced and this relay was behind (a newer
		// copy landed while the poll was in flight): keep the newer copy,
		// learn nothing from the stale authority, and answer with what we
		// hold — the cached version must never regress.
		e.staleAckRejects++
		r.q.Source = msg.Origin
		e.ch.Answer(k, r.q, held)
		return
	}
	e.learnRelay(k, st, msg)
	// The ack's content validates TTP only when it covers the newest
	// version this node knows exists; an answer from a TTR-stale relay
	// behind the watermark is content without currency evidence.
	e.storeRefresh(k, nd, msg.Copy, st, msg.Copy.Version >= st.invVersion)
	// Answer with whatever is now stored — it is msg.Copy unless a newer
	// version raced in, in which case newer is strictly better.
	cp, have := e.ch.Stores[nd].Peek(msg.Item)
	if !have {
		cp = msg.Copy
	}
	r.q.Source = msg.Origin
	e.ch.Answer(k, r.q, cp)
}
