// Package core implements RPCC — the Relay Peer-based Cache Consistency
// protocol that is the paper's contribution (§4).
//
// RPCC inserts a relay-peer tier between each data item's source host and
// its cache nodes. The source host pushes to relay peers: a periodic
// TTL-scoped INVALIDATION flood every TTN, plus UPDATE unicasts carrying
// new content to every registered relay. Cache nodes pull from relay
// peers: a TTL-scoped POLL flood that any relay (or the source itself)
// answers with POLL_ACK_A ("your copy is current") or POLL_ACK_B (new
// content). Relay-peer membership is self-selected via the CAR/CS/CE
// coefficient criterion (Eq 4.2.1–4.2.8) plus an APPLY/APPLY_ACK handshake
// with the source host, and torn down with CANCEL. GET_NEW/SEND_NEW repair
// a relay that missed updates while disconnected (§4.5).
//
// Queries are served per their consistency level (§4.4): weak answers come
// straight from the local cache; Δ-consistency answers are local while the
// copy's TTP has not expired; strong (and TTP-expired Δ) queries poll.
package core

import (
	"fmt"
	"time"
)

// Config carries every RPCC knob. Defaults follow the paper's Table 1.
type Config struct {
	// InvalidationTTL is the hop scope of the periodic INVALIDATION flood
	// (Table 1: 3 hops). It determines which cache nodes can hear the
	// source and therefore become relay peers — the Fig 9 sweep variable.
	InvalidationTTL int
	// TTN is the source host's invalidation broadcast interval
	// (Table 1: 2 minutes).
	TTN time.Duration
	// TTR is how long a relay peer treats its copy as authoritative after
	// the last refresh from the source (Table 1: 1.5 minutes). TTR < TTN
	// means a relay goes conservative for the tail of each interval and
	// queues polls until the next INVALIDATION.
	TTR time.Duration
	// TTP is how long a cache node's copy satisfies Δ-consistency after
	// its last validation (Table 1: 4 minutes). TTP is the Δ of §4.4.
	TTP time.Duration
	// PollTTL is the scope of the first POLL ring a cache node floods
	// when it must validate a copy.
	PollTTL int
	// PollFallbackTTL is the network-wide scope used when no relay
	// answered the first ring (TTL_BR in Table 1: 8 hops).
	PollFallbackTTL int
	// PollTimeout is the per-stage wait before escalating or failing a
	// poll round. It also covers the relay-side "wait for the next
	// INVALIDATION" case: rather than stall the query for up to
	// TTN − TTR, the poller escalates and the relay's late answer is
	// discarded.
	PollTimeout time.Duration
	// CoeffPeriod is φ, the coefficient recomputation period (§4.2).
	CoeffPeriod time.Duration
	// Omega is ω, the recent-vs-history weight in Eq 4.2.2/4.2.4/4.2.5
	// (Table 1: 0.2).
	Omega float64
	// MuCAR, MuCS, MuCE are the selection thresholds of Eq 4.2.8
	// (Table 1: 0.15, 0.6, 0.6).
	MuCAR float64
	MuCS  float64
	MuCE  float64
	// DemoteAfter is how many consecutive failing coefficient windows a
	// candidate or relay tolerates before stepping down. The paper's
	// Fig 5 demotes on any failing window; a little hysteresis keeps the
	// relay population from flapping on coefficient noise.
	DemoteAfter int
	// RepairTimeout bounds how long a node waits on an outstanding APPLY
	// or GET_NEW before the next INVALIDATION may retrigger it. Without
	// it a single lost APPLY_ACK or SEND_NEW would wedge the relay
	// lifecycle forever (§4.5's lost-message cases). It is also the first
	// rung of the retry backoff ladder: the wait doubles after every
	// unanswered re-send, capped at RepairBackoffMax.
	RepairTimeout time.Duration
	// RepairBackoffMax caps the exponential retry gate grown from
	// RepairTimeout. Zero means 8×RepairTimeout (set by New).
	RepairBackoffMax time.Duration
	// MaxRepairAttempts bounds consecutive unanswered APPLY or GET_NEW
	// sends for one item before the node gives up; strictly newer version
	// evidence (a higher INVALIDATION version) reopens the attempt
	// budget. Zero means 6 (set by New). Without a bound, a relay on the
	// wrong side of a permanent partition retries its source forever.
	MaxRepairAttempts int
	// DisableRepair drops every GET_NEW/re-APPLY repair trigger — a
	// deliberately broken protocol that cannot recover missed updates.
	// Exists solely so the chaos auditor's regression tests can prove
	// they catch the resulting consistency violations.
	DisableRepair bool
	// ActiveSource, when non-nil, restricts the periodic source-host
	// duties (UPDATE push + INVALIDATION flood) to hosts for which it
	// returns true. The Fig 9 scenario has a single active source; all
	// other hosts own items nobody caches and stay silent.
	ActiveSource func(host int) bool
	// AdaptiveTTN enables the §6 future-work extension: a source host
	// whose item saw no update during the last interval stretches its
	// next INVALIDATION interval multiplicatively (×1.5, capped at
	// AdaptiveTTNMax), and snaps back to TTN as soon as the item
	// changes. Quiet items then stop paying the periodic flood cost.
	AdaptiveTTN bool
	// AdaptiveTTNMax caps the stretched interval (default 4×TTN).
	AdaptiveTTNMax time.Duration
	// Mutant selects a deliberately broken protocol variant for the
	// conformance mutation gate (internal/oracle, cmd/conform): each
	// value reverts or corrupts exactly one correctness-critical guard so
	// the gate can prove the differential oracle detects the breakage.
	// Like DisableRepair, it exists solely for the verification tooling:
	// experiment configs cannot reach it, and the zero value is the
	// correct protocol.
	Mutant Mutant
	// EagerRelayRefresh extends Fig 6(c): a relay whose TTR has expired
	// and that receives a POLL immediately repairs with GET_NEW instead
	// of idling until the next INVALIDATION. The paper's protocol waits
	// ("the relay peer has to wait for the next INVALIDATION"); eager
	// refresh converts many fallback floods into two unicasts. On by
	// default; the A4 ablation benchmark quantifies the difference.
	EagerRelayRefresh bool
}

// DefaultConfig returns the Table 1 parameterisation.
func DefaultConfig() Config {
	return Config{
		InvalidationTTL:   3,
		TTN:               2 * time.Minute,
		TTR:               90 * time.Second,
		TTP:               4 * time.Minute,
		PollTTL:           2,
		PollFallbackTTL:   8,
		PollTimeout:       150 * time.Millisecond,
		CoeffPeriod:       time.Minute,
		Omega:             0.2,
		MuCAR:             0.15,
		MuCS:              0.6,
		MuCE:              0.6,
		DemoteAfter:       3,
		RepairTimeout:     10 * time.Second,
		RepairBackoffMax:  80 * time.Second,
		MaxRepairAttempts: 6,
		EagerRelayRefresh: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.InvalidationTTL <= 0 {
		return fmt.Errorf("core: non-positive invalidation TTL %d", c.InvalidationTTL)
	}
	if c.TTN <= 0 || c.TTR <= 0 || c.TTP <= 0 {
		return fmt.Errorf("core: non-positive timer (TTN=%v TTR=%v TTP=%v)", c.TTN, c.TTR, c.TTP)
	}
	if c.TTR > c.TTN {
		return fmt.Errorf("core: TTR %v must not exceed TTN %v (a relay cannot stay authoritative past the refresh it never got)", c.TTR, c.TTN)
	}
	if c.PollTTL <= 0 || c.PollFallbackTTL < c.PollTTL {
		return fmt.Errorf("core: bad poll TTLs (%d, fallback %d)", c.PollTTL, c.PollFallbackTTL)
	}
	if c.PollTimeout <= 0 {
		return fmt.Errorf("core: non-positive poll timeout %v", c.PollTimeout)
	}
	if c.CoeffPeriod <= 0 {
		return fmt.Errorf("core: non-positive coefficient period %v", c.CoeffPeriod)
	}
	if c.DemoteAfter <= 0 {
		return fmt.Errorf("core: non-positive demotion hysteresis %d", c.DemoteAfter)
	}
	if c.RepairTimeout <= 0 {
		return fmt.Errorf("core: non-positive repair timeout %v", c.RepairTimeout)
	}
	if c.RepairBackoffMax < 0 {
		return fmt.Errorf("core: negative repair backoff cap %v", c.RepairBackoffMax)
	}
	if c.RepairBackoffMax > 0 && c.RepairBackoffMax < c.RepairTimeout {
		return fmt.Errorf("core: repair backoff cap %v below repair timeout %v", c.RepairBackoffMax, c.RepairTimeout)
	}
	if c.MaxRepairAttempts < 0 {
		return fmt.Errorf("core: negative repair attempt bound %d", c.MaxRepairAttempts)
	}
	if c.AdaptiveTTN && c.AdaptiveTTNMax < c.TTN {
		return fmt.Errorf("core: adaptive TTN cap %v below TTN %v", c.AdaptiveTTNMax, c.TTN)
	}
	if c.Omega < 0 || c.Omega > 1 {
		return fmt.Errorf("core: omega %g outside [0,1]", c.Omega)
	}
	for name, mu := range map[string]float64{"muCAR": c.MuCAR, "muCS": c.MuCS, "muCE": c.MuCE} {
		if mu <= 0 || mu > 1 {
			return fmt.Errorf("core: threshold %s=%g outside (0,1]", name, mu)
		}
	}
	if c.Mutant < MutantNone || c.Mutant > mutantMax {
		return fmt.Errorf("core: unknown mutant %d", c.Mutant)
	}
	return nil
}

// Mutant enumerates the deliberately broken protocol variants injected by
// the conformance mutation gate. Each mutant corrupts one guard the
// differential oracle must catch; MutantNone (the zero value) is the
// correct protocol.
type Mutant int

const (
	// MutantNone runs the unmodified protocol.
	MutantNone Mutant = iota
	// MutantStaleUpdate drops the version-monotone and freshness guards
	// on UPDATE/SEND_NEW application: a delayed or duplicated stale push
	// renews TTR and settles repair debt again — the pre-fix behaviour of
	// the reordered-UPDATE bug.
	MutantStaleUpdate
	// MutantIgnoreTTR makes a relay treat its copy as authoritative
	// forever after its first refresh, never letting TTR expire.
	MutantIgnoreTTR
	// MutantAckAOffByOne answers POLL_ACK_A ("your copy is current") to
	// pollers one version behind the authority, so they never receive the
	// fresh content a POLL_ACK_B would carry.
	MutantAckAOffByOne
	// MutantFloodTTLPlusOne floods INVALIDATION one hop beyond the
	// configured TTL, overreaching the paper's relay scope.
	MutantFloodTTLPlusOne
	// MutantFloodTTLMinusOne floods INVALIDATION one hop short of the
	// configured TTL, starving the boundary nodes of version evidence.
	MutantFloodTTLMinusOne
	// MutantTTPDouble doubles the Δ-consistency window at query time.
	MutantTTPDouble
	// MutantStoreRegression force-installs authoritative copies even when
	// older than the cached version, bypassing the cache's monotone guard
	// and regressing the node's answers.
	MutantStoreRegression

	mutantMax = MutantStoreRegression
)

// String names the mutant for gate reports.
func (m Mutant) String() string {
	switch m {
	case MutantNone:
		return "none"
	case MutantStaleUpdate:
		return "stale-update-replay"
	case MutantIgnoreTTR:
		return "ignore-ttr"
	case MutantAckAOffByOne:
		return "acka-off-by-one"
	case MutantFloodTTLPlusOne:
		return "flood-ttl-plus-one"
	case MutantFloodTTLMinusOne:
		return "flood-ttl-minus-one"
	case MutantTTPDouble:
		return "ttp-double"
	case MutantStoreRegression:
		return "store-regression"
	default:
		return fmt.Sprintf("mutant(%d)", int(m))
	}
}

// Role is a node's per-item protocol role (Fig 5's state diagram).
type Role int

// Roles. Values start at 1 so the zero value is detectably unset.
const (
	RoleNone Role = iota
	// RoleCache is a plain cache node.
	RoleCache
	// RoleCandidate passes the coefficient criterion and will APPLY on
	// the next INVALIDATION it hears.
	RoleCandidate
	// RoleRelay holds an APPLY_ACK from the source host.
	RoleRelay
)

// String renders the role for traces.
func (r Role) String() string {
	switch r {
	case RoleCache:
		return "cache"
	case RoleCandidate:
		return "candidate"
	case RoleRelay:
		return "relay"
	default:
		return "none"
	}
}
