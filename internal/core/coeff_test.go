package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewCoeffTrackerValidation(t *testing.T) {
	if _, err := NewCoeffTracker(-0.1, time.Minute); err == nil {
		t.Error("negative omega accepted")
	}
	if _, err := NewCoeffTracker(1.1, time.Minute); err == nil {
		t.Error("omega > 1 accepted")
	}
	if _, err := NewCoeffTracker(0.2, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestFreshTrackerNeverEligible(t *testing.T) {
	tr, err := NewCoeffTracker(0.2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Eligible(0.99, 0.01, 0.01) {
		t.Fatal("tracker with no windows eligible")
	}
	// The first observation only sets the baseline.
	tr.Observe(CoeffSample{Accesses: 100, CE: 1})
	if tr.Windows() != 0 {
		t.Fatalf("Windows = %d after baseline, want 0", tr.Windows())
	}
	if tr.Eligible(0.99, 0.01, 0.01) {
		t.Fatal("baseline-only tracker eligible")
	}
}

func TestPARFollowsEq422(t *testing.T) {
	// Hand-computed: ω = 0.2, φ = 1 min, access deltas 60, 120, 0.
	// PAR_1 = 0·ω/4 + 0·ω/2 + 60·(1−0.05−0.1) = 51
	// PAR_2 = 0·0.05 + 51·0.1 + 120·0.85 = 107.1
	// PAR_3 = 51·0.05 + 107.1·0.1 + 0·0.85 = 13.26
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	tr.Observe(CoeffSample{Accesses: 0, CE: 1}) // baseline
	steps := []struct {
		cum  uint64
		want float64
	}{
		{60, 51},
		{180, 107.1},
		{180, 13.26},
	}
	for i, s := range steps {
		tr.Observe(CoeffSample{Accesses: s.cum, CE: 1})
		if got := tr.PAR(); math.Abs(got-s.want) > 1e-9 {
			t.Fatalf("step %d: PAR = %g, want %g", i, got, s.want)
		}
	}
}

func TestCARBoundsProperty(t *testing.T) {
	f := func(deltas []uint16) bool {
		tr, err := NewCoeffTracker(0.2, time.Minute)
		if err != nil {
			return false
		}
		var cum uint64
		tr.Observe(CoeffSample{CE: 1})
		for _, d := range deltas {
			cum += uint64(d)
			tr.Observe(CoeffSample{Accesses: cum, CE: 1})
			car, cs := tr.CAR(), tr.CS()
			if car <= 0 || car > 1 || cs <= 0 || cs > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSPenalisesChurnAndMobility(t *testing.T) {
	stable, _ := NewCoeffTracker(0.2, time.Minute)
	mobile, _ := NewCoeffTracker(0.2, time.Minute)
	stable.Observe(CoeffSample{CE: 1})
	mobile.Observe(CoeffSample{CE: 1})
	for i := 1; i <= 5; i++ {
		stable.Observe(CoeffSample{CE: 1})
		mobile.Observe(CoeffSample{Switches: uint64(i * 2), Moves: uint64(i * 3), CE: 1})
	}
	if stable.CS() != 1 {
		t.Errorf("stable CS = %g, want 1", stable.CS())
	}
	if mobile.CS() >= stable.CS() {
		t.Errorf("mobile CS %g not below stable %g", mobile.CS(), stable.CS())
	}
}

func TestEligibilityCriterion(t *testing.T) {
	// Busy, stable, full-energy node: CAR small, CS = 1, CE = 1.
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 600, CE: 1}) // PAR 510/min, CAR ~ 0.002
	if !tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatalf("busy stable node not eligible: %v", tr)
	}
	// Same node with a drained battery fails on CE.
	tr.Observe(CoeffSample{Accesses: 1200, CE: 0.3})
	if tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatal("drained node eligible")
	}
}

func TestIdleNodeFailsCAR(t *testing.T) {
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 2, CE: 1}) // PAR 1.7/min, CAR ~ 0.37
	if tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatal("idle node eligible despite CAR above threshold")
	}
}

func TestFlappingNodeFailsCS(t *testing.T) {
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 600, Switches: 5, Moves: 5, CE: 1})
	// PSR+PMR = 8 ⇒ CS = 1/9 ≈ 0.11 < 0.6.
	if tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatalf("flapping node eligible: %v", tr)
	}
}

func TestOmegaZeroIgnoresHistory(t *testing.T) {
	tr, _ := NewCoeffTracker(0, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 1000, CE: 1})
	tr.Observe(CoeffSample{Accesses: 1000, CE: 1}) // zero new accesses
	if got := tr.PAR(); got != 0 {
		t.Errorf("PAR with ω=0 after idle window = %g, want 0 (no history)", got)
	}
}

func TestOmegaOneMostlyHistory(t *testing.T) {
	tr, _ := NewCoeffTracker(1, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 400, CE: 1}) // PAR_1 = 400*(1-0.75) = 100
	par1 := tr.PAR()
	tr.Observe(CoeffSample{Accesses: 400, CE: 1}) // PAR_2 = PAR_1*0.5 = 50
	if got := tr.PAR(); math.Abs(got-par1*0.5) > 1e-9 {
		t.Errorf("PAR with ω=1 = %g, want %g", got, par1*0.5)
	}
}

func TestTrackerString(t *testing.T) {
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	if s := tr.String(); s == "" {
		t.Fatal("empty String")
	}
}
