package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewCoeffTrackerValidation(t *testing.T) {
	if _, err := NewCoeffTracker(-0.1, time.Minute); err == nil {
		t.Error("negative omega accepted")
	}
	if _, err := NewCoeffTracker(1.1, time.Minute); err == nil {
		t.Error("omega > 1 accepted")
	}
	if _, err := NewCoeffTracker(0.2, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestFreshTrackerNeverEligible(t *testing.T) {
	tr, err := NewCoeffTracker(0.2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Eligible(0.99, 0.01, 0.01) {
		t.Fatal("tracker with no windows eligible")
	}
	// The first observation only sets the baseline.
	tr.Observe(CoeffSample{Accesses: 100, CE: 1})
	if tr.Windows() != 0 {
		t.Fatalf("Windows = %d after baseline, want 0", tr.Windows())
	}
	if tr.Eligible(0.99, 0.01, 0.01) {
		t.Fatal("baseline-only tracker eligible")
	}
}

func TestPARFollowsEq422(t *testing.T) {
	// Hand-computed: ω = 0.2, φ = 1 min, access deltas 60, 120, 0.
	// The first measured window seeds the recursion (there is no defined
	// history before it), so PAR_1 is the measured rate itself:
	// PAR_1 = 60
	// PAR_2 = 60·0.05 + 60·0.1 + 120·0.85 = 111
	// PAR_3 = 60·0.05 + 111·0.1 + 0·0.85 = 14.1
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	tr.Observe(CoeffSample{Accesses: 0, CE: 1}) // baseline
	steps := []struct {
		cum  uint64
		want float64
	}{
		{60, 60},
		{180, 111},
		{180, 14.1},
	}
	for i, s := range steps {
		tr.Observe(CoeffSample{Accesses: s.cum, CE: 1})
		if got := tr.PAR(); math.Abs(got-s.want) > 1e-9 {
			t.Fatalf("step %d: PAR = %g, want %g", i, got, s.want)
		}
	}
}

func TestCARBoundsProperty(t *testing.T) {
	f := func(deltas []uint16) bool {
		tr, err := NewCoeffTracker(0.2, time.Minute)
		if err != nil {
			return false
		}
		var cum uint64
		tr.Observe(CoeffSample{CE: 1})
		for _, d := range deltas {
			cum += uint64(d)
			tr.Observe(CoeffSample{Accesses: cum, CE: 1})
			car, cs := tr.CAR(), tr.CS()
			if car <= 0 || car > 1 || cs <= 0 || cs > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSPenalisesChurnAndMobility(t *testing.T) {
	stable, _ := NewCoeffTracker(0.2, time.Minute)
	mobile, _ := NewCoeffTracker(0.2, time.Minute)
	stable.Observe(CoeffSample{CE: 1})
	mobile.Observe(CoeffSample{CE: 1})
	for i := 1; i <= 5; i++ {
		stable.Observe(CoeffSample{CE: 1})
		mobile.Observe(CoeffSample{Switches: uint64(i * 2), Moves: uint64(i * 3), CE: 1})
	}
	if stable.CS() != 1 {
		t.Errorf("stable CS = %g, want 1", stable.CS())
	}
	if mobile.CS() >= stable.CS() {
		t.Errorf("mobile CS %g not below stable %g", mobile.CS(), stable.CS())
	}
}

func TestEligibilityCriterion(t *testing.T) {
	// Busy, stable, full-energy node: CAR small, CS = 1, CE = 1.
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 600, CE: 1}) // PAR 510/min, CAR ~ 0.002
	if !tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatalf("busy stable node not eligible: %v", tr)
	}
	// Same node with a drained battery fails on CE.
	tr.Observe(CoeffSample{Accesses: 1200, CE: 0.3})
	if tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatal("drained node eligible")
	}
}

func TestIdleNodeFailsCAR(t *testing.T) {
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 2, CE: 1}) // PAR 1.7/min, CAR ~ 0.37
	if tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatal("idle node eligible despite CAR above threshold")
	}
}

func TestFlappingNodeFailsCS(t *testing.T) {
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 600, Switches: 5, Moves: 5, CE: 1})
	// PSR+PMR = 8 ⇒ CS = 1/9 ≈ 0.11 < 0.6.
	if tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatalf("flapping node eligible: %v", tr)
	}
}

// TestFirstWindowFlapperNotEligible is the regression test for the
// warm-up under-reporting bug: the EWMA recursions used to fold the first
// measured window into zero-valued history terms, reporting PSR_1 =
// 0.8·N_s under ω = 0.2. That over-reported CS by up to 25% and admitted
// a node flapping hard in its very first window. With ω = 0.2, φ = 2 min
// and 9 transitions (N_s + N_m = 0.75/10s), the buggy code yielded CS =
// 1/(1+0.6) = 0.625 > μ_CS = 0.6 — eligible — while the true rate gives
// CS = 1/1.75 ≈ 0.571, below threshold.
func TestFirstWindowFlapperNotEligible(t *testing.T) {
	tr, _ := NewCoeffTracker(0.2, 2*time.Minute)
	tr.Observe(CoeffSample{CE: 1}) // baseline
	tr.Observe(CoeffSample{Accesses: 600, Switches: 5, Moves: 4, CE: 1})
	if got := tr.PSR() + tr.PMR(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("first-window PSR+PMR = %g, want the measured 0.75", got)
	}
	if tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatalf("flapping node eligible in its first measured window: %v", tr)
	}
	// Once the node actually calms down, history decays and it qualifies.
	tr.Observe(CoeffSample{Accesses: 1200, Switches: 5, Moves: 4, CE: 1})
	if !tr.Eligible(0.15, 0.6, 0.6) {
		t.Fatalf("stabilised node still ineligible: %v", tr)
	}
}

func TestOmegaZeroIgnoresHistory(t *testing.T) {
	tr, _ := NewCoeffTracker(0, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 1000, CE: 1})
	tr.Observe(CoeffSample{Accesses: 1000, CE: 1}) // zero new accesses
	if got := tr.PAR(); got != 0 {
		t.Errorf("PAR with ω=0 after idle window = %g, want 0 (no history)", got)
	}
}

func TestOmegaOneMostlyHistory(t *testing.T) {
	tr, _ := NewCoeffTracker(1, time.Minute)
	tr.Observe(CoeffSample{CE: 1})
	tr.Observe(CoeffSample{Accesses: 400, CE: 1}) // seeded: PAR_1 = 400
	par1 := tr.PAR()
	// With ω=1 the history terms carry weight ω/4 + ω/2 = 0.75, and after
	// the seeded first window both history slots hold PAR_1, so an idle
	// window decays to exactly three quarters of it.
	tr.Observe(CoeffSample{Accesses: 400, CE: 1})
	if got := tr.PAR(); math.Abs(got-par1*0.75) > 1e-9 {
		t.Errorf("PAR with ω=1 = %g, want %g", got, par1*0.75)
	}
}

func TestTrackerString(t *testing.T) {
	tr, _ := NewCoeffTracker(0.2, time.Minute)
	if s := tr.String(); s == "" {
		t.Fatal("empty String")
	}
}
