package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// Telemetry supplies the per-node environmental signals the coefficient
// tracker consumes. Any field may be nil: switches and moves then read as
// zero (perfectly stable) and energy as full.
type Telemetry struct {
	Switches func(nd int) uint64
	Moves    func(nd int) uint64
	CE       func(nd int) float64
}

// itemState is one node's protocol state for one cached item.
type itemState struct {
	role Role
	// lastValidated is the TTP base: the last instant this node confirmed
	// its copy against an authority (poll ack, update, owner fetch).
	lastValidated time.Duration
	validatedOnce bool
	// lastRefreshed is the TTR base (relay role): the last instant the
	// source (or its INVALIDATION) confirmed the relay's copy.
	lastRefreshed time.Duration
	refreshedOnce bool
	// invVersion/invAt remember the newest INVALIDATION heard, so a
	// candidate promoted by APPLY_ACK knows whether its copy was already
	// confirmed current in this interval.
	invVersion data.Version
	invAt      time.Duration
	invHeard   bool

	applyPending  bool
	applySentAt   time.Duration
	applyAttempts int
	applyGaveUp   bool
	getNewPending bool
	getNewSentAt  time.Duration
	// getNewAttempts counts consecutive unanswered GET_NEW sends; the
	// resend gate doubles with each one (capped at RepairBackoffMax) and
	// the node gives up at MaxRepairAttempts until strictly newer version
	// evidence reopens the budget. applyAttempts mirrors this for APPLY.
	getNewAttempts int
	getNewGaveUp   bool
	// debtSince marks when this relay first heard a version newer than
	// its copy without having repaired yet — the age of its outstanding
	// repair debt (cleared on refresh, tracked for the chaos auditor).
	debtSince   time.Duration
	debtOpen    bool
	failingRuns int
	pending     []pendingPoll
	// knownRelay is the last peer whose POLL_ACK validated this item
	// (-1 when none): subsequent polls unicast straight to it, falling
	// back to ring discovery when it stops answering. This is the
	// "locating the nearest cache node" mechanism §3 assumes, learned
	// from the protocol's own acks.
	knownRelay int
	// repairTC is the span of the in-flight GET_NEW repair round (zero
	// when none is open or tracing is off); closed when SEND_NEW lands,
	// the budget is exhausted, or the role is torn down.
	repairTC protocol.TraceContext
}

// pendingPoll is a POLL a relay could not answer because its TTR had
// expired; it is answered when the next refresh arrives (§4.3: "the relay
// peer has to wait for the next INVALIDATION").
type pendingPoll struct {
	from    int
	seq     uint64
	version data.Version
	at      time.Duration
	// tc is the poll message's trace context; the wait in this queue
	// becomes a relay-queue span when the poll is finally answered.
	tc protocol.TraceContext
}

// peerState is one node's full protocol state.
type peerState struct {
	// Source-host side (the node's own item).
	relays    map[int]struct{}
	announced data.Version
	// ttnInterval is the current broadcast interval; it equals cfg.TTN
	// unless AdaptiveTTN has stretched it during a quiet spell.
	ttnInterval time.Duration
	// Cache-node side: state per cached item.
	items map[data.ItemID]*itemState
}

// pollRound is one cache node's in-flight validation round.
type pollRound struct {
	q     *node.Query
	host  int
	item  data.ItemID
	stage int
	// tc is the span of the currently running escalation stage; the next
	// stage (or the resolving ack) closes it.
	tc protocol.TraceContext
}

// Engine runs RPCC over a chassis. Construct with New, wire with Start,
// then feed OnQuery/OnUpdate from the workload generator.
type Engine struct {
	cfg      Config
	ch       *node.Chassis
	tel      Telemetry
	peers    []*peerState
	trackers []*CoeffTracker
	// deliveries counts protocol messages handled per node; together with
	// cache accesses it forms N_a, the accessibility evidence of Eq 4.2.1.
	deliveries []uint64
	polls      map[uint64]*pollRound
	started    bool

	// Stage usage counters (diagnostics and the A4 ablation).
	pollDirect   uint64
	pollRing     uint64
	pollFallback uint64
	relayForgets uint64

	// Repair retry accounting (§4.5 hardening): every APPLY/GET_NEW send
	// while one is already outstanding, and every give-up at the attempt
	// bound.
	getNewSends   uint64
	getNewGiveUps uint64
	applySends    uint64
	applyGiveUps  uint64

	// Monotonicity accounting: UPDATE/SEND_NEW pushes rejected because
	// they carried an older version than the stored copy (duplicated or
	// reordered in flight), and poll acks ignored for the same reason.
	stalePushRejects uint64
	staleAckRejects  uint64
}

// New builds an RPCC engine on the shared chassis.
func New(cfg Config, ch *node.Chassis, tel Telemetry) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ch == nil {
		return nil, fmt.Errorf("core: nil chassis")
	}
	if cfg.RepairBackoffMax == 0 {
		cfg.RepairBackoffMax = 8 * cfg.RepairTimeout
	}
	if cfg.MaxRepairAttempts == 0 {
		cfg.MaxRepairAttempts = 6
	}
	n := ch.Net.Len()
	e := &Engine{
		cfg:        cfg,
		ch:         ch,
		tel:        tel,
		peers:      make([]*peerState, n),
		trackers:   make([]*CoeffTracker, n),
		deliveries: make([]uint64, n),
		polls:      make(map[uint64]*pollRound),
	}
	for i := 0; i < n; i++ {
		e.peers[i] = &peerState{
			relays: make(map[int]struct{}),
			items:  make(map[data.ItemID]*itemState),
		}
		tr, err := NewCoeffTracker(cfg.Omega, cfg.CoeffPeriod)
		if err != nil {
			return nil, err
		}
		e.trackers[i] = tr
	}
	return e, nil
}

// Name identifies the strategy in reports.
func (e *Engine) Name() string { return "rpcc" }

// Chassis exposes the shared plumbing (metrics, auditor) to harnesses.
func (e *Engine) Chassis() *node.Chassis { return e.ch }

// Start installs receivers and schedules the periodic TTN and coefficient
// ticks for every node, staggered so sources do not flood in lockstep.
func (e *Engine) Start(k *sim.Kernel) error {
	if e.started {
		return fmt.Errorf("core: engine already started")
	}
	e.started = true
	stagger := k.Stream("core.stagger")
	for nd := 0; nd < e.ch.Net.Len(); nd++ {
		nd := nd
		if err := e.ch.Net.SetReceiver(nd, func(kk *sim.Kernel, n int, msg protocol.Message, meta netsim.Meta) {
			e.dispatch(kk, n, msg, meta)
		}); err != nil {
			return err
		}
		k.After(time.Duration(stagger.Int63n(int64(e.cfg.TTN))), "rpcc.ttn", func(kk *sim.Kernel) {
			e.ttnTick(kk, nd)
		})
		k.After(time.Duration(stagger.Int63n(int64(e.cfg.CoeffPeriod))), "rpcc.coeff", func(kk *sim.Kernel) {
			e.coeffTick(kk, nd)
		})
	}
	return nil
}

// OnUpdate commits a new version of host's own item. Per Fig 6(b) the
// push to relay peers happens at the next TTN tick, not eagerly.
func (e *Engine) OnUpdate(k *sim.Kernel, host int) {
	m, err := e.ch.Reg.Master(e.ch.Reg.OwnedBy(host))
	if err != nil {
		return
	}
	// Time regression is impossible on the simulation clock; an error
	// here is a harness bug and must not be silent.
	if _, err := m.Update(k.Now()); err != nil {
		panic(fmt.Sprintf("core: master update failed: %v", err))
	}
}

// OnQuery serves one query at the given consistency level (§4.4).
func (e *Engine) OnQuery(k *sim.Kernel, host int, item data.ItemID, level consistency.Level) {
	q := e.ch.Begin(k, host, item, level)
	// The owner reads its master copy locally at every level.
	if e.ch.Reg.Owner(item) == host {
		m, err := e.ch.Reg.Master(item)
		if err != nil {
			e.ch.Fail(q, "unknown-item")
			return
		}
		q.Route = "owner"
		q.Source = host
		e.ch.Answer(k, q, m.Current())
		return
	}
	cp, ok := e.ch.Stores[host].Get(item)
	if !ok {
		q.Route = "fetch"
		e.fetchMiss(k, q)
		return
	}
	st := e.itemState(host, item)
	switch {
	case level == consistency.LevelWeak:
		q.Route = "local"
		q.Source = host
		e.ch.Answer(k, q, cp)
	case st.role == RoleRelay && e.ttrValid(k, st):
		// A relay with a live TTR is the validation authority other
		// peers poll; its own copy is exactly as fresh as the answer a
		// poll would return, so it answers locally at any level.
		q.Route = "relay-local"
		q.Source = host
		e.ch.Answer(k, q, cp)
	case level == consistency.LevelDelta && e.ttpValid(k, st):
		q.Route = "local"
		q.Source = host
		e.ch.Answer(k, q, cp)
	default:
		e.startPoll(k, q, cp.Version)
	}
}

// fetchMiss resolves a query for an item the host does not cache: locate a
// copy (expanding ring, §3's discovery substrate), cache it, then apply
// the level rules — a copy obtained from the owner is authoritative, one
// from a peer must still be validated for SC and expired-Δ queries.
func (e *Engine) fetchMiss(k *sim.Kernel, q *node.Query) {
	e.ch.FetchRing(k, q.Host, q.Item, q.TC, func(kk *sim.Kernel, c data.Copy, from int, ok bool) {
		if !ok {
			e.ch.Fail(q, "fetch-timeout")
			return
		}
		e.putCopy(kk, q.Host, c)
		st := e.itemState(q.Host, q.Item)
		fromOwner := from == e.ch.Reg.Owner(q.Item)
		if fromOwner {
			st.lastValidated = kk.Now()
			st.validatedOnce = true
		}
		switch {
		case q.Level == consistency.LevelWeak, fromOwner:
			q.Source = from
			e.ch.Answer(kk, q, c)
		case q.Level == consistency.LevelDelta && e.ttpValid(kk, st):
			q.Source = from
			e.ch.Answer(kk, q, c)
		default:
			e.startPoll(kk, q, c.Version)
		}
	})
}

// putCopy stores a copy at host, tearing down relay state for whatever the
// insertion evicted.
func (e *Engine) putCopy(k *sim.Kernel, host int, c data.Copy) {
	evicted, has, err := e.ch.Stores[host].PutEvict(c, k.Now())
	if err != nil {
		// Version regression: we already hold something newer. Keep it.
		return
	}
	if has {
		e.dropItemState(k, host, evicted)
	}
	if _, ok := e.peers[host].items[c.ID]; !ok {
		e.peers[host].items[c.ID] = &itemState{role: RoleCache, knownRelay: -1}
	}
}

// dropItemState removes per-item protocol state after an eviction,
// cancelling the relay role with the source host if needed.
func (e *Engine) dropItemState(k *sim.Kernel, host int, item data.ItemID) {
	st, ok := e.peers[host].items[item]
	if !ok {
		return
	}
	if st.role == RoleRelay {
		e.sendCancel(k, host, item)
	}
	delete(e.peers[host].items, item)
}

// itemState returns (creating if absent) host's state for item.
func (e *Engine) itemState(host int, item data.ItemID) *itemState {
	st, ok := e.peers[host].items[item]
	if !ok {
		st = &itemState{role: RoleCache, knownRelay: -1}
		e.peers[host].items[item] = st
	}
	return st
}

// ttpValid reports whether st's copy still satisfies Δ-consistency.
func (e *Engine) ttpValid(k *sim.Kernel, st *itemState) bool {
	win := e.cfg.TTP
	if e.cfg.Mutant == MutantTTPDouble {
		// Conformance mutant: honor twice the promised Δ window.
		win *= 2
	}
	return st.validatedOnce && k.Now()-st.lastValidated < win
}

// ttrValid reports whether a relay's copy is still authoritative.
func (e *Engine) ttrValid(k *sim.Kernel, st *itemState) bool {
	if e.cfg.Mutant == MutantIgnoreTTR {
		// Conformance mutant: a relay that was refreshed once stays an
		// authority forever, never re-validating against the source.
		return st.refreshedOnce
	}
	return st.refreshedOnce && k.Now()-st.lastRefreshed < e.cfg.TTR
}

// startPoll begins a validation round. With a known relay the poll is a
// cheap unicast straight to it; otherwise (or when it stops answering) a
// PollTTL ring flood discovers a relay, escalating to the network-wide
// PollFallbackTTL flood, then failing.
func (e *Engine) startPoll(k *sim.Kernel, q *node.Query, have data.Version) {
	r := &pollRound{q: q, host: q.Host, item: q.Item}
	st := e.itemState(q.Host, q.Item)
	if st.knownRelay < 0 {
		r.stage = 1 // no known relay: go straight to ring discovery
	}
	e.polls[q.Seq] = r
	e.pollStage(k, r, have)
}

// Poll stages: 0 unicast to the learned relay, 1 ring flood, 2 fallback
// flood, 3 give up.
func (e *Engine) pollStage(k *sim.Kernel, r *pollRound, have data.Version) {
	if r.q.Resolved() {
		delete(e.polls, r.q.Seq)
		return
	}
	// The previous stage (if any) escalated past: its span ends here.
	e.ch.Tracer.Finish(r.tc, k.Now().Nanoseconds())
	if r.stage >= 3 {
		delete(e.polls, r.q.Seq)
		e.ch.Fail(r.q, "poll-timeout")
		return
	}
	msg := protocol.Message{
		Kind:    protocol.KindPoll,
		Item:    r.item,
		Origin:  r.host,
		Version: have,
		Seq:     r.q.Seq,
	}
	st := e.itemState(r.host, r.item)
	var err error
	switch r.stage {
	case 0:
		e.pollDirect++
		e.ch.Hub.PollStage(telemetry.PollDirect)
		r.q.Route = "poll-direct"
		r.tc = e.ch.Tracer.StartChild(k.Now().Nanoseconds(), r.q.TC, r.host, ctrace.PhasePoll, "poll-direct")
		msg.Trace = r.tc
		err = e.ch.Net.Unicast(r.host, st.knownRelay, msg)
	case 1:
		e.pollRing++
		e.ch.Hub.PollStage(telemetry.PollRing)
		r.q.Route = "poll-ring"
		r.tc = e.ch.Tracer.StartChild(k.Now().Nanoseconds(), r.q.TC, r.host, ctrace.PhasePoll, "poll-ring")
		msg.Trace = r.tc
		err = e.ch.Net.Flood(r.host, e.cfg.PollTTL, msg)
	default:
		e.pollFallback++
		e.ch.Hub.PollStage(telemetry.PollFallback)
		r.q.Route = "poll-fallback"
		r.tc = e.ch.Tracer.StartChild(k.Now().Nanoseconds(), r.q.TC, r.host, ctrace.PhasePoll, "poll-fallback")
		msg.Trace = r.tc
		err = e.ch.Net.Flood(r.host, e.cfg.PollFallbackTTL, msg)
	}
	if err != nil {
		delete(e.polls, r.q.Seq)
		e.ch.Tracer.Finish(r.tc, k.Now().Nanoseconds())
		e.ch.Fail(r.q, "poll-send")
		return
	}
	stage := r.stage
	r.stage++
	k.After(e.cfg.PollTimeout, "rpcc.poll.timeout", func(kk *sim.Kernel) {
		if stage == 0 && !r.q.Resolved() {
			// The learned relay went quiet (moved, demoted, partitioned):
			// forget it before falling back to discovery.
			st.knownRelay = -1
			e.relayForgets++
			e.ch.Hub.RelayForget()
		}
		e.pollStage(kk, r, have)
	})
}

// ttnTick is the source host's periodic invalidation duty (Fig 6b): push
// UPDATE to relay peers when the item changed this interval, then flood
// INVALIDATION, then renew TTN. With AdaptiveTTN the renewal interval
// stretches while the item is quiet and snaps back on change (§6).
func (e *Engine) ttnTick(k *sim.Kernel, nd int) {
	ps := e.peers[nd]
	if ps.ttnInterval <= 0 {
		ps.ttnInterval = e.cfg.TTN
	}
	defer func() {
		k.After(ps.ttnInterval, "rpcc.ttn", func(kk *sim.Kernel) { e.ttnTick(kk, nd) })
	}()

	if e.cfg.ActiveSource != nil && !e.cfg.ActiveSource(nd) {
		return
	}
	item := e.ch.Reg.OwnedBy(nd)
	m, err := e.ch.Reg.Master(item)
	if err != nil {
		return
	}
	cur := m.Current()
	if e.cfg.AdaptiveTTN {
		if cur.Version > ps.announced {
			ps.ttnInterval = e.cfg.TTN
		} else {
			ps.ttnInterval = ps.ttnInterval * 3 / 2
			if ps.ttnInterval > e.cfg.AdaptiveTTNMax {
				ps.ttnInterval = e.cfg.AdaptiveTTNMax
			}
		}
	}

	if cur.Version > ps.announced {
		// One update-push trace roots every relay unicast of this round.
		var utc protocol.TraceContext
		if e.ch.Tracer != nil {
			now := k.Now().Nanoseconds()
			utc = e.ch.Tracer.StartTrace(now, nd, ctrace.PhaseUpdate, "UPDATE")
			e.ch.Tracer.Finish(utc, now)
		}
		// MAC-layer disconnection discovery (§4.5): unreachable relay
		// peers are dropped from the table before pushing.
		for _, relay := range sortedRelays(ps.relays) {
			if !e.ch.Net.Reachable(nd, relay) {
				delete(ps.relays, relay)
				e.ch.Hub.RelayMembership(telemetry.MembershipPrune)
				continue
			}
			upd := protocol.Message{
				Kind:    protocol.KindUpdate,
				Item:    item,
				Origin:  nd,
				Version: cur.Version,
				Copy:    cur,
				Trace:   utc,
			}
			_ = e.ch.Net.Unicast(nd, relay, upd)
		}
	}
	inv := protocol.Message{
		Kind:    protocol.KindInvalidation,
		Item:    item,
		Origin:  nd,
		Version: cur.Version,
	}
	if e.ch.Tracer != nil {
		now := k.Now().Nanoseconds()
		inv.Trace = e.ch.Tracer.StartTrace(now, nd, ctrace.PhaseInvalidate, "INVALIDATION")
		e.ch.Tracer.Finish(inv.Trace, now)
	}
	ttl := e.cfg.InvalidationTTL
	switch e.cfg.Mutant {
	case MutantFloodTTLPlusOne:
		ttl++
	case MutantFloodTTLMinusOne:
		if ttl > 1 {
			ttl--
		}
	}
	_ = e.ch.Net.Flood(nd, ttl, inv)
	ps.announced = cur.Version
}

// coeffTick recomputes nd's coefficients and applies the role transitions
// of Fig 5.
func (e *Engine) coeffTick(k *sim.Kernel, nd int) {
	defer k.After(e.cfg.CoeffPeriod, "rpcc.coeff", func(kk *sim.Kernel) { e.coeffTick(kk, nd) })

	sample := CoeffSample{
		// Accessibility evidence: cache accesses plus all radio activity
		// (sends, receptions, forwarding). A node that carries the
		// network's traffic is demonstrably reachable.
		Accesses: e.ch.Stores[nd].Accesses() + e.deliveries[nd] + e.ch.Net.Activity(nd),
		CE:       1,
	}
	if e.tel.Switches != nil {
		sample.Switches = e.tel.Switches(nd)
	}
	if e.tel.Moves != nil {
		sample.Moves = e.tel.Moves(nd)
	}
	if e.tel.CE != nil {
		sample.CE = e.tel.CE(nd)
	}
	tr := e.trackers[nd]
	tr.Observe(sample)
	e.ch.Hub.Coeff(tr.CAR(), tr.CS(), tr.CE())
	eligible := tr.Eligible(e.cfg.MuCAR, e.cfg.MuCS, e.cfg.MuCE)

	for _, item := range sortedItems(e.peers[nd].items) {
		st := e.peers[nd].items[item]
		// A relay that has not heard the source's INVALIDATION flood for
		// several TTN intervals has drifted beyond the invalidation TTL:
		// it is no longer part of the push scope and resigns (the relay
		// tier is defined by proximity to the source, §4.2/§5.3).
		if st.role == RoleRelay && k.Now() > 3*e.cfg.TTN && k.Now()-st.invAt > 3*e.cfg.TTN {
			st.role = RoleCache
			st.failingRuns = 0
			st.pending = nil
			e.resetGetNew(k, st)
			e.sendCancel(k, nd, item)
			e.roleChanged(k, nd, item, RoleRelay, RoleCache, "inv-drift")
			continue
		}
		if eligible {
			st.failingRuns = 0
			if st.role == RoleCache {
				st.role = RoleCandidate
				e.roleChanged(k, nd, item, RoleCache, RoleCandidate, "eligible")
			}
			continue
		}
		if st.role == RoleCache {
			continue
		}
		// Candidates and relays step down only after DemoteAfter
		// consecutive failing windows (hysteresis over Fig 5).
		st.failingRuns++
		if st.failingRuns < e.cfg.DemoteAfter {
			continue
		}
		st.failingRuns = 0
		switch st.role {
		case RoleCandidate:
			st.role = RoleCache
			e.resetApply(st)
			e.roleChanged(k, nd, item, RoleCandidate, RoleCache, "demoted")
		case RoleRelay:
			st.role = RoleCache
			st.pending = nil
			e.resetGetNew(k, st)
			e.sendCancel(k, nd, item)
			e.roleChanged(k, nd, item, RoleRelay, RoleCache, "demoted")
		}
	}
}

// roleChanged reports a Fig 5 role transition to the telemetry hub,
// attaching the node's current election-coefficient inputs (Eq 4.2).
func (e *Engine) roleChanged(k *sim.Kernel, nd int, item data.ItemID, from, to Role, reason string) {
	if e.ch.Hub == nil {
		return
	}
	tr := e.trackers[nd]
	e.ch.Hub.RoleTransition(k.Now(), nd, int(item), from.String(), to.String(), reason, tr.CAR(), tr.CS(), tr.CE())
}

func (e *Engine) sendCancel(k *sim.Kernel, nd int, item data.ItemID) {
	msg := protocol.Message{
		Kind:   protocol.KindCancel,
		Item:   item,
		Origin: nd,
	}
	_ = e.ch.Net.Unicast(nd, e.ch.Reg.Owner(item), msg)
}

// Warm pre-populates host's cache with a copy and creates the protocol
// state for it, as the paper's assumed placement substrate would. Use
// before the simulation starts.
func (e *Engine) Warm(k *sim.Kernel, host int, c data.Copy) {
	e.putCopy(k, host, c)
}

// SeedRelay installs host as an established relay for item: the copy is
// stamped refreshed, the role set, and the source host's relay table
// updated — the state the election and APPLY handshake would have reached
// by this point. Conformance and benchmark harnesses use it to start
// scenarios from a known relay topology instead of waiting out the
// coefficient warm-up. The host must already cache the item (Warm first).
func (e *Engine) SeedRelay(k *sim.Kernel, host int, item data.ItemID) error {
	if host < 0 || host >= len(e.peers) {
		return fmt.Errorf("core: seed relay host %d out of range", host)
	}
	if !e.ch.Stores[host].Contains(item) {
		return fmt.Errorf("core: seed relay host %d does not cache item %d", host, item)
	}
	st := e.itemState(host, item)
	st.role = RoleRelay
	st.lastRefreshed = k.Now()
	st.refreshedOnce = true
	st.invAt = k.Now()
	owner := e.ch.Reg.Owner(item)
	if owner >= 0 && owner < len(e.peers) {
		e.peers[owner].relays[host] = struct{}{}
	}
	return nil
}

// Role returns nd's current role for item (RoleNone when not cached).
func (e *Engine) Role(nd int, item data.ItemID) Role {
	st, ok := e.peers[nd].items[item]
	if !ok {
		return RoleNone
	}
	return st.role
}

// RelayCount returns the number of (node, item) relay registrations
// currently held across the network, as seen by the source hosts — the
// quantity the Fig 9 discussion ties to the invalidation TTL.
func (e *Engine) RelayCount() int {
	n := 0
	for _, ps := range e.peers {
		n += len(ps.relays)
	}
	return n
}

// RoleCounts returns the node-side totals of (cache, candidate, relay)
// item-states across the network — the Fig 5 state distribution.
func (e *Engine) RoleCounts() (cacheN, candidateN, relayN int) {
	for _, ps := range e.peers {
		for _, st := range ps.items {
			switch st.role {
			case RoleCandidate:
				candidateN++
			case RoleRelay:
				relayN++
			default:
				cacheN++
			}
		}
	}
	return cacheN, candidateN, relayN
}

// RelayCountFor returns the number of relay peers registered with item's
// source host.
func (e *Engine) RelayCountFor(item data.ItemID) int {
	owner := e.ch.Reg.Owner(item)
	if owner < 0 || owner >= len(e.peers) {
		return 0
	}
	return len(e.peers[owner].relays)
}

// PollStats reports how often each poll stage ran (direct unicast to a
// learned relay, ring discovery flood, network-wide fallback flood) and
// how many times a learned relay was forgotten after going quiet.
func (e *Engine) PollStats() (direct, ring, fallback, forgets uint64) {
	return e.pollDirect, e.pollRing, e.pollFallback, e.relayForgets
}

// StaleRejects reports how many stale UPDATE/SEND_NEW pushes and poll
// acks the version-monotonicity guards discarded.
func (e *Engine) StaleRejects() (pushes, acks uint64) {
	return e.stalePushRejects, e.staleAckRejects
}

// RepairStats reports the §4.5 retry accounting: total GET_NEW and APPLY
// sends, and how many times a node exhausted MaxRepairAttempts and gave
// up (until newer version evidence reopened the budget).
func (e *Engine) RepairStats() (getNewSends, getNewGiveUps, applySends, applyGiveUps uint64) {
	return e.getNewSends, e.getNewGiveUps, e.applySends, e.applyGiveUps
}

// RepairScan walks every item state and returns the largest outstanding
// consecutive-attempt count for either repair kind. The chaos auditor's
// bounded-retry invariant asserts it never exceeds MaxRepairAttempts.
func (e *Engine) RepairScan() (maxGetNew, maxApply int) {
	for _, ps := range e.peers {
		for _, st := range ps.items {
			if st.getNewAttempts > maxGetNew {
				maxGetNew = st.getNewAttempts
			}
			if st.applyAttempts > maxApply {
				maxApply = st.applyAttempts
			}
		}
	}
	return maxGetNew, maxApply
}

// RelaysFor returns the relay node ids currently registered with item's
// source host, ascending. The fault plane uses it to aim targeted relay
// assassinations.
func (e *Engine) RelaysFor(item data.ItemID) []int {
	owner := e.ch.Reg.Owner(item)
	if owner < 0 || owner >= len(e.peers) {
		return nil
	}
	return sortedRelays(e.peers[owner].relays)
}

// RepairDebt is one relay's repair obligation for an item: the newest
// version it has heard announced against the version it actually holds.
// The §4.5 reconnection guarantee is conditional on hearing evidence, so
// the invariant auditor flags only debts left unserviced — not relays an
// invalidation never reached.
type RepairDebt struct {
	Node    int
	Heard   data.Version  // newest version seen in an INVALIDATION
	HeardAt time.Duration // when that evidence last arrived
	Since   time.Duration // when the debt first opened (first missed version)
	Held    data.Version  // version of the cached copy
	GaveUp  bool          // repair budget exhausted (invariant 4's domain)
}

// RepairDebts returns the repair state of every node holding item in the
// relay role, ascending by node id.
func (e *Engine) RepairDebts(item data.ItemID) []RepairDebt {
	var out []RepairDebt
	for nd := range e.peers {
		st, ok := e.peers[nd].items[item]
		if !ok || st.role != RoleRelay || !st.invHeard || !st.debtOpen {
			continue
		}
		cp, have := e.ch.Stores[nd].Peek(item)
		if !have {
			continue
		}
		out = append(out, RepairDebt{
			Node:    nd,
			Heard:   st.invVersion,
			HeardAt: st.invAt,
			Since:   st.debtSince,
			Held:    cp.Version,
			GaveUp:  st.getNewGaveUp,
		})
	}
	return out
}

// Crash wipes nd's volatile protocol state — cache contents, per-item
// roles and repair bookkeeping, the source-side relay table, coefficient
// histories, delivery counts — and fails its in-flight queries. Unlike a
// churn disconnection, which preserves state across the gap, a crashed
// node restarts cold and must re-discover everything. The node's master
// copies survive: owned data is durable, cached state is not.
func (e *Engine) Crash(k *sim.Kernel, nd int) error {
	if nd < 0 || nd >= len(e.peers) {
		return fmt.Errorf("core: crash node %d out of range", nd)
	}
	// Fail in-flight polls in ascending sequence order (map iteration
	// order must not leak into the event stream).
	seqs := make([]uint64, 0, len(e.polls))
	for seq, r := range e.polls {
		if r.host == nd {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		r := e.polls[seq]
		delete(e.polls, seq)
		e.ch.Tracer.Finish(r.tc, k.Now().Nanoseconds())
		if !r.q.Resolved() {
			e.ch.Fail(r.q, "crash")
		}
	}
	e.ch.Stores[nd].Clear()
	e.peers[nd] = &peerState{
		relays: make(map[int]struct{}),
		items:  make(map[data.ItemID]*itemState),
	}
	tr, err := NewCoeffTracker(e.cfg.Omega, e.cfg.CoeffPeriod)
	if err != nil {
		return err
	}
	e.trackers[nd] = tr
	e.deliveries[nd] = 0
	return nil
}

// Tracker exposes nd's coefficient tracker (read-only use).
func (e *Engine) Tracker(nd int) *CoeffTracker { return e.trackers[nd] }

// sortedRelays returns the relay node ids in ascending order. Go map
// iteration order varies between runs; anything that sends messages per
// relay must walk a sorted copy so the event sequence — and therefore the
// whole simulation — is a pure function of the seed.
func sortedRelays(relays map[int]struct{}) []int {
	out := make([]int, 0, len(relays))
	for r := range relays {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// sortedItems returns the item ids of a per-peer state map in ascending
// order, for the same determinism reason as sortedRelays.
func sortedItems(items map[data.ItemID]*itemState) []data.ItemID {
	out := make([]data.ItemID, 0, len(items))
	for id := range items {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
