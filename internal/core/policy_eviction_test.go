package core

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
)

// swapStore replaces node nd's cache with a fresh capacity-1 store under
// the named replacement policy.
func swapStore(t *testing.T, e *env, nd int, kind cache.PolicyKind) {
	t.Helper()
	p, err := cache.NewPolicy(kind, cache.PolicyParams{})
	if err != nil {
		t.Fatal(err)
	}
	small, err := cache.NewStoreWithPolicy(1, p)
	if err != nil {
		t.Fatal(err)
	}
	e.stores[nd] = small
	e.ch.Stores[nd] = small
}

// TestEvictionCancelsRelayRolePerPolicy: the eviction → relay CANCEL
// teardown is a store contract, not an LRU detail — whichever policy
// nominates the victim, the evicted relay must CANCEL with its source.
func TestEvictionCancelsRelayRolePerPolicy(t *testing.T) {
	for _, kind := range cache.AllPolicyKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			e := newEnv(t, 3, DefaultConfig())
			swapStore(t, e, 1, kind)
			e.seedCache(t, 1, 0)
			e.eng.itemState(1, 0).role = RoleRelay
			e.eng.peers[0].relays[1] = struct{}{}
			// Caching another item evicts item 0 (capacity 1) under
			// every policy: it is the only resident entry.
			m2, _ := e.reg.Master(2)
			e.eng.putCopy(e.k, 1, m2.Current())
			if e.eng.Role(1, 0) != RoleNone {
				t.Fatalf("evicted item still has role %v", e.eng.Role(1, 0))
			}
			e.k.RunUntil(e.k.Now() + 2*time.Second)
			if _, still := e.eng.peers[0].relays[1]; still {
				t.Error("owner kept relay whose copy was evicted")
			}
		})
	}
}

// TestStoreRefreshEvictionCancelsRelay pins the other insertion path: a
// refresh that has to insert (items-map/store desync after a mid-flight
// eviction) evicts through storeRefresh, which used to drop the victim's
// relay state on the floor instead of CANCELling.
func TestStoreRefreshEvictionCancelsRelay(t *testing.T) {
	for _, kind := range cache.AllPolicyKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			e := newEnv(t, 4, DefaultConfig())
			swapStore(t, e, 1, kind)
			e.seedCache(t, 1, 0)
			e.eng.itemState(1, 0).role = RoleRelay
			e.eng.peers[0].relays[1] = struct{}{}
			// Refresh item 2, absent from the full store: inserting it
			// evicts item 0, whose relay role must still tear down.
			m2, _ := e.reg.Master(2)
			st2 := e.eng.itemState(1, 2)
			e.eng.storeRefresh(e.k, 1, m2.Current(), st2, true)
			if !e.stores[1].Contains(2) {
				t.Fatal("refresh did not install the new copy")
			}
			if e.eng.Role(1, 0) != RoleNone {
				t.Fatalf("evicted item still has role %v after storeRefresh", e.eng.Role(1, 0))
			}
			e.k.RunUntil(e.k.Now() + 2*time.Second)
			if _, still := e.eng.peers[0].relays[1]; still {
				t.Error("owner kept relay whose copy storeRefresh evicted")
			}
		})
	}
}
