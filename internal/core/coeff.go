package core

import (
	"fmt"
	"time"
)

// CoeffSample is one node's raw activity counters at a sampling instant.
// The tracker differences consecutive samples to obtain the per-period
// counts N_a (cache accesses), N_s (connectivity switches) and N_m
// (subnet moves) of §4.2.
type CoeffSample struct {
	Accesses uint64  // cumulative cache accesses + messages handled
	Switches uint64  // cumulative churn transitions
	Moves    uint64  // cumulative subnet crossings
	CE       float64 // instantaneous coefficient of energy (Eq 4.2.7)
}

// CoeffTracker maintains one node's relay-selection coefficients.
//
// Per Eq 4.2.2 the peer access rate keeps a three-window history:
//
//	PAR_t = PAR_{t-2}·ω/4 + PAR_{t-1}·ω/2 + (N_a/φ)·(1 − ω/4 − ω/2)
//
// and CAR = 1/(1+PAR_t) (Eq 4.2.3). The switching and moving rates use a
// single-term EWMA (Eq 4.2.4, 4.2.5):
//
//	PSR_t = PSR_{t−1}·ω + (N_s/φ)·(1−ω)
//	PMR_t = PMR_{t−1}·ω + (N_m/φ)·(1−ω)
//
// with CS = 1/(1+PSR_t+PMR_t) (Eq 4.2.6).
//
// The paper never states the rate units, and the Table 1 thresholds only
// become functional once units are fixed. We calibrate the access rate
// per minute — μ_CAR = 0.15 then admits nodes handling more than ~5.7
// events/minute, i.e. anything actually participating in the network —
// and the switching/moving rates per ten seconds — μ_CS = 0.6 then
// rejects nodes flapping faster than ~4 transitions/minute while
// tolerating the ordinary I_Switch = 5 min churn. Under this calibration
// the relay population is gated chiefly by who hears the INVALIDATION
// flood, i.e. by its TTL, which is exactly the dependence §5.3 studies.
type CoeffTracker struct {
	omega  float64
	period time.Duration

	last      CoeffSample
	hasSample bool

	parPrev float64 // PAR_{t-2} after an update (the window before last)
	par     float64 // PAR_{t-1} after an update (the latest window)
	psr     float64
	pmr     float64
	ce      float64
	windows int
}

// NewCoeffTracker builds a tracker with weight omega and period φ.
func NewCoeffTracker(omega float64, period time.Duration) (*CoeffTracker, error) {
	if omega < 0 || omega > 1 {
		return nil, fmt.Errorf("core: omega %g outside [0,1]", omega)
	}
	if period <= 0 {
		return nil, fmt.Errorf("core: non-positive coefficient period %v", period)
	}
	return &CoeffTracker{omega: omega, period: period, ce: 1}, nil
}

// Observe ingests the node's cumulative counters at the end of a period
// and advances the coefficient state by one window.
func (t *CoeffTracker) Observe(s CoeffSample) {
	if !t.hasSample {
		// First window: establish the baseline; rates start at zero.
		t.last = s
		t.hasSample = true
		t.ce = s.CE
		return
	}
	perMin := t.period.Minutes()
	if perMin <= 0 {
		perMin = 1
	}
	perTenSec := t.period.Seconds() / 10
	if perTenSec <= 0 {
		perTenSec = 1
	}
	na := float64(s.Accesses-t.last.Accesses) / perMin
	ns := float64(s.Switches-t.last.Switches) / perTenSec
	nm := float64(s.Moves-t.last.Moves) / perTenSec
	t.last = s

	if t.windows == 0 {
		// First measured window: seed the recursions with the measured
		// rates instead of mixing them with the zero priors. Eq 4.2.2's
		// history terms have no defined value before any window exists;
		// folding in zeros under-reports the rates by the history weight
		// (PSR₁ = 0.8·N_s with ω = 0.2), which over-reports CS and CAR and
		// let a node flapping hard in its very first window pass the
		// stability criterion at windows == 1.
		t.parPrev, t.par = na, na
		t.psr = ns
		t.pmr = nm
		t.ce = s.CE
		t.windows++
		return
	}
	w := t.omega
	t.parPrev, t.par = t.par, t.parPrev*w/4+t.par*w/2+na*(1-w/4-w/2)
	t.psr = t.psr*w + ns*(1-w)
	t.pmr = t.pmr*w + nm*(1-w)
	t.ce = s.CE
	t.windows++
}

// CAR returns the coefficient of access rate (Eq 4.2.3), in (0,1].
func (t *CoeffTracker) CAR() float64 { return 1 / (1 + t.par) }

// CS returns the coefficient of stability (Eq 4.2.6), in (0,1].
func (t *CoeffTracker) CS() float64 { return 1 / (1 + t.psr + t.pmr) }

// CE returns the coefficient of energy (Eq 4.2.7), in [0,1].
func (t *CoeffTracker) CE() float64 { return t.ce }

// PAR returns the smoothed peer access rate (events per minute).
func (t *CoeffTracker) PAR() float64 { return t.par }

// PSR returns the smoothed peer switching rate (events per ten seconds).
func (t *CoeffTracker) PSR() float64 { return t.psr }

// PMR returns the smoothed peer moving rate (events per ten seconds).
func (t *CoeffTracker) PMR() float64 { return t.pmr }

// Windows returns how many full periods have been observed.
func (t *CoeffTracker) Windows() int { return t.windows }

// Eligible evaluates the selection criterion of Eq 4.2.8:
//
//	(CAR < μ_CAR) ∧ (CS > μ_CS) ∧ (CE > μ_CE)
//
// A node with no completed window yet is never eligible — it has no
// demonstrated history of accessibility or stability.
func (t *CoeffTracker) Eligible(muCAR, muCS, muCE float64) bool {
	if t.windows == 0 {
		return false
	}
	return t.CAR() < muCAR && t.CS() > muCS && t.CE() > muCE
}

// String renders the current coefficients for traces.
func (t *CoeffTracker) String() string {
	return fmt.Sprintf("CAR=%.3f CS=%.3f CE=%.3f (PAR=%.2f/min PSR=%.2f PMR=%.2f)",
		t.CAR(), t.CS(), t.CE(), t.par, t.psr, t.pmr)
}
