package core

// Integration tests for the disconnection/reconnection cases of §4.5,
// driven end-to-end through the simulated network (with churn) rather
// than by calling handlers directly.

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// faultEnv is an env with a controllable churn process.
type faultEnv struct {
	*env
	churn *churn.Process
}

// newFaultEnv builds a started engine over an n-node chain with scripted
// (non-random) churn.
func newFaultEnv(t *testing.T, n int, cfg Config) *faultEnv {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(17))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200}
	}
	cp, err := churn.NewProcess(churn.Config{Disabled: true}, n, k)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, cp, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := data.NewRegistry(n)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*cache.Store, n)
	for i := range stores {
		stores[i], err = cache.NewStore(10)
		if err != nil {
			t.Fatal(err)
		}
	}
	aud, err := consistency.NewAuditor(reg, cfg.TTP, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := node.NewChassis(node.DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, ch, Telemetry{Switches: cp.Switches})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(k); err != nil {
		t.Fatal(err)
	}
	return &faultEnv{
		env:   &env{k: k, net: net, reg: reg, stores: stores, ch: ch, eng: eng},
		churn: cp,
	}
}

// makeRelay wires host up as a live relay for item 0 (owner node 0).
func (e *faultEnv) makeRelay(t *testing.T, host int) {
	t.Helper()
	e.seedCache(t, host, 0)
	st := e.eng.itemState(host, 0)
	st.role = RoleRelay
	st.lastRefreshed = e.k.Now()
	st.refreshedOnce = true
	st.invHeard = true
	st.invAt = e.k.Now()
	e.eng.peers[0].relays[host] = struct{}{}
}

func TestRelayReconnectionRepair(t *testing.T) {
	// §4.5 case 2: a relay disconnects, misses UPDATEs, and on hearing
	// the next INVALIDATION after reconnection compares VER_d with
	// LVER_d and repairs via GET_NEW/SEND_NEW. Coefficient demotion is
	// pinned off: this sterile network carries no background traffic, so
	// the eligibility criterion (correctly) would demote the idle relay.
	cfg := DefaultConfig()
	cfg.DemoteAfter = 1000
	e := newFaultEnv(t, 3, cfg)
	e.makeRelay(t, 1)

	if err := e.churn.ForceState(e.k, 1, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	// Two updates committed while the relay is gone (outage shorter than
	// the 3·TTN resignation deadline); pushes die at the down node.
	e.eng.OnUpdate(e.k, 0)
	e.k.RunUntil(e.k.Now() + 100*time.Second)
	e.eng.OnUpdate(e.k, 0)
	e.k.RunUntil(e.k.Now() + 100*time.Second)
	if cp, _ := e.stores[1].Peek(0); cp.Version != 0 {
		t.Fatalf("down relay advanced to v%d", cp.Version)
	}

	// Reconnect and wait for the next INVALIDATION round to repair.
	e.churn.ForceState(e.k, 1, churn.StateConnected)
	e.k.RunUntil(e.k.Now() + 150*time.Second)
	cp, ok := e.stores[1].Peek(0)
	if !ok || cp.Version != 2 {
		t.Fatalf("relay after reconnect = v%d, want v2", cp.Version)
	}
	if e.net.Traffic().Delivered(protocol.KindSendNew) == 0 {
		t.Error("repair did not use GET_NEW/SEND_NEW")
	}
}

func TestSourceFailureBlocksStrongReadsUntilReturn(t *testing.T) {
	// §4.5 case 1: with the source host down and no relays, strong
	// queries cannot be validated; they fail rather than serve possibly
	// stale data. After the source returns, strong reads flow again.
	e := newFaultEnv(t, 3, DefaultConfig())
	e.seedCache(t, 2, 0)
	if err := e.churn.ForceState(e.k, 0, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	e.eng.OnQuery(e.k, 2, 0, consistency.LevelStrong)
	e.k.RunUntil(e.k.Now() + 10*time.Second)
	if e.ch.Failed() != 1 {
		t.Fatalf("strong query with dead source: answered=%d failed=%d, want failure",
			e.ch.Answered(), e.ch.Failed())
	}
	// Weak queries keep working from the local cache throughout.
	e.eng.OnQuery(e.k, 2, 0, consistency.LevelWeak)
	if e.ch.Answered() != 1 {
		t.Fatal("weak query failed during source outage")
	}

	e.churn.ForceState(e.k, 0, churn.StateConnected)
	e.k.RunUntil(e.k.Now() + 5*time.Second)
	e.eng.OnQuery(e.k, 2, 0, consistency.LevelStrong)
	e.k.RunUntil(e.k.Now() + 10*time.Second)
	if e.ch.Answered() != 2 {
		t.Fatalf("strong query after source return unanswered (reasons=%v)", e.ch.FailReasons())
	}
}

func TestCandidateMissedApplyAckRetries(t *testing.T) {
	// §4.5 case 3: the candidate's APPLY reaches the source but the
	// candidate goes down before APPLY_ACK arrives. The source has added
	// it to the relay table; on the next INVALIDATION after reconnection
	// the candidate (still candidate) re-applies past RepairTimeout, or
	// is promoted directly by a pushed UPDATE.
	cfg := DefaultConfig()
	// Pin candidacy: this test exercises the lost-ACK repair, not the
	// coefficient criterion, so demotion is effectively disabled.
	cfg.DemoteAfter = 1000
	e := newFaultEnv(t, 3, cfg)
	e.seedCache(t, 1, 0)
	e.eng.itemState(1, 0).role = RoleCandidate

	// Deliver an INVALIDATION so the candidate APPLYs, then cut it off
	// before the ACK can arrive (ACK takes ~one hop delay).
	e.eng.onInvalidation(e.k, 1, protocol.Message{
		Kind: protocol.KindInvalidation, Item: 0, Origin: 0, Version: 0,
	})
	if err := e.churn.ForceState(e.k, 1, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	e.k.RunUntil(e.k.Now() + 30*time.Second)
	if e.eng.Role(1, 0) == RoleRelay {
		t.Fatal("node promoted while disconnected")
	}
	// The source believes node 1 is a relay already.
	if _, inTable := e.eng.peers[0].relays[1]; !inTable {
		t.Fatal("source did not record the APPLY")
	}

	e.churn.ForceState(e.k, 1, churn.StateConnected)
	// Run long enough for RepairTimeout to lapse and the next TTN round
	// to trigger either a re-APPLY or an UPDATE-driven promotion.
	e.eng.OnUpdate(e.k, 0)
	e.k.RunUntil(e.k.Now() + 5*time.Minute)
	if got := e.eng.Role(1, 0); got != RoleRelay {
		t.Fatalf("role after reconnection = %v, want relay", got)
	}
}

func TestOwnerPrunesUnreachableRelayOnPush(t *testing.T) {
	// §4.5 case 3b: "the source host will remove the peer from its relay
	// peer table and will not send UPDATE message to it" once the MAC
	// layer discovers the disconnection — modelled as a reachability
	// check at push time.
	e := newFaultEnv(t, 3, DefaultConfig())
	e.makeRelay(t, 2)
	if err := e.churn.ForceState(e.k, 2, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	e.eng.OnUpdate(e.k, 0)
	e.eng.ttnTick(e.k, 0) // push round observes the dead relay
	if _, still := e.eng.peers[0].relays[2]; still {
		t.Fatal("owner kept unreachable relay in table")
	}
}

func TestChurnStormSystemSurvives(t *testing.T) {
	// Sustained random churn: the system must keep answering queries,
	// never serve torn/future values, and keep query accounting exact.
	k := sim.NewKernel(sim.WithSeed(23))
	n := 12
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i%4) * 180, Y: float64(i/4) * 180}
	}
	cp, err := churn.NewProcess(churn.Config{MeanUp: 2 * time.Minute, MeanDown: 20 * time.Second}, n, k)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, cp, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := data.NewRegistry(n)
	stores := make([]*cache.Store, n)
	for i := range stores {
		stores[i], _ = cache.NewStore(6)
	}
	aud, _ := consistency.NewAuditor(reg, 4*time.Minute, 5*time.Second)
	ch, err := node.NewChassis(node.DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(DefaultConfig(), ch, Telemetry{Switches: cp.Switches})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(k); err != nil {
		t.Fatal(err)
	}
	levels := []consistency.Level{consistency.LevelStrong, consistency.LevelDelta, consistency.LevelWeak}
	for i := 0; i < 300; i++ {
		i := i
		k.After(time.Duration(i)*7*time.Second, "q", func(kk *sim.Kernel) {
			host := i % n
			item := data.ItemID((i*5 + 1) % n)
			if int(item) == host {
				item = data.ItemID((host + 1) % n)
			}
			eng.OnQuery(kk, host, item, levels[i%3])
		})
		if i%8 == 0 {
			k.After(time.Duration(i)*7*time.Second, "u", func(kk *sim.Kernel) {
				eng.OnUpdate(kk, i%n)
			})
		}
	}
	k.RunUntil(40 * time.Minute)
	if ch.Answered() == 0 {
		t.Fatal("no queries answered under churn")
	}
	if ch.Answered()+ch.Failed() != ch.Issued() {
		t.Fatalf("query accounting leak: %d issued, %d answered, %d failed",
			ch.Issued(), ch.Answered(), ch.Failed())
	}
	if got := aud.Violations(consistency.ViolationTorn); got != 0 {
		t.Errorf("torn values under churn: %d", got)
	}
	if got := aud.Violations(consistency.ViolationFuture); got != 0 {
		t.Errorf("future values under churn: %d", got)
	}
}
