package core

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// staticSource pins nodes on a 200m chain (radio range 250m: adjacent
// nodes only).
type staticSource struct{ pts []geo.Point }

func (s *staticSource) Len() int { return len(s.pts) }
func (s *staticSource) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(s.pts) {
		dst = make([]geo.Point, len(s.pts))
	}
	dst = dst[:len(s.pts)]
	copy(dst, s.pts)
	return dst
}

type env struct {
	k      *sim.Kernel
	net    *netsim.Network
	reg    *data.Registry
	stores []*cache.Store
	ch     *node.Chassis
	eng    *Engine
}

// newEnv builds a started RPCC engine over an n-node chain.
func newEnv(t *testing.T, n int, cfg Config) *env {
	t.Helper()
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200}
	}
	return newEnvAt(t, pts, cfg)
}

// newEnvAt builds a started RPCC engine over nodes pinned at pts.
func newEnvAt(t *testing.T, pts []geo.Point, cfg Config) *env {
	t.Helper()
	n := len(pts)
	k := sim.NewKernel(sim.WithSeed(9))
	net, err := netsim.New(netsim.DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := data.NewRegistry(n)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*cache.Store, n)
	for i := range stores {
		stores[i], err = cache.NewStore(10)
		if err != nil {
			t.Fatal(err)
		}
	}
	aud, err := consistency.NewAuditor(reg, cfg.TTP, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := node.NewChassis(node.DefaultConfig(), net, reg, stores, stats.NewLatency(), aud)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, ch, Telemetry{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(k); err != nil {
		t.Fatal(err)
	}
	return &env{k: k, net: net, reg: reg, stores: stores, ch: ch, eng: eng}
}

// seedCache installs the current master copy of item into host's store and
// creates the protocol state, marking it validated at the current time.
func (e *env) seedCache(t *testing.T, host int, item data.ItemID) {
	t.Helper()
	m, err := e.reg.Master(item)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.stores[host].Put(m.Current(), e.k.Now()); err != nil {
		t.Fatal(err)
	}
	st := e.eng.itemState(host, item)
	st.lastValidated = e.k.Now()
	st.validatedOnce = true
}

func TestConfigValidateTable(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"zero inv ttl", func(c *Config) { c.InvalidationTTL = 0 }, false},
		{"zero ttn", func(c *Config) { c.TTN = 0 }, false},
		{"ttr above ttn", func(c *Config) { c.TTR = 3 * time.Minute }, false},
		{"fallback below poll ttl", func(c *Config) { c.PollFallbackTTL = 1 }, false},
		{"zero poll timeout", func(c *Config) { c.PollTimeout = 0 }, false},
		{"omega out of range", func(c *Config) { c.Omega = 1.5 }, false},
		{"zero muCAR", func(c *Config) { c.MuCAR = 0 }, false},
		{"muCS above one", func(c *Config) { c.MuCS = 1.5 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleNone: "none", RoleCache: "cache", RoleCandidate: "candidate", RoleRelay: "relay",
	} {
		if got := r.String(); got != want {
			t.Errorf("Role(%d).String = %q, want %q", r, got, want)
		}
	}
}

func TestOwnerAnswersLocally(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.eng.OnQuery(e.k, 1, 1, consistency.LevelStrong)
	if e.ch.Answered() != 1 {
		t.Fatalf("owner query not answered immediately (answered=%d)", e.ch.Answered())
	}
	if e.ch.Latency.Max() != 0 {
		t.Errorf("owner query latency = %v, want 0", e.ch.Latency.Max())
	}
	if e.ch.AuditViolations() != 0 {
		t.Error("owner answer violated consistency")
	}
}

func TestWeakQueryHitAnswersImmediately(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 0, 3)
	e.eng.OnQuery(e.k, 0, 3, consistency.LevelWeak)
	if e.ch.Answered() != 1 {
		t.Fatal("weak hit not answered synchronously")
	}
	if got := e.net.Traffic().TotalTx(); got != 0 {
		t.Errorf("weak hit transmitted %d messages", got)
	}
}

func TestWeakQueryMissFetches(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.eng.OnQuery(e.k, 0, 3, consistency.LevelWeak)
	e.k.RunUntil(5 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("miss not answered (failed=%d, reasons=%v)", e.ch.Failed(), e.ch.FailReasons())
	}
	if !e.stores[0].Contains(3) {
		t.Error("fetched copy not cached (placement substrate broken)")
	}
	if e.eng.Role(0, 3) != RoleCache {
		t.Errorf("role after fetch = %v, want cache", e.eng.Role(0, 3))
	}
}

func TestDeltaQueryWithinTTPAnswersLocally(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 0, 2)
	e.eng.OnQuery(e.k, 0, 2, consistency.LevelDelta)
	if e.ch.Answered() != 1 {
		t.Fatal("delta hit within TTP not answered synchronously")
	}
}

func TestDeltaQueryAfterTTPPolls(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 4, cfg)
	e.seedCache(t, 0, 2)
	// Let TTP expire: advance past 4 minutes without revalidation.
	e.k.RunUntil(cfg.TTP + time.Second)
	before := e.net.Traffic().Originated(protocol.KindPoll)
	e.eng.OnQuery(e.k, 0, 2, consistency.LevelDelta)
	e.k.RunUntil(e.k.Now() + 5*time.Second)
	if got := e.net.Traffic().Originated(protocol.KindPoll) - before; got == 0 {
		t.Fatal("expired-TTP delta query did not poll")
	}
	if e.ch.Answered() != 1 {
		t.Fatalf("delta query unanswered; reasons=%v", e.ch.FailReasons())
	}
}

func TestStrongQueryPollsAndSourceAnswers(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 0, 2) // owner node 2, two hops: inside the first ring
	e.eng.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	e.k.RunUntil(5 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("strong query unanswered; reasons=%v", e.ch.FailReasons())
	}
	if e.ch.AuditViolations() != 0 {
		t.Errorf("strong answer stale; worst=%v", e.ch.Auditor.Worst())
	}
	if e.net.Traffic().Delivered(protocol.KindPollAckA) == 0 {
		t.Error("expected POLL_ACK_A from source for an up-to-date copy")
	}
}

func TestStrongQueryStaleCopyGetsAckB(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 0, 2)
	// Source updates twice; cached copy v0 is stale.
	e.eng.OnUpdate(e.k, 2)
	e.eng.OnUpdate(e.k, 2)
	e.eng.OnQuery(e.k, 0, 2, consistency.LevelStrong)
	e.k.RunUntil(5 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("strong query unanswered; reasons=%v", e.ch.FailReasons())
	}
	if e.net.Traffic().Delivered(protocol.KindPollAckB) == 0 {
		t.Error("stale copy should draw POLL_ACK_B")
	}
	cp, ok := e.stores[0].Peek(2)
	if !ok || cp.Version != 2 {
		t.Errorf("copy after ACK_B = v%d, want v2", cp.Version)
	}
	if e.ch.AuditViolations() != 0 {
		t.Error("refreshed strong answer still flagged stale")
	}
}

func TestStrongQueryFallbackRing(t *testing.T) {
	// Owner 5 hops away: the first TTL-3 ring cannot reach it and there
	// are no relays, so the fallback TTL-8 ring must answer.
	e := newEnv(t, 6, DefaultConfig())
	e.seedCache(t, 0, 5)
	e.eng.OnQuery(e.k, 0, 5, consistency.LevelStrong)
	e.k.RunUntil(5 * time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("fallback poll failed; reasons=%v", e.ch.FailReasons())
	}
	// Latency must show the escalation delay.
	if e.ch.Latency.Max() < DefaultConfig().PollTimeout {
		t.Errorf("latency %v below one poll timeout; escalation did not happen", e.ch.Latency.Max())
	}
}

func TestStrongQueryFailsAcrossPartition(t *testing.T) {
	// 11-node chain: owner at node 10 is 10 hops away, beyond even the
	// TTL-8 fallback, and nobody else holds the item.
	e := newEnv(t, 11, DefaultConfig())
	e.seedCache(t, 0, 10)
	e.eng.OnQuery(e.k, 0, 10, consistency.LevelStrong)
	e.k.RunUntil(10 * time.Second)
	if e.ch.Failed() != 1 {
		t.Fatalf("unreachable-owner strong query did not fail (answered=%d)", e.ch.Answered())
	}
}

func TestCandidatePromotionViaInvalidation(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 2, 0) // node 2 caches item 0 (owner node 0, 2 hops < TTL 3)
	e.eng.itemState(2, 0).role = RoleCandidate
	// Drive one TTN tick at the owner and let the handshake complete.
	e.eng.ttnTick(e.k, 0)
	e.k.RunUntil(e.k.Now() + 5*time.Second)
	if got := e.eng.Role(2, 0); got != RoleRelay {
		t.Fatalf("candidate role after INVALIDATION+APPLY = %v, want relay", got)
	}
	if e.eng.RelayCountFor(0) != 1 {
		t.Errorf("owner relay table size = %d, want 1", e.eng.RelayCountFor(0))
	}
	if e.net.Traffic().Delivered(protocol.KindApply) == 0 ||
		e.net.Traffic().Delivered(protocol.KindApplyAck) == 0 {
		t.Error("APPLY/APPLY_ACK handshake missing from traffic")
	}
}

func TestRelayAnswersPollLocally(t *testing.T) {
	// Node 1 is a relay for item 0 with a fresh TTR; node 2 polls. The
	// relay (1 hop) answers before the owner (2 hops).
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 1, 0)
	st := e.eng.itemState(1, 0)
	st.role = RoleRelay
	st.lastRefreshed = e.k.Now()
	st.refreshedOnce = true
	e.seedCache(t, 2, 0)
	e.eng.OnQuery(e.k, 2, 0, consistency.LevelStrong)
	e.k.RunUntil(e.k.Now() + 5*time.Second)
	if e.ch.Answered() != 1 {
		t.Fatalf("poll to relay unanswered; reasons=%v", e.ch.FailReasons())
	}
}

func TestRelayWithExpiredTTRQueuesPoll(t *testing.T) {
	cfg := DefaultConfig()
	e := newEnv(t, 3, cfg)
	e.seedCache(t, 1, 0)
	st := e.eng.itemState(1, 0)
	st.role = RoleRelay
	// TTR never refreshed: expired. Deliver a POLL directly.
	e.eng.onPoll(e.k, 1, protocol.Message{
		Kind: protocol.KindPoll, Item: 0, Origin: 2, Version: 0, Seq: 77,
	})
	if len(st.pending) != 1 {
		t.Fatalf("pending polls = %d, want 1 (stale relay must wait)", len(st.pending))
	}
	// An INVALIDATION confirming the version flushes the queue.
	e.eng.onInvalidation(e.k, 1, protocol.Message{
		Kind: protocol.KindInvalidation, Item: 0, Origin: 0, Version: 0,
	})
	if len(st.pending) != 0 {
		t.Fatal("pending polls not flushed on refresh")
	}
	e.k.RunUntil(e.k.Now() + time.Second)
	if e.net.Traffic().Originated(protocol.KindPollAckA) == 0 {
		t.Error("flushed poll did not produce POLL_ACK_A")
	}
}

func TestRelayRepairsWithGetNew(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.seedCache(t, 1, 0)
	st := e.eng.itemState(1, 0)
	st.role = RoleRelay
	// Source moves to v2 while the relay holds v0.
	e.eng.OnUpdate(e.k, 0)
	e.eng.OnUpdate(e.k, 0)
	e.eng.onInvalidation(e.k, 1, protocol.Message{
		Kind: protocol.KindInvalidation, Item: 0, Origin: 0, Version: 2,
	})
	if !st.getNewPending {
		t.Fatal("stale relay did not issue GET_NEW")
	}
	e.k.RunUntil(e.k.Now() + 5*time.Second)
	cp, ok := e.stores[1].Peek(0)
	if !ok || cp.Version != 2 {
		t.Fatalf("relay copy after repair = v%d, want v2", cp.Version)
	}
	if st.getNewPending {
		t.Error("getNewPending not cleared after SEND_NEW")
	}
	if !e.eng.ttrValid(e.k, st) {
		t.Error("TTR not refreshed after SEND_NEW")
	}
}

func TestUpdatePushAtTTNTick(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.seedCache(t, 1, 0)
	e.eng.itemState(1, 0).role = RoleRelay
	e.eng.peers[0].relays[1] = struct{}{}
	e.eng.OnUpdate(e.k, 0) // v1 committed
	e.eng.ttnTick(e.k, 0)  // push interval
	e.k.RunUntil(e.k.Now() + 5*time.Second)
	cp, ok := e.stores[1].Peek(0)
	if !ok || cp.Version != 1 {
		t.Fatalf("relay copy after UPDATE push = v%d, want v1", cp.Version)
	}
	if e.net.Traffic().Delivered(protocol.KindUpdate) == 0 {
		t.Error("no UPDATE delivered")
	}
}

func TestCacheNodeReceivingUpdateResendsCancel(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.seedCache(t, 1, 0)
	// Node 1 is a plain cache node, but the owner believes it is a relay
	// (missed CANCEL) and pushes an UPDATE.
	m, _ := e.reg.Master(0)
	m.Update(e.k.Now())
	cur := m.Current()
	e.eng.onUpdate(e.k, 1, protocol.Message{
		Kind: protocol.KindUpdate, Item: 0, Origin: 0, Version: cur.Version, Copy: cur,
	})
	e.k.RunUntil(e.k.Now() + time.Second)
	if e.net.Traffic().Originated(protocol.KindCancel) == 0 {
		t.Error("cache node did not re-send CANCEL")
	}
	cp, _ := e.stores[1].Peek(0)
	if cp.Version != cur.Version {
		t.Error("cache node discarded pushed content")
	}
}

func TestCandidatePromotedByUpdate(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.seedCache(t, 1, 0)
	st := e.eng.itemState(1, 0)
	st.role = RoleCandidate
	m, _ := e.reg.Master(0)
	m.Update(e.k.Now())
	cur := m.Current()
	e.eng.onUpdate(e.k, 1, protocol.Message{
		Kind: protocol.KindUpdate, Item: 0, Origin: 0, Version: cur.Version, Copy: cur,
	})
	if st.role != RoleRelay {
		t.Fatalf("candidate receiving UPDATE = %v, want relay (missed APPLY_ACK case)", st.role)
	}
}

func TestDemotionSendsCancel(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.seedCache(t, 1, 0)
	st := e.eng.itemState(1, 0)
	st.role = RoleRelay
	e.eng.peers[0].relays[1] = struct{}{}
	// A single failing window is tolerated (hysteresis), then demotion
	// after DemoteAfter consecutive failures.
	e.eng.coeffTick(e.k, 1)
	if st.role != RoleRelay {
		t.Fatalf("relay demoted after one failing window despite hysteresis")
	}
	for i := 1; i < DefaultConfig().DemoteAfter; i++ {
		e.eng.coeffTick(e.k, 1)
	}
	if st.role != RoleCache {
		t.Fatalf("role after %d failing windows = %v, want cache", DefaultConfig().DemoteAfter, st.role)
	}
	e.k.RunUntil(e.k.Now() + 2*time.Second)
	if _, still := e.eng.peers[0].relays[1]; still {
		t.Error("owner kept demoted relay in table after CANCEL")
	}
}

func TestEvictionCancelsRelayRole(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	small, err := cache.NewStore(1)
	if err != nil {
		t.Fatal(err)
	}
	e.stores[1] = small
	e.ch.Stores[1] = small
	e.seedCache(t, 1, 0)
	e.eng.itemState(1, 0).role = RoleRelay
	e.eng.peers[0].relays[1] = struct{}{}
	// Caching another item evicts item 0 (capacity 1).
	m2, _ := e.reg.Master(2)
	e.eng.putCopy(e.k, 1, m2.Current())
	if e.eng.Role(1, 0) != RoleNone {
		t.Fatalf("evicted item still has role %v", e.eng.Role(1, 0))
	}
	e.k.RunUntil(e.k.Now() + 2*time.Second)
	if _, still := e.eng.peers[0].relays[1]; still {
		t.Error("owner kept relay whose copy was evicted")
	}
}

func TestCoeffTickPromotesBusyNode(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.seedCache(t, 1, 0)
	// Two ticks: baseline, then a busy window (simulated deliveries).
	e.eng.coeffTick(e.k, 1)
	e.eng.deliveries[1] += 600
	e.eng.coeffTick(e.k, 1)
	if got := e.eng.Role(1, 0); got != RoleCandidate {
		t.Fatalf("busy node role = %v, want candidate (tracker: %v)", got, e.eng.Tracker(1))
	}
}

func TestRelayCountAggregates(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.eng.peers[0].relays[1] = struct{}{}
	e.eng.peers[0].relays[2] = struct{}{}
	e.eng.peers[3].relays[2] = struct{}{}
	if got := e.eng.RelayCount(); got != 3 {
		t.Errorf("RelayCount = %d, want 3", got)
	}
	if got := e.eng.RelayCountFor(0); got != 2 {
		t.Errorf("RelayCountFor(0) = %d, want 2", got)
	}
}

func TestStartTwiceFails(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	if err := e.eng.Start(e.k); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestFullSystemSmoke(t *testing.T) {
	// A 10-node chain under continuous load for 20 simulated minutes:
	// queries across all levels must be answered, audited, and never
	// produce torn or future values.
	e := newEnv(t, 10, DefaultConfig())
	levels := []consistency.Level{consistency.LevelStrong, consistency.LevelDelta, consistency.LevelWeak}
	for i := 0; i < 200; i++ {
		i := i
		e.k.After(time.Duration(i)*5*time.Second, "test.query", func(kk *sim.Kernel) {
			host := i % 10
			item := data.ItemID((i + 3) % 10)
			if int(item) == host {
				item = data.ItemID((host + 1) % 10)
			}
			e.eng.OnQuery(kk, host, item, levels[i%3])
		})
		if i%10 == 0 {
			e.k.After(time.Duration(i)*5*time.Second, "test.update", func(kk *sim.Kernel) {
				e.eng.OnUpdate(kk, i%10)
			})
		}
	}
	e.k.RunUntil(25 * time.Minute)
	if e.ch.Answered() == 0 {
		t.Fatal("no queries answered")
	}
	answeredPlusFailed := e.ch.Answered() + e.ch.Failed()
	if answeredPlusFailed != e.ch.Issued() {
		t.Errorf("query accounting leak: issued=%d answered=%d failed=%d",
			e.ch.Issued(), e.ch.Answered(), e.ch.Failed())
	}
	if got := e.ch.Auditor.Violations(consistency.ViolationTorn); got != 0 {
		t.Errorf("torn answers: %d", got)
	}
	if got := e.ch.Auditor.Violations(consistency.ViolationFuture); got != 0 {
		t.Errorf("future answers: %d", got)
	}
}

// TestPollEscalationUnderRelayBlackout severs every link of the learned
// relay and drives one strong query through the full escalation ladder:
// the stage-0 direct poll dies on the cut (drop cause "partition"), the
// TTL-2 ring finds no authority, and the TTL-8 fallback reaches the owner
// over the bypass path. The silent relay must be forgotten exactly once.
func TestPollEscalationUnderRelayBlackout(t *testing.T) {
	// A 200m chain 0-1-2-3 with the relay (node 4) hanging off the
	// querier as a stub: severing it leaves the owner reachable over the
	// chain — three hops, beyond the TTL-2 ring but inside the TTL-8
	// fallback.
	//
	//   0 --- 1 --- 2 --- 3      chain, 200m spacing
	//                     |
	//                     4      relay stub at (600, 200)
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}, {X: 600, Y: 0},
		{X: 600, Y: 200},
	}
	e := newEnvAt(t, pts, DefaultConfig())
	e.net.SetLinkFilter(func(from, to int) bool { return from == 4 || to == 4 })

	// Node 4 is an established relay for item 0, and the querier at node
	// 3 has learned it from an earlier ack.
	e.seedCache(t, 4, 0)
	relay := e.eng.itemState(4, 0)
	relay.role = RoleRelay
	relay.lastRefreshed = e.k.Now()
	relay.refreshedOnce = true
	e.seedCache(t, 3, 0)
	e.eng.itemState(3, 0).knownRelay = 4

	e.eng.OnQuery(e.k, 3, 0, consistency.LevelStrong)
	e.k.RunUntil(5 * time.Second)

	if e.ch.Answered() != 1 {
		t.Fatalf("query unanswered across the blackout; reasons=%v", e.ch.FailReasons())
	}
	direct, ring, fallback, forgets := e.eng.PollStats()
	if direct != 1 || ring != 1 || fallback != 1 {
		t.Errorf("escalation ladder = direct:%d ring:%d fallback:%d, want 1:1:1", direct, ring, fallback)
	}
	if forgets != 1 {
		t.Errorf("relayForgets = %d, want exactly 1 for the one silent relay", forgets)
	}
	// The dead relay stays forgotten: the owner's ack alone is not
	// proximity evidence (no recent INVALIDATION heard), so nothing is
	// re-learned and no second forget can ever fire.
	if got := e.eng.itemState(3, 0).knownRelay; got != -1 {
		t.Errorf("knownRelay after fallback = %d, want -1", got)
	}
	if e.net.Traffic().DroppedByCause(protocol.KindPoll, stats.DropPartition) == 0 {
		t.Error("stage-0 poll should be accounted as a partition drop")
	}
}
