package core

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/protocol"
)

// TestReorderedStaleUpdateRejected replays a duplicated-and-reordered
// UPDATE push through the handlers: the relay applies v2, then the
// network delivers a late copy of the v1 push. The stale replay must be
// discarded — cached versions never regress — and must not renew the TTR,
// which only fresh evidence may do.
func TestReorderedStaleUpdateRejected(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.seedCache(t, 1, 0)
	st := e.eng.itemState(1, 0)
	st.role = RoleRelay

	m, _ := e.reg.Master(0)
	m.Update(e.k.Now())
	v1 := m.Current()
	m.Update(e.k.Now())
	v2 := m.Current()

	e.eng.onUpdate(e.k, 1, protocol.Message{
		Kind: protocol.KindUpdate, Item: 0, Origin: 0, Version: v2.Version, Copy: v2,
	})
	cp, _ := e.stores[1].Peek(0)
	if cp.Version != v2.Version {
		t.Fatalf("relay holds v%d after UPDATE v2", cp.Version)
	}
	refreshedAt := st.lastRefreshed

	// The reordered duplicate of the earlier push arrives last.
	e.k.RunUntil(e.k.Now() + 30*time.Second)
	e.eng.onUpdate(e.k, 1, protocol.Message{
		Kind: protocol.KindUpdate, Item: 0, Origin: 0, Version: v1.Version, Copy: v1,
	})
	cp, _ = e.stores[1].Peek(0)
	if cp.Version != v2.Version {
		t.Fatalf("stale UPDATE replay regressed the copy to v%d", cp.Version)
	}
	if st.lastRefreshed != refreshedAt {
		t.Error("stale UPDATE replay renewed the TTR")
	}
	pushes, _ := e.eng.StaleRejects()
	if pushes != 1 {
		t.Errorf("stalePushRejects = %d, want 1", pushes)
	}
}

// TestReorderedStaleSendNewRejected does the same for the GET_NEW repair
// reply: a SEND_NEW duplicated in flight and delivered after a newer one
// must not roll the store back or validate the copy.
func TestReorderedStaleSendNewRejected(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	e.seedCache(t, 1, 0)
	st := e.eng.itemState(1, 0)
	st.role = RoleRelay

	m, _ := e.reg.Master(0)
	m.Update(e.k.Now())
	v1 := m.Current()
	m.Update(e.k.Now())
	v2 := m.Current()

	e.eng.onSendNew(e.k, 1, protocol.Message{
		Kind: protocol.KindSendNew, Item: 0, Origin: 0, Version: v2.Version, Copy: v2,
	})
	e.k.RunUntil(e.k.Now() + 10*time.Second)
	e.eng.onSendNew(e.k, 1, protocol.Message{
		Kind: protocol.KindSendNew, Item: 0, Origin: 0, Version: v1.Version, Copy: v1,
	})
	cp, _ := e.stores[1].Peek(0)
	if cp.Version != v2.Version {
		t.Fatalf("stale SEND_NEW replay regressed the copy to v%d", cp.Version)
	}
	pushes, _ := e.eng.StaleRejects()
	if pushes != 1 {
		t.Errorf("stalePushRejects = %d, want 1", pushes)
	}
}

// openPoll registers an in-flight poll round for host/item, as startPoll
// would, so ack handlers can be driven directly.
func (e *env) openPoll(t *testing.T, host int, item data.ItemID) *pollRound {
	t.Helper()
	q := e.ch.Begin(e.k, host, item, consistency.LevelStrong)
	r := &pollRound{q: q, host: host, item: item, stage: 1}
	e.eng.polls[q.Seq] = r
	return r
}

// TestPollAckRaceFreshThenStale: two relays both answer one poll. The
// fresh POLL_ACK_B resolves the query and closes the round; the late
// stale one must be a dead letter — it must not regress the cached copy
// or answer anything.
func TestPollAckRaceFreshThenStale(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 0, 2)
	m, _ := e.reg.Master(2)
	m.Update(e.k.Now())
	v1 := m.Current()
	m.Update(e.k.Now())
	v2 := m.Current()

	r := e.openPoll(t, 0, 2)
	e.eng.onPollAckB(e.k, 0, protocol.Message{
		Kind: protocol.KindPollAckB, Item: 2, Origin: 1, Version: v2.Version, Copy: v2, Seq: r.q.Seq,
	})
	if !r.q.Resolved() {
		t.Fatal("fresh ACK_B did not resolve the poll")
	}
	if r.q.Source != 1 {
		t.Errorf("answer source = %d, want relay 1", r.q.Source)
	}
	// The slower relay's stale answer arrives after the round settled.
	e.eng.onPollAckB(e.k, 0, protocol.Message{
		Kind: protocol.KindPollAckB, Item: 2, Origin: 3, Version: v1.Version, Copy: v1, Seq: r.q.Seq,
	})
	cp, _ := e.stores[0].Peek(2)
	if cp.Version != v2.Version {
		t.Fatalf("late stale ACK_B regressed the copy to v%d", cp.Version)
	}
	if e.ch.Answered() != 1 {
		t.Errorf("answered = %d, want exactly 1", e.ch.Answered())
	}
}

// TestPollAckRaceStaleHitsOpenPoll: the stale relay wins the race to an
// open poll while a newer copy already landed at the poller (pushed by an
// UPDATE in flight). The handler must answer with the newer held copy,
// keep the store as-is, and count the rejected ack.
func TestPollAckRaceStaleHitsOpenPoll(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 0, 2)
	m, _ := e.reg.Master(2)
	m.Update(e.k.Now())
	v1 := m.Current()
	m.Update(e.k.Now())
	v2 := m.Current()

	r := e.openPoll(t, 0, 2)
	// A pushed UPDATE upgrades the store to v2 while the poll is open.
	e.eng.onUpdate(e.k, 0, protocol.Message{
		Kind: protocol.KindUpdate, Item: 2, Origin: 2, Version: v2.Version, Copy: v2,
	})
	// The stale relay's ACK_B now reaches the still-open poll.
	e.eng.onPollAckB(e.k, 0, protocol.Message{
		Kind: protocol.KindPollAckB, Item: 2, Origin: 3, Version: v1.Version, Copy: v1, Seq: r.q.Seq,
	})
	if !r.q.Resolved() {
		t.Fatal("stale ACK_B left the poll open")
	}
	cp, _ := e.stores[0].Peek(2)
	if cp.Version != v2.Version {
		t.Fatalf("stale ACK_B regressed the copy to v%d", cp.Version)
	}
	_, acks := e.eng.StaleRejects()
	if acks != 1 {
		t.Errorf("staleAckRejects = %d, want 1", acks)
	}
	if e.ch.AuditViolations() != 0 {
		t.Error("answer from held copy flagged by auditor")
	}
}

// TestPollAckAStaleVouchDoesNotValidate: a POLL_ACK_A vouching for an
// older version than the poller now holds answers the query (the held
// copy is strictly better) but must not renew the TTP window — the ack
// carries no currency evidence for the newer copy.
func TestPollAckAStaleVouchDoesNotValidate(t *testing.T) {
	e := newEnv(t, 4, DefaultConfig())
	e.seedCache(t, 0, 2)
	st := e.eng.itemState(0, 2)
	validatedAt := st.lastValidated
	m, _ := e.reg.Master(2)
	m.Update(e.k.Now())
	m.Update(e.k.Now())
	v2 := m.Current()

	r := e.openPoll(t, 0, 2)
	e.eng.onUpdate(e.k, 0, protocol.Message{
		Kind: protocol.KindUpdate, Item: 2, Origin: 2, Version: v2.Version, Copy: v2,
	})
	e.k.RunUntil(e.k.Now() + time.Second)
	// An ACK_A vouching only for v1 arrives for the open poll.
	e.eng.onPollAckA(e.k, 0, protocol.Message{
		Kind: protocol.KindPollAckA, Item: 2, Origin: 3, Version: 1, Seq: r.q.Seq,
	})
	if !r.q.Resolved() {
		t.Fatal("ACK_A left the poll open")
	}
	if st.lastValidated != validatedAt && st.lastValidated == e.k.Now() {
		t.Error("stale ACK_A vouch renewed the TTP window")
	}
	_, acks := e.eng.StaleRejects()
	if acks != 1 {
		t.Errorf("staleAckRejects = %d, want 1", acks)
	}
	if st.knownRelay == 3 {
		t.Error("stale authority learned as the known relay")
	}
}
