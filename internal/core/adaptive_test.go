package core

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/protocol"
)

func adaptiveConfig() Config {
	cfg := DefaultConfig()
	cfg.AdaptiveTTN = true
	cfg.AdaptiveTTNMax = 4 * cfg.TTN
	return cfg
}

func TestAdaptiveTTNValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveTTN = true
	cfg.AdaptiveTTNMax = time.Second // below TTN
	if cfg.Validate() == nil {
		t.Fatal("adaptive cap below TTN accepted")
	}
	if err := adaptiveConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveTTNStretchesWhenQuiet(t *testing.T) {
	e := newEnv(t, 3, adaptiveConfig())
	ps := e.eng.peers[0]
	// First tick establishes the base interval; subsequent quiet ticks
	// stretch it toward the cap.
	e.eng.ttnTick(e.k, 0)
	first := ps.ttnInterval
	for i := 0; i < 10; i++ {
		e.eng.ttnTick(e.k, 0)
	}
	if ps.ttnInterval <= first {
		t.Fatalf("interval did not stretch: %v -> %v", first, ps.ttnInterval)
	}
	if ps.ttnInterval > adaptiveConfig().AdaptiveTTNMax {
		t.Fatalf("interval %v exceeded cap", ps.ttnInterval)
	}
}

func TestAdaptiveTTNSnapsBackOnUpdate(t *testing.T) {
	e := newEnv(t, 3, adaptiveConfig())
	ps := e.eng.peers[0]
	for i := 0; i < 10; i++ {
		e.eng.ttnTick(e.k, 0)
	}
	stretched := ps.ttnInterval
	if stretched <= e.eng.cfg.TTN {
		t.Fatalf("precondition: interval not stretched (%v)", stretched)
	}
	e.eng.OnUpdate(e.k, 0)
	e.eng.ttnTick(e.k, 0)
	if ps.ttnInterval != e.eng.cfg.TTN {
		t.Fatalf("interval after update = %v, want base %v", ps.ttnInterval, e.eng.cfg.TTN)
	}
}

func TestAdaptiveTTNReducesQuietTraffic(t *testing.T) {
	// Two identical runs, no updates at all: the adaptive source floods
	// fewer INVALIDATIONs over the same horizon.
	run := func(adaptive bool) uint64 {
		cfg := DefaultConfig()
		if adaptive {
			cfg = adaptiveConfig()
		}
		e := newEnv(t, 4, cfg)
		e.k.RunUntil(40 * time.Minute)
		return e.net.Traffic().Originated(protocol.KindInvalidation)
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive >= fixed {
		t.Fatalf("adaptive TTN originated %d invalidations, fixed %d; want fewer", adaptive, fixed)
	}
}

func TestFixedTTNIntervalConstant(t *testing.T) {
	e := newEnv(t, 3, DefaultConfig())
	ps := e.eng.peers[0]
	for i := 0; i < 5; i++ {
		e.eng.ttnTick(e.k, 0)
	}
	if ps.ttnInterval != DefaultConfig().TTN {
		t.Fatalf("fixed-mode interval drifted to %v", ps.ttnInterval)
	}
}
