// Package energy models each host's battery. The paper's relay-peer
// selection uses the coefficient of energy CE = PER_t / E_MAX (Eq 4.2.7):
// the current energy level normalised by the maximum. A linear drain
// model — a fixed cost per transmission, per reception, and per second of
// idle listening — is enough to exercise that code path; absolute joule
// figures are irrelevant to the protocol comparison.
package energy

import (
	"fmt"
	"sync"
	"time"
)

// Config parameterises the battery model.
type Config struct {
	Capacity float64 // E_MAX, abstract energy units, > 0
	TxCost   float64 // units per transmitted message, >= 0
	RxCost   float64 // units per received message, >= 0
	IdleRate float64 // units per simulated second, >= 0
}

// DefaultConfig returns a battery model in which a host transmitting
// continuously at the paper's default query rate survives well past the
// five-hour simulation, so energy differentiates relay candidates without
// killing nodes mid-run.
func DefaultConfig() Config {
	return Config{
		Capacity: 1_000_000,
		TxCost:   2,
		RxCost:   1,
		IdleRate: 0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("energy: capacity %g must be > 0", c.Capacity)
	}
	if c.TxCost < 0 || c.RxCost < 0 || c.IdleRate < 0 {
		return fmt.Errorf("energy: negative cost (tx=%g rx=%g idle=%g)", c.TxCost, c.RxCost, c.IdleRate)
	}
	return nil
}

// Battery tracks one host's remaining energy. Idle drain is applied lazily
// on each query/charge using the last-settled timestamp, so no periodic
// events are needed. Battery is safe for concurrent use; the simulator is
// single-threaded but metric readers (tests, the stats exporter) may probe
// from other goroutines.
type Battery struct {
	mu        sync.Mutex
	cfg       Config
	remaining float64
	settledAt time.Duration
	tx, rx    uint64
}

// NewBattery returns a full battery settled at t=0.
func NewBattery(cfg Config) (*Battery, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Battery{cfg: cfg, remaining: cfg.Capacity}, nil
}

// settleLocked applies idle drain up to now. Callers hold mu.
func (b *Battery) settleLocked(now time.Duration) {
	if now <= b.settledAt {
		return
	}
	idle := b.cfg.IdleRate * (now - b.settledAt).Seconds()
	b.remaining -= idle
	if b.remaining < 0 {
		b.remaining = 0
	}
	b.settledAt = now
}

// SpendTx charges one transmission at virtual time now.
func (b *Battery) SpendTx(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settleLocked(now)
	b.remaining -= b.cfg.TxCost
	if b.remaining < 0 {
		b.remaining = 0
	}
	b.tx++
}

// SpendRx charges one reception at virtual time now.
func (b *Battery) SpendRx(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settleLocked(now)
	b.remaining -= b.cfg.RxCost
	if b.remaining < 0 {
		b.remaining = 0
	}
	b.rx++
}

// Level returns the remaining energy at time now, after idle drain.
func (b *Battery) Level(now time.Duration) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settleLocked(now)
	return b.remaining
}

// CE returns the coefficient of energy at time now: PER_t / E_MAX
// (Eq 4.2.7), always in [0, 1].
func (b *Battery) CE(now time.Duration) float64 {
	return b.Level(now) / b.cfg.Capacity
}

// Depleted reports whether the battery is empty at time now.
func (b *Battery) Depleted(now time.Duration) bool { return b.Level(now) <= 0 }

// Counters returns the lifetime transmit and receive counts.
func (b *Battery) Counters() (tx, rx uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tx, b.rx
}
