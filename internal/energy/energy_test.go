package energy

import (
	"testing"
	"testing/quick"
	"time"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"zero capacity", Config{TxCost: 1, RxCost: 1}, false},
		{"negative tx", Config{Capacity: 10, TxCost: -1}, false},
		{"negative idle", Config{Capacity: 10, IdleRate: -1}, false},
		{"free radio is fine", Config{Capacity: 10}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewBatteryFull(t *testing.T) {
	b, err := NewBattery(Config{Capacity: 100, TxCost: 1, RxCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Level(0); got != 100 {
		t.Errorf("Level(0) = %g, want 100", got)
	}
	if got := b.CE(0); got != 1 {
		t.Errorf("CE(0) = %g, want 1", got)
	}
}

func TestSpendTxRx(t *testing.T) {
	b, _ := NewBattery(Config{Capacity: 100, TxCost: 3, RxCost: 2})
	b.SpendTx(0)
	b.SpendRx(0)
	if got := b.Level(0); got != 95 {
		t.Errorf("Level = %g, want 95", got)
	}
	tx, rx := b.Counters()
	if tx != 1 || rx != 1 {
		t.Errorf("Counters = %d,%d, want 1,1", tx, rx)
	}
}

func TestIdleDrain(t *testing.T) {
	b, _ := NewBattery(Config{Capacity: 100, IdleRate: 2})
	if got := b.Level(10 * time.Second); got != 80 {
		t.Errorf("Level(10s) = %g, want 80", got)
	}
	// Idle drain is settled, not recomputed from zero.
	if got := b.Level(20 * time.Second); got != 60 {
		t.Errorf("Level(20s) = %g, want 60", got)
	}
}

func TestLevelNeverNegative(t *testing.T) {
	b, _ := NewBattery(Config{Capacity: 5, TxCost: 10})
	b.SpendTx(0)
	if got := b.Level(0); got != 0 {
		t.Errorf("Level = %g, want clamped 0", got)
	}
	if !b.Depleted(0) {
		t.Error("Depleted = false on empty battery")
	}
	if got := b.CE(0); got != 0 {
		t.Errorf("CE = %g, want 0", got)
	}
}

func TestBackwardTimeQueryIsSafe(t *testing.T) {
	b, _ := NewBattery(Config{Capacity: 100, IdleRate: 1})
	l1 := b.Level(50 * time.Second)
	l2 := b.Level(10 * time.Second) // earlier probe
	if l2 != l1 {
		t.Errorf("backward query changed level: %g -> %g", l1, l2)
	}
}

func TestCEBoundsProperty(t *testing.T) {
	f := func(txs uint8, seconds uint16) bool {
		b, err := NewBattery(DefaultConfig())
		if err != nil {
			return false
		}
		for i := 0; i < int(txs); i++ {
			b.SpendTx(0)
		}
		ce := b.CE(time.Duration(seconds) * time.Second)
		return ce >= 0 && ce <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCEMonotoneNonIncreasingProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		b, err := NewBattery(DefaultConfig())
		if err != nil {
			return false
		}
		prev := b.CE(0)
		now := time.Duration(0)
		for _, s := range steps {
			now += time.Duration(s) * time.Second
			if s%2 == 0 {
				b.SpendTx(now)
			} else {
				b.SpendRx(now)
			}
			ce := b.CE(now)
			if ce > prev {
				return false
			}
			prev = ce
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigSurvivesFiveHours(t *testing.T) {
	// The Table 1 run lasts 5 simulated hours; a node that answers a
	// query every 20s (one rx + one tx) must not die.
	b, _ := NewBattery(DefaultConfig())
	now := time.Duration(0)
	for now < 5*time.Hour {
		now += 20 * time.Second
		b.SpendRx(now)
		b.SpendTx(now)
	}
	if b.Depleted(now) {
		t.Fatal("default battery depleted before end of a Table 1 run")
	}
}
