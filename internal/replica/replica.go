// Package replica implements the paper's third future-work direction
// (§6): consistency for replicas, where — unlike the cache model in which
// only a data item's source host may write — any peer holding a replica
// can modify it.
//
// The design is the classic optimistic-replication recipe adapted to the
// MANET substrate the rest of the repository provides:
//
//   - Writes are tagged with a Lamport clock and the writer id; the pair
//     totally orders all writes, and replicas merge by
//     last-writer-wins over that order.
//   - A write is propagated eagerly with a TTL-scoped flood (like RPCC's
//     INVALIDATION tier), reaching every currently connected holder.
//   - A periodic anti-entropy process repairs what the flood missed
//     (partitioned or disconnected holders): each holder sends a digest
//     of its newest write to a random fellow holder; whichever side is
//     behind receives the newer value.
//
// In a connected network with quiescent writers, all holders converge to
// the maximal write — the property test in replica_test.go checks exactly
// that, under churn and partitions healed before the deadline.
package replica

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// Value is one replica's state: the payload plus its ordering tag.
type Value struct {
	Data   string
	Clock  uint64 // Lamport clock of the write
	Writer int    // tie-break between concurrent writes
}

// Newer reports whether v supersedes o in the (Clock, Writer) order.
func (v Value) Newer(o Value) bool {
	if v.Clock != o.Clock {
		return v.Clock > o.Clock
	}
	return v.Writer > o.Writer
}

// Config parameterises the replica manager.
type Config struct {
	// PushTTL is the flood scope of eager write propagation.
	PushTTL int
	// AntiEntropyEvery is the period of the digest exchange.
	AntiEntropyEvery time.Duration
}

// DefaultConfig returns network-wide pushes with 30-second anti-entropy.
func DefaultConfig() Config {
	return Config{PushTTL: 8, AntiEntropyEvery: 30 * time.Second}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PushTTL <= 0 {
		return fmt.Errorf("replica: non-positive push TTL %d", c.PushTTL)
	}
	if c.AntiEntropyEvery <= 0 {
		return fmt.Errorf("replica: non-positive anti-entropy period %v", c.AntiEntropyEvery)
	}
	return nil
}

// Manager runs the replica protocol over a network. It installs itself as
// every node's receiver, so it owns the network — use a dedicated netsim
// instance (the cache-consistency strategies and the replica tier model
// different future systems and are not meant to share one receiver).
type Manager struct {
	cfg     Config
	net     *netsim.Network
	rng     *rand.Rand
	holders map[int][]int   // replica id -> holder nodes
	values  []map[int]Value // per node: replica id -> local value
	clocks  []uint64        // per node: Lamport clock
	started bool
	writes  uint64
	merges  uint64
	syncs   uint64

	writesC *telemetry.Counter
	mergesC *telemetry.Counter
	syncsC  *telemetry.Counter
}

// SetTelemetry attaches a hub before Start. The manager owns its own
// network (no chassis), so the hub is injected directly; a nil hub (the
// default) records nothing.
func (m *Manager) SetTelemetry(h *telemetry.Hub) {
	m.writesC = h.Counter("rpcc_replica_events_total",
		"Replica-tier protocol events.", telemetry.Label{Key: "event", Value: "write"})
	m.mergesC = h.Counter("rpcc_replica_events_total",
		"Replica-tier protocol events.", telemetry.Label{Key: "event", Value: "merge"})
	m.syncsC = h.Counter("rpcc_replica_events_total",
		"Replica-tier protocol events.", telemetry.Label{Key: "event", Value: "sync"})
}

// NewManager builds a manager over net.
func NewManager(cfg Config, net *netsim.Network) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if net == nil {
		return nil, fmt.Errorf("replica: nil network")
	}
	m := &Manager{
		cfg:     cfg,
		net:     net,
		holders: make(map[int][]int),
		values:  make([]map[int]Value, net.Len()),
		clocks:  make([]uint64, net.Len()),
	}
	for i := range m.values {
		m.values[i] = make(map[int]Value)
	}
	return m, nil
}

// Register creates replica id on the given holder nodes with an initial
// empty value. Call before Start.
func (m *Manager) Register(id int, holders []int) error {
	if m.started {
		return fmt.Errorf("replica: register after start")
	}
	if len(holders) < 2 {
		return fmt.Errorf("replica: replica %d needs at least 2 holders", id)
	}
	if _, dup := m.holders[id]; dup {
		return fmt.Errorf("replica: replica %d already registered", id)
	}
	seen := make(map[int]bool, len(holders))
	for _, h := range holders {
		if h < 0 || h >= m.net.Len() {
			return fmt.Errorf("replica: holder %d out of range", h)
		}
		if seen[h] {
			return fmt.Errorf("replica: duplicate holder %d", h)
		}
		seen[h] = true
		m.values[h][id] = Value{}
	}
	cp := make([]int, len(holders))
	copy(cp, holders)
	m.holders[id] = cp
	return nil
}

// Start installs receivers and schedules anti-entropy. Call once, after
// all Register calls.
func (m *Manager) Start(k *sim.Kernel) error {
	if m.started {
		return fmt.Errorf("replica: already started")
	}
	m.started = true
	m.rng = k.Stream("replica")
	for nd := 0; nd < m.net.Len(); nd++ {
		nd := nd
		if err := m.net.SetReceiver(nd, func(kk *sim.Kernel, n int, msg protocol.Message, _ netsim.Meta) {
			m.dispatch(kk, n, msg)
		}); err != nil {
			return err
		}
	}
	// Walk replica ids in sorted order: the stagger stream is consumed once
	// per holder, so map-iteration order would otherwise leak into the
	// schedule and break seed-determinism.
	stagger := k.Stream("replica.stagger")
	ids := make([]int, 0, len(m.holders))
	for id := range m.holders {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for _, h := range m.holders[id] {
			id, h := id, h
			k.After(time.Duration(stagger.Int63n(int64(m.cfg.AntiEntropyEvery))), "replica.ae", func(kk *sim.Kernel) {
				m.antiEntropyTick(kk, h, id)
			})
		}
	}
	return nil
}

// Write applies a local write at node and propagates it. Unlike the cache
// model, ANY holder may write.
func (m *Manager) Write(k *sim.Kernel, node, id int, payload string) error {
	if !m.started {
		return fmt.Errorf("replica: write before start")
	}
	if !m.holds(node, id) {
		return fmt.Errorf("replica: node %d does not hold replica %d", node, id)
	}
	m.clocks[node]++
	v := Value{Data: payload, Clock: m.clocks[node], Writer: node}
	m.apply(node, id, v)
	m.writes++
	m.writesC.Inc()
	msg := protocol.Message{
		Kind:   protocol.KindReplicaWrite,
		Item:   data.ItemID(id),
		Origin: node,
		Seq:    v.Clock,
		Copy:   data.Copy{Value: v.Data},
	}
	return m.net.Flood(node, m.cfg.PushTTL, msg)
}

// Read returns node's current value of replica id.
func (m *Manager) Read(node, id int) (Value, error) {
	if !m.holds(node, id) {
		return Value{}, fmt.Errorf("replica: node %d does not hold replica %d", node, id)
	}
	return m.values[node][id], nil
}

func (m *Manager) holds(node, id int) bool {
	if node < 0 || node >= len(m.values) {
		return false
	}
	_, ok := m.values[node][id]
	return ok
}

// apply merges v into node's state (last-writer-wins) and advances the
// node's Lamport clock past the observed write.
func (m *Manager) apply(node, id int, v Value) {
	if m.clocks[node] < v.Clock {
		m.clocks[node] = v.Clock
	}
	cur := m.values[node][id]
	if v.Newer(cur) {
		m.values[node][id] = v
		m.merges++
		m.mergesC.Inc()
	}
}

func (m *Manager) dispatch(k *sim.Kernel, nd int, msg protocol.Message) {
	id := int(msg.Item)
	switch msg.Kind {
	case protocol.KindReplicaWrite, protocol.KindReplicaSync:
		if !m.holds(nd, id) {
			return // the flood also reaches non-holders; they ignore it
		}
		m.apply(nd, id, Value{Data: msg.Copy.Value, Clock: msg.Seq, Writer: msg.Origin})
		if msg.Kind == protocol.KindReplicaSync {
			m.syncs++
			m.syncsC.Inc()
		}
	case protocol.KindReplicaDigest:
		m.onDigest(k, nd, msg)
	}
}

// antiEntropyTick sends node's digest for replica id to a random fellow
// holder and reschedules.
func (m *Manager) antiEntropyTick(k *sim.Kernel, node, id int) {
	defer k.After(m.cfg.AntiEntropyEvery, "replica.ae", func(kk *sim.Kernel) {
		m.antiEntropyTick(kk, node, id)
	})
	holders := m.holders[id]
	if len(holders) < 2 {
		return
	}
	peer := node
	for peer == node {
		peer = holders[m.rng.Intn(len(holders))]
	}
	cur := m.values[node][id]
	digest := protocol.Message{
		Kind:   protocol.KindReplicaDigest,
		Item:   data.ItemID(id),
		Origin: node,
		Seq:    cur.Clock,
		// Version doubles as the writer tie-break in the digest.
		Version: data.Version(cur.Writer),
	}
	_ = m.net.Unicast(node, peer, digest)
}

// onDigest compares the sender's tag with ours: if we are newer we push
// our value back; if we are older we send our own digest, prompting the
// newer side to push. Equal tags terminate the exchange.
func (m *Manager) onDigest(k *sim.Kernel, nd int, msg protocol.Message) {
	id := int(msg.Item)
	if !m.holds(nd, id) {
		return
	}
	theirs := Value{Clock: msg.Seq, Writer: int(msg.Version)}
	mine := m.values[nd][id]
	switch {
	case mine.Newer(theirs):
		sync := protocol.Message{
			Kind:   protocol.KindReplicaSync,
			Item:   msg.Item,
			Origin: mine.Writer,
			Seq:    mine.Clock,
			Copy:   data.Copy{Value: mine.Data},
		}
		_ = m.net.Unicast(nd, msg.Origin, sync)
	case theirs.Newer(mine):
		reply := protocol.Message{
			Kind:    protocol.KindReplicaDigest,
			Item:    msg.Item,
			Origin:  nd,
			Seq:     mine.Clock,
			Version: data.Version(mine.Writer),
		}
		_ = m.net.Unicast(nd, msg.Origin, reply)
	}
}

// Stats returns lifetime counters: local writes, merges applied (local or
// remote values that advanced a holder), and anti-entropy repairs.
func (m *Manager) Stats() (writes, merges, syncs uint64) {
	return m.writes, m.merges, m.syncs
}

// Converged reports whether every holder of id sees the same value, and
// returns that value when they do.
func (m *Manager) Converged(id int) (Value, bool) {
	holders, ok := m.holders[id]
	if !ok || len(holders) == 0 {
		return Value{}, false
	}
	first := m.values[holders[0]][id]
	for _, h := range holders[1:] {
		if m.values[h][id] != first {
			return Value{}, false
		}
	}
	return first, true
}
