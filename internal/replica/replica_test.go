package replica

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// staticSource pins nodes on a 200m chain.
type staticSource struct{ pts []geo.Point }

func (s *staticSource) Len() int { return len(s.pts) }
func (s *staticSource) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(s.pts) {
		dst = make([]geo.Point, len(s.pts))
	}
	dst = dst[:len(s.pts)]
	copy(dst, s.pts)
	return dst
}

func chain(n int) *staticSource {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200}
	}
	return &staticSource{pts: pts}
}

type env struct {
	k     *sim.Kernel
	net   *netsim.Network
	mgr   *Manager
	churn *churn.Process
}

func newEnv(t *testing.T, n int, seed int64) *env {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(seed))
	cp, err := churn.NewProcess(churn.Config{Disabled: true}, n, k)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(netsim.DefaultConfig(), k, chain(n), cp, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(DefaultConfig(), net)
	if err != nil {
		t.Fatal(err)
	}
	return &env{k: k, net: net, mgr: mgr, churn: cp}
}

func TestValueOrdering(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool // a.Newer(b)
	}{
		{"higher clock wins", Value{Clock: 2}, Value{Clock: 1}, true},
		{"lower clock loses", Value{Clock: 1}, Value{Clock: 2}, false},
		{"tie broken by writer", Value{Clock: 1, Writer: 5}, Value{Clock: 1, Writer: 3}, true},
		{"equal is not newer", Value{Clock: 1, Writer: 3}, Value{Clock: 1, Writer: 3}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Newer(tt.b); got != tt.want {
				t.Errorf("Newer = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueOrderingTotalProperty(t *testing.T) {
	// Exactly one of a.Newer(b), b.Newer(a), a==b holds.
	f := func(c1, c2 uint32, w1, w2 uint8) bool {
		a := Value{Clock: uint64(c1), Writer: int(w1)}
		b := Value{Clock: uint64(c2), Writer: int(w2)}
		n1, n2, eq := a.Newer(b), b.Newer(a), a.Clock == b.Clock && a.Writer == b.Writer
		count := 0
		for _, v := range []bool{n1, n2, eq} {
			if v {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{PushTTL: 0, AntiEntropyEvery: time.Second}).Validate() == nil {
		t.Error("zero TTL accepted")
	}
	if (Config{PushTTL: 8}).Validate() == nil {
		t.Error("zero anti-entropy period accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	e := newEnv(t, 4, 1)
	if e.mgr.Register(1, []int{0}) == nil {
		t.Error("single holder accepted")
	}
	if e.mgr.Register(1, []int{0, 99}) == nil {
		t.Error("out-of-range holder accepted")
	}
	if e.mgr.Register(1, []int{0, 0}) == nil {
		t.Error("duplicate holder accepted")
	}
	if err := e.mgr.Register(1, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if e.mgr.Register(1, []int{0, 1}) == nil {
		t.Error("duplicate replica id accepted")
	}
	if err := e.mgr.Start(e.k); err != nil {
		t.Fatal(err)
	}
	if e.mgr.Register(2, []int{0, 1}) == nil {
		t.Error("register after start accepted")
	}
	if e.mgr.Start(e.k) == nil {
		t.Error("double start accepted")
	}
}

func TestWritePropagatesEagerly(t *testing.T) {
	e := newEnv(t, 4, 2)
	if err := e.mgr.Register(7, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.mgr.Start(e.k); err != nil {
		t.Fatal(err)
	}
	if err := e.mgr.Write(e.k, 0, 7, "hello"); err != nil {
		t.Fatal(err)
	}
	e.k.RunUntil(5 * time.Second)
	for h := 0; h < 4; h++ {
		v, err := e.mgr.Read(h, 7)
		if err != nil {
			t.Fatal(err)
		}
		if v.Data != "hello" {
			t.Errorf("holder %d = %q, want hello", h, v.Data)
		}
	}
}

func TestAnyHolderMayWrite(t *testing.T) {
	e := newEnv(t, 4, 3)
	e.mgr.Register(1, []int{0, 2, 3})
	e.mgr.Start(e.k)
	// Node 2 is NOT the "owner" of anything — it can still write.
	if err := e.mgr.Write(e.k, 2, 1, "from-two"); err != nil {
		t.Fatal(err)
	}
	// Non-holders cannot.
	if e.mgr.Write(e.k, 1, 1, "nope") == nil {
		t.Error("non-holder write accepted")
	}
	e.k.RunUntil(5 * time.Second)
	if v, _ := e.mgr.Read(0, 1); v.Data != "from-two" {
		t.Errorf("holder 0 = %q", v.Data)
	}
}

func TestLastWriterWinsUnderConcurrency(t *testing.T) {
	e := newEnv(t, 4, 4)
	e.mgr.Register(1, []int{0, 1, 2, 3})
	e.mgr.Start(e.k)
	// Two writes at the same instant from different writers: same clock,
	// writer id breaks the tie deterministically everywhere.
	e.mgr.Write(e.k, 0, 1, "zero")
	e.mgr.Write(e.k, 3, 1, "three")
	e.k.RunUntil(10 * time.Second)
	want, ok := e.mgr.Converged(1)
	if !ok {
		t.Fatal("replicas did not converge")
	}
	if want.Data != "three" { // writer 3 > writer 0 at equal clocks
		t.Errorf("converged to %q, want three (highest writer at equal clock)", want.Data)
	}
}

func TestAntiEntropyHealsPartition(t *testing.T) {
	e := newEnv(t, 4, 5)
	e.mgr.Register(1, []int{0, 1, 2, 3})
	e.mgr.Start(e.k)
	// Node 3 drops off; node 0 writes; the eager flood misses node 3.
	if err := e.churn.ForceState(e.k, 3, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	e.mgr.Write(e.k, 0, 1, "v1")
	e.k.RunUntil(10 * time.Second)
	if v, _ := e.mgr.Read(3, 1); v.Data == "v1" {
		t.Fatal("disconnected node received the flood")
	}
	// Reconnect: anti-entropy repairs within a few periods.
	e.churn.ForceState(e.k, 3, churn.StateConnected)
	e.k.RunUntil(e.k.Now() + 5*DefaultConfig().AntiEntropyEvery)
	if v, _ := e.mgr.Read(3, 1); v.Data != "v1" {
		t.Fatalf("anti-entropy did not repair: %q", v.Data)
	}
	_, _, syncs := e.mgr.Stats()
	if syncs == 0 {
		t.Error("no anti-entropy syncs recorded")
	}
}

func TestConvergenceProperty(t *testing.T) {
	// Property: whatever the (bounded) write schedule, once writes stop
	// and anti-entropy runs, all holders converge to one value.
	f := func(schedule []uint8) bool {
		e := newEnv(t, 5, int64(len(schedule))+100)
		e.mgr.Register(1, []int{0, 1, 2, 3, 4})
		if err := e.mgr.Start(e.k); err != nil {
			return false
		}
		for i, b := range schedule {
			writer := int(b) % 5
			at := time.Duration(i) * 3 * time.Second
			i := i
			e.k.At(at, "write", func(kk *sim.Kernel) {
				_ = e.mgr.Write(kk, writer, 1, fmt.Sprintf("w%d", i))
			})
		}
		quiet := time.Duration(len(schedule))*3*time.Second + 10*DefaultConfig().AntiEntropyEvery
		e.k.RunUntil(quiet)
		_, converged := e.mgr.Converged(1)
		return converged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteValidation(t *testing.T) {
	e := newEnv(t, 3, 6)
	e.mgr.Register(1, []int{0, 1})
	if e.mgr.Write(e.k, 0, 1, "early") == nil {
		t.Error("write before start accepted")
	}
	e.mgr.Start(e.k)
	if _, err := e.mgr.Read(2, 1); err == nil {
		t.Error("read from non-holder accepted")
	}
	if _, err := e.mgr.Read(-1, 1); err == nil {
		t.Error("read from negative node accepted")
	}
}

func TestConvergedOnUnknownReplica(t *testing.T) {
	e := newEnv(t, 3, 7)
	if _, ok := e.mgr.Converged(42); ok {
		t.Error("unknown replica reported converged")
	}
}
