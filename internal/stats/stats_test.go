package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/rpcc/internal/protocol"
)

func TestTrafficCounters(t *testing.T) {
	tr := NewTraffic()
	tr.RecordOriginated(protocol.KindPoll)
	tr.RecordTx(protocol.KindPoll, 32)
	tr.RecordTx(protocol.KindPoll, 32)
	tr.RecordTx(protocol.KindUpdate, 1056)
	tr.RecordDelivered(protocol.KindPoll)
	tr.RecordDropped(protocol.KindUpdate, DropLoss)

	if got := tr.Tx(protocol.KindPoll); got != 2 {
		t.Errorf("Tx(POLL) = %d, want 2", got)
	}
	if got := tr.TotalTx(); got != 3 {
		t.Errorf("TotalTx = %d, want 3", got)
	}
	if got := tr.TotalBytes(); got != 32+32+1056 {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := tr.Originated(protocol.KindPoll); got != 1 {
		t.Errorf("Originated = %d", got)
	}
	if got := tr.Delivered(protocol.KindPoll); got != 1 {
		t.Errorf("Delivered = %d", got)
	}
	if got := tr.Dropped(protocol.KindUpdate); got != 1 {
		t.Errorf("Dropped = %d", got)
	}
}

func TestTrafficDropCauses(t *testing.T) {
	tr := NewTraffic()
	tr.RecordDropped(protocol.KindUpdate, DropLoss)
	tr.RecordDropped(protocol.KindUpdate, DropLoss)
	tr.RecordDropped(protocol.KindUpdate, DropPartition)
	tr.RecordDropped(protocol.KindPoll, DropDisconnected)
	tr.RecordDropped(protocol.KindPoll, DropNoRoute)

	if got := tr.Dropped(protocol.KindUpdate); got != 3 {
		t.Errorf("Dropped(UPDATE) = %d, want 3 (sum over causes)", got)
	}
	if got := tr.DroppedByCause(protocol.KindUpdate, DropLoss); got != 2 {
		t.Errorf("DroppedByCause(UPDATE, loss) = %d, want 2", got)
	}
	if got := tr.DroppedByCause(protocol.KindUpdate, DropPartition); got != 1 {
		t.Errorf("DroppedByCause(UPDATE, partition) = %d, want 1", got)
	}
	if got := tr.DroppedByCause(protocol.KindUpdate, DropNoRoute); got != 0 {
		t.Errorf("DroppedByCause(UPDATE, no-route) = %d, want 0", got)
	}
	if got := tr.TotalDroppedByCause(DropLoss); got != 2 {
		t.Errorf("TotalDroppedByCause(loss) = %d, want 2", got)
	}
	if got := tr.TotalDroppedByCause(DropNoRoute); got != 1 {
		t.Errorf("TotalDroppedByCause(no-route) = %d, want 1", got)
	}

	// Out-of-range causes are folded into no-route and surfaced as
	// invalid records rather than corrupting memory or vanishing.
	tr.RecordDropped(protocol.KindUpdate, DropCause(99))
	if got := tr.Invalid(); got != 1 {
		t.Errorf("Invalid after bad cause = %d, want 1", got)
	}
	if got := tr.DroppedByCause(protocol.KindUpdate, DropNoRoute); got != 1 {
		t.Errorf("bad cause not folded into no-route: %d", got)
	}
	if got := tr.DroppedByCause(protocol.KindUpdate, DropCause(99)); got != 0 {
		t.Errorf("DroppedByCause(bad cause) = %d, want 0", got)
	}

	// Merge adds cause-wise.
	other := NewTraffic()
	other.RecordDropped(protocol.KindUpdate, DropPartition)
	tr.Merge(other)
	if got := tr.DroppedByCause(protocol.KindUpdate, DropPartition); got != 2 {
		t.Errorf("merged DroppedByCause(partition) = %d, want 2", got)
	}
}

// TestDroppedUnknownLedger pins the kindless drop row: undecodable
// frames have no protocol kind, so they are accounted on their own
// ledger — surfaced by DroppedUnknown and folded into the per-cause
// totals — without touching the invalid-kind bug counter.
func TestDroppedUnknownLedger(t *testing.T) {
	tr := NewTraffic()
	tr.RecordDroppedUnknown(DropDecode)
	tr.RecordDroppedUnknown(DropDecode)
	tr.RecordDropped(protocol.KindPoll, DropDecode)

	if got := tr.DroppedUnknown(DropDecode); got != 2 {
		t.Errorf("DroppedUnknown(decode) = %d, want 2", got)
	}
	if got := tr.TotalDroppedByCause(DropDecode); got != 3 {
		t.Errorf("TotalDroppedByCause(decode) = %d, want 3 (kinded + kindless)", got)
	}
	if got := tr.Invalid(); got != 0 {
		t.Errorf("kindless drops bled into the invalid counter: %d", got)
	}

	// Out-of-range causes fold into no-route and surface as invalid,
	// mirroring RecordDropped.
	tr.RecordDroppedUnknown(DropCause(99))
	if got := tr.DroppedUnknown(DropNoRoute); got != 1 {
		t.Errorf("folded DroppedUnknown(no-route) = %d, want 1", got)
	}
	if got := tr.Invalid(); got != 1 {
		t.Errorf("invalid record not surfaced: %d", got)
	}
	if got := tr.DroppedUnknown(DropCause(99)); got != 0 {
		t.Errorf("DroppedUnknown(bad cause) = %d, want 0", got)
	}

	// Merge folds the kindless row too.
	other := NewTraffic()
	other.RecordDroppedUnknown(DropDecode)
	tr.Merge(other)
	if got := tr.DroppedUnknown(DropDecode); got != 3 {
		t.Errorf("merged DroppedUnknown(decode) = %d, want 3", got)
	}
}

func TestDropCauseString(t *testing.T) {
	for c, want := range map[DropCause]string{
		DropLoss: "loss", DropPartition: "partition",
		DropDisconnected: "disconnected", DropNoRoute: "no-route",
		DropPeerDown: "peer-down", DropDecode: "decode",
		DropCause(99): "invalid",
	} {
		if got := c.String(); got != want {
			t.Errorf("DropCause(%d).String = %q, want %q", c, got, want)
		}
	}
}

func TestTrafficMerge(t *testing.T) {
	a := NewTraffic()
	a.RecordOriginated(protocol.KindPoll)
	a.RecordTx(protocol.KindPoll, 32)
	a.RecordTx(protocol.KindUpdate, 1056)
	a.RecordDelivered(protocol.KindPoll)

	b := NewTraffic()
	b.RecordTx(protocol.KindPoll, 32)
	b.RecordTx(protocol.KindInvalidation, 64)
	b.RecordDropped(protocol.KindUpdate, DropPartition)

	a.Merge(b)
	if got := a.Tx(protocol.KindPoll); got != 2 {
		t.Errorf("merged Tx(POLL) = %d, want 2", got)
	}
	if got := a.Tx(protocol.KindInvalidation); got != 1 {
		t.Errorf("merged Tx(INVALIDATION) = %d, want 1", got)
	}
	if got := a.TotalTx(); got != 4 {
		t.Errorf("merged TotalTx = %d, want 4", got)
	}
	if got := a.TotalBytes(); got != 32+1056+32+64 {
		t.Errorf("merged TotalBytes = %d", got)
	}
	if got := a.Originated(protocol.KindPoll); got != 1 {
		t.Errorf("merged Originated = %d, want 1", got)
	}
	if got := a.Dropped(protocol.KindUpdate); got != 1 {
		t.Errorf("merged Dropped = %d, want 1", got)
	}
	// The source ledger is read-only under Merge.
	if got := b.TotalTx(); got != 2 {
		t.Errorf("source ledger mutated: TotalTx = %d, want 2", got)
	}

	// Self-merge doubles, and a nil merge is a no-op.
	b.Merge(b)
	if got := b.TotalTx(); got != 4 {
		t.Errorf("self-merge TotalTx = %d, want 4", got)
	}
	b.Merge(nil)
	if got := b.TotalTx(); got != 4 {
		t.Errorf("nil merge TotalTx = %d, want 4", got)
	}
}

// TestTrafficMergeConcurrent exercises cross-direction concurrent merges
// under the race detector: the snapshot-then-add locking discipline must
// neither deadlock nor race.
func TestTrafficMergeConcurrent(t *testing.T) {
	a, b := NewTraffic(), NewTraffic()
	a.RecordTx(protocol.KindPoll, 1)
	b.RecordTx(protocol.KindUpdate, 1)
	done := make(chan struct{}, 2)
	go func() {
		for i := 0; i < 100; i++ {
			a.Merge(b)
		}
		done <- struct{}{}
	}()
	go func() {
		for i := 0; i < 100; i++ {
			b.Merge(a)
		}
		done <- struct{}{}
	}()
	<-done
	<-done
	if a.TotalTx() == 0 || b.TotalTx() == 0 {
		t.Fatal("merge lost all counters")
	}
}

func TestTrafficSnapshotSortedAndFiltered(t *testing.T) {
	tr := NewTraffic()
	tr.RecordTx(protocol.KindPollAckA, 32)
	tr.RecordTx(protocol.KindInvalidation, 32)
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(snap))
	}
	if snap[0].Kind != protocol.KindInvalidation || snap[1].Kind != protocol.KindPollAckA {
		t.Errorf("Snapshot order = %v,%v", snap[0].Kind, snap[1].Kind)
	}
	if !strings.Contains(tr.String(), "INVALIDATION=1") {
		t.Errorf("String = %q", tr.String())
	}
}

func TestTrafficInvalidKindGoesToSentinel(t *testing.T) {
	tr := NewTraffic()
	tr.RecordTx(protocol.KindInvalid, 10)
	if got := tr.TotalTx(); got != 1 {
		t.Errorf("TotalTx = %d, want 1 (sentinel slot)", got)
	}
	if snap := tr.Snapshot(); len(snap) != 0 {
		t.Errorf("Snapshot exposed sentinel slot: %v", snap)
	}
}

func TestLatencyEmpty(t *testing.T) {
	l := NewLatency()
	if l.Count() != 0 || l.Mean() != 0 || l.Min() != 0 || l.Max() != 0 {
		t.Error("empty recorder returned non-zero summary")
	}
	if l.Quantile(0.5) != 0 {
		t.Error("empty quantile non-zero")
	}
}

func TestLatencyMoments(t *testing.T) {
	l := NewLatency()
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		l.Record(d)
	}
	if got := l.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v, want 20ms", got)
	}
	if got := l.Min(); got != 10*time.Millisecond {
		t.Errorf("Min = %v", got)
	}
	if got := l.Max(); got != 30*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	if got := l.Count(); got != 3 {
		t.Errorf("Count = %d", got)
	}
}

func TestLatencyNegativeClamped(t *testing.T) {
	l := NewLatency()
	l.Record(-time.Second)
	if got := l.Min(); got != 0 {
		t.Errorf("Min = %v, want 0", got)
	}
}

func TestLatencyQuantileBounds(t *testing.T) {
	l := NewLatency()
	for i := 0; i < 99; i++ {
		l.Record(time.Millisecond)
	}
	l.Record(time.Minute)
	p50 := l.Quantile(0.5)
	p995 := l.Quantile(0.995)
	if p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p995 < time.Minute/2 {
		t.Errorf("p99.5 = %v, want >= 30s", p995)
	}
	if got := l.Quantile(2); got < p995 {
		t.Errorf("Quantile(2) = %v below p99.5", got)
	}
}

func TestLatencyQuantileUpperBoundProperty(t *testing.T) {
	// Property: Quantile(1) is an upper bound of every recorded sample's
	// bucket edge, and quantiles are monotone in q.
	f := func(ms []uint16) bool {
		if len(ms) == 0 {
			return true
		}
		l := NewLatency()
		var max time.Duration
		for _, m := range ms {
			d := time.Duration(m) * time.Millisecond
			l.Record(d)
			if d > max {
				max = d
			}
		}
		q1 := l.Quantile(1)
		if q1 < max/2 {
			return false
		}
		return l.Quantile(0.25) <= l.Quantile(0.5) && l.Quantile(0.5) <= l.Quantile(0.99)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketForMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{0, time.Millisecond, 2 * time.Millisecond, time.Second, time.Minute, time.Hour} {
		b := bucketFor(d)
		if b < prev {
			t.Fatalf("bucketFor not monotone at %v", d)
		}
		if b >= nBuckets {
			t.Fatalf("bucket %d out of range for %v", b, d)
		}
		prev = b
	}
}

func TestStaleness(t *testing.T) {
	s := NewStaleness()
	s.Record(0)
	s.Record(3 * time.Second)
	s.Record(time.Second)
	s.Record(-time.Second) // clamped
	if got := s.Count(); got != 4 {
		t.Errorf("Count = %d", got)
	}
	if got := s.NonFresh(); got != 2 {
		t.Errorf("NonFresh = %d, want 2", got)
	}
	if got := s.Max(); got != 3*time.Second {
		t.Errorf("Max = %v", got)
	}
	// Sorted samples: [0, 0, 1s, 3s]; the q-th sample is at index
	// ceil(q·n)−1, so the median lands on the second zero.
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median = %v, want 0", got)
	}
	if got := s.Quantile(0.75); got != time.Second {
		t.Errorf("p75 = %v, want 1s", got)
	}
	if got := s.Quantile(1); got != 3*time.Second {
		t.Errorf("p100 = %v", got)
	}
}

func TestStalenessEmpty(t *testing.T) {
	s := NewStaleness()
	if s.Count() != 0 || s.Max() != 0 || s.Quantile(0.9) != 0 {
		t.Error("empty staleness returned non-zero")
	}
}

func TestLatencyString(t *testing.T) {
	l := NewLatency()
	l.Record(time.Second)
	if got := l.String(); !strings.Contains(got, "n=1") {
		t.Errorf("String = %q", got)
	}
}

// TestTrafficInvalidCounterVisible checks that out-of-range kinds are
// explicitly counted instead of silently folding into slot 0: the totals
// stay honest AND the bug is visible through Invalid().
func TestTrafficInvalidCounterVisible(t *testing.T) {
	tr := NewTraffic()
	tr.RecordTx(protocol.KindInvalid, 10)
	tr.RecordTx(protocol.Kind(protocol.NumKinds), 5) // one past the end
	tr.RecordTx(protocol.Kind(200), 1)
	tr.RecordOriginated(protocol.Kind(-1))
	tr.RecordDelivered(protocol.Kind(99))
	tr.RecordDropped(protocol.Kind(99), DropLoss)
	if got := tr.Invalid(); got != 6 {
		t.Errorf("Invalid = %d, want 6", got)
	}
	if got := tr.InvalidTx(); got != 3 {
		t.Errorf("InvalidTx = %d, want 3", got)
	}
	if got := tr.TotalTx(); got != 3 {
		t.Errorf("TotalTx = %d, want 3 (sentinel slot keeps totals honest)", got)
	}
	// A valid record does not disturb the invalid tally.
	tr.RecordTx(protocol.KindPoll, 8)
	if got := tr.Invalid(); got != 6 {
		t.Errorf("Invalid after valid record = %d, want 6", got)
	}

	// Merge propagates the invalid count.
	other := NewTraffic()
	other.RecordTx(protocol.Kind(250), 1)
	tr.Merge(other)
	if got := tr.Invalid(); got != 7 {
		t.Errorf("merged Invalid = %d, want 7", got)
	}
}

func TestLatencySingleSample(t *testing.T) {
	l := NewLatency()
	l.Record(7 * time.Millisecond)
	if l.Count() != 1 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Mean() != 7*time.Millisecond || l.Min() != 7*time.Millisecond || l.Max() != 7*time.Millisecond {
		t.Errorf("moments = mean %v min %v max %v, want 7ms each", l.Mean(), l.Min(), l.Max())
	}
	// Every positive quantile of a single sample resolves to that
	// sample's bucket upper bound, never below the sample itself
	// (q <= 0 is defined as 0).
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := l.Quantile(q); got < 7*time.Millisecond {
			t.Errorf("Quantile(%g) = %v below the only sample", q, got)
		}
	}
}

// TestBucketForEdges pins the logarithmic bucket boundaries: bucket b>0
// covers milliseconds in [2^(b-1), 2^b - 1], bucket 0 is sub-millisecond.
func TestBucketForEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{999 * time.Microsecond, 0}, // truncates to 0ms
		{time.Millisecond, 1},
		{2 * time.Millisecond, 2},
		{3 * time.Millisecond, 2},
		{4 * time.Millisecond, 3},
		{1023 * time.Millisecond, 10},
		{1024 * time.Millisecond, 11},
		{24 * 24 * time.Hour, nBuckets - 1}, // beyond the last bound clamps
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
