// Package stats collects the metrics the paper's evaluation reports:
// network traffic (message transmissions, per type and total, plus bytes)
// and query latency (the figures plot it in log scale, so the recorder
// keeps logarithmic buckets alongside exact moments). A staleness recorder
// backs the consistency auditor.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/manetlab/rpcc/internal/protocol"
)

// DropCause classifies why a message was abandoned in flight. Fault
// campaigns are undiagnosable when every drop folds into one counter:
// "the channel ate it", "the receiver was down", "the partition cut the
// link" and "routing found no path" call for different protocol fixes,
// so the ledger keeps them apart.
type DropCause int

// Drop causes.
const (
	// DropLoss: the link-level loss draw (uniform LossRate or an
	// installed loss model such as Gilbert–Elliott) ate the reception.
	DropLoss DropCause = iota
	// DropPartition: a fault-plane link cut severed the hop.
	DropPartition
	// DropDisconnected: an endpoint was down (churn, battery, crash) at
	// origination or while the frame was in the air.
	DropDisconnected
	// DropNoRoute: routing failure — no path, hop/TTL bound exhausted,
	// greedy-forwarding void, or route discovery timed out.
	DropNoRoute
	// DropPeerDown: a wire-level send to a peer failed past the bounded
	// retry — the live-transport analogue of DropDisconnected, kept
	// separate because on real sockets "the kernel refused the write"
	// and "the simulator knew the endpoint was down" are different
	// diagnoses.
	DropPeerDown
	// DropDecode: a received datagram failed frame decoding and was
	// discarded before its kind was knowable (wire transports only).
	DropDecode
	// NumDropCauses sizes per-cause arrays.
	NumDropCauses
)

// String names the cause for metric labels.
func (c DropCause) String() string {
	switch c {
	case DropLoss:
		return "loss"
	case DropPartition:
		return "partition"
	case DropDisconnected:
		return "disconnected"
	case DropNoRoute:
		return "no-route"
	case DropPeerDown:
		return "peer-down"
	case DropDecode:
		return "decode"
	default:
		return "invalid"
	}
}

// Traffic accumulates message counters. One "transmission" is one
// link-level send: each hop of a unicast and each node's rebroadcast
// during a flood count once, matching how GloMoSim-era studies report
// "number of messages". Safe for concurrent reads while the (single
// threaded) simulation writes.
type Traffic struct {
	mu         sync.Mutex
	tx         [protocol.NumKinds]uint64
	bytes      [protocol.NumKinds]uint64
	originated [protocol.NumKinds]uint64
	delivered  [protocol.NumKinds]uint64
	dropped    [protocol.NumKinds][NumDropCauses]uint64
	// droppedUnknown counts drops whose kind is unknowable — a datagram
	// that failed frame decoding has no kind by construction, so binning
	// it under a real kind (or the invalid-kind bug counter) would lie.
	droppedUnknown [NumDropCauses]uint64
	// invalid counts records that arrived with an out-of-range kind.
	// Slot 0 of the arrays still absorbs the sample (so totals stay
	// honest), but the bug is surfaced explicitly instead of hiding in a
	// slot no report ever prints.
	invalid uint64
}

// NewTraffic returns an empty traffic ledger.
func NewTraffic() *Traffic { return &Traffic{} }

// idx maps a kind to its array slot, routing invalid kinds to the
// KindInvalid slot. Callers must bump t.invalid when it returns 0 for an
// invalid kind; use record() so the accounting cannot be forgotten.
func idx(k protocol.Kind) int {
	if !k.Valid() {
		return 0
	}
	return int(k)
}

// record returns the slot for k, counting invalid kinds visibly.
func (t *Traffic) record(k protocol.Kind) int {
	if !k.Valid() {
		t.invalid++
		return 0
	}
	return int(k)
}

// RecordTx records one link-level transmission of size bytes.
func (t *Traffic) RecordTx(k protocol.Kind, bytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := t.record(k)
	t.tx[i]++
	t.bytes[i] += uint64(bytes)
}

// RecordOriginated records a message entering the network at its origin.
func (t *Traffic) RecordOriginated(k protocol.Kind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.originated[t.record(k)]++
}

// RecordDelivered records a message reaching a destination handler.
func (t *Traffic) RecordDelivered(k protocol.Kind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.delivered[t.record(k)]++
}

// RecordDropped records a message abandoned in flight, attributed to a
// cause. Out-of-range causes fold into DropNoRoute and count as an
// invalid record, mirroring how invalid kinds are surfaced.
func (t *Traffic) RecordDropped(k protocol.Kind, cause DropCause) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cause < 0 || cause >= NumDropCauses {
		t.invalid++
		cause = DropNoRoute
	}
	t.dropped[t.record(k)][cause]++
}

// RecordDroppedUnknown records a drop whose protocol kind is unknowable
// (an undecodable datagram). Out-of-range causes fold into DropNoRoute
// and count as an invalid record, mirroring RecordDropped.
func (t *Traffic) RecordDroppedUnknown(cause DropCause) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cause < 0 || cause >= NumDropCauses {
		t.invalid++
		cause = DropNoRoute
	}
	t.droppedUnknown[cause]++
}

// DroppedUnknown returns the kindless drop count for one cause.
func (t *Traffic) DroppedUnknown(cause DropCause) uint64 {
	if cause < 0 || cause >= NumDropCauses {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedUnknown[cause]
}

// Invalid returns how many records carried an out-of-range kind — zero in
// a correct simulation; anything else is an accounting bug upstream. The
// telemetry snapshot exports it as rpcc_invalid_kind_total.
func (t *Traffic) Invalid() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.invalid
}

// InvalidTx returns the transmission count absorbed by the KindInvalid
// slot (the samples behind Invalid's tx records).
func (t *Traffic) InvalidTx() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tx[0]
}

// Merge adds every counter of other into t — the cross-run aggregation
// primitive: fold per-run ledgers from independent simulations (e.g. a
// fleet of replica runs) into one combined ledger. Merge snapshots other
// under its own lock before locking t, so concurrent merges in either
// direction cannot deadlock; merging a ledger into itself doubles it,
// as the arithmetic says it should. Merging nil is a no-op.
func (t *Traffic) Merge(other *Traffic) {
	if other == nil {
		return
	}
	other.mu.Lock()
	tx, bytes := other.tx, other.bytes
	originated, delivered, dropped := other.originated, other.delivered, other.dropped
	droppedUnknown := other.droppedUnknown
	invalid := other.invalid
	other.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < protocol.NumKinds; i++ {
		t.tx[i] += tx[i]
		t.bytes[i] += bytes[i]
		t.originated[i] += originated[i]
		t.delivered[i] += delivered[i]
		for c := range t.dropped[i] {
			t.dropped[i][c] += dropped[i][c]
		}
	}
	for c := range t.droppedUnknown {
		t.droppedUnknown[c] += droppedUnknown[c]
	}
	t.invalid += invalid
}

// Tx returns the transmission count for one kind.
func (t *Traffic) Tx(k protocol.Kind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tx[idx(k)]
}

// TotalTx returns the total link-level transmissions across all kinds —
// the y-axis of Fig 7 and Fig 9(a).
func (t *Traffic) TotalTx() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum uint64
	for _, v := range t.tx {
		sum += v
	}
	return sum
}

// TotalBytes returns total bytes transmitted.
func (t *Traffic) TotalBytes() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum uint64
	for _, v := range t.bytes {
		sum += v
	}
	return sum
}

// Delivered returns the delivery count for one kind.
func (t *Traffic) Delivered(k protocol.Kind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.delivered[idx(k)]
}

// Originated returns the origination count for one kind.
func (t *Traffic) Originated(k protocol.Kind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.originated[idx(k)]
}

// Dropped returns the drop count for one kind, summed across causes —
// the figure reports only need the total; fault diagnosis reads the
// per-cause split via DroppedByCause.
func (t *Traffic) Dropped(k protocol.Kind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum uint64
	for _, v := range t.dropped[idx(k)] {
		sum += v
	}
	return sum
}

// DroppedByCause returns the drop count for one kind and cause.
func (t *Traffic) DroppedByCause(k protocol.Kind, cause DropCause) uint64 {
	if cause < 0 || cause >= NumDropCauses {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped[idx(k)][cause]
}

// TotalDroppedByCause sums one cause's drops across all kinds — the
// quick partition-vs-loss diagnostic a chaos run prints. The kindless
// row (undecodable frames) is included: a decode drop has no kind but
// is still a drop of that cause.
func (t *Traffic) TotalDroppedByCause(cause DropCause) uint64 {
	if cause < 0 || cause >= NumDropCauses {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sum := t.droppedUnknown[cause]
	for k := 0; k < protocol.NumKinds; k++ {
		sum += t.dropped[k][cause]
	}
	return sum
}

// Snapshot returns per-kind transmission counts for every kind that saw
// traffic, sorted by kind, for reports.
func (t *Traffic) Snapshot() []KindCount {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []KindCount
	for k := 1; k < protocol.NumKinds; k++ {
		if t.tx[k] > 0 {
			out = append(out, KindCount{Kind: protocol.Kind(k), Tx: t.tx[k], Bytes: t.bytes[k]})
		}
	}
	return out
}

// KindCount is one row of a traffic snapshot.
type KindCount struct {
	Kind  protocol.Kind
	Tx    uint64
	Bytes uint64
}

// String renders the snapshot compactly for traces and reports.
func (t *Traffic) String() string {
	snap := t.Snapshot()
	parts := make([]string, 0, len(snap))
	for _, kc := range snap {
		parts = append(parts, fmt.Sprintf("%v=%d", kc.Kind, kc.Tx))
	}
	return fmt.Sprintf("total=%d [%s]", t.TotalTx(), strings.Join(parts, " "))
}

// Latency records a duration distribution with exact moments plus
// logarithmic buckets (powers of two from 1 ms), because Fig 8 plots
// latency on a log scale spanning milliseconds to minutes.
type Latency struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [nBuckets]uint64
}

const nBuckets = 32 // 1ms * 2^31 ≈ 24 days: more than any query waits

// NewLatency returns an empty recorder.
func NewLatency() *Latency { return &Latency{min: math.MaxInt64} }

func bucketFor(d time.Duration) int {
	ms := d.Milliseconds()
	b := 0
	for ms > 0 && b < nBuckets-1 {
		ms >>= 1
		b++
	}
	return b
}

// Record adds one sample. Negative samples are clamped to zero (they can
// only arise from caller bugs; clamping keeps the ledger usable while the
// auditor flags the bug separately).
func (l *Latency) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	l.sum += d
	if d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.buckets[bucketFor(d)]++
}

// Count returns the number of samples.
func (l *Latency) Count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Mean returns the mean sample, or zero with no samples.
func (l *Latency) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Min returns the smallest sample, or zero with no samples.
func (l *Latency) Min() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.min
}

// Max returns the largest sample.
func (l *Latency) Max() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from the
// log buckets: the upper edge of the bucket containing the q-th sample.
func (l *Latency) Quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(l.count)))
	var cum uint64
	for b, n := range l.buckets {
		cum += n
		if cum >= target {
			if b == 0 {
				return time.Millisecond
			}
			return time.Duration(int64(1)<<uint(b)) * time.Millisecond
		}
	}
	return l.max
}

// String summarises the distribution.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v max=%v",
		l.Count(), l.Mean(), l.Quantile(0.5), l.Quantile(0.99), l.Max())
}

// Staleness records, for every answered query, how stale the served copy
// was (zero for up-to-date answers), grouped for the consistency auditor.
type Staleness struct {
	mu       sync.Mutex
	samples  []time.Duration // staleness per answer; kept for exact quantiles
	nonFresh uint64
}

// NewStaleness returns an empty recorder.
func NewStaleness() *Staleness { return &Staleness{} }

// Record adds one answer's staleness (0 = served the current version).
func (s *Staleness) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, d)
	if d > 0 {
		s.nonFresh++
	}
}

// Count returns the number of answers recorded.
func (s *Staleness) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.samples))
}

// NonFresh returns how many answers served a stale (but committed) value.
func (s *Staleness) NonFresh() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nonFresh
}

// Max returns the worst staleness served.
func (s *Staleness) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m time.Duration
	for _, d := range s.samples {
		if d > m {
			m = d
		}
	}
	return m
}

// Quantile returns the exact q-quantile of staleness.
func (s *Staleness) Quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]time.Duration, len(s.samples))
	copy(sorted, s.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}
