package stats

import (
	"testing"

	"github.com/manetlab/rpcc/internal/protocol"
)

// TestTrafficCoversEveryKind is the accounting half of the protocol
// exhaustiveness guard: every message kind must have its own size/kind
// row in the Traffic ledger — tx, bytes, originated, delivered and
// dropped — and must never bleed into the invalid-kind slot. A new Kind
// added to internal/protocol lands here automatically because the
// arrays are sized by protocol.NumKinds; this test pins the behaviour
// so a refactor to sparse maps cannot silently drop a kind.
func TestTrafficCoversEveryKind(t *testing.T) {
	tr := NewTraffic()
	for k := protocol.Kind(1); int(k) < protocol.NumKinds; k++ {
		bytes := 10 + int(k)
		tr.RecordOriginated(k)
		tr.RecordTx(k, bytes)
		tr.RecordDelivered(k)
		tr.RecordDropped(k, DropLoss)

		if got := tr.Tx(k); got != 1 {
			t.Errorf("%v: tx row = %d, want 1", k, got)
		}
		if got := tr.Originated(k); got != 1 {
			t.Errorf("%v: originated row = %d, want 1", k, got)
		}
		if got := tr.Delivered(k); got != 1 {
			t.Errorf("%v: delivered row = %d, want 1", k, got)
		}
		if got := tr.Dropped(k); got != 1 {
			t.Errorf("%v: dropped row = %d, want 1", k, got)
		}
	}
	if tr.Invalid() != 0 {
		t.Fatalf("valid kinds bled into the invalid slot: %d", tr.Invalid())
	}
	if got, want := tr.TotalTx(), uint64(protocol.NumKinds-1); got != want {
		t.Fatalf("total tx = %d, want %d (one per kind)", got, want)
	}

	// Every kind must appear in the snapshot with its own byte size.
	snap := tr.Snapshot()
	seen := make(map[protocol.Kind]KindCount, len(snap))
	for _, kc := range snap {
		seen[kc.Kind] = kc
	}
	for k := protocol.Kind(1); int(k) < protocol.NumKinds; k++ {
		kc, ok := seen[k]
		if !ok {
			t.Errorf("%v: missing from snapshot", k)
			continue
		}
		if want := uint64(10 + int(k)); kc.Bytes != want {
			t.Errorf("%v: snapshot bytes = %d, want %d", k, kc.Bytes, want)
		}
	}

	// The invalid kind is surfaced, not silently binned.
	tr.RecordTx(protocol.KindInvalid, 1)
	if tr.Invalid() != 1 {
		t.Fatalf("invalid kind not surfaced: %d", tr.Invalid())
	}
}
