package cache

import (
	"container/list"

	"github.com/manetlab/rpcc/internal/data"
)

// lruPolicy is the extracted default: evict the least recently used
// entry. Admit pushes to the front, Touch refreshes recency, Victim is
// the back of the list — exactly the ordering the store maintained
// before replacement became pluggable, so same-seed runs are
// byte-identical to the pre-policy store.
type lruPolicy struct {
	order *list.List // front = most recently used; values are data.ItemID
	byID  map[data.ItemID]*list.Element
}

func newLRUPolicy() *lruPolicy {
	return &lruPolicy{order: list.New(), byID: make(map[data.ItemID]*list.Element)}
}

func (p *lruPolicy) Name() string { return string(PolicyLRU) }

func (p *lruPolicy) Admit(id data.ItemID, _ Meta) {
	if el, ok := p.byID[id]; ok {
		p.order.MoveToFront(el)
		return
	}
	p.byID[id] = p.order.PushFront(id)
}

func (p *lruPolicy) Touch(id data.ItemID, _ Meta) {
	if el, ok := p.byID[id]; ok {
		p.order.MoveToFront(el)
	}
}

func (p *lruPolicy) Victim() (data.ItemID, bool) {
	back := p.order.Back()
	if back == nil {
		return 0, false
	}
	return back.Value.(data.ItemID), true
}

func (p *lruPolicy) Remove(id data.ItemID) {
	if el, ok := p.byID[id]; ok {
		p.order.Remove(el)
		delete(p.byID, id)
	}
}
