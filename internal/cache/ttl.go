package cache

import (
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

// ttlPolicy evicts the entry closest to staleness: the minimum
// storedAt + TTL. The intuition is freshness-aware caching — a copy near
// the end of its freshness horizon will need a refresh before it can be
// served consistently anyway, so sacrificing it loses the least. A copy
// whose version was just fetched is maximally valuable. Correctness of
// the ranking depends on the store only advancing storedAt on a strict
// version advance (the equal-version refresh fix in PutEvict): a re-Put
// of the same bytes must not make a copy look freshly fetched.
type ttlPolicy struct {
	ttl    time.Duration
	expiry map[data.ItemID]time.Duration // storedAt + ttl
}

func newTTLPolicy(ttl time.Duration) *ttlPolicy {
	return &ttlPolicy{ttl: ttl, expiry: make(map[data.ItemID]time.Duration)}
}

func (p *ttlPolicy) Name() string { return string(PolicyTTL) }

func (p *ttlPolicy) Admit(id data.ItemID, m Meta) { p.expiry[id] = m.StoredAt + p.ttl }

func (p *ttlPolicy) Touch(id data.ItemID, m Meta) {
	if _, ok := p.expiry[id]; ok {
		p.expiry[id] = m.StoredAt + p.ttl
	}
}

func (p *ttlPolicy) Victim() (data.ItemID, bool) {
	if len(p.expiry) == 0 {
		return 0, false
	}
	ids := make([]data.ItemID, 0, len(p.expiry))
	for id := range p.expiry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	victim := ids[0]
	for _, id := range ids[1:] {
		if p.expiry[id] < p.expiry[victim] {
			victim = id
		}
	}
	return victim, true
}

func (p *ttlPolicy) Remove(id data.ItemID) { delete(p.expiry, id) }
