package cache

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

func copyOf(id data.ItemID, v data.Version) data.Copy {
	return data.Copy{ID: id, Version: v, Value: data.ValueFor(id, v)}
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewStore(-5); err == nil {
		t.Error("negative capacity accepted")
	}
	s, err := NewStore(10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 10 || s.Len() != 0 {
		t.Errorf("Capacity=%d Len=%d", s.Capacity(), s.Len())
	}
}

func TestPutGet(t *testing.T) {
	s, _ := NewStore(3)
	c := copyOf(1, 2)
	if err := s.Put(c, time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(1)
	if !ok || got != c {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get(99); ok {
		t.Error("Get(absent) = true")
	}
	if s.Accesses() != 2 || s.Hits() != 1 {
		t.Errorf("accesses=%d hits=%d, want 2,1", s.Accesses(), s.Hits())
	}
	if s.HitRatio() != 0.5 {
		t.Errorf("HitRatio = %g", s.HitRatio())
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	s, _ := NewStore(3)
	s.Put(copyOf(1, 0), 0)
	if _, ok := s.Peek(1); !ok {
		t.Fatal("Peek missed present item")
	}
	if _, ok := s.Peek(2); ok {
		t.Fatal("Peek found absent item")
	}
	if s.Accesses() != 0 {
		t.Errorf("Peek counted as access: %d", s.Accesses())
	}
}

func TestLRUEviction(t *testing.T) {
	s, _ := NewStore(2)
	s.Put(copyOf(1, 0), 0)
	s.Put(copyOf(2, 0), 0)
	s.Get(1) // refresh 1: now 2 is LRU
	s.Put(copyOf(3, 0), 0)
	if s.Contains(2) {
		t.Error("LRU item 2 survived eviction")
	}
	if !s.Contains(1) || !s.Contains(3) {
		t.Error("wrong items evicted")
	}
	if s.Evictions() != 1 {
		t.Errorf("Evictions = %d", s.Evictions())
	}
}

func TestPutRefreshDoesNotEvict(t *testing.T) {
	s, _ := NewStore(2)
	s.Put(copyOf(1, 0), 0)
	s.Put(copyOf(2, 0), 0)
	if err := s.Put(copyOf(1, 1), time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Evictions() != 0 {
		t.Errorf("Len=%d Evictions=%d after refresh", s.Len(), s.Evictions())
	}
	got, _ := s.Peek(1)
	if got.Version != 1 {
		t.Errorf("refreshed version = %d", got.Version)
	}
}

func TestPutRejectsVersionRegression(t *testing.T) {
	s, _ := NewStore(2)
	s.Put(copyOf(1, 5), 0)
	if err := s.Put(copyOf(1, 3), time.Second); err == nil {
		t.Fatal("version regression accepted")
	}
	got, _ := s.Peek(1)
	if got.Version != 5 {
		t.Errorf("version after rejected put = %d", got.Version)
	}
}

// TestPutSameVersionKeepsStoredAt is the regression test for the
// freshness-accounting bug: a re-Put of the same version used to reset
// storedAt, making a stale copy look freshly fetched. Freshness must
// advance only when the version strictly advances.
func TestPutSameVersionKeepsStoredAt(t *testing.T) {
	s, _ := NewStore(2)
	s.Put(copyOf(1, 5), time.Second)
	if err := s.Put(copyOf(1, 5), time.Minute); err != nil {
		t.Fatalf("same-version put rejected: %v", err)
	}
	at, ok := s.StoredAt(1)
	if !ok || at != time.Second {
		t.Errorf("StoredAt after same-version re-Put = %v,%v; want 1s (unchanged)", at, ok)
	}
	if err := s.Put(copyOf(1, 6), time.Minute); err != nil {
		t.Fatalf("version advance rejected: %v", err)
	}
	if at, _ := s.StoredAt(1); at != time.Minute {
		t.Errorf("StoredAt after version advance = %v; want 1m", at)
	}
}

func TestPutRejectsTornCopy(t *testing.T) {
	s, _ := NewStore(2)
	torn := data.Copy{ID: 1, Version: 2, Value: "junk"}
	if err := s.Put(torn, 0); err == nil {
		t.Fatal("torn copy accepted")
	}
}

func TestPutRejectsNegativeID(t *testing.T) {
	s, _ := NewStore(2)
	if err := s.Put(data.Copy{ID: -1, Value: data.ValueFor(-1, 0)}, 0); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestRemove(t *testing.T) {
	s, _ := NewStore(2)
	s.Put(copyOf(1, 0), 0)
	if !s.Remove(1) {
		t.Error("Remove(present) = false")
	}
	if s.Remove(1) {
		t.Error("Remove(absent) = true")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after remove", s.Len())
	}
}

func TestItemsSorted(t *testing.T) {
	s, _ := NewStore(5)
	for _, id := range []data.ItemID{4, 1, 3} {
		s.Put(copyOf(id, 0), 0)
	}
	items := s.Items()
	want := []data.ItemID{1, 3, 4}
	if len(items) != 3 {
		t.Fatalf("Items = %v", items)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("Items = %v, want %v", items, want)
		}
	}
}

func TestCapacityNeverExceededProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s, err := NewStore(10)
		if err != nil {
			return false
		}
		versions := map[data.ItemID]data.Version{}
		for i, op := range ops {
			id := data.ItemID(op % 30)
			if op%3 == 0 {
				v := versions[id] + 1
				versions[id] = v
				// Put may fail only via regression, which we never do here.
				if err := s.Put(copyOf(id, v), time.Duration(i)); err != nil {
					// Re-put after eviction can legitimately restart at a
					// lower version? No: we always bump. Any error is a bug.
					return false
				}
			} else {
				s.Get(id)
			}
			if s.Len() > s.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRatioEmptyStore(t *testing.T) {
	s, _ := NewStore(1)
	if s.HitRatio() != 0 {
		t.Errorf("HitRatio on fresh store = %g", s.HitRatio())
	}
}

func TestClearWipesCopiesKeepsCounters(t *testing.T) {
	s, _ := NewStore(3)
	s.Put(copyOf(1, 0), 0)
	s.Put(copyOf(2, 0), 0)
	s.Get(1)
	s.Get(99)
	accesses, hits := s.Accesses(), s.Hits()
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("Len after Clear = %d", s.Len())
	}
	if s.Contains(1) || s.Contains(2) {
		t.Error("Clear left items behind")
	}
	if s.Accesses() != accesses || s.Hits() != hits {
		t.Errorf("Clear wiped counters: accesses %d->%d hits %d->%d",
			accesses, s.Accesses(), hits, s.Hits())
	}
	// The store works normally afterwards, including eviction accounting.
	if err := s.Put(copyOf(1, 5), time.Second); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(1); !ok || got.Version != 5 {
		t.Fatalf("Get after Clear = %+v, %v", got, ok)
	}
}
