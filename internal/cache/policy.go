package cache

import (
	"fmt"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

// Meta is what a replacement policy may know about a cached entry. The
// store maintains it; policies receive a fresh snapshot on every Admit
// and Touch and must not retain pointers into store state.
type Meta struct {
	// StoredAt is when the entry's current content was fetched. It
	// advances only when the version advances — a same-version re-Put is
	// a no-op for freshness (see Store.PutEvict).
	StoredAt time.Duration
	// Version is the entry's data version.
	Version data.Version
	// Size is the payload size in bytes.
	Size int
	// Hops estimates the network distance to the item's source host at
	// the time the copy was stored (0 when the store has no hint; see
	// Store.SetHopsHint). Re-fetching a far copy costs more, so
	// utility-based policies weight it.
	Hops int
}

// Policy decides which cached entry to sacrifice when the store is full.
// The store drives it through four hooks: Admit when an entry is
// inserted, Touch on every access or refresh of an existing entry,
// Victim when space is needed, and Remove when an entry leaves for any
// reason (eviction included — the store calls Remove for the id Victim
// returned).
//
// Policies are single-threaded like the store and must be deterministic:
// given the same hook sequence they must produce the same victims, with
// ties broken by ascending item id. One policy instance serves exactly
// one store.
type Policy interface {
	// Name identifies the policy ("lru", "lfu", ...).
	Name() string
	// Admit records a newly inserted entry.
	Admit(id data.ItemID, m Meta)
	// Touch records an access or refresh of an entry previously admitted.
	Touch(id data.ItemID, m Meta)
	// Victim nominates the entry to evict. It reports false only when
	// the policy tracks no entries.
	Victim() (data.ItemID, bool)
	// Remove forgets an entry (eviction, invalidation, crash wipe).
	Remove(id data.ItemID)
}

// PolicyKind names a replacement policy for configuration surfaces
// (experiment.Config, CLI flags, oracle scenarios).
type PolicyKind string

// The built-in replacement policies.
const (
	// PolicyLRU evicts the least recently used entry — the default, and
	// the paper's implicit choice.
	PolicyLRU PolicyKind = "lru"
	// PolicyLFU evicts the least frequently used entry, with periodic
	// halving of all counts so stale popularity ages out.
	PolicyLFU PolicyKind = "lfu"
	// PolicyTTL evicts the entry closest to staleness: minimum
	// storedAt + TTL. Fresh copies survive; about-to-expire ones go
	// first (they would cost a refresh anyway).
	PolicyTTL PolicyKind = "ttl"
	// PolicyUtility evicts the entry with the least keep-utility:
	// access rate x distance-to-source hops / payload size, after the
	// utility-based replacement schemes for cooperative MANET caches.
	PolicyUtility PolicyKind = "utility"
)

// Valid reports whether k names a built-in policy. The empty kind is
// valid and means the default (LRU).
func (k PolicyKind) Valid() bool {
	switch k {
	case "", PolicyLRU, PolicyLFU, PolicyTTL, PolicyUtility:
		return true
	default:
		return false
	}
}

// AllPolicyKinds returns the built-in kinds in presentation order.
func AllPolicyKinds() []PolicyKind {
	return []PolicyKind{PolicyLRU, PolicyLFU, PolicyTTL, PolicyUtility}
}

// PolicyParams tunes the built-in policies; zero values select defaults.
type PolicyParams struct {
	// TTL is PolicyTTL's freshness horizon (default 4 minutes, the
	// paper's TTP). Entries are ranked by storedAt + TTL.
	TTL time.Duration
	// AgePeriod is how many Admit/Touch events pass between PolicyLFU's
	// count halvings (default 128; 0 selects the default, negative is
	// rejected by NewPolicy).
	AgePeriod int
}

// Default policy tuning.
const (
	DefaultPolicyTTL      = 4 * time.Minute
	DefaultLFUAgePeriod   = 128
	defaultUtilityMinSize = 1
)

// NewPolicy builds a fresh instance of the named policy. The empty kind
// yields LRU. Every store needs its own instance: policies are stateful.
func NewPolicy(kind PolicyKind, p PolicyParams) (Policy, error) {
	if p.TTL < 0 {
		return nil, fmt.Errorf("cache: negative policy TTL %v", p.TTL)
	}
	if p.AgePeriod < 0 {
		return nil, fmt.Errorf("cache: negative LFU age period %d", p.AgePeriod)
	}
	switch kind {
	case "", PolicyLRU:
		return newLRUPolicy(), nil
	case PolicyLFU:
		period := p.AgePeriod
		if period == 0 {
			period = DefaultLFUAgePeriod
		}
		return newLFUPolicy(uint64(period)), nil
	case PolicyTTL:
		ttl := p.TTL
		if ttl == 0 {
			ttl = DefaultPolicyTTL
		}
		return newTTLPolicy(ttl), nil
	case PolicyUtility:
		return newUtilityPolicy(), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy kind %q", kind)
	}
}
