package cache

import (
	"sort"

	"github.com/manetlab/rpcc/internal/data"
)

// utilityPolicy ranks entries by keep-utility and evicts the minimum,
// after the utility-based replacement schemes proposed for cooperative
// MANET caches (see PAPERS.md): an entry is worth keeping in proportion
// to how often it is accessed and how far away its source is (a re-fetch
// costs more hops of traffic), and in inverse proportion to the cache
// space it occupies:
//
//	utility = (accesses / residency) * (hops + 1) / size
//
// Residency is measured on a logical clock (one tick per Admit/Touch on
// this store) rather than wall time, so utility stays a pure function of
// the hook sequence and runs reproduce bit for bit. Ties break toward
// the lower item id.
type utilityPolicy struct {
	entries map[data.ItemID]*utilEntry
	tick    uint64
}

type utilEntry struct {
	count    uint64 // accesses since admission (admission counts as one)
	admitted uint64 // tick at admission
	size     int
	hops     int
}

func newUtilityPolicy() *utilityPolicy {
	return &utilityPolicy{entries: make(map[data.ItemID]*utilEntry)}
}

func (p *utilityPolicy) Name() string { return string(PolicyUtility) }

func (p *utilityPolicy) Admit(id data.ItemID, m Meta) {
	p.tick++
	if e, ok := p.entries[id]; ok {
		e.count++
		e.size, e.hops = m.Size, m.Hops
		return
	}
	p.entries[id] = &utilEntry{count: 1, admitted: p.tick, size: m.Size, hops: m.Hops}
}

func (p *utilityPolicy) Touch(id data.ItemID, m Meta) {
	p.tick++
	if e, ok := p.entries[id]; ok {
		e.count++
		e.size, e.hops = m.Size, m.Hops
	}
}

func (p *utilityPolicy) utility(e *utilEntry) float64 {
	residency := p.tick - e.admitted + 1
	size := e.size
	if size < defaultUtilityMinSize {
		size = defaultUtilityMinSize
	}
	rate := float64(e.count) / float64(residency)
	return rate * float64(e.hops+1) / float64(size)
}

func (p *utilityPolicy) Victim() (data.ItemID, bool) {
	if len(p.entries) == 0 {
		return 0, false
	}
	ids := make([]data.ItemID, 0, len(p.entries))
	for id := range p.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	victim := ids[0]
	best := p.utility(p.entries[victim])
	for _, id := range ids[1:] {
		if u := p.utility(p.entries[id]); u < best {
			victim, best = id, u
		}
	}
	return victim, true
}

func (p *utilityPolicy) Remove(id data.ItemID) { delete(p.entries, id) }
