package cache

import (
	"sort"

	"github.com/manetlab/rpcc/internal/data"
)

// lfuPolicy evicts the least frequently used entry. Raw LFU never
// forgets: an item that was hot an hour ago outranks everything current.
// Aging fixes that — every agePeriod Admit/Touch events all counts are
// halved, so popularity decays geometrically with a half-life of one
// period. Ties break toward the older admission, then the lower item id,
// keeping victim choice deterministic.
type lfuPolicy struct {
	entries   map[data.ItemID]*lfuEntry
	tick      uint64 // logical clock: one per Admit/Touch
	agePeriod uint64
}

type lfuEntry struct {
	count uint64
	seq   uint64 // admission tick, for tie-breaking
}

func newLFUPolicy(agePeriod uint64) *lfuPolicy {
	return &lfuPolicy{entries: make(map[data.ItemID]*lfuEntry), agePeriod: agePeriod}
}

func (p *lfuPolicy) Name() string { return string(PolicyLFU) }

// advance steps the logical clock and ages every count when a period
// elapses. Halving is independent per entry, so map iteration order
// cannot matter.
func (p *lfuPolicy) advance() {
	p.tick++
	if p.agePeriod > 0 && p.tick%p.agePeriod == 0 {
		for _, e := range p.entries {
			e.count /= 2
		}
	}
}

func (p *lfuPolicy) Admit(id data.ItemID, _ Meta) {
	p.advance()
	if e, ok := p.entries[id]; ok {
		e.count++
		return
	}
	p.entries[id] = &lfuEntry{count: 1, seq: p.tick}
}

func (p *lfuPolicy) Touch(id data.ItemID, _ Meta) {
	p.advance()
	if e, ok := p.entries[id]; ok {
		e.count++
	}
}

func (p *lfuPolicy) Victim() (data.ItemID, bool) {
	if len(p.entries) == 0 {
		return 0, false
	}
	ids := make([]data.ItemID, 0, len(p.entries))
	for id := range p.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	victim := ids[0]
	best := p.entries[victim]
	for _, id := range ids[1:] {
		e := p.entries[id]
		if e.count < best.count || (e.count == best.count && e.seq < best.seq) {
			victim, best = id, e
		}
	}
	return victim, true
}

func (p *lfuPolicy) Remove(id data.ItemID) { delete(p.entries, id) }
