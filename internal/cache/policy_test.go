package cache

import (
	"math/rand"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

func storeWith(t *testing.T, capacity int, kind PolicyKind) *Store {
	t.Helper()
	p, err := NewPolicy(kind, PolicyParams{})
	if err != nil {
		t.Fatalf("NewPolicy(%q): %v", kind, err)
	}
	s, err := NewStoreWithPolicy(capacity, p)
	if err != nil {
		t.Fatalf("NewStoreWithPolicy: %v", err)
	}
	return s
}

func TestNewPolicyValidation(t *testing.T) {
	if _, err := NewPolicy("fifo", PolicyParams{}); err == nil {
		t.Error("unknown policy kind accepted")
	}
	if _, err := NewPolicy(PolicyTTL, PolicyParams{TTL: -time.Second}); err == nil {
		t.Error("negative TTL accepted")
	}
	if _, err := NewPolicy(PolicyLFU, PolicyParams{AgePeriod: -1}); err == nil {
		t.Error("negative age period accepted")
	}
	if _, err := NewStoreWithPolicy(3, nil); err == nil {
		t.Error("nil policy accepted")
	}
	p, err := NewPolicy("", PolicyParams{})
	if err != nil {
		t.Fatalf("empty kind: %v", err)
	}
	if p.Name() != "lru" {
		t.Errorf("empty kind resolved to %q, want lru", p.Name())
	}
	if PolicyKind("fifo").Valid() {
		t.Error("fifo reported valid")
	}
}

// TestLRUPolicyMatchesLegacyStore pins the extraction: the default-policy
// store must choose the exact victims the pre-policy LRU store did.
func TestLRUPolicyMatchesLegacyStore(t *testing.T) {
	s, _ := NewStore(2)
	s.Put(copyOf(1, 0), 0)
	s.Put(copyOf(2, 0), 0)
	s.Get(1) // 2 becomes LRU
	ev, has, err := s.PutEvict(copyOf(3, 0), 0)
	if err != nil || !has || ev != 2 {
		t.Fatalf("PutEvict = %v,%v,%v; want victim 2", ev, has, err)
	}
	s.Put(copyOf(1, 1), time.Second) // refresh touches recency: 3 is now LRU
	ev, has, _ = s.PutEvict(copyOf(4, 0), time.Second)
	if !has || ev != 3 {
		t.Fatalf("victim after refresh = %v,%v; want 3", ev, has)
	}
}

func TestLFUPolicyEvictsColdest(t *testing.T) {
	s := storeWith(t, 3, PolicyLFU)
	s.Put(copyOf(1, 0), 0)
	s.Put(copyOf(2, 0), 0)
	s.Put(copyOf(3, 0), 0)
	s.Get(1)
	s.Get(1)
	s.Get(3)
	ev, has, err := s.PutEvict(copyOf(4, 0), 0)
	if err != nil || !has || ev != 2 {
		t.Fatalf("LFU victim = %v,%v,%v; want 2 (never re-accessed)", ev, has, err)
	}
}

func TestLFUPolicyTieBreaksByAdmission(t *testing.T) {
	s := storeWith(t, 2, PolicyLFU)
	s.Put(copyOf(5, 0), 0)
	s.Put(copyOf(2, 0), 0)
	// Equal counts: the earlier admission (item 5) goes first.
	ev, has, _ := s.PutEvict(copyOf(7, 0), 0)
	if !has || ev != 5 {
		t.Fatalf("LFU tie victim = %v,%v; want 5 (oldest admission)", ev, has)
	}
}

func TestLFUAgingForgetsStalePopularity(t *testing.T) {
	p := newLFUPolicy(4)
	s, _ := NewStoreWithPolicy(2, p)
	s.Put(copyOf(1, 0), 0)
	s.Get(1)
	s.Get(1) // item 1: hot early (count 3)
	s.Put(copyOf(2, 0), 0)
	// Drive the clock: item 2 accumulates recent accesses while item 1's
	// early burst is halved away.
	for i := 0; i < 8; i++ {
		s.Get(2)
	}
	ev, has, _ := s.PutEvict(copyOf(3, 0), 0)
	if !has || ev != 1 {
		t.Fatalf("aged LFU victim = %v,%v; want 1 (stale popularity)", ev, has)
	}
}

func TestTTLPolicyEvictsClosestToStaleness(t *testing.T) {
	s := storeWith(t, 3, PolicyTTL)
	s.Put(copyOf(1, 0), 2*time.Minute)
	s.Put(copyOf(2, 0), 1*time.Minute) // oldest fetch = nearest expiry
	s.Put(copyOf(3, 0), 3*time.Minute)
	ev, has, err := s.PutEvict(copyOf(4, 0), 4*time.Minute)
	if err != nil || !has || ev != 2 {
		t.Fatalf("TTL victim = %v,%v,%v; want 2 (stalest)", ev, has, err)
	}
	// Recency must not disturb freshness ranking: touching the stalest
	// copy does not save it.
	s2 := storeWith(t, 2, PolicyTTL)
	s2.Put(copyOf(1, 0), time.Minute)
	s2.Put(copyOf(2, 0), 2*time.Minute)
	s2.Get(1)
	s2.Get(1)
	ev, has, _ = s2.PutEvict(copyOf(3, 0), 3*time.Minute)
	if !has || ev != 1 {
		t.Fatalf("TTL victim after touches = %v,%v; want 1", ev, has)
	}
}

// TestTTLPolicyHonorsStoredAtFix pins the interaction between the TTL
// policy and the storedAt fix: a same-version re-Put must not rejuvenate
// a copy's place in the eviction order.
func TestTTLPolicyHonorsStoredAtFix(t *testing.T) {
	s := storeWith(t, 2, PolicyTTL)
	s.Put(copyOf(1, 0), time.Minute)
	s.Put(copyOf(2, 0), 2*time.Minute)
	// Same-version re-Put of 1 much later: freshness must not advance.
	if err := s.Put(copyOf(1, 0), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	ev, has, _ := s.PutEvict(copyOf(3, 0), 11*time.Minute)
	if !has || ev != 1 {
		t.Fatalf("TTL victim = %v,%v; want 1 (re-Put must not refresh)", ev, has)
	}
}

func TestUtilityPolicyWeighsHops(t *testing.T) {
	s := storeWith(t, 2, PolicyUtility)
	hops := map[data.ItemID]int{1: 1, 2: 6, 3: 1}
	s.SetHopsHint(func(id data.ItemID) int { return hops[id] })
	s.Put(copyOf(1, 0), 0)
	s.Put(copyOf(2, 0), 0)
	// Same access pattern for both; item 2's source is far away, so its
	// copy is the more valuable one and item 1 goes.
	s.Get(1)
	s.Get(2)
	ev, has, err := s.PutEvict(copyOf(3, 0), 0)
	if err != nil || !has || ev != 1 {
		t.Fatalf("utility victim = %v,%v,%v; want 1 (near source)", ev, has, err)
	}
}

func TestUtilityPolicyWeighsAccessRate(t *testing.T) {
	s := storeWith(t, 2, PolicyUtility)
	s.Put(copyOf(1, 0), 0)
	s.Put(copyOf(2, 0), 0)
	s.Get(2)
	s.Get(2)
	s.Get(2)
	ev, has, _ := s.PutEvict(copyOf(3, 0), 0)
	if !has || ev != 1 {
		t.Fatalf("utility victim = %v,%v; want 1 (cold)", ev, has)
	}
}

// TestPolicyInvariantsProperty drives every policy through a randomized
// but seeded workload and asserts the store invariants the LRU baseline
// guarantees: capacity is never exceeded, version regressions are always
// rejected, eviction reports name a previously present item, and Len
// matches the tracked contents.
func TestPolicyInvariantsProperty(t *testing.T) {
	for _, kind := range AllPolicyKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			s := storeWith(t, 4, kind)
			versions := map[data.ItemID]data.Version{}
			present := map[data.ItemID]bool{}
			for step := 0; step < 5000; step++ {
				id := data.ItemID(rng.Intn(12))
				now := time.Duration(step) * time.Second
				switch rng.Intn(4) {
				case 0: // Put at the item's current or advanced version.
					v := versions[id]
					if rng.Intn(2) == 0 {
						v++
						versions[id] = v
					}
					ev, has, err := s.PutEvict(copyOf(id, v), now)
					if err != nil {
						t.Fatalf("step %d: PutEvict(%d v%d): %v", step, id, v, err)
					}
					if has {
						if !present[ev] {
							t.Fatalf("step %d: evicted %d which was not present", step, ev)
						}
						delete(present, ev)
					}
					present[id] = true
				case 1: // Version regression must be rejected.
					if v := versions[id]; v > 0 && present[id] {
						if err := s.Put(copyOf(id, v-1), now); err == nil {
							t.Fatalf("step %d: version regression accepted for %d", step, id)
						}
					}
				case 2:
					s.Get(id)
				case 3:
					if rng.Intn(10) == 0 {
						s.Remove(id)
						delete(present, id)
					} else {
						s.Peek(id)
					}
				}
				if s.Len() > s.Capacity() {
					t.Fatalf("step %d: Len %d exceeds capacity %d", step, s.Len(), s.Capacity())
				}
				if s.Len() != len(present) {
					t.Fatalf("step %d: Len %d != tracked %d", step, s.Len(), len(present))
				}
				for _, got := range s.Items() {
					if !present[got] {
						t.Fatalf("step %d: store holds %d which should be gone", step, got)
					}
				}
			}
			// Crash wipe leaves the policy consistent for reuse.
			s.Clear()
			if s.Len() != 0 {
				t.Fatalf("Len after Clear = %d", s.Len())
			}
			if err := s.Put(copyOf(1, 99), 0); err != nil {
				t.Fatalf("Put after Clear: %v", err)
			}
		})
	}
}

// TestPolicyDeterminism: identical operation sequences on two stores of
// the same policy produce identical victim sequences.
func TestPolicyDeterminism(t *testing.T) {
	for _, kind := range AllPolicyKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run := func() []data.ItemID {
				rng := rand.New(rand.NewSource(7))
				s := storeWith(t, 3, kind)
				var victims []data.ItemID
				for step := 0; step < 2000; step++ {
					id := data.ItemID(rng.Intn(9))
					now := time.Duration(step) * 250 * time.Millisecond
					if rng.Intn(3) == 0 {
						s.Get(id)
						continue
					}
					v := versions(s, id)
					ev, has, err := s.PutEvict(copyOf(id, v), now)
					if err != nil {
						t.Fatal(err)
					}
					if has {
						victims = append(victims, ev)
					}
				}
				return victims
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("victim counts differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("victim %d differs: %v vs %v", i, a[i], b[i])
				}
			}
			if len(a) == 0 {
				t.Fatal("workload produced no evictions; test is vacuous")
			}
		})
	}
}

// versions returns a Put-able version for id: the cached version if
// present (same-version refresh) else 0.
func versions(s *Store, id data.ItemID) data.Version {
	if c, ok := s.Peek(id); ok {
		return c.Version
	}
	return 0
}
