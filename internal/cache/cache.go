// Package cache implements the per-node cooperative cache store: a bounded
// store of data-item copies (capacity C_Num in the paper's Table 1) with
// the access accounting the relay-peer selection criterion needs (N_a, the
// number of cache accesses per period, feeding the peer access rate of
// Eq 4.2.1).
//
// Replacement is pluggable: a Policy (LRU by default; see policy.go)
// decides which entry to sacrifice when the store is full. The store owns
// the entries and the protocol-facing invariants — version monotonicity,
// torn-copy rejection, capacity — and drives the policy through its
// Admit/Touch/Victim/Remove hooks.
//
// Placement is query-driven ("cache what you fetched"), and discovery —
// locating a nearby copy on a miss — is performed by the protocol layers
// with expanding-ring DATA_REQUEST floods. The paper assumes both exist as
// an "independent mechanism" (§3); this package provides the store those
// mechanisms populate.
package cache

import (
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

// Store is one node's cache. The zero value is unusable; use NewStore.
// Store is not safe for concurrent use: it lives inside the single-threaded
// simulation loop.
type Store struct {
	capacity int
	policy   Policy
	byID     map[data.ItemID]*entry
	// hops, when set, estimates the distance in hops to an item's source
	// host; the store snapshots it into entry metadata on every Put so
	// utility policies can weight re-fetch cost.
	hops     func(data.ItemID) int
	accesses uint64 // cumulative: hits + misses observed by this node
	hits     uint64
	puts     uint64
	evicts   uint64
}

// entry is one cached copy plus bookkeeping.
type entry struct {
	copy     data.Copy
	storedAt time.Duration
	hops     int
}

// NewStore creates a cache holding at most capacity items, replaced LRU —
// the default policy, byte-identical to the store before replacement
// became pluggable.
func NewStore(capacity int) (*Store, error) {
	return NewStoreWithPolicy(capacity, newLRUPolicy())
}

// NewStoreWithPolicy creates a cache with an explicit replacement policy.
// The policy instance must be exclusive to this store.
func NewStoreWithPolicy(capacity int, p Policy) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be > 0", capacity)
	}
	if p == nil {
		return nil, fmt.Errorf("cache: nil replacement policy")
	}
	return &Store{
		capacity: capacity,
		policy:   p,
		byID:     make(map[data.ItemID]*entry, capacity),
	}, nil
}

// Capacity returns the configured maximum item count.
func (s *Store) Capacity() int { return s.capacity }

// Len returns the current item count.
func (s *Store) Len() int { return len(s.byID) }

// PolicyName returns the replacement policy's name ("lru", "lfu", ...).
func (s *Store) PolicyName() string { return s.policy.Name() }

// SetHopsHint installs an estimator of the hop distance from this node to
// an item's source host. Optional: without it entry metadata carries zero
// hops and the utility policy degrades to access-rate/size. The estimator
// must be deterministic for a given sim state.
func (s *Store) SetHopsHint(f func(data.ItemID) int) { s.hops = f }

func (s *Store) hopsFor(id data.ItemID) int {
	if s.hops == nil {
		return 0
	}
	return s.hops(id)
}

func (s *Store) metaOf(e *entry) Meta {
	return Meta{
		StoredAt: e.storedAt,
		Version:  e.copy.Version,
		Size:     len(e.copy.Value),
		Hops:     e.hops,
	}
}

// Get returns the cached copy of id and whether it was present, counting
// the access (hit or miss) for the PAR statistic and touching the
// replacement policy.
func (s *Store) Get(id data.ItemID) (data.Copy, bool) {
	s.accesses++
	e, ok := s.byID[id]
	if !ok {
		return data.Copy{}, false
	}
	s.hits++
	s.policy.Touch(id, s.metaOf(e))
	return e.copy, true
}

// Peek returns the cached copy without counting an access or touching the
// replacement policy — for protocol-internal inspection (e.g. a relay
// peer answering a POLL examines its copy without that counting as local
// demand).
func (s *Store) Peek(id data.ItemID) (data.Copy, bool) {
	e, ok := s.byID[id]
	if !ok {
		return data.Copy{}, false
	}
	return e.copy, true
}

// Put inserts or refreshes a copy, evicting the policy's victim when
// full. Putting an older version over a newer one is rejected: caches
// must never regress (protocols can only move copies forward).
func (s *Store) Put(c data.Copy, now time.Duration) error {
	_, _, err := s.PutEvict(c, now)
	return err
}

// PutEvict is Put that additionally reports which item, if any, was
// evicted to make room. Protocol layers need this to tear down per-item
// roles (e.g. a relay peer whose copy is evicted must CANCEL with the
// source host).
func (s *Store) PutEvict(c data.Copy, now time.Duration) (evicted data.ItemID, hasEvicted bool, err error) {
	if c.ID < 0 {
		return 0, false, fmt.Errorf("cache: negative item id %v", c.ID)
	}
	if !c.Consistent() {
		return 0, false, fmt.Errorf("cache: refusing torn copy %v v%d", c.ID, c.Version)
	}
	if e, ok := s.byID[c.ID]; ok {
		if c.Version < e.copy.Version {
			return 0, false, fmt.Errorf("cache: version regression for %v: have v%d, put v%d",
				c.ID, e.copy.Version, c.Version)
		}
		// Freshness advances only with content: a same-version re-Put
		// must not make the copy look freshly fetched, or TTL-aware
		// eviction and staleness-at-delivery spans measure garbage.
		if c.Version > e.copy.Version {
			e.storedAt = now
			e.hops = s.hopsFor(c.ID)
		}
		e.copy = c
		s.policy.Touch(c.ID, s.metaOf(e))
		s.puts++
		return 0, false, nil
	}
	if len(s.byID) >= s.capacity {
		victim, ok := s.policy.Victim()
		if !ok || s.byID[victim] == nil {
			// Defensive: a policy that lost track of its entries must
			// not let the store overflow. Fall back to the lowest id.
			for id := range s.byID {
				if !ok || id < victim {
					victim, ok = id, true
				}
			}
		}
		s.policy.Remove(victim)
		delete(s.byID, victim)
		evicted, hasEvicted = victim, true
		s.evicts++
	}
	e := &entry{copy: c, storedAt: now, hops: s.hopsFor(c.ID)}
	s.byID[c.ID] = e
	s.policy.Admit(c.ID, s.metaOf(e))
	s.puts++
	return evicted, hasEvicted, nil
}

// Remove drops id from the cache (e.g. on invalidation without refresh),
// reporting whether it was present.
func (s *Store) Remove(id data.ItemID) bool {
	if _, ok := s.byID[id]; !ok {
		return false
	}
	s.policy.Remove(id)
	delete(s.byID, id)
	return true
}

// Clear wipes every cached copy — the cache side of a node crash. The
// cumulative counters (accesses, hits, evictions) survive: they are
// measurements of what happened, not state the node holds. Entries leave
// the policy in ascending id order so policy state stays deterministic.
func (s *Store) Clear() {
	for _, id := range s.Items() {
		s.policy.Remove(id)
		delete(s.byID, id)
	}
}

// Contains reports whether id is cached, without touching the policy.
func (s *Store) Contains(id data.ItemID) bool {
	_, ok := s.byID[id]
	return ok
}

// StoredAt returns when the cached copy of id was written into this store
// (the fetch time of its current version; same-version re-Puts do not
// advance it).
func (s *Store) StoredAt(id data.ItemID) (time.Duration, bool) {
	e, ok := s.byID[id]
	if !ok {
		return 0, false
	}
	return e.storedAt, true
}

// Items returns the cached item ids sorted ascending (stable for tests and
// iteration determinism).
func (s *Store) Items() []data.ItemID {
	out := make([]data.ItemID, 0, len(s.byID))
	for id := range s.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Accesses returns the cumulative access count (the basis for the paper's
// N_a; the coefficient tracker differences it per period φ).
func (s *Store) Accesses() uint64 { return s.accesses }

// Hits returns the cumulative hit count.
func (s *Store) Hits() uint64 { return s.hits }

// HitRatio returns hits/accesses, or zero before any access.
func (s *Store) HitRatio() float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.accesses)
}

// Evictions returns how many entries replacement pressure has dropped.
func (s *Store) Evictions() uint64 { return s.evicts }
