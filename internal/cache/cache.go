// Package cache implements the per-node cooperative cache store: a bounded
// LRU of data-item copies (capacity C_Num in the paper's Table 1) with the
// access accounting the relay-peer selection criterion needs (N_a, the
// number of cache accesses per period, feeding the peer access rate of
// Eq 4.2.1).
//
// Placement is query-driven ("cache what you fetched"), and discovery —
// locating a nearby copy on a miss — is performed by the protocol layers
// with expanding-ring DATA_REQUEST floods. The paper assumes both exist as
// an "independent mechanism" (§3); this package provides the store those
// mechanisms populate.
package cache

import (
	"container/list"
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

// Store is one node's cache. The zero value is unusable; use NewStore.
// Store is not safe for concurrent use: it lives inside the single-threaded
// simulation loop.
type Store struct {
	capacity int
	order    *list.List // front = most recently used; values are *entry
	byID     map[data.ItemID]*list.Element
	accesses uint64 // cumulative: hits + misses observed by this node
	hits     uint64
	puts     uint64
	evicts   uint64
}

// entry is one cached copy plus bookkeeping.
type entry struct {
	copy     data.Copy
	storedAt time.Duration
}

// NewStore creates a cache holding at most capacity items.
func NewStore(capacity int) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be > 0", capacity)
	}
	return &Store{
		capacity: capacity,
		order:    list.New(),
		byID:     make(map[data.ItemID]*list.Element, capacity),
	}, nil
}

// Capacity returns the configured maximum item count.
func (s *Store) Capacity() int { return s.capacity }

// Len returns the current item count.
func (s *Store) Len() int { return s.order.Len() }

// Get returns the cached copy of id and whether it was present, counting
// the access (hit or miss) for the PAR statistic and refreshing recency.
func (s *Store) Get(id data.ItemID) (data.Copy, bool) {
	s.accesses++
	el, ok := s.byID[id]
	if !ok {
		return data.Copy{}, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*entry).copy, true
}

// Peek returns the cached copy without counting an access or refreshing
// recency — for protocol-internal inspection (e.g. a relay peer answering
// a POLL examines its copy without that counting as local demand).
func (s *Store) Peek(id data.ItemID) (data.Copy, bool) {
	el, ok := s.byID[id]
	if !ok {
		return data.Copy{}, false
	}
	return el.Value.(*entry).copy, true
}

// Put inserts or refreshes a copy, evicting the least recently used entry
// when full. Putting an older version over a newer one is rejected: caches
// must never regress (protocols can only move copies forward).
func (s *Store) Put(c data.Copy, now time.Duration) error {
	_, _, err := s.PutEvict(c, now)
	return err
}

// PutEvict is Put that additionally reports which item, if any, was
// evicted to make room. Protocol layers need this to tear down per-item
// roles (e.g. a relay peer whose copy is evicted must CANCEL with the
// source host).
func (s *Store) PutEvict(c data.Copy, now time.Duration) (evicted data.ItemID, hasEvicted bool, err error) {
	if c.ID < 0 {
		return 0, false, fmt.Errorf("cache: negative item id %v", c.ID)
	}
	if !c.Consistent() {
		return 0, false, fmt.Errorf("cache: refusing torn copy %v v%d", c.ID, c.Version)
	}
	if el, ok := s.byID[c.ID]; ok {
		e := el.Value.(*entry)
		if c.Version < e.copy.Version {
			return 0, false, fmt.Errorf("cache: version regression for %v: have v%d, put v%d",
				c.ID, e.copy.Version, c.Version)
		}
		e.copy = c
		e.storedAt = now
		s.order.MoveToFront(el)
		s.puts++
		return 0, false, nil
	}
	if s.order.Len() >= s.capacity {
		if oldest := s.order.Back(); oldest != nil {
			evicted = oldest.Value.(*entry).copy.ID
			hasEvicted = true
			s.removeElement(oldest)
			s.evicts++
		}
	}
	el := s.order.PushFront(&entry{copy: c, storedAt: now})
	s.byID[c.ID] = el
	s.puts++
	return evicted, hasEvicted, nil
}

// Remove drops id from the cache (e.g. on invalidation without refresh),
// reporting whether it was present.
func (s *Store) Remove(id data.ItemID) bool {
	el, ok := s.byID[id]
	if !ok {
		return false
	}
	s.removeElement(el)
	return true
}

func (s *Store) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	delete(s.byID, e.copy.ID)
	s.order.Remove(el)
}

// Clear wipes every cached copy — the cache side of a node crash. The
// cumulative counters (accesses, hits, evictions) survive: they are
// measurements of what happened, not state the node holds.
func (s *Store) Clear() {
	s.order.Init()
	for id := range s.byID {
		delete(s.byID, id)
	}
}

// Contains reports whether id is cached, without touching recency.
func (s *Store) Contains(id data.ItemID) bool {
	_, ok := s.byID[id]
	return ok
}

// StoredAt returns when the cached copy of id was written into this store.
func (s *Store) StoredAt(id data.ItemID) (time.Duration, bool) {
	el, ok := s.byID[id]
	if !ok {
		return 0, false
	}
	return el.Value.(*entry).storedAt, true
}

// Items returns the cached item ids sorted ascending (stable for tests and
// iteration determinism).
func (s *Store) Items() []data.ItemID {
	out := make([]data.ItemID, 0, s.order.Len())
	for id := range s.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Accesses returns the cumulative access count (the basis for the paper's
// N_a; the coefficient tracker differences it per period φ).
func (s *Store) Accesses() uint64 { return s.accesses }

// Hits returns the cumulative hit count.
func (s *Store) Hits() uint64 { return s.hits }

// HitRatio returns hits/accesses, or zero before any access.
func (s *Store) HitRatio() float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.accesses)
}

// Evictions returns how many entries LRU pressure has dropped.
func (s *Store) Evictions() uint64 { return s.evicts }
