package workload

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// TestZipfRejectsDegenerateHosts is the regression test for the Zipf
// rejection-loop hang: with one host the only drawable id is the host's
// own, and pickItem used to spin forever. The configuration is now
// rejected up front.
func TestZipfRejectsDegenerateHosts(t *testing.T) {
	cfg := testConfig()
	cfg.Popularity = PopularityZipf
	cfg.Hosts = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("PopularityZipf with 1 host accepted (the old rejection loop hung here)")
	}
	cfg.Hosts = 2
	if err := cfg.Validate(); err != nil {
		t.Fatalf("PopularityZipf with 2 hosts rejected: %v", err)
	}
}

// TestZipfTwoHostsTerminates drives the smallest legal Zipf config: every
// draw for host 0 lands on the only other id, via the remap, in bounded
// time (the old loop could only terminate by luck of the draw; at
// Hosts==2 host 1 drew id 1.. wait — host 0's only other item is 1, which
// the old generator could never draw for host 1's sake — this run hangs
// pre-fix).
func TestZipfTwoHostsTerminates(t *testing.T) {
	cfg := testConfig()
	cfg.Hosts = 2
	cfg.Popularity = PopularityZipf
	queries, _, _ := runGenerator(t, cfg, time.Hour)
	for host, items := range queries {
		for _, item := range items {
			if int(item) == host {
				t.Fatalf("host %d queried its own item", host)
			}
			if item < 0 || int(item) >= cfg.Hosts {
				t.Fatalf("host %d queried out-of-range item %v", host, item)
			}
		}
	}
	if len(queries[0]) == 0 || len(queries[1]) == 0 {
		t.Fatalf("a host issued no queries in an hour: %d/%d", len(queries[0]), len(queries[1]))
	}
}

// TestZipfNeverPicksOwnItem: the remap must exclude exactly the querying
// host's id while keeping every other id reachable.
func TestZipfNeverPicksOwnItem(t *testing.T) {
	cfg := testConfig()
	cfg.Popularity = PopularityZipf
	queries, _, _ := runGenerator(t, cfg, time.Hour)
	for host, items := range queries {
		for _, item := range items {
			if int(item) == host {
				t.Fatalf("host %d queried its own item", host)
			}
		}
	}
}

// TestSuppressedQueriesAreCounted is the regression test for the silent
// query suppression: a cached domain holding only the host's own item
// used to drop every scheduled query without a trace. Now each drop is
// counted and exported.
func TestSuppressedQueriesAreCounted(t *testing.T) {
	cfg := testConfig()
	cfg.Popularity = PopularityCached
	// Every host's domain is exactly its own item: all demand suppressed.
	cfg.Domain = func(host int) []data.ItemID { return []data.ItemID{data.ItemID(host)} }
	hub := telemetry.NewHub(telemetry.LevelMetrics)
	var issued int
	g, err := NewGenerator(cfg,
		func(*sim.Kernel, int, data.ItemID) { issued++ },
		func(*sim.Kernel, int) {})
	if err != nil {
		t.Fatal(err)
	}
	g.AttachTelemetry(hub)
	k := sim.NewKernel(sim.WithSeed(5), sim.WithHorizon(time.Hour))
	g.Start(k)
	k.Run()
	if issued != 0 {
		t.Fatalf("%d queries issued from own-item-only domains", issued)
	}
	q, _ := g.Counts()
	if q != 0 {
		t.Fatalf("Counts() reports %d queries, none were issued", q)
	}
	if g.Suppressed() == 0 {
		t.Fatal("no suppressed queries counted; the drop is silent again")
	}
	snap := hub.Snapshot()
	if _, ok := snap.Family("rpcc_workload_suppressed_total"); !ok {
		t.Fatal("rpcc_workload_suppressed_total not exported")
	}
	if exported := snap.CounterValue("rpcc_workload_suppressed_total"); exported != float64(g.Suppressed()) {
		t.Fatalf("exported %g suppressed, generator counted %d", exported, g.Suppressed())
	}
}

// TestSuppressionInvisibleWithoutTelemetry: a nil hub must not panic.
func TestSuppressionInvisibleWithoutTelemetry(t *testing.T) {
	cfg := testConfig()
	cfg.Popularity = PopularityCached
	cfg.Domain = func(host int) []data.ItemID { return []data.ItemID{data.ItemID(host)} }
	g, err := NewGenerator(cfg,
		func(*sim.Kernel, int, data.ItemID) {}, func(*sim.Kernel, int) {})
	if err != nil {
		t.Fatal(err)
	}
	g.AttachTelemetry(nil)
	k := sim.NewKernel(sim.WithSeed(5), sim.WithHorizon(10*time.Minute))
	g.Start(k)
	k.Run()
	if g.Suppressed() == 0 {
		t.Fatal("suppression not counted without a hub")
	}
}

func TestHotspotRedirectsDemand(t *testing.T) {
	cfg := testConfig()
	spike := Hotspot{Start: 20 * time.Minute, Duration: 10 * time.Minute, Item: 7, Weight: 1}
	cfg.Hotspots = []Hotspot{spike}
	var inWindow, inWindowHot int
	g, err := NewGenerator(cfg,
		func(k *sim.Kernel, host int, item data.ItemID) {
			now := k.Now()
			if now >= spike.Start && now < spike.Start+spike.Duration {
				inWindow++
				if item == spike.Item {
					inWindowHot++
				}
			} else if item == spike.Item {
				// Outside the window item 7 is one of 49 choices; a few
				// hits are expected, a flood is not. Nothing to assert
				// per query; the aggregate check below covers it.
				_ = item
			}
		},
		func(*sim.Kernel, int) {})
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(sim.WithSeed(9), sim.WithHorizon(time.Hour))
	g.Start(k)
	k.Run()
	if inWindow == 0 {
		t.Fatal("no queries fell inside the hotspot window")
	}
	// Weight 1: every in-window query from hosts other than 7 targets the
	// hotspot item; host 7's picks are suppressed, so issued in-window
	// queries are all hot.
	if inWindowHot != inWindow {
		t.Fatalf("in-window queries: %d of %d hit the hotspot item (weight 1)", inWindowHot, inWindow)
	}
	if g.Suppressed() == 0 {
		t.Fatal("host 7's in-window self-picks were not suppressed/counted")
	}
}

func TestHotspotValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Hotspots = []Hotspot{{Start: 0, Duration: time.Minute, Item: 1, Weight: 1.5}}
	if cfg.Validate() == nil {
		t.Error("weight > 1 accepted")
	}
	cfg.Hotspots = []Hotspot{{Start: 0, Duration: 0, Item: 1, Weight: 0.5}}
	if cfg.Validate() == nil {
		t.Error("zero duration accepted")
	}
	cfg.Hotspots = []Hotspot{{Start: 0, Duration: time.Minute, Item: -3, Weight: 0.5}}
	if cfg.Validate() == nil {
		t.Error("negative item accepted")
	}
}

func TestDiurnalModulationThinsLoad(t *testing.T) {
	run := func(period time.Duration, min float64) uint64 {
		cfg := testConfig()
		cfg.DiurnalPeriod = period
		cfg.DiurnalMin = min
		g, err := NewGenerator(cfg,
			func(*sim.Kernel, int, data.ItemID) {}, func(*sim.Kernel, int) {})
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel(sim.WithSeed(13), sim.WithHorizon(4*time.Hour))
		g.Start(k)
		k.Run()
		q, _ := g.Counts()
		if period > 0 && g.Thinned() == 0 {
			t.Fatal("diurnal modulation thinned nothing")
		}
		return q
	}
	flat := run(0, 0)
	modulated := run(time.Hour, 0)
	// Mean acceptance of the min=0 sinusoid is 1/2.
	if modulated >= flat*3/4 {
		t.Fatalf("diurnal(min=0) issued %d of %d flat queries; expected roughly half", modulated, flat)
	}
	if again := run(time.Hour, 0); again != modulated {
		t.Fatalf("diurnal runs nondeterministic: %d vs %d", again, modulated)
	}
	if cfg := testConfig(); true {
		cfg.DiurnalPeriod = time.Hour
		cfg.DiurnalMin = 1.5
		if cfg.Validate() == nil {
			t.Error("diurnal min > 1 accepted")
		}
	}
}
