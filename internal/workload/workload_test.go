package workload

import (
	"math"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/sim"
)

func testConfig() Config {
	return Config{
		Hosts:           50,
		MeanQueryEvery:  20 * time.Second,
		MeanUpdateEvery: 2 * time.Minute,
		Popularity:      PopularityUniform,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(*Config) {}, true},
		{"zero hosts", func(c *Config) { c.Hosts = 0 }, false},
		{"zero query interval", func(c *Config) { c.MeanQueryEvery = 0 }, false},
		{"zero update interval", func(c *Config) { c.MeanUpdateEvery = 0 }, false},
		{"zero popularity", func(c *Config) { c.Popularity = PopularityInvalid }, false},
		{"zipf ok", func(c *Config) { c.Popularity = PopularityZipf }, true},
		{"single ok", func(c *Config) { c.Popularity = PopularitySingle }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewGeneratorRejectsNilCallbacks(t *testing.T) {
	if _, err := NewGenerator(testConfig(), nil, func(*sim.Kernel, int) {}); err == nil {
		t.Error("nil query callback accepted")
	}
	if _, err := NewGenerator(testConfig(), func(*sim.Kernel, int, data.ItemID) {}, nil); err == nil {
		t.Error("nil update callback accepted")
	}
}

func runGenerator(t *testing.T, cfg Config, horizon time.Duration) (queries map[int][]data.ItemID, updates map[int]int, g *Generator) {
	t.Helper()
	queries = make(map[int][]data.ItemID)
	updates = make(map[int]int)
	g, err := NewGenerator(cfg,
		func(_ *sim.Kernel, host int, item data.ItemID) {
			queries[host] = append(queries[host], item)
		},
		func(_ *sim.Kernel, host int) { updates[host]++ },
	)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(sim.WithSeed(5), sim.WithHorizon(horizon))
	g.Start(k)
	k.Run()
	return queries, updates, g
}

func TestRatesRoughlyMatchMeans(t *testing.T) {
	cfg := testConfig()
	queries, updates, g := runGenerator(t, cfg, time.Hour)
	var nq, nu int
	for _, q := range queries {
		nq += len(q)
	}
	for _, u := range updates {
		nu += u
	}
	// Expected: 50 hosts * 3600s / 20s = 9000 queries; / 120s = 1500 updates.
	if math.Abs(float64(nq)-9000) > 900 {
		t.Errorf("queries = %d, want ~9000", nq)
	}
	if math.Abs(float64(nu)-1500) > 225 {
		t.Errorf("updates = %d, want ~1500", nu)
	}
	gq, gu := g.Counts()
	if int(gq) != nq || int(gu) != nu {
		t.Errorf("Counts() = %d,%d, observed %d,%d", gq, gu, nq, nu)
	}
}

func TestEveryHostParticipates(t *testing.T) {
	queries, updates, _ := runGenerator(t, testConfig(), time.Hour)
	for host := 0; host < 50; host++ {
		if len(queries[host]) == 0 {
			t.Errorf("host %d issued no queries in an hour", host)
		}
		if updates[host] == 0 {
			t.Errorf("host %d issued no updates in an hour", host)
		}
	}
}

func TestUniformNeverQueriesOwnItem(t *testing.T) {
	queries, _, _ := runGenerator(t, testConfig(), time.Hour)
	for host, items := range queries {
		for _, item := range items {
			if int(item) == host {
				t.Fatalf("host %d queried its own item", host)
			}
			if int(item) < 0 || int(item) >= 50 {
				t.Fatalf("host %d queried out-of-range item %v", host, item)
			}
		}
	}
}

func TestUniformCoversItemSpace(t *testing.T) {
	queries, _, _ := runGenerator(t, testConfig(), time.Hour)
	seen := make(map[data.ItemID]bool)
	for _, items := range queries {
		for _, item := range items {
			seen[item] = true
		}
	}
	if len(seen) < 45 {
		t.Errorf("only %d of 50 items ever queried in an hour", len(seen))
	}
}

func TestZipfSkewsDemand(t *testing.T) {
	cfg := testConfig()
	cfg.Popularity = PopularityZipf
	queries, _, _ := runGenerator(t, cfg, time.Hour)
	counts := make([]int, cfg.Hosts)
	total := 0
	for _, items := range queries {
		for _, item := range items {
			counts[item]++
			total++
		}
	}
	top := counts[0] + counts[1] + counts[2]
	if float64(top) < 0.4*float64(total) {
		t.Errorf("zipf top-3 share = %d/%d, want >= 40%%", top, total)
	}
}

func TestSingleModeTargetsItemZero(t *testing.T) {
	cfg := testConfig()
	cfg.Popularity = PopularitySingle
	queries, _, _ := runGenerator(t, cfg, 30*time.Minute)
	if len(queries[0]) != 0 {
		t.Errorf("source host of the single item issued %d queries", len(queries[0]))
	}
	for host, items := range queries {
		for _, item := range items {
			if item != 0 {
				t.Fatalf("host %d queried %v in single mode", host, item)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		g, err := NewGenerator(testConfig(),
			func(*sim.Kernel, int, data.ItemID) {}, func(*sim.Kernel, int) {})
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel(sim.WithSeed(11), sim.WithHorizon(time.Hour))
		g.Start(k)
		k.Run()
		q, u := g.Counts()
		return q*1_000_000 + u
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs diverged: %d vs %d", a, b)
	}
}

func TestCachedDomainRequiresDomain(t *testing.T) {
	cfg := testConfig()
	cfg.Popularity = PopularityCached
	if cfg.Validate() == nil {
		t.Fatal("PopularityCached without Domain accepted")
	}
	cfg.Domain = func(host int) []data.ItemID { return nil }
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCachedDomainQueriesStayInDomain(t *testing.T) {
	cfg := testConfig()
	cfg.Popularity = PopularityCached
	domains := make([][]data.ItemID, cfg.Hosts)
	for h := range domains {
		for j := 1; j <= 3; j++ {
			domains[h] = append(domains[h], data.ItemID((h+j)%cfg.Hosts))
		}
	}
	cfg.Domain = func(host int) []data.ItemID { return domains[host] }
	queries := map[int][]data.ItemID{}
	g, err := NewGenerator(cfg,
		func(_ *sim.Kernel, host int, item data.ItemID) {
			queries[host] = append(queries[host], item)
		},
		func(*sim.Kernel, int) {},
	)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(sim.WithSeed(3), sim.WithHorizon(30*time.Minute))
	g.Start(k)
	k.Run()
	for host, items := range queries {
		allowed := map[data.ItemID]bool{}
		for _, it := range domains[host] {
			allowed[it] = true
		}
		for _, it := range items {
			if !allowed[it] {
				t.Fatalf("host %d queried %v outside its domain %v", host, it, domains[host])
			}
		}
	}
}

func TestCachedDomainEmptyDomainHostIsSilent(t *testing.T) {
	cfg := testConfig()
	cfg.Hosts = 4
	cfg.Popularity = PopularityCached
	cfg.Domain = func(host int) []data.ItemID {
		if host == 2 {
			return nil // host 2 caches nothing
		}
		return []data.ItemID{data.ItemID((host + 1) % 4)}
	}
	silent := true
	g, err := NewGenerator(cfg,
		func(_ *sim.Kernel, host int, _ data.ItemID) {
			if host == 2 {
				silent = false
			}
		},
		func(*sim.Kernel, int) {},
	)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(sim.WithSeed(5), sim.WithHorizon(20*time.Minute))
	g.Start(k)
	k.Run()
	if !silent {
		t.Fatal("empty-domain host issued queries")
	}
}
