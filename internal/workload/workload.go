// Package workload drives the simulation's demand: each mobile host
// generates an independent stream of updates to its own source data and of
// query requests for other hosts' items, both with exponentially
// distributed intervals (paper §5: I_Update mean 2 minutes, I_Query mean
// 20 seconds). Item popularity for queries is uniform by default with an
// optional Zipf mode for skewed-demand experiments.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/telemetry"
)

// QueryFunc is invoked when a host issues a query for an item.
type QueryFunc func(k *sim.Kernel, host int, item data.ItemID)

// UpdateFunc is invoked when a host updates its own source data.
type UpdateFunc func(k *sim.Kernel, host int)

// Popularity selects which item a host queries.
type Popularity int

// Popularity models. Values start at 1 so the zero value is invalid.
const (
	PopularityInvalid Popularity = iota
	// PopularityUniform picks uniformly among all items except the
	// querying host's own (the paper's setup).
	PopularityUniform
	// PopularityZipf skews demand toward low-numbered items with
	// exponent ~1 (used by the skewed-demand ablation).
	PopularityZipf
	// PopularitySingle directs every query at item 0 — the Fig 9 scenario
	// where one randomly chosen source's item is cached by all peers.
	PopularitySingle
	// PopularityCached picks uniformly among a fixed per-host item set
	// (the host's placed cache contents) supplied via Config.Domain. This
	// matches the paper's model, where placement is an assumed substrate
	// and queries exercise the consistency protocol on cached items.
	PopularityCached
)

// Hotspot is a scheduled popularity spike: during [Start, Start+Duration)
// every query targets Item with probability Weight instead of drawing
// from the base popularity model — the flash-crowd pattern where a data
// item suddenly dominates demand (breaking news, a popular update).
// Outside the window demand is exactly the base model.
type Hotspot struct {
	Start    time.Duration
	Duration time.Duration
	Item     data.ItemID
	// Weight in (0, 1] is the probability an in-window query is
	// redirected to Item.
	Weight float64
}

// Config parameterises the generators.
type Config struct {
	Hosts           int
	MeanQueryEvery  time.Duration // I_Query
	MeanUpdateEvery time.Duration // I_Update
	Popularity      Popularity
	// Domain returns the items host may query; required for (and only
	// consulted by) PopularityCached. Hosts with an empty domain issue no
	// queries.
	Domain func(host int) []data.ItemID
	// Hotspots are scheduled flash-crowd popularity spikes layered over
	// the base popularity model. Empty means none — and, crucially, no
	// extra random draws, so configurations without hotspots reproduce
	// the exact event sequences they always have.
	Hotspots []Hotspot
	// DiurnalPeriod, when positive, modulates query demand sinusoidally
	// with this period (one "day"): each scheduled query survives a
	// thinning draw with probability between DiurnalMin (trough) and 1
	// (peak). Zero disables modulation and adds no draws.
	DiurnalPeriod time.Duration
	// DiurnalMin in [0, 1] is the trough's query-acceptance probability.
	DiurnalMin float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Hosts <= 0 {
		return fmt.Errorf("workload: hosts %d must be > 0", c.Hosts)
	}
	if c.MeanQueryEvery <= 0 {
		return fmt.Errorf("workload: mean query interval %v must be > 0", c.MeanQueryEvery)
	}
	if c.MeanUpdateEvery <= 0 {
		return fmt.Errorf("workload: mean update interval %v must be > 0", c.MeanUpdateEvery)
	}
	switch c.Popularity {
	case PopularityUniform, PopularitySingle:
	case PopularityZipf:
		// With one host the only drawable id is the host's own: the
		// old rejection loop span forever. Two hosts is the minimum
		// for any cross-host demand.
		if c.Hosts < 2 {
			return fmt.Errorf("workload: PopularityZipf requires at least 2 hosts, got %d", c.Hosts)
		}
	case PopularityCached:
		if c.Domain == nil {
			return fmt.Errorf("workload: PopularityCached requires a Domain function")
		}
	default:
		return fmt.Errorf("workload: invalid popularity %d", c.Popularity)
	}
	for i, h := range c.Hotspots {
		if h.Item < 0 {
			return fmt.Errorf("workload: hotspot %d has negative item %v", i, h.Item)
		}
		if h.Start < 0 || h.Duration <= 0 {
			return fmt.Errorf("workload: hotspot %d has bad window [%v, +%v)", i, h.Start, h.Duration)
		}
		if h.Weight <= 0 || h.Weight > 1 {
			return fmt.Errorf("workload: hotspot %d weight %g outside (0, 1]", i, h.Weight)
		}
	}
	if c.DiurnalPeriod < 0 {
		return fmt.Errorf("workload: negative diurnal period %v", c.DiurnalPeriod)
	}
	if c.DiurnalPeriod > 0 && (c.DiurnalMin < 0 || c.DiurnalMin > 1) {
		return fmt.Errorf("workload: diurnal minimum %g outside [0, 1]", c.DiurnalMin)
	}
	return nil
}

// Generator schedules the query and update streams on a kernel.
type Generator struct {
	cfg        Config
	rng        *rand.Rand
	zipf       *rand.Zipf
	onQuery    QueryFunc
	onUpdate   UpdateFunc
	queries    uint64
	updates    uint64
	suppressed uint64 // scheduled ticks whose picked item was the host's own
	thinned    uint64 // scheduled ticks removed by diurnal modulation

	suppressedCtr *telemetry.Counter
}

// NewGenerator builds a generator; Start attaches it to a kernel.
func NewGenerator(cfg Config, onQuery QueryFunc, onUpdate UpdateFunc) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if onQuery == nil || onUpdate == nil {
		return nil, fmt.Errorf("workload: nil callback")
	}
	return &Generator{cfg: cfg, onQuery: onQuery, onUpdate: onUpdate}, nil
}

// AttachTelemetry registers the generator's counters on hub. Call before
// Start; a nil hub is a no-op (the handles tolerate it).
func (g *Generator) AttachTelemetry(hub *telemetry.Hub) {
	g.suppressedCtr = hub.Counter("rpcc_workload_suppressed_total",
		"Scheduled queries suppressed because the picked item was the querying host's own source data.")
}

// Start schedules every host's first events on k. Call once.
func (g *Generator) Start(k *sim.Kernel) {
	g.rng = k.Stream("workload")
	if g.cfg.Popularity == PopularityZipf {
		// s=1.1, v=1 over [0, Hosts-2]: one fewer rank than hosts, so
		// pickItem can remap around the querying host's own id instead
		// of rejection-sampling (which never terminates when the only
		// in-range id IS the host). NewZipf needs s > 1.
		g.zipf = rand.NewZipf(k.Stream("workload.zipf"), 1.1, 1, uint64(g.cfg.Hosts-2))
	}
	for host := 0; host < g.cfg.Hosts; host++ {
		host := host
		// Deterministic uniform stagger for the first event of each
		// stream, then exponential gaps.
		k.After(g.uniform(g.cfg.MeanQueryEvery), "workload.query", func(kk *sim.Kernel) {
			g.queryTick(kk, host)
		})
		k.After(g.uniform(g.cfg.MeanUpdateEvery), "workload.update", func(kk *sim.Kernel) {
			g.updateTick(kk, host)
		})
	}
}

func (g *Generator) uniform(mean time.Duration) time.Duration {
	return time.Duration(g.rng.Int63n(int64(mean)))
}

func (g *Generator) exp(mean time.Duration) time.Duration {
	d := time.Duration(g.rng.ExpFloat64() * float64(mean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (g *Generator) queryTick(k *sim.Kernel, host int) {
	// Diurnal thinning first: a tick the day's trough removes never
	// picks an item (and consumes exactly one draw, only when the
	// modulation is configured).
	if g.cfg.DiurnalPeriod > 0 && g.rng.Float64() >= g.diurnalLevel(k.Now()) {
		g.thinned++
	} else if item, ok := g.pickItem(k.Now(), host); ok {
		if int(item) == host {
			// A host never queries its own item (it reads the master
			// copy locally; in particular Fig 9's source host issues no
			// queries). The demand was scheduled, though — count it, or
			// Counts() and telemetry silently disagree with the
			// configured query rate.
			g.suppressed++
			g.suppressedCtr.Inc()
		} else {
			g.queries++
			g.onQuery(k, host, item)
		}
	}
	k.After(g.exp(g.cfg.MeanQueryEvery), "workload.query", func(kk *sim.Kernel) {
		g.queryTick(kk, host)
	})
}

// diurnalLevel is the query-acceptance probability at now: a sinusoid
// with period DiurnalPeriod oscillating between DiurnalMin and 1,
// starting at the midpoint and rising (peak at a quarter period).
func (g *Generator) diurnalLevel(now time.Duration) float64 {
	phase := float64(now%g.cfg.DiurnalPeriod) / float64(g.cfg.DiurnalPeriod)
	min := g.cfg.DiurnalMin
	return min + (1-min)*0.5*(1+math.Sin(2*math.Pi*phase))
}

func (g *Generator) updateTick(k *sim.Kernel, host int) {
	g.updates++
	g.onUpdate(k, host)
	k.After(g.exp(g.cfg.MeanUpdateEvery), "workload.update", func(kk *sim.Kernel) {
		g.updateTick(kk, host)
	})
}

// pickItem selects the item host would query at now. It may return the
// host's own item (PopularityCached domains and hotspots can contain it);
// queryTick suppresses — and counts — those picks.
func (g *Generator) pickItem(now time.Duration, host int) (data.ItemID, bool) {
	if item, ok := g.hotspotItem(now); ok {
		return item, true
	}
	switch g.cfg.Popularity {
	case PopularitySingle:
		return 0, true
	case PopularityCached:
		domain := g.cfg.Domain(host)
		if len(domain) == 0 {
			return 0, false
		}
		return domain[g.rng.Intn(len(domain))], true
	case PopularityZipf:
		// Ranks run over [0, Hosts-2]; remap around the host's own id
		// exactly like the uniform path. Bounded — the old rejection
		// loop span forever when the only in-range id equalled host.
		id := int(g.zipf.Uint64())
		if id >= host {
			id++
		}
		return data.ItemID(id), true
	default: // PopularityUniform
		id := g.rng.Intn(g.cfg.Hosts - 1)
		if id >= host {
			id++
		}
		return data.ItemID(id), true
	}
}

// hotspotItem redirects a query into an active flash-crowd window. Each
// active window gets one weighted draw, in declaration order; the first
// success wins. No hotspots (the default) means no draws at all, so the
// base RNG sequence is untouched.
func (g *Generator) hotspotItem(now time.Duration) (data.ItemID, bool) {
	for _, h := range g.cfg.Hotspots {
		if now >= h.Start && now < h.Start+h.Duration && g.rng.Float64() < h.Weight {
			return h.Item, true
		}
	}
	return 0, false
}

// Counts returns the number of queries and updates issued so far.
func (g *Generator) Counts() (queries, updates uint64) { return g.queries, g.updates }

// Suppressed returns how many scheduled queries were dropped because the
// picked item was the querying host's own (also exported as the
// rpcc_workload_suppressed_total counter).
func (g *Generator) Suppressed() uint64 { return g.suppressed }

// Thinned returns how many scheduled queries the diurnal modulation
// removed.
func (g *Generator) Thinned() uint64 { return g.thinned }
