// Package workload drives the simulation's demand: each mobile host
// generates an independent stream of updates to its own source data and of
// query requests for other hosts' items, both with exponentially
// distributed intervals (paper §5: I_Update mean 2 minutes, I_Query mean
// 20 seconds). Item popularity for queries is uniform by default with an
// optional Zipf mode for skewed-demand experiments.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/sim"
)

// QueryFunc is invoked when a host issues a query for an item.
type QueryFunc func(k *sim.Kernel, host int, item data.ItemID)

// UpdateFunc is invoked when a host updates its own source data.
type UpdateFunc func(k *sim.Kernel, host int)

// Popularity selects which item a host queries.
type Popularity int

// Popularity models. Values start at 1 so the zero value is invalid.
const (
	PopularityInvalid Popularity = iota
	// PopularityUniform picks uniformly among all items except the
	// querying host's own (the paper's setup).
	PopularityUniform
	// PopularityZipf skews demand toward low-numbered items with
	// exponent ~1 (used by the skewed-demand ablation).
	PopularityZipf
	// PopularitySingle directs every query at item 0 — the Fig 9 scenario
	// where one randomly chosen source's item is cached by all peers.
	PopularitySingle
	// PopularityCached picks uniformly among a fixed per-host item set
	// (the host's placed cache contents) supplied via Config.Domain. This
	// matches the paper's model, where placement is an assumed substrate
	// and queries exercise the consistency protocol on cached items.
	PopularityCached
)

// Config parameterises the generators.
type Config struct {
	Hosts           int
	MeanQueryEvery  time.Duration // I_Query
	MeanUpdateEvery time.Duration // I_Update
	Popularity      Popularity
	// Domain returns the items host may query; required for (and only
	// consulted by) PopularityCached. Hosts with an empty domain issue no
	// queries.
	Domain func(host int) []data.ItemID
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Hosts <= 0 {
		return fmt.Errorf("workload: hosts %d must be > 0", c.Hosts)
	}
	if c.MeanQueryEvery <= 0 {
		return fmt.Errorf("workload: mean query interval %v must be > 0", c.MeanQueryEvery)
	}
	if c.MeanUpdateEvery <= 0 {
		return fmt.Errorf("workload: mean update interval %v must be > 0", c.MeanUpdateEvery)
	}
	switch c.Popularity {
	case PopularityUniform, PopularityZipf, PopularitySingle:
	case PopularityCached:
		if c.Domain == nil {
			return fmt.Errorf("workload: PopularityCached requires a Domain function")
		}
	default:
		return fmt.Errorf("workload: invalid popularity %d", c.Popularity)
	}
	return nil
}

// Generator schedules the query and update streams on a kernel.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	zipf     *rand.Zipf
	onQuery  QueryFunc
	onUpdate UpdateFunc
	queries  uint64
	updates  uint64
}

// NewGenerator builds a generator; Start attaches it to a kernel.
func NewGenerator(cfg Config, onQuery QueryFunc, onUpdate UpdateFunc) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if onQuery == nil || onUpdate == nil {
		return nil, fmt.Errorf("workload: nil callback")
	}
	return &Generator{cfg: cfg, onQuery: onQuery, onUpdate: onUpdate}, nil
}

// Start schedules every host's first events on k. Call once.
func (g *Generator) Start(k *sim.Kernel) {
	g.rng = k.Stream("workload")
	if g.cfg.Popularity == PopularityZipf {
		// s=1.1, v=1 over [0, Hosts-1]; NewZipf needs s > 1.
		g.zipf = rand.NewZipf(k.Stream("workload.zipf"), 1.1, 1, uint64(g.cfg.Hosts-1))
	}
	for host := 0; host < g.cfg.Hosts; host++ {
		host := host
		// Deterministic uniform stagger for the first event of each
		// stream, then exponential gaps.
		k.After(g.uniform(g.cfg.MeanQueryEvery), "workload.query", func(kk *sim.Kernel) {
			g.queryTick(kk, host)
		})
		k.After(g.uniform(g.cfg.MeanUpdateEvery), "workload.update", func(kk *sim.Kernel) {
			g.updateTick(kk, host)
		})
	}
}

func (g *Generator) uniform(mean time.Duration) time.Duration {
	return time.Duration(g.rng.Int63n(int64(mean)))
}

func (g *Generator) exp(mean time.Duration) time.Duration {
	d := time.Duration(g.rng.ExpFloat64() * float64(mean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (g *Generator) queryTick(k *sim.Kernel, host int) {
	// A host never queries its own item (it reads the master copy
	// locally; in particular Fig 9's source host issues no queries), and
	// a cached-domain host with nothing cached has nothing to ask for.
	if item, ok := g.pickItem(host); ok && int(item) != host {
		g.queries++
		g.onQuery(k, host, item)
	}
	k.After(g.exp(g.cfg.MeanQueryEvery), "workload.query", func(kk *sim.Kernel) {
		g.queryTick(kk, host)
	})
}

func (g *Generator) updateTick(k *sim.Kernel, host int) {
	g.updates++
	g.onUpdate(k, host)
	k.After(g.exp(g.cfg.MeanUpdateEvery), "workload.update", func(kk *sim.Kernel) {
		g.updateTick(kk, host)
	})
}

// pickItem selects the item host queries, never its own (a host reads its
// own master copy directly; such reads generate no protocol traffic).
func (g *Generator) pickItem(host int) (data.ItemID, bool) {
	switch g.cfg.Popularity {
	case PopularitySingle:
		return 0, true
	case PopularityCached:
		domain := g.cfg.Domain(host)
		if len(domain) == 0 {
			return 0, false
		}
		return domain[g.rng.Intn(len(domain))], true
	case PopularityZipf:
		for {
			id := data.ItemID(g.zipf.Uint64())
			if int(id) != host {
				return id, true
			}
		}
	default: // PopularityUniform
		id := g.rng.Intn(g.cfg.Hosts - 1)
		if id >= host {
			id++
		}
		return data.ItemID(id), true
	}
}

// Counts returns the number of queries and updates issued so far.
func (g *Generator) Counts() (queries, updates uint64) { return g.queries, g.updates }
