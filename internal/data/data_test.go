package data

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewMasterStartsAtVersionZero(t *testing.T) {
	m := NewMaster(7)
	c := m.Current()
	if c.Version != 0 {
		t.Errorf("Version = %d, want 0", c.Version)
	}
	if c.ID != 7 {
		t.Errorf("ID = %v, want D7", c.ID)
	}
	if !c.Consistent() {
		t.Error("fresh master copy not self-consistent")
	}
}

func TestUpdateIncrementsVersion(t *testing.T) {
	m := NewMaster(1)
	for i := 1; i <= 5; i++ {
		c, err := m.Update(time.Duration(i) * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if c.Version != Version(i) {
			t.Fatalf("Version = %d, want %d", c.Version, i)
		}
		if !c.Consistent() {
			t.Fatalf("updated copy v%d not self-consistent", i)
		}
	}
}

func TestUpdateRejectsTimeRegression(t *testing.T) {
	m := NewMaster(1)
	if _, err := m.Update(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(time.Second); err == nil {
		t.Fatal("backward-time update accepted")
	}
}

func TestConsistentDetectsTorn(t *testing.T) {
	c := Copy{ID: 3, Version: 2, Value: ValueFor(3, 1)}
	if c.Consistent() {
		t.Fatal("torn copy (v2 claiming v1 payload) reported consistent")
	}
}

func TestVersionAt(t *testing.T) {
	m := NewMaster(0)
	m.Update(time.Minute)     // v1 @ 1m
	m.Update(3 * time.Minute) // v2 @ 3m
	m.Update(3 * time.Minute) // v3 @ 3m (same instant)
	tests := []struct {
		t    time.Duration
		want Version
	}{
		{0, 0},
		{30 * time.Second, 0},
		{time.Minute, 1},
		{2 * time.Minute, 1},
		{3 * time.Minute, 3},
		{time.Hour, 3},
	}
	for _, tt := range tests {
		if got := m.VersionAt(tt.t); got != tt.want {
			t.Errorf("VersionAt(%v) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestCommitTime(t *testing.T) {
	m := NewMaster(0)
	m.Update(90 * time.Second)
	if ct, ok := m.CommitTime(1); !ok || ct != 90*time.Second {
		t.Errorf("CommitTime(1) = %v,%v", ct, ok)
	}
	if _, ok := m.CommitTime(9); ok {
		t.Error("CommitTime of uncommitted version reported ok")
	}
}

func TestVersionAtInverseOfCommitTimeProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		m := NewMaster(0)
		now := time.Duration(0)
		for _, g := range gaps {
			now += time.Duration(g+1) * time.Second
			if _, err := m.Update(now); err != nil {
				return false
			}
		}
		for v := Version(0); v <= m.Current().Version; v++ {
			ct, ok := m.CommitTime(v)
			if !ok {
				return false
			}
			// At its own commit instant, a version (or a later one that
			// committed at the same instant) is current.
			if m.VersionAt(ct) < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	if _, err := NewRegistry(0); err == nil {
		t.Error("zero items accepted")
	}
	r, err := NewRegistry(50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 50 {
		t.Errorf("Len = %d", r.Len())
	}
	if _, err := r.Master(50); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := r.Master(-1); err == nil {
		t.Error("negative item accepted")
	}
	m, err := r.Master(10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Current().ID != 10 {
		t.Errorf("Master(10).ID = %v", m.Current().ID)
	}
	if r.Owner(10) != 10 || r.OwnedBy(10) != 10 {
		t.Error("identity ownership mapping broken")
	}
}

func TestItemIDString(t *testing.T) {
	if got := ItemID(17).String(); got != "D17" {
		t.Errorf("String = %q", got)
	}
}
