// Package data defines the data items shared in the mobile peer-to-peer
// system and the ground-truth registry of master copies.
//
// Following the paper's system model (§3): each data item D_i has exactly
// one source host M_i that owns the master copy; only the source host may
// modify it; the version number starts at zero on creation and increments
// on every update. The registry is the simulation's ground truth — the
// consistency auditor compares every served query against it.
package data

import (
	"fmt"
	"time"
)

// ItemID identifies a data item. Under the paper's simplifying assumption
// (m = n, host i owns item i) ItemID and host index share a value space,
// but the types are kept distinct so the code never confuses them.
type ItemID int

// String renders the id for traces, e.g. "D17".
func (id ItemID) String() string { return fmt.Sprintf("D%d", int(id)) }

// Version is a data item's monotonically increasing version number.
type Version uint64

// Copy is one concrete version of a data item: the unit stored at source
// hosts, relay peers and cache nodes, and carried inside UPDATE/SEND_NEW/
// POLL_ACK_B payloads.
type Copy struct {
	ID        ItemID
	Version   Version
	Value     string        // synthetic payload, derived from (ID, Version)
	WrittenAt time.Duration // virtual time the source host committed it
}

// ValueFor is the canonical synthetic payload for a given item version.
// Deriving the payload from (id, version) lets tests and the auditor check
// that a served copy was never torn or fabricated.
func ValueFor(id ItemID, v Version) string {
	return fmt.Sprintf("item-%d-v%d", int(id), uint64(v))
}

// Consistent reports whether the copy's payload matches its claimed
// (ID, Version) pair — i.e. the copy is some committed value, never a torn
// or invented one. This is the mechanical core of the paper's
// weak-consistency guarantee (Eq 3.2.3).
func (c Copy) Consistent() bool {
	return c.Value == ValueFor(c.ID, c.Version)
}

// Master is a source host's authoritative copy plus its update history
// timeline, which the auditor uses to translate versions to commit times.
type Master struct {
	cur     Copy
	commits []time.Duration // commits[v] = virtual time version v was written
}

// NewMaster creates version 0 of the item at virtual time 0.
func NewMaster(id ItemID) *Master {
	m := &Master{
		cur: Copy{ID: id, Version: 0, Value: ValueFor(id, 0), WrittenAt: 0},
	}
	m.commits = append(m.commits, 0)
	return m
}

// Update commits the next version at virtual time now and returns the new
// copy. Updates at non-decreasing times are enforced.
func (m *Master) Update(now time.Duration) (Copy, error) {
	if now < m.cur.WrittenAt {
		return Copy{}, fmt.Errorf("data: update at %v before last write %v of %v", now, m.cur.WrittenAt, m.cur.ID)
	}
	next := m.cur.Version + 1
	m.cur = Copy{ID: m.cur.ID, Version: next, Value: ValueFor(m.cur.ID, next), WrittenAt: now}
	m.commits = append(m.commits, now)
	return m.cur, nil
}

// Current returns the authoritative copy.
func (m *Master) Current() Copy { return m.cur }

// VersionAt returns the version that was current at virtual time t —
// i.e. the largest v whose commit time is <= t. It backs the auditor's
// staleness computation (Eq 3.2.2: find τ with C^t = S^{t-τ}).
func (m *Master) VersionAt(t time.Duration) Version {
	// commits is sorted ascending; binary search for the last <= t.
	lo, hi := 0, len(m.commits)-1
	if t >= m.commits[hi] {
		return Version(hi)
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.commits[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Version(lo)
}

// CommitTime returns the virtual time version v was committed, or false if
// v has not been committed.
func (m *Master) CommitTime(v Version) (time.Duration, bool) {
	if int(v) >= len(m.commits) {
		return 0, false
	}
	return m.commits[int(v)], true
}

// Registry is the ground-truth table of every master copy in the system.
type Registry struct {
	masters []*Master
}

// NewRegistry creates n items, item i owned by host i (the paper's m = n
// assumption).
func NewRegistry(n int) (*Registry, error) {
	if n <= 0 {
		return nil, fmt.Errorf("data: need at least one item, got %d", n)
	}
	masters := make([]*Master, n)
	for i := range masters {
		masters[i] = NewMaster(ItemID(i))
	}
	return &Registry{masters: masters}, nil
}

// Len returns the number of items.
func (r *Registry) Len() int { return len(r.masters) }

// Master returns item id's master, or an error for unknown ids.
func (r *Registry) Master(id ItemID) (*Master, error) {
	if int(id) < 0 || int(id) >= len(r.masters) {
		return nil, fmt.Errorf("data: unknown item %v", id)
	}
	return r.masters[int(id)], nil
}

// Owner returns the host index that owns item id (identity mapping).
func (r *Registry) Owner(id ItemID) int { return int(id) }

// OwnedBy returns the item owned by host (identity mapping).
func (r *Registry) OwnedBy(host int) ItemID { return ItemID(host) }
