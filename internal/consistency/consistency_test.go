package consistency

import (
	"strings"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

func newAuditorT(t *testing.T) (*Auditor, *data.Registry) {
	t.Helper()
	reg, err := data.NewRegistry(5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAuditor(reg, 4*time.Minute, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return a, reg
}

func committed(t *testing.T, reg *data.Registry, id data.ItemID, v data.Version) data.Copy {
	t.Helper()
	return data.Copy{ID: id, Version: v, Value: data.ValueFor(id, v)}
}

func TestLevelString(t *testing.T) {
	if LevelStrong.String() != "SC" || LevelDelta.String() != "DC" || LevelWeak.String() != "WC" {
		t.Error("level strings wrong")
	}
	if !strings.Contains(LevelInvalid.String(), "0") {
		t.Errorf("invalid level String = %q", LevelInvalid.String())
	}
	if LevelInvalid.Valid() || Level(9).Valid() {
		t.Error("invalid level reported valid")
	}
}

func TestNewAuditorValidation(t *testing.T) {
	reg, _ := data.NewRegistry(1)
	if _, err := NewAuditor(nil, time.Minute, 0); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := NewAuditor(reg, -time.Minute, 0); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := NewAuditor(reg, time.Minute, -1); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestFreshAnswerPasses(t *testing.T) {
	a, reg := newAuditorT(t)
	ans := Answer{
		Host: 1, Item: 2, Level: LevelStrong,
		IssuedAt: time.Minute, AnsweredAt: time.Minute + time.Second,
		Served: committed(t, reg, 2, 0),
	}
	v, err := a.Check(ans)
	if err != nil {
		t.Fatal(err)
	}
	if v != ViolationNone {
		t.Errorf("violation = %v, want none", v)
	}
	if a.Answers() != 1 || a.TotalViolations() != 0 {
		t.Errorf("answers=%d violations=%d", a.Answers(), a.TotalViolations())
	}
}

func TestStrongViolationOnStaleAnswer(t *testing.T) {
	a, reg := newAuditorT(t)
	m, _ := reg.Master(2)
	if _, err := m.Update(time.Minute); err != nil { // v1 @ 1m
		t.Fatal(err)
	}
	ans := Answer{
		Host: 1, Item: 2, Level: LevelStrong,
		IssuedAt: 9 * time.Minute, AnsweredAt: 10 * time.Minute,
		Served: committed(t, reg, 2, 0), // v0: superseded 9 minutes ago
	}
	v, err := a.Check(ans)
	if err != nil {
		t.Fatal(err)
	}
	if v != ViolationStrong {
		t.Errorf("violation = %v, want strong-stale", v)
	}
	if a.Violations(ViolationStrong) != 1 {
		t.Error("violation not recorded")
	}
}

func TestStrongSlackForgivesInFlight(t *testing.T) {
	a, reg := newAuditorT(t)
	m, _ := reg.Master(2)
	m.Update(10 * time.Minute) // v1 commits just before the answer lands
	ans := Answer{
		Host: 1, Item: 2, Level: LevelStrong,
		AnsweredAt: 10*time.Minute + 500*time.Millisecond,
		Served:     committed(t, reg, 2, 0), // superseded 0.5s ago < 1s slack
	}
	v, err := a.Check(ans)
	if err != nil {
		t.Fatal(err)
	}
	if v != ViolationNone {
		t.Errorf("violation = %v, want none within slack", v)
	}
}

func TestDeltaBound(t *testing.T) {
	a, reg := newAuditorT(t)
	m, _ := reg.Master(1)
	m.Update(time.Minute) // v1 @ 1m

	within := Answer{
		Item: 1, Level: LevelDelta,
		AnsweredAt: 4 * time.Minute, // v0 stale by 3m < Δ=4m
		Served:     committed(t, reg, 1, 0),
	}
	if v, _ := a.Check(within); v != ViolationNone {
		t.Errorf("staleness 3m with Δ=4m flagged: %v", v)
	}

	beyond := Answer{
		Item: 1, Level: LevelDelta,
		AnsweredAt: 10 * time.Minute, // v0 stale by 9m > Δ=4m
		Served:     committed(t, reg, 1, 0),
	}
	if v, _ := a.Check(beyond); v != ViolationDelta {
		t.Errorf("staleness 9m with Δ=4m not flagged: %v", v)
	}
}

func TestWeakAcceptsAnyCommittedVersion(t *testing.T) {
	a, reg := newAuditorT(t)
	m, _ := reg.Master(1)
	m.Update(time.Minute)
	m.Update(2 * time.Minute)
	ans := Answer{
		Item: 1, Level: LevelWeak,
		AnsweredAt: time.Hour,
		Served:     committed(t, reg, 1, 0), // ancient but committed
	}
	if v, _ := a.Check(ans); v != ViolationNone {
		t.Errorf("weak answer flagged: %v", v)
	}
}

func TestTornValueAlwaysViolates(t *testing.T) {
	a, _ := newAuditorT(t)
	ans := Answer{
		Item: 1, Level: LevelWeak,
		Served: data.Copy{ID: 1, Version: 0, Value: "fabricated"},
	}
	if v, _ := a.Check(ans); v != ViolationTorn {
		t.Errorf("torn value = %v, want torn", v)
	}
	wrongItem := Answer{
		Item: 1, Level: LevelWeak,
		Served: data.Copy{ID: 2, Version: 0, Value: data.ValueFor(2, 0)},
	}
	if v, _ := a.Check(wrongItem); v != ViolationTorn {
		t.Errorf("cross-item value = %v, want torn", v)
	}
}

func TestFutureVersionViolates(t *testing.T) {
	a, reg := newAuditorT(t)
	ans := Answer{
		Item: 1, Level: LevelWeak,
		AnsweredAt: time.Minute,
		Served:     committed(t, reg, 1, 7), // v7 never committed
	}
	// Note: a future version's payload matches ValueFor, so it passes the
	// torn check but must be caught by the version bound.
	if v, _ := a.Check(ans); v != ViolationFuture {
		t.Errorf("future version = %v, want future", v)
	}
}

func TestInvalidLevelRejected(t *testing.T) {
	a, reg := newAuditorT(t)
	ans := Answer{Item: 1, Served: committed(t, reg, 1, 0)}
	if _, err := a.Check(ans); err == nil {
		t.Fatal("zero level accepted")
	}
}

func TestUnknownItemRejected(t *testing.T) {
	a, _ := newAuditorT(t)
	ans := Answer{Item: 99, Level: LevelWeak}
	if _, err := a.Check(ans); err == nil {
		t.Fatal("unknown item accepted")
	}
}

func TestStalenessComputation(t *testing.T) {
	a, reg := newAuditorT(t)
	m, _ := reg.Master(3)
	m.Update(2 * time.Minute) // v1 @ 2m
	m.Update(5 * time.Minute) // v2 @ 5m

	tests := []struct {
		name string
		ans  Answer
		want time.Duration
	}{
		{"current version", Answer{Item: 3, AnsweredAt: 6 * time.Minute, Served: committed(t, reg, 3, 2)}, 0},
		{"one behind", Answer{Item: 3, AnsweredAt: 6 * time.Minute, Served: committed(t, reg, 3, 1)}, time.Minute},
		{"two behind", Answer{Item: 3, AnsweredAt: 6 * time.Minute, Served: committed(t, reg, 3, 0)}, 4 * time.Minute},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := a.Staleness(tt.ans)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Staleness = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMeanAndMaxStaleness(t *testing.T) {
	a, reg := newAuditorT(t)
	m, _ := reg.Master(1)
	m.Update(time.Minute)
	a.Check(Answer{Item: 1, Level: LevelWeak, AnsweredAt: time.Minute, Served: committed(t, reg, 1, 1)})     // 0 stale
	a.Check(Answer{Item: 1, Level: LevelWeak, AnsweredAt: 3 * time.Minute, Served: committed(t, reg, 1, 0)}) // 2m stale
	if got := a.MaxStaleness(); got != 2*time.Minute {
		t.Errorf("MaxStaleness = %v", got)
	}
	if got := a.MeanStaleness(); got != time.Minute {
		t.Errorf("MeanStaleness = %v", got)
	}
}

func TestWorstKeepsViolations(t *testing.T) {
	a, _ := newAuditorT(t)
	for i := 0; i < 20; i++ {
		a.Check(Answer{Item: 1, Level: LevelWeak, Served: data.Copy{ID: 1, Value: "bad"}})
	}
	if got := len(a.Worst()); got != 16 {
		t.Errorf("Worst kept %d, want capped 16", got)
	}
	if !strings.Contains(a.String(), "violations=20") {
		t.Errorf("String = %q", a.String())
	}
}

func TestViolationString(t *testing.T) {
	for v, want := range map[Violation]string{
		ViolationNone:   "none",
		ViolationTorn:   "torn-value",
		ViolationFuture: "future-version",
		ViolationStrong: "strong-stale",
		ViolationDelta:  "delta-exceeded",
	} {
		if got := v.String(); got != want {
			t.Errorf("Violation(%d).String = %q, want %q", v, got, want)
		}
	}
}
