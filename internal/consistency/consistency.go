// Package consistency defines the paper's three consistency levels (§3,
// Eq 3.2.1–3.2.3) and an online auditor that checks every answered query
// against the simulation's ground truth.
//
// The auditor gives the reproduction teeth: a strategy cannot "win" the
// latency comparison by serving garbage, because every answer is checked
// for (a) being a committed value — weak consistency, Eq 3.2.3 — and (b)
// its staleness τ, which strong consistency requires to be zero at answer
// time (Eq 3.2.1) and Δ-consistency bounds by Δ (Eq 3.2.2).
package consistency

import (
	"fmt"
	"sync"
	"time"

	"github.com/manetlab/rpcc/internal/data"
)

// Level is a query's consistency requirement.
type Level int

// Consistency levels. Values start at 1 so the zero value is invalid.
const (
	LevelInvalid Level = iota
	// LevelStrong (SC): the answer must be the source's current version
	// at the time the query is served.
	LevelStrong
	// LevelDelta (DC): the answer may lag the source by at most Δ.
	LevelDelta
	// LevelWeak (WC): the answer must be some previously committed value.
	LevelWeak
)

// String renders the level in the paper's abbreviations.
func (l Level) String() string {
	switch l {
	case LevelStrong:
		return "SC"
	case LevelDelta:
		return "DC"
	case LevelWeak:
		return "WC"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Valid reports whether l is a defined level.
func (l Level) Valid() bool {
	return l == LevelStrong || l == LevelDelta || l == LevelWeak
}

// Answer is one served query, as reported by a strategy to the auditor.
type Answer struct {
	Host       int
	Item       data.ItemID
	Level      Level
	IssuedAt   time.Duration
	AnsweredAt time.Duration
	Served     data.Copy
}

// Violation classifies an audit failure.
type Violation int

// Violation kinds.
const (
	ViolationNone Violation = iota
	// ViolationTorn: the served copy is not any committed value.
	ViolationTorn
	// ViolationFuture: the served version exceeds the master's (impossible
	// for a correct simulation; indicates a protocol bug).
	ViolationFuture
	// ViolationStrong: an SC answer was stale.
	ViolationStrong
	// ViolationDelta: a DC answer was staler than Δ.
	ViolationDelta
)

// String names the violation for reports.
func (v Violation) String() string {
	switch v {
	case ViolationNone:
		return "none"
	case ViolationTorn:
		return "torn-value"
	case ViolationFuture:
		return "future-version"
	case ViolationStrong:
		return "strong-stale"
	case ViolationDelta:
		return "delta-exceeded"
	default:
		return fmt.Sprintf("Violation(%d)", int(v))
	}
}

// Auditor cross-checks answers against the master registry.
type Auditor struct {
	mu       sync.Mutex
	registry *data.Registry
	delta    time.Duration
	// slack forgives staleness up to the message in-flight time: a copy
	// that was current when the relay answered may be superseded while
	// the reply is in the air. The paper's definitions are instantaneous;
	// a distributed implementation can only promise them up to delivery
	// latency.
	slack time.Duration

	answers    uint64
	violations map[Violation]uint64
	staleness  []time.Duration
	worst      []Answer // first few violating answers, for diagnostics
}

// NewAuditor builds an auditor. delta is the Δ bound for DC queries; slack
// is the in-flight forgiveness applied to SC/DC checks.
func NewAuditor(registry *data.Registry, delta, slack time.Duration) (*Auditor, error) {
	if registry == nil {
		return nil, fmt.Errorf("consistency: nil registry")
	}
	if delta < 0 || slack < 0 {
		return nil, fmt.Errorf("consistency: negative delta %v or slack %v", delta, slack)
	}
	return &Auditor{
		registry:   registry,
		delta:      delta,
		slack:      slack,
		violations: make(map[Violation]uint64),
	}, nil
}

// Staleness computes how long the served version had been superseded at
// answer time: zero when it was still current.
func (a *Auditor) Staleness(ans Answer) (time.Duration, error) {
	m, err := a.registry.Master(ans.Item)
	if err != nil {
		return 0, err
	}
	cur := m.VersionAt(ans.AnsweredAt)
	if ans.Served.Version >= cur {
		return 0, nil
	}
	// The served version stopped being current when its successor
	// committed.
	succ, ok := m.CommitTime(ans.Served.Version + 1)
	if !ok {
		return 0, fmt.Errorf("consistency: missing commit time for v%d of %v", ans.Served.Version+1, ans.Item)
	}
	return ans.AnsweredAt - succ, nil
}

// Check audits one answer and records the outcome. It returns the
// violation class (ViolationNone when the answer satisfied its level).
func (a *Auditor) Check(ans Answer) (Violation, error) {
	v, _, err := a.CheckStale(ans)
	return v, err
}

// CheckStale audits one answer like Check and also returns the served
// copy's staleness at delivery — the quantity the telemetry layer exports
// per consistency level. Staleness is zero for torn/future answers (the
// notion does not apply to values that were never committed).
func (a *Auditor) CheckStale(ans Answer) (Violation, time.Duration, error) {
	if !ans.Level.Valid() {
		return ViolationNone, 0, fmt.Errorf("consistency: invalid level %v", ans.Level)
	}
	m, err := a.registry.Master(ans.Item)
	if err != nil {
		return ViolationNone, 0, err
	}

	v := ViolationNone
	var stale time.Duration
	switch {
	case !ans.Served.Consistent() || ans.Served.ID != ans.Item:
		v = ViolationTorn
	case ans.Served.Version > m.VersionAt(ans.AnsweredAt):
		v = ViolationFuture
	default:
		var serr error
		stale, serr = a.Staleness(ans)
		if serr != nil {
			return ViolationNone, 0, serr
		}
		a.mu.Lock()
		a.staleness = append(a.staleness, stale)
		a.mu.Unlock()
		switch ans.Level {
		case LevelStrong:
			if stale > a.slack {
				v = ViolationStrong
			}
		case LevelDelta:
			if stale > a.delta+a.slack {
				v = ViolationDelta
			}
		}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	a.answers++
	if v != ViolationNone {
		a.violations[v]++
		if len(a.worst) < 16 {
			a.worst = append(a.worst, ans)
		}
	}
	return v, stale, nil
}

// Answers returns the number of audited answers.
func (a *Auditor) Answers() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.answers
}

// Violations returns the count for one violation class.
func (a *Auditor) Violations(v Violation) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.violations[v]
}

// TotalViolations sums all violation classes.
func (a *Auditor) TotalViolations() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var sum uint64
	for _, n := range a.violations {
		sum += n
	}
	return sum
}

// MeanStaleness returns the mean staleness across audited answers.
func (a *Auditor) MeanStaleness() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.staleness) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range a.staleness {
		sum += s
	}
	return sum / time.Duration(len(a.staleness))
}

// MaxStaleness returns the worst staleness across audited answers.
func (a *Auditor) MaxStaleness() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var m time.Duration
	for _, s := range a.staleness {
		if s > m {
			m = s
		}
	}
	return m
}

// Worst returns up to the first 16 violating answers for diagnostics.
func (a *Auditor) Worst() []Answer {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Answer, len(a.worst))
	copy(out, a.worst)
	return out
}

// String summarises the audit.
func (a *Auditor) String() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var viol uint64
	for _, n := range a.violations {
		viol += n
	}
	return fmt.Sprintf("answers=%d violations=%d meanStale=%v", a.answers, viol, a.meanStalenessLocked())
}

func (a *Auditor) meanStalenessLocked() time.Duration {
	if len(a.staleness) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range a.staleness {
		sum += s
	}
	return sum / time.Duration(len(a.staleness))
}
