package wire

import (
	"strings"
	"testing"
)

func TestGenerateCompose(t *testing.T) {
	cfg := DefaultComposeConfig()
	cfg.N = 3
	cfg.Strategy = StrategyRPCCDC
	yml, err := cfg.GenerateCompose()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !strings.Contains(yml, "rpcc-node-"+string(rune('0'+i))+":") {
			t.Errorf("service %d missing", i)
		}
	}
	// Every container carries the same full peer table, by service DNS name.
	want := "-peers=0=rpcc-node-0:9000,1=rpcc-node-1:9000,2=rpcc-node-2:9000"
	if got := strings.Count(yml, want); got != 3 {
		t.Errorf("peer table appears %d times, want 3\n%s", got, yml)
	}
	if !strings.Contains(yml, "-strategy=rpcc-dc") {
		t.Error("strategy flag missing")
	}
	// Per-node seeds must differ or workloads run in lockstep.
	if !strings.Contains(yml, "-seed=1\n") || !strings.Contains(yml, "-seed=3\n") {
		t.Error("per-node seeds not decorrelated")
	}
	if !strings.Contains(yml, "stop_grace_period") {
		t.Error("no stop grace period: SIGTERM drain would be cut short")
	}
}

func TestGenerateChurn(t *testing.T) {
	sh, err := DefaultComposeConfig().GenerateChurn()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sh, "#!/bin/sh") {
		t.Error("missing shebang")
	}
	for _, frag := range []string{`PREFIX="rpcc-node-"`, "docker start", "docker stop", "MIN_UP=3"} {
		if !strings.Contains(sh, frag) {
			t.Errorf("churn script missing %q", frag)
		}
	}
}

func TestComposeValidate(t *testing.T) {
	bad := map[string]func(*ComposeConfig){
		"one node":     func(c *ComposeConfig) { c.N = 1 },
		"bad strategy": func(c *ComposeConfig) { c.Strategy = "tcp" },
		"empty image":  func(c *ComposeConfig) { c.Image = "" },
		"bad port":     func(c *ComposeConfig) { c.Port = 70000 },
		"zero cache":   func(c *ComposeConfig) { c.CacheNum = 0 },
	}
	for name, f := range bad {
		c := DefaultComposeConfig()
		f(&c)
		if _, err := c.GenerateCompose(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCyclicPlacement(t *testing.T) {
	got := CyclicPlacement(1, 5, 3)
	for i, want := range []int{2, 3, 4} {
		if int(got[i]) != want {
			t.Fatalf("placement = %v", got)
		}
	}
	for _, item := range CyclicPlacement(4, 5, 10) {
		if item == 4 {
			t.Fatal("placement contains self")
		}
	}
	if n := len(CyclicPlacement(0, 3, 10)); n != 2 {
		t.Fatalf("capped placement has %d items, want 2", n)
	}
}
