// Package wire binds the simulator's protocol engines to real UDP
// sockets. The deterministic event kernel (internal/sim) becomes a
// real-time executive: virtual time is mapped 1:1 onto wall time elapsed
// since daemon start, so every TTR/TTP/TTN comparison the engine makes
// has exactly the simulator's semantics, while deliveries arrive from
// the network instead of from scheduled events.
//
// Threading model: the engine stays single-threaded on the kernel
// goroutine, exactly as in simulation. The socket read loop is the only
// other goroutine touching protocol state, and it does so exclusively by
// injecting closures into the clock, which runs them on the kernel
// goroutine between events. Nothing else crosses the boundary.
package wire

import (
	"fmt"
	"sync"
	"time"

	"github.com/manetlab/rpcc/internal/sim"
)

// Clock drives a sim.Kernel against wall time. Virtual time t on the
// kernel corresponds to wall instant start+t; the loop sleeps until the
// next due event (or an injection) instead of busy-polling.
type Clock struct {
	k *sim.Kernel
	// idleTick bounds how long the loop sleeps with an empty queue, so a
	// quiet daemon still notices stop requests promptly.
	idleTick time.Duration

	start  time.Time
	inject chan func(*sim.Kernel)
	quit   chan struct{}
	done   chan struct{}

	startOnce sync.Once
	quitOnce  sync.Once
}

// NewClock wraps k. Call Start to begin advancing it.
func NewClock(k *sim.Kernel) *Clock {
	return &Clock{
		k:        k,
		idleTick: 50 * time.Millisecond,
		inject:   make(chan func(*sim.Kernel), 1024),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start marks the epoch (virtual t=0) and launches the executive
// goroutine. Everything scheduled on the kernel before Start runs at its
// offset from the epoch. Start is idempotent.
func (c *Clock) Start() {
	c.startOnce.Do(func() {
		c.start = time.Now()
		go c.loop()
	})
}

// Epoch returns the wall instant of virtual t=0 (zero before Start).
func (c *Clock) Epoch() time.Time { return c.start }

// Elapsed returns the current virtual time (wall time since Start).
func (c *Clock) Elapsed() time.Duration { return time.Since(c.start) }

// Inject runs fn on the kernel goroutine at the current virtual instant.
// It is the only way other goroutines (socket readers, signal handlers)
// may touch engine state. Returns false if the clock has stopped and fn
// will never run.
func (c *Clock) Inject(fn func(*sim.Kernel)) bool {
	// Check quit first: a two-way select with both channels ready picks
	// randomly, and after Stop the refusal must be deterministic.
	select {
	case <-c.quit:
		return false
	default:
	}
	select {
	case <-c.quit:
		return false
	case c.inject <- fn:
		return true
	}
}

// Stop halts the executive and waits up to deadline for the loop to
// finish its current handler and exit. A deadline of zero waits
// indefinitely. Stop is idempotent; later calls just re-wait.
func (c *Clock) Stop(deadline time.Duration) error {
	c.quitOnce.Do(func() { close(c.quit) })
	if deadline <= 0 {
		<-c.done
		return nil
	}
	select {
	case <-c.done:
		return nil
	case <-time.After(deadline):
		return fmt.Errorf("wire: clock did not stop within %v", deadline)
	}
}

func (c *Clock) loop() {
	defer close(c.done)
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		// Fire everything due at the current wall offset, then sleep
		// until the next event is due (or idleTick with an empty queue).
		c.k.RunUntil(time.Since(c.start))
		wait := c.idleTick
		if next, ok := c.k.NextEventAt(); ok {
			if d := next - time.Since(c.start); d < wait {
				wait = d
			}
		}
		if wait < 0 {
			wait = 0
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)

		select {
		case fn := <-c.inject:
			// Advance the clock first so the injection (a datagram
			// delivery, typically) is stamped with the instant it
			// actually happened, then drain any backlog.
			c.k.RunUntil(time.Since(c.start))
			fn(c.k)
		drain:
			for {
				select {
				case fn := <-c.inject:
					fn(c.k)
				default:
					break drain
				}
			}
		case <-timer.C:
		case <-c.quit:
			// Final drain: run everything already due so in-flight
			// handlers complete, then exit. Nothing new is admitted.
			c.k.RunUntil(time.Since(c.start))
			return
		}
	}
}
