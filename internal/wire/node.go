package wire

import (
	"fmt"
	"net"
	"strings"
	"time"

	"github.com/manetlab/rpcc/internal/cache"
	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
	"github.com/manetlab/rpcc/internal/telemetry"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
	"github.com/manetlab/rpcc/internal/workload"
)

// Strategy names a consistency level policy for a live node. Only the
// RPCC variants run over the wire: the push/pull baselines schedule
// periodic duties at every node of the engine, which a one-node daemon
// cannot gate to itself.
const (
	StrategyRPCCSC = "rpcc-sc"
	StrategyRPCCDC = "rpcc-dc"
	StrategyRPCCWC = "rpcc-wc"
	StrategyRPCCHY = "rpcc-hy"
)

// ParseStrategy validates a strategy name.
func ParseStrategy(s string) (string, error) {
	switch s {
	case StrategyRPCCSC, StrategyRPCCDC, StrategyRPCCWC, StrategyRPCCHY:
		return s, nil
	default:
		return "", fmt.Errorf("wire: unknown strategy %q (want rpcc-sc|rpcc-dc|rpcc-wc|rpcc-hy)", s)
	}
}

// NodeConfig assembles one live daemon.
type NodeConfig struct {
	// Self is this daemon's node id; Nodes the cluster width.
	Self  int
	Nodes int
	// Peers maps node id -> "host:port" for every cluster member.
	Peers map[int]string
	// Conn, when non-nil, is a pre-bound socket (see TransportConfig).
	Conn *net.UDPConn
	// Seed feeds this daemon's kernel streams (workload arrivals, level
	// mix). Give every daemon a distinct seed or they query in lockstep.
	Seed int64
	// Strategy is one of the rpcc-* variants.
	Strategy string
	// Core is the protocol configuration (TTN/TTR/TTP and friends). The
	// daemon overrides ActiveSource to gate source duties to Self.
	Core core.Config
	// Placement lists the foreign items warmed into Self's cache at
	// boot — the paper's assumed placement substrate.
	Placement []data.ItemID
	// CacheCapacity bounds the store (raised to fit Placement).
	CacheCapacity int
	// QueryInterval / UpdateInterval drive the built-in workload
	// generator; zero QueryInterval disables it entirely (an externally
	// driven node).
	QueryInterval  time.Duration
	UpdateInterval time.Duration
	// Chaos, when non-nil, installs the wire-level fault shim on this
	// daemon's transport; ChaosOffset maps the daemon's clock onto
	// campaign time (non-zero for daemons cold-restarted mid-campaign).
	Chaos       *Script
	ChaosOffset time.Duration
	// ResumeOwnVersion fast-forwards Self's own item to this version at
	// Start, without announcing or reporting the skipped versions — how a
	// cold-restarted daemon resumes its durable write counter instead of
	// re-committing version numbers its previous incarnation already
	// published.
	ResumeOwnVersion data.Version
	// Hub receives telemetry (nil records nothing).
	Hub *telemetry.Hub
	// Trace, when non-nil, threads causal trace contexts through this
	// daemon's queries and ships them on the wire (version-2 frames).
	// Create it with region = Self so span ids never collide across the
	// cluster; read it back with TraceSpans after Stop.
	Trace *ctrace.Collector
	// OnAnswer observes every served answer with its wall-clock instant;
	// the cluster harness feeds these to the live oracle.
	OnAnswer func(nd int, item data.ItemID, level consistency.Level, served data.Copy, at time.Time)
	// OnCommit observes every committed write at Self with its
	// wall-clock instant.
	OnCommit func(item data.ItemID, v data.Version, at time.Time)
}

// Validate reports configuration errors.
func (c NodeConfig) Validate() error {
	if _, err := ParseStrategy(c.Strategy); err != nil {
		return err
	}
	if c.UpdateInterval <= 0 && c.QueryInterval > 0 {
		return fmt.Errorf("wire: workload needs a positive update interval")
	}
	for _, item := range c.Placement {
		if int(item) == c.Self {
			return fmt.Errorf("wire: placement contains self-owned item %d", item)
		}
		if item < 0 || int(item) >= c.Nodes {
			return fmt.Errorf("wire: placement item %d out of range [0,%d)", item, c.Nodes)
		}
	}
	return nil
}

// Node is one live daemon: the full N-wide RPCC engine bound to a UDP
// transport, with source duties gated to Self. Protocol state for
// foreign nodes exists but stays inert — their receivers never fire
// here, their ttn ticks are ActiveSource-gated no-ops — so N daemons
// each running "their" slice of the same engine compose into exactly the
// simulated system.
type Node struct {
	cfg     NodeConfig
	k       *sim.Kernel
	clock   *Clock
	tr      *Transport
	reg     *data.Registry
	stores  []*cache.Store
	chassis *node.Chassis
	eng     *core.Engine
	wl      *workload.Generator
	traffic *stats.Traffic
	lat     *stats.Latency
	started bool
	stopped bool
}

// NewNode assembles a daemon. Nothing runs until Start.
func NewNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel(sim.WithSeed(cfg.Seed))
	clock := NewClock(k)
	traffic := stats.NewTraffic()
	tr, err := NewTransport(TransportConfig{
		Self: cfg.Self, Nodes: cfg.Nodes, Peers: cfg.Peers, Conn: cfg.Conn,
	}, clock, traffic)
	if err != nil {
		return nil, err
	}
	if cfg.Chaos != nil {
		ch, err := NewChaos(cfg.Chaos, cfg.Self, cfg.Nodes, cfg.ChaosOffset)
		if err != nil {
			tr.Close()
			return nil, err
		}
		tr.SetChaos(ch)
	}

	reg, err := data.NewRegistry(cfg.Nodes)
	if err != nil {
		tr.Close()
		return nil, err
	}
	capacity := cfg.CacheCapacity
	if capacity < len(cfg.Placement) {
		capacity = len(cfg.Placement)
	}
	if capacity <= 0 {
		capacity = 1
	}
	stores := make([]*cache.Store, cfg.Nodes)
	for i := range stores {
		if stores[i], err = cache.NewStore(capacity); err != nil {
			tr.Close()
			return nil, err
		}
	}
	aud, err := consistency.NewAuditor(reg, cfg.Core.TTP, 5*time.Second)
	if err != nil {
		tr.Close()
		return nil, err
	}
	lat := stats.NewLatency()
	chassis, err := node.NewChassis(node.DefaultConfig(), tr, reg, stores, lat, aud)
	if err != nil {
		tr.Close()
		return nil, err
	}
	chassis.Hub = cfg.Hub
	if cfg.Trace != nil {
		chassis.Tracer = cfg.Trace
		tr.SetTraceCollector(cfg.Trace)
	}

	coreCfg := cfg.Core
	self := cfg.Self
	coreCfg.ActiveSource = func(host int) bool { return host == self }
	eng, err := core.New(coreCfg, chassis, core.Telemetry{})
	if err != nil {
		tr.Close()
		return nil, err
	}

	n := &Node{
		cfg: cfg, k: k, clock: clock, tr: tr, reg: reg, stores: stores,
		chassis: chassis, eng: eng, traffic: traffic, lat: lat,
	}
	if cfg.OnAnswer != nil {
		chassis.SetAnswerObserver(func(_ *sim.Kernel, q *node.Query, served data.Copy) {
			cfg.OnAnswer(self, q.Item, q.Level, served, time.Now())
		})
	}

	if cfg.QueryInterval > 0 {
		levelFor := n.levelSelector()
		wlCfg := workload.Config{
			Hosts:           cfg.Nodes,
			MeanQueryEvery:  cfg.QueryInterval,
			MeanUpdateEvery: cfg.UpdateInterval,
			Popularity:      workload.PopularityCached,
			// Only Self has a query domain: each daemon drives its own
			// node's demand, foreign hosts' streams tick inertly.
			Domain: func(host int) []data.ItemID {
				if host == self {
					return cfg.Placement
				}
				return nil
			},
		}
		n.wl, err = workload.NewGenerator(wlCfg,
			func(kk *sim.Kernel, host int, item data.ItemID) {
				n.eng.OnQuery(kk, host, item, levelFor(kk))
			},
			func(kk *sim.Kernel, host int) {
				if host != self {
					return // the owning daemon commits its own writes
				}
				n.commit(kk)
			},
		)
		if err != nil {
			tr.Close()
			return nil, err
		}
	}
	return n, nil
}

// levelSelector maps the strategy to a per-query consistency level.
func (n *Node) levelSelector() func(*sim.Kernel) consistency.Level {
	switch n.cfg.Strategy {
	case StrategyRPCCSC:
		return func(*sim.Kernel) consistency.Level { return consistency.LevelStrong }
	case StrategyRPCCDC:
		return func(*sim.Kernel) consistency.Level { return consistency.LevelDelta }
	case StrategyRPCCWC:
		return func(*sim.Kernel) consistency.Level { return consistency.LevelWeak }
	default: // hybrid: equal thirds
		levels := []consistency.Level{
			consistency.LevelStrong, consistency.LevelDelta, consistency.LevelWeak,
		}
		return func(k *sim.Kernel) consistency.Level {
			return levels[k.Stream("wire.levels").Intn(len(levels))]
		}
	}
}

// commit performs one write to Self's item and reports it.
func (n *Node) commit(k *sim.Kernel) {
	n.eng.OnUpdate(k, n.cfg.Self)
	if n.cfg.OnCommit == nil {
		return
	}
	item := n.reg.OwnedBy(n.cfg.Self)
	m, err := n.reg.Master(item)
	if err != nil {
		return
	}
	cur := m.Current()
	n.cfg.OnCommit(cur.ID, cur.Version, time.Now())
}

// Start warms the placement, starts the engine and workload on the
// kernel, then opens the wire: the read loop and the real-time clock.
func (n *Node) Start() error {
	if n.started {
		return fmt.Errorf("wire: node already started")
	}
	n.started = true
	if n.cfg.ResumeOwnVersion > 0 {
		// Resume the durable write counter: a fresh registry restarts
		// Self's item at version 0, and re-publishing version numbers the
		// previous incarnation already committed would corrupt the
		// cluster's commit ledger.
		m, err := n.reg.Master(n.reg.OwnedBy(n.cfg.Self))
		if err != nil {
			return err
		}
		for m.Current().Version < n.cfg.ResumeOwnVersion {
			if _, err := m.Update(n.k.Now()); err != nil {
				return err
			}
		}
	}
	for _, item := range n.cfg.Placement {
		m, err := n.reg.Master(item)
		if err != nil {
			return err
		}
		n.eng.Warm(n.k, n.cfg.Self, m.Current())
	}
	if err := n.eng.Start(n.k); err != nil {
		return err
	}
	if n.wl != nil {
		n.wl.Start(n.k)
	}
	n.tr.Run()
	n.clock.Start()
	return nil
}

// Inject runs fn on the kernel goroutine (external query drivers).
func (n *Node) Inject(fn func(k *sim.Kernel)) bool { return n.clock.Inject(fn) }

// Query injects one query at Self for item at the given level — the
// externally driven path (no built-in workload needed). The outcome is
// observable through OnAnswer or the chassis counters.
func (n *Node) Query(item data.ItemID, level consistency.Level) bool {
	return n.clock.Inject(func(k *sim.Kernel) {
		n.eng.OnQuery(k, n.cfg.Self, item, level)
	})
}

// Stop shuts the daemon down: the clock finishes its in-flight handler
// and every already-due event within the drain deadline, then the socket
// closes and telemetry is finalised. Safe to call more than once.
func (n *Node) Stop(drain time.Duration) error {
	if n.stopped {
		return nil
	}
	n.stopped = true
	stopErr := n.clock.Stop(drain)
	closeErr := n.tr.Close()
	// The kernel goroutine has exited (or been abandoned past deadline);
	// finalise telemetry with the last virtual instant.
	if stopErr == nil {
		n.cfg.Hub.AttachTraffic(n.traffic)
		n.cfg.Hub.Finish(n.k.Now())
	}
	if stopErr != nil {
		return stopErr
	}
	return closeErr
}

// TraceSpans exports the daemon's causal trace in canonical order (nil
// without a NodeConfig.Trace collector). Call after Stop: the collector
// is confined to the kernel goroutine while the clock runs.
func (n *Node) TraceSpans() []ctrace.Span {
	return n.cfg.Trace.Export()
}

// LocalAddr returns the daemon's bound UDP address.
func (n *Node) LocalAddr() *net.UDPAddr { return n.tr.LocalAddr() }

// Chassis exposes query accounting (read after Stop).
func (n *Node) Chassis() *node.Chassis { return n.chassis }

// Traffic exposes the per-kind wire accounting.
func (n *Node) Traffic() *stats.Traffic { return n.traffic }

// Latency exposes the answered-query latency histogram.
func (n *Node) Latency() *stats.Latency { return n.lat }

// Transport exposes the UDP layer (diagnostics).
func (n *Node) Transport() *Transport { return n.tr }

// WorkloadCounts returns queries and updates issued by the built-in
// generator (zero without one). Read after Stop.
func (n *Node) WorkloadCounts() (queries, updates uint64) {
	if n.wl == nil {
		return 0, 0
	}
	return n.wl.Counts()
}

// Summary renders a one-line daemon report.
func (n *Node) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %d (%s): issued=%d answered=%d failed=%d tx=%d bytes=%d",
		n.cfg.Self, n.cfg.Strategy, n.chassis.Issued(), n.chassis.Answered(),
		n.chassis.Failed(), n.traffic.TotalTx(), n.traffic.TotalBytes())
	if d := n.tr.DecodeErrors(); d > 0 {
		fmt.Fprintf(&b, " decode-errs=%d", d)
	}
	if e := n.tr.ReadErrors(); e > 0 {
		fmt.Fprintf(&b, " read-errs=%d", e)
	}
	return b.String()
}
