package wire

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/sim"
)

// TestClockFiresScheduledEvents maps virtual time onto wall time: an
// event scheduled 30 ms out must fire within a generous real-time bound.
func TestClockFiresScheduledEvents(t *testing.T) {
	k := sim.NewKernel()
	var fired atomic.Bool
	var at time.Duration
	k.After(30*time.Millisecond, "test.fire", func(kk *sim.Kernel) {
		at = kk.Now()
		fired.Store(true)
	})
	c := NewClock(k)
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("event never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Stop(time.Second); err != nil {
		t.Fatal(err)
	}
	if at < 30*time.Millisecond {
		t.Fatalf("event fired at virtual %v, before its due time", at)
	}
	if at > time.Second {
		t.Fatalf("event fired at virtual %v, far past its due time", at)
	}
}

// TestClockInjectRunsOnKernelGoroutine proves injected closures see the
// kernel single-threaded: an injection can schedule follow-ups and read
// Now, and kernel state mutated only from handlers stays consistent
// under the race detector.
func TestClockInjectRunsOnKernelGoroutine(t *testing.T) {
	k := sim.NewKernel()
	c := NewClock(k)
	// Kernel-confined state: handlers and injections increment without
	// atomics; the race detector fails the test if confinement breaks.
	counter := 0
	k.After(5*time.Millisecond, "test.tick", func(kk *sim.Kernel) { counter++ })
	c.Start()

	done := make(chan struct{})
	if !c.Inject(func(kk *sim.Kernel) {
		counter++
		kk.After(time.Millisecond, "test.follow", func(*sim.Kernel) {
			counter++
			close(done)
		})
	}) {
		t.Fatal("inject refused on a running clock")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("injected follow-up never ran")
	}
	if err := c.Stop(time.Second); err != nil {
		t.Fatal(err)
	}
	if counter < 2 {
		t.Fatalf("counter = %d, want >= 2", counter)
	}
}

// TestClockStopDrainsAndRefusesInjection: after Stop, Inject reports
// false and the loop has exited.
func TestClockStopDrainsAndRefusesInjection(t *testing.T) {
	k := sim.NewKernel()
	c := NewClock(k)
	c.Start()
	if err := c.Stop(time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Inject(func(*sim.Kernel) {}) {
		t.Fatal("inject accepted after stop")
	}
	// Idempotent.
	if err := c.Stop(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestClockVirtualMatchesWall: after ~100 ms of wall time, the kernel's
// virtual clock must have advanced commensurately (events drive
// RunUntil, which advances Now even with an empty queue).
func TestClockVirtualMatchesWall(t *testing.T) {
	k := sim.NewKernel()
	c := NewClock(k)
	c.Start()
	time.Sleep(100 * time.Millisecond)
	if err := c.Stop(time.Second); err != nil {
		t.Fatal(err)
	}
	if now := k.Now(); now < 50*time.Millisecond {
		t.Fatalf("virtual clock %v lags wall time badly", now)
	}
}
