package wire

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/manetlab/rpcc/internal/faults"
	"github.com/manetlab/rpcc/internal/stats"
)

// Wire-level chaos plane: the same seeded, declarative adversity the
// simulator's fault plane (internal/faults) injects through netsim,
// applied at the wire.Transport seam of live UDP daemons. A Script is
// shared by every daemon of a cluster; each daemon derives its own
// per-link Gilbert–Elliott chains and jitter streams from the script
// seed and the node ids, so the whole cluster computes one coherent
// fault schedule with no coordination traffic.
//
// Determinism discipline: everything *scheduled* (partition windows,
// crash/restart times, model parameters, derived stream seeds) is a pure
// function of the script — ScheduleLog renders it byte-identically on
// every run, which is what the wire-chaos CI gate byte-compares. The
// *per-frame* outcomes (which datagram a chain eats) are deterministic
// given the reception sequence; across live runs the sequence itself
// carries wall-clock nondeterminism, so per-frame outcomes are
// reproducible in distribution, not byte-for-byte — the honest best a
// real network allows, documented in DESIGN.md §15.

// Duration marshals as a human-readable Go duration string ("250ms") so
// fault scripts stay hand-editable; plain nanosecond numbers are also
// accepted on decode.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "1.5s" strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("wire: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("wire: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// ScriptPartition cuts the cluster into islands for [Start, End): frames
// whose endpoints sit in different islands are dropped at the receiver
// (cause "partition"). Nodes listed in no island belong to island 0,
// matching faults.Partition semantics.
type ScriptPartition struct {
	Start   Duration `json:"start"`
	End     Duration `json:"end"`
	Islands [][]int  `json:"islands"`
}

// ScriptCrash schedules one daemon crash: the node dies cold at At and
// restarts RestartAfter later (zero: never). The cluster harness's churn
// controller executes these; a transport shim cannot kill its own
// process.
type ScriptCrash struct {
	At           Duration `json:"at"`
	Node         int      `json:"node"`
	RestartAfter Duration `json:"restart_after"`
}

// Script is one declarative wire-level fault campaign, shared verbatim
// by every daemon in the cluster. Same script + same seed ⇒ same
// schedule on every daemon and every run.
type Script struct {
	// Seed roots every derived stream (per-link loss chains, per-node
	// jitter/duplication draws).
	Seed int64 `json:"seed"`
	// Loss installs the two-state Gilbert–Elliott bursty-loss model on
	// every incoming link (nil: lossless). Field names follow
	// faults.GilbertParams.
	Loss *faults.GilbertParams `json:"loss,omitempty"`
	// Delay is a fixed extra latency added to every delivered frame;
	// Jitter adds a further uniform draw in [0, Jitter). Jitter is also
	// the reordering mechanism: a later frame drawing a smaller jitter
	// overtakes an earlier one.
	Delay  Duration `json:"delay,omitempty"`
	Jitter Duration `json:"jitter,omitempty"`
	// DupProb duplicates a delivered frame with this probability; the
	// duplicate arrives after an independent delay+jitter draw.
	DupProb float64 `json:"dup_prob,omitempty"`
	// Partitions lists scheduled island cuts (non-overlapping).
	Partitions []ScriptPartition `json:"partitions,omitempty"`
	// Crashes lists scheduled daemon crash/restarts.
	Crashes []ScriptCrash `json:"crashes,omitempty"`
}

// ParseScript decodes a JSON fault script. Unknown fields are rejected:
// a typo in a chaos campaign must fail loudly, not silently un-inject.
func ParseScript(b []byte) (*Script, error) {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var s Script
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("wire: parse fault script: %w", err)
	}
	return &s, nil
}

// LoadScript reads and parses a JSON fault script file.
func LoadScript(path string) (*Script, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseScript(b)
}

// faultsConfig converts the script's scheduled faults into the sim fault
// plane's Config so validation stays single-sourced.
func (s *Script) faultsConfig() faults.Config {
	fc := faults.Config{Loss: s.Loss, DupProb: s.DupProb}
	for _, p := range s.Partitions {
		fc.Partitions = append(fc.Partitions, faults.Partition{
			Start: p.Start.D(), End: p.End.D(), Islands: p.Islands,
		})
	}
	for _, c := range s.Crashes {
		fc.Crashes = append(fc.Crashes, faults.Crash{
			At: c.At.D(), Node: c.Node, RestartAfter: c.RestartAfter.D(),
		})
	}
	return fc
}

// Validate reports script errors for an n-node cluster. The scheduled
// faults reuse the sim fault plane's validation (window shapes, island
// membership, crash ranges, Gilbert parameters).
func (s *Script) Validate(n int) error {
	if err := s.faultsConfig().Validate(n); err != nil {
		return err
	}
	if s.Delay < 0 || s.Jitter < 0 {
		return fmt.Errorf("wire: negative chaos delay %v or jitter %v", s.Delay.D(), s.Jitter.D())
	}
	return nil
}

// chainSeed derives the loss-chain seed for the from→to link. Pure
// arithmetic on the script seed and endpoint ids, so both ends (and the
// schedule log) agree without communicating.
func chainSeed(seed int64, from, to int) int64 {
	return seed + 1_000_003*int64(from+1) + 7_919*int64(to+1)
}

// nodeSeed derives the per-node jitter/duplication stream seed.
func nodeSeed(seed int64, self int) int64 {
	return seed + 104_729*int64(self+1)
}

// ScheduleLog renders the expanded fault schedule for an n-node cluster:
// every scheduled window and crash, the model parameters, and the
// derived stream seeds. It is a pure function of (script, n) — two runs
// of the same script must produce byte-identical logs, which the
// wire-chaos CI gate enforces with cmp.
func (s *Script) ScheduleLog(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "wire-chaos schedule: seed=%d nodes=%d\n", s.Seed, n)
	if s.Loss != nil {
		fmt.Fprintf(&b, "loss: gilbert PGoodToBad=%g PBadToGood=%g LossGood=%g LossBad=%g\n",
			s.Loss.PGoodToBad, s.Loss.PBadToGood, s.Loss.LossGood, s.Loss.LossBad)
	} else {
		fmt.Fprintf(&b, "loss: none\n")
	}
	fmt.Fprintf(&b, "delay: %v jitter: %v dup: %g\n", s.Delay.D(), s.Jitter.D(), s.DupProb)
	parts := append([]ScriptPartition(nil), s.Partitions...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Start < parts[j].Start })
	for i, p := range parts {
		fmt.Fprintf(&b, "partition %d: [%v,%v) islands=%v\n", i+1, p.Start.D(), p.End.D(), p.Islands)
	}
	crashes := append([]ScriptCrash(nil), s.Crashes...)
	sort.Slice(crashes, func(i, j int) bool { return crashes[i].At < crashes[j].At })
	for i, c := range crashes {
		if c.RestartAfter > 0 {
			fmt.Fprintf(&b, "crash %d: node %d at %v restart after %v\n", i+1, c.Node, c.At.D(), c.RestartAfter.D())
		} else {
			fmt.Fprintf(&b, "crash %d: node %d at %v (no restart)\n", i+1, c.Node, c.At.D())
		}
	}
	for to := 0; to < n; to++ {
		fmt.Fprintf(&b, "node %d: stream-seed=%d", to, nodeSeed(s.Seed, to))
		if s.Loss != nil {
			fmt.Fprintf(&b, " chain-seeds=[")
			first := true
			for from := 0; from < n; from++ {
				if from == to {
					continue
				}
				if !first {
					fmt.Fprintf(&b, " ")
				}
				first = false
				fmt.Fprintf(&b, "%d:%d", from, chainSeed(s.Seed, from, to))
			}
			fmt.Fprintf(&b, "]")
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// DemoScript is the canonical chaos campaign for an n-node cluster over
// duration d: bursty Gilbert–Elliott loss throughout, two partition
// windows splitting the cluster in half, and two crash/restarts at
// distinct nodes — the `make wire-chaos-smoke` shape. Windows are fixed
// fractions of d so the same campaign scales with the run length.
func DemoScript(n int, d time.Duration, seed int64) *Script {
	half := make([]int, 0, n/2)
	rest := make([]int, 0, n-n/2)
	for i := 0; i < n; i++ {
		if i < n/2 {
			half = append(half, i)
		} else {
			rest = append(rest, i)
		}
	}
	frac := func(num, den int64) Duration { return Duration(d * time.Duration(num) / time.Duration(den)) }
	s := &Script{
		Seed: seed,
		Loss: &faults.GilbertParams{
			PGoodToBad: 0.05, PBadToGood: 0.25, LossGood: 0.005, LossBad: 0.6,
		},
		Delay:   Duration(2 * time.Millisecond),
		Jitter:  Duration(8 * time.Millisecond),
		DupProb: 0.02,
		Partitions: []ScriptPartition{
			{Start: frac(3, 20), End: frac(11, 40), Islands: [][]int{half, rest}},
			{Start: frac(10, 20), End: frac(25, 40), Islands: [][]int{half, rest}},
		},
	}
	if n >= 2 {
		s.Crashes = []ScriptCrash{
			{At: frac(7, 20), Node: n / 3, RestartAfter: frac(2, 20)},
			{At: frac(14, 20), Node: (2 * n) / 3 % n, RestartAfter: frac(2, 20)},
		}
		if s.Crashes[0].Node == s.Crashes[1].Node {
			s.Crashes[1].Node = (s.Crashes[1].Node + 1) % n
		}
	}
	return s
}

// Verdict is one frame's chaos outcome at the receiver.
type Verdict struct {
	// Drop discards the frame; Cause attributes it.
	Drop  bool
	Cause stats.DropCause
	// Delay postpones the delivery (0: deliver now). Dup schedules a
	// second delivery after DupDelay.
	Delay    time.Duration
	Dup      bool
	DupDelay time.Duration
}

// partitionWindow is a precomputed island cut: islandOf[node] is the
// island id, 0 for unlisted nodes (faults.Partition semantics).
type partitionWindow struct {
	start, end time.Duration
	islandOf   []int
}

// Chaos is one daemon's shim instance: the script compiled for a given
// receiver. It is confined to the kernel goroutine (Plan is called from
// Transport.deliver) and draws only from its own derived streams, so
// installing it perturbs nothing else.
type Chaos struct {
	script *Script
	self   int
	// offset maps this daemon's local virtual clock onto campaign time:
	// a cold-restarted daemon rejoins mid-schedule, so its partition
	// checks must add how far into the campaign it started.
	offset time.Duration

	parts  []partitionWindow
	chains []*faults.GilbertElliott // per sender id; nil without Loss
	rng    *rand.Rand
}

// NewChaos compiles script for the daemon self in an n-node cluster,
// starting offset into the campaign schedule.
func NewChaos(script *Script, self, n int, offset time.Duration) (*Chaos, error) {
	if script == nil {
		return nil, fmt.Errorf("wire: nil chaos script")
	}
	if err := script.Validate(n); err != nil {
		return nil, err
	}
	if self < 0 || self >= n {
		return nil, fmt.Errorf("wire: chaos self %d out of range [0,%d)", self, n)
	}
	if offset < 0 {
		return nil, fmt.Errorf("wire: negative chaos offset %v", offset)
	}
	c := &Chaos{
		script: script,
		self:   self,
		offset: offset,
		rng:    rand.New(rand.NewSource(nodeSeed(script.Seed, self))),
	}
	parts := append([]ScriptPartition(nil), script.Partitions...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Start < parts[j].Start })
	for _, p := range parts {
		w := partitionWindow{start: p.Start.D(), end: p.End.D(), islandOf: make([]int, n)}
		for island, group := range p.Islands {
			for _, nd := range group {
				w.islandOf[nd] = island
			}
		}
		c.parts = append(c.parts, w)
	}
	if script.Loss != nil {
		c.chains = make([]*faults.GilbertElliott, n)
		for from := 0; from < n; from++ {
			if from == self {
				continue
			}
			ge, err := faults.NewGilbertElliott(*script.Loss,
				rand.New(rand.NewSource(chainSeed(script.Seed, from, self))))
			if err != nil {
				return nil, err
			}
			c.chains[from] = ge
		}
	}
	return c, nil
}

// Partitioned reports whether the from→self link is cut at local virtual
// time now (campaign time now+offset).
func (c *Chaos) Partitioned(now time.Duration, from int) bool {
	t := now + c.offset
	for _, w := range c.parts {
		if t < w.start {
			return false // windows are sorted and non-overlapping
		}
		if t < w.end {
			return w.islandOf[from] != w.islandOf[c.self]
		}
	}
	return false
}

// Plan decides one incoming frame's fate. Draw discipline is fixed per
// admitted frame — one chain advance (two draws) when loss is on, one
// jitter draw when jitter is on, two duplication draws when duplication
// is on — so runs differing only in schedule windows consume the streams
// identically.
func (c *Chaos) Plan(now time.Duration, from int) Verdict {
	if c.Partitioned(now, from) {
		return Verdict{Drop: true, Cause: stats.DropPartition}
	}
	if c.chains != nil && c.chains[from] != nil && c.chains[from].Lost() {
		return Verdict{Drop: true, Cause: stats.DropLoss}
	}
	v := Verdict{Delay: c.script.Delay.D()}
	if j := c.script.Jitter.D(); j > 0 {
		v.Delay += time.Duration(c.rng.Int63n(int64(j)))
	}
	if c.script.DupProb > 0 {
		dup := c.rng.Float64() < c.script.DupProb
		extra := c.script.Delay.D()
		if j := c.script.Jitter.D(); j > 0 {
			extra += time.Duration(c.rng.Int63n(int64(j)))
		}
		if dup {
			v.Dup, v.DupDelay = true, extra
		}
	}
	return v
}
