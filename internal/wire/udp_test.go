package wire

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// boot builds n transports on loopback with a shared peer table. The
// returned start function launches the read loops and clocks; install
// receivers first, as a daemon would (receivers are written before any
// other goroutine exists, so they need no locking afterwards).
func boot(t *testing.T, n int) ([]*Transport, []*Clock, func()) {
	t.Helper()
	conns := make([]*net.UDPConn, n)
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
		peers[i] = conn.LocalAddr().String()
	}
	trs := make([]*Transport, n)
	clocks := make([]*Clock, n)
	for i := 0; i < n; i++ {
		k := sim.NewKernel(sim.WithSeed(int64(i + 1)))
		clocks[i] = NewClock(k)
		tr, err := NewTransport(TransportConfig{
			Self: i, Nodes: n, Peers: peers, Conn: conns[i],
		}, clocks[i], stats.NewTraffic())
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	t.Cleanup(func() {
		for i := range trs {
			clocks[i].Stop(time.Second)
			trs[i].Close()
		}
	})
	start := func() {
		for i := range trs {
			trs[i].Run()
			clocks[i].Start()
		}
	}
	return trs, clocks, start
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUDPUnicastDelivers(t *testing.T) {
	trs, _, start := boot(t, 2)
	got := make(chan protocol.Message, 1)
	trs[1].SetReceiver(1, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		if nd != 1 || meta.Flood || meta.Hops != 1 {
			t.Errorf("bad delivery: nd=%d meta=%+v", nd, meta)
		}
		got <- msg
	})
	start()
	want := protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 0, Seq: 42}
	if err := trs[0].Unicast(0, 1, want); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg.Kind != want.Kind || msg.Seq != want.Seq || msg.Item != want.Item {
			t.Fatalf("delivered %+v, sent %+v", msg, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unicast never delivered")
	}
}

func TestUDPFloodReachesAllButOrigin(t *testing.T) {
	trs, _, start := boot(t, 4)
	got := make(chan int, 8)
	for i := 1; i < 4; i++ {
		i := i
		trs[i].SetReceiver(i, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
			if !meta.Flood {
				t.Errorf("node %d: flood delivered with Flood=false", i)
			}
			got <- i
		})
	}
	origin := make(chan int, 1)
	trs[0].SetReceiver(0, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		origin <- nd
	})
	start()
	msg := protocol.Message{Kind: protocol.KindInvalidation, Item: 0, Origin: 0, Version: 3}
	if err := trs[0].Flood(0, 8, msg); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for len(seen) < 3 {
		select {
		case i := <-got:
			seen[i] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("flood reached only %v", seen)
		}
	}
	select {
	case <-origin:
		t.Fatal("origin received its own flood")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUDPRejectsForeignSendsAndBadPeers(t *testing.T) {
	trs, _, start := boot(t, 2)
	start()
	msg := protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 1}
	if err := trs[0].Unicast(1, 0, msg); err == nil {
		t.Error("unicast from a foreign node accepted")
	}
	if err := trs[0].Flood(1, 4, msg); err == nil {
		t.Error("flood from a foreign node accepted")
	}
	if err := trs[0].Unicast(0, 7, msg); err == nil {
		t.Error("unicast to an unknown peer accepted")
	}
	if err := trs[0].Flood(0, 0, msg); err == nil {
		t.Error("flood with zero ttl accepted")
	}
	if err := trs[0].Unicast(0, 1, protocol.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestUDPDropsGarbageAndMisaddressed(t *testing.T) {
	trs, _, start := boot(t, 2)
	start()
	raw, err := net.Dial("udp", trs[1].LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// Garbage datagram: counted as a decode error, never delivered.
	if _, err := raw.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "decode error count", func() bool { return trs[1].DecodeErrors() == 1 })

	// Well-formed frame addressed to a different node: dropped.
	buf, err := protocol.MarshalFrame(protocol.Frame{
		From: 0, To: 5, Seq: 1,
		Msg: protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(buf); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "misdeliver count", func() bool { return trs[1].Misdelivers() == 1 })
}

func TestUDPInterfaceSemantics(t *testing.T) {
	trs, clocks, start := boot(t, 3)
	start()
	if trs[0].Len() != 3 {
		t.Fatalf("len = %d", trs[0].Len())
	}
	if trs[0].Kernel() != clocks[0].k {
		t.Fatal("kernel mismatch")
	}
	if !trs[0].Up(1) || !trs[0].Reachable(0, 2) {
		t.Fatal("listed peers must be up and reachable")
	}
	if trs[0].Up(9) || trs[0].Reachable(0, 9) {
		t.Fatal("unlisted peers must be down")
	}
	if err := trs[0].SetReceiver(99, nil); err == nil {
		t.Fatal("out-of-range receiver accepted")
	}
}

// kread runs f on the clock's kernel goroutine and waits for it — the
// race-free way to sample kernel-confined counters mid-run.
func kread(t *testing.T, c *Clock, f func()) {
	t.Helper()
	done := make(chan struct{})
	if !c.Inject(func(k *sim.Kernel) { f(); close(done) }) {
		t.Fatal("clock stopped")
	}
	<-done
}

func TestUDPFloodSurvivesDeadPeer(t *testing.T) {
	trs, _, start := boot(t, 3)
	// Peer 1's address refuses every write; the fan-out must still reach
	// peer 2 and account the failure as a peer-down drop.
	dead := trs[0].addrs[1].String()
	attempts := 0
	real := trs[0].writeTo
	trs[0].writeTo = func(b []byte, addr *net.UDPAddr) (int, error) {
		if addr.String() == dead {
			attempts++
			return 0, errors.New("simulated EPERM")
		}
		return real(b, addr)
	}
	got := make(chan int, 4)
	trs[2].SetReceiver(2, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		got <- nd
	})
	start()
	msg := protocol.Message{Kind: protocol.KindInvalidation, Item: 0, Origin: 0, Version: 1}
	if err := trs[0].Flood(0, 4, msg); err != nil {
		t.Fatalf("flood with one dead peer must succeed, got %v", err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("flood never reached the live peer")
	}
	if attempts != 2 {
		t.Fatalf("dead peer written %d times, want 2 (one bounded retry)", attempts)
	}
	if d := trs[0].traffic.TotalDroppedByCause(stats.DropPeerDown); d != 1 {
		t.Fatalf("peer-down drops = %d, want 1", d)
	}
}

func TestUDPUnicastRetriesThenReportsDrop(t *testing.T) {
	trs, _, start := boot(t, 2)
	attempts := 0
	trs[0].writeTo = func(b []byte, addr *net.UDPAddr) (int, error) {
		attempts++
		return 0, errors.New("simulated ENOBUFS")
	}
	start()
	msg := protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 0}
	if err := trs[0].Unicast(0, 1, msg); err == nil {
		t.Fatal("unicast past a failed retry must report the error")
	}
	if attempts != 2 {
		t.Fatalf("failed send attempted %d times, want 2", attempts)
	}
	if d := trs[0].traffic.TotalDroppedByCause(stats.DropPeerDown); d != 1 {
		t.Fatalf("peer-down drops = %d, want 1", d)
	}
}

func TestUDPReadLoopSurvivesTransientErrors(t *testing.T) {
	trs, _, start := boot(t, 2)
	// The first reads fail with a transient error (the shape of an ICMP
	// port-unreachable from a crashed peer); the loop must survive them
	// and still deliver what arrives afterwards.
	var fails atomic.Int32
	fails.Store(3)
	real := trs[1].readFrom
	trs[1].readFrom = func(b []byte) (int, *net.UDPAddr, error) {
		if fails.Add(-1) >= 0 {
			return 0, nil, &net.OpError{Op: "read", Net: "udp", Err: errors.New("connection refused")}
		}
		return real(b)
	}
	got := make(chan protocol.Message, 1)
	trs[1].SetReceiver(1, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		got <- msg
	})
	start()
	if err := trs[0].Unicast(0, 1, protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 0, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg.Seq != 9 {
			t.Fatalf("delivered %+v", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read loop died on a transient error")
	}
	if e := trs[1].ReadErrors(); e != 3 {
		t.Fatalf("read errors = %d, want 3", e)
	}
}

func TestUDPPeerCrashContinuedDelivery(t *testing.T) {
	trs, clocks, start := boot(t, 3)
	got := make(chan int, 8)
	trs[2].SetReceiver(2, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		got <- nd
	})
	start()
	// Crash node 1 mid-run: stop its clock and close its socket cold.
	clocks[1].Stop(time.Second)
	trs[1].Close()
	// Node 0 keeps flooding; node 2 must keep receiving despite the
	// corpse in the peer table.
	for i := 0; i < 3; i++ {
		msg := protocol.Message{Kind: protocol.KindInvalidation, Item: 0, Origin: 0, Version: data.Version(i + 1)}
		if err := trs[0].Flood(0, 4, msg); err != nil {
			t.Fatalf("flood %d after peer crash: %v", i, err)
		}
	}
	for seen := 0; seen < 3; {
		select {
		case <-got:
			seen++
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/3 floods delivered after peer crash", seen)
		}
	}
}

func TestUDPChaosPartitionDropsAndAccounts(t *testing.T) {
	trs, clocks, start := boot(t, 2)
	script := &Script{
		Seed: 3,
		Partitions: []ScriptPartition{
			{Start: 0, End: Duration(time.Hour), Islands: [][]int{{0}, {1}}},
		},
	}
	ch, err := NewChaos(script, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	trs[1].SetChaos(ch)
	delivered := make(chan struct{}, 1)
	trs[1].SetReceiver(1, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		delivered <- struct{}{}
	})
	start()
	if err := trs[0].Unicast(0, 1, protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 0}); err != nil {
		t.Fatal(err)
	}
	var drops uint64
	waitFor(t, "partition drop", func() bool {
		kread(t, clocks[1], func() { drops = trs[1].traffic.TotalDroppedByCause(stats.DropPartition) })
		return drops == 1
	})
	select {
	case <-delivered:
		t.Fatal("partitioned frame delivered")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUDPChaosDelayDefersDelivery(t *testing.T) {
	trs, _, start := boot(t, 2)
	script := &Script{Seed: 3, Delay: Duration(150 * time.Millisecond)}
	ch, err := NewChaos(script, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	trs[1].SetChaos(ch)
	got := make(chan time.Time, 1)
	trs[1].SetReceiver(1, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		got <- time.Now()
	})
	start()
	sent := time.Now()
	if err := trs[0].Unicast(0, 1, protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case at := <-got:
		if lat := at.Sub(sent); lat < 100*time.Millisecond {
			t.Fatalf("chaos delay of 150ms delivered after only %v", lat)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed frame never delivered")
	}
}
