package wire

import (
	"net"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// boot builds n transports on loopback with a shared peer table. The
// returned start function launches the read loops and clocks; install
// receivers first, as a daemon would (receivers are written before any
// other goroutine exists, so they need no locking afterwards).
func boot(t *testing.T, n int) ([]*Transport, []*Clock, func()) {
	t.Helper()
	conns := make([]*net.UDPConn, n)
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
		peers[i] = conn.LocalAddr().String()
	}
	trs := make([]*Transport, n)
	clocks := make([]*Clock, n)
	for i := 0; i < n; i++ {
		k := sim.NewKernel(sim.WithSeed(int64(i + 1)))
		clocks[i] = NewClock(k)
		tr, err := NewTransport(TransportConfig{
			Self: i, Nodes: n, Peers: peers, Conn: conns[i],
		}, clocks[i], stats.NewTraffic())
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	t.Cleanup(func() {
		for i := range trs {
			clocks[i].Stop(time.Second)
			trs[i].Close()
		}
	})
	start := func() {
		for i := range trs {
			trs[i].Run()
			clocks[i].Start()
		}
	}
	return trs, clocks, start
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUDPUnicastDelivers(t *testing.T) {
	trs, _, start := boot(t, 2)
	got := make(chan protocol.Message, 1)
	trs[1].SetReceiver(1, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		if nd != 1 || meta.Flood || meta.Hops != 1 {
			t.Errorf("bad delivery: nd=%d meta=%+v", nd, meta)
		}
		got <- msg
	})
	start()
	want := protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 0, Seq: 42}
	if err := trs[0].Unicast(0, 1, want); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg.Kind != want.Kind || msg.Seq != want.Seq || msg.Item != want.Item {
			t.Fatalf("delivered %+v, sent %+v", msg, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unicast never delivered")
	}
}

func TestUDPFloodReachesAllButOrigin(t *testing.T) {
	trs, _, start := boot(t, 4)
	got := make(chan int, 8)
	for i := 1; i < 4; i++ {
		i := i
		trs[i].SetReceiver(i, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
			if !meta.Flood {
				t.Errorf("node %d: flood delivered with Flood=false", i)
			}
			got <- i
		})
	}
	origin := make(chan int, 1)
	trs[0].SetReceiver(0, func(k *sim.Kernel, nd int, msg protocol.Message, meta netsim.Meta) {
		origin <- nd
	})
	start()
	msg := protocol.Message{Kind: protocol.KindInvalidation, Item: 0, Origin: 0, Version: 3}
	if err := trs[0].Flood(0, 8, msg); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for len(seen) < 3 {
		select {
		case i := <-got:
			seen[i] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("flood reached only %v", seen)
		}
	}
	select {
	case <-origin:
		t.Fatal("origin received its own flood")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUDPRejectsForeignSendsAndBadPeers(t *testing.T) {
	trs, _, start := boot(t, 2)
	start()
	msg := protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 1}
	if err := trs[0].Unicast(1, 0, msg); err == nil {
		t.Error("unicast from a foreign node accepted")
	}
	if err := trs[0].Flood(1, 4, msg); err == nil {
		t.Error("flood from a foreign node accepted")
	}
	if err := trs[0].Unicast(0, 7, msg); err == nil {
		t.Error("unicast to an unknown peer accepted")
	}
	if err := trs[0].Flood(0, 0, msg); err == nil {
		t.Error("flood with zero ttl accepted")
	}
	if err := trs[0].Unicast(0, 1, protocol.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestUDPDropsGarbageAndMisaddressed(t *testing.T) {
	trs, _, start := boot(t, 2)
	start()
	raw, err := net.Dial("udp", trs[1].LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// Garbage datagram: counted as a decode error, never delivered.
	if _, err := raw.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "decode error count", func() bool { return trs[1].DecodeErrors() == 1 })

	// Well-formed frame addressed to a different node: dropped.
	buf, err := protocol.MarshalFrame(protocol.Frame{
		From: 0, To: 5, Seq: 1,
		Msg: protocol.Message{Kind: protocol.KindPoll, Item: 1, Origin: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(buf); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "misdeliver count", func() bool { return trs[1].Misdelivers() == 1 })
}

func TestUDPInterfaceSemantics(t *testing.T) {
	trs, clocks, start := boot(t, 3)
	start()
	if trs[0].Len() != 3 {
		t.Fatalf("len = %d", trs[0].Len())
	}
	if trs[0].Kernel() != clocks[0].k {
		t.Fatal("kernel mismatch")
	}
	if !trs[0].Up(1) || !trs[0].Reachable(0, 2) {
		t.Fatal("listed peers must be up and reachable")
	}
	if trs[0].Up(9) || trs[0].Reachable(0, 9) {
		t.Fatal("unlisted peers must be down")
	}
	if err := trs[0].SetReceiver(99, nil); err == nil {
		t.Fatal("out-of-range receiver accepted")
	}
}
