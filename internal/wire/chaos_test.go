package wire

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/faults"
	"github.com/manetlab/rpcc/internal/stats"
)

func TestScheduleLogDeterministic(t *testing.T) {
	a := DemoScript(10, 20*time.Second, 7).ScheduleLog(10)
	b := DemoScript(10, 20*time.Second, 7).ScheduleLog(10)
	if a != b {
		t.Fatalf("same-seed schedule logs differ:\n%s\n---\n%s", a, b)
	}
	if c := DemoScript(10, 20*time.Second, 8).ScheduleLog(10); c == a {
		t.Fatalf("different seeds produced identical schedule logs")
	}
}

func TestDemoScriptValid(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 16} {
		s := DemoScript(n, 20*time.Second, 7)
		if err := s.Validate(n); err != nil {
			t.Fatalf("DemoScript(%d) invalid: %v", n, err)
		}
		if len(s.Partitions) != 2 {
			t.Fatalf("DemoScript(%d): want 2 partition windows, got %d", n, len(s.Partitions))
		}
		if len(s.Crashes) != 2 {
			t.Fatalf("DemoScript(%d): want 2 crashes, got %d", n, len(s.Crashes))
		}
		if s.Crashes[0].Node == s.Crashes[1].Node {
			t.Fatalf("DemoScript(%d): both crashes hit node %d", n, s.Crashes[0].Node)
		}
	}
}

func TestScriptJSONRoundTrip(t *testing.T) {
	s := DemoScript(5, 10*time.Second, 42)
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParseScript(b)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.ScheduleLog(5) != s.ScheduleLog(5) {
		t.Fatalf("round trip changed the schedule:\n%s\n---\n%s", s.ScheduleLog(5), got.ScheduleLog(5))
	}
	// Durations must serialize as human-readable strings.
	if want := `"delay": "2ms"`; !containsStr(string(b), want) {
		t.Fatalf("marshaled script missing %s:\n%s", want, b)
	}
}

func TestParseScriptRejectsUnknownFields(t *testing.T) {
	if _, err := ParseScript([]byte(`{"seed": 1, "los": {}}`)); err == nil {
		t.Fatalf("typoed field accepted")
	}
	if _, err := ParseScript([]byte(`{"seed": 1, "delay": "not-a-duration"}`)); err == nil {
		t.Fatalf("bad duration accepted")
	}
	// Nanosecond numbers are accepted for durations.
	s, err := ParseScript([]byte(`{"seed": 1, "delay": 2000000}`))
	if err != nil {
		t.Fatalf("numeric duration rejected: %v", err)
	}
	if s.Delay.D() != 2*time.Millisecond {
		t.Fatalf("numeric duration = %v, want 2ms", s.Delay.D())
	}
}

func TestScriptValidate(t *testing.T) {
	bad := []Script{
		{Seed: 1, Partitions: []ScriptPartition{{Start: Duration(2 * time.Second), End: Duration(time.Second), Islands: [][]int{{0}, {1}}}}},
		{Seed: 1, Partitions: []ScriptPartition{{Start: 0, End: Duration(time.Second), Islands: [][]int{{0}, {9}}}}},
		{Seed: 1, Crashes: []ScriptCrash{{At: Duration(time.Second), Node: 9}}},
		{Seed: 1, Loss: &faults.GilbertParams{PGoodToBad: 2, PBadToGood: 0.5, LossBad: 0.5}},
		{Seed: 1, Delay: Duration(-time.Second)},
	}
	for i, s := range bad {
		if err := s.Validate(3); err == nil {
			t.Fatalf("bad script %d accepted", i)
		}
	}
	if err := (&Script{Seed: 1}).Validate(3); err != nil {
		t.Fatalf("empty script rejected: %v", err)
	}
}

func TestChaosPartitionWindows(t *testing.T) {
	s := &Script{
		Seed: 5,
		Partitions: []ScriptPartition{
			{Start: Duration(time.Second), End: Duration(2 * time.Second), Islands: [][]int{{0, 1}, {2, 3}}},
		},
	}
	c, err := NewChaos(s, 0, 4, 0)
	if err != nil {
		t.Fatalf("NewChaos: %v", err)
	}
	cases := []struct {
		now  time.Duration
		from int
		cut  bool
	}{
		{500 * time.Millisecond, 2, false},  // before the window
		{1500 * time.Millisecond, 2, true},  // cross-island inside it
		{1500 * time.Millisecond, 1, false}, // same island
		{2 * time.Second, 2, false},         // end is exclusive
	}
	for _, tc := range cases {
		if got := c.Partitioned(tc.now, tc.from); got != tc.cut {
			t.Fatalf("Partitioned(%v, %d) = %v, want %v", tc.now, tc.from, got, tc.cut)
		}
		v := c.Plan(tc.now, tc.from)
		if v.Drop != tc.cut {
			t.Fatalf("Plan(%v, %d).Drop = %v, want %v", tc.now, tc.from, v.Drop, tc.cut)
		}
		if tc.cut && v.Cause != stats.DropPartition {
			t.Fatalf("Plan(%v, %d).Cause = %v, want partition", tc.now, tc.from, v.Cause)
		}
	}
	// A restarted daemon rejoining mid-campaign sees windows through its
	// start offset: local time 0.2s + offset 1s lands inside the window.
	late, err := NewChaos(s, 0, 4, time.Second)
	if err != nil {
		t.Fatalf("NewChaos(offset): %v", err)
	}
	if !late.Partitioned(200*time.Millisecond, 3) {
		t.Fatalf("offset chaos missed the shifted window")
	}
	// Unlisted nodes belong to island 0, like faults.Partition.
	sub := &Script{
		Seed: 5,
		Partitions: []ScriptPartition{
			{Start: 0, End: Duration(time.Second), Islands: [][]int{{3}, {1}}},
		},
	}
	c2, err := NewChaos(sub, 0, 4, 0)
	if err != nil {
		t.Fatalf("NewChaos: %v", err)
	}
	if c2.Partitioned(0, 3) {
		t.Fatalf("node 3 listed in island 0 cut from unlisted self")
	}
	if !c2.Partitioned(0, 1) {
		t.Fatalf("island-1 node not cut from island-0 self")
	}
}

func TestChaosChainsDeterministic(t *testing.T) {
	s := DemoScript(4, 10*time.Second, 99)
	s.Partitions = nil // isolate the stochastic streams
	mk := func() *Chaos {
		c, err := NewChaos(s, 1, 4, 0)
		if err != nil {
			t.Fatalf("NewChaos: %v", err)
		}
		return c
	}
	a, b := mk(), mk()
	sawDrop, sawDelay, sawDup := false, false, false
	for i := 0; i < 2000; i++ {
		from := i % 4
		if from == 1 {
			from = 3
		}
		now := time.Duration(i) * time.Millisecond
		va, vb := a.Plan(now, from), b.Plan(now, from)
		if va != vb {
			t.Fatalf("same-seed plans diverge at %d: %+v vs %+v", i, va, vb)
		}
		sawDrop = sawDrop || va.Drop
		sawDelay = sawDelay || va.Delay > s.Delay.D()
		sawDup = sawDup || va.Dup
	}
	if !sawDrop || !sawDelay || !sawDup {
		t.Fatalf("campaign too tame: drop=%v jitter=%v dup=%v", sawDrop, sawDelay, sawDup)
	}
	// Different receivers derive different chains from the same script.
	other, err := NewChaos(s, 2, 4, 0)
	if err != nil {
		t.Fatalf("NewChaos: %v", err)
	}
	fresh := mk()
	same := true
	for i := 0; i < 500; i++ {
		if a2, o := fresh.Plan(0, 0), other.Plan(0, 0); a2 != o {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("distinct receivers produced identical streams")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
