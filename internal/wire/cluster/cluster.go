// Package cluster boots N in-process rpcc daemons on 127.0.0.1 UDP,
// drives each node's workload for a wall-clock duration, records every
// commit and served answer, and judges the run with the differential
// oracle's staleness envelopes (internal/oracle.JudgeLive) — the PR 5
// conformance gate graduated from simulation to real sockets.
//
// Protocol timers default to a scaled-down Table 1 (seconds instead of
// minutes, preserving the TTN:TTR:TTP ratios) so a ~10 s smoke run
// crosses several announcement and validation windows; envelopes scale
// with the timers and are inflated for real-network delay soundness.
package cluster

import (
	"fmt"
	"net"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/oracle"
	"github.com/manetlab/rpcc/internal/wire"
)

// Config parameterises a loopback cluster run.
type Config struct {
	// N is the number of daemons (>= 2).
	N int
	// Strategy is one of the wire rpcc-* variants.
	Strategy string
	// Seed decorrelates the daemons' workload streams.
	Seed int64
	// Duration is the wall-clock run length.
	Duration time.Duration
	// Drain bounds each daemon's shutdown wait.
	Drain time.Duration
	// CacheNum is how many foreign items each node caches (capped at
	// N-1); node i caches items i+1 .. i+CacheNum (mod N).
	CacheNum int
	// QueryInterval / UpdateInterval are each node's workload means.
	QueryInterval  time.Duration
	UpdateInterval time.Duration
	// TTN / TTR / TTP / CoeffPeriod override the protocol timers
	// (zero keeps the scaled-down defaults below).
	TTN, TTR, TTP, CoeffPeriod time.Duration
	// Slack forgives in-flight answers at judging time.
	Slack time.Duration
	// Inflate widens every staleness envelope for real-network delay.
	Inflate time.Duration
}

// DefaultConfig returns the wire-smoke shape: 5 nodes, 10 seconds,
// Table 1 timers scaled 60:1 (TTN 2 s, TTR 1.5 s, TTP 4 s).
func DefaultConfig() Config {
	return Config{
		N:              5,
		Strategy:       wire.StrategyRPCCSC,
		Seed:           1,
		Duration:       10 * time.Second,
		Drain:          2 * time.Second,
		CacheNum:       4,
		QueryInterval:  250 * time.Millisecond,
		UpdateInterval: time.Second,
		TTN:            2 * time.Second,
		TTR:            1500 * time.Millisecond,
		TTP:            4 * time.Second,
		CoeffPeriod:    time.Second,
		Slack:          time.Second,
		Inflate:        2 * time.Second,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("cluster: n %d must be >= 2", c.N)
	}
	if _, err := wire.ParseStrategy(c.Strategy); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("cluster: non-positive duration %v", c.Duration)
	}
	if c.CacheNum < 1 {
		return fmt.Errorf("cluster: cache num %d must be >= 1", c.CacheNum)
	}
	if c.QueryInterval <= 0 || c.UpdateInterval <= 0 {
		return fmt.Errorf("cluster: non-positive workload intervals")
	}
	if c.Slack < 0 || c.Inflate < 0 {
		return fmt.Errorf("cluster: negative slack or inflate")
	}
	return nil
}

// coreConfig derives the engine configuration.
func (c Config) coreConfig() core.Config {
	cc := core.DefaultConfig()
	if c.TTN > 0 {
		cc.TTN = c.TTN
	}
	if c.TTR > 0 {
		cc.TTR = c.TTR
	}
	if c.TTP > 0 {
		cc.TTP = c.TTP
	}
	if c.CoeffPeriod > 0 {
		cc.CoeffPeriod = c.CoeffPeriod
	}
	return cc
}

// spec derives the oracle envelopes from the effective timers, the same
// shape the sim oracle uses for RPCC: SC answers come from an authority
// validated within TTR, DC additionally tolerates one TTP window of
// local reuse, WC is unaudited for staleness.
func (c Config) spec(cc core.Config) oracle.LiveSpec {
	return oracle.LiveSpec{
		Envelopes: map[consistency.Level]time.Duration{
			consistency.LevelStrong: cc.TTR,
			consistency.LevelDelta:  cc.TTP + cc.TTR,
		},
		Slack:   c.Slack,
		Inflate: c.Inflate,
	}
}

// Report is the outcome of one cluster run.
type Report struct {
	N        int
	Strategy string
	Elapsed  time.Duration

	Issued   uint64
	Answered uint64
	Failed   uint64
	Commits  int
	Judged   int

	TotalTx    uint64
	TotalBytes uint64

	DecodeErrors uint64
	StopErrors   []error

	Divergences []oracle.Divergence

	NodeSummaries []string
}

// Clean reports a violation-free run with a clean shutdown.
func (r Report) Clean() bool { return len(r.Divergences) == 0 && len(r.StopErrors) == 0 }

// String renders the one-line verdict.
func (r Report) String() string {
	verdict := "CONFORMANT"
	if !r.Clean() {
		verdict = "DIVERGENT"
	}
	return fmt.Sprintf("%s: %d nodes (%s) over %v: issued=%d answered=%d failed=%d commits=%d judged=%d tx=%d divergences=%d stop-errors=%d",
		verdict, r.N, r.Strategy, r.Elapsed.Round(time.Millisecond), r.Issued, r.Answered,
		r.Failed, r.Commits, r.Judged, r.TotalTx, len(r.Divergences), len(r.StopErrors))
}

// Run executes one loopback cluster end to end and judges it.
func Run(cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cc := cfg.coreConfig()

	// Bind every socket first (port 0 → kernel-assigned), so the full
	// peer table exists before any daemon is constructed.
	conns := make([]*net.UDPConn, cfg.N)
	peers := make(map[int]string, cfg.N)
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for i := 0; i < cfg.N; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			closeAll()
			return Report{}, fmt.Errorf("cluster: bind node %d: %w", i, err)
		}
		conns[i] = conn
		peers[i] = conn.LocalAddr().String()
	}

	rec := oracle.NewLiveRecorder(time.Now())
	nodes := make([]*wire.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nd, err := wire.NewNode(wire.NodeConfig{
			Self:           i,
			Nodes:          cfg.N,
			Peers:          peers,
			Conn:           conns[i],
			Seed:           cfg.Seed + int64(i)*1000003,
			Strategy:       cfg.Strategy,
			Core:           cc,
			Placement:      wire.CyclicPlacement(i, cfg.N, cfg.CacheNum),
			QueryInterval:  cfg.QueryInterval,
			UpdateInterval: cfg.UpdateInterval,
			OnAnswer:       rec.Answer,
			OnCommit: func(item data.ItemID, v data.Version, at time.Time) {
				rec.Commit(item, v, at)
			},
		})
		if err != nil {
			closeAll()
			return Report{}, fmt.Errorf("cluster: build node %d: %w", i, err)
		}
		nodes[i] = nd
	}

	started := time.Now()
	for i, nd := range nodes {
		if err := nd.Start(); err != nil {
			for j := 0; j <= i; j++ {
				nodes[j].Stop(cfg.Drain)
			}
			return Report{}, fmt.Errorf("cluster: start node %d: %w", i, err)
		}
	}
	time.Sleep(cfg.Duration)

	rep := Report{N: cfg.N, Strategy: cfg.Strategy}
	for _, nd := range nodes {
		if err := nd.Stop(cfg.Drain); err != nil {
			rep.StopErrors = append(rep.StopErrors, err)
		}
	}
	rep.Elapsed = time.Since(started)

	for _, nd := range nodes {
		ch := nd.Chassis()
		rep.Issued += ch.Issued()
		rep.Answered += ch.Answered()
		rep.Failed += ch.Failed()
		rep.TotalTx += nd.Traffic().TotalTx()
		rep.TotalBytes += nd.Traffic().TotalBytes()
		rep.DecodeErrors += nd.Transport().DecodeErrors()
		rep.NodeSummaries = append(rep.NodeSummaries, nd.Summary())
	}

	commits, answers := rec.Ledgers()
	rep.Commits = len(commits)
	rep.Judged = len(answers)
	divs, err := oracle.JudgeLive(commits, answers, cfg.spec(cc))
	if err != nil {
		return rep, err
	}
	rep.Divergences = divs
	return rep, nil
}
