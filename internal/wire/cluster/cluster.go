// Package cluster boots N in-process rpcc daemons on 127.0.0.1 UDP,
// drives each node's workload for a wall-clock duration, records every
// commit and served answer, and judges the run with the differential
// oracle's staleness envelopes (internal/oracle.JudgeLive) — the PR 5
// conformance gate graduated from simulation to real sockets.
//
// Protocol timers default to a scaled-down Table 1 (seconds instead of
// minutes, preserving the TTN:TTR:TTP ratios) so a ~10 s smoke run
// crosses several announcement and validation windows; envelopes scale
// with the timers and are inflated for real-network delay soundness.
package cluster

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/oracle"
	"github.com/manetlab/rpcc/internal/stats"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
	"github.com/manetlab/rpcc/internal/wire"
)

// Config parameterises a loopback cluster run.
type Config struct {
	// N is the number of daemons (>= 2).
	N int
	// Strategy is one of the wire rpcc-* variants.
	Strategy string
	// Seed decorrelates the daemons' workload streams.
	Seed int64
	// Duration is the wall-clock run length.
	Duration time.Duration
	// Drain bounds each daemon's shutdown wait.
	Drain time.Duration
	// CacheNum is how many foreign items each node caches (capped at
	// N-1); node i caches items i+1 .. i+CacheNum (mod N).
	CacheNum int
	// QueryInterval / UpdateInterval are each node's workload means.
	QueryInterval  time.Duration
	UpdateInterval time.Duration
	// TTN / TTR / TTP / CoeffPeriod override the protocol timers
	// (zero keeps the scaled-down defaults below).
	TTN, TTR, TTP, CoeffPeriod time.Duration
	// Slack forgives in-flight answers at judging time.
	Slack time.Duration
	// Inflate widens every staleness envelope for real-network delay.
	Inflate time.Duration
	// Trace enables causal tracing: every daemon gets a collector
	// (region = node id), the per-daemon span sets merge into
	// Report.TraceSpans, and the run cross-checks the merged trace
	// against the measured latencies (Report.TraceErrors).
	Trace bool
	// Chaos, when non-nil, runs the cluster under the scripted wire
	// fault campaign: every daemon gets the chaos shim, and the script's
	// crash schedule drives daemon crash/restart churn. Mutually
	// exclusive with Trace (a trace cross-checked under scripted loss
	// would fail its own decomposition identity).
	Chaos *wire.Script
	// BreakInflation deliberately judges a chaos run blind to the fault
	// schedule — no adversity windows, no restart epochs. It exists so
	// the CI gate can prove the fault-aware judge has teeth: the broken
	// variant must be caught DIVERGENT on the same ledgers a fault-aware
	// judge passes.
	BreakInflation bool
}

// DefaultConfig returns the wire-smoke shape: 5 nodes, 10 seconds,
// Table 1 timers scaled 60:1 (TTN 2 s, TTR 1.5 s, TTP 4 s).
func DefaultConfig() Config {
	return Config{
		N:              5,
		Strategy:       wire.StrategyRPCCSC,
		Seed:           1,
		Duration:       10 * time.Second,
		Drain:          2 * time.Second,
		CacheNum:       4,
		QueryInterval:  250 * time.Millisecond,
		UpdateInterval: time.Second,
		TTN:            2 * time.Second,
		TTR:            1500 * time.Millisecond,
		TTP:            4 * time.Second,
		CoeffPeriod:    time.Second,
		Slack:          time.Second,
		Inflate:        2 * time.Second,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("cluster: n %d must be >= 2", c.N)
	}
	if _, err := wire.ParseStrategy(c.Strategy); err != nil {
		return err
	}
	if c.Duration <= 0 {
		return fmt.Errorf("cluster: non-positive duration %v", c.Duration)
	}
	if c.CacheNum < 1 {
		return fmt.Errorf("cluster: cache num %d must be >= 1", c.CacheNum)
	}
	if c.QueryInterval <= 0 || c.UpdateInterval <= 0 {
		return fmt.Errorf("cluster: non-positive workload intervals")
	}
	if c.Slack < 0 || c.Inflate < 0 {
		return fmt.Errorf("cluster: negative slack or inflate")
	}
	if c.Chaos != nil {
		if c.Trace {
			return fmt.Errorf("cluster: chaos and trace modes are mutually exclusive")
		}
		if err := c.Chaos.Validate(c.N); err != nil {
			return err
		}
	}
	if c.BreakInflation && c.Chaos == nil {
		return fmt.Errorf("cluster: break-inflation needs a chaos script to be blind to")
	}
	return nil
}

// coreConfig derives the engine configuration.
func (c Config) coreConfig() core.Config {
	cc := core.DefaultConfig()
	if c.TTN > 0 {
		cc.TTN = c.TTN
	}
	if c.TTR > 0 {
		cc.TTR = c.TTR
	}
	if c.TTP > 0 {
		cc.TTP = c.TTP
	}
	if c.CoeffPeriod > 0 {
		cc.CoeffPeriod = c.CoeffPeriod
	}
	return cc
}

// spec derives the oracle envelopes from the effective timers, the same
// shape the sim oracle uses for RPCC: SC answers come from an authority
// validated within TTR, DC additionally tolerates one TTP window of
// local reuse, WC is unaudited for staleness. Under chaos, the judge is
// additionally told the scheduled adversity — partition windows and
// daemon down/restart windows — unless BreakInflation blinds it.
func (c Config) spec(cc core.Config, windows []oracle.LiveWindow, restarts []oracle.LiveRestart) oracle.LiveSpec {
	spec := oracle.LiveSpec{
		Envelopes: map[consistency.Level]time.Duration{
			consistency.LevelStrong: cc.TTR,
			consistency.LevelDelta:  cc.TTP + cc.TTR,
		},
		Slack:   c.Slack,
		Inflate: c.Inflate,
	}
	if !c.BreakInflation {
		spec.Windows = windows
		spec.Restarts = restarts
	}
	return spec
}

// Report is the outcome of one cluster run.
type Report struct {
	N        int
	Strategy string
	Elapsed  time.Duration

	Issued   uint64
	Answered uint64
	Failed   uint64
	Commits  int
	Judged   int

	TotalTx    uint64
	TotalBytes uint64

	DecodeErrors uint64
	ReadErrors   uint64
	StopErrors   []error

	// Restarts counts completed daemon cold-restarts; Drops sums wire
	// drop accounting by cause across every incarnation (chaos runs).
	Restarts int
	Drops    map[string]uint64

	Divergences []oracle.Divergence

	NodeSummaries []string

	// TraceSpans is the merged causal trace in canonical order (nil
	// unless Config.Trace). TraceErrors lists trace/latency cross-check
	// failures: every critical path must decompose exactly into its
	// segments' self times, and the answered-query roots must agree with
	// the chassis counters and the measured mean latency within the
	// clock-skew slack.
	TraceSpans  []ctrace.Span
	TraceErrors []string
}

// Clean reports a violation-free run with a clean shutdown.
func (r Report) Clean() bool {
	return len(r.Divergences) == 0 && len(r.StopErrors) == 0 && len(r.TraceErrors) == 0
}

// String renders the one-line verdict.
func (r Report) String() string {
	verdict := "CONFORMANT"
	if !r.Clean() {
		verdict = "DIVERGENT"
	}
	s := fmt.Sprintf("%s: %d nodes (%s) over %v: issued=%d answered=%d failed=%d commits=%d judged=%d tx=%d divergences=%d stop-errors=%d",
		verdict, r.N, r.Strategy, r.Elapsed.Round(time.Millisecond), r.Issued, r.Answered,
		r.Failed, r.Commits, r.Judged, r.TotalTx, len(r.Divergences), len(r.StopErrors))
	if r.Restarts > 0 {
		s += fmt.Sprintf(" restarts=%d", r.Restarts)
	}
	return s
}

// Run executes one loopback cluster end to end and judges it.
func Run(cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cc := cfg.coreConfig()

	// Bind every socket first (port 0 → kernel-assigned), so the full
	// peer table exists before any daemon is constructed.
	conns := make([]*net.UDPConn, cfg.N)
	peers := make(map[int]string, cfg.N)
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for i := 0; i < cfg.N; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			closeAll()
			return Report{}, fmt.Errorf("cluster: bind node %d: %w", i, err)
		}
		conns[i] = conn
		peers[i] = conn.LocalAddr().String()
	}

	epoch := time.Now()
	rec := oracle.NewLiveRecorder(epoch)
	members := make([]*member, cfg.N)
	for i := range members {
		members[i] = &member{traffic: stats.NewTraffic()}
	}
	tracers := make([]*ctrace.Collector, cfg.N)

	// build assembles one daemon incarnation for slot i. The churn
	// controller reuses it for cold restarts: a resumed write counter, a
	// campaign-time offset for the chaos shim, and a generation-varied
	// seed (a restarted process does not replay its predecessor's RNG).
	build := func(i int, conn *net.UDPConn, resume data.Version, offset time.Duration, gen int) (*wire.Node, error) {
		m := members[i]
		return wire.NewNode(wire.NodeConfig{
			Self:             i,
			Nodes:            cfg.N,
			Peers:            peers,
			Conn:             conn,
			Seed:             cfg.Seed + int64(i)*1000003 + int64(gen)*97561,
			Strategy:         cfg.Strategy,
			Core:             cc,
			Placement:        wire.CyclicPlacement(i, cfg.N, cfg.CacheNum),
			QueryInterval:    cfg.QueryInterval,
			UpdateInterval:   cfg.UpdateInterval,
			Trace:            tracers[i],
			Chaos:            cfg.Chaos,
			ChaosOffset:      offset,
			ResumeOwnVersion: resume,
			OnAnswer:         rec.Answer,
			OnCommit: func(item data.ItemID, v data.Version, at time.Time) {
				m.lastVersion.Store(uint64(v))
				rec.Commit(item, v, at)
			},
		})
	}

	for i := 0; i < cfg.N; i++ {
		if cfg.Trace {
			tracers[i] = ctrace.NewCollector(i)
		}
		nd, err := build(i, conns[i], 0, 0, 0)
		if err != nil {
			closeAll()
			return Report{}, fmt.Errorf("cluster: build node %d: %w", i, err)
		}
		members[i].nd = nd
	}

	started := time.Now()
	for i, m := range members {
		if err := m.nd.Start(); err != nil {
			for j := 0; j <= i; j++ {
				members[j].nd.Stop(cfg.Drain)
			}
			return Report{}, fmt.Errorf("cluster: start node %d: %w", i, err)
		}
	}

	// Scripted daemon churn: the controller crashes and cold-restarts
	// members per the schedule while the run sleeps.
	var ctl *churn
	var ctlWG sync.WaitGroup
	stop := make(chan struct{})
	if cfg.Chaos != nil && len(cfg.Chaos.Crashes) > 0 {
		ctl = &churn{
			cfg: cfg, members: members, peers: peers,
			epoch: epoch, started: started, rebuild: build,
		}
		ctlWG.Add(1)
		go func() {
			defer ctlWG.Done()
			ctl.run(stop)
		}()
	}

	time.Sleep(cfg.Duration)
	close(stop)
	ctlWG.Wait()

	rep := Report{N: cfg.N, Strategy: cfg.Strategy}
	for _, m := range members {
		m.mu.Lock()
		if m.nd != nil {
			if err := m.nd.Stop(cfg.Drain); err != nil {
				rep.StopErrors = append(rep.StopErrors, err)
			}
			m.absorb()
		}
		m.mu.Unlock()
	}
	rep.Elapsed = time.Since(started)

	rep.Drops = make(map[string]uint64)
	for _, m := range members {
		rep.Issued += m.issued
		rep.Answered += m.answered
		rep.Failed += m.failed
		rep.TotalTx += m.traffic.TotalTx()
		rep.TotalBytes += m.traffic.TotalBytes()
		rep.DecodeErrors += m.decodeErrs
		rep.ReadErrors += m.readErrs
		rep.Restarts += m.restarts
		rep.NodeSummaries = append(rep.NodeSummaries, m.summaries...)
		for c := stats.DropCause(0); c < stats.NumDropCauses; c++ {
			if v := m.traffic.TotalDroppedByCause(c); v > 0 {
				rep.Drops[c.String()] += v
			}
		}
	}

	// Assemble the judge's adversity: script partition windows (campaign
	// time shifted onto the recorder epoch) plus the observed churn
	// windows and restart completions.
	var windows []oracle.LiveWindow
	var restarts []oracle.LiveRestart
	if cfg.Chaos != nil {
		startOff := started.Sub(epoch)
		for _, p := range cfg.Chaos.Partitions {
			windows = append(windows, oracle.LiveWindow{
				Start: startOff + p.Start.D(), End: startOff + p.End.D(), Node: -1,
			})
		}
	}
	if ctl != nil {
		w, r, errs := ctl.results()
		windows = append(windows, w...)
		restarts = append(restarts, r...)
		rep.StopErrors = append(rep.StopErrors, errs...)
	}

	commits, answers := rec.Ledgers()
	rep.Commits = len(commits)
	rep.Judged = len(answers)
	divs, err := oracle.JudgeLive(commits, answers, cfg.spec(cc, windows, restarts))
	if err != nil {
		return rep, err
	}
	rep.Divergences = divs

	if cfg.Trace {
		// Trace mode never runs under churn (Validate forbids it), so
		// every member held exactly one incarnation and its collector and
		// latency histogram survive in the accumulators.
		sets := make([][]ctrace.Span, 0, cfg.N)
		var latSum time.Duration
		var latN uint64
		for i, m := range members {
			sets = append(sets, tracers[i].Export())
			a := m.answered
			if m.lat != nil {
				latSum += time.Duration(float64(m.lat.Mean()) * float64(a))
			}
			latN += a
		}
		rep.TraceSpans = ctrace.Merge(sets...)
		rep.TraceErrors = crossCheckTrace(rep.TraceSpans, rep.Answered, latSum, latN, cfg.Slack)
	}
	return rep, nil
}

// crossCheckTrace verifies the merged trace against the run's measured
// ground truth: (1) every critical path's segment self-times sum exactly
// to the path's end-to-end total — the decomposition identity that makes
// per-phase attribution trustworthy; (2) the answered-query roots match
// the chassis answer count; (3) the roots' mean duration matches the
// latency histograms' mean within the clock-skew slack (span endpoints
// and latency samples read the same per-daemon clock, so the residual is
// rounding, but cross-daemon skew gets the benefit of the doubt).
func crossCheckTrace(spans []ctrace.Span, answered uint64, latSum time.Duration, latN uint64, slack time.Duration) []string {
	var errs []string
	paths := ctrace.ExtractCriticalPaths(spans)
	var rootSum time.Duration
	var roots uint64
	for _, p := range paths {
		var sum int64
		for _, seg := range p.Segments {
			sum += seg.SelfNs
		}
		if sum != p.TotalNs {
			errs = append(errs, fmt.Sprintf("trace %x: critical-path self times sum to %d ns, root spans %d ns", p.Root.Trace, sum, p.TotalNs))
		}
		if p.Root.Phase == ctrace.PhaseQuery && !strings.HasPrefix(p.Root.Name, "failed:") && p.Root.Name != "query" {
			roots++
			rootSum += time.Duration(p.TotalNs)
		}
	}
	if roots != answered {
		errs = append(errs, fmt.Sprintf("trace has %d answered-query roots, chassis answered %d", roots, answered))
	}
	if latN > 0 && roots > 0 {
		traceMean := rootSum / time.Duration(roots)
		measMean := latSum / time.Duration(latN)
		diff := traceMean - measMean
		if diff < 0 {
			diff = -diff
		}
		if diff > slack {
			errs = append(errs, fmt.Sprintf("trace mean latency %v vs measured %v: gap exceeds slack %v", traceMean, measMean, slack))
		}
	}
	return errs
}
