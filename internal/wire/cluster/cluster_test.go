package cluster

import (
	"net"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/consistency"
	"github.com/manetlab/rpcc/internal/core"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/wire"
)

// TestClusterSmallRunConformant boots a real 3-daemon loopback cluster
// for ~1.5 s of wall time with aggressively scaled timers and requires a
// clean oracle verdict. This is the in-tree slice of the wire-smoke
// gate; cmd/wiretest runs the full 5/10-node shape.
func TestClusterSmallRunConformant(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock cluster run")
	}
	cfg := DefaultConfig()
	cfg.N = 3
	cfg.CacheNum = 2
	cfg.Duration = 1500 * time.Millisecond
	cfg.Drain = time.Second
	cfg.QueryInterval = 100 * time.Millisecond
	cfg.UpdateInterval = 400 * time.Millisecond
	cfg.TTN = 500 * time.Millisecond
	cfg.TTR = 400 * time.Millisecond
	cfg.TTP = time.Second
	cfg.CoeffPeriod = 300 * time.Millisecond

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Answered == 0 {
		t.Fatal("vacuous run: no answers served")
	}
	if rep.Judged != int(rep.Answered) {
		t.Fatalf("judged %d answers but chassis served %d — the oracle missed some", rep.Judged, rep.Answered)
	}
	if !rep.Clean() {
		for _, d := range rep.Divergences {
			t.Errorf("divergence: %+v", d)
		}
		for _, e := range rep.StopErrors {
			t.Errorf("stop error: %v", e)
		}
		t.Fatal("cluster run diverged")
	}
	if rep.DecodeErrors != 0 {
		t.Fatalf("decode errors on a clean loopback: %d", rep.DecodeErrors)
	}
}

func TestClusterConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutate := map[string]func(*Config){
		"one node":         func(c *Config) { c.N = 1 },
		"bad strategy":     func(c *Config) { c.Strategy = "push" },
		"zero duration":    func(c *Config) { c.Duration = 0 },
		"zero cache":       func(c *Config) { c.CacheNum = 0 },
		"zero query":       func(c *Config) { c.QueryInterval = 0 },
		"negative slack":   func(c *Config) { c.Slack = -1 },
		"negative inflate": func(c *Config) { c.Inflate = -1 },
	}
	for name, f := range mutate {
		c := DefaultConfig()
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// bootPair builds a 2-daemon loopback pair with no internal workload:
// node 0 is driven externally through Node.Query and node 1 owns item 1.
func bootPair(b *testing.B, answered chan<- data.Copy) (*wire.Node, func()) {
	b.Helper()
	conns := make([]*net.UDPConn, 2)
	peers := make(map[int]string, 2)
	for i := range conns {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			b.Fatal(err)
		}
		conns[i] = conn
		peers[i] = conn.LocalAddr().String()
	}
	cc := core.DefaultConfig()
	nodes := make([]*wire.Node, 2)
	for i := range nodes {
		cfg := wire.NodeConfig{
			Self: i, Nodes: 2, Peers: peers, Conn: conns[i],
			Seed: int64(i + 1), Strategy: wire.StrategyRPCCSC, Core: cc,
			Placement: []data.ItemID{data.ItemID(1 - i)},
		}
		if i == 0 && answered != nil {
			cfg.OnAnswer = func(nd int, item data.ItemID, level consistency.Level, served data.Copy, at time.Time) {
				answered <- served
			}
		}
		nd, err := wire.NewNode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = nd
	}
	for _, nd := range nodes {
		if err := nd.Start(); err != nil {
			b.Fatal(err)
		}
	}
	stop := func() {
		for _, nd := range nodes {
			nd.Stop(2 * time.Second)
		}
	}
	return nodes[0], stop
}

// BenchmarkLoopbackQueryRTT measures the end-to-end latency of one SC
// query over real UDP loopback: inject at node 0, POLL node 1 (the
// source), answer back. One sample per iteration, serially — this is a
// round-trip benchmark, not a throughput benchmark.
func BenchmarkLoopbackQueryRTT(b *testing.B) {
	answered := make(chan data.Copy, 1)
	querier, stop := bootPair(b, answered)
	defer stop()

	// Warm once so relay/validation state settles before timing.
	querier.Query(1, consistency.LevelStrong)
	select {
	case <-answered:
	case <-time.After(5 * time.Second):
		b.Fatal("warmup query never answered")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !querier.Query(1, consistency.LevelStrong) {
			b.Fatal("inject refused")
		}
		select {
		case <-answered:
		case <-time.After(5 * time.Second):
			b.Fatal("query never answered")
		}
	}
}

// TestClusterRestartRejoin crashes one daemon mid-run and cold-restarts
// it: the run must stay CONFORMANT (the fault-aware judge honours the
// down window, the restart epoch, and the watermark reset), the restarted
// daemon must serve answers again, and the resumed write counter must
// keep the commit ledger monotone.
func TestClusterRestartRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock cluster run")
	}
	cfg := DefaultConfig()
	cfg.N = 3
	cfg.CacheNum = 2
	cfg.Strategy = wire.StrategyRPCCDC
	cfg.Duration = 4 * time.Second
	cfg.Drain = time.Second
	cfg.QueryInterval = 100 * time.Millisecond
	cfg.UpdateInterval = 400 * time.Millisecond
	cfg.TTN = 500 * time.Millisecond
	cfg.TTR = 400 * time.Millisecond
	cfg.TTP = time.Second
	cfg.CoeffPeriod = 300 * time.Millisecond
	cfg.Chaos = &wire.Script{
		Seed: cfg.Seed,
		Crashes: []wire.ScriptCrash{
			{At: wire.Duration(time.Second), Node: 1, RestartAfter: wire.Duration(500 * time.Millisecond)},
		},
	}

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rep.Restarts)
	}
	if rep.Answered == 0 {
		t.Fatal("vacuous run: no answers served")
	}
	if !rep.Clean() {
		for _, d := range rep.Divergences {
			t.Errorf("divergence: %+v", d)
		}
		for _, e := range rep.StopErrors {
			t.Errorf("stop error: %v", e)
		}
		t.Fatal("restart-rejoin run diverged")
	}
	// Two incarnations of node 1 → 4 summaries across the cluster.
	if len(rep.NodeSummaries) != 4 {
		t.Fatalf("want 4 incarnation summaries, got %d: %v", len(rep.NodeSummaries), rep.NodeSummaries)
	}
}

// TestClusterChaosValidation covers the chaos-specific config rules.
func TestClusterChaosValidation(t *testing.T) {
	c := DefaultConfig()
	c.Chaos = wire.DemoScript(c.N, c.Duration, c.Seed)
	if err := c.Validate(); err != nil {
		t.Fatalf("chaos config rejected: %v", err)
	}
	c.Trace = true
	if err := c.Validate(); err == nil {
		t.Fatal("chaos+trace accepted")
	}
	c = DefaultConfig()
	c.BreakInflation = true
	if err := c.Validate(); err == nil {
		t.Fatal("break-inflation without chaos accepted")
	}
	c = DefaultConfig()
	c.Chaos = &wire.Script{Seed: 1, Crashes: []wire.ScriptCrash{{At: wire.Duration(time.Second), Node: 99}}}
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range crash node accepted")
	}
}

// TestNodeStopDrainDeadlineUnreachablePeer builds a daemon whose only
// peer is a black hole (bound socket, no daemon), issues SC queries that
// can never be answered, and verifies Stop honours the drain deadline
// instead of hanging on the unreachable peer.
func TestNodeStopDrainDeadlineUnreachablePeer(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock daemon run")
	}
	hole, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	peers := map[int]string{0: conn.LocalAddr().String(), 1: hole.LocalAddr().String()}
	nd, err := wire.NewNode(wire.NodeConfig{
		Self: 0, Nodes: 2, Peers: peers, Conn: conn,
		Seed: 1, Strategy: wire.StrategyRPCCSC, Core: core.DefaultConfig(),
		Placement: []data.ItemID{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		nd.Query(1, consistency.LevelStrong)
	}
	time.Sleep(100 * time.Millisecond)

	begun := time.Now()
	if err := nd.Stop(500 * time.Millisecond); err != nil {
		t.Fatalf("stop with unreachable peer: %v", err)
	}
	if took := time.Since(begun); took > 3*time.Second {
		t.Fatalf("stop took %v, drain deadline not honoured", took)
	}
	if nd.Chassis().Issued() == 0 {
		t.Fatal("queries never issued")
	}
}
