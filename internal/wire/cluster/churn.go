package cluster

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/oracle"
	"github.com/manetlab/rpcc/internal/stats"
	"github.com/manetlab/rpcc/internal/wire"
)

// member is one cluster slot across daemon incarnations: the live node
// (nil while down), counters accumulated from dead incarnations, and the
// durable write counter the next incarnation resumes from.
type member struct {
	mu sync.Mutex
	nd *wire.Node

	// Accumulated from stopped incarnations; the live node's own
	// counters are added at collection time.
	issued, answered, failed uint64
	decodeErrs, readErrs     uint64
	traffic                  *stats.Traffic
	lat                      *stats.Latency
	summaries                []string
	restarts                 int

	// lastVersion is the highest version this slot's owner item ever
	// committed, updated by the OnCommit wrapper on the daemon's kernel
	// goroutine and read by the churn controller.
	lastVersion atomic.Uint64
}

// absorb folds a stopped incarnation's counters into the accumulators.
// Callers hold mu and have already stopped the node.
func (m *member) absorb() {
	if m.nd == nil {
		return
	}
	ch := m.nd.Chassis()
	m.issued += ch.Issued()
	m.answered += ch.Answered()
	m.failed += ch.Failed()
	m.decodeErrs += m.nd.Transport().DecodeErrors()
	m.readErrs += m.nd.Transport().ReadErrors()
	m.traffic.Merge(m.nd.Traffic())
	m.lat = m.nd.Latency()
	m.summaries = append(m.summaries, m.nd.Summary())
	m.nd = nil
}

// churn executes the script's crash schedule against the members:
// sequential cold crash → down window → socket rebind → cold restart
// with the durable write counter resumed. It returns the observed down
// windows and restart completions in recorder-epoch time, for the
// fault-aware judge. Crashes whose restart would land after stop closes
// leave the member down; the open window then ends at controller exit.
type churn struct {
	cfg     Config
	members []*member
	peers   map[int]string
	epoch   time.Time
	started time.Time
	rebuild func(i int, conn *net.UDPConn, resume data.Version, offset time.Duration, gen int) (*wire.Node, error)

	mu       sync.Mutex
	windows  []oracle.LiveWindow
	restarts []oracle.LiveRestart
	errs     []error
}

// sleepUntil waits for the target instant unless stop closes first.
func sleepUntil(target time.Time, stop <-chan struct{}) bool {
	d := time.Until(target)
	if d <= 0 {
		return true
	}
	select {
	case <-time.After(d):
		return true
	case <-stop:
		return false
	}
}

// rebind re-listens on a crashed daemon's advertised address. The old
// socket's close and the new bind race inside the kernel, so retry
// briefly instead of failing the restart on the first EADDRINUSE.
func rebind(addr string) (*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		conn, err := net.ListenUDP("udp", ua)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("cluster: rebind %s: %w", addr, lastErr)
}

// run processes the crash schedule; call in its own goroutine and join
// it (via the WaitGroup the caller owns) before collecting members.
func (c *churn) run(stop <-chan struct{}) {
	crashes := append([]wire.ScriptCrash(nil), c.cfg.Chaos.Crashes...)
	sort.Slice(crashes, func(a, b int) bool { return crashes[a].At < crashes[b].At })
	for _, cr := range crashes {
		if !sleepUntil(c.started.Add(cr.At.D()), stop) {
			return
		}
		m := c.members[cr.Node]
		m.mu.Lock()
		if m.nd == nil {
			m.mu.Unlock()
			continue // already down (schedule crashed it twice)
		}
		// Cold crash: no drain courtesy — in-flight work dies with the
		// process, exactly what a real daemon crash looks like.
		if err := m.nd.Stop(0); err != nil {
			c.fail(fmt.Errorf("cluster: crash node %d: %w", cr.Node, err))
		}
		m.absorb()
		m.mu.Unlock()
		downFrom := time.Since(c.epoch)

		if cr.RestartAfter <= 0 {
			c.addWindow(oracle.LiveWindow{Start: downFrom, End: 1<<62 - 1, Node: cr.Node})
			continue
		}
		if !sleepUntil(c.started.Add(cr.At.D()+cr.RestartAfter.D()), stop) {
			c.addWindow(oracle.LiveWindow{Start: downFrom, End: time.Since(c.epoch), Node: cr.Node})
			return
		}
		conn, err := rebind(c.peers[cr.Node])
		if err != nil {
			c.fail(err)
			c.addWindow(oracle.LiveWindow{Start: downFrom, End: time.Since(c.epoch), Node: cr.Node})
			continue
		}
		m.mu.Lock()
		m.restarts++
		nd, err := c.rebuild(cr.Node, conn,
			data.Version(m.lastVersion.Load()), time.Since(c.started), m.restarts)
		if err == nil {
			err = nd.Start()
		}
		if err != nil {
			m.mu.Unlock()
			conn.Close()
			c.fail(fmt.Errorf("cluster: restart node %d: %w", cr.Node, err))
			c.addWindow(oracle.LiveWindow{Start: downFrom, End: time.Since(c.epoch), Node: cr.Node})
			continue
		}
		m.nd = nd
		m.mu.Unlock()
		// The restart completion stamps both the window end and the new
		// knowledge epoch: before it the daemon provably knew nothing.
		at := time.Since(c.epoch)
		c.addWindow(oracle.LiveWindow{Start: downFrom, End: at, Node: cr.Node})
		c.addRestart(oracle.LiveRestart{Node: cr.Node, At: at})
	}
}

func (c *churn) addWindow(w oracle.LiveWindow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windows = append(c.windows, w)
}

func (c *churn) addRestart(r oracle.LiveRestart) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restarts = append(c.restarts, r)
}

func (c *churn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs = append(c.errs, err)
}

// results returns the recorded adversity; call after joining run.
func (c *churn) results() (windows []oracle.LiveWindow, restarts []oracle.LiveRestart, errs []error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windows, c.restarts, c.errs
}
