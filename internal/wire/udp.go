package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/manetlab/rpcc/internal/netsim"
	"github.com/manetlab/rpcc/internal/node"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
	ctrace "github.com/manetlab/rpcc/internal/telemetry/trace"
)

// TransportConfig parameterises a UDP transport.
type TransportConfig struct {
	// Self is this daemon's node id.
	Self int
	// Nodes is the cluster width (node ids are 0..Nodes-1).
	Nodes int
	// Peers maps node id -> "host:port". Every id the protocol may
	// address must be present; Self's entry is its advertised address.
	Peers map[int]string
	// Conn, when non-nil, is a pre-bound socket to use instead of
	// listening on Peers[Self] — the loopback cluster harness binds all
	// sockets first to learn their kernel-assigned ports.
	Conn *net.UDPConn
}

// Validate reports configuration errors.
func (c TransportConfig) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("wire: nodes %d must be > 0", c.Nodes)
	}
	if c.Self < 0 || c.Self >= c.Nodes {
		return fmt.Errorf("wire: self %d out of range [0,%d)", c.Self, c.Nodes)
	}
	if len(c.Peers) == 0 {
		return fmt.Errorf("wire: empty peer table")
	}
	for id := range c.Peers {
		if id < 0 || id >= c.Nodes {
			return fmt.Errorf("wire: peer id %d out of range [0,%d)", id, c.Nodes)
		}
	}
	if _, ok := c.Peers[c.Self]; !ok && c.Conn == nil {
		return fmt.Errorf("wire: no listen address for self (%d) and no pre-bound socket", c.Self)
	}
	return nil
}

// Transport is a node.Transport over a UDP socket: one socket per
// daemon, a static peer table, and a single-segment broadcast domain —
// every peer is one hop away, and Flood sends one datagram per peer.
// This models the paper's single radio cell; multi-hop topologies come
// from running segments behind forwarders, not from this layer.
type Transport struct {
	cfg   TransportConfig
	clock *Clock
	conn  *net.UDPConn
	// addrs is the resolved peer table, indexed by node id (nil =
	// unknown peer).
	addrs   []*net.UDPAddr
	peerIDs []int // known peer ids, ascending, for deterministic floods

	// receivers is written before the clock starts and read only on the
	// kernel goroutine; only Self's entry is ever consulted.
	receivers []netsim.Receiver

	traffic *stats.Traffic
	// trace, when non-nil, emits a transit span for every traced frame
	// delivered here and re-parents the message's context onto it, so the
	// receiving handlers' spans chain through the wire hop — the same
	// contract as netsim.SetTraceCollector. Confined to the kernel
	// goroutine.
	trace *ctrace.Collector
	// activity counts this node's radio send/receive events. Confined to
	// the kernel goroutine (sends happen in handlers, receives in
	// injected deliveries).
	activity uint64
	sendSeq  uint64

	// chaos, when non-nil, adjudicates every reception (drop / delay /
	// duplicate) before delivery. Install before Run; consulted only on
	// the kernel goroutine.
	chaos *Chaos

	// Read-loop diagnostics (crossed by the reader goroutine).
	decodeErrs  atomic.Uint64
	misdelivers atomic.Uint64
	readErrs    atomic.Uint64

	// writeTo / readFrom are the socket seams, overridable in tests to
	// fault individual peers or feed the read loop synthetic errors. They
	// default to the socket's own methods.
	writeTo  func(b []byte, addr *net.UDPAddr) (int, error)
	readFrom func(b []byte) (int, *net.UDPAddr, error)

	closeOnce sync.Once
	closeErr  error
	readDone  chan struct{}
}

// Compile-time conformance with the engine-facing interface.
var _ node.Transport = (*Transport)(nil)

// NewTransport binds (or adopts) the socket and resolves the peer table.
// Call Run to start the read loop once the clock exists.
func NewTransport(cfg TransportConfig, clock *Clock, traffic *stats.Traffic) (*Transport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clock == nil || traffic == nil {
		return nil, fmt.Errorf("wire: nil clock or traffic")
	}
	t := &Transport{
		cfg:       cfg,
		clock:     clock,
		traffic:   traffic,
		addrs:     make([]*net.UDPAddr, cfg.Nodes),
		receivers: make([]netsim.Receiver, cfg.Nodes),
		readDone:  make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("wire: resolve peer %d (%q): %w", id, addr, err)
		}
		t.addrs[id] = ua
		t.peerIDs = append(t.peerIDs, id)
	}
	sort.Ints(t.peerIDs)
	if cfg.Conn != nil {
		t.conn = cfg.Conn
	} else {
		la, err := net.ResolveUDPAddr("udp", cfg.Peers[cfg.Self])
		if err != nil {
			return nil, fmt.Errorf("wire: resolve listen address: %w", err)
		}
		conn, err := net.ListenUDP("udp", la)
		if err != nil {
			return nil, fmt.Errorf("wire: listen: %w", err)
		}
		t.conn = conn
	}
	t.writeTo = t.conn.WriteToUDP
	t.readFrom = t.conn.ReadFromUDP
	return t, nil
}

// SetChaos installs the wire-level fault shim. Install before Run; nil
// leaves the transport clean.
func (t *Transport) SetChaos(c *Chaos) { t.chaos = c }

// SetTraceCollector installs the causal-trace collector. Install before
// Run; the collector is used only on the kernel goroutine.
func (t *Transport) SetTraceCollector(c *ctrace.Collector) { t.trace = c }

// Run starts the socket read loop. Call once, after the receivers are
// installed; Close terminates it.
func (t *Transport) Run() { go t.readLoop() }

// LocalAddr returns the socket's bound address.
func (t *Transport) LocalAddr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// Close shuts the socket and waits for the read loop to exit.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		t.closeErr = t.conn.Close()
		<-t.readDone
	})
	return t.closeErr
}

// DecodeErrors returns how many datagrams failed frame decoding.
func (t *Transport) DecodeErrors() uint64 { return t.decodeErrs.Load() }

// ReadErrors returns how many transient socket read errors the read loop
// survived (e.g. ICMP port-unreachable surfaced from a crashed peer).
func (t *Transport) ReadErrors() uint64 { return t.readErrs.Load() }

// Misdelivers returns how many well-formed frames were addressed to a
// different node (a peer-table error) or echoed back from self.
func (t *Transport) Misdelivers() uint64 { return t.misdelivers.Load() }

// Len returns the cluster width.
func (t *Transport) Len() int { return t.cfg.Nodes }

// Kernel returns the clock's kernel.
func (t *Transport) Kernel() *sim.Kernel { return t.clock.k }

// SetReceiver installs nd's delivery callback. Only Self's receiver ever
// fires on this transport; the engine installs one per node regardless,
// which is harmless.
func (t *Transport) SetReceiver(nd int, r netsim.Receiver) error {
	if nd < 0 || nd >= t.cfg.Nodes {
		return fmt.Errorf("wire: receiver node %d out of range", nd)
	}
	t.receivers[nd] = r
	return nil
}

// Up reports whether nd is in the peer table. A static table has no
// liveness oracle; an unreachable-but-listed peer is discovered the way
// a real radio discovers it — by silence.
func (t *Transport) Up(nd int) bool {
	return nd >= 0 && nd < t.cfg.Nodes && t.addrs[nd] != nil
}

// Reachable reports whether both endpoints are in the peer table; on a
// single segment every listed peer is link-reachable.
func (t *Transport) Reachable(from, to int) bool { return t.Up(from) && t.Up(to) }

// Activity returns Self's radio activity counter (foreign nodes read 0:
// their activity happens in their own daemons).
func (t *Transport) Activity(nd int) uint64 {
	if nd == t.cfg.Self {
		return t.activity
	}
	return 0
}

// Unicast sends msg to exactly one peer. Sends must originate from Self:
// a daemon has no authority to speak as another node, and an engine that
// tries indicates an assembly bug (a periodic duty not gated to Self).
func (t *Transport) Unicast(from, to int, msg protocol.Message) error {
	if err := msg.Validate(); err != nil {
		return err
	}
	if from != t.cfg.Self {
		return fmt.Errorf("wire: unicast from %d, but this daemon is node %d", from, t.cfg.Self)
	}
	if !t.Up(to) {
		return fmt.Errorf("wire: unicast to unknown peer %d", to)
	}
	t.sendSeq++
	buf, err := protocol.MarshalFrame(protocol.Frame{
		From: from, To: to, Seq: t.sendSeq, Msg: msg,
	})
	if err != nil {
		return err
	}
	t.traffic.RecordOriginated(msg.Kind)
	t.traffic.RecordTx(msg.Kind, len(buf))
	t.activity++
	if err := t.send(buf, to); err != nil {
		t.traffic.RecordDropped(msg.Kind, stats.DropPeerDown)
		return fmt.Errorf("wire: unicast to %d: %w", to, err)
	}
	return nil
}

// send writes one datagram with a single bounded retry: UDP sends fail
// only for local/transient reasons (buffer pressure, ICMP-induced
// errors), so one immediate retry is the whole backoff budget — anything
// longer would block the kernel goroutine.
func (t *Transport) send(buf []byte, to int) error {
	_, err := t.writeTo(buf, t.addrs[to])
	if err == nil {
		return nil
	}
	if _, retry := t.writeTo(buf, t.addrs[to]); retry == nil {
		return nil
	}
	return err
}

// Flood broadcasts msg to every listed peer except the origin, in
// ascending id order — the single-segment equivalent of a TTL-bounded
// flood (every node is one hop away, so any ttl >= 1 covers the
// segment). The origin never receives its own flood, matching netsim.
func (t *Transport) Flood(origin, ttl int, msg protocol.Message) error {
	if err := msg.Validate(); err != nil {
		return err
	}
	if origin != t.cfg.Self {
		return fmt.Errorf("wire: flood from %d, but this daemon is node %d", origin, t.cfg.Self)
	}
	if ttl <= 0 {
		return fmt.Errorf("wire: flood ttl %d must be > 0", ttl)
	}
	t.sendSeq++
	buf, err := protocol.MarshalFrame(protocol.Frame{
		From: origin, TTL: ttl, Flood: true, Seq: t.sendSeq, Msg: msg,
	})
	if err != nil {
		return err
	}
	t.traffic.RecordOriginated(msg.Kind)
	// A failed peer must not censor the rest of the fan-out: keep going,
	// account each failure as a peer-down drop, and report success — the
	// flood reached everyone it could, which is all a broadcast promises.
	for _, id := range t.peerIDs {
		if id == origin {
			continue
		}
		t.traffic.RecordTx(msg.Kind, len(buf))
		t.activity++
		if err := t.send(buf, id); err != nil {
			t.traffic.RecordDropped(msg.Kind, stats.DropPeerDown)
		}
	}
	return nil
}

// readLoop decodes datagrams and injects deliveries onto the kernel
// goroutine. It exits only when the socket is closed: transient read
// errors — ICMP port-unreachable bounced back from a crashed peer is the
// classic — are counted and survived, because one dead neighbour must
// not deafen this daemon to the rest of the cluster.
func (t *Transport) readLoop() {
	defer close(t.readDone)
	buf := make([]byte, 65536)
	for {
		n, _, err := t.readFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // deliberate shutdown
			}
			t.readErrs.Add(1)
			// Brief pause so a persistent error condition (e.g. a broken
			// socket that is not reported as closed) cannot spin a core.
			time.Sleep(time.Millisecond)
			continue
		}
		f, err := protocol.UnmarshalFrame(buf[:n])
		if err != nil {
			t.decodeErrs.Add(1)
			// The frame has no decodable kind, so account it on the
			// kindless drop ledger (kernel goroutine owns the counters).
			t.clock.Inject(func(k *sim.Kernel) {
				t.traffic.RecordDroppedUnknown(stats.DropDecode)
			})
			continue
		}
		if f.From == t.cfg.Self || (!f.Flood && f.To != t.cfg.Self) {
			t.misdelivers.Add(1)
			continue
		}
		frame := f // capture a stable copy for the closure
		if !t.clock.Inject(func(k *sim.Kernel) { t.deliver(k, frame) }) {
			// Clock stopped: drain and discard until the socket closes.
			continue
		}
	}
}

// deliver runs on the kernel goroutine: adjudicate the reception against
// the chaos plan (if installed), then deliver now or on the scheduled
// delay. Reordering needs no machinery of its own — two frames drawing
// different jitters already swap on the kernel's event queue.
func (t *Transport) deliver(k *sim.Kernel, f protocol.Frame) {
	if t.chaos == nil {
		t.deliverNow(k, f)
		return
	}
	plan := t.chaos.Plan(k.Now(), f.From)
	if plan.Drop {
		t.traffic.RecordDropped(f.Msg.Kind, plan.Cause)
		return
	}
	if plan.Dup {
		dup := f
		k.After(plan.DupDelay, "wire.chaos.dup", func(k *sim.Kernel) { t.deliverNow(k, dup) })
	}
	if plan.Delay > 0 {
		k.After(plan.Delay, "wire.chaos.delay", func(k *sim.Kernel) { t.deliverNow(k, f) })
		return
	}
	t.deliverNow(k, f)
}

// deliverNow accounts the reception and hands the message to Self's
// receiver with simulator-shaped metadata.
func (t *Transport) deliverNow(k *sim.Kernel, f protocol.Frame) {
	t.traffic.RecordDelivered(f.Msg.Kind)
	t.activity++
	r := t.receivers[t.cfg.Self]
	if r == nil {
		return
	}
	if t.trace != nil && f.Msg.Trace.TraceID != 0 {
		// Sender clocks are not comparable, so the hop span is an instant
		// at local receipt; its value is the causal stitch, not the flight
		// time.
		now := k.Now().Nanoseconds()
		f.Msg.Trace = t.trace.Emit(f.Msg.Trace, t.cfg.Self, ctrace.PhaseTransit, f.Msg.Kind.String(), now, now)
	}
	r(k, t.cfg.Self, f.Msg, netsim.Meta{
		Hops:    1,
		At:      k.Now(),
		SentAt:  k.Now(), // sender clocks are not comparable; flight time reads as 0
		Flood:   f.Flood,
		FloodID: f.Seq,
	})
}
