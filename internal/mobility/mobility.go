// Package mobility implements the random-waypoint movement model used by
// the paper's evaluation (Johnson & Maltz, 1996): each node repeatedly
// picks a uniform destination in the terrain, travels to it in a straight
// line at a uniform-random speed, pauses, and repeats.
//
// Positions are piecewise-linear in time, so the model stores only the
// current leg (origin, destination, departure time, speed) and computes
// PositionAt analytically. Legs are advanced lazily; no per-tick position
// events are needed, which keeps the event queue small.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/manetlab/rpcc/internal/geo"
)

// Model selects the trajectory generator.
type Model int

// Mobility models. The zero value selects random waypoint so existing
// configurations keep their behaviour.
const (
	// ModelRandomWaypoint: pick a uniform destination, travel straight,
	// pause, repeat (Johnson & Maltz; the paper's model).
	ModelRandomWaypoint Model = iota
	// ModelRandomDirection: pick a uniform direction, travel straight to
	// the terrain boundary, pause, repeat. Compared with random waypoint
	// it avoids the well-known density pile-up at the terrain centre, so
	// it probes whether conclusions depend on the mobility model.
	ModelRandomDirection
)

// Config parameterises the mobility model.
type Config struct {
	Terrain  geo.Terrain
	Model    Model         // trajectory generator; zero = random waypoint
	MinSpeed float64       // metres/second, > 0
	MaxSpeed float64       // metres/second, >= MinSpeed
	Pause    time.Duration // dwell time at each waypoint, >= 0
	// SubnetCell is the side (metres) of the grid used to detect
	// "movement" events for the PMR statistic (paper §4.2: N_m counts
	// moves from one subnet to another). Zero disables move counting.
	SubnetCell float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Terrain.Width <= 0 || c.Terrain.Height <= 0 {
		return fmt.Errorf("mobility: invalid terrain %gx%g", c.Terrain.Width, c.Terrain.Height)
	}
	if c.MinSpeed <= 0 {
		return fmt.Errorf("mobility: MinSpeed %g must be > 0", c.MinSpeed)
	}
	if c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("mobility: MaxSpeed %g < MinSpeed %g", c.MaxSpeed, c.MinSpeed)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.Pause)
	}
	if c.Model != ModelRandomWaypoint && c.Model != ModelRandomDirection {
		return fmt.Errorf("mobility: unknown model %d", c.Model)
	}
	return nil
}

// leg is one straight-line movement followed by a pause.
type leg struct {
	from, to  geo.Point
	departAt  time.Duration // time the node leaves `from`
	arriveAt  time.Duration // time the node reaches `to`
	pauseTill time.Duration // arriveAt + pause
}

// Waypoint is a single node's random-waypoint trajectory. It is advanced
// lazily: each call with a later time rolls the trajectory forward,
// generating new legs from the node's private random stream.
type Waypoint struct {
	cfg      Config
	rng      *rand.Rand
	cur      leg
	moves    uint64 // subnet crossings observed so far
	lastCell int
	lastSeen time.Duration

	// future buffers legs generated ahead of cur by analytic peeks (the
	// kinetic topology plane asks about times the simulation clock has not
	// reached yet). advance consumes the buffer before drawing fresh legs,
	// so the node's private RNG sees exactly the same draw sequence whether
	// or not anything ever peeked.
	future []leg
}

// NewWaypoint creates a trajectory starting at a uniform-random position.
// rng must be a stream dedicated to this node so trajectories do not
// interleave draws.
func NewWaypoint(cfg Config, rng *rand.Rand) (*Waypoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("mobility: nil rng")
	}
	start := cfg.Terrain.RandomPoint(rng)
	w := &Waypoint{cfg: cfg, rng: rng}
	w.cur = w.nextLeg(start, 0)
	w.lastCell = cfg.Terrain.CellIndex(start, cfg.SubnetCell)
	return w, nil
}

// nextLeg draws a fresh destination and speed, departing from `from` at
// time `depart`. The destination comes from the configured model: a
// uniform terrain point (random waypoint) or the boundary hit of a
// uniform direction (random direction).
func (w *Waypoint) nextLeg(from geo.Point, depart time.Duration) leg {
	var to geo.Point
	if w.cfg.Model == ModelRandomDirection {
		to = w.boundaryHit(from)
	} else {
		to = w.cfg.Terrain.RandomPoint(w.rng)
	}
	speed := w.cfg.MinSpeed + w.rng.Float64()*(w.cfg.MaxSpeed-w.cfg.MinSpeed)
	dist := from.Dist(to)
	travel := time.Duration(dist / speed * float64(time.Second))
	if travel <= 0 {
		travel = time.Millisecond // degenerate same-point draw
	}
	return leg{
		from:      from,
		to:        to,
		departAt:  depart,
		arriveAt:  depart + travel,
		pauseTill: depart + travel + w.cfg.Pause,
	}
}

// boundaryHit returns where a ray from p in a uniform-random direction
// leaves the terrain.
func (w *Waypoint) boundaryHit(p geo.Point) geo.Point {
	theta := w.rng.Float64() * 2 * math.Pi
	dx, dy := math.Cos(theta), math.Sin(theta)
	// Smallest positive t where p + t·(dx,dy) crosses an edge.
	best := math.MaxFloat64
	if dx > 0 {
		best = math.Min(best, (w.cfg.Terrain.Width-p.X)/dx)
	} else if dx < 0 {
		best = math.Min(best, -p.X/dx)
	}
	if dy > 0 {
		best = math.Min(best, (w.cfg.Terrain.Height-p.Y)/dy)
	} else if dy < 0 {
		best = math.Min(best, -p.Y/dy)
	}
	if best == math.MaxFloat64 || best < 0 {
		// Degenerate direction (numerically zero): stay put this leg.
		return p
	}
	return w.cfg.Terrain.Clamp(geo.Point{X: p.X + best*dx, Y: p.Y + best*dy})
}

// advance rolls the trajectory forward so the current leg covers time t.
// t must be monotonically non-decreasing across calls (enforced).
func (w *Waypoint) advance(t time.Duration) {
	if t < w.lastSeen {
		// Queries must come from the simulation clock, which never goes
		// backwards; treat a regression as a caller bug but stay safe.
		t = w.lastSeen
	}
	for t > w.cur.pauseTill {
		if len(w.future) > 0 {
			w.cur = w.future[0]
			w.future = w.future[1:]
		} else {
			w.cur = w.nextLeg(w.cur.to, w.cur.pauseTill)
		}
	}
}

// legAt returns the leg covering time t without advancing the trajectory:
// legs beyond the current one are generated into the peek buffer, where a
// later advance picks them up in order. t earlier than the current leg
// returns the current leg (positions before departAt clamp to its origin,
// which matches what PositionAt reports for non-advancing queries).
func (w *Waypoint) legAt(t time.Duration) leg {
	if t <= w.cur.pauseTill {
		return w.cur
	}
	last := w.cur
	if n := len(w.future); n > 0 {
		last = w.future[n-1]
	}
	for t > last.pauseTill {
		last = w.nextLeg(last.to, last.pauseTill)
		w.future = append(w.future, last)
	}
	for i := range w.future {
		if t <= w.future[i].pauseTill {
			return w.future[i]
		}
	}
	return last
}

// PeekPosition returns the node position at time t — which may be in the
// simulation's future — without advancing the trajectory, counting subnet
// crossings, or otherwise perturbing what later PositionAt calls observe.
// The position is computed with the same leg interpolation as PositionAt,
// so peeking at a time and then querying it yields bit-identical points.
func (w *Waypoint) PeekPosition(t time.Duration) geo.Point {
	return legPos(w.legAt(t), t)
}

// Segment describes the node's motion at time t as one linear piece: the
// effective speed (metres/second; 0 while pausing), the velocity vector
// realising it, and the virtual time the piece ends (arrival at the
// waypoint, or the end of the pause). Between t and End the position
// moves along a straight line at exactly Vel, which is what lets the
// kinetic topology plane solve link-crossing times analytically instead
// of polling.
type Segment struct {
	Speed float64
	Vel   geo.Point
	End   time.Duration
}

// SegmentAt returns the linear motion piece covering time t (future times
// allowed; like PeekPosition it does not advance the trajectory).
func (w *Waypoint) SegmentAt(t time.Duration) Segment {
	l := w.legAt(t)
	if t < l.arriveAt && l.arriveAt > l.departAt {
		secs := (l.arriveAt - l.departAt).Seconds()
		return Segment{
			Speed: l.from.Dist(l.to) / secs,
			Vel:   l.to.Sub(l.from).Scale(1 / secs),
			End:   l.arriveAt,
		}
	}
	return Segment{Speed: 0, End: l.pauseTill}
}

// PositionAt returns the node position at virtual time t. Calls must use
// non-decreasing t (the simulation clock); earlier times return the
// position at the latest time already observed.
func (w *Waypoint) PositionAt(t time.Duration) geo.Point {
	w.advance(t)
	p := w.positionOnLeg(t)
	if w.cfg.SubnetCell > 0 && t >= w.lastSeen {
		cell := w.cfg.Terrain.CellIndex(p, w.cfg.SubnetCell)
		if cell != w.lastCell {
			w.moves++
			w.lastCell = cell
		}
	}
	if t > w.lastSeen {
		w.lastSeen = t
	}
	return p
}

func (w *Waypoint) positionOnLeg(t time.Duration) geo.Point {
	return legPos(w.cur, t)
}

// legPos interpolates a position on one leg. Both the advancing PositionAt
// path and the non-mutating PeekPosition path go through this single
// formula, so the two agree bit-for-bit at equal times — the property the
// kinetic topology plane's exactness argument rests on.
func legPos(l leg, t time.Duration) geo.Point {
	switch {
	case t <= l.departAt:
		return l.from
	case t >= l.arriveAt:
		return l.to
	default:
		frac := float64(t-l.departAt) / float64(l.arriveAt-l.departAt)
		return l.from.Lerp(l.to, frac)
	}
}

// Moves returns the cumulative number of subnet crossings (the paper's
// N_m input to the peer moving rate). Crossings are detected at query
// times, so callers that sample positions periodically get a periodic
// moving-rate signal, mirroring how a real node would observe itself.
func (w *Waypoint) Moves() uint64 { return w.moves }

// Field is the collection of all node trajectories; it answers the batch
// position queries the radio model issues every topology tick.
type Field struct {
	nodes []*Waypoint
}

// NewField builds n independent trajectories. The stream function must
// return a distinct deterministic RNG per node index.
func NewField(cfg Config, n int, stream func(i int) *rand.Rand) (*Field, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need at least one node, got %d", n)
	}
	if stream == nil {
		return nil, fmt.Errorf("mobility: nil stream function")
	}
	nodes := make([]*Waypoint, n)
	for i := range nodes {
		w, err := NewWaypoint(cfg, stream(i))
		if err != nil {
			return nil, fmt.Errorf("mobility: node %d: %w", i, err)
		}
		nodes[i] = w
	}
	return &Field{nodes: nodes}, nil
}

// Len returns the number of nodes in the field.
func (f *Field) Len() int { return len(f.nodes) }

// Node returns the trajectory of node i.
func (f *Field) Node(i int) *Waypoint { return f.nodes[i] }

// PeekPosition returns node i's position at time t (future times allowed)
// without advancing any trajectory state. See Waypoint.PeekPosition.
func (f *Field) PeekPosition(i int, t time.Duration) geo.Point {
	return f.nodes[i].PeekPosition(t)
}

// SegmentAt returns node i's linear motion piece covering time t. See
// Waypoint.SegmentAt.
func (f *Field) SegmentAt(i int, t time.Duration) Segment {
	return f.nodes[i].SegmentAt(t)
}

// PositionsAt fills dst with every node's position at time t, allocating
// when dst is too small, and returns the slice.
func (f *Field) PositionsAt(t time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(f.nodes) {
		dst = make([]geo.Point, len(f.nodes))
	}
	dst = dst[:len(f.nodes)]
	for i, w := range f.nodes {
		dst[i] = w.PositionAt(t)
	}
	return dst
}
