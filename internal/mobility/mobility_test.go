package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/rpcc/internal/geo"
)

func testConfig() Config {
	terrain, _ := geo.NewTerrain(1500, 1500)
	return Config{
		Terrain:    terrain,
		MinSpeed:   1,
		MaxSpeed:   20,
		Pause:      10 * time.Second,
		SubnetCell: 500,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(*Config) {}, true},
		{"zero min speed", func(c *Config) { c.MinSpeed = 0 }, false},
		{"max below min", func(c *Config) { c.MaxSpeed = 0.5 }, false},
		{"negative pause", func(c *Config) { c.Pause = -time.Second }, false},
		{"bad terrain", func(c *Config) { c.Terrain = geo.Terrain{} }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewWaypointRejectsNilRNG(t *testing.T) {
	if _, err := NewWaypoint(testConfig(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestPositionStaysInTerrain(t *testing.T) {
	cfg := testConfig()
	w, err := NewWaypoint(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3600; s += 5 {
		p := w.PositionAt(time.Duration(s) * time.Second)
		if !cfg.Terrain.Contains(p) {
			t.Fatalf("position %v at %ds outside terrain", p, s)
		}
	}
}

func TestPositionContinuity(t *testing.T) {
	// Between two samples dt apart the node can have moved at most
	// MaxSpeed*dt (movement is piecewise linear at bounded speed).
	cfg := testConfig()
	w, _ := NewWaypoint(cfg, rand.New(rand.NewSource(7)))
	prev := w.PositionAt(0)
	const dt = time.Second
	for s := 1; s < 7200; s++ {
		cur := w.PositionAt(time.Duration(s) * dt)
		if d := cur.Dist(prev); d > cfg.MaxSpeed*dt.Seconds()+1e-6 {
			t.Fatalf("node jumped %.2fm in %v at t=%ds (max %.2f)", d, dt, s, cfg.MaxSpeed*dt.Seconds())
		}
		prev = cur
	}
}

func TestPositionDeterministic(t *testing.T) {
	a, _ := NewWaypoint(testConfig(), rand.New(rand.NewSource(11)))
	b, _ := NewWaypoint(testConfig(), rand.New(rand.NewSource(11)))
	for s := 0; s < 600; s += 7 {
		ta := a.PositionAt(time.Duration(s) * time.Second)
		tb := b.PositionAt(time.Duration(s) * time.Second)
		if ta != tb {
			t.Fatalf("same-seed trajectories diverged at %ds: %v vs %v", s, ta, tb)
		}
	}
}

func TestPauseHoldsPosition(t *testing.T) {
	cfg := testConfig()
	cfg.Pause = time.Hour // long pause: node must sit still after arriving
	cfg.MinSpeed, cfg.MaxSpeed = 1000, 1000
	w, _ := NewWaypoint(cfg, rand.New(rand.NewSource(5)))
	// With 1000 m/s speed the first leg ends within ~2.2s (max diagonal
	// 2121m); sample well after that, inside the hour-long pause.
	p1 := w.PositionAt(10 * time.Second)
	p2 := w.PositionAt(30 * time.Second)
	if p1 != p2 {
		t.Fatalf("node moved during pause: %v -> %v", p1, p2)
	}
}

func TestNodeEventuallyMoves(t *testing.T) {
	w, _ := NewWaypoint(testConfig(), rand.New(rand.NewSource(9)))
	start := w.PositionAt(0)
	moved := false
	for s := 1; s <= 3600; s++ {
		if w.PositionAt(time.Duration(s)*time.Second) != start {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("node never moved in an hour")
	}
}

func TestMovesCounterIncreases(t *testing.T) {
	cfg := testConfig()
	cfg.Pause = 0
	cfg.MinSpeed, cfg.MaxSpeed = 50, 50 // fast: many subnet crossings
	w, _ := NewWaypoint(cfg, rand.New(rand.NewSource(13)))
	for s := 0; s < 3600; s++ {
		w.PositionAt(time.Duration(s) * time.Second)
	}
	if w.Moves() == 0 {
		t.Fatal("fast node recorded zero subnet crossings in an hour")
	}
}

func TestMovesDisabledWithZeroCell(t *testing.T) {
	cfg := testConfig()
	cfg.SubnetCell = 0
	w, _ := NewWaypoint(cfg, rand.New(rand.NewSource(13)))
	for s := 0; s < 600; s++ {
		w.PositionAt(time.Duration(s) * time.Second)
	}
	if w.Moves() != 0 {
		t.Fatalf("Moves() = %d with crossing detection disabled", w.Moves())
	}
}

func TestNonMonotonicQueryIsSafe(t *testing.T) {
	w, _ := NewWaypoint(testConfig(), rand.New(rand.NewSource(17)))
	w.PositionAt(100 * time.Second)
	// Earlier query must not panic or rewind the trajectory.
	p := w.PositionAt(50 * time.Second)
	if !testConfig().Terrain.Contains(p) {
		t.Fatalf("backward query returned out-of-terrain point %v", p)
	}
}

func TestFieldConstruction(t *testing.T) {
	stream := func(i int) *rand.Rand { return rand.New(rand.NewSource(int64(i) + 1)) }
	if _, err := NewField(testConfig(), 0, stream); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewField(testConfig(), 5, nil); err == nil {
		t.Error("nil stream accepted")
	}
	f, err := NewField(testConfig(), 50, stream)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 50 {
		t.Errorf("Len() = %d, want 50", f.Len())
	}
}

func TestFieldPositionsAt(t *testing.T) {
	cfg := testConfig()
	stream := func(i int) *rand.Rand { return rand.New(rand.NewSource(int64(i) + 1)) }
	f, err := NewField(cfg, 10, stream)
	if err != nil {
		t.Fatal(err)
	}
	pts := f.PositionsAt(time.Minute, nil)
	if len(pts) != 10 {
		t.Fatalf("got %d positions", len(pts))
	}
	for i, p := range pts {
		if !cfg.Terrain.Contains(p) {
			t.Errorf("node %d at %v outside terrain", i, p)
		}
		if q := f.Node(i).PositionAt(time.Minute); q != p {
			t.Errorf("node %d batch %v != direct %v", i, p, q)
		}
	}
	// Reuse the same backing slice.
	pts2 := f.PositionsAt(2*time.Minute, pts)
	if &pts2[0] != &pts[0] {
		t.Error("PositionsAt reallocated despite sufficient capacity")
	}
}

func TestTrajectoryInsideTerrainProperty(t *testing.T) {
	cfg := testConfig()
	f := func(seed int64, minutes uint8) bool {
		w, err := NewWaypoint(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for s := 0; s <= int(minutes)*60; s += 13 {
			if !cfg.Terrain.Contains(w.PositionAt(time.Duration(s) * time.Second)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDirectionStaysInTerrain(t *testing.T) {
	cfg := testConfig()
	cfg.Model = ModelRandomDirection
	w, err := NewWaypoint(cfg, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 7200; s += 3 {
		p := w.PositionAt(time.Duration(s) * time.Second)
		if !cfg.Terrain.Contains(p) {
			t.Fatalf("random-direction node at %v outside terrain (t=%ds)", p, s)
		}
	}
}

func TestRandomDirectionLegsEndOnBoundary(t *testing.T) {
	cfg := testConfig()
	cfg.Model = ModelRandomDirection
	cfg.Pause = 0
	w, err := NewWaypoint(cfg, rand.New(rand.NewSource(37)))
	if err != nil {
		t.Fatal(err)
	}
	// Sample densely; count how many samples sit on the boundary. With
	// boundary-to-boundary legs, boundary touches must occur repeatedly.
	touches := 0
	for s := 0; s < 7200; s++ {
		p := w.PositionAt(time.Duration(s) * time.Second)
		onEdge := p.X < 1 || p.Y < 1 || p.X > cfg.Terrain.Width-1 || p.Y > cfg.Terrain.Height-1
		if onEdge {
			touches++
		}
	}
	if touches == 0 {
		t.Fatal("random-direction trajectory never touched the boundary in 2h")
	}
}

func TestUnknownModelRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Model = Model(9)
	if cfg.Validate() == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestModelsProduceDifferentTrajectories(t *testing.T) {
	wp := testConfig()
	rd := testConfig()
	rd.Model = ModelRandomDirection
	a, _ := NewWaypoint(wp, rand.New(rand.NewSource(5)))
	b, _ := NewWaypoint(rd, rand.New(rand.NewSource(5)))
	diverged := false
	for s := 0; s < 600; s += 10 {
		if a.PositionAt(time.Duration(s)*time.Second) != b.PositionAt(time.Duration(s)*time.Second) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("models produced identical trajectories")
	}
}
