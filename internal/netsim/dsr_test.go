package netsim

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// newDSRHarness wires a DSR-routed network over a static chain.
func newDSRHarness(t *testing.T, n int, withChurn bool) *harness {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(42))
	var cp *churn.Process
	var err error
	if withChurn {
		cp, err = churn.NewProcess(churn.Config{Disabled: true}, n, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	cfg.Routing = RoutingDSR
	net, err := New(cfg, k, chain(n), cp, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, net: net, churn: cp}
	for i := 0; i < n; i++ {
		if err := net.SetReceiver(i, func(_ *sim.Kernel, node int, msg protocol.Message, meta Meta) {
			h.got = append(h.got, delivery{node: node, msg: msg, meta: meta})
		}); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestDSRConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = RoutingMode(99)
	if cfg.Validate() == nil {
		t.Fatal("bogus routing mode accepted")
	}
	cfg.Routing = RoutingDSR
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDSRDeliversAcrossChain(t *testing.T) {
	h := newDSRHarness(t, 5, false)
	if err := h.net.Unicast(0, 4, testMsg(protocol.KindApply)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 1 || h.got[0].node != 4 {
		t.Fatalf("deliveries = %+v, want one at node 4", h.got)
	}
	if h.got[0].meta.Hops != 4 {
		t.Errorf("hops = %d, want 4", h.got[0].meta.Hops)
	}
	tr := h.net.Traffic()
	// Discovery overhead must be visible: an RREQ flood and an RREP.
	if tr.Tx(protocol.KindRREQ) == 0 {
		t.Error("no RREQ transmissions recorded")
	}
	if tr.Tx(protocol.KindRREP) == 0 {
		t.Error("no RREP transmissions recorded")
	}
	if got := tr.Tx(protocol.KindApply); got != 4 {
		t.Errorf("data transmissions = %d, want 4", got)
	}
}

func TestDSRSecondSendUsesCachedRoute(t *testing.T) {
	h := newDSRHarness(t, 5, false)
	h.net.Unicast(0, 4, testMsg(protocol.KindApply))
	h.k.Run()
	rreqAfterFirst := h.net.Traffic().Tx(protocol.KindRREQ)
	// Second unicast within the route lifetime: no new discovery.
	h.net.Unicast(0, 4, testMsg(protocol.KindPoll))
	h.k.Run()
	if len(h.got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(h.got))
	}
	if got := h.net.Traffic().Tx(protocol.KindRREQ); got != rreqAfterFirst {
		t.Errorf("second send re-flooded RREQ (%d -> %d)", rreqAfterFirst, got)
	}
}

func TestDSRRouteExpires(t *testing.T) {
	h := newDSRHarness(t, 4, false)
	h.net.Unicast(0, 3, testMsg(protocol.KindApply))
	h.k.Run()
	first := h.net.Traffic().Tx(protocol.KindRREQ)
	// Let the cached route age out, then send again.
	h.k.RunUntil(h.k.Now() + dsrRouteLifetime + time.Second)
	h.net.Unicast(0, 3, testMsg(protocol.KindPoll))
	h.k.Run()
	if got := h.net.Traffic().Tx(protocol.KindRREQ); got <= first {
		t.Error("expired route did not trigger rediscovery")
	}
	if len(h.got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(h.got))
	}
}

func TestDSRDiscoveryFailsAcrossPartition(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Routing = RoutingDSR
	pts := []geo.Point{{X: 0}, {X: 9000}}
	net, err := New(cfg, k, &staticSource{pts: pts}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	net.SetReceiver(1, func(*sim.Kernel, int, protocol.Message, Meta) { delivered = true })
	if err := net.Unicast(0, 1, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if delivered {
		t.Fatal("message crossed partition under DSR")
	}
	if got := net.Traffic().Dropped(protocol.KindPoll); got != 1 {
		t.Errorf("dropped = %d, want 1 after discovery timeout", got)
	}
}

func TestDSRBrokenLinkTriggersRERRAndPurge(t *testing.T) {
	h := newDSRHarness(t, 5, true)
	// Establish a route 0 -> 4.
	h.net.Unicast(0, 4, testMsg(protocol.KindApply))
	h.k.Run()
	if len(h.got) != 1 {
		t.Fatalf("setup delivery failed: %+v", h.got)
	}
	// Break the chain mid-route, then send along the now-stale route.
	if err := h.churn.ForceState(h.k, 3, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	h.net.Unicast(0, 4, testMsg(protocol.KindPoll))
	h.k.Run()
	if len(h.got) != 1 {
		t.Fatal("message delivered across broken link")
	}
	if h.net.Traffic().Originated(protocol.KindRERR) == 0 {
		t.Error("no RERR generated for mid-route break")
	}
	// The stale route must be purged: the next send rediscovers.
	rreqBefore := h.net.Traffic().Tx(protocol.KindRREQ)
	h.churn.ForceState(h.k, 3, churn.StateConnected)
	h.net.Unicast(0, 4, testMsg(protocol.KindPoll))
	h.k.Run()
	if got := h.net.Traffic().Tx(protocol.KindRREQ); got <= rreqBefore {
		t.Error("stale route not purged after RERR")
	}
	if len(h.got) != 2 {
		t.Fatalf("recovery delivery failed (got %d deliveries)", len(h.got))
	}
}

func TestDSRPendingQueueBounded(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Routing = RoutingDSR
	pts := []geo.Point{{X: 0}, {X: 9000}}
	net, err := New(cfg, k, &staticSource{pts: pts}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dsrMaxPending+10; i++ {
		net.Unicast(0, 1, testMsg(protocol.KindPoll))
	}
	k.Run()
	// Every message is eventually dropped (either overflow or discovery
	// timeout), none delivered; the queue cap bounds memory.
	if got := net.Traffic().Dropped(protocol.KindPoll); got != uint64(dsrMaxPending+10) {
		t.Errorf("dropped = %d, want %d", got, dsrMaxPending+10)
	}
}

func TestDSRFloodUnaffected(t *testing.T) {
	h := newDSRHarness(t, 5, false)
	if err := h.net.Flood(0, 8, testMsg(protocol.KindIR)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	reached := map[int]bool{}
	for _, d := range h.got {
		reached[d.node] = true
	}
	for nd := 1; nd <= 4; nd++ {
		if !reached[nd] {
			t.Errorf("flood missed node %d under DSR mode", nd)
		}
	}
	if h.net.Traffic().Tx(protocol.KindRREQ) != 0 {
		t.Error("flooding triggered route discovery")
	}
}

func TestDSRSelfDeliveryFree(t *testing.T) {
	h := newDSRHarness(t, 3, false)
	h.net.Unicast(1, 1, testMsg(protocol.KindPoll))
	h.k.Run()
	if len(h.got) != 1 || h.got[0].meta.Hops != 0 {
		t.Fatalf("self delivery = %+v", h.got)
	}
	if h.net.Traffic().TotalTx() != 0 {
		t.Error("self unicast transmitted")
	}
}

func TestReversePath(t *testing.T) {
	got := reversePath([]int{1, 2, 3})
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reversePath = %v", got)
		}
	}
	if len(reversePath(nil)) != 0 {
		t.Error("reversePath(nil) not empty")
	}
}
