package netsim

import (
	"time"

	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// RoutingMode selects how unicasts find their way across the MANET.
type RoutingMode int

// Routing modes. Values start at 1 so the zero value is detectably unset
// (New treats it as RoutingOracle for backward compatibility).
const (
	routingUnset RoutingMode = iota
	// RoutingOracle forwards hop-by-hop along BFS shortest paths on the
	// current topology snapshot — an idealised routing layer with zero
	// control overhead. This is the default; it keeps the consistency
	// protocols' message counts uncontaminated by routing traffic.
	RoutingOracle
	// RoutingDSR performs on-demand source routing in the style of DSR
	// (Johnson & Maltz, 1996) — the routing protocol the paper's
	// GloMoSim evaluation ran over: RREQ floods discover routes, RREP
	// carries them back, data packets carry the full source route, and
	// broken links trigger RERR plus rediscovery. All routing control
	// traffic is charged to the traffic ledger (kinds RREQ/RREP/RERR).
	RoutingDSR
)

// DSR tuning constants. Route lifetimes are short because the topology
// changes every few seconds at vehicular speeds.
const (
	dsrRouteLifetime    = 10 * time.Second
	dsrDiscoveryTimeout = 500 * time.Millisecond
	dsrMaxPending       = 16 // queued messages per (node, destination)
)

// dsrRoute is one cached source route.
type dsrRoute struct {
	path []int // path[0] == owner node, path[len-1] == destination
	at   time.Duration
}

// pendingMsg is one message queued behind route discovery, remembering
// when it originally entered the network so delivery latency accounts
// the discovery wait too.
type pendingMsg struct {
	msg    protocol.Message
	sentAt time.Duration
}

// dsrNode is one node's DSR state.
type dsrNode struct {
	routes  map[int]dsrRoute
	pending map[int][]pendingMsg
	// discovering marks destinations with an RREQ in flight so repeated
	// sends do not flood repeatedly.
	discovering map[int]bool
}

func newDSRNode() *dsrNode {
	return &dsrNode{
		routes:      make(map[int]dsrRoute),
		pending:     make(map[int][]pendingMsg),
		discovering: make(map[int]bool),
	}
}

// initDSR allocates per-node routing state; called from New when the
// configured mode is RoutingDSR.
func (n *Network) initDSR() {
	n.dsr = make([]*dsrNode, n.Len())
	for i := range n.dsr {
		n.dsr[i] = newDSRNode()
	}
}

// dsrUnicast is the RoutingDSR implementation of Unicast's delivery part:
// use a cached route if fresh, otherwise queue the message and discover.
func (n *Network) dsrUnicast(from, to int, msg protocol.Message) {
	st := n.dsr[from]
	if r, ok := st.routes[to]; ok {
		if n.k.Now()-r.at <= dsrRouteLifetime {
			msg.Path = r.path
			n.dsrForward(msg, 0, n.k.Now())
			return
		}
		delete(st.routes, to)
	}
	if len(st.pending[to]) >= dsrMaxPending {
		n.traffic.RecordDropped(msg.Kind, stats.DropNoRoute)
		return
	}
	st.pending[to] = append(st.pending[to], pendingMsg{msg: msg, sentAt: n.k.Now()})
	if st.discovering[to] {
		return
	}
	st.discovering[to] = true
	n.dsrDiscover(from, to)
	n.k.After(dsrDiscoveryTimeout, "dsr.discovery.timeout", func(*sim.Kernel) {
		st.discovering[to] = false
		// Anything still queued found no route in time.
		for _, m := range st.pending[to] {
			n.traffic.RecordDropped(m.msg.Kind, stats.DropNoRoute)
		}
		delete(st.pending, to)
	})
}

// dsrDiscover floods a route request toward target. The accumulated path
// rides in the RREQ; the target answers with an RREP source-routed back
// along the reverse path.
func (n *Network) dsrDiscover(from, target int) {
	n.traffic.RecordOriginated(protocol.KindRREQ)
	if !n.Up(from) {
		n.traffic.RecordDropped(protocol.KindRREQ, stats.DropDisconnected)
		return
	}
	// RREQ floods share the pooled duplicate-suppression state with data
	// floods; the id is unused here (RREQs are routing control).
	st := n.acquireFlood()
	st.visited[from] = true
	n.rreqTransmit(from, target, []int{from}, st, n.cfg.MaxRouteHops)
	if st.pending == 0 {
		n.releaseFlood(st)
	}
}

func (n *Network) rreqTransmit(node, target int, path []int, st *floodState, ttl int) {
	if !n.Up(node) || ttl <= 0 {
		return
	}
	g := n.Graph()
	req := protocol.Message{Kind: protocol.KindRREQ, Origin: path[0], Path: path}
	n.traffic.RecordTx(protocol.KindRREQ, req.Size())
	n.spendTx(node)
	delay := n.txDelay(node, req.Size())
	for _, v := range g.Neighbors(node) {
		if st.visited[v] {
			continue
		}
		st.visited[v] = true
		st.pending++
		v := v
		// Each receiver gets its own copy of the grown path.
		grown := make([]int, len(path)+1)
		copy(grown, path)
		grown[len(path)] = v
		n.k.After(delay, "dsr.rreq", func(*sim.Kernel) {
			if n.Up(v) && !n.cut(node, v) && !n.lost() {
				n.spendRx(v)
				if v == target {
					n.dsrReply(grown)
				} else {
					n.rreqTransmit(v, target, grown, st, ttl-1)
				}
			}
			if st.pending--; st.pending == 0 {
				n.releaseFlood(st)
			}
		})
	}
}

// dsrReply sends the discovered route back to the requester along the
// reversed path.
func (n *Network) dsrReply(found []int) {
	// The target also learns the reverse route for free.
	target := found[len(found)-1]
	n.dsrLearn(target, reversePath(found))

	rep := protocol.Message{
		Kind:   protocol.KindRREP,
		Origin: target,
		Path:   reversePath(found),
	}
	n.traffic.RecordOriginated(protocol.KindRREP)
	n.dsrForward(rep, 0, n.k.Now())
}

// dsrLearn caches a route at its first node.
func (n *Network) dsrLearn(node int, path []int) {
	if len(path) < 2 || path[0] != node {
		return
	}
	dst := path[len(path)-1]
	n.dsr[node].routes[dst] = dsrRoute{path: path, at: n.k.Now()}
}

// dsrHandleRREP runs when a route reply reaches the original requester:
// cache the route (the RREP's path reversed is requester → target) and
// flush queued messages.
func (n *Network) dsrHandleRREP(node int, msg protocol.Message) {
	route := reversePath(msg.Path)
	if len(route) < 2 || route[0] != node {
		return
	}
	dst := route[len(route)-1]
	st := n.dsr[node]
	st.routes[dst] = dsrRoute{path: route, at: n.k.Now()}
	st.discovering[dst] = false
	queued := st.pending[dst]
	delete(st.pending, dst)
	for _, m := range queued {
		m.msg.Path = route
		n.dsrForward(m.msg, 0, m.sentAt)
	}
}

// dsrForward moves a source-routed message one hop along msg.Path[idx] →
// msg.Path[idx+1], checking the link against the current topology. A
// broken link drops the message and, for data messages, reports a RERR to
// the route's origin so it purges the stale route.
func (n *Network) dsrForward(msg protocol.Message, idx int, sentAt time.Duration) {
	path := msg.Path
	if idx+1 >= len(path) {
		return
	}
	cur, next := path[idx], path[idx+1]
	if !n.Up(cur) {
		n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
		return
	}
	g := n.Graph()
	if !g.Connected(cur, next) {
		n.traffic.RecordDropped(msg.Kind, stats.DropNoRoute)
		n.dsrRouteError(msg, cur, idx)
		return
	}
	n.traffic.RecordTx(msg.Kind, msg.Size())
	n.spendTx(cur)
	n.k.After(n.txDelay(cur, msg.Size()), "dsr.hop", func(*sim.Kernel) {
		switch {
		case !n.Up(next):
			n.traffic.RecordDropped(msg.Kind, stats.DropDisconnected)
			n.dsrRouteError(msg, cur, idx)
			return
		case n.cut(cur, next):
			n.traffic.RecordDropped(msg.Kind, stats.DropPartition)
			n.dsrRouteError(msg, cur, idx)
			return
		case n.lost():
			n.traffic.RecordDropped(msg.Kind, stats.DropLoss)
			n.dsrRouteError(msg, cur, idx)
			return
		}
		n.spendRx(next)
		if idx+2 == len(path) {
			// Final hop: routing control is consumed by the layer, data
			// goes up to the receiver.
			switch msg.Kind {
			case protocol.KindRREP:
				n.dsrHandleRREP(next, msg)
			case protocol.KindRERR:
				n.dsrHandleRERR(next, msg)
			default:
				n.deliverUnicast(next, msg, len(path)-1, sentAt)
			}
			return
		}
		n.dsrForward(msg, idx+1, sentAt)
	})
}

// dsrRouteError notifies the route origin that the link after position
// idx is broken. Control messages fail silently (their own timeouts
// recover); data messages trigger the report when the breaking node is
// not the origin itself.
func (n *Network) dsrRouteError(msg protocol.Message, at, idx int) {
	if msg.Kind == protocol.KindRREP || msg.Kind == protocol.KindRERR {
		return
	}
	origin := msg.Path[0]
	// The origin purges immediately when it is the one observing the
	// break; otherwise a RERR races back along the working prefix.
	dst := msg.Path[len(msg.Path)-1]
	if at == origin {
		delete(n.dsr[origin].routes, dst)
		return
	}
	back := make([]int, idx+1)
	for i := 0; i <= idx; i++ {
		back[i] = msg.Path[idx-i]
	}
	rerr := protocol.Message{
		Kind:   protocol.KindRERR,
		Origin: at,
		// Seq carries the unreachable destination so the origin knows
		// which route to purge.
		Seq:  uint64(dst),
		Path: back,
	}
	n.traffic.RecordOriginated(protocol.KindRERR)
	n.dsrForward(rerr, 0, n.k.Now())
}

// dsrHandleRERR purges the failed route at the origin.
func (n *Network) dsrHandleRERR(node int, msg protocol.Message) {
	delete(n.dsr[node].routes, int(msg.Seq))
}

func reversePath(p []int) []int {
	out := make([]int, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}
