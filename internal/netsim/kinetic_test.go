package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/mobility"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/radio"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// topoHarness is one independently-kernelled network for the lockstep
// equivalence tests: same seed, same mobility/churn configuration, with
// or without the kinetic plane.
type topoHarness struct {
	k   *sim.Kernel
	net *Network
}

func newTopoHarness(t *testing.T, n int, seed int64, kinetic bool, horizon time.Duration) *topoHarness {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(seed), sim.WithHorizon(horizon))
	terrain, err := geo.NewTerrain(2000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	field, err := mobility.NewField(mobility.Config{
		Terrain:  terrain,
		MinSpeed: 1,
		MaxSpeed: 20,
		Pause:    time.Second,
	}, n, func(i int) *rand.Rand { return k.Stream(fmt.Sprintf("mobility.%d", i)) })
	if err != nil {
		t.Fatal(err)
	}
	cp, err := churn.NewProcess(churn.Config{
		MeanUp:   20 * time.Second,
		MeanDown: 4 * time.Second,
	}, n, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Kinetic = kinetic
	net, err := New(cfg, k, field, cp, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	return &topoHarness{k: k, net: net}
}

// TestKineticMatchesFullRebuild is the adjacency-equivalence gate: two
// identically seeded mobile+churn networks — one maintaining topology
// kinetically, one doing full rebuilds — are advanced in lockstep and
// must produce byte-identical CSR snapshots, hop distances and next-hop
// choices at every sample, with the kinetic side's route tables surviving
// via incremental repair rather than resets.
func TestKineticMatchesFullRebuild(t *testing.T) {
	const (
		n       = 140 // above the small-build cutoff: exercises the grid path too
		horizon = 45 * time.Second
		tick    = 250 * time.Millisecond
	)
	kin := newTopoHarness(t, n, 11, true, horizon)
	ser := newTopoHarness(t, n, 11, false, horizon)

	for at := tick; at <= horizon; at += tick {
		kin.k.RunUntil(at)
		ser.k.RunUntil(at)
		gk, gs := kin.net.Graph(), ser.net.Graph()
		for i := 0; i < n; i++ {
			if gk.Up(i) != gs.Up(i) {
				t.Fatalf("t=%v node %d: up kinetic=%v serial=%v", at, i, gk.Up(i), gs.Up(i))
			}
			if !slices.Equal(gk.Neighbors(i), gs.Neighbors(i)) {
				t.Fatalf("t=%v node %d: neighbours kinetic=%v serial=%v",
					at, i, gk.Neighbors(i), gs.Neighbors(i))
			}
		}
		for src := 0; src < n; src += 3 {
			for dst := 0; dst < n; dst += 7 {
				if got, want := gk.Hops(src, dst), gs.Hops(src, dst); got != want {
					t.Fatalf("t=%v Hops(%d,%d): kinetic %d, serial %d", at, src, dst, got, want)
				}
				if got, want := gk.NextHop(src, dst), gs.NextHop(src, dst); got != want {
					t.Fatalf("t=%v NextHop(%d,%d): kinetic %d, serial %d", at, src, dst, got, want)
				}
			}
		}
	}

	st := kin.net.TopologyStats()
	if st.FullRebuilds != 1 {
		t.Errorf("kinetic full rebuilds = %d, want exactly 1", st.FullRebuilds)
	}
	if st.KineticSamples == 0 {
		t.Error("no kinetic incremental samples recorded")
	}
	if st.LinkMakes == 0 || st.LinkBreaks == 0 {
		t.Errorf("no link dynamics recorded (makes=%d breaks=%d) — scenario too static to prove anything",
			st.LinkMakes, st.LinkBreaks)
	}
	if st.Rebins == 0 {
		t.Error("no Verlet rebins recorded")
	}
	if st.RoutesRepaired == 0 {
		t.Error("no route tables repaired in place — repair path never exercised")
	}
	if st.RouteFullResets != 0 {
		t.Errorf("kinetic mode performed %d wholesale route resets", st.RouteFullResets)
	}
	if got, want := kin.net.Rebuilds(), ser.net.Rebuilds(); got != want {
		t.Errorf("snapshot sample counts diverge: kinetic %d, serial %d", got, want)
	}
}

// TestKineticDiffParity checks the kinetic plane's internal contract
// directly: at every incremental sample, the emitted CSR edge diffs must
// contain every true edge change between consecutive snapshots (repair
// exactness tolerates superset diffs but not missing ones), and every
// route table the cache answers from must agree with a fresh BFS over the
// same CSR.
func TestKineticDiffParity(t *testing.T) {
	const (
		n       = 140
		horizon = 30 * time.Second
		tick    = 250 * time.Millisecond
	)
	h := newTopoHarness(t, n, 11, true, horizon)

	edgeSet := func(g *radio.Graph) map[uint64]bool {
		set := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			for _, j := range g.Neighbors(i) {
				if i < j {
					set[uint64(uint32(i))<<32|uint64(uint32(j))] = true
				}
			}
		}
		return set
	}

	var prev map[uint64]bool
	for at := tick; at <= horizon; at += tick {
		h.k.RunUntil(at)
		before := h.net.Rebuilds()
		g := h.net.Graph()
		if h.net.Rebuilds() == before {
			continue // cached snapshot: no sample, no diffs
		}
		next := edgeSet(g)
		if prev != nil {
			emitted := make(map[uint64]bool)
			for _, d := range h.net.diffBuf {
				u, v := d.U, d.V
				if u > v {
					u, v = v, u
				}
				emitted[uint64(uint32(u))<<32|uint64(uint32(v))] = d.Add
			}
			check := func(k uint64, add bool) {
				if got, ok := emitted[k]; !ok || got != add {
					t.Fatalf("t=%v: true edge change (%d,%d,add=%v) missing from kinetic diffs (emitted=%v add=%v)",
						at, int32(k>>32), int32(uint32(k)), add, ok, got)
				}
			}
			for k := range next {
				if !prev[k] {
					check(k, true)
				}
			}
			for k := range prev {
				if !next[k] {
					check(k, false)
				}
			}
			for dst := 0; dst < n; dst++ {
				ref := g.HopsFrom(dst)
				for src := 0; src < n; src++ {
					if src == dst || !g.Up(src) || !g.Up(dst) {
						continue
					}
					if got := g.Hops(src, dst); got != ref[src] {
						t.Fatalf("t=%v: dst=%d src=%d: cached hops %d, fresh BFS %d", at, dst, src, got, ref[src])
					}
				}
			}
		}
		prev = next
		// Warm tables so the next sample's repair has a full population.
		for s := 0; s < n; s += 3 {
			for d := 0; d < n; d += 7 {
				g.Hops(s, d)
			}
		}
	}
}

// TestKineticRouteTableCapHolds pins that a capped kinetic run never
// keeps more than the configured number of live route tables.
func TestKineticRouteTableCapHolds(t *testing.T) {
	const n = 60
	h := newTopoHarness(t, n, 5, true, 20*time.Second)
	h.net.cfg.RouteTableCap = 8
	rng := rand.New(rand.NewSource(1))
	for at := 500 * time.Millisecond; at <= 20*time.Second; at += 500 * time.Millisecond {
		h.k.RunUntil(at)
		g := h.net.Graph()
		for q := 0; q < 20; q++ {
			g.Hops(rng.Intn(n), rng.Intn(n))
		}
		if g.RouteTables() > 8 {
			t.Fatalf("t=%v: %d live route tables, cap 8", at, g.RouteTables())
		}
	}
}

// runKineticScenario mirrors runSeededScenario (determinism_test.go) with
// the kinetic plane toggled: full protocol traffic over a mobile,
// churning network. Any behavioural leak in the kinetic plane shows up as
// diverging deliveries.
func runKineticScenario(t *testing.T, kinetic bool) scenarioOutcome {
	t.Helper()
	const n = 24
	k := sim.NewKernel(sim.WithSeed(7), sim.WithHorizon(2*time.Minute))
	terrain, err := geo.NewTerrain(1500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	field, err := mobility.NewField(mobility.Config{
		Terrain:  terrain,
		MinSpeed: 1,
		MaxSpeed: 15,
		Pause:    2 * time.Second,
	}, n, func(i int) *rand.Rand { return k.Stream(fmt.Sprintf("mobility.%d", i)) })
	if err != nil {
		t.Fatal(err)
	}
	cp, err := churn.NewProcess(churn.Config{
		MeanUp:   30 * time.Second,
		MeanDown: 5 * time.Second,
	}, n, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Kinetic = kinetic
	traffic := stats.NewTraffic()
	net, err := New(cfg, k, field, cp, nil, traffic)
	if err != nil {
		t.Fatal(err)
	}
	var got []delivery
	for i := 0; i < n; i++ {
		if err := net.SetReceiver(i, func(_ *sim.Kernel, node int, msg protocol.Message, meta Meta) {
			got = append(got, delivery{node: node, msg: msg, meta: meta})
		}); err != nil {
			t.Fatal(err)
		}
	}
	wl := k.Stream("workload")
	seq := uint64(0)
	if _, err := k.Every(500*time.Millisecond, "test.unicast", func(kk *sim.Kernel) {
		seq++
		src, dst := wl.Intn(n), wl.Intn(n)
		msg := protocol.Message{Kind: protocol.KindPoll, Item: 1, Version: 1, Origin: src, Seq: seq}
		if err := net.Unicast(src, dst, msg); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Every(3*time.Second, "test.flood", func(kk *sim.Kernel) {
		seq++
		origin := wl.Intn(n)
		msg := protocol.Message{Kind: protocol.KindInvalidation, Item: 2, Version: 2, Origin: origin, Seq: seq}
		if err := net.Flood(origin, 4, msg); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	return scenarioOutcome{
		deliveries: got,
		traffic:    traffic.Snapshot(),
		rebuilds:   net.Rebuilds(),
	}
}

// TestKineticIsBehaviourallyInvisible is the end-to-end byte-identity
// gate for the kinetic plane: the same seeded protocol scenario with
// kinetic topology maintenance on and off must produce identical delivery
// sequences (order, hops, timestamps, flood ids), traffic ledgers, and
// snapshot sample counts. Kernel event counts are NOT compared — the
// kinetic driver legitimately adds its own events — which is exactly why
// delivery-sequence identity is the meaningful check.
func TestKineticIsBehaviourallyInvisible(t *testing.T) {
	on := runKineticScenario(t, true)
	off := runKineticScenario(t, false)
	if len(on.deliveries) == 0 {
		t.Fatal("scenario produced no deliveries; workload broken")
	}
	if on.rebuilds != off.rebuilds {
		t.Errorf("snapshot samples: kinetic %d, serial %d", on.rebuilds, off.rebuilds)
	}
	if !reflect.DeepEqual(on.traffic, off.traffic) {
		t.Errorf("traffic ledgers diverge:\nkinetic: %+v\nserial:  %+v", on.traffic, off.traffic)
	}
	if len(on.deliveries) != len(off.deliveries) {
		t.Fatalf("delivery counts: kinetic %d, serial %d", len(on.deliveries), len(off.deliveries))
	}
	for i := range on.deliveries {
		if !reflect.DeepEqual(on.deliveries[i], off.deliveries[i]) {
			t.Fatalf("delivery %d diverges:\nkinetic: %+v\nserial:  %+v",
				i, on.deliveries[i], off.deliveries[i])
		}
	}
}
