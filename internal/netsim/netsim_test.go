package netsim

import (
	"testing"
	"time"

	"github.com/manetlab/rpcc/internal/churn"
	"github.com/manetlab/rpcc/internal/data"
	"github.com/manetlab/rpcc/internal/energy"
	"github.com/manetlab/rpcc/internal/geo"
	"github.com/manetlab/rpcc/internal/protocol"
	"github.com/manetlab/rpcc/internal/sim"
	"github.com/manetlab/rpcc/internal/stats"
)

// staticSource pins every node at a fixed position, giving tests exact
// control over the topology.
type staticSource struct {
	pts []geo.Point
}

var _ PositionSource = (*staticSource)(nil)

func (s *staticSource) Len() int { return len(s.pts) }

func (s *staticSource) PositionsAt(_ time.Duration, dst []geo.Point) []geo.Point {
	if cap(dst) < len(s.pts) {
		dst = make([]geo.Point, len(s.pts))
	}
	dst = dst[:len(s.pts)]
	copy(dst, s.pts)
	return dst
}

// chain returns n nodes spaced 200m apart on a line: with the default
// 250m range, only adjacent nodes connect.
func chain(n int) *staticSource {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200, Y: 0}
	}
	return &staticSource{pts: pts}
}

func testMsg(kind protocol.Kind) protocol.Message {
	return protocol.Message{Kind: kind, Item: 1, Version: 3, Origin: 0}
}

type delivery struct {
	node int
	msg  protocol.Message
	meta Meta
}

// harness wires a network over a static chain with an optional churn
// process and per-node delivery recording.
type harness struct {
	k     *sim.Kernel
	net   *Network
	churn *churn.Process
	got   []delivery
}

func newHarness(t *testing.T, n int, withChurn bool) *harness {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(42))
	var cp *churn.Process
	var err error
	if withChurn {
		cp, err = churn.NewProcess(churn.Config{Disabled: true}, n, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	net, err := New(DefaultConfig(), k, chain(n), cp, nil, stats.NewTraffic())
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, net: net, churn: cp}
	for i := 0; i < n; i++ {
		i := i
		if err := net.SetReceiver(i, func(_ *sim.Kernel, node int, msg protocol.Message, meta Meta) {
			h.got = append(h.got, delivery{node: node, msg: msg, meta: meta})
		}); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"zero range", func(c *Config) { c.CommRange = 0 }, false},
		{"zero hop base", func(c *Config) { c.HopBase = 0 }, false},
		{"zero bandwidth", func(c *Config) { c.BandwidthBps = 0 }, false},
		{"negative jitter", func(c *Config) { c.JitterMax = -1 }, false},
		{"zero refresh", func(c *Config) { c.TopologyRefresh = 0 }, false},
		{"zero max hops", func(c *Config) { c.MaxRouteHops = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := New(DefaultConfig(), nil, chain(3), nil, nil, nil); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := New(DefaultConfig(), k, nil, nil, nil, nil); err == nil {
		t.Error("nil field accepted")
	}
	bats := make([]*energy.Battery, 2)
	if _, err := New(DefaultConfig(), k, chain(3), nil, bats, nil); err == nil {
		t.Error("mismatched batteries accepted")
	}
}

func TestUnicastDeliversAcrossChain(t *testing.T) {
	h := newHarness(t, 5, false)
	msg := testMsg(protocol.KindApply)
	if err := h.net.Unicast(0, 4, msg); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(h.got))
	}
	d := h.got[0]
	if d.node != 4 {
		t.Errorf("delivered to %d, want 4", d.node)
	}
	if d.meta.Hops != 4 {
		t.Errorf("hops = %d, want 4", d.meta.Hops)
	}
	if d.meta.Flood {
		t.Error("unicast delivery marked as flood")
	}
	if d.meta.At <= 0 {
		t.Error("delivery time not positive")
	}
	tr := h.net.Traffic()
	if got := tr.Tx(protocol.KindApply); got != 4 {
		t.Errorf("transmissions = %d, want 4 (one per hop)", got)
	}
	if got := tr.Delivered(protocol.KindApply); got != 1 {
		t.Errorf("delivered = %d, want 1", got)
	}
}

func TestUnicastToSelfIsFree(t *testing.T) {
	h := newHarness(t, 3, false)
	if err := h.net.Unicast(1, 1, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 1 || h.got[0].meta.Hops != 0 {
		t.Fatalf("self delivery = %+v", h.got)
	}
	if got := h.net.Traffic().TotalTx(); got != 0 {
		t.Errorf("self unicast transmitted %d times", got)
	}
}

func TestUnicastDropsAcrossPartition(t *testing.T) {
	// Two nodes 9km apart: unreachable.
	src := &staticSource{pts: []geo.Point{{X: 0}, {X: 9000}}}
	k := sim.NewKernel()
	net, err := New(DefaultConfig(), k, src, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	net.SetReceiver(1, func(*sim.Kernel, int, protocol.Message, Meta) { delivered = true })
	if err := net.Unicast(0, 1, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if delivered {
		t.Fatal("message crossed a partition")
	}
	if got := net.Traffic().Dropped(protocol.KindPoll); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}

func TestUnicastValidatesMessage(t *testing.T) {
	h := newHarness(t, 3, false)
	if err := h.net.Unicast(0, 2, protocol.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
	if err := h.net.Unicast(-1, 2, testMsg(protocol.KindPoll)); err == nil {
		t.Error("out-of-range source accepted")
	}
	if err := h.net.Unicast(0, 99, testMsg(protocol.KindPoll)); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestUnicastFromDownNodeDropped(t *testing.T) {
	h := newHarness(t, 3, true)
	if err := h.churn.ForceState(h.k, 0, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	if err := h.net.Unicast(0, 2, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 0 {
		t.Fatal("down node's message delivered")
	}
	if got := h.net.Traffic().Dropped(protocol.KindPoll); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}

func TestUnicastToDownNodeDropped(t *testing.T) {
	h := newHarness(t, 3, true)
	if err := h.churn.ForceState(h.k, 2, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	if err := h.net.Unicast(0, 2, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 0 {
		t.Fatal("message delivered to down node")
	}
}

func TestFloodTTLLimitsReach(t *testing.T) {
	h := newHarness(t, 8, false)
	if err := h.net.Flood(0, 3, testMsg(protocol.KindInvalidation)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	// Nodes 1..3 are within 3 hops on the chain; 4..7 are not.
	reached := map[int]int{}
	for _, d := range h.got {
		reached[d.node] = d.meta.Hops
		if !d.meta.Flood {
			t.Error("flood delivery not marked Flood")
		}
	}
	for node := 1; node <= 3; node++ {
		if hops, ok := reached[node]; !ok {
			t.Errorf("node %d not reached", node)
		} else if hops != node {
			t.Errorf("node %d reached in %d hops, want %d", node, hops, node)
		}
	}
	for node := 4; node <= 7; node++ {
		if _, ok := reached[node]; ok {
			t.Errorf("node %d beyond TTL reached", node)
		}
	}
	if _, ok := reached[0]; ok {
		t.Error("origin received its own flood")
	}
}

func TestFloodEachNodeReceivesOnce(t *testing.T) {
	// Dense cluster: everyone in range of everyone.
	pts := make([]geo.Point, 10)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 10, Y: 0}
	}
	k := sim.NewKernel()
	net, err := New(DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for i := 0; i < 10; i++ {
		i := i
		net.SetReceiver(i, func(*sim.Kernel, int, protocol.Message, Meta) { counts[i]++ })
	}
	if err := net.Flood(0, 8, testMsg(protocol.KindIR)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	for i := 1; i < 10; i++ {
		if counts[i] != 1 {
			t.Errorf("node %d received flood %d times", i, counts[i])
		}
	}
	if counts[0] != 0 {
		t.Error("origin received own flood")
	}
}

func TestFloodTransmissionAccounting(t *testing.T) {
	h := newHarness(t, 4, false)
	// Chain 0-1-2-3, TTL 8: nodes 0,1,2,3 all transmit except... node 3
	// has no unvisited neighbours but still rebroadcasts per the flooding
	// rule (it cannot know). Our implementation transmits at every node
	// that received with TTL left, so 0,1,2,3 -> 4 transmissions... node 3
	// receives with ttlLeft=5 and rebroadcasts too.
	if err := h.net.Flood(0, 8, testMsg(protocol.KindIR)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	got := h.net.Traffic().Tx(protocol.KindIR)
	if got != 4 {
		t.Errorf("flood transmissions = %d, want 4 (every reached node rebroadcasts)", got)
	}
}

func TestFloodValidation(t *testing.T) {
	h := newHarness(t, 3, false)
	if err := h.net.Flood(0, 0, testMsg(protocol.KindIR)); err == nil {
		t.Error("zero TTL accepted")
	}
	if err := h.net.Flood(9, 3, testMsg(protocol.KindIR)); err == nil {
		t.Error("out-of-range origin accepted")
	}
	if err := h.net.Flood(0, 3, protocol.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestFloodSkipsDownNodes(t *testing.T) {
	h := newHarness(t, 5, true)
	// Node 2 down: flood from 0 cannot cross it on the chain.
	if err := h.churn.ForceState(h.k, 2, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	if err := h.net.Flood(0, 8, testMsg(protocol.KindIR)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	for _, d := range h.got {
		if d.node >= 2 {
			t.Errorf("node %d reached across down bridge", d.node)
		}
	}
}

func TestEnergyChargedPerTransmission(t *testing.T) {
	k := sim.NewKernel()
	n := 3
	bats := make([]*energy.Battery, n)
	for i := range bats {
		b, err := energy.NewBattery(energy.Config{Capacity: 1000, TxCost: 1, RxCost: 1})
		if err != nil {
			t.Fatal(err)
		}
		bats[i] = b
	}
	net, err := New(DefaultConfig(), k, chain(n), nil, bats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Unicast(0, 2, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	tx0, _ := bats[0].Counters()
	tx1, rx1 := bats[1].Counters()
	_, rx2 := bats[2].Counters()
	if tx0 != 1 || tx1 != 1 || rx1 != 1 || rx2 != 1 {
		t.Errorf("counters tx0=%d tx1=%d rx1=%d rx2=%d, want 1,1,1,1", tx0, tx1, rx1, rx2)
	}
}

func TestDepletedNodeIsDown(t *testing.T) {
	k := sim.NewKernel()
	bats := make([]*energy.Battery, 3)
	for i := range bats {
		b, _ := energy.NewBattery(energy.Config{Capacity: 1, TxCost: 10})
		bats[i] = b
	}
	net, err := New(DefaultConfig(), k, chain(3), nil, bats, nil)
	if err != nil {
		t.Fatal(err)
	}
	bats[1].SpendTx(0) // drain the bridge node
	if !net.Up(0) || net.Up(1) {
		t.Fatal("Up() does not reflect battery state")
	}
	delivered := false
	net.SetReceiver(2, func(*sim.Kernel, int, protocol.Message, Meta) { delivered = true })
	if err := net.Unicast(0, 2, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if delivered {
		t.Fatal("message routed through depleted node")
	}
}

func TestGraphCachingAndChurnInvalidation(t *testing.T) {
	h := newHarness(t, 3, true)
	g1 := h.net.Graph()
	r1 := h.net.Rebuilds()
	if r1 == 0 {
		t.Fatal("first Graph() did not rebuild")
	}
	g2 := h.net.Graph()
	if h.net.Rebuilds() != r1 {
		t.Fatal("same-instant Graph() rebuilt (cache miss)")
	}
	if g1 != g2 {
		t.Fatal("same-instant graphs differ")
	}
	if !g1.Up(1) {
		t.Fatal("fresh graph shows up node down")
	}
	if err := h.churn.ForceState(h.k, 1, churn.StateDisconnected); err != nil {
		t.Fatal(err)
	}
	g3 := h.net.Graph()
	if h.net.Rebuilds() != r1+1 {
		t.Fatalf("churn flip did not invalidate cached graph (rebuilds %d, want %d)",
			h.net.Rebuilds(), r1+1)
	}
	if g3.Up(1) {
		t.Fatal("rebuilt graph shows down node up")
	}
}

func TestContentMessageCarriesPayload(t *testing.T) {
	h := newHarness(t, 3, false)
	c := data.Copy{ID: 1, Version: 5, Value: data.ValueFor(1, 5)}
	msg := protocol.Message{Kind: protocol.KindUpdate, Item: 1, Version: 5, Origin: 0, Copy: c}
	if err := h.net.Unicast(0, 2, msg); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 1 {
		t.Fatalf("deliveries = %d", len(h.got))
	}
	if h.got[0].msg.Copy != c {
		t.Errorf("payload mangled: %+v", h.got[0].msg.Copy)
	}
	// Content messages are bigger: bytes ledger reflects payload.
	if got := h.net.Traffic().TotalBytes(); got < 2*1024 {
		t.Errorf("TotalBytes = %d, want >= 2KiB for 2-hop content", got)
	}
}

func TestDeliveryLatencyGrowsWithHops(t *testing.T) {
	h := newHarness(t, 6, false)
	h.net.Unicast(0, 1, testMsg(protocol.KindPoll))
	h.net.Unicast(0, 5, testMsg(protocol.KindPollAckA))
	h.k.Run()
	var near, far time.Duration
	for _, d := range h.got {
		switch d.node {
		case 1:
			near = d.meta.At
		case 5:
			far = d.meta.At
		}
	}
	if near == 0 || far == 0 {
		t.Fatal("missing deliveries")
	}
	if far <= near {
		t.Errorf("5-hop latency %v <= 1-hop latency %v", far, near)
	}
}

func TestDeterministicDeliveryTimes(t *testing.T) {
	run := func() time.Duration {
		k := sim.NewKernel(sim.WithSeed(7))
		net, err := New(DefaultConfig(), k, chain(5), nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var at time.Duration
		net.SetReceiver(4, func(_ *sim.Kernel, _ int, _ protocol.Message, m Meta) { at = m.At })
		net.Unicast(0, 4, testMsg(protocol.KindPoll))
		k.Run()
		return at
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("delivery time differs across same-seed runs: %v vs %v", a, b)
	}
}

func TestActivityCountsTxAndRx(t *testing.T) {
	h := newHarness(t, 4, false)
	if err := h.net.Unicast(0, 3, testMsg(protocol.KindPoll)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	// Chain 0-1-2-3: node 0 transmits once (1), nodes 1,2 receive and
	// forward (2 each), node 3 receives (1).
	wants := []uint64{1, 2, 2, 1}
	for nd, want := range wants {
		if got := h.net.Activity(nd); got != want {
			t.Errorf("Activity(%d) = %d, want %d", nd, got, want)
		}
	}
	if h.net.Activity(-1) != 0 || h.net.Activity(99) != 0 {
		t.Error("out-of-range Activity not zero")
	}
}

func TestHopDelayGrowsWithSize(t *testing.T) {
	h := newHarness(t, 2, false)
	small := h.net.hopDelay(32)
	large := h.net.hopDelay(32 + 1024)
	// Jitter is bounded by JitterMax (1ms); the 1KB payload adds ~4ms at
	// 2 Mbps, so the ordering is robust.
	if large <= small {
		t.Errorf("hopDelay(1KB) = %v <= hopDelay(32B) = %v", large, small)
	}
}

func TestPositionReturnsGPSReading(t *testing.T) {
	h := newHarness(t, 3, false)
	p := h.net.Position(1)
	if p.X != 200 || p.Y != 0 {
		t.Errorf("Position(1) = %v, want (200,0)", p)
	}
	zero := h.net.Position(99)
	if zero.X != 0 || zero.Y != 0 {
		t.Error("out-of-range Position not zero value")
	}
}

func TestGeoUnicastDeliversAlongChain(t *testing.T) {
	h := newHarness(t, 5, false)
	target := h.net.Position(4)
	if err := h.net.GeoUnicast(0, 4, target, testMsg(protocol.KindGeoInv)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 1 || h.got[0].node != 4 {
		t.Fatalf("geo delivery = %+v, want node 4", h.got)
	}
	if h.got[0].meta.Hops != 4 {
		t.Errorf("hops = %d, want 4 greedy hops", h.got[0].meta.Hops)
	}
}

func TestGeoUnicastDropsAtVoid(t *testing.T) {
	// Target position far off-axis: node 0's only neighbour (node 1) is
	// no closer to the target than node 0 itself, so greedy forwarding
	// hits a void immediately.
	k := sim.NewKernel()
	pts := []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 9000, Y: 9000}}
	net, err := New(DefaultConfig(), k, &staticSource{pts: pts}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	net.SetReceiver(2, func(*sim.Kernel, int, protocol.Message, Meta) { delivered = true })
	if err := net.GeoUnicast(0, 2, geo.Point{X: -5000, Y: 0}, testMsg(protocol.KindGeoInv)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if delivered {
		t.Fatal("message crossed a greedy void")
	}
	if net.Traffic().Dropped(protocol.KindGeoInv) != 1 {
		t.Error("void drop not recorded")
	}
}

func TestGeoUnicastStaleTargetStrands(t *testing.T) {
	// The destination is reachable hop-wise but the BELIEVED position is
	// at the far end of the chain's opposite side: greedy walks the
	// wrong way and strands.
	h := newHarness(t, 6, false)
	wrong := h.net.Position(0) // believe node 5 is where node 0 is
	if err := h.net.GeoUnicast(2, 5, wrong, testMsg(protocol.KindGeoInv)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	for _, d := range h.got {
		if d.node == 5 {
			t.Fatal("stale-position geo unicast still delivered past the believed location")
		}
	}
}

func TestGeoUnicastSelfDelivery(t *testing.T) {
	h := newHarness(t, 3, false)
	if err := h.net.GeoUnicast(1, 1, h.net.Position(1), testMsg(protocol.KindGeoInv)); err != nil {
		t.Fatal(err)
	}
	h.k.Run()
	if len(h.got) != 1 || h.got[0].meta.Hops != 0 {
		t.Fatalf("self geo delivery = %+v", h.got)
	}
}

func TestGeoUnicastValidation(t *testing.T) {
	h := newHarness(t, 3, false)
	if err := h.net.GeoUnicast(0, 99, geo.Point{}, testMsg(protocol.KindGeoInv)); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := h.net.GeoUnicast(0, 2, geo.Point{}, protocol.Message{}); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestSerializeTxQueuesBursts(t *testing.T) {
	// Ten 1KB frames sent back-to-back from one node: with a single
	// serialized radio the last arrival trails the first by at least
	// nine service times; with the idealised parallel radio they land
	// nearly together.
	arrivals := func(serialize bool) []time.Duration {
		cfg := DefaultConfig()
		cfg.SerializeTx = serialize
		cfg.JitterMax = 0 // determinism for exact spacing assertions
		k := sim.NewKernel(sim.WithSeed(1))
		net, err := New(cfg, k, chain(2), nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var at []time.Duration
		net.SetReceiver(1, func(_ *sim.Kernel, _ int, _ protocol.Message, m Meta) {
			at = append(at, m.At)
		})
		big := protocol.Message{
			Kind: protocol.KindUpdate, Item: 1, Version: 1, Origin: 0,
			Copy: data.Copy{ID: 1, Version: 1, Value: data.ValueFor(1, 1)},
		}
		for i := 0; i < 10; i++ {
			if err := net.Unicast(0, 1, big); err != nil {
				t.Fatal(err)
			}
		}
		k.Run()
		return at
	}
	parallel := arrivals(false)
	serial := arrivals(true)
	if len(parallel) != 10 || len(serial) != 10 {
		t.Fatalf("deliveries: parallel=%d serial=%d", len(parallel), len(serial))
	}
	parSpread := parallel[len(parallel)-1] - parallel[0]
	serSpread := serial[len(serial)-1] - serial[0]
	if parSpread != 0 {
		t.Errorf("parallel radio spread a burst by %v", parSpread)
	}
	// Service time of a ~1KB frame at 2 Mbps is ~4.2ms; nine queued
	// frames must spread at least ~35ms.
	if serSpread < 30*time.Millisecond {
		t.Errorf("serialized radio spread only %v", serSpread)
	}
}

func TestSerializeTxPreservesDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SerializeTx = true
	k := sim.NewKernel(sim.WithSeed(2))
	net, err := New(cfg, k, chain(5), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	net.SetReceiver(4, func(*sim.Kernel, int, protocol.Message, Meta) { got++ })
	for i := 0; i < 20; i++ {
		net.Unicast(0, 4, testMsg(protocol.KindPoll))
	}
	k.Run()
	if got != 20 {
		t.Fatalf("serialized radio delivered %d of 20", got)
	}
}
